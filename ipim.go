// Package ipim is a from-scratch reproduction of "iPIM: Programmable
// In-Memory Image Processing Accelerator Using Near-Bank Architecture"
// (ISCA 2020): a cycle-level simulator of the near-bank accelerator, the
// SIMB ISA, a Halide-style programming frontend with the paper's
// ipim_tile/load_pgsm schedules, the compiler backend with register
// allocation, instruction reordering and memory order enforcement, and
// the full evaluation harness (Figs. 1–13, Tables I–IV).
//
// Quick start:
//
//	cfg := ipim.OneVaultConfig()
//	m, _ := ipim.NewMachine(cfg)
//	wl, _ := ipim.WorkloadByName("GaussianBlur")
//	pipe := wl.Build().Pipe
//	img := ipim.Synth(512, 256, 1)
//	art, _ := ipim.Compile(&cfg, pipe, img.W, img.H, ipim.Opt)
//	out, stats, _ := ipim.Run(m, art, img)
//	_ = out
//	fmt.Println(stats.Cycles, stats.IPC())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured results.
package ipim

import (
	"context"
	"fmt"
	"io"
	"strings"

	"ipim/internal/ckpt"
	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/energy"
	"ipim/internal/exp"
	"ipim/internal/fault"
	"ipim/internal/gpu"
	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/pixel"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

// Core types, re-exported from the implementation packages.
type (
	// Config is the machine configuration (paper Table III).
	Config = sim.Config
	// Machine is an assembled iPIM accelerator.
	Machine = cube.Machine
	// Stats aggregates a run's cycles, instruction mix, stalls and
	// component activity.
	Stats = sim.Stats
	// Pipeline is a Halide-style algorithm plus its iPIM schedule.
	Pipeline = halide.Pipeline
	// Func is one pipeline stage definition.
	Func = halide.Func
	// Expr is an algorithm expression node.
	Expr = halide.Expr
	// Options selects the compiler backend optimizations (Fig. 12).
	Options = compiler.Options
	// Artifact is a compiled pipeline plus its data-layout plan.
	Artifact = compiler.Artifact
	// Image is a single-channel FP32 image.
	Image = pixel.Image
	// Workload is one Table II benchmark.
	Workload = workloads.Workload
	// DNNWorkload is one member of the DNN/GEMM workload family (builder,
	// bit-exact host golden reference, and canonical sizes).
	DNNWorkload = workloads.DNNWorkload
	// Program is a SIMB instruction sequence.
	Program = isa.Program
	// GPUProfile is the analytical V100 baseline result.
	GPUProfile = gpu.Profile
	// EnergyBreakdown is the Fig. 9 energy decomposition.
	EnergyBreakdown = energy.Breakdown
	// ExperimentTable is one regenerated figure/table.
	ExperimentTable = exp.Table
	// FaultPlan is a deterministic, seeded fault-injection campaign
	// (attach with Machine.SetFaultPlan; see internal/fault).
	FaultPlan = fault.Plan
	// RunOptions bounds a run with hard execution budgets and can select
	// its execution mode (install with Machine.SetBudget or pass to
	// RunContext helpers). Budget checks use only vault-local state, so
	// the error point is deterministic at any worker count.
	RunOptions = sim.RunOptions
	// Mode selects how a run executes: cycle-accurate timing simulation
	// or pure-functional execution (select with Machine.SetMode or
	// RunOptions.Mode).
	Mode = sim.Mode
)

// Execution modes (see sim.Mode). FunctionalMode produces bit-identical
// register/memory/pixel outputs with no cycle accounting — Stats carry
// instruction counts with Cycles = 0 — and runs several times faster on
// the host (BENCH_funcmode.json).
const (
	// DefaultMode defers to the machine's configured mode (cycle unless
	// Machine.SetMode says otherwise).
	DefaultMode = sim.DefaultMode
	// CycleMode is the full timing simulation.
	CycleMode = sim.CycleMode
	// FunctionalMode executes functionally only: correct outputs, no
	// clocks. MaxCycles budgets become issued-instruction bounds.
	FunctionalMode = sim.FunctionalMode
)

// ErrTransientFault marks injected transient execution faults; runs
// failing with an error wrapping it may be retried.
var ErrTransientFault = fault.ErrTransient

// Run-control errors. A run aborted by either leaves the machine Reset
// and immediately reusable.
var (
	// ErrCycleBudget marks a run that exhausted RunOptions.MaxCycles or
	// RunOptions.MaxPhaseSteps. Match with errors.Is.
	ErrCycleBudget = sim.ErrCycleBudget
	// ErrCancelled marks a run aborted by context cancellation or
	// timeout; it wraps the context's cause, so
	// errors.Is(err, context.DeadlineExceeded) also works.
	ErrCancelled = sim.ErrCancelled
)

// Checkpoint/restore errors. See docs/ARCHITECTURE.md ("Checkpoint
// format") for the on-disk container and the quiescence contract.
var (
	// ErrCheckpointCorrupt marks a checkpoint rejected by structural or
	// integrity validation (bad magic, CRC mismatch, impossible field).
	// Match with errors.Is; ErrCheckpointTruncated wraps it.
	ErrCheckpointCorrupt = ckpt.ErrCorrupt
	// ErrCheckpointTruncated marks a checkpoint cut short — the usual
	// signature of a crash mid-write (a torn tail).
	ErrCheckpointTruncated = ckpt.ErrTruncated
	// ErrCheckpointVersion marks a checkpoint written by an incompatible
	// schema version.
	ErrCheckpointVersion = ckpt.ErrVersion
	// ErrCheckpointConfig marks a checkpoint taken on a machine with a
	// different configuration than the restore target.
	ErrCheckpointConfig = cube.ErrCheckpointConfig
	// ErrNoResume marks a Resume on a machine whose checkpoint carried no
	// interrupted run (it was taken between runs, not at a barrier).
	ErrNoResume = cube.ErrNoResume
)

// ParseFaultPlan parses a -faults flag spec such as
// "seed=7,dram=1e-5,multibit=0.2,link=1e-6,linkpenalty=20,exec=0.001".
// An empty spec (or "off") returns (nil, nil): faults disabled.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return fault.ParseSpec(spec) }

// Compiler option presets (paper Sec. VII-E1).
var (
	Opt       = compiler.Opt
	Baseline1 = compiler.Baseline1
	Baseline2 = compiler.Baseline2
	Baseline3 = compiler.Baseline3
	Baseline4 = compiler.Baseline4
)

// DefaultConfig returns the paper's full Table III machine: 8 cubes of
// 16 vaults, 8 process groups x 4 process engines per vault.
func DefaultConfig() Config { return sim.Default() }

// OneVaultConfig returns the representative-vault configuration used by
// the benchmark harness (one full 32-PE vault; DESIGN.md §2).
func OneVaultConfig() Config { return sim.OneVault() }

// TinyConfig returns a small two-vault machine for experimentation.
func TinyConfig() Config { return sim.TestTiny() }

// TinyOneVaultConfig returns a small single-vault machine (required by
// multi-stage halo-exchange pipelines at tiny scale).
func TinyOneVaultConfig() Config { return sim.TestTinyOneVault() }

// ConfigNames lists the named machine configurations accepted by
// ConfigByName, in display order.
func ConfigNames() []string {
	return []string{"default", "onevault", "tiny", "tiny-onevault"}
}

// ConfigByName resolves a named machine configuration ("default",
// "onevault", "tiny", "tiny-onevault"). CLI tools and the serving
// daemon use it so every entry point speaks the same config names.
func ConfigByName(name string) (Config, error) {
	switch name {
	case "default":
		return DefaultConfig(), nil
	case "onevault":
		return OneVaultConfig(), nil
	case "tiny":
		return TinyConfig(), nil
	case "tiny-onevault":
		return TinyOneVaultConfig(), nil
	}
	return Config{}, fmt.Errorf("ipim: unknown machine config %q (want one of %s)",
		name, strings.Join(ConfigNames(), ", "))
}

// OptionNames lists the compiler configurations accepted by
// OptionsByName (the paper's Sec. VII-E1 presets).
func OptionNames() []string {
	return []string{"opt", "baseline1", "baseline2", "baseline3", "baseline4"}
}

// OptionsByName resolves a compiler configuration preset by its paper
// label.
func OptionsByName(name string) (Options, error) {
	switch name {
	case "opt":
		return Opt, nil
	case "baseline1":
		return Baseline1, nil
	case "baseline2":
		return Baseline2, nil
	case "baseline3":
		return Baseline3, nil
	case "baseline4":
		return Baseline4, nil
	}
	return Options{}, fmt.Errorf("ipim: unknown compiler config %q (want one of %s)",
		name, strings.Join(OptionNames(), ", "))
}

// NewMachine assembles a machine for the configuration.
//
// Concurrency contract: a Machine executes one Run/RunHistogram at a
// time (its banks, queues and NoC state are mutated in place), but
// distinct Machines are fully independent — running the same Artifact
// on several Machines concurrently is safe and is how the serving
// daemon scales (see internal/serve and TestMachinesRunConcurrently).
func NewMachine(cfg Config) (*Machine, error) { return cube.New(cfg) }

// Compile maps a pipeline onto the machine configuration.
func Compile(cfg *Config, pipe *Pipeline, imgW, imgH int, opts Options) (*Artifact, error) {
	return compiler.Compile(cfg, pipe, imgW, imgH, opts)
}

// Run loads the input, executes the compiled pipeline on every vault,
// and gathers the output image. Run mutates the machine (banks, queue
// and interconnect state), so a given Machine must not execute two
// runs concurrently; the Artifact and input image are only read and
// may be shared freely across Machines running in parallel.
func Run(m *Machine, art *Artifact, img *Image) (*Image, Stats, error) {
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, Stats{}, err
	}
	stats, err := compiler.Execute(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	out, err := compiler.ReadOutput(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, stats, nil
}

// RunHistogram is Run for histogram pipelines: it returns the bins.
func RunHistogram(m *Machine, art *Artifact, img *Image) ([]int32, Stats, error) {
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, Stats{}, err
	}
	stats, err := compiler.Execute(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	bins, err := compiler.ReadHistogram(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return bins, stats, nil
}

// RunContext is Run with cooperative cancellation and an optional
// execution budget. The context is checked at every phase barrier and
// at a bounded instruction interval inside phases, so even a
// never-syncing program is interruptible. On cancellation the error
// wraps ErrCancelled (and the context's cause); on budget exhaustion,
// ErrCycleBudget. Either way the machine has been Reset and is
// immediately reusable. opts temporarily overrides the machine's
// installed budget when non-zero; the machine's own budget is restored
// before returning. A RunContext under a non-expiring context and zero
// budget is bit-identical to Run.
func RunContext(ctx context.Context, m *Machine, art *Artifact, img *Image, opts RunOptions) (*Image, Stats, error) {
	restore := applyBudget(m, opts)
	defer restore()
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, Stats{}, err
	}
	stats, err := compiler.ExecuteContext(ctx, m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	out, err := compiler.ReadOutput(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, stats, nil
}

// RunHistogramContext is RunContext for histogram pipelines.
func RunHistogramContext(ctx context.Context, m *Machine, art *Artifact, img *Image, opts RunOptions) ([]int32, Stats, error) {
	restore := applyBudget(m, opts)
	defer restore()
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, Stats{}, err
	}
	stats, err := compiler.ExecuteContext(ctx, m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	bins, err := compiler.ReadHistogram(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return bins, stats, nil
}

// RestoreMachine assembles a fresh machine for cfg and rewrites its
// full architectural state from a checkpoint previously written by
// Machine.Checkpoint (or streamed out via RunOptions.CheckpointSink).
// The checkpoint must have been taken on an identically configured
// machine (ErrCheckpointConfig otherwise); corrupt, truncated or
// mis-versioned bytes yield the typed errors above and never a
// half-restored machine. If the checkpoint interrupted a run,
// ResumeRun/ResumeHistogram continue it.
func RestoreMachine(r io.Reader, cfg Config) (*Machine, error) {
	return cube.RestoreMachine(r, cfg)
}

// ResumeRun continues the interrupted run a restored machine carries
// (ErrNoResume if there is none) and gathers the output image exactly
// as Run would have. The resumed run keeps the checkpointed budget and
// execution mode; opts only re-arms checkpointing (sink and interval) —
// its other fields are ignored. The contract: checkpoint at barrier N,
// RestoreMachine onto a fresh machine, ResumeRun, and the pixels, Stats
// and fault counters are bit-identical to the run that was never
// interrupted, at any worker count. Note the returned Stats span the
// whole original run, not just the resumed tail.
func ResumeRun(ctx context.Context, m *Machine, art *Artifact, opts RunOptions) (*Image, Stats, error) {
	restore := applyBudget(m, opts)
	defer restore()
	stats, err := m.ResumeContext(ctx)
	if err != nil {
		return nil, Stats{}, err
	}
	out, err := compiler.ReadOutput(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return out, stats, nil
}

// ResumeHistogram is ResumeRun for histogram pipelines.
func ResumeHistogram(ctx context.Context, m *Machine, art *Artifact, opts RunOptions) ([]int32, Stats, error) {
	restore := applyBudget(m, opts)
	defer restore()
	stats, err := m.ResumeContext(ctx)
	if err != nil {
		return nil, Stats{}, err
	}
	bins, err := compiler.ReadHistogram(m, art)
	if err != nil {
		return nil, Stats{}, err
	}
	return bins, stats, nil
}

// applyBudget temporarily installs a non-zero budget, execution-mode or
// checkpoint-sink override on the machine, returning the function that
// restores the previous budget.
func applyBudget(m *Machine, opts RunOptions) func() {
	if !opts.Enabled() && opts.Mode == sim.DefaultMode && opts.CheckpointSink == nil {
		return func() {}
	}
	prev := m.Budget()
	m.SetBudget(opts)
	return func() { m.SetBudget(prev) }
}

// Synth generates a deterministic scene-like test image (the DIV8K
// stand-in; DESIGN.md §5).
func Synth(w, h int, seed uint64) *Image { return pixel.Synth(w, h, seed) }

// Workloads returns the Table II benchmark suite.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName finds a Table II benchmark.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// DNNWorkloads returns the DNN/GEMM workload family: conv2d (3x3 and
// 1x1, multi-channel), a tiled GEMM, and a fused transformer
// feed-forward block, each paired with a bit-exact host golden
// reference. The family defaults to the multi-array stage-ahead
// schedule (Pipeline.MultiArraySchedule).
func DNNWorkloads() []DNNWorkload { return workloads.DNN() }

// DNNWorkloadByName finds a DNN/GEMM family workload.
func DNNWorkloadByName(name string) (DNNWorkload, error) { return workloads.DNNByName(name) }

// GPUBaseline models the V100 executing a pipeline on a WxH input.
func GPUBaseline(pipe *Pipeline, imgW, imgH int) (GPUProfile, error) {
	return gpu.Model(gpu.Default(), pipe, imgW, imgH)
}

// EnergyOf converts run statistics to the Fig. 9 energy breakdown.
// nBanks/nVaults describe the simulated machine portion.
func EnergyOf(stats *Stats, nBanks, nVaults int) EnergyBreakdown {
	return energy.DefaultModel().Compute(stats, nBanks, nVaults, 1.0)
}

// NewExperiments returns the harness that regenerates every paper
// figure and table. sizeDiv > 1 shrinks images for quick passes.
func NewExperiments(sizeDiv int) *exp.Context {
	c := exp.NewContext()
	c.SizeDiv = sizeDiv
	return c
}

// ExperimentNames lists the regenerable experiments.
func ExperimentNames() []string { return exp.ExperimentNames() }

// ReadPGM reads one grayscale plane from binary PGM.
func ReadPGM(r io.Reader) (*Image, error) { return pixel.ReadPGM(r) }

// WritePGM writes one grayscale plane as binary PGM.
func WritePGM(w io.Writer, im *Image) error { return pixel.WritePGM(w, im) }

// ReadPPM reads an RGB image as three planes from binary PPM.
func ReadPPM(r io.Reader) (rp, gp, bp *Image, err error) { return pixel.ReadPPM(r) }

// WritePPM writes three planes as one binary PPM RGB image.
func WritePPM(w io.Writer, rp, gp, bp *Image) error { return pixel.WritePPM(w, rp, gp, bp) }

// SaveArtifact serializes a compiled kernel in the shippable
// host-offload format (run-only; no recompilation).
func SaveArtifact(w io.Writer, art *Artifact) error { return compiler.SaveArtifact(w, art) }

// LoadArtifact reads an artifact previously written by SaveArtifact,
// validating it against the hostile-input checks in internal/compiler.
func LoadArtifact(r io.Reader) (*Artifact, error) { return compiler.LoadArtifact(r) }

// Assemble parses SIMB assembly text.
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// Disassemble renders a program as canonical SIMB assembly.
func Disassemble(p *Program) string { return isa.Disassemble(p) }
