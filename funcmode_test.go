package ipim

// The functional/timing split differential harness, in two halves:
//
//   - FunctionalMode must be a pure timing erasure: for any workload,
//     machine shape, schedule, fault plan, and worker count, the
//     functional interpreter must produce the same pixels, histogram
//     bins, and issued-instruction counts as the cycle-accurate
//     simulator — with Cycles pinned to zero and no timing counters.
//   - The block timing memoizer must be a pure host-time optimization
//     of cycle mode: a memoized run and a stepwise run
//     (SetTimingMemo(false)) must agree bit for bit on the FULL
//     sim.Stats and the output, and the cache must be bypassed or
//     flushed — never consulted stale — under fault plans, budgets,
//     Reset, and DRAM policy swaps.
//
// These are the safety nets behind every execFunc case in
// internal/vault/functional.go and every replayBlock delta in
// internal/vault/memo.go.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ipim/internal/dram"
)

// modeRun executes one compiled workload run on m, reducing image and
// histogram outputs to one comparable []float32.
func modeRun(t *testing.T, m *Machine, art *Artifact, img *Image, histogram bool) (Stats, []float32) {
	t.Helper()
	if histogram {
		bins, stats, err := RunHistogram(m, art, img)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return stats, out.Pix
}

// TestFunctionalMatchesCycleAllWorkloads sweeps every Table II workload
// at two image sizes: functional and cycle mode must agree on pixels
// (or bins) and on the issued-instruction profile, while the functional
// run must carry no clock at all.
func TestFunctionalMatchesCycleAllWorkloads(t *testing.T) {
	for _, wl := range Workloads() {
		for _, scale := range []int{1, 2} {
			wl := wl
			t.Run(fmt.Sprintf("%s/%dx", wl.Name, scale), func(t *testing.T) {
				cfg := TinyOneVaultConfig()
				img := Synth(scale*wl.TestW, scale*wl.TestH, 7)
				art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				histogram := art.Plan.Pipe.Histogram

				mc, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cycStats, cycOut := modeRun(t, mc, art, img, histogram)

				mf, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				mf.SetMode(FunctionalMode)
				funStats, funOut := modeRun(t, mf, art, img, histogram)

				if !reflect.DeepEqual(cycOut, funOut) {
					t.Errorf("functional output diverges from cycle mode")
				}
				if funStats.Cycles != 0 {
					t.Errorf("functional run reports %d cycles; want 0", funStats.Cycles)
				}
				if funStats.Issued != cycStats.Issued {
					t.Errorf("issued instructions diverge: functional %d, cycle %d",
						funStats.Issued, cycStats.Issued)
				}
				if funStats.Syncs != cycStats.Syncs {
					t.Errorf("sync counts diverge: functional %d, cycle %d",
						funStats.Syncs, cycStats.Syncs)
				}
				if funStats.InstByCategory != cycStats.InstByCategory {
					t.Errorf("instruction mix diverges:\nfunctional %v\ncycle      %v",
						funStats.InstByCategory, cycStats.InstByCategory)
				}
				if funStats.DRAM.Reads != 0 || funStats.DRAM.Writes != 0 || funStats.NoC.Packets != 0 {
					t.Errorf("functional run touched timing counters: %+v", funStats)
				}
			})
		}
	}
}

// TestFunctionalRunOptionsOverride pins the per-run mode override: a
// cycle-mode machine runs one request functionally via RunOptions.Mode
// and then reverts — the next plain Run is cycle-accurate again.
func TestFunctionalRunOptionsOverride(t *testing.T) {
	cfg := TinyOneVaultConfig()
	wl, err := WorkloadByName("Brighten")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(wl.TestW, wl.TestH, 3)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := RunContext(context.Background(), m, art, img, RunOptions{Mode: FunctionalMode})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles != 0 {
		t.Fatalf("RunOptions{Mode: FunctionalMode} run reports %d cycles; want 0", stats.Cycles)
	}
	ref, refStats, err := Run(m, art, img)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.Cycles == 0 {
		t.Error("mode override leaked: the following plain Run carried no clock")
	}
	if !reflect.DeepEqual(out.Pix, ref.Pix) {
		t.Error("functional override output diverges from the cycle run")
	}
}

// TestFunctionalSerialParallelIdentical: functional-mode stats are pure
// instruction counts, so they must be bit-identical at any phase-worker
// count — same contract cycle mode has, cheaper to violate by accident.
func TestFunctionalSerialParallelIdentical(t *testing.T) {
	cfg := detConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, 11)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var ref Stats
	var refOut []float32
	for i, par := range []int{1, 4} {
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetParallelism(par)
		m.SetMode(FunctionalMode)
		stats, out := modeRun(t, m, art, img, false)
		if i == 0 {
			ref, refOut = stats, out
			continue
		}
		if !reflect.DeepEqual(ref, stats) {
			t.Errorf("par=%d: functional stats diverge from serial:\nwant %+v\ngot  %+v", par, ref, stats)
		}
		if !reflect.DeepEqual(refOut, out) {
			t.Errorf("par=%d: functional output diverges from serial", par)
		}
	}
}

// TestMemoizedMatchesStepwiseRandomMatrix randomizes the machine shape,
// page/scheduling policies, workload, and fault rate, and runs each
// draw three times back-to-back on one machine — the pooled-reuse
// pattern under which blocks recur — at worker counts 1 and 4. Every
// run must agree bit for bit, stats and output, between the memoized
// machine and a SetTimingMemo(false) one; across the matrix the cache
// must score real hits (otherwise the differential is vacuous). The
// rand stream is fixed-seed: every run tests the same matrix.
func TestMemoizedMatchesStepwiseRandomMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	workloads := []string{"Brighten", "GaussianBlur", "Shift", "Histogram", "Downsample", "Upsample"}
	rates := []float64{0, 1e-6}
	exercised := 0
	var totalHits int64
	for i := 0; i < 10; i++ {
		cfg := DefaultConfig()
		cfg.Cubes = 1 + rng.Intn(2)
		cfg.VaultsPerCube = []int{2, 4}[rng.Intn(2)]
		cfg.PGsPerVault = 1 + rng.Intn(2)
		cfg.PEsPerPG = []int{2, 4}[rng.Intn(2)]
		cfg.BankBytes = 1 << 20
		if rng.Intn(2) == 1 {
			cfg.Page = dram.ClosePage
		}
		if rng.Intn(2) == 1 {
			cfg.Sched = dram.FCFS
		}
		wlName := workloads[rng.Intn(len(workloads))]
		seed := rng.Uint64()
		rate := rates[i%len(rates)]
		wl, err := WorkloadByName(wlName)
		if err != nil {
			t.Fatal(err)
		}
		img := Synth(2*wl.TestW, 2*wl.TestH, seed)
		art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
		if err != nil {
			// Some draws are legitimately incompatible (the compiler
			// rejects shapes whose PE count does not divide the tile
			// grid); the fixed rand seed keeps the skipped set stable.
			t.Logf("draw %d (%s, %d cubes × %d vaults, %d PGs × %d PEs) skipped: %v",
				i, wlName, cfg.Cubes, cfg.VaultsPerCube, cfg.PGsPerVault, cfg.PEsPerPG, err)
			continue
		}
		exercised++
		var plan *FaultPlan
		if rate > 0 {
			plan = &FaultPlan{Seed: seed ^ 0x9e37, DRAMBitFlipRate: rate, DRAMMultiBitFraction: 0.5}
		}
		histogram := art.Plan.Pipe.Histogram
		for _, workers := range []int{1, 4} {
			memoOn, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			memoOff, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			memoOn.SetParallelism(workers)
			memoOff.SetParallelism(workers)
			memoOff.SetTimingMemo(false)
			memoOn.SetFaultPlan(plan)
			memoOff.SetFaultPlan(plan)
			for run := 0; run < 3; run++ {
				mStats, mOut := modeRun(t, memoOn, art, img, histogram)
				sStats, sOut := modeRun(t, memoOff, art, img, histogram)
				if !reflect.DeepEqual(mStats, sStats) {
					t.Errorf("draw %d run %d (%s, %d cubes × %d vaults, %d PGs × %d PEs, page=%v sched=%v, workers=%d, rate=%g): stats diverge:\nmemoized: %+v\nstepwise: %+v",
						i, run, wlName, cfg.Cubes, cfg.VaultsPerCube, cfg.PGsPerVault, cfg.PEsPerPG,
						cfg.Page, cfg.Sched, workers, rate, mStats, sStats)
				}
				if !reflect.DeepEqual(mOut, sOut) {
					t.Errorf("draw %d run %d (%s): output diverges between memoized and stepwise", i, run, wlName)
				}
			}
			hits, _ := memoOn.TimingMemoStats()
			totalHits += hits
			if offHits, offMisses := memoOff.TimingMemoStats(); offHits != 0 || offMisses != 0 {
				t.Errorf("draw %d: SetTimingMemo(false) machine consulted the cache (%d hits, %d misses)",
					i, offHits, offMisses)
			}
		}
	}
	if exercised < 6 {
		t.Errorf("only %d of 10 matrix draws compiled — widen the shapes or reseed", exercised)
	}
	if totalHits == 0 {
		t.Error("no draw scored a memo hit — the memoized/stepwise differential is vacuous")
	}
}

// warmMemo runs art on m repeatedly until the timing memoizer reaches
// steady state (a run served from cache), returning the hit/miss
// counters at that point. Fails the test if no hit appears — every
// invalidation case below needs a warm cache to invalidate.
func warmMemo(t *testing.T, m *Machine, art *Artifact, img *Image) (hits, misses int64) {
	t.Helper()
	for run := 0; run < 8; run++ {
		if _, _, err := Run(m, art, img); err != nil {
			t.Fatalf("warm-up run %d: %v", run, err)
		}
		if h, ms := m.TimingMemoStats(); h > 0 {
			return h, ms
		}
	}
	hits, misses = m.TimingMemoStats()
	t.Fatalf("memoizer never hit during warm-up (hits=%d misses=%d)", hits, misses)
	return
}

// TestTimingMemoInvalidation is the table-driven proof that the block
// cache is bypassed or flushed — never consulted stale — under every
// condition that can change what a block's timing means: fault plans,
// execution budgets, Reset, and DRAM policy swaps (autotune's
// deferred-restore path calls SetDRAMPolicy mid-lifetime with the
// machine warm).
func TestTimingMemoInvalidation(t *testing.T) {
	cfg := OneVaultConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(64, 32, 1)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	newWarm := func(t *testing.T) (*Machine, int64, int64) {
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, ms := warmMemo(t, m, art, img)
		return m, h, ms
	}
	runOnce := func(t *testing.T, m *Machine) Stats {
		t.Helper()
		_, stats, err := Run(m, art, img)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}

	t.Run("reset-flushes", func(t *testing.T) {
		// After Reset the machine is back in the exact state the very
		// first recorded block was keyed on — only a flush prevents the
		// post-Reset run from replaying a pre-Reset block.
		m, h0, m0 := newWarm(t)
		m.Reset()
		runOnce(t, m)
		h, ms := m.TimingMemoStats()
		if h != h0 {
			t.Errorf("post-Reset run hit the cache (%d -> %d hits); Reset must flush", h0, h)
		}
		if ms <= m0 {
			t.Errorf("post-Reset run recorded no miss (misses %d -> %d)", m0, ms)
		}
	})

	t.Run("policy-swap-flushes", func(t *testing.T) {
		// SetDRAMPolicy with the SAME policies is the adversarial case:
		// machine state is unchanged, so stale blocks would match — the
		// swap must flush anyway (autotune restores policies this way
		// on a warm machine).
		m, h0, m0 := newWarm(t)
		m.SetDRAMPolicy(cfg.Page, cfg.Sched)
		runOnce(t, m)
		h, ms := m.TimingMemoStats()
		if h != h0 {
			t.Errorf("post-swap run hit the cache (%d -> %d hits); SetDRAMPolicy must flush", h0, h)
		}
		if ms <= m0 {
			t.Errorf("post-swap run recorded no miss (misses %d -> %d)", m0, ms)
		}
	})

	t.Run("fault-plan-bypasses-and-flushes", func(t *testing.T) {
		// With a plan armed the memoizer must not even be consulted
		// (timing deltas can't replay fault rolls); and arming one must
		// flush, so clearing the plan later starts cold.
		m, h0, m0 := newWarm(t)
		m.SetFaultPlan(&FaultPlan{Seed: 9, DRAMBitFlipRate: 1e-6})
		runOnce(t, m)
		if h, ms := m.TimingMemoStats(); h != h0 || ms != m0 {
			t.Errorf("faulted run consulted the memoizer (hits %d -> %d, misses %d -> %d)", h0, h, m0, ms)
		}
		m.SetFaultPlan(nil)
		runOnce(t, m)
		if h, _ := m.TimingMemoStats(); h != h0 {
			t.Errorf("run after clearing the plan hit the cache (%d -> %d hits); SetFaultPlan must flush", h0, h)
		}
	})

	t.Run("budget-bypasses-without-flush", func(t *testing.T) {
		// An armed budget bypasses the cache (replay would skip the
		// per-cycle budget checks) but must NOT flush it: the budgeted
		// run executes identically, so the very next unbudgeted run is
		// back in steady state and hits.
		m, h0, m0 := newWarm(t)
		m.SetBudget(RunOptions{MaxCycles: 1 << 40})
		runOnce(t, m)
		if h, ms := m.TimingMemoStats(); h != h0 || ms != m0 {
			t.Errorf("budgeted run consulted the memoizer (hits %d -> %d, misses %d -> %d)", h0, h, m0, ms)
		}
		m.SetBudget(RunOptions{})
		// A single run may legitimately miss on a refresh-epoch regime
		// change; a few consecutive runs must reach a hit again — which
		// is only possible if the cache survived the budgeted run.
		for run := 0; run < 4; run++ {
			runOnce(t, m)
			if h, _ := m.TimingMemoStats(); h > h0 {
				return
			}
		}
		h, _ := m.TimingMemoStats()
		t.Errorf("no post-budget run hit (%d -> %d hits); budgets must bypass, not flush", h0, h)
	})

	t.Run("memo-off-switch-flushes", func(t *testing.T) {
		m, h0, _ := newWarm(t)
		m.SetTimingMemo(false)
		runOnce(t, m)
		m.SetTimingMemo(true)
		runOnce(t, m)
		if h, _ := m.TimingMemoStats(); h != h0 {
			t.Errorf("re-enabled memoizer replayed a pre-disable block (%d -> %d hits)", h0, h)
		}
	})
}

// TestMemoAbortReuseResetEquivalent: a budget abort on a warm memoized
// machine must flush the cache AND leave the machine bit-equivalent to
// fresh — the documented post-abort contract, now with cached timing
// blocks in the picture.
func TestMemoAbortReuseResetEquivalent(t *testing.T) {
	cfg := OneVaultConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(64, 32, 1)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := warmMemo(t, m, art, img)
	_, full, err := Run(m, art, img)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunContext(context.Background(), m, art, img, RunOptions{MaxCycles: full.Cycles / 3}); err == nil {
		t.Fatal("budget abort did not fire")
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("reuse after abort: %v", err)
	}
	if h, _ := m.TimingMemoStats(); h > h0+1 {
		t.Errorf("post-abort run replayed pre-abort blocks (%d -> %d hits); Abort must flush", h0, h)
	}
	fresh, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOut, wantStats, err := Run(fresh, art, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, wantStats) {
		t.Errorf("post-abort stats differ from a fresh machine:\nfresh:  %+v\nreused: %+v", wantStats, stats)
	}
	if !reflect.DeepEqual(out.Pix, wantOut.Pix) {
		t.Error("post-abort output differs from a fresh machine")
	}
}

// TestNoMemoEnvOverride pins the IPIM_NO_MEMO escape hatch: with the
// environment set, a freshly built machine never consults the block
// cache — and still produces identical results.
func TestNoMemoEnvOverride(t *testing.T) {
	cfg := OneVaultConfig()
	wl, err := WorkloadByName("GaussianBlur")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(64, 32, 1)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	run3 := func(m *Machine) []Stats {
		var out []Stats
		for i := 0; i < 3; i++ {
			_, stats, err := Run(m, art, img)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, stats)
		}
		return out
	}
	ref, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := run3(ref)
	t.Setenv("IPIM_NO_MEMO", "1")
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.TimingMemo() {
		t.Error("IPIM_NO_MEMO=1 machine still reports the memoizer enabled")
	}
	got := run3(m)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("IPIM_NO_MEMO=1 runs diverge from memoized runs:\nwant %+v\ngot  %+v", want, got)
	}
	if h, ms := m.TimingMemoStats(); h != 0 || ms != 0 {
		t.Errorf("IPIM_NO_MEMO=1 machine consulted the cache (%d hits, %d misses)", h, ms)
	}
}

// TestHistogramAllModes pins RunHistogram as a mode invariant: the bins
// must be bit-identical under the machine default, an explicit cycle
// override, and the functional interpreter — and a tiny execution
// budget must abort every mode with the same typed ErrCycleBudget,
// worded in that mode's own unit (cycles vs. issued instructions).
func TestHistogramAllModes(t *testing.T) {
	cfg := TinyOneVaultConfig()
	wl, err := WorkloadByName("Histogram")
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, wl.TestH, 13)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}

	var ref []int32
	for _, mc := range []struct {
		name string
		mode Mode
	}{
		{"default", DefaultMode},
		{"cycle", CycleMode},
		{"functional", FunctionalMode},
	} {
		t.Run(mc.name, func(t *testing.T) {
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			bins, stats, err := RunHistogramContext(context.Background(), m, art, img,
				RunOptions{Mode: mc.mode})
			if err != nil {
				t.Fatal(err)
			}
			if mc.mode == FunctionalMode {
				if stats.Cycles != 0 {
					t.Errorf("functional histogram reports %d cycles; want 0", stats.Cycles)
				}
			} else if stats.Cycles == 0 {
				t.Errorf("%s histogram carried no clock", mc.name)
			}
			if ref == nil {
				ref = bins
			} else if !reflect.DeepEqual(bins, ref) {
				t.Errorf("%s bins diverge from the first mode's:\nwant %v\ngot  %v",
					mc.name, ref, bins)
			}
		})
	}

	for _, bc := range []struct {
		name string
		mode Mode
		want string
	}{
		{"cycle", CycleMode, "cycles into the run"},
		{"functional", FunctionalMode, "instructions into the run"},
	} {
		t.Run("budget-"+bc.name, func(t *testing.T) {
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, _, err = RunHistogramContext(context.Background(), m, art, img,
				RunOptions{Mode: bc.mode, MaxCycles: 8})
			if !errors.Is(err, ErrCycleBudget) {
				t.Fatalf("err = %v, want ErrCycleBudget", err)
			}
			if !strings.Contains(err.Error(), bc.want) {
				t.Errorf("%s budget abort should say %q: %q", bc.name, bc.want, err)
			}
			// The abort left the machine reusable: the full run succeeds.
			bins, _, err := RunHistogram(m, art, img)
			if err != nil {
				t.Fatalf("machine unusable after budget abort: %v", err)
			}
			if !reflect.DeepEqual(bins, ref) {
				t.Errorf("post-abort bins diverge from the unbudgeted run")
			}
		})
	}
}
