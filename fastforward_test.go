package ipim

// The fast-forward differential harness: idle-cycle fast-forward (the
// default) must be a pure host-time optimization. For any workload,
// machine shape, schedule, and fault plan, a fast-forwarded run and a
// stepwise run (SetFastForward(false), which walks every stall cycle
// one by one) must agree bit for bit on the FULL sim.Stats — cycle
// counts, the per-reason stall breakdown, DRAM/NoC counters, ECC fault
// tallies — and on the functional output. These tests are the safety
// net behind every advanceTo jump in internal/vault.

import (
	"math/rand"
	"reflect"
	"testing"

	"ipim/internal/dram"
)

// ffRun compiles wl at its test size for cfg and runs it on a fresh
// machine with fast-forward on or off. Histogram reduces to bins; image
// workloads return pixels — either way one []float32 to compare.
func ffRun(t *testing.T, cfg Config, wlName string, seed uint64, parallelism int, fastForward bool, plan *FaultPlan) (Stats, []float32, int64) {
	t.Helper()
	wl, err := WorkloadByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, seed)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatalf("compile %s: %v", wlName, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(parallelism)
	if !fastForward {
		// Only force stepwise explicitly; leaving the default alone lets
		// TestNoFFEnvOverride see the IPIM_NO_FF construction-time state.
		m.SetFastForward(false)
	}
	m.SetFaultPlan(plan)
	if wlName == "Histogram" {
		bins, stats, err := RunHistogram(m, art, img)
		if err != nil {
			t.Fatalf("run %s: %v", wlName, err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out, m.FastForwardedCycles()
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("run %s: %v", wlName, err)
	}
	return stats, out.Pix, m.FastForwardedCycles()
}

// TestFastForwardMatchesStepwise is the core differential on the
// standard machine shape: fast-forward on vs off, identical stats and
// outputs, and the fast path must actually skip cycles (otherwise the
// comparison is vacuous).
func TestFastForwardMatchesStepwise(t *testing.T) {
	for _, wlName := range []string{"Brighten", "GaussianBlur", "Shift", "Histogram"} {
		t.Run(wlName, func(t *testing.T) {
			cfg := detConfig()
			ffStats, ffOut, skipped := ffRun(t, cfg, wlName, 11, 4, true, nil)
			swStats, swOut, swSkipped := ffRun(t, cfg, wlName, 11, 4, false, nil)
			if !reflect.DeepEqual(ffStats, swStats) {
				t.Errorf("stats diverge between fast-forward and stepwise:\nff:       %+v\nstepwise: %+v",
					ffStats, swStats)
			}
			if !reflect.DeepEqual(ffOut, swOut) {
				t.Errorf("functional output diverges between fast-forward and stepwise")
			}
			if skipped == 0 {
				t.Errorf("fast-forward run skipped no cycles — the differential is vacuous")
			}
			if swSkipped != 0 {
				t.Errorf("stepwise run reports %d fast-forwarded cycles; want 0", swSkipped)
			}
		})
	}
}

// TestFastForwardRandomMatrix randomizes the machine shape, scheduling
// and page policies, workload, worker count, and fault rate (including
// a low 1e-6 DRAM bit-flip rate, so the fault decision streams are
// pinned too), and requires the two modes to agree on every draw. The
// rand stream is fixed-seed: every run tests the same matrix.
func TestFastForwardRandomMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloads := []string{"Brighten", "GaussianBlur", "Shift", "Histogram", "Downsample", "Upsample"}
	rates := []float64{0, 1e-6}
	exercised := 0
	for i := 0; i < 10; i++ {
		cfg := DefaultConfig()
		cfg.Cubes = 1 + rng.Intn(2)
		cfg.VaultsPerCube = []int{2, 4}[rng.Intn(2)]
		cfg.PGsPerVault = 1 + rng.Intn(2)
		cfg.PEsPerPG = []int{2, 4}[rng.Intn(2)]
		cfg.BankBytes = 1 << 20
		if rng.Intn(2) == 1 {
			cfg.Page = dram.ClosePage
		}
		if rng.Intn(2) == 1 {
			cfg.Sched = dram.FCFS
		}
		wlName := workloads[rng.Intn(len(workloads))]
		seed := rng.Uint64()
		workers := 1 + rng.Intn(4)
		rate := rates[i%len(rates)]
		// Some draws are legitimately incompatible (the compiler rejects
		// shapes whose PE count does not divide the tile grid); skip those
		// deterministically rather than shrinking the matrix. The fixed
		// rand seed keeps the skipped set identical on every run.
		wl, err := WorkloadByName(wlName)
		if err != nil {
			t.Fatal(err)
		}
		img := Synth(2*wl.TestW, 2*wl.TestH, seed)
		if _, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt); err != nil {
			t.Logf("draw %d (%s, %d cubes × %d vaults, %d PGs × %d PEs) skipped: %v",
				i, wlName, cfg.Cubes, cfg.VaultsPerCube, cfg.PGsPerVault, cfg.PEsPerPG, err)
			continue
		}
		exercised++
		var plan *FaultPlan
		if rate > 0 {
			plan = &FaultPlan{Seed: seed ^ 0x9e37, DRAMBitFlipRate: rate, DRAMMultiBitFraction: 0.5}
		}
		ffStats, ffOut, _ := ffRun(t, cfg, wlName, seed, workers, true, plan)
		swStats, swOut, _ := ffRun(t, cfg, wlName, seed, workers, false, plan)
		if !reflect.DeepEqual(ffStats, swStats) {
			t.Errorf("draw %d (%s, %d cubes × %d vaults, %d PGs × %d PEs, page=%v sched=%v, workers=%d, rate=%g): stats diverge:\nff:       %+v\nstepwise: %+v",
				i, wlName, cfg.Cubes, cfg.VaultsPerCube, cfg.PGsPerVault, cfg.PEsPerPG, cfg.Page, cfg.Sched, workers, rate, ffStats, swStats)
		}
		if !reflect.DeepEqual(ffOut, swOut) {
			t.Errorf("draw %d (%s): output diverges between fast-forward and stepwise", i, wlName)
		}
	}
	if exercised < 6 {
		t.Errorf("only %d of 10 matrix draws compiled — widen the shapes or reseed", exercised)
	}
}

// TestFastForwardFaultCountersMatch pins the fault path specifically: a
// rate high enough to inject real ECC events must tally identically in
// both modes (the decision streams are indexed by vault-owned event
// counters, never by the clock, so skipping idle cycles cannot shift
// them).
func TestFastForwardFaultCountersMatch(t *testing.T) {
	cfg := detConfig()
	plan := &FaultPlan{Seed: 99, DRAMBitFlipRate: 5e-3, DRAMMultiBitFraction: 0.5}
	ffStats, ffOut, _ := ffRun(t, cfg, "GaussianBlur", 5, 4, true, plan)
	swStats, swOut, _ := ffRun(t, cfg, "GaussianBlur", 5, 4, false, plan)
	if ffStats.DRAM.ECCCorrected == 0 && ffStats.DRAM.ECCUncorrected == 0 {
		t.Fatal("fault plan injected nothing — the comparison lost its teeth")
	}
	if !reflect.DeepEqual(ffStats, swStats) {
		t.Errorf("fault-injected stats diverge:\nff:       %+v\nstepwise: %+v", ffStats, swStats)
	}
	if !reflect.DeepEqual(ffOut, swOut) {
		t.Errorf("fault-injected outputs diverge between fast-forward and stepwise")
	}
}

// TestNoFFEnvOverride pins the IPIM_NO_FF escape hatch: with the
// environment set, a freshly built machine runs stepwise even without
// SetFastForward(false) — and still produces identical results.
func TestNoFFEnvOverride(t *testing.T) {
	ref, _, _ := ffRun(t, detConfig(), "Brighten", 7, 2, true, nil)
	t.Setenv("IPIM_NO_FF", "1")
	got, _, skipped := ffRun(t, detConfig(), "Brighten", 7, 2, true, nil)
	if !reflect.DeepEqual(ref, got) {
		t.Errorf("IPIM_NO_FF=1 run diverges from fast-forward run:\nwant %+v\ngot  %+v", ref, got)
	}
	if skipped != 0 {
		t.Errorf("IPIM_NO_FF=1 machine reports %d fast-forwarded cycles; want 0", skipped)
	}
}
