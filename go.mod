module ipim

go 1.22
