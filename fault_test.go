package ipim

// Differential tests for the fault-injection layer (internal/fault):
// the PR 2 determinism contract must extend to injected faults — the
// same fault.Plan seed produces bit-identical sim.Stats (including the
// new ECC and link-fault counters) and outputs between serial and
// parallel schedules — and a zero-rate plan must be a strict no-op
// against a faults-disabled run.

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ipim/internal/pixel"
)

// faultRun is detRun with a fault plan attached to the fresh machine.
func faultRun(t *testing.T, wlName string, seed uint64, parallelism int, plan *FaultPlan) (Stats, []float32) {
	t.Helper()
	cfg := detConfig()
	wl, err := WorkloadByName(wlName)
	if err != nil {
		t.Fatal(err)
	}
	img := Synth(2*wl.TestW, 2*wl.TestH, seed)
	art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatalf("compile %s: %v", wlName, err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(parallelism)
	m.SetFaultPlan(plan)
	if wlName == "Histogram" {
		bins, stats, err := RunHistogram(m, art, img)
		if err != nil {
			t.Fatalf("run %s: %v", wlName, err)
		}
		out := make([]float32, len(bins))
		for i, b := range bins {
			out[i] = float32(b)
		}
		return stats, out
	}
	out, stats, err := Run(m, art, img)
	if err != nil {
		t.Fatalf("run %s: %v", wlName, err)
	}
	return stats, out.Pix
}

// TestFaultInjectionDeterministicAcrossSchedules: with DRAM and link
// faults armed, serial and parallel runs at several worker counts must
// agree bit for bit — and the fault counters must be nonzero, or the
// comparison has no teeth.
func TestFaultInjectionDeterministicAcrossSchedules(t *testing.T) {
	plan := &FaultPlan{
		Seed:            2024,
		DRAMBitFlipRate: 2e-3, DRAMMultiBitFraction: 0.3,
		LinkFaultRate: 5e-3, LinkRetryPenalty: 20,
	}
	for _, wlName := range []string{"GaussianBlur", "Histogram"} {
		t.Run(wlName, func(t *testing.T) {
			ref, refOut := faultRun(t, wlName, 11, 1, plan)
			if ref.DRAM.ECCCorrected+ref.DRAM.ECCUncorrected == 0 {
				t.Fatal("no ECC events injected — fault rates too low for this test to mean anything")
			}
			if wlName == "Histogram" && ref.NoC.LinkFaults == 0 {
				t.Fatal("no link faults injected on the cross-vault workload")
			}
			for _, w := range []int{2, 4, 8} {
				got, gotOut := faultRun(t, wlName, 11, w, plan)
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("stats at parallelism %d diverge from serial:\nwant %+v\ngot  %+v", w, ref, got)
				}
				if !reflect.DeepEqual(refOut, gotOut) {
					t.Errorf("output at parallelism %d diverges from serial", w)
				}
			}
		})
	}
}

// TestFaultSeedReproducesAndSeparates: one seed reproduces its exact
// fault pattern on a fresh machine; a different seed produces a
// different one (over enough events).
func TestFaultSeedReproducesAndSeparates(t *testing.T) {
	mk := func(seed uint64) *FaultPlan {
		return &FaultPlan{Seed: seed, DRAMBitFlipRate: 5e-3, DRAMMultiBitFraction: 0.5}
	}
	a1, _ := faultRun(t, "GaussianBlur", 9, 2, mk(1))
	a2, _ := faultRun(t, "GaussianBlur", 9, 2, mk(1))
	if !reflect.DeepEqual(a1, a2) {
		t.Errorf("same seed did not reproduce stats:\n%+v\n%+v", a1, a2)
	}
	b, _ := faultRun(t, "GaussianBlur", 9, 2, mk(2))
	if a1.DRAM.ECCCorrected == b.DRAM.ECCCorrected && a1.DRAM.ECCUncorrected == b.DRAM.ECCUncorrected {
		t.Errorf("seeds 1 and 2 injected identical ECC tallies (%d/%d) — suspicious",
			a1.DRAM.ECCCorrected, a1.DRAM.ECCUncorrected)
	}
}

// TestZeroRateFaultPlanStrictNoOp: an attached plan with all rates zero
// must leave cycle counts, the full stats struct and the output
// bit-identical to a faults-disabled run, for every golden-suite
// workload shape that runs on the differential config.
func TestZeroRateFaultPlanStrictNoOp(t *testing.T) {
	zero := &FaultPlan{Seed: 12345} // nonzero seed, all rates zero
	for _, wlName := range []string{"Brighten", "GaussianBlur", "Histogram"} {
		t.Run(wlName, func(t *testing.T) {
			off, offOut := detRun(t, wlName, 5, 4)
			on, onOut := faultRun(t, wlName, 5, 4, zero)
			if !reflect.DeepEqual(off, on) {
				t.Errorf("zero-rate plan changed stats:\noff %+v\non  %+v", off, on)
			}
			if !reflect.DeepEqual(offOut, onOut) {
				t.Errorf("zero-rate plan changed the functional output")
			}
		})
	}
}

// TestCorrectedFaultsLeaveDataAndTimingIntact: under the SECDED model a
// single-bit flip is corrected in-line — counters tick, but neither the
// output nor any timing-visible counter may move.
func TestCorrectedFaultsLeaveDataAndTimingIntact(t *testing.T) {
	plan := &FaultPlan{Seed: 8, DRAMBitFlipRate: 1e-2, DRAMMultiBitFraction: 0}
	clean, cleanOut := detRun(t, "GaussianBlur", 3, 2)
	faulty, faultyOut := faultRun(t, "GaussianBlur", 3, 2, plan)
	if faulty.DRAM.ECCCorrected == 0 {
		t.Fatal("no corrected events at rate 1e-2")
	}
	if faulty.DRAM.ECCUncorrected != 0 {
		t.Fatalf("multibit fraction 0 produced %d uncorrected events", faulty.DRAM.ECCUncorrected)
	}
	if !reflect.DeepEqual(cleanOut, faultyOut) {
		t.Error("corrected-only faults corrupted the output")
	}
	// Everything except the corrected counter must match the clean run.
	faulty.DRAM.ECCCorrected = 0
	if !reflect.DeepEqual(clean, faulty) {
		t.Errorf("corrected-only faults perturbed non-ECC stats:\nclean  %+v\nfaulty %+v", clean, faulty)
	}
}

// TestUncorrectedFaultsCorruptOutput: multi-bit flips must actually
// show up in the result — finite PSNR against the clean output.
func TestUncorrectedFaultsCorruptOutput(t *testing.T) {
	plan := &FaultPlan{Seed: 4, DRAMBitFlipRate: 5e-2, DRAMMultiBitFraction: 1}
	_, cleanOut := detRun(t, "Brighten", 6, 2)
	faulty, faultyOut := faultRun(t, "Brighten", 6, 2, plan)
	if faulty.DRAM.ECCUncorrected == 0 {
		t.Fatal("no uncorrected events at rate 5e-2, multibit 1.0")
	}
	if reflect.DeepEqual(cleanOut, faultyOut) {
		t.Fatal("uncorrected faults left the output untouched")
	}
	a := &Image{W: len(cleanOut), H: 1, Pix: cleanOut}
	b := &Image{W: len(faultyOut), H: 1, Pix: faultyOut}
	if psnr := pixel.PSNR(a, b); math.IsInf(psnr, 1) || psnr <= 0 {
		t.Fatalf("PSNR %v for corrupted output", psnr)
	}
}

// TestTransientExecFaultThenRetrySucceeds: an ExecFailFirst plan aborts
// the first run of every vault with a retryable error; rerunning the
// same machine (its per-vault phase counters have advanced) succeeds
// and produces the clean output, on both schedules.
func TestTransientExecFaultThenRetrySucceeds(t *testing.T) {
	for _, workers := range []int{1, 4} {
		cfg := detConfig()
		wl, err := WorkloadByName("Brighten")
		if err != nil {
			t.Fatal(err)
		}
		img := Synth(2*wl.TestW, 2*wl.TestH, 7)
		art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.SetParallelism(workers)
		m.SetFaultPlan(&FaultPlan{Seed: 1, ExecFailFirst: 1})
		if _, _, err := Run(m, art, img); !errors.Is(err, ErrTransientFault) {
			t.Fatalf("workers=%d: first run error = %v, want ErrTransientFault", workers, err)
		}
		out, stats, err := Run(m, art, img)
		if err != nil {
			t.Fatalf("workers=%d: retry failed: %v", workers, err)
		}
		if stats.Cycles <= 0 {
			t.Fatalf("workers=%d: degenerate retry stats %+v", workers, stats)
		}
		_, cleanOut := detRun(t, "Brighten", 7, workers)
		if !reflect.DeepEqual(out.Pix, cleanOut) {
			t.Errorf("workers=%d: retry output differs from clean run", workers)
		}
	}
}
