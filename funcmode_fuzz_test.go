package ipim

// FuzzFunctionalVsTiming fuzzes the functional/timing split at the
// SIMB-source level: any program the assembler accepts must either run
// to completion in BOTH modes with bit-identical architectural state —
// control registers, address/data register files, vault scratch
// memories, PG scratchpads, bank bytes — or fail in both modes with the
// same error at the same program counter. `go test` exercises the seed
// corpus; scripts/ci.sh gives the fuzzer a 10-second exploration slot;
// `go test -fuzz=FuzzFunctionalVsTiming .` explores further.

import (
	"testing"
)

// fuzzBankBytes bounds each PE's bank so full-content comparison stays
// cheap per fuzz iteration. Programs addressing beyond it fail with the
// same bounds error in both modes, which is itself a compared outcome.
const fuzzBankBytes = 1 << 16

// runModeFuzz executes prog on a fresh tiny machine in the given mode,
// under a phase-step budget so never-syncing fuzz programs terminate
// deterministically (the step budget trips at the same pc with the same
// message in both modes; MaxCycles would not — it is an instruction
// bound in functional mode by design).
func runModeFuzz(prog *Program, mode Mode) (*Machine, error) {
	cfg := TinyConfig()
	cfg.BankBytes = fuzzBankBytes
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	m.SetParallelism(1)
	m.SetMode(mode)
	m.SetBudget(RunOptions{MaxPhaseSteps: 4096})
	_, err = m.RunSame(prog)
	return m, err
}

// diffMachines compares every piece of architectural state the two
// modes promise to agree on, returning a description of the first
// divergence ("" = identical).
func diffMachines(cyc, fun *Machine) string {
	cfg := TinyConfig()
	for c := 0; c < cfg.Cubes; c++ {
		for vi := 0; vi < cfg.VaultsPerCube; vi++ {
			vc, vf := cyc.Vault(c, vi), fun.Vault(c, vi)
			for i := range vc.CRF {
				if vc.CRF[i] != vf.CRF[i] {
					return "CRF"
				}
			}
			if string(vc.VSM) != string(vf.VSM) {
				return "VSM"
			}
			for pg := 0; pg < cfg.PGsPerVault; pg++ {
				if string(vc.PGs[pg].PGSM) != string(vf.PGs[pg].PGSM) {
					return "PGSM"
				}
				for pe := 0; pe < cfg.PEsPerPG; pe++ {
					pc, pf := vc.PE(pg, pe), vf.PE(pg, pe)
					for i := range pc.AddrRF {
						if pc.AddrRF[i] != pf.AddrRF[i] {
							return "AddrRF"
						}
					}
					for i := range pc.DataRF {
						if pc.DataRF[i] != pf.DataRF[i] {
							return "DataRF"
						}
					}
					bc, err1 := pc.ReadBank(0, fuzzBankBytes)
					bf, err2 := pf.ReadBank(0, fuzzBankBytes)
					if err1 != nil || err2 != nil {
						return "bank read"
					}
					if string(bc) != string(bf) {
						return "bank bytes"
					}
				}
			}
		}
	}
	return ""
}

func FuzzFunctionalVsTiming(f *testing.F) {
	// Seed with the adversarial cancellation corpus (never-syncing
	// loops exercise the budget-parity path)...
	for _, src := range adversarialPrograms {
		f.Add(src)
	}
	// ...straight-line programs that complete and leave state to
	// compare across every architectural store...
	f.Add(`
seti_crf c1, #8
calc_crf iadd c2, c1, #1
calc_arf iadd a4, a0, #64, sm=*
seti_vsm 0x10, #42
ld_rf d0, @a4, sm=*
comp fadd vv d2, d0, d0, vm=0xf, sm=*
st_rf d2, 0x100, sm=*
ld_pgsm 0x200, 0x40, sm=*
rd_pgsm d4, 0x40, sm=*
wr_pgsm d4, 0x60, sm=*
rd_vsm d5, 0x10, sm=0x1
wr_vsm d5, 0x90, sm=0x1
mov_arf a6, d2, lane=2, sm=*
mov_drf d6, a6, lane=0, sm=*
reset d7, sm=*
sync 0
st_rf d6, 0x300, sm=*
sync 1
`)
	// ...error parity: out-of-bounds bank and VSM accesses, a
	// jump through an out-of-range register target, and a remote
	// request to a vault the tiny machine does not have.
	f.Add("ld_rf d0, 0xfffffff0, sm=*\nsync 0\n")
	f.Add("seti_vsm 0xfffffff0, #1\n")
	f.Add("seti_crf c0, #-5\njump c0\n")
	f.Add("req chip=0, vault=7, pg=0, pe=0, dram=0x0, vsm=0x0\nsync 0\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return // rejected input: nothing to differentiate
		}
		if err := prog.Finalize(); err != nil {
			return
		}
		cyc, cycErr := runModeFuzz(prog, CycleMode)
		fun, funErr := runModeFuzz(prog, FunctionalMode)
		switch {
		case cycErr == nil && funErr == nil:
			if d := diffMachines(cyc, fun); d != "" {
				t.Fatalf("architectural state diverges between modes (%s)\n--- source ---\n%s", d, src)
			}
		case cycErr != nil && funErr != nil:
			if cycErr.Error() != funErr.Error() {
				t.Fatalf("error divergence:\ncycle:      %v\nfunctional: %v\n--- source ---\n%s",
					cycErr, funErr, src)
			}
		default:
			t.Fatalf("one mode failed, the other succeeded:\ncycle:      %v\nfunctional: %v\n--- source ---\n%s",
				cycErr, funErr, src)
		}
	})
}
