package ipim

// Differential harness for the DNN/GEMM workload family: every member
// must agree bit for bit with its independent host golden reference
// (plain Go loops in internal/workloads/dnn.go) AND with the halide
// reference interpreter, across image sizes, with the multi-array
// stage-ahead schedule on and off, in cycle and functional modes, at
// any phase-worker count. The multi-array schedule must also actually
// pay: fewer cycles than the baseline list schedule on the GEMM and
// conv operators (the BENCH_dnn.json acceptance gate, pinned here at
// reduced size).

import (
	"fmt"
	"reflect"
	"testing"

	"ipim/internal/pixel"
	"ipim/internal/workloads"
)

// dnnImg synthesizes the family's canonical input: heights are fixed
// by operator geometry, so only the width scales.
func dnnImg(w, h int) *Image {
	return Synth(w, h, uint64(w)*1_000_003+uint64(h))
}

func TestDNNGoldenSweep(t *testing.T) {
	for _, wl := range DNNWorkloads() {
		for _, scale := range []int{1, 2} {
			for _, multiArray := range []bool{true, false} {
				wl, w, h := wl, scale*wl.TestW, wl.TestH
				t.Run(fmt.Sprintf("%s/%dx%d/multiarray=%v", wl.Name, w, h, multiArray), func(t *testing.T) {
					cfg := TinyConfig()
					pipe := wl.Build().Pipe.MultiArraySchedule(multiArray)
					img := dnnImg(w, h)
					art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					m, err := NewMachine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					out, stats, err := Run(m, art, img)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					golden := wl.Host(img)
					if !reflect.DeepEqual(out.Pix, golden.Pix) {
						t.Errorf("simulated output deviates from the host golden by %g",
							pixel.MaxAbsDiff(out, golden))
					}
					ref, err := pipe.Reference(img)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ref.Pix, golden.Pix) {
						t.Errorf("reference interpreter deviates from the host golden by %g",
							pixel.MaxAbsDiff(ref, golden))
					}
					if stats.Cycles <= 0 || stats.Issued <= 0 {
						t.Errorf("degenerate stats: %+v", stats)
					}
					// The plan must model the per-vault PE arrays, and
					// double-buffer the staging partitions exactly when the
					// stage-ahead schedule engages (needs >1 tile per PE).
					if len(art.Plan.Arrays) != cfg.PGsPerVault {
						t.Fatalf("plan models %d arrays; config has %d PGs per vault",
							len(art.Plan.Arrays), cfg.PGsPerVault)
					}
					wantBufs := 1
					if multiArray && art.Plan.TilesPerPE > 1 {
						wantBufs = 2
					}
					for _, a := range art.Plan.Arrays {
						if a.Buffers != wantBufs {
							t.Errorf("array PG%d has %d staging buffers, want %d (multiArray=%v, tiles/PE=%d)",
								a.PG, a.Buffers, wantBufs, multiArray, art.Plan.TilesPerPE)
						}
					}
				})
			}
		}
	}
}

// TestDNNScheduleInvariant pins that the multi-array schedule is a pure
// timing optimization: identical pixels either way, same instruction
// stream semantics, and on a machine wide enough for staged tiles it
// must cost strictly fewer cycles than the baseline list schedule on
// the GEMM and conv operators.
func TestDNNScheduleInvariant(t *testing.T) {
	mustBeat := map[string]bool{"GEMM": true, "Conv3x3": true}
	for _, wl := range DNNWorkloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			cfg := OneVaultConfig()
			img := dnnImg(wl.BenchW, wl.BenchH)
			run := func(multiArray bool) (*Image, Stats) {
				pipe := wl.Build().Pipe.MultiArraySchedule(multiArray)
				art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
				if err != nil {
					t.Fatalf("compile (multiArray=%v): %v", multiArray, err)
				}
				if multiArray && art.Plan.Arrays[0].Buffers != 2 {
					t.Fatalf("stage-ahead schedule did not engage (tiles/PE=%d)", art.Plan.TilesPerPE)
				}
				m, err := NewMachine(cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, stats, err := Run(m, art, img)
				if err != nil {
					t.Fatalf("run (multiArray=%v): %v", multiArray, err)
				}
				return out, stats
			}
			base, baseStats := run(false)
			ma, maStats := run(true)
			if !reflect.DeepEqual(base.Pix, ma.Pix) {
				t.Errorf("multi-array schedule changed the output")
			}
			if !reflect.DeepEqual(base.Pix, wl.Host(img).Pix) {
				t.Errorf("baseline output deviates from the host golden")
			}
			if mustBeat[wl.Name] && maStats.Cycles >= baseStats.Cycles {
				t.Errorf("multi-array schedule does not pay: %d cycles vs baseline %d",
					maStats.Cycles, baseStats.Cycles)
			}
			t.Logf("%s: baseline %d cycles, multi-array %d cycles (%.2fx)",
				wl.Name, baseStats.Cycles, maStats.Cycles,
				float64(baseStats.Cycles)/float64(maStats.Cycles))
		})
	}
}

// TestDNNFunctionalMatchesCycle: the functional interpreter must erase
// only timing for the DNN family too — same pixels and instruction
// profile with the stage-ahead schedule's prefetch stream in play.
func TestDNNFunctionalMatchesCycle(t *testing.T) {
	for _, wl := range DNNWorkloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			cfg := TinyConfig()
			img := dnnImg(2*wl.TestW, wl.TestH)
			art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			mc, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cycOut, cycStats, err := Run(mc, art, img)
			if err != nil {
				t.Fatalf("cycle run: %v", err)
			}
			mf, err := NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mf.SetMode(FunctionalMode)
			funOut, funStats, err := Run(mf, art, img)
			if err != nil {
				t.Fatalf("functional run: %v", err)
			}
			if !reflect.DeepEqual(cycOut.Pix, funOut.Pix) {
				t.Errorf("functional output diverges from cycle mode")
			}
			if funStats.Cycles != 0 {
				t.Errorf("functional run reports %d cycles; want 0", funStats.Cycles)
			}
			if funStats.Issued != cycStats.Issued {
				t.Errorf("issued instructions diverge: functional %d, cycle %d",
					funStats.Issued, cycStats.Issued)
			}
			if funStats.InstByCategory != cycStats.InstByCategory {
				t.Errorf("instruction mix diverges:\nfunctional %v\ncycle      %v",
					funStats.InstByCategory, cycStats.InstByCategory)
			}
		})
	}
}

// TestDNNSerialParallelIdentical extends the determinism contract to
// the DNN family on a multi-cube machine: full stats and pixels must
// be schedule-invariant in both execution modes.
func TestDNNSerialParallelIdentical(t *testing.T) {
	for _, wl := range DNNWorkloads() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			cfg := detConfig()
			img := dnnImg(8*wl.TestW, wl.TestH)
			art, err := Compile(&cfg, wl.Build().Pipe, img.W, img.H, Opt)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			for _, mode := range []Mode{CycleMode, FunctionalMode} {
				var ref Stats
				var refOut []float32
				for i, par := range []int{1, 4} {
					m, err := NewMachine(cfg)
					if err != nil {
						t.Fatal(err)
					}
					m.SetParallelism(par)
					m.SetMode(mode)
					out, stats, err := Run(m, art, img)
					if err != nil {
						t.Fatalf("run (mode=%v par=%d): %v", mode, par, err)
					}
					if i == 0 {
						ref, refOut = stats, out.Pix
						continue
					}
					if !reflect.DeepEqual(ref, stats) {
						t.Errorf("mode %v: stats diverge between serial and parallel:\nserial:   %+v\nparallel: %+v",
							mode, ref, stats)
					}
					if !reflect.DeepEqual(refOut, out.Pix) {
						t.Errorf("mode %v: output diverges between serial and parallel", mode)
					}
				}
			}
		})
	}
}

// TestPackConv2D pins the clamp-padding packer against the Conv3x3
// plane layout: each channel's plane replicates its own edge rows, no
// cross-channel bleed, and ragged channel splits are rejected.
func TestPackConv2D(t *testing.T) {
	const c, h, w = 2, 4, 5
	act := Synth(w, c*h, 99)
	packed, err := workloads.PackConv2D(act, c)
	if err != nil {
		t.Fatal(err)
	}
	if packed.W != w || packed.H != c*(h+2) {
		t.Fatalf("packed shape %dx%d, want %dx%d", packed.W, packed.H, w, c*(h+2))
	}
	for ch := 0; ch < c; ch++ {
		for r := 0; r < h+2; r++ {
			src := r - 1
			if src < 0 {
				src = 0
			}
			if src >= h {
				src = h - 1
			}
			for x := 0; x < w; x++ {
				if got, want := packed.At(x, ch*(h+2)+r), act.At(x, ch*h+src); got != want {
					t.Fatalf("channel %d plane row %d col %d: %g, want %g", ch, r, x, got, want)
				}
			}
		}
	}
	if _, err := workloads.PackConv2D(act, 3); err == nil {
		t.Error("ragged channel split accepted")
	}
}
