package halide

import (
	"fmt"
	"math/rand"
	"testing"

	"ipim/internal/pixel"
)

func TestSimplifyConstFolding(t *testing.T) {
	e := Add(K(2), Mul(K(3), K(4)))
	s := Simplify(e)
	c, ok := s.(Const)
	if !ok || c.V != 14 {
		t.Fatalf("Simplify = %#v, want Const 14", s)
	}
}

func TestSimplifyMulByOne(t *testing.T) {
	e := Mul(In(0, 0), K(1))
	if _, ok := Simplify(e).(Access); !ok {
		t.Fatalf("x*1 not collapsed: %#v", Simplify(e))
	}
	e2 := Mul(K(1), In(1, 1))
	if _, ok := Simplify(e2).(Access); !ok {
		t.Fatalf("1*x not collapsed: %#v", Simplify(e2))
	}
	// x*0 must NOT be collapsed (NaN/Inf semantics).
	e3 := Mul(In(0, 0), K(0))
	if _, ok := Simplify(e3).(Const); ok {
		t.Fatal("x*0 unsafely folded")
	}
}

func TestSimplifyMinMaxIdentical(t *testing.T) {
	e := Min(In(2, 1), In(2, 1))
	if _, ok := Simplify(e).(Access); !ok {
		t.Fatalf("min(x,x) not collapsed: %#v", Simplify(e))
	}
	// Different offsets stay.
	e2 := Max(In(0, 0), In(1, 0))
	if _, ok := Simplify(e2).(Bin); !ok {
		t.Fatal("max(x,y) wrongly collapsed")
	}
}

func TestSimplifySelectConstFold(t *testing.T) {
	e := Sel(K(1), K(5), K(9))
	c, ok := Simplify(e).(Const)
	if !ok || c.V != 5 {
		t.Fatalf("select(1,5,9) = %#v", Simplify(e))
	}
	// Non-const branches keep the Select.
	e2 := Sel(K(1), In(0, 0), K(9))
	if _, ok := Simplify(e2).(Select); !ok {
		t.Fatal("select with non-const branch folded")
	}
}

func TestCountNodes(t *testing.T) {
	e := Add(Mul(In(0, 0), K(2)), Sel(LT(K(0), K(1)), K(1), K(2)))
	if n := CountNodes(e); n != 10 {
		t.Fatalf("CountNodes = %d, want 10", n)
	}
	s := Simplify(e)
	if n := CountNodes(s); n >= 9 {
		t.Fatalf("Simplify did not shrink: %d nodes", n)
	}
}

// Property: for random expressions, the simplified tree evaluates
// bit-identically to the original at every pixel.
func TestSimplifyBitExactQuick(t *testing.T) {
	img := pixel.Synth(16, 8, 3)
	r := rand.New(rand.NewSource(11))
	var gen func(depth int) Expr
	gen = func(depth int) Expr {
		if depth <= 0 || r.Intn(3) == 0 {
			if r.Intn(3) == 0 {
				// Include awkward constants: 0, 1, negatives.
				vals := []float32{0, 1, -1, 0.5, 3, -2.25}
				return K(vals[r.Intn(len(vals))])
			}
			return In(r.Intn(3)-1, r.Intn(3)-1)
		}
		// Div omitted: random constants divide by zero, and the
		// reference interpreter rejects non-finite results by design.
		ops := []func(a, b Expr) Expr{Add, Sub, Mul, Min, Max, LT}
		if r.Intn(6) == 0 {
			return Sel(gen(depth-1), gen(depth-1), gen(depth-1))
		}
		return ops[r.Intn(len(ops))](gen(depth-1), gen(depth-1))
	}
	for trial := 0; trial < 200; trial++ {
		e := gen(4)
		raw := NewFunc(fmt.Sprintf("raw%d", trial)).Define(e)
		simp := NewFunc(fmt.Sprintf("simp%d", trial)).Define(Simplify(e))
		p1 := NewPipeline("raw", raw)
		p2 := NewPipeline("simp", simp)
		o1, err := p1.Reference(img)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := p2.Reference(img)
		if err != nil {
			t.Fatal(err)
		}
		for i := range o1.Pix {
			a, b := o1.Pix[i], o2.Pix[i]
			if a != b && !(a != a && b != b) { // NaN == NaN for our purposes
				t.Fatalf("trial %d pixel %d: %v != %v\nexpr nodes %d -> %d",
					trial, i, a, b, CountNodes(e), CountNodes(Simplify(e)))
			}
		}
	}
}
