package halide

import (
	"math"
	"testing"

	"ipim/internal/pixel"
)

func refAt(t *testing.T, f *Func, img *pixel.Image, x, y int) float32 {
	t.Helper()
	p := NewPipeline("t", f)
	out, err := p.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	return out.At(x, y)
}

func TestBoxFilter(t *testing.T) {
	img := pixel.Ramp(8, 8)
	b := Box("b", nil, 1)
	// Interior pixel (3,3): mean of the ramp 3x3 neighborhood.
	var want float32
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			want += img.At(3+dx, 3+dy)
		}
	}
	want *= 1.0 / 9
	if got := refAt(t, b, img, 3, 3); got != want {
		t.Fatalf("box(3,3) = %v, want %v", got, want)
	}
	// Radius 0 is identity.
	id := Box("id", nil, 0)
	if got := refAt(t, id, img, 2, 5); got != img.At(2, 5) {
		t.Fatal("box radius 0 not identity")
	}
}

func TestBoxPanicsOnNegativeRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative radius accepted")
		}
	}()
	Box("bad", nil, -1)
}

func TestSeparableGaussianWeights(t *testing.T) {
	// Radius 1 => weights 1,2,1: a constant image stays constant.
	img := pixel.New(8, 8)
	img.Fill(0.5)
	g := SeparableGaussian("g", nil, 1)
	if got := refAt(t, g, img, 4, 4); math.Abs(float64(got-0.5)) > 1e-6 {
		t.Fatalf("gaussian of constant = %v", got)
	}
	// Gaussian smooths: variance must drop on a noisy image.
	noisy := pixel.Synth(32, 32, 17)
	p := NewPipeline("g", SeparableGaussian("g2", nil, 2))
	out, err := p.Reference(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if out.Variance() >= noisy.Variance() {
		t.Fatalf("gaussian increased variance: %v -> %v", noisy.Variance(), out.Variance())
	}
}

func TestBinomial(t *testing.T) {
	got := binomial(4)
	want := []float32{1, 4, 6, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("binomial(4) = %v", got)
		}
	}
}

func TestSobelOnEdge(t *testing.T) {
	// A vertical step edge: strong response at the edge, zero far away.
	img := pixel.New(16, 8)
	for y := 0; y < 8; y++ {
		for x := 8; x < 16; x++ {
			img.Set(x, y, 1)
		}
	}
	s := SobelMag("s", nil)
	p := NewPipeline("s", s)
	out, err := p.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(7, 4) <= 0.5 {
		t.Fatalf("edge response %v too weak", out.At(7, 4))
	}
	if out.At(2, 4) != 0 {
		t.Fatalf("flat region response %v", out.At(2, 4))
	}
}

func TestUnsharpMaskSharpens(t *testing.T) {
	img := pixel.Synth(32, 16, 9)
	u := UnsharpMask("u", nil, 1.5)
	p := NewPipeline("u", u)
	out, err := p.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	// Sharpening raises local contrast: variance grows (clamped to [0,1]).
	if out.Variance() <= img.Variance() {
		t.Fatalf("unsharp mask lowered variance: %v -> %v", img.Variance(), out.Variance())
	}
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("unsharp mask out of range: %v", v)
		}
	}
}

func TestMorphologyOrdering(t *testing.T) {
	img := pixel.Synth(16, 16, 4)
	d, err := NewPipeline("d", Dilate("d", nil)).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewPipeline("e", Erode("e", nil)).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if !(e.Pix[i] <= img.Pix[i] && img.Pix[i] <= d.Pix[i]) {
			t.Fatalf("pixel %d: erode %v <= src %v <= dilate %v violated",
				i, e.Pix[i], img.Pix[i], d.Pix[i])
		}
	}
}

func TestThreshold(t *testing.T) {
	img := pixel.New(4, 1)
	img.Pix = []float32{0.1, 0.5, 0.7, 0.49}
	th := Threshold("t", nil, 0.5)
	out, err := NewPipeline("t", th).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 1, 0}
	for i := range want {
		if out.Pix[i] != want[i] {
			t.Fatalf("threshold = %v, want %v", out.Pix, want)
		}
	}
}

// The blocks must also compile and run on the simulator bit-exactly.
func TestFilterBlocksCompileChain(t *testing.T) {
	g := SeparableGaussian("fg", nil, 1)
	g.ComputeRoot().LoadPGSM()
	s := SobelMag("fs", g)
	pipe := NewPipeline("edgechain", s).ClampStages()
	_ = pipe // compiled in the compiler package's integration tests; here
	// just check the stage graph is well formed.
	stages, err := pipe.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
}
