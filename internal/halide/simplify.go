package halide

// Simplify rewrites an expression using only bit-exact-safe
// transformations, so a simplified tree evaluates to exactly the same
// FP32 values as the original on every input:
//
//   - constant folding (the op is performed once at compile time with
//     the same float32 arithmetic the interpreter would use),
//   - multiplication by the literal 1 (x*1 == x bitwise, including
//     NaN and signed zero),
//   - min(x,x)/max(x,x) collapse for syntactically identical operands.
//
// Transformations that are *not* bit-exact for special values (x+0
// changes -0; x*0 changes NaN/Inf) are deliberately omitted: the
// compiler's output must stay bit-identical to the reference
// interpreter.
func Simplify(e Expr) Expr {
	switch t := e.(type) {
	case Const, Access:
		return e
	case Bin:
		a := Simplify(t.A)
		b := Simplify(t.B)
		if ca, ok := a.(Const); ok {
			if cb, ok := b.(Const); ok {
				return Const{V: evalBinConst(t.Op, ca.V, cb.V)}
			}
		}
		if t.Op == OpMul {
			if ca, ok := a.(Const); ok && ca.V == 1 && !isNegZero(ca.V) {
				return b
			}
			if cb, ok := b.(Const); ok && cb.V == 1 && !isNegZero(cb.V) {
				return a
			}
		}
		if (t.Op == OpMin || t.Op == OpMax) && sameExpr(a, b) {
			return a
		}
		return Bin{Op: t.Op, A: a, B: b}
	case Select:
		c := Simplify(t.Cond)
		then := Simplify(t.Then)
		els := Simplify(t.Els())
		if cc, ok := c.(Const); ok {
			// The blend lowering is cond*then + (1-cond)*else; for the
			// exact literals 0 and 1 the blend is bit-exact to picking
			// a branch only when the other branch is finite — so fold
			// only the arithmetic, not the branch: keep the Select
			// unless cond is exactly 0 or 1 AND both branches are
			// constants (then the blend folds exactly).
			if tc, ok2 := then.(Const); ok2 {
				if ec, ok3 := els.(Const); ok3 {
					return Const{V: cc.V*tc.V + (1-cc.V)*ec.V}
				}
			}
		}
		return Select{Cond: c, Then: then, Else: els}
	case Reduce:
		terms := make([]Expr, len(t.Terms))
		for i, term := range t.Terms {
			terms[i] = Simplify(term)
		}
		if len(terms) == 1 {
			// A single-term reduction is just its term: the backend
			// copies the first term into the accumulator bit-exactly,
			// so dropping the wrapper cannot change any result.
			return terms[0]
		}
		return Reduce{Terms: terms}
	case Tab:
		if len(t.Vals) == 1 {
			// Every index clamps to the only entry.
			return Const{V: t.Vals[0]}
		}
		return e
	}
	return e
}

// Els returns the else branch (accessor to keep Simplify readable).
func (s Select) Els() Expr { return s.Else }

func isNegZero(v float32) bool {
	return v == 0 && 1/float64(v) < 0
}

func evalBinConst(op BinOp, a, b float32) float32 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		return a / b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpLT:
		if a < b {
			return 1
		}
		return 0
	}
	return a
}

// sameExpr reports syntactic equality of two trees.
func sameExpr(a, b Expr) bool {
	switch ta := a.(type) {
	case Const:
		tb, ok := b.(Const)
		return ok && ta.V == tb.V
	case Access:
		tb, ok := b.(Access)
		return ok && ta.Func == tb.Func && ta.CX == tb.CX && ta.CY == tb.CY
	case Bin:
		tb, ok := b.(Bin)
		return ok && ta.Op == tb.Op && sameExpr(ta.A, tb.A) && sameExpr(ta.B, tb.B)
	case Select:
		tb, ok := b.(Select)
		return ok && sameExpr(ta.Cond, tb.Cond) && sameExpr(ta.Then, tb.Then) && sameExpr(ta.Else, tb.Else)
	case Reduce:
		tb, ok := b.(Reduce)
		if !ok || len(ta.Terms) != len(tb.Terms) {
			return false
		}
		for i := range ta.Terms {
			if !sameExpr(ta.Terms[i], tb.Terms[i]) {
				return false
			}
		}
		return true
	case Tab:
		tb, ok := b.(Tab)
		if !ok || len(ta.Vals) != len(tb.Vals) || ta.CX != tb.CX || ta.CY != tb.CY {
			return false
		}
		for i := range ta.Vals {
			if ta.Vals[i] != tb.Vals[i] {
				return false
			}
		}
		return true
	}
	return false
}

// CountNodes measures expression size (for simplification tests and
// compiler diagnostics).
func CountNodes(e Expr) int {
	switch t := e.(type) {
	case Const, Access:
		return 1
	case Bin:
		return 1 + CountNodes(t.A) + CountNodes(t.B)
	case Select:
		return 1 + CountNodes(t.Cond) + CountNodes(t.Then) + CountNodes(t.Else)
	case Reduce:
		n := 1
		for _, term := range t.Terms {
			n += CountNodes(term)
		}
		return n
	}
	return 1
}
