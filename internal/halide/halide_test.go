package halide

import (
	"math"
	"testing"
	"testing/quick"

	"ipim/internal/pixel"
)

func TestCoordApply(t *testing.T) {
	cases := []struct {
		c    Coord
		v    int
		want int
	}{
		{C(0), 5, 5},
		{C(-1), 5, 4},
		{C(3), 5, 8},
		{CScale(2, 1, 1), 5, 11},
		{CScale(1, 0, 2), 5, 2},
		{CScale(1, 1, 2), 5, 3},
		{CScale(1, 0, 2), -3, -2}, // floor division
		{CScale(1, -1, 2), 0, -1},
	}
	for _, c := range cases {
		if got := c.c.Apply(c.v); got != c.want {
			t.Errorf("Coord%+v.Apply(%d) = %d, want %d", c.c, c.v, got, c.want)
		}
	}
}

func TestFloorDivQuick(t *testing.T) {
	f := func(a int16, b uint8) bool {
		d := int(b)%7 + 1
		got := floorDiv(int(a), d)
		want := int(math.Floor(float64(a) / float64(d)))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// blurPipeline builds the Listing 1 blur: blurx inlined into out.
func blurPipeline() (*Pipeline, *Func, *Func) {
	blurx := NewFunc("blurx").Define(
		Mul(Add(Add(In(-1, 0), In(0, 0)), In(1, 0)), K(1.0/3)))
	out := NewFunc("out").Define(
		Mul(Add(Add(blurx.At(0, -1), blurx.At(0, 0)), blurx.At(0, 1)), K(1.0/3))).
		ComputeRoot().LoadPGSM()
	return NewPipeline("blur", out), blurx, out
}

func TestStagesInlineVsComputeRoot(t *testing.T) {
	p, blurx, out := blurPipeline()
	stages, err := p.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || stages[0] != out {
		t.Fatalf("stages = %v (blurx should be inlined)", names(stages))
	}
	blurx.ComputeRoot()
	stages, err = p.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 2 || stages[0] != blurx || stages[1] != out {
		t.Fatalf("stages = %v, want [blurx out]", names(stages))
	}
}

func names(fs []*Func) []string {
	var n []string
	for _, f := range fs {
		n = append(n, f.Name)
	}
	return n
}

func TestStagesErrors(t *testing.T) {
	// Undefined func.
	f := NewFunc("f")
	p := NewPipeline("bad", f)
	if _, err := p.Stages(); err == nil {
		t.Error("undefined func accepted")
	}
	// Cycle.
	a := NewFunc("a")
	b := NewFunc("b")
	a.Define(b.At(0, 0))
	b.Define(a.At(0, 0))
	if _, err := NewPipeline("cyc", a).Stages(); err == nil {
		t.Error("cyclic pipeline accepted")
	}
	// Nil output.
	if _, err := (&Pipeline{Name: "nil"}).Stages(); err == nil {
		t.Error("nil output accepted")
	}
}

func TestReferenceBlurMatchesManual(t *testing.T) {
	p, _, _ := blurPipeline()
	in := pixel.Synth(16, 12, 9)
	got, err := p.Reference(in)
	if err != nil {
		t.Fatal(err)
	}
	// Manual evaluation with the same clamp-at-input semantics.
	blurx := func(x, y int) float32 {
		return (in.At(x-1, y) + in.At(x, y) + in.At(x+1, y)) * float32(1.0/3)
	}
	for y := 0; y < 12; y++ {
		for x := 0; x < 16; x++ {
			want := (blurx(x, y-1) + blurx(x, y) + blurx(x, y+1)) * float32(1.0/3)
			if got.At(x, y) != want {
				t.Fatalf("blur(%d,%d) = %v, want %v", x, y, got.At(x, y), want)
			}
		}
	}
}

func TestReferenceDownsampleScale(t *testing.T) {
	// out(x,y) = in(2x, 2y): output is half size.
	out := NewFunc("down").Define(InC(CScale(2, 0, 1), CScale(2, 0, 1)))
	p := NewPipeline("down", out).OutScale(1, 2)
	in := pixel.Ramp(8, 8)
	got, err := p.Reference(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 4 || got.H != 4 {
		t.Fatalf("output %dx%d, want 4x4", got.W, got.H)
	}
	if got.At(1, 2) != in.At(2, 4) {
		t.Fatalf("down(1,2) = %v, want %v", got.At(1, 2), in.At(2, 4))
	}
}

func TestReferenceUpsampleScale(t *testing.T) {
	out := NewFunc("up").Define(InC(CScale(1, 0, 2), CScale(1, 0, 2)))
	p := NewPipeline("up", out).OutScale(2, 1)
	in := pixel.Ramp(4, 4)
	got, err := p.Reference(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 8 || got.H != 8 {
		t.Fatalf("output %dx%d, want 8x8", got.W, got.H)
	}
	if got.At(5, 3) != in.At(2, 1) {
		t.Fatalf("up(5,3) = %v, want %v", got.At(5, 3), in.At(2, 1))
	}
}

func TestReferenceSelectBlendSemantics(t *testing.T) {
	// select(in < 0.5, 0, 1) as arithmetic blend.
	out := NewFunc("thresh").Define(Sel(LT(In(0, 0), K(0.5)), K(0), K(1)))
	p := NewPipeline("thresh", out)
	in := pixel.New(2, 1)
	in.Set(0, 0, 0.3)
	in.Set(1, 0, 0.7)
	got, err := p.Reference(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 0 || got.At(1, 0) != 1 {
		t.Fatalf("threshold = %v, %v", got.At(0, 0), got.At(1, 0))
	}
}

func TestReferenceHistogram(t *testing.T) {
	out := NewFunc("hist").Define(In(0, 0)) // definition unused
	p := NewPipeline("histogram", out)
	p.Histogram = true
	p.Bins = 4
	in := pixel.New(4, 1)
	in.Set(0, 0, 0.0)  // bin 0
	in.Set(1, 0, 0.34) // 0.34*3+0.5 = 1.52 -> bin 1
	in.Set(2, 0, 0.5)  // 2.0 -> bin 2
	in.Set(3, 0, 1.0)  // 3.5 -> bin 3
	bins, err := p.ReferenceHistogram(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{1, 1, 1, 1}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	if _, err := p.Reference(in); err == nil {
		t.Error("Reference accepted a histogram pipeline")
	}
	q, _, _ := blurPipeline()
	if _, err := q.ReferenceHistogram(in); err == nil {
		t.Error("ReferenceHistogram accepted a non-histogram pipeline")
	}
}

func TestHistogramBinClamps(t *testing.T) {
	if HistogramBin(-0.5, 256) != 0 {
		t.Error("negative value not clamped to bin 0")
	}
	if HistogramBin(2.0, 256) != 255 {
		t.Error("overflow value not clamped to last bin")
	}
}

func TestStageRequirementsBlur(t *testing.T) {
	p, _, out := blurPipeline()
	_ = p
	isMat := func(f *Func) bool { return f.IsComputeRoot() }
	uses, err := StageRequirements(out, Interval{0, 7}, Interval{0, 7}, isMat)
	if err != nil {
		t.Fatal(err)
	}
	// blurx inlined: the only materialized producer is the input, with
	// a 1-pixel halo in both dimensions (blurx contributes x±1, out
	// contributes y±1).
	if len(uses) != 1 || uses[0].Buf != nil {
		t.Fatalf("uses = %+v", uses)
	}
	u := uses[0]
	if u.X != (Interval{-1, 8}) || u.Y != (Interval{-1, 8}) {
		t.Fatalf("input region = %+v, want [-1,8]x[-1,8]", u)
	}
	if u.SX != (Scale{1, 1}) || u.SY != (Scale{1, 1}) {
		t.Fatalf("scale = %+v", u)
	}
}

func TestStageRequirementsDownsampleScale(t *testing.T) {
	// d(x,y) = (in(2x-1,y) + 2*in(2x,y) + in(2x+1,y))/4, materialized.
	d := NewFunc("d").Define(
		Mul(Add(Add(InC(CScale(2, -1, 1), C(0)), Mul(K(2), InC(CScale(2, 0, 1), C(0)))),
			InC(CScale(2, 1, 1), C(0))), K(0.25))).ComputeRoot()
	out := NewFunc("out").Define(
		Mul(Add(Add(d.AtC(C(0), CScale(2, -1, 1)), Mul(K(2), d.AtC(C(0), CScale(2, 0, 1)))),
			d.AtC(C(0), CScale(2, 1, 1))), K(0.25))).ComputeRoot()
	isMat := func(f *Func) bool { return f.IsComputeRoot() }

	// out needs d at y in [2*0-1, 2*7+1] = [-1, 15], x unscaled.
	uses, err := StageRequirements(out, Interval{0, 7}, Interval{0, 7}, isMat)
	if err != nil {
		t.Fatal(err)
	}
	if len(uses) != 1 || uses[0].Buf != d {
		t.Fatalf("uses = %+v", uses)
	}
	if uses[0].SY != (Scale{2, 1}) || uses[0].Y != (Interval{-1, 15}) {
		t.Fatalf("d use = %+v", uses[0])
	}

	// d needs input at x in [-1, 15] for local [0,7].
	uses, err = StageRequirements(d, Interval{0, 7}, Interval{0, 7}, isMat)
	if err != nil {
		t.Fatal(err)
	}
	if uses[0].SX != (Scale{2, 1}) || uses[0].X != (Interval{-1, 15}) {
		t.Fatalf("input use = %+v", uses[0])
	}
}

func TestStageRequirementsMixedScaleError(t *testing.T) {
	// Same buffer at two different scales must be rejected.
	bad := NewFunc("bad").Define(Add(In(0, 0), InC(CScale(2, 0, 1), C(0))))
	isMat := func(f *Func) bool { return false }
	if _, err := StageRequirements(bad, Interval{0, 7}, Interval{0, 7}, isMat); err == nil {
		t.Fatal("mixed-scale access accepted")
	}
}

func TestOpCount(t *testing.T) {
	p, blurx, out := blurPipeline()
	_ = p
	inlined := func(f *Func) bool { return !f.IsComputeRoot() }
	flops, accesses := OpCount(out.E, inlined)
	// out: 3 blurx (each 2 adds + 1 mul + 3 accesses) + 2 adds + 1 mul.
	if accesses != 9 {
		t.Errorf("accesses = %d, want 9", accesses)
	}
	if flops != 3*3+3 {
		t.Errorf("flops = %d, want 12", flops)
	}
	// After materializing blurx, out reads 3 buffer values.
	blurx.ComputeRoot()
	flops, accesses = OpCount(out.E, inlined)
	if accesses != 3 || flops != 3 {
		t.Errorf("materialized: flops=%d accesses=%d, want 3/3", flops, accesses)
	}
}

func TestIntervalHelpers(t *testing.T) {
	a := Interval{-1, 5}
	if a.Len() != 7 {
		t.Errorf("Len = %d", a.Len())
	}
	b := a.Union(Interval{3, 9})
	if b != (Interval{-1, 9}) {
		t.Errorf("Union = %+v", b)
	}
}

func TestScaleMulReduces(t *testing.T) {
	s := Scale{1, 1}.Mul(CScale(2, 0, 1)).Mul(CScale(1, 0, 2))
	if s != (Scale{1, 1}) {
		t.Fatalf("2x then /2 = %+v, want 1/1", s)
	}
	s = Scale{1, 2}.Mul(CScale(1, 0, 2))
	if s != (Scale{1, 4}) {
		t.Fatalf("scale = %+v", s)
	}
}
