// Package halide is the programming frontend of iPIM (paper Sec. V): a
// small Halide-style DSL in which image-processing algorithms are
// written as pure functions over (x, y), decoupled from the schedule
// that maps them onto the accelerator. It provides the paper's two new
// schedule primitives — ipim_tile() and load_pgsm() — plus the existing
// compute_root() and vectorize() Halide schedules, bound inference for
// overlapped tiling, and a reference interpreter used as the golden
// model for every workload.
package halide

import (
	"fmt"
	"math"
)

// BinOp enumerates the arithmetic forms the DSL supports. They map 1:1
// onto the SIMB comp ops the backend emits.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMin
	OpMax
	OpLT // 1.0 if a < b else 0.0
)

func (o BinOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	case OpLT:
		return "<"
	}
	return "?"
}

// Coord is a coordinate transform applied to one dimension of an
// access: value = (Scale*v + Offset) / Div with floor division. Div
// must be positive; Scale/Div cover the identity, stencil offsets,
// downsampling (x/2) and upsampling strides (2x) the paper's Table II
// pipelines use.
type Coord struct {
	Scale  int
	Offset int
	Div    int
}

// C returns the identity transform with offset o: v + o.
func C(o int) Coord { return Coord{Scale: 1, Offset: o, Div: 1} }

// CScale returns (s*v + o) / d.
func CScale(s, o, d int) Coord { return Coord{Scale: s, Offset: o, Div: d} }

// Apply evaluates the transform at v.
func (c Coord) Apply(v int) int { return floorDiv(c.Scale*v+c.Offset, c.Div) }

// floorDiv is division rounding toward negative infinity.
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// Expr is a node of the algorithm AST.
type Expr interface {
	isExpr()
}

// Const is a floating-point literal.
type Const struct{ V float32 }

// Access reads a producer Func (or the pipeline input when Func is nil)
// at transformed coordinates.
type Access struct {
	Func   *Func // nil => pipeline input
	CX, CY Coord
}

// Bin combines two sub-expressions.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Select is if-then-else on a {0,1}-valued condition. The backend
// lowers it to the arithmetic blend cond*then + (1-cond)*else, which is
// exact for 0/1 conditions.
type Select struct {
	Cond, Then, Else Expr
}

// Reduce is the DSL's reduction-domain construct: the ordered sum of
// its terms, accumulated left to right. The reference interpreter and
// the backend both evaluate Terms[0] first and then add each following
// term into the accumulator in order, so cycle simulation, functional
// mode and the golden model agree bit-for-bit (float addition is not
// associative; the order is part of the semantics). Terms is never
// empty. Build one with Sum.
type Reduce struct {
	Terms []Expr
}

// Tab is a compile-time constant table indexed by the transformed
// coordinates: value = Vals[clamp(CX(x) + CY(y), 0, len(Vals)-1)].
// DNN workloads use it to attach weight matrices and bias vectors to a
// pipeline without burning an input-image plane per constant. The
// backend requires the index to be uniform across the vector lanes of
// a tile slot (checked at plan time), which every y-indexed table
// (CX.Scale == 0) satisfies under full-height tiling.
type Tab struct {
	Vals   []float32
	CX, CY Coord
}

func (Const) isExpr()  {}
func (Access) isExpr() {}
func (Bin) isExpr()    {}
func (Select) isExpr() {}
func (Reduce) isExpr() {}
func (Tab) isExpr()    {}

// At evaluates the table at (x, y) with clamped indexing: the host-side
// mirror of the backend lowering, shared by golden references.
func (t Tab) At(x, y int) float32 {
	i := t.CX.Apply(x) + t.CY.Apply(y)
	if i < 0 {
		i = 0
	}
	if i >= len(t.Vals) {
		i = len(t.Vals) - 1
	}
	return t.Vals[i]
}

// Convenience constructors.

// K wraps a literal.
func K(v float32) Expr { return Const{V: v} }

// Add, Sub, Mul, Div, Min, Max, LT build binary nodes.
func Add(a, b Expr) Expr { return Bin{OpAdd, a, b} }
func Sub(a, b Expr) Expr { return Bin{OpSub, a, b} }
func Mul(a, b Expr) Expr { return Bin{OpMul, a, b} }
func Div(a, b Expr) Expr { return Bin{OpDiv, a, b} }
func Min(a, b Expr) Expr { return Bin{OpMin, a, b} }
func Max(a, b Expr) Expr { return Bin{OpMax, a, b} }
func LT(a, b Expr) Expr  { return Bin{OpLT, a, b} }

// Clamp bounds a into [lo, hi].
func Clamp(a Expr, lo, hi float32) Expr { return Min(Max(a, K(lo)), K(hi)) }

// Sel builds a Select node.
func Sel(cond, then, els Expr) Expr { return Select{cond, then, els} }

// Sum builds a Reduce over a rw x rh reduction domain, materializing
// body(rx, ry) for every point row-major (ry outer, rx inner). The
// accumulation order is that materialization order. Panics on an empty
// domain: a reduction must have at least one term.
func Sum(rw, rh int, body func(rx, ry int) Expr) Expr {
	if rw <= 0 || rh <= 0 {
		panic(fmt.Sprintf("halide: Sum over empty %dx%d reduction domain", rw, rh))
	}
	terms := make([]Expr, 0, rw*rh)
	for ry := 0; ry < rh; ry++ {
		for rx := 0; rx < rw; rx++ {
			terms = append(terms, body(rx, ry))
		}
	}
	return Reduce{Terms: terms}
}

// NewTab builds a constant table node. vals must be non-empty.
func NewTab(vals []float32, cx, cy Coord) Expr {
	if len(vals) == 0 {
		panic("halide: NewTab with no values")
	}
	return Tab{Vals: vals, CX: cx, CY: cy}
}

// Func is one pipeline stage: a name, a defining expression, and its
// schedule directives.
type Func struct {
	Name string
	E    Expr

	// Schedule.
	computeRoot bool
	loadPGSM    bool
}

// NewFunc declares a Func. Define must be called before use.
func NewFunc(name string) *Func { return &Func{Name: name} }

// Define sets the pure definition f(x, y) = e.
func (f *Func) Define(e Expr) *Func {
	f.E = e
	return f
}

// ComputeRoot marks the Func as materialized (its own kernel; paper:
// each compute_root implies a kernel reading and writing DRAM banks).
// Funcs without ComputeRoot are inlined into their consumers.
func (f *Func) ComputeRoot() *Func {
	f.computeRoot = true
	return f
}

// LoadPGSM requests staging this stage's input regions through the
// process-group scratchpad (the paper's load_pgsm(xi, yi) schedule).
func (f *Func) LoadPGSM() *Func {
	f.loadPGSM = true
	return f
}

// SetLoadPGSM sets or clears PGSM staging explicitly. The schedule
// auto-tuner uses it to explore both sides of the load_pgsm directive
// on pipelines whose builders already chose one.
func (f *Func) SetLoadPGSM(on bool) *Func {
	f.loadPGSM = on
	return f
}

// IsComputeRoot reports whether the Func is materialized.
func (f *Func) IsComputeRoot() bool { return f.computeRoot }

// IsLoadPGSM reports whether the stage stages inputs through PGSM.
func (f *Func) IsLoadPGSM() bool { return f.loadPGSM }

// At reads the Func at (x+dx, y+dy): the common stencil access.
func (f *Func) At(dx, dy int) Expr { return Access{Func: f, CX: C(dx), CY: C(dy)} }

// AtC reads the Func with explicit coordinate transforms.
func (f *Func) AtC(cx, cy Coord) Expr { return Access{Func: f, CX: cx, CY: cy} }

// In reads the pipeline input at (x+dx, y+dy).
func In(dx, dy int) Expr { return Access{Func: nil, CX: C(dx), CY: C(dy)} }

// InC reads the pipeline input with explicit coordinate transforms.
func InC(cx, cy Coord) Expr { return Access{Func: nil, CX: cx, CY: cy} }

// Pipeline is a complete algorithm plus its iPIM schedule.
type Pipeline struct {
	Name   string
	Output *Func

	// TileW/TileH are the paper's ipim_tile(x, y, xi, yi, W, H)
	// schedule: the output is partitioned into TileW x TileH tiles
	// distributed across all PEs (Fig. 3a).
	TileW, TileH int

	// ClampedStages selects clamped-boundary semantics for
	// materialized intermediate buffers: a consumer reading a
	// compute_root producer outside its domain gets the edge value
	// (Halide's BoundaryConditions applied per materialized Func).
	// Multi-stage iPIM pipelines use this so tile halos can be
	// exchanged between PEs instead of recomputed (DESIGN.md §2).
	ClampedStages bool

	// OutNum/OutDen relate output dimensions to input dimensions:
	// outW = inW * OutNum / OutDen (2/1 for upsampling pipelines, 1/2
	// for downsampling ones, 1/1 otherwise).
	OutNum, OutDen int

	// Histogram marks the special reduction pipeline (paper Table II);
	// it uses the built-in partial-histogram schedule instead of the
	// pointwise/stencil lowering. Bins is the histogram size.
	Histogram bool
	Bins      int

	// MultiArray requests the MASIM-style multi-array schedule: the
	// planner models each PE array's PGSM partition as a double buffer
	// and the lowering overlaps next-tile operand staging with current-
	// tile compute. The compiler falls back to the baseline list
	// schedule when the geometry does not allow it (see
	// compiler.Plan.Arrays).
	MultiArray bool
}

// NewPipeline builds a pipeline with the default 8x8 ipim_tile
// schedule (Listing 1).
func NewPipeline(name string, out *Func) *Pipeline {
	return &Pipeline{Name: name, Output: out, TileW: 8, TileH: 8, OutNum: 1, OutDen: 1}
}

// OutScale declares the output-to-input size ratio (see OutNum/OutDen).
func (p *Pipeline) OutScale(num, den int) *Pipeline {
	p.OutNum, p.OutDen = num, den
	return p
}

// ClampStages enables clamped-boundary semantics for materialized
// stages (see ClampedStages).
func (p *Pipeline) ClampStages() *Pipeline {
	p.ClampedStages = true
	return p
}

// MultiArraySchedule sets or clears the multi-array (stage-ahead)
// schedule. The schedule auto-tuner uses it as a search axis.
func (p *Pipeline) MultiArraySchedule(on bool) *Pipeline {
	p.MultiArray = on
	return p
}

// StageScales returns every materialized stage's per-dimension domain
// scale relative to the pipeline output domain.
func (p *Pipeline) StageScales() (map[*Func][2]Scale, error) {
	stages, err := p.Stages()
	if err != nil {
		return nil, err
	}
	isMat := func(f *Func) bool { return f.IsComputeRoot() || f == p.Output }
	one := Scale{1, 1}
	scales := map[*Func][2]Scale{stages[len(stages)-1]: {one, one}}
	for si := len(stages) - 1; si >= 0; si-- {
		s := stages[si]
		own, ok := scales[s]
		if !ok {
			return nil, fmt.Errorf("halide: stage %q has no consumers", s.Name)
		}
		uses, err := StageRequirements(s, Interval{0, 1}, Interval{0, 1}, isMat)
		if err != nil {
			return nil, err
		}
		for _, u := range uses {
			if u.Buf == nil {
				continue
			}
			sx := reduce(Scale{own[0].Num * u.SX.Num, own[0].Den * u.SX.Den})
			sy := reduce(Scale{own[1].Num * u.SY.Num, own[1].Den * u.SY.Den})
			if prev, ok := scales[u.Buf]; ok {
				if prev != [2]Scale{sx, sy} {
					return nil, fmt.Errorf("halide: stage %q read at mixed scales", u.Buf.Name)
				}
				continue
			}
			scales[u.Buf] = [2]Scale{sx, sy}
		}
	}
	return scales, nil
}

func reduce(s Scale) Scale {
	g := gcd(s.Num, s.Den)
	return Scale{s.Num / g, s.Den / g}
}

// IPIMTile overrides the tile size.
func (p *Pipeline) IPIMTile(w, h int) *Pipeline {
	p.TileW, p.TileH = w, h
	return p
}

// Stages returns the materialized stages in dependency (producer-first)
// order, ending with Output. The output stage is materialized whether
// or not ComputeRoot was called explicitly.
func (p *Pipeline) Stages() ([]*Func, error) {
	var order []*Func
	state := map[*Func]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(f *Func) error
	visit = func(f *Func) error {
		switch state[f] {
		case 1:
			return fmt.Errorf("halide: cycle through func %q", f.Name)
		case 2:
			return nil
		}
		state[f] = 1
		if f.E == nil {
			return fmt.Errorf("halide: func %q has no definition", f.Name)
		}
		err := walkAccesses(f.E, func(a Access) error {
			if a.Func == nil {
				return nil
			}
			return visit(a.Func)
		})
		if err != nil {
			return err
		}
		state[f] = 2
		if f.computeRoot || f == p.Output {
			order = append(order, f)
		}
		return nil
	}
	if p.Output == nil {
		return nil, fmt.Errorf("halide: pipeline %q has no output", p.Name)
	}
	if err := visit(p.Output); err != nil {
		return nil, err
	}
	return order, nil
}

// walkAccesses applies fn to every Access in the expression tree,
// recursing through inlined (non-compute-root) funcs exactly once per
// syntactic occurrence.
func walkAccesses(e Expr, fn func(Access) error) error {
	switch t := e.(type) {
	case Const:
		return nil
	case Access:
		return fn(t)
	case Bin:
		if err := walkAccesses(t.A, fn); err != nil {
			return err
		}
		return walkAccesses(t.B, fn)
	case Select:
		if err := walkAccesses(t.Cond, fn); err != nil {
			return err
		}
		if err := walkAccesses(t.Then, fn); err != nil {
			return err
		}
		return walkAccesses(t.Else, fn)
	case Reduce:
		for _, term := range t.Terms {
			if err := walkAccesses(term, fn); err != nil {
				return err
			}
		}
		return nil
	case Tab:
		return nil
	}
	return fmt.Errorf("halide: unknown expr node %T", e)
}

// OpCount tallies the arithmetic in one evaluation of e, recursing into
// inlined producers. Used by the GPU baseline model.
func OpCount(e Expr, isInlined func(*Func) bool) (flops, accesses int) {
	switch t := e.(type) {
	case Const:
	case Access:
		if t.Func != nil && isInlined(t.Func) {
			f, a := OpCount(t.Func.E, isInlined)
			return f, a
		}
		return 0, 1
	case Bin:
		fa, aa := OpCount(t.A, isInlined)
		fb, ab := OpCount(t.B, isInlined)
		return fa + fb + 1, aa + ab
	case Select:
		fc, ac := OpCount(t.Cond, isInlined)
		ft, at := OpCount(t.Then, isInlined)
		fe, ae := OpCount(t.Else, isInlined)
		// Blend lowering: cond*then + (1-cond)*else = 4 extra ops.
		return fc + ft + fe + 4, ac + at + ae
	case Reduce:
		// One add per accumulated term beyond the first.
		f, a := 0, 0
		for _, term := range t.Terms {
			ft, at := OpCount(term, isInlined)
			f, a = f+ft, a+at
		}
		return f + len(t.Terms) - 1, a
	case Tab:
		// Constant lookup: no flops, and the table lives in the
		// instruction stream rather than memory.
		return 0, 0
	}
	return 0, 0
}

// checkFinite guards golden-model outputs in tests.
func checkFinite(v float32) float32 {
	if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
		panic("halide: non-finite value in reference evaluation")
	}
	return v
}
