package halide

import (
	"testing"

	"ipim/internal/pixel"
)

func TestStageScalesPyramid(t *testing.T) {
	// base -> downsampled level -> upsampled output.
	base := NewFunc("b").Define(In(0, 0)).ComputeRoot()
	dx := NewFunc("dx").Define(base.AtC(CScale(2, 0, 1), C(0))).ComputeRoot()
	d := NewFunc("d").Define(dx.AtC(C(0), CScale(2, 0, 1))).ComputeRoot()
	out := NewFunc("o").Define(d.AtC(CScale(1, 0, 2), CScale(1, 0, 2)))
	p := NewPipeline("pyr", out)
	scales, err := p.StageScales()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][2]Scale{
		"b":  {{1, 1}, {1, 1}},
		"dx": {{1, 2}, {1, 2}}, // wait: see below
		"d":  {{1, 2}, {1, 2}},
		"o":  {{1, 1}, {1, 1}},
	}
	// dx sits between base (1,1) and d (1/2,1/2): its x is halved
	// relative to d's consumer read... verify the actually-computed
	// invariants instead of hand-derived constants:
	if scales[out] != ([2]Scale{{1, 1}, {1, 1}}) {
		t.Fatalf("output scale %v", scales[out])
	}
	if scales[d] != ([2]Scale{{1, 2}, {1, 2}}) {
		t.Fatalf("d scale %v", scales[d])
	}
	if scales[base] != ([2]Scale{{1, 1}, {1, 1}}) {
		t.Fatalf("base scale %v", scales[base])
	}
	// dx: consumed by d at y-scale 2 relative to d's domain:
	// sigma(dx) = sigma(d) * (x:1, y:2) = (1/2, 1).
	if scales[dx] != ([2]Scale{{1, 2}, {1, 1}}) {
		t.Fatalf("dx scale %v", scales[dx])
	}
	_ = want
}

func TestStageScalesMixedError(t *testing.T) {
	a := NewFunc("a").Define(In(0, 0)).ComputeRoot()
	// Read a at two different scales from materialized consumers.
	c1 := NewFunc("c1").Define(a.At(0, 0)).ComputeRoot()
	out := NewFunc("out").Define(Add(c1.At(0, 0), a.AtC(CScale(2, 0, 1), C(0))))
	p := NewPipeline("mix", out)
	if _, err := p.StageScales(); err == nil {
		t.Fatal("mixed-scale stage graph accepted")
	}
}

func TestClampedStagesReferenceDiffersAtEdges(t *testing.T) {
	// A two-stage chain: pure semantics evaluate stage 1 out of range;
	// clamped semantics clamp the intermediate read. Interior pixels
	// agree; edge pixels differ.
	build := func(clamp bool) *Pipeline {
		s1 := NewFunc("s1c" + map[bool]string{true: "y", false: "n"}[clamp]).
			Define(Add(In(-1, 0), In(1, 0))).ComputeRoot()
		out := NewFunc("s2c" + map[bool]string{true: "y", false: "n"}[clamp]).
			Define(Add(s1.At(-1, 0), s1.At(1, 0)))
		p := NewPipeline("chain", out)
		if clamp {
			p.ClampStages()
		}
		return p
	}
	img := pixel.Synth(16, 8, 5)
	pure, err := build(false).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	clamped, err := build(true).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	// Interior identical.
	for y := 0; y < 8; y++ {
		for x := 2; x < 14; x++ {
			if pure.At(x, y) != clamped.At(x, y) {
				t.Fatalf("interior (%d,%d) differs: %v vs %v", x, y, pure.At(x, y), clamped.At(x, y))
			}
		}
	}
	// Left edge differs (s1(-1) clamps to s1(0) under clamped stages).
	differs := false
	for y := 0; y < 8; y++ {
		if pure.At(0, y) != clamped.At(0, y) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("clamped and pure semantics identical at the edge — clamping not applied")
	}
}

func TestOpCountSelect(t *testing.T) {
	e := Sel(LT(In(0, 0), K(0.5)), In(0, 0), K(1))
	flops, acc := OpCount(e, func(*Func) bool { return false })
	if acc != 2 {
		t.Errorf("accesses = %d, want 2", acc)
	}
	// LT (1) + blend lowering (4) = 5.
	if flops != 5 {
		t.Errorf("flops = %d, want 5", flops)
	}
}

func TestWalkAccessesError(t *testing.T) {
	// A custom Expr type is unknown to the walker.
	type alien struct{ Expr }
	bad := NewFunc("bad").Define(Add(K(1), alien{}))
	p := NewPipeline("bad", bad)
	if _, err := p.Stages(); err == nil {
		t.Fatal("alien expression accepted")
	}
}

func TestHistogramPipelineRejectsReference(t *testing.T) {
	out := NewFunc("h").Define(In(0, 0))
	p := NewPipeline("h", out)
	p.Histogram = true
	p.Bins = 16
	if _, err := p.Reference(pixel.Synth(8, 8, 1)); err == nil {
		t.Fatal("Reference ran a histogram pipeline")
	}
}

func TestReferenceErrorsOnUndefinedOutput(t *testing.T) {
	p := NewPipeline("u", NewFunc("u"))
	if _, err := p.Reference(pixel.Synth(8, 8, 1)); err == nil {
		t.Fatal("undefined output accepted")
	}
}

func TestReferenceBadOutScale(t *testing.T) {
	out := NewFunc("o").Define(In(0, 0))
	p := NewPipeline("o", out).OutScale(1, 100)
	if _, err := p.Reference(pixel.Synth(8, 8, 1)); err == nil {
		t.Fatal("degenerate output size accepted")
	}
}
