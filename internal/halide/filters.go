package halide

// Reusable filter building blocks for composing pipelines — the small
// standard library a Halide-style frontend is expected to ship with.
// All are pure constructors over the DSL; they carry no schedule (call
// ComputeRoot/LoadPGSM on the results as needed).

// Box builds a (2r+1)x(2r+1) box filter over src (nil = input).
func Box(name string, src *Func, r int) *Func {
	if r < 0 {
		panic("halide: negative box radius")
	}
	at := func(dx, dy int) Expr {
		if src == nil {
			return In(dx, dy)
		}
		return src.At(dx, dy)
	}
	var sum Expr
	n := 0
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if sum == nil {
				sum = at(dx, dy)
			} else {
				sum = Add(sum, at(dx, dy))
			}
			n++
		}
	}
	return NewFunc(name).Define(Mul(sum, K(1/float32(n))))
}

// SeparableGaussian builds a binomial-weighted separable blur of radius
// r (weights from Pascal's triangle row 2r) as two funcs; the x pass is
// inlined into the returned y pass.
func SeparableGaussian(name string, src *Func, r int) *Func {
	if r < 0 {
		panic("halide: negative gaussian radius")
	}
	w := binomial(2 * r)
	var norm float32
	for _, c := range w {
		norm += c
	}
	at := func(dx, dy int) Expr {
		if src == nil {
			return In(dx, dy)
		}
		return src.At(dx, dy)
	}
	tap := func(get func(i int) Expr) Expr {
		var sum Expr
		for i, c := range w {
			term := Mul(K(c/norm), get(i-r))
			if sum == nil {
				sum = term
			} else {
				sum = Add(sum, term)
			}
		}
		return sum
	}
	gx := NewFunc(name + "_x").Define(tap(func(d int) Expr { return at(d, 0) }))
	return NewFunc(name).Define(tap(func(d int) Expr { return gx.At(0, d) }))
}

func binomial(n int) []float32 {
	row := []float32{1}
	for i := 0; i < n; i++ {
		next := make([]float32, len(row)+1)
		next[0], next[len(row)] = 1, 1
		for j := 1; j < len(row); j++ {
			next[j] = row[j-1] + row[j]
		}
		row = next
	}
	return row
}

// SobelMag builds the L1 gradient magnitude |Gx| + |Gy| of src.
func SobelMag(name string, src *Func) *Func {
	at := func(dx, dy int) Expr {
		if src == nil {
			return In(dx, dy)
		}
		return src.At(dx, dy)
	}
	gx := Add(Add(Sub(at(1, -1), at(-1, -1)),
		Mul(K(2), Sub(at(1, 0), at(-1, 0)))),
		Sub(at(1, 1), at(-1, 1)))
	gy := Add(Add(Sub(at(-1, 1), at(-1, -1)),
		Mul(K(2), Sub(at(0, 1), at(0, -1)))),
		Sub(at(1, 1), at(1, -1)))
	abs := func(e Expr) Expr { return Max(e, Sub(K(0), e)) }
	return NewFunc(name).Define(Add(abs(gx), abs(gy)))
}

// UnsharpMask sharpens src: out = clamp(src + amount*(src - blur), 0, 1).
func UnsharpMask(name string, src *Func, amount float32) *Func {
	at := func(dx, dy int) Expr {
		if src == nil {
			return In(dx, dy)
		}
		return src.At(dx, dy)
	}
	blur := Box(name+"_blur", src, 1)
	return NewFunc(name).Define(
		Clamp(Add(at(0, 0), Mul(K(amount), Sub(at(0, 0), blur.At(0, 0)))), 0, 1))
}

// Dilate/Erode build 3x3 max/min morphology over src.
func Dilate(name string, src *Func) *Func { return morph(name, src, Max) }
func Erode(name string, src *Func) *Func  { return morph(name, src, Min) }

func morph(name string, src *Func, op func(a, b Expr) Expr) *Func {
	at := func(dx, dy int) Expr {
		if src == nil {
			return In(dx, dy)
		}
		return src.At(dx, dy)
	}
	var acc Expr
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if acc == nil {
				acc = at(dx, dy)
			} else {
				acc = op(acc, at(dx, dy))
			}
		}
	}
	return NewFunc(name).Define(acc)
}

// Threshold builds a binary threshold: 1 where src >= th, else 0.
func Threshold(name string, src *Func, th float32) *Func {
	at := In(0, 0)
	if src != nil {
		at = src.At(0, 0)
	}
	return NewFunc(name).Define(Sub(K(1), LT(at, K(th))))
}
