package halide

import "fmt"

// Interval is an inclusive integer range.
type Interval struct{ Lo, Hi int }

// Len returns the number of integers in the interval.
func (i Interval) Len() int { return i.Hi - i.Lo + 1 }

// Union expands the interval to cover o.
func (i Interval) Union(o Interval) Interval {
	if o.Lo < i.Lo {
		i.Lo = o.Lo
	}
	if o.Hi > i.Hi {
		i.Hi = o.Hi
	}
	return i
}

// Scale is a rational coordinate scale between a consumer's domain and
// a producer's domain (e.g. 1/2 after one downsample level).
type Scale struct{ Num, Den int }

// Mul composes a Coord's scale onto s and reduces the fraction.
func (s Scale) Mul(c Coord) Scale {
	n, d := s.Num*c.Scale, s.Den*c.Div
	g := gcd(n, d)
	return Scale{n / g, d / g}
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// BufUse records what one stage needs from one producer buffer: the
// coordinate scale between the stage's output domain and the producer's
// domain, and the producer-domain interval required when the stage
// computes output-local interval passed to StageRequirements (tile
// origins contribute separately through the scale; see DESIGN.md).
type BufUse struct {
	Buf    *Func // nil = the pipeline input
	SX, SY Scale
	X, Y   Interval
}

// bufKey distinguishes producers in the requirement map.
type bufKey struct{ f *Func }

// StageRequirements walks the stage's expression (recursing through
// inlined funcs) and returns the regions of every materialized producer
// required to compute the stage over the output-local region rx × ry.
// isMat reports whether a Func is materialized (compute_root).
func StageRequirements(stage *Func, rx, ry Interval, isMat func(*Func) bool) ([]BufUse, error) {
	uses := map[bufKey]*BufUse{}
	err := walkRequirements(stage.E, Scale{1, 1}, Scale{1, 1}, rx, ry, isMat, uses)
	if err != nil {
		return nil, err
	}
	var out []BufUse
	// Deterministic order: input first, then by name.
	var keys []bufKey
	for k := range uses {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if lessBuf(keys[j], keys[i]) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		out = append(out, *uses[k])
	}
	return out, nil
}

func lessBuf(a, b bufKey) bool {
	switch {
	case a.f == nil:
		return b.f != nil
	case b.f == nil:
		return false
	default:
		return a.f.Name < b.f.Name
	}
}

// applyCoord transforms a local interval through one Coord. Exact under
// the power-of-two tile alignment the planner enforces.
func applyCoord(c Coord, iv Interval) Interval {
	lo := floorDiv(c.Scale*iv.Lo+c.Offset, c.Div)
	hi := floorDiv(c.Scale*iv.Hi+c.Offset, c.Div)
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

func walkRequirements(e Expr, sx, sy Scale, rx, ry Interval, isMat func(*Func) bool, uses map[bufKey]*BufUse) error {
	switch t := e.(type) {
	case Const:
		return nil
	case Access:
		nsx, nsy := sx.Mul(t.CX), sy.Mul(t.CY)
		nrx, nry := applyCoord(t.CX, rx), applyCoord(t.CY, ry)
		if t.Func == nil || isMat(t.Func) {
			k := bufKey{t.Func}
			u, ok := uses[k]
			if !ok {
				uses[k] = &BufUse{Buf: t.Func, SX: nsx, SY: nsy, X: nrx, Y: nry}
				return nil
			}
			if u.SX != nsx || u.SY != nsy {
				name := "input"
				if t.Func != nil {
					name = t.Func.Name
				}
				return fmt.Errorf("halide: buffer %q accessed at mixed scales %v vs %v", name, u.SX, nsx)
			}
			u.X = u.X.Union(nrx)
			u.Y = u.Y.Union(nry)
			return nil
		}
		// Inlined producer: recurse into its definition over the
		// transformed domain.
		if t.Func.E == nil {
			return fmt.Errorf("halide: func %q has no definition", t.Func.Name)
		}
		return walkRequirements(t.Func.E, nsx, nsy, nrx, nry, isMat, uses)
	case Bin:
		if err := walkRequirements(t.A, sx, sy, rx, ry, isMat, uses); err != nil {
			return err
		}
		return walkRequirements(t.B, sx, sy, rx, ry, isMat, uses)
	case Select:
		if err := walkRequirements(t.Cond, sx, sy, rx, ry, isMat, uses); err != nil {
			return err
		}
		if err := walkRequirements(t.Then, sx, sy, rx, ry, isMat, uses); err != nil {
			return err
		}
		return walkRequirements(t.Else, sx, sy, rx, ry, isMat, uses)
	case Reduce:
		for _, term := range t.Terms {
			if err := walkRequirements(term, sx, sy, rx, ry, isMat, uses); err != nil {
				return err
			}
		}
		return nil
	case Tab:
		// Constant table: no buffer requirement.
		return nil
	}
	return fmt.Errorf("halide: unknown expr node %T", e)
}
