package halide

import (
	"fmt"

	"ipim/internal/pixel"
)

// Reference evaluates the pipeline on the host — the golden model every
// simulated run is checked against. Semantics match Halide's: the
// pipeline input is clamped to its edges; intermediate Funcs are pure
// functions evaluated at whatever coordinates their consumers request.
// Evaluation order per pixel follows the expression tree exactly, so
// simulated FP32 results are bit-identical to the reference.
func (p *Pipeline) Reference(in *pixel.Image) (*pixel.Image, error) {
	if p.Histogram {
		return nil, fmt.Errorf("halide: %s is a histogram pipeline; use ReferenceHistogram", p.Name)
	}
	if p.Output == nil || p.Output.E == nil {
		return nil, fmt.Errorf("halide: pipeline %q has no defined output", p.Name)
	}
	outW := in.W * p.OutNum / p.OutDen
	outH := in.H * p.OutNum / p.OutDen
	if outW <= 0 || outH <= 0 {
		return nil, fmt.Errorf("halide: output %dx%d not positive", outW, outH)
	}
	ev := &refEval{in: in, memo: map[*Func]map[int64]float32{}}
	if p.ClampedStages {
		scales, err := p.StageScales()
		if err != nil {
			return nil, err
		}
		ev.domain = map[*Func][2]int{}
		for f, s := range scales {
			ev.domain[f] = [2]int{outW * s[0].Num / s[0].Den, outH * s[1].Num / s[1].Den}
		}
	}
	out := pixel.New(outW, outH)
	for y := 0; y < outH; y++ {
		for x := 0; x < outW; x++ {
			out.Set(x, y, checkFinite(ev.evalFunc(p.Output, x, y)))
		}
	}
	return out, nil
}

// ReferenceHistogram computes the golden histogram: bin = trunc(v *
// (Bins-1) + 0.5) clamped into range, matching the kernel's f2i-based
// binning.
func (p *Pipeline) ReferenceHistogram(in *pixel.Image) ([]int32, error) {
	if !p.Histogram {
		return nil, fmt.Errorf("halide: %s is not a histogram pipeline", p.Name)
	}
	bins := make([]int32, p.Bins)
	for _, v := range in.Pix {
		b := HistogramBin(v, p.Bins)
		bins[b]++
	}
	return bins, nil
}

// HistogramBin maps a pixel value to its bin exactly as the SIMB kernel
// does (fmul by Bins-1, fadd 0.5, f2i truncation, clamp).
func HistogramBin(v float32, bins int) int {
	b := int(v*float32(bins-1) + 0.5)
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

type refEval struct {
	in   *pixel.Image
	memo map[*Func]map[int64]float32
	// domain, when non-nil, clamps reads of materialized funcs to
	// their domains (ClampedStages semantics).
	domain map[*Func][2]int
}

func (ev *refEval) evalFunc(f *Func, x, y int) float32 {
	if dom, ok := ev.domain[f]; ok {
		if x < 0 {
			x = 0
		} else if x >= dom[0] {
			x = dom[0] - 1
		}
		if y < 0 {
			y = 0
		} else if y >= dom[1] {
			y = dom[1] - 1
		}
	}
	m, ok := ev.memo[f]
	if !ok {
		m = map[int64]float32{}
		ev.memo[f] = m
	}
	key := int64(x)<<32 | int64(uint32(y))
	if v, ok := m[key]; ok {
		return v
	}
	v := ev.eval(f.E, x, y)
	m[key] = v
	return v
}

func (ev *refEval) eval(e Expr, x, y int) float32 {
	switch t := e.(type) {
	case Const:
		return t.V
	case Access:
		nx, ny := t.CX.Apply(x), t.CY.Apply(y)
		if t.Func == nil {
			return ev.in.At(nx, ny) // clamp-to-edge at the input only
		}
		return ev.evalFunc(t.Func, nx, ny)
	case Bin:
		a := ev.eval(t.A, x, y)
		b := ev.eval(t.B, x, y)
		switch t.Op {
		case OpAdd:
			return a + b
		case OpSub:
			return a - b
		case OpMul:
			return a * b
		case OpDiv:
			return a / b
		case OpMin:
			if a < b {
				return a
			}
			return b
		case OpMax:
			if a > b {
				return a
			}
			return b
		case OpLT:
			if a < b {
				return 1
			}
			return 0
		}
	case Select:
		// Arithmetic blend, matching the backend's lowering exactly:
		// cond*then + (1-cond)*else.
		c := ev.eval(t.Cond, x, y)
		a := ev.eval(t.Then, x, y)
		b := ev.eval(t.Else, x, y)
		return c*a + (1-c)*b
	case Reduce:
		// Ordered accumulation — the term order is part of the
		// semantics (FP32 addition is not associative) and matches the
		// backend's fmac chain exactly.
		acc := ev.eval(t.Terms[0], x, y)
		for _, term := range t.Terms[1:] {
			acc = acc + ev.eval(term, x, y)
		}
		return acc
	case Tab:
		return t.At(x, y)
	}
	panic(fmt.Sprintf("halide: eval of unknown node %T", e))
}
