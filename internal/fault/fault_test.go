package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestDecisionsArePureFunctions(t *testing.T) {
	p := &Plan{Seed: 42, DRAMBitFlipRate: 0.3, DRAMMultiBitFraction: 0.5,
		LinkFaultRate: 0.2, ExecFaultRate: 0.1}
	q := &Plan{Seed: 42, DRAMBitFlipRate: 0.3, DRAMMultiBitFraction: 0.5,
		LinkFaultRate: 0.2, ExecFaultRate: 0.1}
	site := Site(DomBank, 0, 1, 2, 3)
	for n := uint64(0); n < 1000; n++ {
		if p.BankRead(site, n) != q.BankRead(site, n) {
			t.Fatalf("BankRead(%d) not reproducible", n)
		}
		if p.LinkFault(site, n) != q.LinkFault(site, n) {
			t.Fatalf("LinkFault(%d) not reproducible", n)
		}
		if p.ExecFault(site, n) != q.ExecFault(site, n) {
			t.Fatalf("ExecFault(%d) not reproducible", n)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := &Plan{Seed: 1, DRAMBitFlipRate: 0.5}
	b := &Plan{Seed: 2, DRAMBitFlipRate: 0.5}
	site := Site(DomBank, 0, 0, 0, 0)
	same := 0
	for n := uint64(0); n < 1000; n++ {
		if a.BankRead(site, n).Injected == b.BankRead(site, n).Injected {
			same++
		}
	}
	if same > 990 {
		t.Fatalf("streams for different seeds agree on %d/1000 events", same)
	}
}

func TestBankReadRateAndBits(t *testing.T) {
	p := &Plan{Seed: 7, DRAMBitFlipRate: 0.5, DRAMMultiBitFraction: 0.5}
	site := Site(DomBank, 1, 2, 0, 3)
	const trials = 20000
	injected, multi := 0, 0
	for n := uint64(0); n < trials; n++ {
		bf := p.BankRead(site, n)
		if !bf.Injected {
			continue
		}
		injected++
		for _, b := range bf.Bits {
			if b < 0 || b >= 128 {
				t.Fatalf("bit offset %d outside 128-bit access", b)
			}
		}
		if !bf.Corrected {
			multi++
			if bf.Bits[0] == bf.Bits[1] {
				t.Fatalf("uncorrected fault with identical bits %v", bf.Bits)
			}
		}
	}
	if frac := float64(injected) / trials; frac < 0.45 || frac > 0.55 {
		t.Fatalf("injection fraction %.3f far from rate 0.5", frac)
	}
	if frac := float64(multi) / float64(injected); frac < 0.4 || frac > 0.6 {
		t.Fatalf("multi-bit fraction %.3f far from 0.5", frac)
	}
}

func TestZeroRatePlanDecidesNothing(t *testing.T) {
	p := &Plan{Seed: 99}
	site := Site(DomBank, 0, 0, 0, 0)
	for n := uint64(0); n < 1000; n++ {
		if p.BankRead(site, n).Injected || p.LinkFault(site, n) || p.ExecFault(site, n) {
			t.Fatalf("zero-rate plan injected at n=%d", n)
		}
	}
	if p.Enabled() {
		t.Fatal("zero-rate plan reports Enabled")
	}
	if (*Plan)(nil).Enabled() {
		t.Fatal("nil plan reports Enabled")
	}
}

func TestExecFailFirst(t *testing.T) {
	p := &Plan{Seed: 3, ExecFailFirst: 2}
	site := Site(DomExec, 0, 0)
	if !p.ExecFault(site, 0) || !p.ExecFault(site, 1) {
		t.Fatal("first two exec rolls must fault under ExecFailFirst=2")
	}
	for n := uint64(2); n < 100; n++ {
		if p.ExecFault(site, n) {
			t.Fatalf("roll %d faulted with rate 0 beyond ExecFailFirst", n)
		}
	}
	if !p.Enabled() || !p.ExecEnabled() {
		t.Fatal("ExecFailFirst plan must report enabled")
	}
}

func TestSiteSeparatesCoordinates(t *testing.T) {
	seen := map[uint64]bool{}
	for cube := 0; cube < 4; cube++ {
		for vault := 0; vault < 8; vault++ {
			for _, d := range []Domain{DomBank, DomLink, DomExec} {
				s := Site(d, cube, vault)
				if seen[s] {
					t.Fatalf("site collision at (%d,%d,%d)", d, cube, vault)
				}
				seen[s] = true
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=7,dram=1e-4,multibit=0.25,link=1e-5,linkpenalty=32,exec=0.001,execfirst=1")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, DRAMBitFlipRate: 1e-4, DRAMMultiBitFraction: 0.25,
		LinkFaultRate: 1e-5, LinkRetryPenalty: 32, ExecFaultRate: 0.001, ExecFailFirst: 1}
	if *p != want {
		t.Fatalf("ParseSpec = %+v, want %+v", *p, want)
	}
	// Round trip through String.
	q, err := ParseSpec(p.String())
	if err != nil || *q != *p {
		t.Fatalf("String round trip: %+v err %v", q, err)
	}
	for _, empty := range []string{"", "off", "  "} {
		if p, err := ParseSpec(empty); p != nil || err != nil {
			t.Fatalf("ParseSpec(%q) = %v, %v; want nil, nil", empty, p, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"bogus", "key=value"},
		{"zorp=1", "unknown spec key"},
		{"dram=1.5", "outside [0,1]"},
		{"dram=-0.1", "outside [0,1]"},
		{"seed=notanumber", "bad value"},
		{"linkpenalty=-1", "negative"},
		{"execfirst=-2", "negative"},
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q) err = %v, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestErrTransientWraps(t *testing.T) {
	wrapped := errors.Join(errors.New("vault 0/1"), ErrTransient)
	if !errors.Is(wrapped, ErrTransient) {
		t.Fatal("wrapped transient error not detected")
	}
}
