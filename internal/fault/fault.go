// Package fault implements deterministic, seeded fault injection for
// the simulated machine: DRAM bit flips on bank reads behind a SECDED
// ECC model, NoC/SERDES link faults that force flit retransmits, and
// transient execution faults that abort a run with a retryable error.
//
// Determinism contract: a Plan is immutable configuration, and every
// decision method is a pure function of (plan seed, site identifier,
// event index). The only mutable part — the event counter — is owned by
// exactly one simulated component (a vault's instruction stream, one
// source's private link shard), each of which executes serially
// regardless of the machine's phase worker count. Serial and parallel
// schedules therefore present identical event streams to identical
// sites and observe bit-identical faults; the differential tests at the
// repository root pin this. A plan whose rates are all zero is a strict
// no-op: no code path consumes an event index or alters timing.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrTransient marks injected transient execution faults. Runs that
// fail with an error wrapping ErrTransient may be retried; the serve
// layer does so with bounded backoff.
var ErrTransient = errors.New("transient execution fault")

// Domain tags the independent decision streams so the same event index
// at the same coordinates never correlates across fault kinds.
type Domain uint64

const (
	// DomBank is the DRAM bank-read bit-flip stream.
	DomBank Domain = 1 + iota
	// DomLink is the NoC/SERDES link-fault stream.
	DomLink
	// DomExec is the transient vault execution-fault stream.
	DomExec
)

// Plan describes a fault-injection campaign. The zero value (and a nil
// *Plan) injects nothing. Plans are immutable once attached to a
// machine; all methods are safe for concurrent use.
type Plan struct {
	// Seed selects the pseudo-random decision stream. Two runs of the
	// same machine with the same seed observe identical faults.
	Seed uint64

	// DRAMBitFlipRate is the probability that one 128-bit bank read
	// suffers a bit-flip event. Under the SECDED model a single-bit
	// event is corrected (counted, data intact); a multi-bit event is
	// detected but uncorrected and corrupts the read destination.
	DRAMBitFlipRate float64
	// DRAMMultiBitFraction is the fraction of flip events that hit two
	// bits (detected-uncorrectable under SECDED).
	DRAMMultiBitFraction float64

	// LinkFaultRate is the per-link-traversal probability that a packet
	// is corrupted on that link and its flits must be retransmitted.
	LinkFaultRate float64
	// LinkRetryPenalty is the extra cycles the link is held per fault,
	// on top of re-serializing the packet's flits.
	LinkRetryPenalty int64

	// ExecFaultRate is the per-vault, per-phase probability of a
	// transient execution fault that aborts the run with ErrTransient.
	ExecFaultRate float64
	// ExecFailFirst deterministically faults each vault's first N
	// execution-phase rolls regardless of ExecFaultRate. It exists for
	// fault drills and tests that need a guaranteed
	// fail-then-succeed-on-retry sequence.
	ExecFailFirst int
}

// Enabled reports whether the plan can inject anything at all.
func (p *Plan) Enabled() bool {
	return p != nil && (p.DRAMBitFlipRate > 0 || p.LinkFaultRate > 0 ||
		p.ExecFaultRate > 0 || p.ExecFailFirst > 0)
}

// ExecEnabled reports whether execution faults can fire.
func (p *Plan) ExecEnabled() bool {
	return p != nil && (p.ExecFaultRate > 0 || p.ExecFailFirst > 0)
}

// Validate checks rate ranges. A nil plan (faults disabled) is valid.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: %s %g outside [0,1]", name, v)
		}
		return nil
	}
	if err := check("dram rate", p.DRAMBitFlipRate); err != nil {
		return err
	}
	if err := check("multibit fraction", p.DRAMMultiBitFraction); err != nil {
		return err
	}
	if err := check("link rate", p.LinkFaultRate); err != nil {
		return err
	}
	if err := check("exec rate", p.ExecFaultRate); err != nil {
		return err
	}
	if p.LinkRetryPenalty < 0 {
		return fmt.Errorf("fault: link retry penalty %d negative", p.LinkRetryPenalty)
	}
	if p.ExecFailFirst < 0 {
		return fmt.Errorf("fault: execfirst %d negative", p.ExecFailFirst)
	}
	return nil
}

// String renders the plan in ParseSpec syntax.
func (p *Plan) String() string {
	if p == nil {
		return "off"
	}
	return fmt.Sprintf("seed=%d,dram=%g,multibit=%g,link=%g,linkpenalty=%d,exec=%g,execfirst=%d",
		p.Seed, p.DRAMBitFlipRate, p.DRAMMultiBitFraction,
		p.LinkFaultRate, p.LinkRetryPenalty, p.ExecFaultRate, p.ExecFailFirst)
}

// ParseSpec parses a -faults flag value: comma-separated key=value
// pairs, e.g. "seed=7,dram=1e-5,multibit=0.2,link=1e-6,linkpenalty=20,
// exec=0.001,execfirst=1". An empty spec (or "off") returns (nil, nil):
// faults disabled.
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	p := &Plan{LinkRetryPenalty: 20}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 0, 64)
		case "dram":
			p.DRAMBitFlipRate, err = strconv.ParseFloat(v, 64)
		case "multibit":
			p.DRAMMultiBitFraction, err = strconv.ParseFloat(v, 64)
		case "link":
			p.LinkFaultRate, err = strconv.ParseFloat(v, 64)
		case "linkpenalty":
			p.LinkRetryPenalty, err = strconv.ParseInt(v, 0, 64)
		case "exec":
			p.ExecFaultRate, err = strconv.ParseFloat(v, 64)
		case "execfirst":
			var n int64
			n, err = strconv.ParseInt(v, 0, 32)
			p.ExecFailFirst = int(n)
		default:
			return nil, fmt.Errorf("fault: unknown spec key %q (valid: seed, dram, multibit, link, linkpenalty, exec, execfirst)", k)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad value for %q: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Site derives a stable site identifier from a domain tag and component
// coordinates (cube, vault, pg, bank, mesh index, ...). Callers keep
// the same coordinate order across runs; the identifier feeds the
// decision hash, so its exact value is arbitrary but must be stable.
func Site(d Domain, coords ...int) uint64 {
	h := mix64(uint64(d) + golden)
	for _, c := range coords {
		h = mix64(h ^ (uint64(int64(c)) + golden))
	}
	return h
}

// BankFault is the outcome of one bank-read decision.
type BankFault struct {
	Injected  bool
	Corrected bool // single-bit: ECC corrects, data intact
	// Bits are the flipped bit offsets within the 128-bit access; both
	// entries are meaningful only for an uncorrected (two-bit) fault.
	Bits [2]int
}

// BankRead decides the fault outcome of one 128-bit bank read. site
// identifies the bank (Site(DomBank, cube, vault, pg, bank)); n is the
// caller-owned event index of this read at that site's vault.
func (p *Plan) BankRead(site, n uint64) BankFault {
	if p.DRAMBitFlipRate <= 0 || p.unit(DomBank, site, n, 0) >= p.DRAMBitFlipRate {
		return BankFault{}
	}
	b0 := int(p.word(DomBank, site, n, 1) % 128)
	bf := BankFault{Injected: true, Corrected: true, Bits: [2]int{b0, b0}}
	if p.unit(DomBank, site, n, 2) < p.DRAMMultiBitFraction {
		bf.Corrected = false
		b1 := int(p.word(DomBank, site, n, 3) % 127)
		if b1 >= b0 {
			b1++ // distinct second bit
		}
		bf.Bits[1] = b1
	}
	return bf
}

// LinkFault decides whether one link traversal is faulted. site
// identifies the traffic source's view of one mesh; n is the shard's
// own traversal counter.
func (p *Plan) LinkFault(site, n uint64) bool {
	return p.LinkFaultRate > 0 && p.unit(DomLink, site, n, 0) < p.LinkFaultRate
}

// ExecFault decides whether a vault's n-th execution phase suffers a
// transient fault. site identifies the vault (Site(DomExec, cube,
// vault)).
func (p *Plan) ExecFault(site, n uint64) bool {
	if n < uint64(p.ExecFailFirst) {
		return true
	}
	return p.ExecFaultRate > 0 && p.unit(DomExec, site, n, 0) < p.ExecFaultRate
}

const golden = 0x9E3779B97F4A7C15

// word is the raw 64-bit decision hash for (seed, domain, site, n,
// salt). salt separates the several random values one decision needs.
func (p *Plan) word(d Domain, site, n, salt uint64) uint64 {
	h := mix64(p.Seed ^ golden)
	h = mix64(h ^ (uint64(d) + golden))
	h = mix64(h ^ (site + golden))
	h = mix64(h ^ (n + golden))
	return mix64(h ^ (salt + golden))
}

// unit maps the decision hash to a uniform float64 in [0,1).
func (p *Plan) unit(d Domain, site, n, salt uint64) float64 {
	return float64(p.word(d, site, n, salt)>>11) * (1.0 / (1 << 53))
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixing function.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
