// Package noc models iPIM's interconnect (paper Sec. IV-E): a 2D-mesh
// on-chip network among the vaults of a cube and a 2D-mesh off-chip
// SERDES network among cubes. Routers are input-queued and use
// dimension-order (X-Y) routing with simple link-level flow control:
// each unidirectional link serializes the flits that cross it.
//
// X-Y routing on a mesh is minimal and deadlock-free; the model tracks
// per-link busy time so contended transfers slow down realistically, and
// counts hops and flits for the energy model.
package noc

import (
	"fmt"

	"ipim/internal/fault"
)

// Direction indexes a router's four mesh output links.
type Direction int

const (
	East Direction = iota
	West
	North
	South
	numDirs
)

// Stats aggregates network activity for energy accounting and analysis.
// The fault counters are nonzero only under an attached fault.Plan.
type Stats struct {
	Packets    int64
	Flits      int64 // link traversals x flit (for per-hop energy)
	Hops       int64
	MaxLatency int64
	// LinkFaults counts link traversals on which an injected fault
	// forced the packet's flits to be retransmitted.
	LinkFaults int64
	// RetransmitFlits counts the extra flit-traversals those
	// retransmits cost (they do not count into Flits).
	RetransmitFlits int64
}

// faultState couples a fault plan with the per-source traversal
// counter. The counter is advanced only by the single caller that owns
// the surrounding link state, so the decision stream is a pure function
// of that source's own send history (see internal/fault).
type faultState struct {
	plan *fault.Plan
	site uint64
	n    uint64
}

// Mesh is a W×H 2D mesh. Node i sits at (i%W, i/W).
//
// Topology and latency parameters are immutable after NewMesh, so a
// Mesh may be consulted (Route, HopCount) from many goroutines. Link
// occupancy and traffic counters are mutable: they live either in the
// mesh's own default LinkState (used by Send, single-caller only) or in
// caller-private LinkStates (NewLinkState/SendOn), which let concurrent
// traffic sources each model their own contention deterministically.
type Mesh struct {
	W, H int

	// HopLatNum/HopLatDen express per-hop latency in cycles as a
	// rational so the 0.08 ns SERDES hop is representable at the 1 GHz
	// clock (latency = ceil(hops*Num/Den)).
	HopLatNum, HopLatDen int64

	// LinkBytesPerCycle is each link's serialization bandwidth.
	LinkBytesPerCycle int

	// linkFree[node][dir] is the cycle the output link becomes free
	// (the mesh's own link state, backing Send for single-caller uses).
	linkFree [][numDirs]int64

	faults *faultState

	Stats Stats
}

// LinkState is one traffic source's private view of the mesh: its link
// occupancy ("when does this output link free up for MY stream") and
// its share of the traffic counters. Sharding link state per source
// makes transfer latency a pure function of that source's own send
// history — independent of how concurrently simulated sources
// interleave — which is what makes parallel vault simulation
// bit-reproducible. The price is that cross-source link contention
// inside one barrier phase is not modeled; see DESIGN.md.
type LinkState struct {
	// linkFree[node][dir] is the cycle the output link becomes free.
	linkFree [][numDirs]int64

	faults *faultState

	Stats Stats
}

// AttachFaults arms link-fault injection for sends through this shard.
// site must be unique per (plan, shard) — derive it with fault.Site
// from the source's coordinates. A nil plan detaches.
func (st *LinkState) AttachFaults(p *fault.Plan, site uint64) {
	st.faults = newFaultState(p, site)
}

// AttachFaults arms link-fault injection for the mesh's own Send path
// (single-caller uses). A nil plan detaches.
func (m *Mesh) AttachFaults(p *fault.Plan, site uint64) {
	m.faults = newFaultState(p, site)
}

func newFaultState(p *fault.Plan, site uint64) *faultState {
	if p == nil {
		return nil
	}
	return &faultState{plan: p, site: site}
}

// NewMesh builds a W×H mesh with per-hop latency hopLatNum/hopLatDen
// cycles and the given link width in bytes/cycle.
func NewMesh(w, h int, hopLatNum, hopLatDen int64, linkBytesPerCycle int) *Mesh {
	if w <= 0 || h <= 0 || linkBytesPerCycle <= 0 || hopLatDen <= 0 {
		panic(fmt.Sprintf("noc: invalid mesh w=%d h=%d lbpc=%d den=%d", w, h, linkBytesPerCycle, hopLatDen))
	}
	return &Mesh{
		W: w, H: h,
		HopLatNum: hopLatNum, HopLatDen: hopLatDen,
		LinkBytesPerCycle: linkBytesPerCycle,
		linkFree:          make([][numDirs]int64, w*h),
	}
}

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.W * m.H }

// XY converts a node id to mesh coordinates.
func (m *Mesh) XY(node int) (x, y int) { return node % m.W, node / m.W }

// Node converts coordinates to a node id.
func (m *Mesh) Node(x, y int) int { return y*m.W + x }

// Route returns the X-Y route from src to dst as a sequence of
// (node, direction) link traversals. An empty route means src == dst.
func (m *Mesh) Route(src, dst int) []struct {
	Node int
	Dir  Direction
} {
	if src < 0 || src >= m.Nodes() || dst < 0 || dst >= m.Nodes() {
		panic(fmt.Sprintf("noc: route %d->%d outside %d-node mesh", src, dst, m.Nodes()))
	}
	var route []struct {
		Node int
		Dir  Direction
	}
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	for x != dx { // X first
		d := East
		nx := x + 1
		if dx < x {
			d = West
			nx = x - 1
		}
		route = append(route, struct {
			Node int
			Dir  Direction
		}{m.Node(x, y), d})
		x = nx
	}
	for y != dy { // then Y
		d := South
		ny := y + 1
		if dy < y {
			d = North
			ny = y - 1
		}
		route = append(route, struct {
			Node int
			Dir  Direction
		}{m.Node(x, y), d})
		y = ny
	}
	return route
}

// HopCount returns the minimal hop distance between two nodes.
func (m *Mesh) HopCount(src, dst int) int {
	x, y := m.XY(src)
	dx, dy := m.XY(dst)
	return abs(x-dx) + abs(y-dy)
}

// NewLinkState allocates a private link-state shard for one traffic
// source on this mesh.
func (m *Mesh) NewLinkState() *LinkState {
	return &LinkState{linkFree: make([][numDirs]int64, m.Nodes())}
}

// ResetTiming rewinds the shard's link-occupancy timeline to zero.
// Traffic counters and any attached fault decision stream are
// preserved. Used by the machine's abort path alongside the vaults'
// clock reset.
func (st *LinkState) ResetTiming() {
	for i := range st.linkFree {
		st.linkFree[i] = [numDirs]int64{}
	}
}

// NoEvent is the NextEvent sentinel for a quiescent timeline: every
// link is already free at the queried time.
const NoEvent int64 = int64(^uint64(0) >> 1)

// NextEvent returns the earliest cycle strictly after now at which one
// of the shard's held links frees up, or NoEvent when none is held past
// now. The interconnect is transaction-based — each send computes its
// delivery time immediately, so a busy link never requires stepping the
// clock to make progress — but the bound completes the fast-forward
// event contract (see docs/ARCHITECTURE.md): it is when link occupancy
// stops constraining the shard's next send.
func (st *LinkState) NextEvent(now int64) int64 {
	return nextFree(st.linkFree, now)
}

// NextEvent is LinkState.NextEvent for the mesh's own link state (the
// one behind Send).
func (m *Mesh) NextEvent(now int64) int64 {
	return nextFree(m.linkFree, now)
}

func nextFree(linkFree [][numDirs]int64, now int64) int64 {
	best := NoEvent
	for i := range linkFree {
		for d := 0; d < int(numDirs); d++ {
			if t := linkFree[i][d]; t > now && t < best {
				best = t
			}
		}
	}
	return best
}

// ResetTiming rewinds the mesh's own link-occupancy timeline (the one
// behind Send) to zero, preserving counters and fault state.
func (m *Mesh) ResetTiming() {
	for i := range m.linkFree {
		m.linkFree[i] = [numDirs]int64{}
	}
}

// Send injects a packet of size bytes at time now and returns its
// delivery time at dst, using the mesh's own link state and counters.
// All Send callers share one contention timeline, so Send must not be
// called concurrently; concurrent sources use SendOn with private
// LinkStates instead.
func (m *Mesh) Send(now int64, src, dst, bytes int) int64 {
	return m.send(m.linkFree, &m.Stats, m.faults, now, src, dst, bytes)
}

// SendOn is Send against a caller-private LinkState: contention is
// modeled only against the caller's own earlier sends, and counters
// accumulate into the shard. Distinct LinkStates may be driven from
// distinct goroutines concurrently.
func (m *Mesh) SendOn(st *LinkState, now int64, src, dst, bytes int) int64 {
	return m.send(st.linkFree, &st.Stats, st.faults, now, src, dst, bytes)
}

// send models one packet over the given link-occupancy state. Each link
// on the X-Y route serializes the packet's flits; per-hop latency
// accumulates as a rational. With a fault state attached, each link
// traversal may be faulted: the packet's flits re-serialize on that
// link and the retry penalty is added, delaying the tail and holding
// the link longer. With a zero link-fault rate the timing arithmetic is
// untouched (strict no-op).
func (m *Mesh) send(linkFree [][numDirs]int64, stats *Stats, fs *faultState, now int64, src, dst, bytes int) int64 {
	if bytes <= 0 {
		panic(fmt.Sprintf("noc: packet of %d bytes", bytes))
	}
	if fs != nil && fs.plan.LinkFaultRate <= 0 {
		fs = nil // zero-rate plan: do not consume traversal events
	}
	route := m.Route(src, dst)
	flits := int64((bytes + m.LinkBytesPerCycle - 1) / m.LinkBytesPerCycle)
	// Wormhole pipelining: the head advances link by link (stalling on
	// busy links); each link is then held for the packet's flits; the
	// tail arrives flits-1 cycles after the head; propagation adds the
	// per-hop latency over the whole route.
	head := now
	tailHold := flits
	for _, hop := range route {
		if free := linkFree[hop.Node][hop.Dir]; free > head {
			head = free
		}
		hold := flits
		if fs != nil {
			n := fs.n
			fs.n++
			if fs.plan.LinkFault(fs.site, n) {
				hold += flits + fs.plan.LinkRetryPenalty
				stats.LinkFaults++
				stats.RetransmitFlits += flits
			}
		}
		linkFree[hop.Node][hop.Dir] = head + hold
		if hold > tailHold {
			tailHold = hold
		}
		stats.Flits += flits
	}
	hops := int64(len(route))
	t := now
	if hops > 0 {
		t = head + tailHold - 1 + ceilDiv(hops*m.HopLatNum, m.HopLatDen)
	}
	stats.Packets++
	stats.Hops += hops
	if lat := t - now; lat > stats.MaxLatency {
		stats.MaxLatency = lat
	}
	return t
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
