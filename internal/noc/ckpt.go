package noc

// Checkpoint codec for link state. A mesh's timing state is entirely
// its link-occupancy timeline (linkFree), which is kept in absolute
// cycles like the vault clocks, so it serializes verbatim; alongside it
// go the shard's traffic counters and — when a fault plan is attached —
// the link-fault decision-stream position, which must survive a restore
// so the resumed run rolls exactly the faults the uninterrupted run
// would have rolled.
//
// The same image type serves both Mesh (its own Send-path link state)
// and LinkState (per-source shards): they hold identical state, only
// ownership differs. Decode validates against the expected node count
// and never touches live state; Apply is infallible on a validated
// image. The fault-plan attachment itself is not serialized here — the
// machine layer re-attaches plans before applying images (AttachFaults
// zeroes the stream position; Apply then restores it).

import (
	"fmt"

	"ipim/internal/ckpt"
)

// LinkImage is a decoded, validated link-state checkpoint for one Mesh
// or LinkState. Produced only by DecodeLinkCkpt.
type LinkImage struct {
	linkFree []int64 // flattened [node][dir], absolute cycles
	faultN   uint64
	stats    Stats
}

// encodeLinks is the shared encoder behind the Mesh and LinkState
// EncodeCkpt methods.
func encodeLinks(e *ckpt.Enc, linkFree [][numDirs]int64, fs *faultState, stats Stats) {
	e.U32(uint32(len(linkFree)))
	for i := range linkFree {
		for d := 0; d < int(numDirs); d++ {
			e.I64(linkFree[i][d])
		}
	}
	var n uint64
	if fs != nil {
		n = fs.n
	}
	e.U64(n)
	e.I64(stats.Packets)
	e.I64(stats.Flits)
	e.I64(stats.Hops)
	e.I64(stats.MaxLatency)
	e.I64(stats.LinkFaults)
	e.I64(stats.RetransmitFlits)
}

// EncodeCkpt appends the shard's checkpoint state to e.
func (st *LinkState) EncodeCkpt(e *ckpt.Enc) {
	encodeLinks(e, st.linkFree, st.faults, st.Stats)
}

// EncodeCkpt appends the mesh's own link state (the one behind Send) to e.
func (m *Mesh) EncodeCkpt(e *ckpt.Enc) {
	encodeLinks(e, m.linkFree, m.faults, m.Stats)
}

// DecodeLinkCkpt parses one link-state checkpoint from d and validates
// it against a mesh with the given node count. It touches no live
// state; errors wrap ckpt.ErrCorrupt.
func DecodeLinkCkpt(d *ckpt.Dec, nodes int) (*LinkImage, error) {
	img := &LinkImage{}
	n := int(d.U32())
	if d.Err() == nil && n != nodes {
		return nil, fmt.Errorf("noc: checkpoint has %d nodes, mesh has %d: %w", n, nodes, ckpt.ErrCorrupt)
	}
	for i := 0; i < n*int(numDirs) && d.Err() == nil; i++ {
		img.linkFree = append(img.linkFree, d.I64())
	}
	img.faultN = d.U64()
	img.stats = Stats{
		Packets:         d.I64(),
		Flits:           d.I64(),
		Hops:            d.I64(),
		MaxLatency:      d.I64(),
		LinkFaults:      d.I64(),
		RetransmitFlits: d.I64(),
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return img, nil
}

// applyLinks is the shared applier behind the Mesh and LinkState
// ApplyLinkCkpt methods. The decision-stream position is restored only
// when a fault state is attached (the machine layer re-attaches plans
// before applying, so a faulted checkpoint always finds one).
func applyLinks(linkFree [][numDirs]int64, fs *faultState, stats *Stats, img *LinkImage) {
	for i := range linkFree {
		for d := 0; d < int(numDirs); d++ {
			linkFree[i][d] = img.linkFree[i*int(numDirs)+d]
		}
	}
	if fs != nil {
		fs.n = img.faultN
	}
	*stats = img.stats
}

// ApplyLinkCkpt rewrites the shard's state from a validated image.
// Never fails: all validation happened in DecodeLinkCkpt.
func (st *LinkState) ApplyLinkCkpt(img *LinkImage) {
	applyLinks(st.linkFree, st.faults, &st.Stats, img)
}

// ApplyLinkCkpt rewrites the mesh's own link state from a validated
// image. Never fails: all validation happened in DecodeLinkCkpt.
func (m *Mesh) ApplyLinkCkpt(img *LinkImage) {
	applyLinks(m.linkFree, m.faults, &m.Stats, img)
}
