package noc

import (
	"testing"

	"ipim/internal/fault"
)

// A zero-link-rate plan attached to a shard must not change delivery
// times, counters, or consume decision events.
func TestZeroRateFaultPlanIsNoOpOnLinks(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	plain := m.NewLinkState()
	armed := m.NewLinkState()
	armed.AttachFaults(&fault.Plan{Seed: 1, DRAMBitFlipRate: 0.5}, fault.Site(fault.DomLink, 0))
	for i := 0; i < 50; i++ {
		a := m.SendOn(plain, int64(i), 0, 15, 64)
		b := m.SendOn(armed, int64(i), 0, 15, 64)
		if a != b {
			t.Fatalf("send %d: zero-link-rate plan changed delivery %d -> %d", i, a, b)
		}
	}
	if plain.Stats != armed.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", plain.Stats, armed.Stats)
	}
	if armed.Stats.LinkFaults != 0 || armed.Stats.RetransmitFlits != 0 {
		t.Fatalf("zero-rate plan injected: %+v", armed.Stats)
	}
}

// A certain-fault plan must delay delivery by at least the retry
// penalty and count every traversal.
func TestLinkFaultDelaysAndCounts(t *testing.T) {
	m := NewMesh(4, 1, 1, 1, 16)
	base := m.NewLinkState()
	faulty := m.NewLinkState()
	p := &fault.Plan{Seed: 9, LinkFaultRate: 1, LinkRetryPenalty: 20}
	faulty.AttachFaults(p, fault.Site(fault.DomLink, 1))
	clean := m.SendOn(base, 0, 0, 3, 64) // 3 hops
	hit := m.SendOn(faulty, 0, 0, 3, 64)
	if hit < clean+p.LinkRetryPenalty {
		t.Fatalf("faulted delivery %d not delayed past clean %d + penalty %d", hit, clean, p.LinkRetryPenalty)
	}
	if faulty.Stats.LinkFaults != 3 {
		t.Fatalf("LinkFaults = %d, want 3 (one per hop)", faulty.Stats.LinkFaults)
	}
	flits := int64(64 / 16)
	if faulty.Stats.RetransmitFlits != 3*flits {
		t.Fatalf("RetransmitFlits = %d, want %d", faulty.Stats.RetransmitFlits, 3*flits)
	}
	// Flits counts the original traversals only.
	if faulty.Stats.Flits != base.Stats.Flits {
		t.Fatalf("Flits %d should match clean %d", faulty.Stats.Flits, base.Stats.Flits)
	}
}

// The same seed and site must reproduce the same fault pattern on a
// fresh shard: delivery times and counters equal event for event.
func TestLinkFaultsDeterministic(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	p := &fault.Plan{Seed: 1234, LinkFaultRate: 0.3, LinkRetryPenalty: 7}
	run := func() (Stats, []int64) {
		st := m.NewLinkState()
		st.AttachFaults(p, fault.Site(fault.DomLink, 0, 2))
		var deliveries []int64
		for i := 0; i < 200; i++ {
			deliveries = append(deliveries, m.SendOn(st, int64(i*3), i%16, (i*7)%16, 32+16*(i%4)))
		}
		return st.Stats, deliveries
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 {
		t.Fatalf("stats not reproducible: %+v vs %+v", s1, s2)
	}
	if s1.LinkFaults == 0 {
		t.Fatal("rate 0.3 over 200 sends injected nothing; test has no teeth")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("delivery %d not reproducible: %d vs %d", i, d1[i], d2[i])
		}
	}
}
