package noc

import (
	"errors"
	"testing"

	"ipim/internal/ckpt"
	"ipim/internal/fault"
)

func encodeMesh(m *Mesh) []byte {
	var e ckpt.Enc
	m.EncodeCkpt(&e)
	return e.Bytes()
}

func TestMeshCkptRoundTrip(t *testing.T) {
	src := NewMesh(4, 4, 1, 1, 16)
	src.Send(0, src.Node(0, 0), src.Node(3, 3), 128)
	src.Send(7, src.Node(1, 2), src.Node(2, 0), 64)
	payload := encodeMesh(src)

	img, err := DecodeLinkCkpt(ckpt.NewDec(payload), 16)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	dst := NewMesh(4, 4, 1, 1, 16)
	dst.ApplyLinkCkpt(img)

	if dst.Stats != src.Stats {
		t.Errorf("restored Stats = %+v, want %+v", dst.Stats, src.Stats)
	}
	// Re-encode must be byte-identical, and an identical future send
	// must observe identical link occupancy on both meshes.
	if string(encodeMesh(dst)) != string(payload) {
		t.Error("re-encoded checkpoint differs from the original")
	}
	a := src.Send(9, src.Node(0, 0), src.Node(3, 3), 256)
	b := dst.Send(9, dst.Node(0, 0), dst.Node(3, 3), 256)
	if a != b {
		t.Errorf("post-restore send finished at %d on the original, %d on the restored", a, b)
	}
}

func TestLinkStateCkptRoundTripWithFaults(t *testing.T) {
	plan := &fault.Plan{Seed: 7, LinkFaultRate: 0.5, LinkRetryPenalty: 3}
	mk := func() (*Mesh, *LinkState) {
		m := NewMesh(4, 4, 1, 1, 16)
		st := m.NewLinkState()
		st.AttachFaults(plan, fault.Site(fault.DomLink, 11))
		return m, st
	}
	src, sst := mk()
	src.SendOn(sst, 0, src.Node(0, 0), src.Node(3, 1), 96)
	src.SendOn(sst, 3, src.Node(2, 2), src.Node(0, 3), 48)

	var e ckpt.Enc
	sst.EncodeCkpt(&e)
	img, err := DecodeLinkCkpt(ckpt.NewDec(e.Bytes()), 16)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	dst, dst2 := mk() // AttachFaults zeroes the stream position...
	dst2.ApplyLinkCkpt(img)
	if dst2.Stats != sst.Stats {
		t.Errorf("restored shard Stats = %+v, want %+v", dst2.Stats, sst.Stats)
	}
	// ...and Apply restores it, so both shards roll the same future
	// fault decisions: identical sends land at identical times with
	// identical fault counters.
	a := src.SendOn(sst, 20, src.Node(0, 0), src.Node(3, 3), 512)
	b := dst.SendOn(dst2, 20, dst.Node(0, 0), dst.Node(3, 3), 512)
	if a != b || sst.Stats != dst2.Stats {
		t.Errorf("post-restore divergence: finish %d vs %d, stats %+v vs %+v",
			a, b, sst.Stats, dst2.Stats)
	}
}

func TestLinkCkptRejections(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	payload := encodeMesh(m)
	if _, err := DecodeLinkCkpt(ckpt.NewDec(payload), 4); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("node-count mismatch: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeLinkCkpt(ckpt.NewDec(payload[:6]), 16); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
}
