package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXYNodeRoundTrip(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	for n := 0; n < m.Nodes(); n++ {
		x, y := m.XY(n)
		if m.Node(x, y) != n {
			t.Fatalf("node %d -> (%d,%d) -> %d", n, x, y, m.Node(x, y))
		}
	}
}

func TestRouteIsXYAndMinimal(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	src, dst := m.Node(0, 3), m.Node(3, 0)
	route := m.Route(src, dst)
	if len(route) != m.HopCount(src, dst) {
		t.Fatalf("route length %d != hop count %d", len(route), m.HopCount(src, dst))
	}
	// X movement must complete before any Y movement (X-Y routing).
	seenY := false
	for _, h := range route {
		vertical := h.Dir == North || h.Dir == South
		if vertical {
			seenY = true
		} else if seenY {
			t.Fatal("horizontal hop after vertical hop: not X-Y routing")
		}
	}
}

func TestRouteEmptyForSelf(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	if len(m.Route(5, 5)) != 0 {
		t.Fatal("self route not empty")
	}
	if got := m.Send(100, 5, 5, 64); got != 100 {
		t.Fatalf("self send latency = %d, want 0", got-100)
	}
}

func TestSendLatencyScalesWithDistance(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	near := m.Send(0, m.Node(0, 0), m.Node(1, 0), 16)
	m2 := NewMesh(4, 4, 1, 1, 16)
	far := m2.Send(0, m2.Node(0, 0), m2.Node(3, 3), 16)
	if far <= near {
		t.Fatalf("far latency %d <= near latency %d", far, near)
	}
	// Wormhole: latency = hops*hopLat + (flits-1). 1 flit, 1 hop => 1.
	if near != 1 {
		t.Fatalf("1-hop 1-flit latency = %d, want 1", near)
	}
	if far != 6 { // 6 hops, 1 flit
		t.Fatalf("6-hop latency = %d, want 6", far)
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	m := NewMesh(4, 1, 1, 1, 16)
	// Two packets over the same link at the same time: the second is
	// delayed by the first's serialization.
	a := m.Send(0, 0, 1, 64) // 4 flits
	b := m.Send(0, 0, 1, 64)
	if b <= a {
		t.Fatalf("contended packet not delayed: a=%d b=%d", a, b)
	}
	if b-a != 4 {
		t.Fatalf("second packet delayed by %d, want 4 flits", b-a)
	}
}

func TestDisjointLinksDoNotContend(t *testing.T) {
	m := NewMesh(4, 1, 1, 1, 16)
	a := m.Send(0, 0, 1, 64)
	c := m.Send(0, 2, 3, 64) // different link entirely
	if c != a {
		t.Fatalf("disjoint transfers interfered: %d vs %d", a, c)
	}
}

func TestFractionalHopLatency(t *testing.T) {
	// SERDES hop = 0.08 ns => num=8, den=100. 13 hops should cost
	// ceil(13*8/100) = 2 extra cycles (on a 14x1 mesh wrap-free path).
	m := NewMesh(14, 1, 8, 100, 16)
	got := m.Send(0, 0, 13, 16)
	// 13 hops, 1 flit: head propagation ceil(13*8/100) = 2 cycles.
	if got != 2 {
		t.Fatalf("fractional hop latency: got %d, want 2", got)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := NewMesh(4, 4, 1, 1, 16)
	m.Send(0, 0, 3, 32)
	m.Send(0, 0, 3, 32)
	if m.Stats.Packets != 2 {
		t.Fatalf("packets = %d", m.Stats.Packets)
	}
	if m.Stats.Hops != 6 {
		t.Fatalf("hops = %d, want 6", m.Stats.Hops)
	}
	if m.Stats.Flits != 12 { // 2 flits x 3 hops x 2 packets
		t.Fatalf("flits = %d, want 12", m.Stats.Flits)
	}
	if m.Stats.MaxLatency <= 0 {
		t.Fatal("max latency not tracked")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"bad mesh":   func() { NewMesh(0, 4, 1, 1, 16) },
		"bad width":  func() { NewMesh(4, 4, 1, 1, 0) },
		"bad den":    func() { NewMesh(4, 4, 1, 0, 16) },
		"bad route":  func() { NewMesh(2, 2, 1, 1, 16).Route(0, 9) },
		"zero bytes": func() { NewMesh(2, 2, 1, 1, 16).Send(0, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: every packet is delivered at a time >= injection, route
// length equals Manhattan distance, and delivery order on a shared link
// matches injection order.
func TestDeliveryInvariantsQuick(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	f := func() bool {
		m := NewMesh(4, 4, 1, 1, 16)
		now := int64(0)
		for i := 0; i < 50; i++ {
			src := rnd.Intn(16)
			dst := rnd.Intn(16)
			bytes := 16 * (1 + rnd.Intn(8))
			arr := m.Send(now, src, dst, bytes)
			if arr < now {
				t.Logf("delivered before injection: %d < %d", arr, now)
				return false
			}
			if len(m.Route(src, dst)) != m.HopCount(src, dst) {
				t.Log("non-minimal route")
				return false
			}
			now += int64(rnd.Intn(3))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
