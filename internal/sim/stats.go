package sim

import (
	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/noc"
)

// StallReason classifies why the control core could not issue on a cycle.
type StallReason uint8

const (
	StallData      StallReason = iota // true/anti/output hazard in the issued queue
	StallQueueFull                    // issued-instruction queue at capacity
	StallDRAMQueue                    // PG memory request queue full
	StallBranch                       // taken-branch bubble
	StallSync                         // waiting at a barrier
	StallIFetch                       // instruction-cache miss refill
	NumStallReasons
)

var stallNames = [...]string{
	StallData:      "data-hazard",
	StallQueueFull: "inst-queue-full",
	StallDRAMQueue: "dram-queue-full",
	StallBranch:    "branch-bubble",
	StallSync:      "sync-wait",
	StallIFetch:    "icache-miss",
}

func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return "stall(?)"
}

// Stats aggregates everything one vault run produces: cycle counts,
// per-category instruction counts (Fig. 11), stall breakdown, component
// busy counters (Fig. 13), event counts for the energy model (Fig. 7/9),
// and the embedded DRAM/NoC stats.
type Stats struct {
	Cycles int64
	Issued int64 // dynamic instructions issued

	InstByCategory [isa.NumCategories]int64
	StallCycles    [NumStallReasons]int64

	// Component activity (event counts; each event occupies the unit for
	// one cycle, so utilization = events / Cycles).
	SIMDOps    int64 // vector operations executed (per PE per comp)
	IntALUOps  int64 // per-PE index calculations
	DataRFAcc  int64 // DataRF read+write accesses
	AddrRFAcc  int64 // AddrRF read+write accesses
	PGSMAcc    int64 // PGSM read+write accesses (16 B each)
	VSMAcc     int64 // VSM read+write accesses (16 B each)
	TSVBeats   int64 // 128-bit TSV bus beats
	PEBusBeats int64 // 128-bit PE-local bus beats
	SerdesBeat int64 // SERDES link beats (LinkBytesPerCycle each)

	// Remote traffic.
	RemoteReqs int64
	Syncs      int64

	DRAM dram.Stats
	NoC  noc.Stats
}

// Add accumulates other into s (for aggregating vaults or phases).
func (s *Stats) Add(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles // vaults run concurrently: wall clock is the max
	}
	s.Issued += o.Issued
	for i := range s.InstByCategory {
		s.InstByCategory[i] += o.InstByCategory[i]
	}
	for i := range s.StallCycles {
		s.StallCycles[i] += o.StallCycles[i]
	}
	s.SIMDOps += o.SIMDOps
	s.IntALUOps += o.IntALUOps
	s.DataRFAcc += o.DataRFAcc
	s.AddrRFAcc += o.AddrRFAcc
	s.PGSMAcc += o.PGSMAcc
	s.VSMAcc += o.VSMAcc
	s.TSVBeats += o.TSVBeats
	s.PEBusBeats += o.PEBusBeats
	s.SerdesBeat += o.SerdesBeat
	s.RemoteReqs += o.RemoteReqs
	s.Syncs += o.Syncs
	s.DRAM.Reads += o.DRAM.Reads
	s.DRAM.Writes += o.DRAM.Writes
	s.DRAM.Activates += o.DRAM.Activates
	s.DRAM.Precharges += o.DRAM.Precharges
	s.DRAM.Refreshes += o.DRAM.Refreshes
	s.DRAM.RowHits += o.DRAM.RowHits
	s.DRAM.RowMisses += o.DRAM.RowMisses
	s.DRAM.QueueFullStalls += o.DRAM.QueueFullStalls
	s.DRAM.BusyCycles += o.DRAM.BusyCycles
	s.NoC.Packets += o.NoC.Packets
	s.NoC.Flits += o.NoC.Flits
	s.NoC.Hops += o.NoC.Hops
	if o.NoC.MaxLatency > s.NoC.MaxLatency {
		s.NoC.MaxLatency = o.NoC.MaxLatency
	}
}

// Sub subtracts a previously captured snapshot from s, leaving the
// delta — what one run contributed on a long-lived machine whose
// vaults accumulate stats across runs. Cycles subtracts like the
// counters (the wall clock advanced by that much); NoC.MaxLatency is a
// watermark and keeps its current value.
func (s *Stats) Sub(o *Stats) {
	s.Cycles -= o.Cycles
	s.Issued -= o.Issued
	for i := range s.InstByCategory {
		s.InstByCategory[i] -= o.InstByCategory[i]
	}
	for i := range s.StallCycles {
		s.StallCycles[i] -= o.StallCycles[i]
	}
	s.SIMDOps -= o.SIMDOps
	s.IntALUOps -= o.IntALUOps
	s.DataRFAcc -= o.DataRFAcc
	s.AddrRFAcc -= o.AddrRFAcc
	s.PGSMAcc -= o.PGSMAcc
	s.VSMAcc -= o.VSMAcc
	s.TSVBeats -= o.TSVBeats
	s.PEBusBeats -= o.PEBusBeats
	s.SerdesBeat -= o.SerdesBeat
	s.RemoteReqs -= o.RemoteReqs
	s.Syncs -= o.Syncs
	s.DRAM.Reads -= o.DRAM.Reads
	s.DRAM.Writes -= o.DRAM.Writes
	s.DRAM.Activates -= o.DRAM.Activates
	s.DRAM.Precharges -= o.DRAM.Precharges
	s.DRAM.Refreshes -= o.DRAM.Refreshes
	s.DRAM.RowHits -= o.DRAM.RowHits
	s.DRAM.RowMisses -= o.DRAM.RowMisses
	s.DRAM.QueueFullStalls -= o.DRAM.QueueFullStalls
	s.DRAM.BusyCycles -= o.DRAM.BusyCycles
	s.NoC.Packets -= o.NoC.Packets
	s.NoC.Flits -= o.NoC.Flits
	s.NoC.Hops -= o.NoC.Hops
}

// IPC returns issued instructions per cycle (paper Fig. 13).
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// TotalInstructions returns the dynamic instruction count.
func (s *Stats) TotalInstructions() int64 {
	var n int64
	for _, c := range s.InstByCategory {
		n += c
	}
	return n
}

// CategoryFraction returns category c's share of dynamic instructions.
func (s *Stats) CategoryFraction(c isa.Category) float64 {
	total := s.TotalInstructions()
	if total == 0 {
		return 0
	}
	return float64(s.InstByCategory[c]) / float64(total)
}

// Utilization describes per-component busy fractions for Fig. 13. nPE is
// the number of PEs the stats cover (per-PE units are normalized by it).
func (s *Stats) Utilization(nPE int) map[string]float64 {
	if s.Cycles == 0 || nPE == 0 {
		return map[string]float64{}
	}
	perPE := float64(s.Cycles) * float64(nPE)
	return map[string]float64{
		"simd":   float64(s.SIMDOps) / perPE,
		"intalu": float64(s.IntALUOps) / perPE,
		"datarf": float64(s.DataRFAcc) / (2 * perPE), // multi-port: 2 ports
		"addrrf": float64(s.AddrRFAcc) / (2 * perPE),
		"dram":   float64(s.DRAM.Reads+s.DRAM.Writes) * float64(dramBurst) / perPE,
		"tsv":    float64(s.TSVBeats) / float64(s.Cycles),
	}
}

// dramBurst is the bank occupancy per access in cycles (tCCD).
const dramBurst = 2
