package sim

import (
	"fmt"
	"reflect"

	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/noc"
)

// StallReason classifies why the control core could not issue on a cycle.
type StallReason uint8

// The stall reasons, in StallCycles index order.
const (
	StallData       StallReason = iota // true/anti/output hazard in the issued queue
	StallQueueFull                     // issued-instruction queue at capacity
	StallDRAMQueue                     // PG memory request queue full
	StallBranch                        // taken-branch bubble
	StallSync                          // waiting at a barrier
	StallIFetch                        // instruction-cache miss refill
	NumStallReasons                    // array bound, not a reason
)

var stallNames = [...]string{
	StallData:      "data-hazard",
	StallQueueFull: "inst-queue-full",
	StallDRAMQueue: "dram-queue-full",
	StallBranch:    "branch-bubble",
	StallSync:      "sync-wait",
	StallIFetch:    "icache-miss",
}

// String returns the reason's short kebab-case name (as printed by
// ipim-trace and the stats dumps).
func (s StallReason) String() string {
	if int(s) < len(stallNames) {
		return stallNames[s]
	}
	return "stall(?)"
}

// Stats aggregates everything one vault run produces: cycle counts,
// per-category instruction counts (Fig. 11), stall breakdown, component
// busy counters (Fig. 13), event counts for the energy model (Fig. 7/9),
// and the embedded DRAM/NoC stats. Under an attached fault.Plan the
// embedded structs also carry the injected-fault tallies (DRAM ECC
// corrected/uncorrected, NoC link faults and retransmit flits); like
// every other counter they fold by reflection, so serial and parallel
// runs agree on them bit for bit.
type Stats struct {
	// Cycles is the wall clock in simulated cycles (1 cycle = 1 ns at
	// the paper's 1 GHz): the slowest vault's clock, max-folded by Add.
	Cycles int64
	Issued int64 // dynamic instructions issued

	InstByCategory [isa.NumCategories]int64 // issues per isa.Category
	// StallCycles breaks non-issuing cycles down by StallReason. The
	// breakdown is identical whether idle-cycle fast-forward is enabled
	// or not: skipped spans are charged to their reason exactly as if
	// they had been stepped (fast-forward tallies live outside Stats,
	// on Machine.FastForwardedCycles, precisely to keep this struct
	// bit-identical across the two modes).
	StallCycles [NumStallReasons]int64

	// Component activity (event counts; each event occupies the unit for
	// one cycle, so utilization = events / Cycles).
	SIMDOps    int64 // vector operations executed (per PE per comp)
	IntALUOps  int64 // per-PE index calculations
	DataRFAcc  int64 // DataRF read+write accesses
	AddrRFAcc  int64 // AddrRF read+write accesses
	PGSMAcc    int64 // PGSM read+write accesses (16 B each)
	VSMAcc     int64 // VSM read+write accesses (16 B each)
	TSVBeats   int64 // 128-bit TSV bus beats
	PEBusBeats int64 // 128-bit PE-local bus beats
	SerdesBeat int64 // SERDES link beats (LinkBytesPerCycle each)

	// Remote traffic.
	RemoteReqs int64 // req instructions executed (remote bank reads)
	Syncs      int64 // sync instructions retired (barrier entries)

	DRAM dram.Stats // summed per-PG controller counters (FoldDRAMStats)
	NoC  noc.Stats  // summed per-source link-shard counters
}

// Two Stats fields are not plain event counters and fold specially:
//
//   - Cycles is a wall clock: concurrent vaults overlap, so Add takes
//     the max; Sub subtracts (the clock advanced by that much during
//     the run being diffed out).
//   - NoC.MaxLatency is a watermark: Add takes the max; Sub keeps the
//     current value (a watermark cannot be un-observed).
//
// Every other int64 leaf — including array elements and the embedded
// DRAM/NoC structs — sums under Add and subtracts under Sub. Add and
// Sub discover those leaves by reflection (walkCounters), so a counter
// added to Stats, dram.Stats or noc.Stats can never be silently left
// out of the fold; sim.TestStatsFoldCoversEveryField pins the semantics
// field by field.

// Add accumulates other into s (for aggregating vaults or phases).
func (s *Stats) Add(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	if o.NoC.MaxLatency > s.NoC.MaxLatency {
		s.NoC.MaxLatency = o.NoC.MaxLatency
	}
	walkCounters(s, o, func(d *int64, src int64) { *d += src })
}

// Sub subtracts a previously captured snapshot from s, leaving the
// delta — what one run contributed on a long-lived machine whose
// vaults accumulate stats across runs.
func (s *Stats) Sub(o *Stats) {
	s.Cycles -= o.Cycles
	walkCounters(s, o, func(d *int64, src int64) { *d -= src })
}

// AddCounters adds every int64 leaf of o into s field for field —
// including Cycles and NoC.MaxLatency, which Add folds specially. The
// timing memoizer uses it to apply a cached per-block counter delta to
// one vault's stats, where the block's Cycles contribution really is a
// plain increment of that vault's own clock (the caller re-assigns
// Cycles from the clock afterwards, so the special fields just need a
// lossless round trip with SubCounters).
func (s *Stats) AddCounters(o *Stats) {
	s.Cycles += o.Cycles
	s.NoC.MaxLatency += o.NoC.MaxLatency
	walkCounters(s, o, func(d *int64, src int64) { *d += src })
}

// SubCounters subtracts every int64 leaf of o from s field for field,
// the exact inverse of AddCounters (unlike Sub, which preserves the
// MaxLatency watermark). The timing memoizer uses it to compute a
// block's counter delta from entry/exit snapshots of one vault's stats.
func (s *Stats) SubCounters(o *Stats) {
	s.Cycles -= o.Cycles
	s.NoC.MaxLatency -= o.NoC.MaxLatency
	walkCounters(s, o, func(d *int64, src int64) { *d -= src })
}

// foldSpecial names the field paths Add/Sub handle explicitly (see the
// comment above); walkCounters skips them.
var foldSpecial = map[string]bool{
	"Cycles":         true,
	"NoC.MaxLatency": true,
}

// walkCounters invokes fn on every plain-counter int64 leaf of the two
// Stats in lockstep, recursing into embedded structs and arrays.
func walkCounters(dst, src *Stats, fn func(d *int64, s int64)) {
	walkValue(reflect.ValueOf(dst).Elem(), reflect.ValueOf(src).Elem(), "", fn)
}

func walkValue(dst, src reflect.Value, path string, fn func(d *int64, s int64)) {
	switch dst.Kind() {
	case reflect.Int64:
		if foldSpecial[path] {
			return
		}
		fn(dst.Addr().Interface().(*int64), src.Int())
	case reflect.Array:
		for i := 0; i < dst.Len(); i++ {
			walkValue(dst.Index(i), src.Index(i), path, fn)
		}
	case reflect.Struct:
		t := dst.Type()
		for i := 0; i < dst.NumField(); i++ {
			p := t.Field(i).Name
			if path != "" {
				p = path + "." + p
			}
			walkValue(dst.Field(i), src.Field(i), p, fn)
		}
	default:
		panic(fmt.Sprintf("sim: Stats field %s has unfoldable kind %s — teach walkValue about it", path, dst.Kind()))
	}
}

// IPC returns issued instructions per cycle (paper Fig. 13).
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Issued) / float64(s.Cycles)
}

// TotalInstructions returns the dynamic instruction count.
func (s *Stats) TotalInstructions() int64 {
	var n int64
	for _, c := range s.InstByCategory {
		n += c
	}
	return n
}

// CategoryFraction returns category c's share of dynamic instructions.
func (s *Stats) CategoryFraction(c isa.Category) float64 {
	total := s.TotalInstructions()
	if total == 0 {
		return 0
	}
	return float64(s.InstByCategory[c]) / float64(total)
}

// Utilization describes per-component busy fractions for Fig. 13. nPE is
// the number of PEs the stats cover (per-PE units are normalized by it).
func (s *Stats) Utilization(nPE int) map[string]float64 {
	if s.Cycles == 0 || nPE == 0 {
		return map[string]float64{}
	}
	perPE := float64(s.Cycles) * float64(nPE)
	return map[string]float64{
		"simd":   float64(s.SIMDOps) / perPE,
		"intalu": float64(s.IntALUOps) / perPE,
		"datarf": float64(s.DataRFAcc) / (2 * perPE), // multi-port: 2 ports
		"addrrf": float64(s.AddrRFAcc) / (2 * perPE),
		"dram":   float64(s.DRAM.Reads+s.DRAM.Writes) * float64(dramBurst) / perPE,
		"tsv":    float64(s.TSVBeats) / float64(s.Cycles),
	}
}

// dramBurst is the bank occupancy per access in cycles (tCCD).
const dramBurst = 2
