package sim

// Run control: execution budgets and the typed errors the cancellation
// path produces. The vocabulary lives in sim so every layer — the vault
// step loop, the cube phase loop, and the public ipim API — shares one
// set of sentinel errors without import cycles.

import "errors"

// Mode selects how a run executes the loaded programs.
type Mode uint8

const (
	// DefaultMode defers to the machine's configured mode (SetMode);
	// a machine whose mode was never set runs cycle-accurate.
	DefaultMode Mode = iota

	// CycleMode is the full timing simulation: every instruction goes
	// through hazard checks, DRAM scheduling, TSV serialization and the
	// NoC, producing complete sim.Stats.
	CycleMode

	// FunctionalMode executes instructions functionally only: register,
	// scratchpad, bank and pixel outputs are bit-identical to CycleMode,
	// but no clocks advance and no timing state is touched. Stats carry
	// instruction counts (Issued, InstByCategory, Syncs) with Cycles = 0.
	// MaxCycles budgets are reinterpreted as an issued-instruction bound
	// (every instruction costs at least one cycle, so the bound is
	// conservative); MaxPhaseSteps and cancellation work unchanged.
	FunctionalMode
)

// String returns the mode's short name as used by CLI flags and the
// serve API ("cycle", "functional"; DefaultMode prints "default").
func (m Mode) String() string {
	switch m {
	case CycleMode:
		return "cycle"
	case FunctionalMode:
		return "functional"
	default:
		return "default"
	}
}

// RunOptions bounds one machine run. The zero value means unlimited:
// no budget checks run and the execution loop is untouched, so a
// zero-budget RunContext is bit-identical to Run.
//
// Budget decisions are made against vault-local state only (each
// vault's own clock and issue counter), which makes the error point a
// pure function of the workload: the same budget on the same programs
// trips at the same instruction on every schedule, serial or parallel,
// at any worker count.
type RunOptions struct {
	// MaxCycles aborts the run once any vault's clock advances this
	// many cycles past the point the run started (0 = unlimited). The
	// whole machine is bounded: vaults only drift apart within one
	// barrier phase, so every vault stops within one phase of the
	// budget.
	MaxCycles int64

	// MaxPhaseSteps aborts the run once any vault issues this many
	// instructions inside a single barrier phase without reaching sync
	// or end-of-program (0 = unlimited). This is the guard against
	// never-syncing programs whose backward branches are cheap in
	// cycles but unbounded in instructions.
	MaxPhaseSteps int64

	// Mode overrides the machine's execution mode for runs under this
	// options value (DefaultMode = no override; see sim.Mode).
	Mode Mode

	// CheckpointEvery asks the run loop to serialize the machine at the
	// first phase barrier after this many cycles (functional mode:
	// issued instructions) have elapsed since the run began or since the
	// previous checkpoint (0 = never). Barriers are the only points a
	// checkpoint can be taken: every queue is drained there, so the
	// snapshot needs no in-flight state. CheckpointEvery = 1 therefore
	// means "at every barrier".
	CheckpointEvery int64

	// CheckpointSink receives each serialized checkpoint. A nil sink
	// disables checkpointing regardless of CheckpointEvery. The sink is
	// called synchronously between phases; a non-nil error aborts the
	// run with that error (the machine is Reset, as for cancellation).
	// The byte slice is freshly allocated and owned by the sink.
	CheckpointSink func(data []byte) error
}

// Enabled reports whether any budget is set.
func (o RunOptions) Enabled() bool { return o.MaxCycles > 0 || o.MaxPhaseSteps > 0 }

// Errors produced by the run-control layer. Callers match with
// errors.Is; both are returned wrapped in context describing the vault
// and program point that tripped.
var (
	// ErrCycleBudget marks a run aborted by RunOptions.MaxCycles or
	// RunOptions.MaxPhaseSteps. The machine has been reset to a clean
	// reusable state when a Run* method returns it.
	ErrCycleBudget = errors.New("execution budget exceeded")

	// ErrCancelled marks a run aborted because its context was
	// cancelled or timed out. It wraps the context's cause, so
	// errors.Is(err, context.DeadlineExceeded) also works. The machine
	// has been reset to a clean reusable state when a Run* method
	// returns it.
	ErrCancelled = errors.New("run cancelled")
)
