package sim

import (
	"reflect"
	"testing"

	"ipim/internal/ckpt"
)

func TestStatsCkptRoundTrip(t *testing.T) {
	// Every leaf gets a distinct value (fillDistinct from the fold
	// test), so a codec that drops, duplicates, or reorders a leaf
	// cannot round-trip.
	var s Stats
	fillDistinct(&s, 1)
	var e ckpt.Enc
	s.EncodeCkpt(&e)

	var got Stats
	d := ckpt.NewDec(e.Bytes())
	got.DecodeCkpt(d)
	if d.Err() != nil {
		t.Fatalf("decode: %v", d.Err())
	}
	if d.Len() != 0 {
		t.Fatalf("decode left %d bytes unconsumed", d.Len())
	}
	if !reflect.DeepEqual(got, s) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, s)
	}
	// Unlike the Add/Sub fold, the codec is a verbatim image: the
	// specially folded fields must survive too.
	if got.Cycles != s.Cycles || got.NoC.MaxLatency != s.NoC.MaxLatency {
		t.Errorf("specially folded fields dropped: Cycles %d/%d, MaxLatency %d/%d",
			got.Cycles, s.Cycles, got.NoC.MaxLatency, s.NoC.MaxLatency)
	}
}

func TestStatsCkptTruncated(t *testing.T) {
	var s Stats
	fillDistinct(&s, 1)
	var e ckpt.Enc
	s.EncodeCkpt(&e)

	var got Stats
	d := ckpt.NewDec(e.Bytes()[:8]) // one leaf, then starvation
	got.DecodeCkpt(d)
	if d.Err() == nil {
		t.Fatal("decoding a truncated Stats payload must set the decoder error")
	}
}
