// Package sim holds the iPIM hardware configuration (paper Table III)
// and the statistics counters every simulation run produces. It sits at
// the bottom of the dependency graph so every other package can share
// one definition of the machine shape.
package sim

import (
	"fmt"

	"ipim/internal/dram"
)

// Config is the full iPIM hardware configuration. Zero values are not
// meaningful; start from Default() and override.
type Config struct {
	// Hierarchy (Table III row 1).
	Cubes         int // 8
	VaultsPerCube int // 16
	PGsPerVault   int // 8
	PEsPerPG      int // 4

	// Queues.
	InstQueue    int // issued-instruction queue entries per core (64)
	DRAMReqQueue int // memory request queue entries per PG controller (16)

	// Datapath widths.
	SIMDLen int // 4 lanes x 32 b = 128 b

	// Storage sizes.
	BankBytes     int // 16 MB per PE
	RowBytes      int // DRAM row buffer bytes
	AddrRFEntries int // 64 x 32 b = 256 B
	DataRFEntries int // 64 x 128 b = 1 KB (Fig. 10a sweeps 16..128)
	CtrlRFEntries int // control core scalar register file
	PGSMBytes     int // 8 KB (Fig. 10b sweeps 2K..8K)
	VSMBytes      int // 256 KB

	// Compute latencies in cycles (Table III): applied to both the SIMD
	// unit and the per-PE integer ALU. Units are fully pipelined
	// (initiation interval 1).
	TAdd, TMul, TMac, TLogic int // 4 / 5 / 8 / 1

	// Memory-hierarchy access latencies in cycles (Table III: all 1).
	TAddrRF, TDataRF, TPGSM, TVSM int

	// Interconnect (Table III). TSERDES is a rational in cycles
	// (0.08 ns at 1 GHz = 8/100).
	TPEBus, TTSV, TNoCHop int // per-beat / per-hop latencies in cycles
	// TSERDESNum/TSERDESDen express the per-hop SERDES latency in
	// cycles as a rational: latency = ceil(hops*Num/Den).
	TSERDESNum, TSERDESDen  int64
	SERDESLinkBytesPerCycle int // "link width (SERDES) 4"
	NoCLinkBytesPerCycle    int // on-chip mesh link width (TSV-class, 16 B)

	// Core behavior.
	BranchPenalty int // extra bubble cycles for a taken jump/cjump

	// Instruction cache (paper Fig. 2b: the core fetches from an I$
	// backed by the VSM, which "acts as the instruction memory").
	ICacheLines     int // direct-mapped lines
	ICacheLineInstr int // instructions per line
	ICacheMissCost  int // cycles to refill a line from the VSM

	// DRAM policies and timing (Table III: open page, FR-FCFS).
	Timing dram.Timing
	Page   dram.PagePolicy  // row-buffer policy after each access
	Sched  dram.SchedPolicy // request scheduling discipline

	// PonB enables the process-on-base-die baseline (paper Sec. VII-C1):
	// all bank traffic serializes through the vault's shared TSVs.
	PonB bool
}

// Default returns the paper's Table III configuration.
func Default() Config {
	return Config{
		Cubes: 8, VaultsPerCube: 16, PGsPerVault: 8, PEsPerPG: 4,
		InstQueue: 64, DRAMReqQueue: 16,
		SIMDLen:   4,
		BankBytes: 16 << 20, RowBytes: 2 << 10,
		AddrRFEntries: 64, DataRFEntries: 64, CtrlRFEntries: 64,
		PGSMBytes: 8 << 10, VSMBytes: 256 << 10,
		TAdd: 4, TMul: 5, TMac: 8, TLogic: 1,
		TAddrRF: 1, TDataRF: 1, TPGSM: 1, TVSM: 1,
		TPEBus: 1, TTSV: 1, TNoCHop: 1,
		TSERDESNum: 8, TSERDESDen: 100,
		SERDESLinkBytesPerCycle: 4,
		NoCLinkBytesPerCycle:    16,
		BranchPenalty:           2,
		ICacheLines:             256,
		ICacheLineInstr:         8,
		ICacheMissCost:          4,
		Timing:                  dram.DefaultTiming(),
		Page:                    dram.OpenPage,
		Sched:                   dram.FRFCFS,
	}
}

// TestTiny returns a small configuration (1 cube, 2 vaults, 2 PGs x 2
// PEs) for fast unit and integration tests.
func TestTiny() Config {
	c := Default()
	c.Cubes = 1
	c.VaultsPerCube = 2
	c.PGsPerVault = 2
	c.PEsPerPG = 2
	c.BankBytes = 1 << 20
	return c
}

// TestTinyOneVault returns a single-vault tiny configuration (1 vault,
// 2 PGs x 2 PEs) used to test halo-exchange pipelines, which require a
// single-vault machine (DESIGN.md §2).
func TestTinyOneVault() Config {
	c := TestTiny()
	c.VaultsPerCube = 1
	return c
}

// OneVault returns the representative-vault bench configuration: the
// full Table III vault (8 PGs x 4 PEs) in a single-vault machine.
// See DESIGN.md §2 for the symmetric-replication argument.
func OneVault() Config {
	c := Default()
	c.Cubes = 1
	c.VaultsPerCube = 1
	return c
}

// PEsPerVault returns the PE count of one vault (the SIMB width).
func (c *Config) PEsPerVault() int { return c.PGsPerVault * c.PEsPerPG }

// TotalPEs returns the machine-wide PE count.
func (c *Config) TotalPEs() int {
	return c.Cubes * c.VaultsPerCube * c.PEsPerVault()
}

// TotalVaults returns the machine-wide vault count.
func (c *Config) TotalVaults() int { return c.Cubes * c.VaultsPerCube }

// ALULatency maps an op-class latency: add/sub 4, mul 5, mac 8,
// logic/other 1 (Table III).
type ALUClass uint8

// The ALU classes, in Table III latency order.
const (
	ClassAdd   ALUClass = iota // add/sub/min/max/compare (4 cycles)
	ClassMul                   // mul/div (5 cycles)
	ClassMac                   // multiply-accumulate (8 cycles)
	ClassLogic                 // shifts, bitwise, moves, converts (1 cycle)
)

// LatencyOf returns the pipelined latency of an ALU class.
func (c *Config) LatencyOf(cl ALUClass) int {
	switch cl {
	case ClassAdd:
		return c.TAdd
	case ClassMul:
		return c.TMul
	case ClassMac:
		return c.TMac
	default:
		return c.TLogic
	}
}

// Validate checks the configuration for internal consistency.
func (c *Config) Validate() error {
	pos := func(v int, name string) error {
		if v <= 0 {
			return fmt.Errorf("sim: %s must be positive, got %d", name, v)
		}
		return nil
	}
	checks := []struct {
		v    int
		name string
	}{
		{c.Cubes, "Cubes"}, {c.VaultsPerCube, "VaultsPerCube"},
		{c.PGsPerVault, "PGsPerVault"}, {c.PEsPerPG, "PEsPerPG"},
		{c.InstQueue, "InstQueue"}, {c.DRAMReqQueue, "DRAMReqQueue"},
		{c.SIMDLen, "SIMDLen"}, {c.BankBytes, "BankBytes"},
		{c.RowBytes, "RowBytes"}, {c.AddrRFEntries, "AddrRFEntries"},
		{c.DataRFEntries, "DataRFEntries"}, {c.CtrlRFEntries, "CtrlRFEntries"},
		{c.PGSMBytes, "PGSMBytes"}, {c.VSMBytes, "VSMBytes"},
	}
	for _, ch := range checks {
		if err := pos(ch.v, ch.name); err != nil {
			return err
		}
	}
	if c.PEsPerVault() > 64 {
		return fmt.Errorf("sim: %d PEs per vault exceeds the 64-bit simb_mask", c.PEsPerVault())
	}
	if c.SIMDLen != 4 {
		return fmt.Errorf("sim: SIMDLen must be 4 (128-bit bank interface), got %d", c.SIMDLen)
	}
	if c.RowBytes > c.BankBytes {
		return fmt.Errorf("sim: RowBytes %d exceeds BankBytes %d", c.RowBytes, c.BankBytes)
	}
	if c.DataRFEntries < 8 {
		return fmt.Errorf("sim: DataRFEntries %d too small for compiler temporaries (min 8)", c.DataRFEntries)
	}
	return nil
}

// Geometry returns the DRAM geometry derived from the config.
func (c *Config) Geometry() dram.Geometry {
	return dram.Geometry{BankBytes: c.BankBytes, RowBytes: c.RowBytes}
}
