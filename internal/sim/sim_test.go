package sim

import (
	"testing"

	"ipim/internal/isa"
)

func TestDefaultConfigValid(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
	if c.PEsPerVault() != 32 {
		t.Errorf("PEsPerVault = %d, want 32", c.PEsPerVault())
	}
	if c.TotalPEs() != 8*16*32 {
		t.Errorf("TotalPEs = %d, want 4096", c.TotalPEs())
	}
	if c.TotalVaults() != 128 {
		t.Errorf("TotalVaults = %d", c.TotalVaults())
	}
}

func TestTinyAndOneVaultValid(t *testing.T) {
	for _, c := range []Config{TestTiny(), OneVault()} {
		if err := c.Validate(); err != nil {
			t.Errorf("config invalid: %v", err)
		}
	}
	tiny := TestTiny()
	if tiny.PEsPerVault() != 4 {
		t.Errorf("tiny PEsPerVault = %d, want 4", tiny.PEsPerVault())
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mod := func(f func(*Config)) Config {
		c := Default()
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Cubes = 0 }),
		mod(func(c *Config) { c.PEsPerPG = -1 }),
		mod(func(c *Config) { c.SIMDLen = 8 }),
		mod(func(c *Config) { c.PGsPerVault = 32 }), // 128 PEs > 64-bit mask
		mod(func(c *Config) { c.RowBytes = c.BankBytes * 2 }),
		mod(func(c *Config) { c.DataRFEntries = 4 }),
		mod(func(c *Config) { c.PGSMBytes = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLatencyOf(t *testing.T) {
	c := Default()
	if c.LatencyOf(ClassAdd) != 4 || c.LatencyOf(ClassMul) != 5 ||
		c.LatencyOf(ClassMac) != 8 || c.LatencyOf(ClassLogic) != 1 {
		t.Fatal("Table III ALU latencies wrong")
	}
}

func TestStatsIPCAndCategories(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC of empty stats must be 0")
	}
	s.Cycles = 100
	s.Issued = 63
	if s.IPC() != 0.63 {
		t.Errorf("IPC = %v", s.IPC())
	}
	s.InstByCategory[isa.CatComputation] = 30
	s.InstByCategory[isa.CatIndexCalc] = 10
	if s.TotalInstructions() != 40 {
		t.Errorf("TotalInstructions = %d", s.TotalInstructions())
	}
	if s.CategoryFraction(isa.CatIndexCalc) != 0.25 {
		t.Errorf("CategoryFraction = %v", s.CategoryFraction(isa.CatIndexCalc))
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Cycles: 100, Issued: 50}
	a.InstByCategory[isa.CatComputation] = 5
	a.DRAM.Reads = 7
	b := Stats{Cycles: 80, Issued: 40}
	b.InstByCategory[isa.CatComputation] = 3
	b.DRAM.Reads = 3
	b.NoC.MaxLatency = 12
	a.Add(&b)
	if a.Cycles != 100 { // wall clock = max of concurrent vaults
		t.Errorf("Cycles = %d, want 100", a.Cycles)
	}
	if a.Issued != 90 || a.InstByCategory[isa.CatComputation] != 8 || a.DRAM.Reads != 10 {
		t.Errorf("Add mis-accumulated: %+v", a)
	}
	if a.NoC.MaxLatency != 12 {
		t.Errorf("NoC.MaxLatency = %d", a.NoC.MaxLatency)
	}
}

func TestUtilization(t *testing.T) {
	var s Stats
	s.Cycles = 1000
	s.SIMDOps = 4000 // 4 PEs x 1000 cycles fully busy
	s.TSVBeats = 500
	u := s.Utilization(4)
	if u["simd"] != 1.0 {
		t.Errorf("simd util = %v, want 1", u["simd"])
	}
	if u["tsv"] != 0.5 {
		t.Errorf("tsv util = %v, want 0.5", u["tsv"])
	}
	if len(s.Utilization(0)) != 0 {
		t.Error("zero-PE utilization must be empty")
	}
}

func TestStallReasonStrings(t *testing.T) {
	for r := StallData; r < NumStallReasons; r++ {
		if r.String() == "stall(?)" {
			t.Errorf("stall reason %d has no name", r)
		}
	}
}
