package sim

// Checkpoint codec for Stats. Like Add/Sub, it discovers the int64
// leaves by reflection so a counter added to Stats (or the embedded
// dram/noc structs) can never be silently dropped from checkpoints —
// the encode and decode walks visit the same leaves in the same
// declaration order by construction. Unlike the fold walk, the codec
// includes the specially folded fields (Cycles, NoC.MaxLatency): a
// checkpoint is a verbatim image, not a fold.

import (
	"fmt"
	"reflect"

	"ipim/internal/ckpt"
)

// EncodeCkpt appends every int64 leaf of s to e in declaration order.
func (s *Stats) EncodeCkpt(e *ckpt.Enc) {
	walkAllInt64(reflect.ValueOf(s).Elem(), func(p *int64) { e.I64(*p) })
}

// DecodeCkpt reads every int64 leaf of s from d in declaration order,
// the exact inverse of EncodeCkpt. On a decoder error the partially
// written Stats must be discarded (callers decode into a scratch value
// and check d.Err before using it).
func (s *Stats) DecodeCkpt(d *ckpt.Dec) {
	walkAllInt64(reflect.ValueOf(s).Elem(), func(p *int64) { *p = d.I64() })
}

// walkAllInt64 invokes fn on every int64 leaf of v, recursing into
// arrays and embedded structs, in declaration order.
func walkAllInt64(v reflect.Value, fn func(*int64)) {
	switch v.Kind() {
	case reflect.Int64:
		fn(v.Addr().Interface().(*int64))
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			walkAllInt64(v.Index(i), fn)
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			walkAllInt64(v.Field(i), fn)
		}
	default:
		panic(fmt.Sprintf("sim: Stats checkpoint walk hit unhandled kind %s — teach walkAllInt64 about it", v.Kind()))
	}
}
