package sim

import (
	"reflect"
	"testing"
)

// statLeaves enumerates every int64 leaf of a Stats by dotted path
// (array elements share their field's path), independently of the
// walkValue implementation Add/Sub use, so these tests catch both a
// counter missing from the fold and a fold helper gone wrong.
func statLeaves(s *Stats) map[string][]*int64 {
	leaves := map[string][]*int64{}
	var walk func(v reflect.Value, path string)
	walk = func(v reflect.Value, path string) {
		switch v.Kind() {
		case reflect.Int64:
			leaves[path] = append(leaves[path], v.Addr().Interface().(*int64))
		case reflect.Array:
			for i := 0; i < v.Len(); i++ {
				walk(v.Index(i), path)
			}
		case reflect.Struct:
			t := v.Type()
			for i := 0; i < v.NumField(); i++ {
				p := t.Field(i).Name
				if path != "" {
					p = path + "." + p
				}
				walk(v.Field(i), p)
			}
		default:
			panic("stats fold test: unexpected field kind " + v.Kind().String() + " at " + path)
		}
	}
	walk(reflect.ValueOf(s).Elem(), "")
	return leaves
}

// fillDistinct sets every leaf to a distinct positive value and returns
// the assignment by path.
func fillDistinct(s *Stats, base int64) map[string][]int64 {
	vals := map[string][]int64{}
	n := base
	for path, ptrs := range statLeaves(s) {
		for _, p := range ptrs {
			n += 3
			*p = n
			vals[path] = append(vals[path], n)
		}
	}
	return vals
}

// TestStatsFoldCoversEveryField pins, field by field, that Add sums
// (or maxes) and Sub subtracts (or keeps) EVERY counter in Stats —
// including the embedded DRAM and NoC structs and both arrays. A new
// counter that Add/Sub fail to fold makes this fail immediately,
// because the expectation below is computed from the struct shape, not
// from a hand-maintained list.
func TestStatsFoldCoversEveryField(t *testing.T) {
	var src Stats
	fillDistinct(&src, 100)

	// Add into zero: every summed leaf must land exactly; the two
	// special fields are maxes, which over a zero destination also
	// equal the source.
	var sum Stats
	sum.Add(&src)
	if !reflect.DeepEqual(sum, src) {
		t.Fatalf("zero.Add(src) != src:\n got %+v\nwant %+v", sum, src)
	}

	// Add again: summed leaves double, max-semantics leaves stay.
	sum.Add(&src)
	srcLeaves := statLeaves(&src)
	for path, ptrs := range statLeaves(&sum) {
		for i, p := range ptrs {
			want := 2 * *srcLeaves[path][i]
			if path == "Cycles" || path == "NoC.MaxLatency" {
				want = *srcLeaves[path][i] // wall clock / watermark: max, not sum
			}
			if *p != want {
				t.Errorf("after double Add, %s = %d, want %d", path, *p, want)
			}
		}
	}

	// Sub of an identical snapshot zeroes every counter except the
	// MaxLatency watermark (kept) — Cycles *does* subtract.
	diff := src
	diff.Sub(&src)
	for path, ptrs := range statLeaves(&diff) {
		for i, p := range ptrs {
			var want int64
			if path == "NoC.MaxLatency" {
				want = *srcLeaves[path][i]
			}
			if *p != want {
				t.Errorf("after x.Sub(x), %s = %d, want %d", path, *p, want)
			}
		}
	}
}

// TestStatsAddCyclesIsMax pins the wall-clock semantics: vaults run
// concurrently, so aggregating two vaults' stats keeps the slower
// clock rather than summing.
func TestStatsAddCyclesIsMax(t *testing.T) {
	a := Stats{Cycles: 100}
	b := Stats{Cycles: 70}
	a.Add(&b)
	if a.Cycles != 100 {
		t.Errorf("Cycles = %d after adding a faster vault, want 100", a.Cycles)
	}
	b.Add(&a)
	if b.Cycles != 100 {
		t.Errorf("Cycles = %d after adding a slower vault, want 100", b.Cycles)
	}
}

// TestStatsIPC covers the IPC quotient including the zero-cycle guard.
func TestStatsIPC(t *testing.T) {
	var s Stats
	if got := s.IPC(); got != 0 {
		t.Errorf("IPC of empty stats = %v, want 0", got)
	}
	s.Cycles = 200
	s.Issued = 90
	if got := s.IPC(); got != 0.45 {
		t.Errorf("IPC = %v, want 0.45", got)
	}
}
