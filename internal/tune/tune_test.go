package tune

import (
	"testing"

	"ipim/internal/halide"
	"ipim/internal/sim"
)

func blurBuilder(c Candidate) *halide.Pipeline {
	blurx := halide.NewFunc("tx").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(-1, 0), halide.In(0, 0)), halide.In(1, 0)),
			halide.K(1.0/3)))
	out := halide.NewFunc("ty").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, -1), blurx.At(0, 0)), blurx.At(0, 1)),
			halide.K(1.0/3)))
	if c.LoadPGSM {
		out.LoadPGSM()
	}
	return halide.NewPipeline("tuneblur", out).IPIMTile(c.TileW, c.TileH)
}

func TestSearchRanksFeasibleCandidates(t *testing.T) {
	cfg := sim.TestTiny()
	results, err := Search(cfg, blurBuilder, 64, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultGrid()) {
		t.Fatalf("evaluated %d candidates", len(results))
	}
	best := results[0]
	if best.Err != nil || best.Cycles == 0 {
		t.Fatalf("best candidate invalid: %+v", best)
	}
	// Sorted: every feasible result no faster than the best.
	for _, r := range results[1:] {
		if r.Err == nil && r.Cycles < best.Cycles {
			t.Fatalf("ranking broken: %v (%d) beats best (%d)", r.Candidate, r.Cycles, best.Cycles)
		}
	}
	// The probe grid must contain both feasible and varied outcomes.
	var distinct = map[int64]bool{}
	for _, r := range results {
		if r.Err == nil {
			distinct[r.Cycles] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatal("all candidates identical: tuner measures nothing")
	}
}

func TestSearchReportsInfeasible(t *testing.T) {
	cfg := sim.TestTiny()
	// A tile too large for the tiny machine's tile distribution: tiles
	// not divisible across PEs.
	cands := []Candidate{{TileW: 32, TileH: 32, LoadPGSM: false}, {TileW: 8, TileH: 8}}
	results, err := Search(cfg, blurBuilder, 64, 32, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Feasible first, infeasible flagged.
	if results[0].Err != nil {
		t.Fatal("feasible candidate not ranked first")
	}
	found := false
	for _, r := range results {
		if r.Err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("infeasible candidate not reported")
	}
}

func TestSearchAllInfeasible(t *testing.T) {
	cfg := sim.TestTiny()
	cands := []Candidate{{TileW: 32, TileH: 32}}
	if _, err := Search(cfg, blurBuilder, 64, 32, cands); err == nil {
		t.Fatal("all-infeasible search succeeded")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{TileW: 8, TileH: 4, LoadPGSM: true}
	if c.String() != "tile 8x4 + load_pgsm" {
		t.Fatalf("String = %q", c.String())
	}
}
