// Package tune is a small schedule auto-tuner: it searches the iPIM
// schedule space (tile shape, PGSM staging) by compiling and
// cycle-simulating each candidate on a probe image, the empirical
// analogue of Halide's auto-scheduler for this backend.
package tune

import (
	"fmt"
	"sort"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// Candidate is one schedule point.
type Candidate struct {
	TileW, TileH int
	LoadPGSM     bool
}

func (c Candidate) String() string {
	s := fmt.Sprintf("tile %dx%d", c.TileW, c.TileH)
	if c.LoadPGSM {
		s += " + load_pgsm"
	}
	return s
}

// Builder constructs a pipeline for a candidate schedule.
type Builder func(c Candidate) *halide.Pipeline

// Result is one evaluated candidate.
type Result struct {
	Candidate Candidate
	Cycles    int64
	Energy    float64 // joules (0 if not computed)
	Err       error   // non-nil when the candidate is infeasible
}

// DefaultGrid returns the standard candidate grid.
func DefaultGrid() []Candidate {
	var out []Candidate
	for _, tw := range []int{8, 16} {
		for _, th := range []int{4, 8, 16} {
			for _, pgsm := range []bool{false, true} {
				out = append(out, Candidate{TileW: tw, TileH: th, LoadPGSM: pgsm})
			}
		}
	}
	return out
}

// Search evaluates every candidate on a probe image and returns the
// results sorted fastest-first (infeasible candidates last).
func Search(cfg sim.Config, build Builder, imgW, imgH int, cands []Candidate) ([]Result, error) {
	if len(cands) == 0 {
		cands = DefaultGrid()
	}
	img := pixel.Synth(imgW, imgH, 0x7E57)
	var results []Result
	for _, cand := range cands {
		r := Result{Candidate: cand}
		pipe := build(cand)
		art, err := compiler.Compile(&cfg, pipe, imgW, imgH, compiler.Opt)
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		m, err := cube.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := compiler.LoadInput(m, art, img); err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		stats, err := compiler.Execute(m, art)
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		// Guard against schedule-dependent miscompiles: the tuner only
		// ranks candidates whose output matches the reference.
		out, err := compiler.ReadOutput(m, art)
		if err != nil {
			r.Err = err
			results = append(results, r)
			continue
		}
		want, err := pipe.Reference(img)
		if err != nil {
			return nil, err
		}
		if pixel.MaxAbsDiff(out, want) != 0 {
			r.Err = fmt.Errorf("tune: candidate %s diverged from reference", cand)
			results = append(results, r)
			continue
		}
		r.Cycles = stats.Cycles
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool {
		if (results[i].Err == nil) != (results[j].Err == nil) {
			return results[i].Err == nil
		}
		return results[i].Cycles < results[j].Cycles
	})
	if results[0].Err != nil {
		return results, fmt.Errorf("tune: no feasible candidate")
	}
	return results, nil
}
