package host

import (
	"math"
	"sync"
	"testing"
)

func TestTransferNS(t *testing.T) {
	b := PCIe3x16()
	if b.TransferNS(0) != 0 {
		t.Error("zero bytes should cost nothing")
	}
	// 12 MB at 12 B/ns = 1 ms + latency.
	got := b.TransferNS(12 << 20)
	want := b.LatencyNS + float64(12<<20)/12.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("TransferNS = %v, want %v", got, want)
	}
	if PCIe5x16().TransferNS(1<<20) >= b.TransferNS(1<<20) {
		t.Error("PCIe 5.0 not faster than 3.0")
	}
}

func TestOffloadAccounting(t *testing.T) {
	b := PCIe3x16()
	o := Offload{InputBytes: 1 << 20, OutputBytes: 1 << 20, KernelNS: 1e6}
	total := o.TotalNS(b)
	if total <= o.KernelNS {
		t.Error("total must include transfers")
	}
	share := o.TransferShare(b)
	if share <= 0 || share >= 1 {
		t.Errorf("transfer share %v out of (0,1)", share)
	}
	// A kernel with zero transfer has share 0.
	free := Offload{KernelNS: 1e6}
	if free.TransferShare(b) != 0 {
		t.Error("transfer-free offload has nonzero share")
	}
}

func TestAmortization(t *testing.T) {
	b := PCIe3x16()
	o := Offload{InputBytes: 4 << 20, OutputBytes: 4 << 20, KernelNS: 1e5}
	one := o.Amortized(b, 1)
	if math.Abs(one-o.TotalNS(b)) > 1e-9 {
		t.Error("batch of 1 must equal TotalNS")
	}
	hundred := o.Amortized(b, 100)
	if hundred >= 100*one {
		t.Error("batching did not amortize transfers")
	}
	// Per-kernel cost approaches the kernel time as n grows.
	perKernel := hundred / 100
	if perKernel > 1.2*o.KernelNS+one/100 {
		t.Errorf("amortized per-kernel cost %v too high", perKernel)
	}
	if o.Amortized(b, 0) != one {
		t.Error("batch < 1 must clamp to 1")
	}
}

func TestMeterConcurrentRecords(t *testing.T) {
	m := NewMeter(PCIe3x16())
	if m.Bus().Name != PCIe3x16().Name {
		t.Fatal("meter lost its bus")
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if ns := m.Record(1<<10, 2<<10); ns <= 0 {
					t.Error("per-request transfer time must be positive")
				}
			}
		}()
	}
	wg.Wait()
	s := m.Snapshot()
	if s.Requests != workers*per {
		t.Errorf("Requests = %d, want %d", s.Requests, workers*per)
	}
	if s.BytesIn != workers*per*(1<<10) || s.BytesOut != workers*per*(2<<10) {
		t.Errorf("byte totals wrong: in=%d out=%d", s.BytesIn, s.BytesOut)
	}
	perReq := m.Bus().TransferNS(1<<10) + m.Bus().TransferNS(2<<10)
	want := float64(workers*per) * perReq
	if math.Abs(float64(s.TransferNS)-want) > float64(workers*per) {
		t.Errorf("TransferNS = %d, want ~%v", s.TransferNS, want)
	}
}
