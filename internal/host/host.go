// Package host models iPIM's system integration (paper Sec. VI): the
// accelerator is standalone, with its own address space, attached to the
// host over a standard bus (PCIe). The model accounts the host↔cube
// transfer time for inputs and outputs so end-to-end offload decisions
// ("is the kernel worth shipping to the accelerator?") can be evaluated
// — the overhead the paper's standalone design avoids is virtual-memory
// and coherence traffic, not the bulk transfers themselves.
package host

import "sync/atomic"

// Bus describes the host link.
type Bus struct {
	Name       string
	BytesPerNS float64 // sustained bandwidth in bytes per nanosecond
	LatencyNS  float64 // per-transfer setup latency
}

// PCIe3x16 is the paper's reference attachment (Sec. VI cites PCIe).
func PCIe3x16() Bus { return Bus{Name: "PCIe 3.0 x16", BytesPerNS: 12.0, LatencyNS: 1000} }

// PCIe5x16 is the faster bus the paper's citation list anticipates
// ("PCI-SIG fast tracks evolution to 32GT/s").
func PCIe5x16() Bus { return Bus{Name: "PCIe 5.0 x16", BytesPerNS: 48.0, LatencyNS: 800} }

// TransferNS returns the nanoseconds to move n bytes over the bus.
func (b Bus) TransferNS(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return b.LatencyNS + float64(n)/b.BytesPerNS
}

// Offload describes one kernel offload: input bytes down, output bytes
// back, and the accelerator's kernel time.
type Offload struct {
	InputBytes  int64
	OutputBytes int64
	KernelNS    float64
}

// TotalNS returns the end-to-end offload time on the given bus.
func (o Offload) TotalNS(b Bus) float64 {
	return b.TransferNS(o.InputBytes) + o.KernelNS + b.TransferNS(o.OutputBytes)
}

// TransferShare returns the fraction of end-to-end time spent on the
// bus. Kernels whose share approaches 1 are not worth offloading in
// isolation — they must be part of a resident pipeline (which is how
// the paper's datacenter scenario uses the accelerator: data loaded
// once, many kernels applied).
func (o Offload) TransferShare(b Bus) float64 {
	t := o.TotalNS(b)
	if t == 0 {
		return 0
	}
	return (t - o.KernelNS) / t
}

// Amortized returns the end-to-end time when n kernels run back to back
// on resident data (one transfer pair amortized over the batch).
func (o Offload) Amortized(b Bus, n int) float64 {
	if n < 1 {
		n = 1
	}
	return b.TransferNS(o.InputBytes) + float64(n)*o.KernelNS + b.TransferNS(o.OutputBytes)
}

// Meter accumulates per-request host↔accelerator transfer accounting
// for a serving process: each offloaded request records its input and
// output payload sizes, and the meter keeps running totals of bytes
// moved and simulated bus time. All methods are safe for concurrent
// use (the serving daemon records from many request goroutines).
type Meter struct {
	bus        Bus
	requests   atomic.Int64
	bytesIn    atomic.Int64
	bytesOut   atomic.Int64
	transferNS atomic.Int64 // accumulated simulated ns, rounded per request
}

// NewMeter returns a meter accounting transfers over the given bus.
func NewMeter(b Bus) *Meter { return &Meter{bus: b} }

// Bus returns the modeled host link.
func (m *Meter) Bus() Bus { return m.bus }

// Record accounts one request moving inBytes down to the accelerator
// and outBytes back, and returns that request's simulated transfer
// time in nanoseconds (two bus crossings, each paying setup latency).
func (m *Meter) Record(inBytes, outBytes int64) float64 {
	ns := m.bus.TransferNS(inBytes) + m.bus.TransferNS(outBytes)
	m.requests.Add(1)
	m.bytesIn.Add(inBytes)
	m.bytesOut.Add(outBytes)
	m.transferNS.Add(int64(ns + 0.5))
	return ns
}

// MeterSnapshot is a point-in-time copy of a meter's totals.
type MeterSnapshot struct {
	Requests   int64
	BytesIn    int64
	BytesOut   int64
	TransferNS int64
}

// Snapshot returns the current totals. The fields are read
// individually, so a snapshot taken during concurrent Records is a
// consistent-enough view for metrics export, not a linearizable one.
func (m *Meter) Snapshot() MeterSnapshot {
	return MeterSnapshot{
		Requests:   m.requests.Load(),
		BytesIn:    m.bytesIn.Load(),
		BytesOut:   m.bytesOut.Load(),
		TransferNS: m.transferNS.Load(),
	}
}
