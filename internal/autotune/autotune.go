// Package autotune is the iPIM schedule auto-tuner: a parallel,
// deterministic search over the schedule space — ipim_tile shape, PGSM
// staging, and the DRAM page/scheduling policies — that compiles and
// cycle-simulates each candidate on a probe image, the empirical
// analogue of a production Halide auto-scheduler for this backend.
//
// The package has three layers:
//
//   - a search Engine that evaluates candidates on a pool of reused
//     machines (one reset machine per worker, never a fresh cube.New
//     per candidate) with results that are bit-identical at any worker
//     count for a fixed seed and strategy — the PR 2 determinism
//     contract extended to tuning;
//   - pluggable search strategies behind one Strategy interface
//     (exhaustive Grid, batched HillClimb);
//   - a persistent, versioned results Store — an append-only JSONL
//     journal with an in-memory index keyed by (pipeline fingerprint,
//     image shape, config digest), crash-safe via temp-file+rename
//     compaction.
//
// internal/serve builds on all three to upgrade cached artifacts
// lazily: unknown keys are served with the default schedule immediately
// while a background job searches, records, and swaps in the winner.
package autotune

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/dram"
	"ipim/internal/halide"
	"ipim/internal/sim"
)

// DefaultProbeSeed seeds the synthetic probe image when a Problem does
// not choose its own seed (the historical internal/tune constant).
const DefaultProbeSeed = 0x7E57

// Candidate is one point of the schedule space: the paper's two
// schedule primitives plus the two DRAM policy knobs of Table III.
type Candidate struct {
	// TileW, TileH select the ipim_tile(x, y, xi, yi, W, H) shape.
	TileW int `json:"tile_w"`
	TileH int `json:"tile_h"`
	// LoadPGSM stages inputs through the process-group scratchpad
	// (applied uniformly to every materialized stage).
	LoadPGSM bool `json:"load_pgsm"`
	// MultiArray selects the multi-array stage-ahead schedule: PGSM
	// staging for a PE's next tile is double-buffered and overlapped
	// with the current tile's compute across the vault's PE arrays.
	// Only effective with LoadPGSM staging and >1 tile per PE; the
	// planner falls back to the baseline list schedule otherwise.
	MultiArray bool `json:"multi_array,omitempty"`
	// Page and Sched select the DRAM row-buffer and request-scheduling
	// policies. Both steer timing only, never data, so any candidate's
	// pixel output is bit-identical to the default schedule's.
	Page  dram.PagePolicy  `json:"page"`
	Sched dram.SchedPolicy `json:"sched"`
}

func (c Candidate) String() string {
	s := fmt.Sprintf("tile %dx%d", c.TileW, c.TileH)
	if c.LoadPGSM {
		s += " + load_pgsm"
	}
	if c.MultiArray {
		s += " + multi_array"
	}
	if c.Page != dram.OpenPage {
		s += " + close-page"
	}
	if c.Sched != dram.FRFCFS {
		s += " + fcfs"
	}
	return s
}

// Space bounds the candidate grid: the cross product of the listed
// values in each dimension. Grid order (and therefore result ranking
// tie-breaks) is deterministic: tile width outermost, then tile height,
// PGSM, multi-array, page policy, scheduling policy.
type Space struct {
	TileW, TileH []int
	PGSM         []bool
	MultiArray   []bool
	Pages        []dram.PagePolicy
	Scheds       []dram.SchedPolicy
}

// DefaultSpace returns the standard search space: the historical tile
// grid enlarged with both DRAM page and scheduling policies.
func DefaultSpace() Space {
	return Space{
		TileW:      []int{8, 16},
		TileH:      []int{4, 8, 16},
		PGSM:       []bool{false, true},
		MultiArray: []bool{false, true},
		Pages:      []dram.PagePolicy{dram.OpenPage, dram.ClosePage},
		Scheds:     []dram.SchedPolicy{dram.FRFCFS, dram.FCFS},
	}
}

// FixPolicies restricts the space's DRAM dimensions to one setting
// (e.g. a serving daemon that must match its machine configuration can
// still tune tile shape and staging).
func (s Space) FixPolicies(page dram.PagePolicy, sched dram.SchedPolicy) Space {
	s.Pages = []dram.PagePolicy{page}
	s.Scheds = []dram.SchedPolicy{sched}
	return s
}

// Grid expands the space into the full candidate list in canonical
// order.
func (s Space) Grid() []Candidate {
	out := make([]Candidate, 0, s.Size())
	for _, tw := range s.TileW {
		for _, th := range s.TileH {
			for _, pgsm := range s.PGSM {
				for _, ma := range s.multiArray() {
					for _, page := range s.Pages {
						for _, sched := range s.Scheds {
							out = append(out, Candidate{
								TileW: tw, TileH: th, LoadPGSM: pgsm, MultiArray: ma,
								Page: page, Sched: sched,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// multiArray returns the multi-array dimension, defaulting to baseline
// only so spaces predating the knob keep their exact historical grid.
func (s Space) multiArray() []bool {
	if len(s.MultiArray) == 0 {
		return []bool{false}
	}
	return s.MultiArray
}

// Size returns the candidate count of the full grid.
func (s Space) Size() int {
	return len(s.TileW) * len(s.TileH) * len(s.PGSM) * len(s.multiArray()) * len(s.Pages) * len(s.Scheds)
}

// Apply imposes a candidate schedule on a freshly built pipeline:
// re-tiles it and sets PGSM staging on every materialized stage. The
// pipeline is mutated and returned. Schedules never change a pipeline's
// semantics, only how it maps onto the machine; the engine additionally
// verifies every candidate's output against the golden reference before
// ranking it.
func Apply(p *halide.Pipeline, c Candidate) *halide.Pipeline {
	p.IPIMTile(c.TileW, c.TileH)
	p.MultiArraySchedule(c.MultiArray)
	if stages, err := p.Stages(); err == nil {
		for _, st := range stages {
			st.SetLoadPGSM(c.LoadPGSM)
		}
	}
	return p
}

// Builder constructs a fresh pipeline with a candidate schedule
// applied. It must build from scratch on every call: pipelines carry
// schedule state.
type Builder func(c Candidate) *halide.Pipeline

// Problem is one tuning task: the machine, the pipeline family, and the
// probe geometry.
type Problem struct {
	// Cfg is the base machine configuration. Its Page/Sched policies
	// define the default candidate; each evaluated candidate overrides
	// them.
	Cfg sim.Config
	// Opts selects the compiler backend configuration (set explicitly;
	// PipelineProblem uses compiler.Opt).
	Opts compiler.Options
	// Build constructs the pipeline for one candidate.
	Build Builder
	// Default, when non-nil, builds the unmodified-schedule pipeline:
	// the baseline an improvement margin is measured against (what a
	// serving daemon ships before tuning lands).
	Default func() *halide.Pipeline
	// W, H is the probe image geometry (and, for a serving daemon, the
	// request geometry being tuned for).
	W, H int
	// Seed seeds the synthetic probe image; 0 means DefaultProbeSeed.
	Seed uint64
	// Label is an optional human-readable tag recorded in the results
	// database (e.g. the workload name).
	Label string
}

// PipelineProblem adapts a schedule-free pipeline builder into a
// Problem: candidates re-tile the built pipeline and toggle PGSM
// staging uniformly (see Apply), with the unmodified build as the
// default baseline.
func PipelineProblem(cfg sim.Config, build func() *halide.Pipeline, w, h int) Problem {
	return Problem{
		Cfg:     cfg,
		Opts:    compiler.Opt,
		Build:   func(c Candidate) *halide.Pipeline { return Apply(build(), c) },
		Default: build,
		W:       w,
		H:       h,
	}
}

// Result is one evaluated candidate.
type Result struct {
	Candidate Candidate `json:"candidate"`
	// Cycles is the simulated cycle count (0 when infeasible).
	Cycles int64 `json:"cycles"`
	// Err is non-nil when the candidate is infeasible on this machine
	// (compile failure, budget exhaustion, or output divergence).
	Err error `json:"-"`
}

// Feasible reports whether the candidate compiled, ran within budget,
// and matched the golden reference.
func (r Result) Feasible() bool { return r.Err == nil }

// Report is the outcome of one search.
type Report struct {
	// Results holds every evaluated candidate ranked fastest-first,
	// infeasible candidates last (ties broken by evaluation order, so
	// the ranking is deterministic).
	Results []Result
	// Default is the unmodified-schedule baseline (zero value when the
	// problem declared no Default builder).
	Default Result
	// Evaluated counts evaluated candidates (excluding the baseline).
	Evaluated int
	// Strategy names the strategy that drove the search.
	Strategy string
}

// Best returns the winning result. Only valid when the search returned
// no error (at least one feasible candidate).
func (r *Report) Best() Result { return r.Results[0] }

// Improvement returns DefaultCycles/BestCycles — how many times faster
// the winner is than the baseline — or 0 when either is unknown.
func (r *Report) Improvement() float64 {
	if len(r.Results) == 0 || !r.Results[0].Feasible() || !r.Default.Feasible() || r.Default.Cycles == 0 || r.Results[0].Cycles == 0 {
		return 0
	}
	return float64(r.Default.Cycles) / float64(r.Results[0].Cycles)
}
