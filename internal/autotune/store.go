package autotune

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ipim/internal/compiler"
	"ipim/internal/halide"
	"ipim/internal/sim"
)

// SchemaVersion is the journal record schema. Loading a journal written
// at any other version is rejected (delete or migrate the file); bump
// it whenever Record or Candidate changes incompatibly.
const SchemaVersion = 1

// Key identifies one tuning result: what algorithm, at what geometry,
// on what machine. See compiler.PipelineFingerprint / ConfigDigest for
// what each digest covers (schedules and the tuned DRAM policies are
// deliberately excluded — they are the payload, not the key).
type Key struct {
	// Pipeline is the schedule-independent algorithm fingerprint.
	Pipeline uint64 `json:"pipeline"`
	// W, H is the image geometry the schedule was tuned for.
	W int `json:"w"`
	H int `json:"h"`
	// Config digests the machine configuration and compiler options.
	Config uint64 `json:"config"`
}

// KeyFor computes the store key for tuning pipe with opts on cfg at
// w×h.
func KeyFor(cfg *sim.Config, opts compiler.Options, pipe *halide.Pipeline, w, h int) Key {
	return Key{
		Pipeline: compiler.PipelineFingerprint(pipe),
		W:        w,
		H:        h,
		Config:   compiler.ConfigDigest(cfg, opts),
	}
}

// Record is one journal entry: the winning schedule for a key, plus
// enough context to audit where it came from. Later records for the
// same key supersede earlier ones.
type Record struct {
	Schema int `json:"schema"`
	Key    Key `json:"key"`
	// Label is a human hint (typically the workload name); it carries
	// no identity — the Key does.
	Label    string `json:"label,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	// Best is the winning candidate and BestCycles its probe cost;
	// DefaultCycles is the unmodified-schedule baseline on the same
	// probe (0 when no baseline was measured).
	Best          Candidate `json:"best"`
	BestCycles    int64     `json:"best_cycles"`
	DefaultCycles int64     `json:"default_cycles,omitempty"`
	// Evaluated counts candidates the search measured.
	Evaluated int `json:"evaluated,omitempty"`
	// UpdatedUnix is the caller-stamped write time (seconds).
	UpdatedUnix int64 `json:"updated_unix,omitempty"`
}

// Improvement returns DefaultCycles/BestCycles, or 0 when unknown.
func (r Record) Improvement() float64 {
	if r.BestCycles <= 0 || r.DefaultCycles <= 0 {
		return 0
	}
	return float64(r.DefaultCycles) / float64(r.BestCycles)
}

// Store is the persistent tuning-results database: an append-only JSONL
// journal with an in-memory index. All methods are safe for concurrent
// use. A Store opened with an empty path is memory-only (the serving
// daemon's default); with a path, every Put appends one line and
// Compact rewrites the journal to one line per live key via
// temp-file+rename, so a crash at any point leaves either the old or
// the new journal — never a mix.
//
// Load-time recovery: a torn trailing line (crash mid-append) is
// discarded and the file truncated back to the last intact record;
// corruption anywhere earlier, or any record with a foreign schema
// version, rejects the journal with an error instead of guessing.
type Store struct {
	mu    sync.Mutex
	path  string
	f     *os.File
	index map[Key]Record
	puts  int64 // appends since open (journal growth signal)
}

// OpenStore opens (or creates) the journal at path and replays it into
// the index. An empty path yields a memory-only store.
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, index: map[Key]Record{}}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("autotune: open store: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("autotune: read store: %w", err)
	}
	good, err := s.replay(data)
	if err != nil {
		f.Close()
		return nil, err
	}
	if good < int64(len(data)) {
		// Torn tail from a crashed append: cut it off so future appends
		// start on a clean line boundary.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("autotune: truncate torn journal: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("autotune: seek store: %w", err)
	}
	s.f = f
	return s, nil
}

// replay parses the journal, filling the index, and returns the byte
// offset just past the last intact record. Corruption is tolerated only
// at the tail (a torn final write); anything earlier is an error.
func (s *Store) replay(data []byte) (int64, error) {
	var good int64
	line := 0
	for off := 0; off < len(data); {
		line++
		end := bytes.IndexByte(data[off:], '\n')
		if end < 0 {
			// Unterminated tail: recoverable torn write.
			return good, nil
		}
		raw := data[off : off+end]
		next := int64(off + end + 1)
		if len(bytes.TrimSpace(raw)) == 0 {
			off = int(next)
			good = next
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A corrupt line followed by more data is real corruption;
			// corrupt at the very tail is a torn write we can drop.
			if next >= int64(len(data)) {
				return good, nil
			}
			return 0, fmt.Errorf("autotune: store %s: corrupt record on line %d: %v", s.path, line, err)
		}
		if rec.Schema != SchemaVersion {
			return 0, fmt.Errorf("autotune: store %s: line %d has schema %d, want %d (migrate or delete the journal)",
				s.path, line, rec.Schema, SchemaVersion)
		}
		s.index[rec.Key] = rec
		off = int(next)
		good = next
	}
	return good, nil
}

// Put records rec (stamping the schema version), superseding any
// earlier record for the same key, and appends it to the journal.
func (s *Store) Put(rec Record) error {
	rec.Schema = SchemaVersion
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index[rec.Key] = rec
	s.puts++
	if s.f == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("autotune: encode record: %w", err)
	}
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("autotune: append record: %w", err)
	}
	return nil
}

// Get returns the live record for key.
func (s *Store) Get(key Key) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[key]
	return rec, ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Snapshot returns every live record in deterministic key order.
func (s *Store) Snapshot() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Pipeline != b.Pipeline {
			return a.Pipeline < b.Pipeline
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.H < b.H
	})
	return out
}

// Compact rewrites the journal to one line per live key. The new
// journal is staged as a temp file in the same directory and renamed
// over the old one, so readers and a crash see either version, never a
// partial write. A memory-only store compacts trivially.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(s.path)+".compact-*")
	if err != nil {
		return fmt.Errorf("autotune: compact: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	// Deterministic order keeps compacted journals diffable.
	recs := make([]Record, 0, len(s.index))
	for _, rec := range s.index {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Key, recs[j].Key
		if a.Pipeline != b.Pipeline {
			return a.Pipeline < b.Pipeline
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.H < b.H
	})
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("autotune: compact encode: %w", err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("autotune: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("autotune: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("autotune: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("autotune: compact rename: %w", err)
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("autotune: reopen compacted store: %w", err)
	}
	old.Close()
	s.f = f
	s.puts = 0
	return nil
}

// Close compacts a journal that accumulated superseded lines and
// releases the file handle. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	needCompact := s.f != nil && s.puts > int64(len(s.index))
	s.mu.Unlock()
	if needCompact {
		if err := s.Compact(); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
