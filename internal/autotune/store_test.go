package autotune

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ipim/internal/dram"
)

func testRecord(pipeline uint64, cycles int64) Record {
	return Record{
		Key:        Key{Pipeline: pipeline, W: 64, H: 32, Config: 7},
		Label:      "blur",
		Strategy:   "grid",
		Best:       Candidate{TileW: 8, TileH: 8, Sched: dram.FCFS},
		BestCycles: cycles,
	}
}

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			n++
		}
	}
	return n
}

func TestStoreRoundTrip(t *testing.T) {
	s, path := openTemp(t)
	for i := uint64(1); i <= 3; i++ {
		if err := s.Put(testRecord(i, int64(100*i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reloaded %d keys, want 3", s2.Len())
	}
	rec, ok := s2.Get(Key{Pipeline: 2, W: 64, H: 32, Config: 7})
	if !ok || rec.BestCycles != 200 || rec.Best.Sched != dram.FCFS {
		t.Fatalf("round-trip lost data: %+v (ok=%v)", rec, ok)
	}
	if rec.Schema != SchemaVersion {
		t.Fatalf("schema not stamped: %d", rec.Schema)
	}
}

func TestStoreSupersedeAndCompact(t *testing.T) {
	s, path := openTemp(t)
	for cycles := int64(300); cycles >= 100; cycles -= 100 {
		if err := s.Put(testRecord(1, cycles)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (supersede)", s.Len())
	}
	if got := countLines(t, path); got != 3 {
		t.Fatalf("journal has %d lines before compaction, want 3", got)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := countLines(t, path); got != 1 {
		t.Fatalf("journal has %d lines after compaction, want 1", got)
	}
	// The store stays appendable after the rename swap.
	if err := s.Put(testRecord(9, 900)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("post-compaction reload has %d keys, want 2", s2.Len())
	}
	if rec, _ := s2.Get(Key{Pipeline: 1, W: 64, H: 32, Config: 7}); rec.BestCycles != 100 {
		t.Fatalf("compaction kept cycles=%d, want the latest (100)", rec.BestCycles)
	}
}

func TestStoreCloseCompactsGrownJournal(t *testing.T) {
	s, path := openTemp(t)
	for i := 0; i < 5; i++ {
		if err := s.Put(testRecord(1, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := countLines(t, path); got != 1 {
		t.Fatalf("Close left %d journal lines, want 1", got)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Put(testRecord(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		tail string
	}{
		{"unterminated", `{"schema":1,"key":{"pi`},
		{"terminated-garbage", "not json at all\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte(nil), intact...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenStore(path)
			if err != nil {
				t.Fatalf("torn tail not recovered: %v", err)
			}
			if s2.Len() != 1 {
				t.Fatalf("recovered %d keys, want 1", s2.Len())
			}
			// The torn bytes were truncated away and appends land cleanly.
			if err := s2.Put(testRecord(2, 200)); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3, err := OpenStore(path)
			if err != nil {
				t.Fatal(err)
			}
			if s3.Len() != 2 {
				t.Fatalf("post-recovery journal has %d keys, want 2", s3.Len())
			}
			s3.Close()
			// Reset the journal for the next subtest.
			if err := os.WriteFile(path, intact, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreRejectsMidFileCorruption(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Put(testRecord(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte("garbage line\n"), intact...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("err = %v, want corruption diagnosis", err)
	}
}

func TestStoreRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	rec := testRecord(1, 100)
	rec.Schema = 99
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenStore(path)
	if err == nil {
		t.Fatal("foreign schema accepted")
	}
	if !strings.Contains(err.Error(), "schema 99") {
		t.Fatalf("err = %v, want schema diagnosis", err)
	}
}

// TestStoreConcurrency exercises Put/Get/Snapshot races; run under
// -race (scripts/ci.sh does).
func TestStoreConcurrency(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	const writers, perWriter = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Put(testRecord(uint64(w*perWriter+i+1), int64(i+1))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Get(Key{Pipeline: 1, W: 64, H: 32, Config: 7})
				s.Snapshot()
				s.Len()
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*perWriter)
	}
}

func TestStoreSnapshotDeterministic(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	for _, pipeline := range []uint64{5, 1, 9, 3} {
		if err := s.Put(testRecord(pipeline, 100)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d records, want 4", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Key.Pipeline >= snap[i].Key.Pipeline {
			t.Fatalf("snapshot unsorted at %d: %v", i, snap)
		}
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(Key{Pipeline: 1, W: 64, H: 32, Config: 7}); !ok {
		t.Fatal("memory-only store lost the record")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordImprovement(t *testing.T) {
	r := Record{BestCycles: 100, DefaultCycles: 150}
	if got := r.Improvement(); got != 1.5 {
		t.Fatalf("Improvement = %v, want 1.5", got)
	}
	if got := (Record{BestCycles: 100}).Improvement(); got != 0 {
		t.Fatalf("Improvement without baseline = %v, want 0", got)
	}
}

func TestOpenStoreCreatesMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.jsonl")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("fresh store has %d keys", s.Len())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}

// ExampleStore shows the offline-tune / online-serve handshake: one
// process records a winner, another looks it up by key.
func ExampleStore() {
	path := filepath.Join(os.TempDir(), "ipim-tune-example.jsonl")
	defer os.Remove(path)
	s, _ := OpenStore(path)
	_ = s.Put(Record{
		Key:        Key{Pipeline: 42, W: 64, H: 32, Config: 7},
		Best:       Candidate{TileW: 8, TileH: 8},
		BestCycles: 831,
	})
	s.Close()

	s2, _ := OpenStore(path)
	defer s2.Close()
	rec, ok := s2.Get(Key{Pipeline: 42, W: 64, H: 32, Config: 7})
	fmt.Println(ok, rec.Best.TileW, rec.BestCycles)
	// Output: true 8 831
}
