package autotune

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// Engine evaluates candidate schedules on a pool of reused machines.
// The zero value is usable (one worker, no budget). An Engine may run
// many Searches sequentially; its machines are rebuilt per Search (the
// machine shape follows the Problem's config) but reused across every
// candidate within one, which is what makes a 48-point grid cost 48
// simulated runs instead of 48 machine constructions plus runs.
type Engine struct {
	// Workers is the number of parallel evaluation workers; each owns
	// one machine for the duration of a Search (<1 means 1). Results
	// are bit-identical at any setting.
	Workers int
	// MaxCycles caps each candidate's simulated run (RunOptions
	// semantics); a candidate that exhausts it is recorded infeasible.
	// 0 disables the budget.
	MaxCycles int64
}

// Search runs a strategy over a problem and returns the ranked report.
// The search is deterministic for a fixed problem seed and strategy at
// any Workers setting. ctx cancels it between and during candidate
// runs (the engine threads ctx into the simulator). An error is
// returned when the search produced no feasible candidate, when the
// baseline could not be evaluated, or when ctx expired.
func (e *Engine) Search(ctx context.Context, p Problem, strat Strategy) (*Report, error) {
	if p.Build == nil {
		return nil, fmt.Errorf("autotune: problem has no builder")
	}
	if p.W <= 0 || p.H <= 0 {
		return nil, fmt.Errorf("autotune: bad probe geometry %dx%d", p.W, p.H)
	}
	if err := p.Cfg.Validate(); err != nil {
		return nil, err
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	seed := p.Seed
	if seed == 0 {
		seed = DefaultProbeSeed
	}
	img := pixel.Synth(p.W, p.H, seed)

	// The golden reference is schedule-independent: compute it once
	// from the baseline pipeline (or the first candidate's).
	refPipe := func() *halide.Pipeline {
		if p.Default != nil {
			return p.Default()
		}
		return p.Build(Candidate{TileW: 8, TileH: 8, Page: p.Cfg.Page, Sched: p.Cfg.Sched})
	}()
	if refPipe.Histogram {
		return nil, fmt.Errorf("autotune: histogram pipelines are not tunable (no image reference)")
	}
	ref, err := refPipe.Reference(img)
	if err != nil {
		return nil, fmt.Errorf("autotune: reference evaluation: %w", err)
	}

	// One reset machine per worker, reused for every candidate.
	machines := make([]*cube.Machine, workers)
	for i := range machines {
		m, err := cube.New(p.Cfg)
		if err != nil {
			return nil, fmt.Errorf("autotune: build worker machine %d: %w", i, err)
		}
		machines[i] = m
	}

	report := &Report{Strategy: strat.Name()}
	if p.Default != nil {
		base := Candidate{TileW: refPipe.TileW, TileH: refPipe.TileH,
			Page: p.Cfg.Page, Sched: p.Cfg.Sched}
		report.Default = e.eval(ctx, machines[0], p, p.Default(), base, img, ref)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if report.Default.Err != nil {
			return nil, fmt.Errorf("autotune: default schedule infeasible: %w", report.Default.Err)
		}
	}

	var all []Result
	for {
		batch := strat.Next(all)
		if len(batch) == 0 {
			break
		}
		results := make([]Result, len(batch))
		var next atomic.Int64
		nw := workers
		if nw > len(batch) {
			nw = len(batch)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(m *cube.Machine) {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= len(batch) {
						return
					}
					c := batch[i]
					results[i] = e.eval(ctx, m, p, p.Build(c), c, img, ref)
				}
			}(machines[w])
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		all = append(all, results...)
	}

	report.Evaluated = len(all)
	report.Results = rank(all)
	if len(report.Results) == 0 || report.Results[0].Err != nil {
		return report, fmt.Errorf("autotune: no feasible candidate")
	}
	return report, nil
}

// eval compiles and runs one candidate pipeline on a pooled machine,
// verifying the output against the golden reference before accepting
// the cycle count.
func (e *Engine) eval(ctx context.Context, m *cube.Machine, p Problem, pipe *halide.Pipeline, c Candidate, img, ref *pixel.Image) Result {
	r := Result{Candidate: c}
	cfg := p.Cfg
	cfg.Page, cfg.Sched = c.Page, c.Sched
	art, err := compiler.Compile(&cfg, pipe, p.W, p.H, p.Opts)
	if err != nil {
		r.Err = err
		return r
	}
	// Functional pre-screen: run the candidate once in FunctionalMode —
	// several times cheaper than a timed run — and verify its output
	// against the golden reference before paying for cycle-accurate
	// simulation. Schedule-dependent miscompiles are rejected here
	// without ever advancing a DRAM clock; functional and cycle outputs
	// are bit-identical by construction, so the timed run below needs no
	// second verification.
	m.Reset()
	m.SetDRAMPolicy(c.Page, c.Sched)
	m.SetBudget(sim.RunOptions{Mode: sim.FunctionalMode})
	if err := compiler.LoadInput(m, art, img); err != nil {
		r.Err = err
		return r
	}
	if _, err := compiler.ExecuteContext(ctx, m, art); err != nil {
		r.Err = err
		return r
	}
	out, err := compiler.ReadOutput(m, art)
	if err != nil {
		r.Err = err
		return r
	}
	if pixel.MaxAbsDiff(out, ref) != 0 {
		r.Err = fmt.Errorf("autotune: candidate %s diverged from reference", c)
		return r
	}
	// Reset rewinds the machine's timing state to fresh-out-of-New, so
	// a candidate's measurement is independent of which candidates this
	// worker evaluated before it (and of the pre-screen above) — a
	// precondition for worker-count determinism.
	m.Reset()
	m.SetDRAMPolicy(c.Page, c.Sched)
	m.SetBudget(sim.RunOptions{MaxCycles: e.MaxCycles})
	if err := compiler.LoadInput(m, art, img); err != nil {
		r.Err = err
		return r
	}
	stats, err := compiler.ExecuteContext(ctx, m, art)
	if err != nil {
		r.Err = err
		return r
	}
	r.Cycles = stats.Cycles
	return r
}

// rank sorts results fastest-first with infeasible candidates last;
// ties keep evaluation order (sort stability), so the ranking is a
// pure function of the result list.
func rank(all []Result) []Result {
	ranked := append([]Result(nil), all...)
	sort.SliceStable(ranked, func(i, j int) bool {
		fi, fj := ranked[i].Feasible(), ranked[j].Feasible()
		if fi != fj {
			return fi
		}
		if !fi {
			return false
		}
		return ranked[i].Cycles < ranked[j].Cycles
	})
	return ranked
}
