package autotune

import "fmt"

// Strategy proposes candidate batches. The engine evaluates one batch
// (in parallel, in deterministic order), feeds every result obtained so
// far back in, and asks for the next; an empty batch ends the search.
// Because Next sees only the accumulated result list — never the
// evaluation timing — a strategy is deterministic at any worker count
// by construction. Strategies carry iteration state and are single-use:
// build a fresh one per Search.
type Strategy interface {
	// Name identifies the strategy in reports and the results store.
	Name() string
	// Next proposes the next batch given all results so far, in
	// evaluation order. Returning an empty batch ends the search.
	Next(evaluated []Result) []Candidate
}

// StrategyNames lists the strategies NewStrategy accepts, in display
// order.
func StrategyNames() []string { return []string{"grid", "hill"} }

// NewStrategy builds a named strategy over a space. seed drives any
// stochastic choices (hill-climb restart points); the same seed always
// yields the same search.
func NewStrategy(name string, space Space, seed uint64) (Strategy, error) {
	switch name {
	case "grid":
		return NewGrid(space), nil
	case "hill":
		return NewHillClimb(space, seed), nil
	}
	return nil, fmt.Errorf("autotune: unknown strategy %q (valid: grid, hill)", name)
}

// Grid is the exhaustive strategy: one batch holding the whole space.
type Grid struct {
	space Space
	done  bool
}

// NewGrid builds the exhaustive strategy.
func NewGrid(space Space) *Grid { return &Grid{space: space} }

// Name implements Strategy.
func (g *Grid) Name() string { return "grid" }

// Next implements Strategy: the full grid once, then done.
func (g *Grid) Next([]Result) []Candidate {
	if g.done {
		return nil
	}
	g.done = true
	return g.space.Grid()
}

// HillClimb is a batched local search: a seeded set of start points,
// then rounds that expand the unvisited single-dimension neighbors of
// the best feasible candidate found so far, stopping when a round stops
// improving (or the round budget runs out). It evaluates a fraction of
// the grid on large spaces while finding the same winners on the small
// ones (the determinism tests pin both properties).
type HillClimb struct {
	space Space
	seed  uint64

	// MaxRounds bounds the neighbor-expansion rounds (default 8).
	MaxRounds int
	// Starts is the number of seeded start points (default 3, clamped
	// to the space size).
	Starts int

	round     int
	visited   map[Candidate]bool
	lastBest  Candidate
	havePrior bool
}

// NewHillClimb builds the hill-climb strategy; seed picks the start
// points.
func NewHillClimb(space Space, seed uint64) *HillClimb {
	return &HillClimb{space: space, seed: seed, MaxRounds: 8, Starts: 3,
		visited: map[Candidate]bool{}}
}

// Name implements Strategy.
func (h *HillClimb) Name() string { return "hill" }

// Next implements Strategy.
func (h *HillClimb) Next(evaluated []Result) []Candidate {
	grid := h.space.Grid()
	if len(grid) == 0 {
		return nil
	}
	if h.round == 0 {
		h.round++
		return h.startBatch(grid)
	}
	if h.round > h.MaxRounds {
		return nil
	}
	best, ok := bestFeasible(evaluated)
	if !ok {
		// Nothing feasible among the starts: fall back to the full grid
		// so the search degrades to exhaustive rather than giving up.
		h.round = h.MaxRounds + 1
		return h.unvisited(grid)
	}
	if h.havePrior && best == h.lastBest {
		return nil // converged: the last round did not improve
	}
	h.lastBest, h.havePrior = best, true
	h.round++
	return h.neighbors(best)
}

// startBatch picks the seeded start points: the canonical first grid
// candidate plus Starts-1 pseudo-random draws.
func (h *HillClimb) startBatch(grid []Candidate) []Candidate {
	n := h.Starts
	if n < 1 {
		n = 1
	}
	if n > len(grid) {
		n = len(grid)
	}
	batch := []Candidate{grid[0]}
	h.visited[grid[0]] = true
	rng := h.seed
	for len(batch) < n {
		rng = splitmix64(rng)
		c := grid[rng%uint64(len(grid))]
		if !h.visited[c] {
			h.visited[c] = true
			batch = append(batch, c)
		} else {
			// Collided with a visited point: walk forward to the next
			// unvisited grid slot (deterministic, always terminates
			// because n <= len(grid)).
			for i := range grid {
				if !h.visited[grid[i]] {
					h.visited[grid[i]] = true
					batch = append(batch, grid[i])
					break
				}
			}
		}
	}
	return batch
}

// neighbors returns the unvisited candidates that differ from c in
// exactly one dimension (adjacent tile sizes, toggled staging, the
// other policies).
func (h *HillClimb) neighbors(c Candidate) []Candidate {
	var out []Candidate
	add := func(n Candidate) {
		if !h.visited[n] {
			h.visited[n] = true
			out = append(out, n)
		}
	}
	for _, tw := range adjacent(h.space.TileW, c.TileW) {
		n := c
		n.TileW = tw
		add(n)
	}
	for _, th := range adjacent(h.space.TileH, c.TileH) {
		n := c
		n.TileH = th
		add(n)
	}
	for _, pgsm := range h.space.PGSM {
		if pgsm != c.LoadPGSM {
			n := c
			n.LoadPGSM = pgsm
			add(n)
		}
	}
	for _, ma := range h.space.multiArray() {
		if ma != c.MultiArray {
			n := c
			n.MultiArray = ma
			add(n)
		}
	}
	for _, page := range h.space.Pages {
		if page != c.Page {
			n := c
			n.Page = page
			add(n)
		}
	}
	for _, sched := range h.space.Scheds {
		if sched != c.Sched {
			n := c
			n.Sched = sched
			add(n)
		}
	}
	return out
}

// unvisited filters the grid down to candidates not yet proposed.
func (h *HillClimb) unvisited(grid []Candidate) []Candidate {
	var out []Candidate
	for _, c := range grid {
		if !h.visited[c] {
			h.visited[c] = true
			out = append(out, c)
		}
	}
	return out
}

// adjacent returns the values neighboring v in the ordered list vals.
func adjacent(vals []int, v int) []int {
	for i, x := range vals {
		if x == v {
			var out []int
			if i > 0 {
				out = append(out, vals[i-1])
			}
			if i+1 < len(vals) {
				out = append(out, vals[i+1])
			}
			return out
		}
	}
	// v is off-grid (e.g. the default schedule's tile): every listed
	// value is a neighbor.
	return vals
}

// bestFeasible returns the fastest feasible result's candidate,
// breaking cycle ties by evaluation order.
func bestFeasible(evaluated []Result) (Candidate, bool) {
	var best Result
	found := false
	for _, r := range evaluated {
		if !r.Feasible() {
			continue
		}
		if !found || r.Cycles < best.Cycles {
			best, found = r, true
		}
	}
	return best.Candidate, found
}

// splitmix64 is the SplitMix64 mixing function (public domain,
// Steele/Lea/Flood): one deterministic 64-bit draw per call.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
