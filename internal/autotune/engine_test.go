package autotune

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"ipim/internal/dram"
	"ipim/internal/halide"
	"ipim/internal/sim"
)

// tuneBlur builds the schedule-free 3x3 separable blur the tests tune.
func tuneBlur() *halide.Pipeline {
	blurx := halide.NewFunc("tx").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(-1, 0), halide.In(0, 0)), halide.In(1, 0)),
			halide.K(1.0/3)))
	out := halide.NewFunc("ty").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, -1), blurx.At(0, 0)), blurx.At(0, 1)),
			halide.K(1.0/3)))
	return halide.NewPipeline("tuneblur", out)
}

func tinyProblem() Problem {
	return PipelineProblem(sim.TestTiny(), tuneBlur, 32, 16)
}

// listStrategy proposes fixed batches; for driving the engine over an
// exact candidate list in tests.
type listStrategy struct {
	batches [][]Candidate
	i       int
}

func (l *listStrategy) Name() string { return "list" }
func (l *listStrategy) Next([]Result) []Candidate {
	if l.i >= len(l.batches) {
		return nil
	}
	b := l.batches[l.i]
	l.i++
	return b
}

func TestGridSearchRanksCandidates(t *testing.T) {
	p := tinyProblem()
	eng := &Engine{Workers: 2}
	report, err := eng.Search(context.Background(), p, NewGrid(DefaultSpace()))
	if err != nil {
		t.Fatal(err)
	}
	if report.Evaluated != DefaultSpace().Size() {
		t.Fatalf("evaluated %d candidates, want %d", report.Evaluated, DefaultSpace().Size())
	}
	best := report.Best()
	if best.Err != nil || best.Cycles == 0 {
		t.Fatalf("best candidate invalid: %+v", best)
	}
	for _, r := range report.Results[1:] {
		if r.Err == nil && r.Cycles < best.Cycles {
			t.Fatalf("ranking broken: %v (%d) beats best (%d)", r.Candidate, r.Cycles, best.Cycles)
		}
	}
	// The enlarged space must measure real differences.
	distinct := map[int64]bool{}
	for _, r := range report.Results {
		if r.Err == nil {
			distinct[r.Cycles] = true
		}
	}
	if len(distinct) < 2 {
		t.Fatal("all candidates identical: tuner measures nothing")
	}
	// The baseline was evaluated and the winner beats or matches it.
	if report.Default.Err != nil || report.Default.Cycles == 0 {
		t.Fatalf("default baseline invalid: %+v", report.Default)
	}
	if imp := report.Improvement(); imp < 1 {
		t.Fatalf("improvement %.3f < 1: grid missed the default point", imp)
	}
}

// TestSearchWorkerCountDeterminism is the PR acceptance differential:
// for a fixed seed and strategy, the full ranking — candidates, cycle
// counts, and order — is identical at 1 worker and at N workers.
func TestSearchWorkerCountDeterminism(t *testing.T) {
	for _, name := range StrategyNames() {
		t.Run(name, func(t *testing.T) {
			p := tinyProblem()
			p.Seed = 0xD5
			var baseline *Report
			for _, workers := range []int{1, 4} {
				strat, err := NewStrategy(name, DefaultSpace(), p.Seed)
				if err != nil {
					t.Fatal(err)
				}
				eng := &Engine{Workers: workers}
				report, err := eng.Search(context.Background(), p, strat)
				if err != nil {
					t.Fatal(err)
				}
				if baseline == nil {
					baseline = report
					continue
				}
				if report.Evaluated != baseline.Evaluated {
					t.Fatalf("workers=%d evaluated %d candidates, workers=1 evaluated %d",
						workers, report.Evaluated, baseline.Evaluated)
				}
				for i := range report.Results {
					got, want := report.Results[i], baseline.Results[i]
					if got.Candidate != want.Candidate || got.Cycles != want.Cycles ||
						(got.Err == nil) != (want.Err == nil) {
						t.Fatalf("rank %d differs at workers=%d: got %v (%d cycles, err=%v), want %v (%d cycles, err=%v)",
							i, workers, got.Candidate, got.Cycles, got.Err,
							want.Candidate, want.Cycles, want.Err)
					}
				}
				if report.Default != baseline.Default {
					t.Fatalf("baseline differs: %+v vs %+v", report.Default, baseline.Default)
				}
			}
		})
	}
}

// TestHillClimbAgreesWithGrid pins the hill-climb's quality on the
// small space: it must find the exhaustive winner while evaluating
// fewer candidates.
func TestHillClimbAgreesWithGrid(t *testing.T) {
	p := tinyProblem()
	eng := &Engine{Workers: 2}
	grid, err := eng.Search(context.Background(), p, NewGrid(DefaultSpace()))
	if err != nil {
		t.Fatal(err)
	}
	hill, err := eng.Search(context.Background(), p, NewHillClimb(DefaultSpace(), DefaultProbeSeed))
	if err != nil {
		t.Fatal(err)
	}
	if hill.Best().Cycles != grid.Best().Cycles {
		t.Fatalf("hill best %v (%d cycles) != grid best %v (%d cycles)",
			hill.Best().Candidate, hill.Best().Cycles,
			grid.Best().Candidate, grid.Best().Cycles)
	}
	if hill.Evaluated >= grid.Evaluated {
		t.Fatalf("hill evaluated %d of %d grid points: no pruning", hill.Evaluated, grid.Evaluated)
	}
}

func TestSearchReportsInfeasible(t *testing.T) {
	p := tinyProblem()
	// 32x32 tiles do not divide across the tiny machine's PEs.
	strat := &listStrategy{batches: [][]Candidate{{
		{TileW: 32, TileH: 32},
		{TileW: 8, TileH: 8},
	}}}
	eng := &Engine{}
	report, err := eng.Search(context.Background(), p, strat)
	if err != nil {
		t.Fatal(err)
	}
	if report.Results[0].Err != nil {
		t.Fatal("feasible candidate not ranked first")
	}
	if last := report.Results[len(report.Results)-1]; last.Err == nil {
		t.Fatal("infeasible candidate not reported")
	}
}

func TestSearchAllInfeasible(t *testing.T) {
	p := tinyProblem()
	strat := &listStrategy{batches: [][]Candidate{{{TileW: 32, TileH: 32}}}}
	if _, err := (&Engine{}).Search(context.Background(), p, strat); err == nil {
		t.Fatal("all-infeasible search succeeded")
	}
}

func TestSearchRespectsCycleBudget(t *testing.T) {
	p := tinyProblem()
	eng := &Engine{MaxCycles: 3}
	_, err := eng.Search(context.Background(), p, NewGrid(DefaultSpace()))
	if err == nil {
		t.Fatal("3-cycle budget produced a feasible schedule")
	}
	if !errors.Is(err, sim.ErrCycleBudget) {
		t.Fatalf("err = %v, want ErrCycleBudget", err)
	}
}

func TestSearchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&Engine{}).Search(ctx, tinyProblem(), NewGrid(DefaultSpace()))
	if err == nil {
		t.Fatal("cancelled search succeeded")
	}
}

func TestSearchRejectsHistogram(t *testing.T) {
	p := tinyProblem()
	p.Default = func() *halide.Pipeline {
		pipe := tuneBlur()
		pipe.Histogram = true
		return pipe
	}
	if _, err := (&Engine{}).Search(context.Background(), p, NewGrid(DefaultSpace())); err == nil {
		t.Fatal("histogram pipeline accepted for tuning")
	}
}

func TestApplySetsSchedule(t *testing.T) {
	c := Candidate{TileW: 16, TileH: 4, LoadPGSM: true}
	pipe := Apply(tuneBlur(), c)
	if pipe.TileW != 16 || pipe.TileH != 4 {
		t.Fatalf("tile = %dx%d, want 16x4", pipe.TileW, pipe.TileH)
	}
	// And clearing staging works too (workload builders bake it in).
	pipe = Apply(tuneBlur(), Candidate{TileW: 8, TileH: 8, LoadPGSM: false})
	if pipe.TileW != 8 || pipe.TileH != 8 {
		t.Fatalf("tile = %dx%d, want 8x8", pipe.TileW, pipe.TileH)
	}
	if pipe.MultiArray {
		t.Fatal("baseline candidate left the multi-array schedule on")
	}
	pipe = Apply(tuneBlur(), Candidate{TileW: 8, TileH: 8, LoadPGSM: true, MultiArray: true})
	if !pipe.MultiArray {
		t.Fatal("multi-array candidate did not set the schedule")
	}
}

func TestSpaceGrid(t *testing.T) {
	s := DefaultSpace()
	grid := s.Grid()
	if len(grid) != s.Size() || len(grid) != 96 {
		t.Fatalf("grid has %d candidates, Size()=%d, want 96", len(grid), s.Size())
	}
	seen := map[Candidate]bool{}
	for _, c := range grid {
		if seen[c] {
			t.Fatalf("duplicate grid candidate %v", c)
		}
		seen[c] = true
	}
	fixed := s.FixPolicies(dram.ClosePage, dram.FCFS)
	if fixed.Size() != 24 {
		t.Fatalf("fixed-policy space has %d candidates, want 24", fixed.Size())
	}
	// A space predating the multi-array knob keeps its historical grid.
	legacy := Space{TileW: []int{8}, TileH: []int{4}, PGSM: []bool{false, true},
		Pages: s.Pages, Scheds: s.Scheds}
	if legacy.Size() != 8 || len(legacy.Grid()) != 8 {
		t.Fatalf("legacy space has %d candidates (grid %d), want 8", legacy.Size(), len(legacy.Grid()))
	}
	for _, c := range legacy.Grid() {
		if c.MultiArray {
			t.Fatalf("legacy space proposed multi-array candidate %v", c)
		}
	}
	for _, c := range fixed.Grid() {
		if c.Page != dram.ClosePage || c.Sched != dram.FCFS {
			t.Fatalf("FixPolicies leaked candidate %v", c)
		}
	}
}

func TestCandidateString(t *testing.T) {
	for _, tc := range []struct {
		c    Candidate
		want string
	}{
		{Candidate{TileW: 8, TileH: 4, LoadPGSM: true}, "tile 8x4 + load_pgsm"},
		{Candidate{TileW: 8, TileH: 16, LoadPGSM: true, MultiArray: true},
			"tile 8x16 + load_pgsm + multi_array"},
		{Candidate{TileW: 16, TileH: 8, Page: dram.ClosePage, Sched: dram.FCFS},
			"tile 16x8 + close-page + fcfs"},
	} {
		if got := tc.c.String(); got != tc.want {
			t.Fatalf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestNewStrategyRejectsUnknown(t *testing.T) {
	if _, err := NewStrategy("anneal", DefaultSpace(), 0); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, name := range StrategyNames() {
		if _, err := NewStrategy(name, DefaultSpace(), 1); err != nil {
			t.Fatalf("NewStrategy(%q): %v", name, err)
		}
	}
}

func TestProblemValidation(t *testing.T) {
	if _, err := (&Engine{}).Search(context.Background(), Problem{}, NewGrid(DefaultSpace())); err == nil {
		t.Fatal("builder-less problem accepted")
	}
	p := tinyProblem()
	p.W = 0
	if _, err := (&Engine{}).Search(context.Background(), p, NewGrid(DefaultSpace())); err == nil {
		t.Fatal("zero-geometry problem accepted")
	}
}

// BenchmarkGridSearch is the machine-reuse regression benchmark: the
// retired internal/tune built a fresh cube.New per candidate, so a
// regression back to that shape shows up here as a step increase in
// ns/op and allocations.
func BenchmarkGridSearch(b *testing.B) {
	p := tinyProblem()
	space := Space{
		TileW: []int{8}, TileH: []int{4, 8},
		PGSM:  []bool{false},
		Pages: []dram.PagePolicy{dram.OpenPage},
		Scheds: []dram.SchedPolicy{
			dram.FRFCFS,
		},
	}
	eng := &Engine{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(context.Background(), p, NewGrid(space)); err != nil {
			b.Fatal(err)
		}
	}
}

// ExampleEngine_Search shows the package's core loop.
func ExampleEngine_Search() {
	p := PipelineProblem(sim.TestTiny(), tuneBlur, 32, 16)
	eng := &Engine{Workers: 2}
	report, err := eng.Search(context.Background(), p, NewGrid(DefaultSpace()))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(report.Best().Err == nil, report.Evaluated)
	// Output: true 96
}
