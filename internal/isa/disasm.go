package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a Program as canonical assembly text that
// Assemble parses back to an equivalent program (labels are renamed to
// L0, L1, ... in binding order).
func Disassemble(p *Program) string {
	// Labels bound at each instruction index (a label may bind at
	// len(Ins), i.e. program end).
	labelsAt := make(map[int][]int)
	for id, idx := range p.Labels {
		if idx >= 0 {
			labelsAt[idx] = append(labelsAt[idx], id)
		}
	}
	var b strings.Builder
	for i := 0; i <= len(p.Ins); i++ {
		for _, id := range labelsAt[i] {
			fmt.Fprintf(&b, "L%d:\n", id)
		}
		if i < len(p.Ins) {
			b.WriteString(formatInstruction(&p.Ins[i]))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatInstruction renders one instruction in canonical assembly syntax.
func FormatInstruction(in *Instruction) string { return formatInstruction(in) }

func formatInstruction(in *Instruction) string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	b.WriteByte(' ')
	addr := func(a uint32, ind bool) string {
		if ind {
			return fmt.Sprintf("@a%d", a)
		}
		return fmt.Sprintf("%#x", a)
	}
	simb := func() string {
		if in.SimbMask == ^uint64(0) {
			return "sm=*"
		}
		return fmt.Sprintf("sm=%#x", in.SimbMask)
	}
	switch in.Op {
	case OpComp:
		fmt.Fprintf(&b, "%s %s d%d, d%d, d%d, vm=%#x, %s",
			in.ALU, in.Mode, in.Dst, in.Src1, in.Src2, in.VecMask, simb())
	case OpCalcARF, OpCalcCRF:
		pfx := "a"
		if in.Op == OpCalcCRF {
			pfx = "c"
		}
		src2 := fmt.Sprintf("%s%d", pfx, in.Src2)
		if in.HasImm {
			src2 = fmt.Sprintf("#%d", in.Imm)
		}
		fmt.Fprintf(&b, "%s %s%d, %s%d, %s", in.ALU, pfx, in.Dst, pfx, in.Src1, src2)
		if in.Op == OpCalcARF {
			fmt.Fprintf(&b, ", %s", simb())
		}
	case OpStRF, OpLdRF:
		fmt.Fprintf(&b, "d%d, %s, %s", in.Dst, addr(in.Addr, in.Indirect), simb())
	case OpStPGSM, OpLdPGSM:
		fmt.Fprintf(&b, "%s, %s, %s", addr(in.Addr, in.Indirect), addr(in.Addr2, in.Indirect2), simb())
	case OpRdPGSM, OpWrPGSM, OpRdVSM, OpWrVSM:
		fmt.Fprintf(&b, "d%d, %s, %s", in.Dst, addr(in.Addr, in.Indirect), simb())
	case OpMovDRF:
		fmt.Fprintf(&b, "d%d, a%d, lane=%d, %s", in.Dst, in.Src1, in.Lane, simb())
	case OpMovARF:
		fmt.Fprintf(&b, "a%d, d%d, lane=%d, %s", in.Dst, in.Src1, in.Lane, simb())
	case OpSetiVSM:
		fmt.Fprintf(&b, "%#x, #%d", in.Addr, in.Imm)
	case OpReset:
		fmt.Fprintf(&b, "d%d, %s", in.Dst, simb())
	case OpReq:
		fmt.Fprintf(&b, "chip=%d, vault=%d, pg=%d, pe=%d, dram=%#x, vsm=%#x",
			in.DstChip, in.DstVault, in.DstPG, in.DstPE, in.Addr, in.Addr2)
	case OpJump:
		fmt.Fprintf(&b, "c%d", in.Src1)
	case OpCJump:
		fmt.Fprintf(&b, "c%d, c%d", in.Cond, in.Src1)
	case OpSetiCRF:
		if in.ImmLabel >= 0 {
			fmt.Fprintf(&b, "c%d, =L%d", in.Dst, in.ImmLabel)
		} else {
			fmt.Fprintf(&b, "c%d, #%d", in.Dst, in.Imm)
		}
	case OpSync:
		fmt.Fprintf(&b, "%d", in.Phase)
	default:
		fmt.Fprintf(&b, "?%d", in.Op)
	}
	return b.String()
}
