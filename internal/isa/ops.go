package isa

import (
	"fmt"
	"math"
)

// ALUOp enumerates the operations of the comp SIMD unit and the integer
// ALUs (calc_arf / calc_crf). Paper Table I lists FP/INT add, subtract,
// multiply, mac plus logical shift/and/or/xor/crop-lsb/crop-msb; the
// comparison, min/max, div, abs and conversion ops are the minimal
// extension needed by the paper's own Table II workloads (see package
// doc).
type ALUOp uint8

const (
	ALUInvalid ALUOp = iota

	// FP32 vector arithmetic (comp).
	FAdd
	FSub
	FMul
	FMac // dst += src1 * src2 (reads dst)
	FDiv
	FMin
	FMax
	FAbs   // |src1| (src2 ignored)
	FCmpLT // 1.0 if src1 < src2 else 0.0
	FCmpLE // 1.0 if src1 <= src2 else 0.0
	FFloor // floor(src1) (src2 ignored)

	// INT32 vector arithmetic (comp) and scalar index/control calc.
	IAdd
	ISub
	IMul
	IMac // dst += src1 * src2 (reads dst)
	IMin
	IMax
	ICmpLT // 1 if src1 < src2 else 0
	ICmpEQ // 1 if src1 == src2 else 0

	// Logical (comp + scalar).
	Shl
	Shr // logical shift right
	And
	Or
	Xor
	CropLSB // src1 & 0xFFFF (keep least-significant half)
	CropMSB // (src1 >> 16) & 0xFFFF (keep most-significant half)

	// Conversions (comp).
	I2F // int32 -> float32
	F2I // float32 -> int32 (truncate toward zero)

	// Mov copies src1 (scalar calc files; also comp copy).
	Mov

	aluEnd
)

// NumALUOps is the count of valid ALU operations.
const NumALUOps = int(aluEnd) - 1

var aluNames = [...]string{
	ALUInvalid: "invalid",
	FAdd:       "fadd",
	FSub:       "fsub",
	FMul:       "fmul",
	FMac:       "fmac",
	FDiv:       "fdiv",
	FMin:       "fmin",
	FMax:       "fmax",
	FAbs:       "fabs",
	FCmpLT:     "fcmplt",
	FCmpLE:     "fcmple",
	FFloor:     "ffloor",
	IAdd:       "iadd",
	ISub:       "isub",
	IMul:       "imul",
	IMac:       "imac",
	IMin:       "imin",
	IMax:       "imax",
	ICmpLT:     "icmplt",
	ICmpEQ:     "icmpeq",
	Shl:        "shl",
	Shr:        "shr",
	And:        "and",
	Or:         "or",
	Xor:        "xor",
	CropLSB:    "croplsb",
	CropMSB:    "cropmsb",
	I2F:        "i2f",
	F2I:        "f2i",
	Mov:        "mov",
}

func (a ALUOp) String() string {
	if int(a) < len(aluNames) {
		return aluNames[a]
	}
	return fmt.Sprintf("alu(%d)", uint8(a))
}

// ALUOpByName resolves an assembler mnemonic; ok is false for unknown
// names.
func ALUOpByName(name string) (ALUOp, bool) {
	for op, n := range aluNames {
		if n == name && ALUOp(op) != ALUInvalid {
			return ALUOp(op), true
		}
	}
	return ALUInvalid, false
}

// IsFloat reports whether the op interprets its operands as FP32.
func (a ALUOp) IsFloat() bool {
	switch a {
	case FAdd, FSub, FMul, FMac, FDiv, FMin, FMax, FAbs, FCmpLT, FCmpLE, FFloor, I2F:
		return true
	}
	return false
}

// ReadsDst reports whether the op reads its destination register
// (multiply-accumulate), which matters for hazard detection and liveness.
func (a ALUOp) ReadsDst() bool { return a == FMac || a == IMac }

// ValidForComp reports whether a comp instruction may carry this op.
func (a ALUOp) ValidForComp() bool { return a > ALUInvalid && a < aluEnd }

// ValidForCalc reports whether the scalar integer calc units
// (calc_arf / calc_crf) support this op. The paper restricts them to INT.
func (a ALUOp) ValidForCalc() bool {
	switch a {
	case IAdd, ISub, IMul, IMin, IMax, ICmpLT, ICmpEQ, Shl, Shr, And, Or, Xor, CropLSB, CropMSB, Mov:
		return true
	}
	return false
}

// EvalF computes the FP32 result of op for one lane. acc is the current
// destination value (read only by fmac). Integer-typed ops on float
// arguments reinterpret via conversion as the hardware conversion ops do.
func EvalF(op ALUOp, a, b, acc float32) float32 {
	switch op {
	case FAdd:
		return a + b
	case FSub:
		return a - b
	case FMul:
		return a * b
	case FMac:
		return acc + a*b
	case FDiv:
		return a / b
	case FMin:
		if a < b {
			return a
		}
		return b
	case FMax:
		if a > b {
			return a
		}
		return b
	case FAbs:
		return float32(math.Abs(float64(a)))
	case FCmpLT:
		if a < b {
			return 1
		}
		return 0
	case FCmpLE:
		if a <= b {
			return 1
		}
		return 0
	case FFloor:
		return float32(math.Floor(float64(a)))
	case Mov:
		return a
	}
	panic(fmt.Sprintf("isa: EvalF: non-float op %v", op))
}

// EvalI computes the INT32 result of op for one lane (or for the scalar
// calc units). acc is the current destination value (read only by imac).
func EvalI(op ALUOp, a, b, acc int32) int32 {
	switch op {
	case IAdd:
		return a + b
	case ISub:
		return a - b
	case IMul:
		return a * b
	case IMac:
		return acc + a*b
	case IMin:
		if a < b {
			return a
		}
		return b
	case IMax:
		if a > b {
			return a
		}
		return b
	case ICmpLT:
		if a < b {
			return 1
		}
		return 0
	case ICmpEQ:
		if a == b {
			return 1
		}
		return 0
	case Shl:
		return a << (uint32(b) & 31)
	case Shr:
		return int32(uint32(a) >> (uint32(b) & 31))
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case CropLSB:
		return a & 0xFFFF
	case CropMSB:
		return (a >> 16) & 0xFFFF
	case Mov:
		return a
	}
	panic(fmt.Sprintf("isa: EvalI: non-int op %v", op))
}

// CanonNaN is the bit pattern every NaN-valued float ALU result is
// normalized to: the canonical quiet NaN, as RISC-V FPUs produce.
// Input NaN payloads are NOT propagated. Without this normalization
// the architectural result of e.g. NaN+NaN would depend on which
// operand x86 ADDSS happened to keep — a choice the Go compiler makes
// per inlining context, so the "same" program could produce different
// bits in different execution modes (or even under the race detector).
const CanonNaN uint32 = 0x7FC00000

// EvalLane evaluates a comp op for one vector lane holding raw 32-bit
// data, dispatching on the op's type. Float lanes are reinterpreted as
// IEEE-754 bit patterns; NaN results are normalized to CanonNaN.
func EvalLane(op ALUOp, a, b, acc uint32) uint32 {
	switch op {
	case I2F:
		return math.Float32bits(float32(int32(a)))
	case F2I:
		f := math.Float32frombits(a)
		switch {
		case math.IsNaN(float64(f)):
			return 0
		case f >= math.MaxInt32:
			return uint32(int32(math.MaxInt32))
		case f <= math.MinInt32:
			minI32 := int32(math.MinInt32)
			return uint32(minI32)
		}
		return uint32(int32(f))
	}
	if op.IsFloat() {
		r := EvalF(op, math.Float32frombits(a), math.Float32frombits(b), math.Float32frombits(acc))
		if r != r {
			return CanonNaN
		}
		return math.Float32bits(r)
	}
	return uint32(EvalI(op, int32(a), int32(b), int32(acc)))
}
