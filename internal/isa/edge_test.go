package isa

import (
	"strings"
	"testing"
)

func TestValidateEveryOpcodeDefault(t *testing.T) {
	// New() of every opcode with in-range operands must validate.
	for op := OpComp; op < opEnd; op++ {
		in := New(op)
		switch op {
		case OpComp:
			in.ALU = FAdd
		case OpCalcARF, OpCalcCRF:
			in.ALU = IAdd
		}
		if err := in.Validate(64, 64, 64); err != nil {
			t.Errorf("default %v invalid: %v", op, err)
		}
	}
}

func TestValidateIndirectFields(t *testing.T) {
	in := New(OpRdVSM)
	in.Indirect = true
	in.Addr = 100 // beyond 64-entry AddrRF
	if err := in.Validate(64, 64, 64); err == nil {
		t.Error("indirect VSM address register out of range accepted")
	}
	in2 := New(OpStPGSM)
	in2.Indirect2 = true
	in2.Addr2 = 70
	if err := in2.Validate(64, 64, 64); err == nil {
		t.Error("indirect PGSM address register out of range accepted")
	}
	rq := New(OpReq)
	rq.DstChip = -1
	if err := rq.Validate(64, 64, 64); err == nil {
		t.Error("negative req routing accepted")
	}
	sy := New(OpSync)
	sy.Phase = -2
	if err := sy.Validate(64, 64, 64); err == nil {
		t.Error("negative sync phase accepted")
	}
}

func TestDisassembleLabelsAtProgramEnd(t *testing.T) {
	p := &Program{}
	in := New(OpSync)
	p.Append(in)
	end := p.NewLabel()
	p.Bind(end) // binds at len(Ins) == 1 (program end)
	text := Disassemble(p)
	if !strings.Contains(text, "L0:") {
		t.Fatalf("end-of-program label lost:\n%s", text)
	}
	q, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Labels) != 1 || q.Labels[0] != 1 {
		t.Fatalf("label table %v after round trip", q.Labels)
	}
}

func TestFormatInstructionAllOpcodes(t *testing.T) {
	// Every opcode formats and (where grammar exists) reparses.
	for op := OpComp; op < opEnd; op++ {
		in := New(op)
		switch op {
		case OpComp:
			in.ALU = FAdd
		case OpCalcARF, OpCalcCRF:
			in.ALU = IAdd
			in.HasImm = true
		}
		text := FormatInstruction(&in)
		if text == "" || strings.Contains(text, "?") {
			t.Errorf("%v formats to %q", op, text)
		}
	}
}

func TestAssembleMasksAndLaneOptionsInAnyOrder(t *testing.T) {
	p, err := Assemble("comp fadd vv d1, d2, d3, sm=0x5, vm=0x3")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Ins[0]
	if in.SimbMask != 5 || in.VecMask != 3 {
		t.Fatalf("options out of order mis-parsed: %+v", in)
	}
}

func TestUsesIncludesIndirectPGSMAddress(t *testing.T) {
	in := New(OpWrPGSM)
	in.Dst = 2
	in.Indirect = true
	in.Addr = 7
	uses := in.Uses()
	foundDRF, foundARF := false, false
	for _, u := range uses {
		if u == (RegRef{SpaceDRF, 2}) {
			foundDRF = true
		}
		if u == (RegRef{SpaceARF, 7}) {
			foundARF = true
		}
	}
	if !foundDRF || !foundARF {
		t.Fatalf("wr_pgsm uses = %v", uses)
	}
}

func TestCategoryStringNames(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if strings.Contains(c.String(), "cat(") {
			t.Errorf("category %d unnamed", c)
		}
	}
}
