package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary program format. Instructions encode to fixed-size 56-byte
// records (little endian); a program is a small header followed by the
// label table and the instruction records. The format exists so compiled
// kernels can be shipped to the accelerator's VSM ("VSM acts as the
// instruction memory that accepts computation offloading from a host",
// paper Sec. IV-E) and reloaded byte-identically.

const (
	// InstructionSize is the encoded size of one instruction in bytes.
	InstructionSize = 56
	programMagic    = 0x4d495069 // "iPIM"
	formatVersion   = 1
)

// flag bits within the encoded record.
const (
	flagHasImm uint8 = 1 << iota
	flagIndirect
	flagIndirect2
)

// EncodeInstruction serializes in into buf, which must be at least
// InstructionSize bytes. It returns the bytes written.
func EncodeInstruction(in *Instruction, buf []byte) int {
	_ = buf[InstructionSize-1]
	buf[0] = byte(in.Op)
	buf[1] = byte(in.ALU)
	buf[2] = byte(in.Mode)
	var fl uint8
	if in.HasImm {
		fl |= flagHasImm
	}
	if in.Indirect {
		fl |= flagIndirect
	}
	if in.Indirect2 {
		fl |= flagIndirect2
	}
	buf[3] = fl
	buf[4] = in.VecMask
	buf[5] = byte(in.Lane)
	buf[6] = byte(in.DstChip)
	buf[7] = byte(in.DstVault)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], uint32(int32(in.Dst)))
	le.PutUint32(buf[12:], uint32(int32(in.Src1)))
	le.PutUint32(buf[16:], uint32(int32(in.Src2)))
	le.PutUint64(buf[20:], uint64(in.Imm))
	le.PutUint32(buf[28:], uint32(int32(in.ImmLabel)))
	le.PutUint32(buf[32:], in.Addr)
	le.PutUint32(buf[36:], in.Addr2)
	le.PutUint64(buf[40:], in.SimbMask)
	le.PutUint32(buf[48:], uint32(int32(in.Cond)))
	buf[52] = byte(in.DstPG)
	buf[53] = byte(in.DstPE)
	le.PutUint16(buf[54:], uint16(in.Phase))
	return InstructionSize
}

// DecodeInstruction deserializes one instruction from buf.
func DecodeInstruction(buf []byte) (Instruction, error) {
	if len(buf) < InstructionSize {
		return Instruction{}, fmt.Errorf("isa: short instruction record (%d bytes)", len(buf))
	}
	le := binary.LittleEndian
	in := Instruction{
		Op:       Opcode(buf[0]),
		ALU:      ALUOp(buf[1]),
		Mode:     Mode(buf[2]),
		VecMask:  buf[4],
		Lane:     int(buf[5]),
		DstChip:  int(buf[6]),
		DstVault: int(buf[7]),
		Dst:      int(int32(le.Uint32(buf[8:]))),
		Src1:     int(int32(le.Uint32(buf[12:]))),
		Src2:     int(int32(le.Uint32(buf[16:]))),
		Imm:      int64(le.Uint64(buf[20:])),
		ImmLabel: int(int32(le.Uint32(buf[28:]))),
		Addr:     le.Uint32(buf[32:]),
		Addr2:    le.Uint32(buf[36:]),
		SimbMask: le.Uint64(buf[40:]),
		Cond:     int(int32(le.Uint32(buf[48:]))),
		DstPG:    int(buf[52]),
		DstPE:    int(buf[53]),
		Phase:    int(le.Uint16(buf[54:])),
	}
	fl := buf[3]
	in.HasImm = fl&flagHasImm != 0
	in.Indirect = fl&flagIndirect != 0
	in.Indirect2 = fl&flagIndirect2 != 0
	if in.Op == OpInvalid || in.Op >= opEnd {
		return in, fmt.Errorf("isa: invalid opcode %d in record", buf[0])
	}
	return in, nil
}

// EncodeProgram serializes a whole program.
func EncodeProgram(p *Program) []byte {
	n := 16 + 4*len(p.Labels) + InstructionSize*len(p.Ins)
	out := make([]byte, n)
	le := binary.LittleEndian
	le.PutUint32(out[0:], programMagic)
	le.PutUint32(out[4:], formatVersion)
	le.PutUint32(out[8:], uint32(len(p.Labels)))
	le.PutUint32(out[12:], uint32(len(p.Ins)))
	off := 16
	for _, l := range p.Labels {
		le.PutUint32(out[off:], uint32(int32(l)))
		off += 4
	}
	for i := range p.Ins {
		off += EncodeInstruction(&p.Ins[i], out[off:])
	}
	return out
}

// DecodeProgram deserializes a program produced by EncodeProgram.
func DecodeProgram(data []byte) (*Program, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("isa: short program header")
	}
	le := binary.LittleEndian
	if le.Uint32(data[0:]) != programMagic {
		return nil, fmt.Errorf("isa: bad program magic %#x", le.Uint32(data[0:]))
	}
	if v := le.Uint32(data[4:]); v != formatVersion {
		return nil, fmt.Errorf("isa: unsupported format version %d", v)
	}
	nLabels := int(le.Uint32(data[8:]))
	nIns := int(le.Uint32(data[12:]))
	want := 16 + 4*nLabels + InstructionSize*nIns
	if len(data) < want {
		return nil, fmt.Errorf("isa: truncated program: have %d bytes, want %d", len(data), want)
	}
	p := &Program{Labels: make([]int, nLabels), Ins: make([]Instruction, 0, nIns)}
	off := 16
	for i := range p.Labels {
		p.Labels[i] = int(int32(le.Uint32(data[off:])))
		off += 4
	}
	for i := 0; i < nIns; i++ {
		in, err := DecodeInstruction(data[off:])
		if err != nil {
			return nil, fmt.Errorf("isa: instruction %d: %w", i, err)
		}
		p.Ins = append(p.Ins, in)
		off += InstructionSize
	}
	return p, nil
}
