// Package isa defines iPIM's Single-Instruction-Multiple-Bank (SIMB)
// instruction set architecture (paper Table I): instruction formats,
// operand kinds, register spaces, masks, semantic evaluation of ALU
// operations, a text assembler/disassembler, and a binary codec.
//
// The opcode list matches the paper's Table I. Two pragmatic extensions,
// both noted where they appear, are required to express the paper's own
// Table II workloads: (1) `calc_arf`/`calc_crf` accept an immediate second
// source (the paper stages constants through seti_crf / the host-loaded
// VSM constant pool; the immediate form removes a mechanical indirection
// without changing timing), and (2) the `comp` op list carries the minimal
// closure of operations the Table II pipelines need (div, min, max,
// compare, abs, int/float conversion) beyond the arithmetic/logic ops the
// table enumerates.
package isa

import "fmt"

// Opcode identifies one SIMB instruction (one row of paper Table I;
// paired rows such as st/ld are separate opcodes here).
type Opcode uint8

const (
	// OpInvalid is the zero Opcode; programs never contain it.
	OpInvalid Opcode = iota

	// Computation.
	OpComp // SIMD computation on DataRF vectors

	// Index calculation.
	OpCalcARF // INT address calculation on AddrRF

	// Intra-vault data movement.
	OpStRF    // DataRF -> bank
	OpLdRF    // bank   -> DataRF
	OpStPGSM  // PGSM   -> bank ("store data to the bank from the PGSM")
	OpLdPGSM  // bank   -> PGSM
	OpRdPGSM  // PGSM    -> DataRF
	OpWrPGSM  // DataRF  -> PGSM
	OpRdVSM   // VSM     -> DataRF
	OpWrVSM   // DataRF  -> VSM
	OpMovDRF  // AddrRF  -> DataRF (mov drf: move data TO DataRF)
	OpMovARF  // DataRF  -> AddrRF (mov arf: move data TO AddrRF)
	OpSetiVSM // imm     -> VSM (core-side)
	OpReset   // zero a DataRF entry

	// Inter-vault data movement.
	OpReq // asynchronous remote bank read into local VSM

	// Control flow (core-side).
	OpJump    // unconditional jump, target in CtrlRF
	OpCJump   // conditional jump if CtrlRF[cond] != 0, target in CtrlRF
	OpCalcCRF // INT calculation on CtrlRF
	OpSetiCRF // imm -> CtrlRF

	// Synchronization.
	OpSync // inter-vault barrier with phase id

	opEnd // sentinel, keep last
)

// NumOpcodes is the count of valid opcodes (excluding OpInvalid).
const NumOpcodes = int(opEnd) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpComp:    "comp",
	OpCalcARF: "calc_arf",
	OpStRF:    "st_rf",
	OpLdRF:    "ld_rf",
	OpStPGSM:  "st_pgsm",
	OpLdPGSM:  "ld_pgsm",
	OpRdPGSM:  "rd_pgsm",
	OpWrPGSM:  "wr_pgsm",
	OpRdVSM:   "rd_vsm",
	OpWrVSM:   "wr_vsm",
	OpMovDRF:  "mov_drf",
	OpMovARF:  "mov_arf",
	OpSetiVSM: "seti_vsm",
	OpReset:   "reset",
	OpReq:     "req",
	OpJump:    "jump",
	OpCJump:   "cjump",
	OpCalcCRF: "calc_crf",
	OpSetiCRF: "seti_crf",
	OpSync:    "sync",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Category groups opcodes the way the paper's Fig. 11 instruction
// breakdown does.
type Category uint8

const (
	CatComputation Category = iota
	CatIndexCalc
	CatIntraVault
	CatInterVault
	CatControlFlow
	CatSync
	NumCategories
)

var catNames = [...]string{
	CatComputation: "computation",
	CatIndexCalc:   "index-calc",
	CatIntraVault:  "intra-vault",
	CatInterVault:  "inter-vault",
	CatControlFlow: "control-flow",
	CatSync:        "sync",
}

func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return fmt.Sprintf("cat(%d)", uint8(c))
}

// CategoryOf maps an opcode to its paper Fig. 11 category.
func CategoryOf(op Opcode) Category {
	switch op {
	case OpComp:
		return CatComputation
	case OpCalcARF:
		return CatIndexCalc
	case OpStRF, OpLdRF, OpStPGSM, OpLdPGSM, OpRdPGSM, OpWrPGSM,
		OpRdVSM, OpWrVSM, OpMovDRF, OpMovARF, OpSetiVSM, OpReset:
		return CatIntraVault
	case OpReq:
		return CatInterVault
	case OpJump, OpCJump, OpCalcCRF, OpSetiCRF:
		return CatControlFlow
	case OpSync:
		return CatSync
	}
	return NumCategories // invalid
}

// IsSIMB reports whether the instruction is broadcast to PEs (and thus
// honors SimbMask) as opposed to executing vault- or core-side.
func (o Opcode) IsSIMB() bool {
	switch o {
	case OpComp, OpCalcARF, OpStRF, OpLdRF, OpStPGSM, OpLdPGSM,
		OpRdPGSM, OpWrPGSM, OpRdVSM, OpWrVSM, OpMovDRF, OpMovARF, OpReset:
		return true
	}
	return false
}

// AccessesBank reports whether the opcode generates a DRAM bank access
// in the local vault.
func (o Opcode) AccessesBank() bool {
	switch o {
	case OpStRF, OpLdRF, OpStPGSM, OpLdPGSM:
		return true
	}
	return false
}

// IsBankLoad reports whether the opcode reads the DRAM bank.
func (o Opcode) IsBankLoad() bool { return o == OpLdRF || o == OpLdPGSM }

// IsBankStore reports whether the opcode writes the DRAM bank.
func (o Opcode) IsBankStore() bool { return o == OpStRF || o == OpStPGSM }

// Mode selects the comp instruction's operand shape.
type Mode uint8

const (
	ModeVV Mode = iota // vector ⊕ vector
	ModeVS             // vector ⊕ broadcast(lane 0 of src2)
)

func (m Mode) String() string {
	if m == ModeVV {
		return "vv"
	}
	return "vs"
}

// VecLanes is the SIMD vector length: 4 × 32 b = 128 b, matching the
// bank CAS width and the per-vault TSV transfer width (Table III).
const VecLanes = 4

// Reserved AddrRF locations (paper Sec. IV-E): A0–A3 hold the PE's
// peID, pgID, vaultID and chipID.
const (
	ARFPeID    = 0
	ARFPgID    = 1
	ARFVaultID = 2
	ARFChipID  = 3
	// ARFFirstFree is the first AddrRF register the compiler may allocate.
	ARFFirstFree = 4
)

// RegSpace identifies which register file a register reference names.
type RegSpace uint8

const (
	SpaceDRF RegSpace = iota // per-PE data register file (vector)
	SpaceARF                 // per-PE address register file (scalar)
	SpaceCRF                 // control core register file (scalar)
)

func (s RegSpace) String() string {
	switch s {
	case SpaceDRF:
		return "d"
	case SpaceARF:
		return "a"
	case SpaceCRF:
		return "c"
	}
	return "?"
}

// RegRef is a typed register reference used for hazard detection and
// liveness analysis.
type RegRef struct {
	Space RegSpace
	Index int
}

func (r RegRef) String() string { return fmt.Sprintf("%s%d", r.Space, r.Index) }

// Instruction is one decoded SIMB instruction. A single struct covers all
// formats; Validate reports which fields are meaningful for each opcode.
type Instruction struct {
	Op Opcode

	// comp fields.
	ALU  ALUOp
	Mode Mode

	// Register operands. Interpretation depends on Op:
	//   comp:      Dst/Src1/Src2 index DataRF
	//   calc_arf:  Dst/Src1/Src2 index AddrRF
	//   calc_crf:  Dst/Src1/Src2 index CtrlRF
	//   mov/rd/wr: Dst or Src1 as noted per opcode
	Dst, Src1, Src2 int

	// Imm is the immediate for seti_* and the optional immediate second
	// source for calc_arf/calc_crf (valid when HasImm).
	Imm    int64
	HasImm bool

	// ImmLabel, when >= 0, names a program label whose final instruction
	// index is materialized into Imm by Program.Finalize. Used by
	// seti_crf to load jump targets symbolically.
	ImmLabel int

	// Addr is a direct byte address into the bank / PGSM / VSM for data
	// movement instructions. When Indirect is set, Addr instead names an
	// AddrRF register holding the per-PE byte address (paper: indirect
	// addressing for dram_addr, pgsm_addr and vsm_addr).
	Addr     uint32
	Indirect bool

	// Second address for two-memory moves: st_pgsm/ld_pgsm carry both a
	// bank address (Addr/Indirect) and a PGSM address (Addr2/Indirect2).
	Addr2     uint32
	Indirect2 bool

	// Lane selects the DataRF vector lane for the scalar DRF↔ARF moves.
	Lane int

	// Masks. VecMask selects valid lanes within a vector (comp); SimbMask
	// bit i selects PE i of the vault (pgID*PEsPerPG + peID).
	VecMask  uint8
	SimbMask uint64

	// req routing fields: the remote bank to read from.
	DstChip, DstVault, DstPG, DstPE int

	// Control flow.
	Cond  int // cjump: CtrlRF register holding the condition
	Phase int // sync: phase id
}

// MaskAll returns a SimbMask selecting PEs [0, n).
func MaskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// VecMaskAll selects all VecLanes lanes.
const VecMaskAll uint8 = 1<<VecLanes - 1

// New returns an instruction with fields that default to "unset"
// (ImmLabel -1, full vector mask) so literal construction stays terse.
func New(op Opcode) Instruction {
	return Instruction{Op: op, ImmLabel: -1, VecMask: VecMaskAll}
}

// Validate checks structural well-formedness: operand indices in range
// for the given register file sizes and required fields present.
// drfSize/arfSize/crfSize are entry counts of the respective files.
func (in *Instruction) Validate(drfSize, arfSize, crfSize int) error {
	ck := func(idx, size int, what string) error {
		if idx < 0 || idx >= size {
			return fmt.Errorf("isa: %s: %s index %d out of range [0,%d)", in.Op, what, idx, size)
		}
		return nil
	}
	switch in.Op {
	case OpComp:
		if !in.ALU.ValidForComp() {
			return fmt.Errorf("isa: comp: invalid ALU op %v", in.ALU)
		}
		if err := ck(in.Dst, drfSize, "dst_drf"); err != nil {
			return err
		}
		if err := ck(in.Src1, drfSize, "src1_drf"); err != nil {
			return err
		}
		return ck(in.Src2, drfSize, "src2_drf")
	case OpCalcARF:
		if !in.ALU.ValidForCalc() {
			return fmt.Errorf("isa: calc_arf: invalid ALU op %v", in.ALU)
		}
		if err := ck(in.Dst, arfSize, "dst_arf"); err != nil {
			return err
		}
		if err := ck(in.Src1, arfSize, "src1_arf"); err != nil {
			return err
		}
		if in.HasImm {
			return nil
		}
		return ck(in.Src2, arfSize, "src2_arf")
	case OpCalcCRF:
		if !in.ALU.ValidForCalc() {
			return fmt.Errorf("isa: calc_crf: invalid ALU op %v", in.ALU)
		}
		if err := ck(in.Dst, crfSize, "dst_crf"); err != nil {
			return err
		}
		if err := ck(in.Src1, crfSize, "src1_crf"); err != nil {
			return err
		}
		if in.HasImm {
			return nil
		}
		return ck(in.Src2, crfSize, "src2_crf")
	case OpStRF, OpLdRF:
		if in.Indirect {
			if err := ck(int(in.Addr), arfSize, "dram_addr(arf)"); err != nil {
				return err
			}
		}
		return ck(in.Dst, drfSize, "drf_addr")
	case OpStPGSM, OpLdPGSM:
		if in.Indirect {
			if err := ck(int(in.Addr), arfSize, "dram_addr(arf)"); err != nil {
				return err
			}
		}
		if in.Indirect2 {
			return ck(int(in.Addr2), arfSize, "pgsm_addr(arf)")
		}
		return nil
	case OpRdPGSM, OpWrPGSM, OpRdVSM, OpWrVSM:
		if in.Indirect {
			if err := ck(int(in.Addr), arfSize, "mem_addr(arf)"); err != nil {
				return err
			}
		}
		return ck(in.Dst, drfSize, "drf_addr")
	case OpMovDRF, OpMovARF:
		srcSize, dstSize := drfSize, arfSize // mov_arf: DataRF -> AddrRF
		if in.Op == OpMovDRF {               // mov_drf: AddrRF -> DataRF
			srcSize, dstSize = arfSize, drfSize
		}
		if err := ck(in.Src1, srcSize, "src"); err != nil {
			return err
		}
		if err := ck(in.Dst, dstSize, "dst"); err != nil {
			return err
		}
		if in.Lane < 0 || in.Lane >= VecLanes {
			return fmt.Errorf("isa: %v: lane %d out of range", in.Op, in.Lane)
		}
		return nil
	case OpSetiVSM:
		return nil
	case OpReset:
		return ck(in.Dst, drfSize, "drf_addr")
	case OpReq:
		if in.DstChip < 0 || in.DstVault < 0 || in.DstPG < 0 || in.DstPE < 0 {
			return fmt.Errorf("isa: req: negative routing field")
		}
		return nil
	case OpJump:
		return ck(in.Src1, crfSize, "target_crf")
	case OpCJump:
		if err := ck(in.Cond, crfSize, "cond_crf"); err != nil {
			return err
		}
		return ck(in.Src1, crfSize, "target_crf")
	case OpSetiCRF:
		return ck(in.Dst, crfSize, "crf_addr")
	case OpSync:
		if in.Phase < 0 {
			return fmt.Errorf("isa: sync: negative phase id")
		}
		return nil
	}
	return fmt.Errorf("isa: invalid opcode %d", in.Op)
}

// Defs returns the register(s) written by the instruction. Memory
// side-effects are not registers and are handled separately.
func (in *Instruction) Defs() []RegRef {
	switch in.Op {
	case OpComp:
		return []RegRef{{SpaceDRF, in.Dst}}
	case OpCalcARF:
		return []RegRef{{SpaceARF, in.Dst}}
	case OpCalcCRF, OpSetiCRF:
		return []RegRef{{SpaceCRF, in.Dst}}
	case OpLdRF, OpRdPGSM, OpRdVSM, OpMovDRF, OpReset:
		return []RegRef{{SpaceDRF, in.Dst}}
	case OpMovARF:
		return []RegRef{{SpaceARF, in.Dst}}
	}
	return nil
}

// Uses returns the register(s) read by the instruction, including
// indirect-address registers and the accumulator read of mac.
func (in *Instruction) Uses() []RegRef {
	var uses []RegRef
	addIndirect := func() {
		if in.Indirect {
			uses = append(uses, RegRef{SpaceARF, int(in.Addr)})
		}
	}
	addIndirect2 := func() {
		if in.Indirect2 {
			uses = append(uses, RegRef{SpaceARF, int(in.Addr2)})
		}
	}
	switch in.Op {
	case OpComp:
		uses = append(uses, RegRef{SpaceDRF, in.Src1}, RegRef{SpaceDRF, in.Src2})
		if in.ALU.ReadsDst() {
			uses = append(uses, RegRef{SpaceDRF, in.Dst})
		}
	case OpCalcARF:
		uses = append(uses, RegRef{SpaceARF, in.Src1})
		if !in.HasImm {
			uses = append(uses, RegRef{SpaceARF, in.Src2})
		}
	case OpCalcCRF:
		uses = append(uses, RegRef{SpaceCRF, in.Src1})
		if !in.HasImm {
			uses = append(uses, RegRef{SpaceCRF, in.Src2})
		}
	case OpStRF:
		uses = append(uses, RegRef{SpaceDRF, in.Dst})
		addIndirect()
	case OpLdRF:
		addIndirect()
	case OpStPGSM, OpLdPGSM:
		addIndirect()
		addIndirect2()
	case OpRdPGSM, OpRdVSM:
		addIndirect()
	case OpWrPGSM, OpWrVSM:
		uses = append(uses, RegRef{SpaceDRF, in.Dst})
		addIndirect()
	case OpMovDRF:
		uses = append(uses, RegRef{SpaceARF, in.Src1})
	case OpMovARF:
		uses = append(uses, RegRef{SpaceDRF, in.Src1})
	case OpJump:
		uses = append(uses, RegRef{SpaceCRF, in.Src1})
	case OpCJump:
		uses = append(uses, RegRef{SpaceCRF, in.Cond}, RegRef{SpaceCRF, in.Src1})
	}
	return uses
}
