package isa

import (
	"math"
	"testing"
)

func TestOpcodeNamesRoundTrip(t *testing.T) {
	for op := OpComp; op < opEnd; op++ {
		got, ok := opcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("opcodeByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := opcodeByName("bogus"); ok {
		t.Error("opcodeByName accepted bogus name")
	}
	if _, ok := opcodeByName("invalid"); ok {
		t.Error("opcodeByName accepted the invalid sentinel")
	}
}

func TestALUOpNamesRoundTrip(t *testing.T) {
	for op := FAdd; op < aluEnd; op++ {
		got, ok := ALUOpByName(op.String())
		if !ok || got != op {
			t.Errorf("ALUOpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := ALUOpByName("frobnicate"); ok {
		t.Error("ALUOpByName accepted bogus name")
	}
}

func TestCategoryOfCoversAllOpcodes(t *testing.T) {
	for op := OpComp; op < opEnd; op++ {
		if c := CategoryOf(op); c >= NumCategories {
			t.Errorf("CategoryOf(%v) = %v (uncategorized)", op, c)
		}
	}
	if CategoryOf(OpComp) != CatComputation {
		t.Error("comp not in computation category")
	}
	if CategoryOf(OpCalcARF) != CatIndexCalc {
		t.Error("calc_arf not in index-calc category")
	}
	if CategoryOf(OpReq) != CatInterVault {
		t.Error("req not in inter-vault category")
	}
	if CategoryOf(OpSync) != CatSync {
		t.Error("sync not in sync category")
	}
}

func TestIsSIMBAndBankAccess(t *testing.T) {
	if !OpComp.IsSIMB() || !OpLdRF.IsSIMB() || !OpReset.IsSIMB() {
		t.Error("PE-broadcast opcodes not flagged IsSIMB")
	}
	for _, op := range []Opcode{OpSetiVSM, OpReq, OpJump, OpCJump, OpCalcCRF, OpSetiCRF, OpSync} {
		if op.IsSIMB() {
			t.Errorf("%v incorrectly flagged IsSIMB", op)
		}
	}
	if !OpLdRF.IsBankLoad() || !OpLdPGSM.IsBankLoad() {
		t.Error("bank loads not flagged")
	}
	if !OpStRF.IsBankStore() || !OpStPGSM.IsBankStore() {
		t.Error("bank stores not flagged")
	}
	if OpRdPGSM.AccessesBank() {
		t.Error("rd_pgsm flagged as bank access")
	}
}

func TestMaskAll(t *testing.T) {
	if MaskAll(0) != 0 {
		t.Error("MaskAll(0) != 0")
	}
	if MaskAll(4) != 0xF {
		t.Errorf("MaskAll(4) = %#x", MaskAll(4))
	}
	if MaskAll(32) != 0xFFFFFFFF {
		t.Errorf("MaskAll(32) = %#x", MaskAll(32))
	}
	if MaskAll(64) != ^uint64(0) {
		t.Errorf("MaskAll(64) = %#x", MaskAll(64))
	}
	if MaskAll(99) != ^uint64(0) {
		t.Errorf("MaskAll(99) = %#x", MaskAll(99))
	}
}

func TestEvalFArithmetic(t *testing.T) {
	cases := []struct {
		op      ALUOp
		a, b, d float32
		want    float32
	}{
		{FAdd, 2, 3, 0, 5},
		{FSub, 2, 3, 0, -1},
		{FMul, 2, 3, 0, 6},
		{FMac, 2, 3, 10, 16},
		{FDiv, 6, 3, 0, 2},
		{FMin, 2, 3, 0, 2},
		{FMax, 2, 3, 0, 3},
		{FAbs, -2.5, 0, 0, 2.5},
		{FCmpLT, 1, 2, 0, 1},
		{FCmpLT, 2, 1, 0, 0},
		{FCmpLE, 2, 2, 0, 1},
		{FFloor, 2.7, 0, 0, 2},
		{FFloor, -2.3, 0, 0, -3},
		{Mov, 9, 1, 0, 9},
	}
	for _, c := range cases {
		if got := EvalF(c.op, c.a, c.b, c.d); got != c.want {
			t.Errorf("EvalF(%v, %v, %v, %v) = %v, want %v", c.op, c.a, c.b, c.d, got, c.want)
		}
	}
}

func TestEvalIArithmetic(t *testing.T) {
	cases := []struct {
		op      ALUOp
		a, b, d int32
		want    int32
	}{
		{IAdd, 2, 3, 0, 5},
		{ISub, 2, 3, 0, -1},
		{IMul, 2, 3, 0, 6},
		{IMac, 2, 3, 10, 16},
		{IMin, -2, 3, 0, -2},
		{IMax, -2, 3, 0, 3},
		{ICmpLT, 1, 2, 0, 1},
		{ICmpLT, 2, 2, 0, 0},
		{ICmpEQ, 5, 5, 0, 1},
		{Shl, 1, 4, 0, 16},
		{Shr, -16, 1, 0, math.MaxInt32 - 7 + 0}, // logical shift of 0xFFFFFFF0
		{And, 0b1100, 0b1010, 0, 0b1000},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{CropLSB, 0x12345678, 0, 0, 0x5678},
		{CropMSB, 0x12345678, 0, 0, 0x1234},
		{Mov, 7, 0, 0, 7},
	}
	for _, c := range cases {
		if c.op == Shr {
			// logical shift right of 0xFFFFFFF0 by 1 = 0x7FFFFFF8
			if got := EvalI(Shr, -16, 1, 0); got != 0x7FFFFFF8 {
				t.Errorf("EvalI(shr,-16,1) = %#x, want 0x7FFFFFF8", uint32(got))
			}
			continue
		}
		if got := EvalI(c.op, c.a, c.b, c.d); got != c.want {
			t.Errorf("EvalI(%v, %v, %v, %v) = %v, want %v", c.op, c.a, c.b, c.d, got, c.want)
		}
	}
}

func TestEvalLaneConversions(t *testing.T) {
	minus7 := int32(-7)
	if got := EvalLane(I2F, uint32(minus7), 0, 0); math.Float32frombits(got) != -7 {
		t.Errorf("I2F(-7) = %v", math.Float32frombits(got))
	}
	if got := int32(EvalLane(F2I, math.Float32bits(3.9), 0, 0)); got != 3 {
		t.Errorf("F2I(3.9) = %d, want 3", got)
	}
	if got := int32(EvalLane(F2I, math.Float32bits(-3.9), 0, 0)); got != -3 {
		t.Errorf("F2I(-3.9) = %d, want -3", got)
	}
	if got := int32(EvalLane(F2I, math.Float32bits(float32(math.NaN())), 0, 0)); got != 0 {
		t.Errorf("F2I(NaN) = %d, want 0", got)
	}
	if got := int32(EvalLane(F2I, math.Float32bits(1e30), 0, 0)); got != math.MaxInt32 {
		t.Errorf("F2I(1e30) = %d, want MaxInt32", got)
	}
	if got := int32(EvalLane(F2I, math.Float32bits(-1e30), 0, 0)); got != math.MinInt32 {
		t.Errorf("F2I(-1e30) = %d, want MinInt32", got)
	}
	// Float path dispatch through EvalLane.
	got := EvalLane(FAdd, math.Float32bits(1.5), math.Float32bits(2.25), 0)
	if math.Float32frombits(got) != 3.75 {
		t.Errorf("EvalLane(fadd) = %v", math.Float32frombits(got))
	}
	// Int path dispatch through EvalLane.
	if got := EvalLane(IAdd, 7, 8, 0); got != 15 {
		t.Errorf("EvalLane(iadd) = %d", got)
	}
	// Mac reads accumulator through EvalLane.
	got = EvalLane(FMac, math.Float32bits(2), math.Float32bits(3), math.Float32bits(1))
	if math.Float32frombits(got) != 7 {
		t.Errorf("EvalLane(fmac) = %v", math.Float32frombits(got))
	}
}

func TestValidForCalcRejectsFloat(t *testing.T) {
	for _, op := range []ALUOp{FAdd, FMul, FMac, FDiv, I2F, F2I} {
		if op.ValidForCalc() {
			t.Errorf("%v accepted for scalar calc unit (must be INT only)", op)
		}
	}
	for _, op := range []ALUOp{IAdd, IMul, Shl, And, Mov, CropMSB} {
		if !op.ValidForCalc() {
			t.Errorf("%v rejected for scalar calc unit", op)
		}
	}
}

func TestInstructionValidate(t *testing.T) {
	comp := New(OpComp)
	comp.ALU = FAdd
	comp.Dst, comp.Src1, comp.Src2 = 1, 2, 3
	if err := comp.Validate(64, 64, 64); err != nil {
		t.Errorf("valid comp rejected: %v", err)
	}
	comp.Dst = 64
	if err := comp.Validate(64, 64, 64); err == nil {
		t.Error("out-of-range dst accepted")
	}

	calc := New(OpCalcARF)
	calc.ALU = IAdd
	calc.Dst, calc.Src1 = 5, 5
	calc.HasImm, calc.Imm = true, 16
	if err := calc.Validate(64, 64, 64); err != nil {
		t.Errorf("valid calc_arf rejected: %v", err)
	}
	calc.ALU = FAdd
	if err := calc.Validate(64, 64, 64); err == nil {
		t.Error("float op on calc_arf accepted")
	}

	ld := New(OpLdRF)
	ld.Dst = 3
	ld.Indirect = true
	ld.Addr = 70
	if err := ld.Validate(64, 64, 64); err == nil {
		t.Error("indirect address register out of range accepted")
	}
	ld.Addr = 5
	if err := ld.Validate(64, 64, 64); err != nil {
		t.Errorf("valid indirect ld_rf rejected: %v", err)
	}

	mov := New(OpMovARF)
	mov.Dst, mov.Src1, mov.Lane = 4, 2, 5
	if err := mov.Validate(64, 64, 64); err == nil {
		t.Error("lane out of range accepted")
	}
	mov.Lane = 2
	if err := mov.Validate(64, 64, 64); err != nil {
		t.Errorf("valid mov_arf rejected: %v", err)
	}

	bad := Instruction{Op: OpInvalid}
	if err := bad.Validate(64, 64, 64); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestDefsUses(t *testing.T) {
	comp := New(OpComp)
	comp.ALU = FMac
	comp.Dst, comp.Src1, comp.Src2 = 1, 2, 3
	defs := comp.Defs()
	if len(defs) != 1 || defs[0] != (RegRef{SpaceDRF, 1}) {
		t.Errorf("fmac defs = %v", defs)
	}
	uses := comp.Uses()
	// fmac reads src1, src2 AND dst.
	want := map[RegRef]bool{{SpaceDRF, 2}: true, {SpaceDRF, 3}: true, {SpaceDRF, 1}: true}
	if len(uses) != 3 {
		t.Fatalf("fmac uses = %v", uses)
	}
	for _, u := range uses {
		if !want[u] {
			t.Errorf("unexpected use %v", u)
		}
	}

	st := New(OpStRF)
	st.Dst = 7
	st.Indirect = true
	st.Addr = 9
	uses = st.Uses()
	if len(uses) != 2 {
		t.Fatalf("st_rf uses = %v", uses)
	}
	if st.Defs() != nil {
		t.Errorf("st_rf defs = %v, want none", st.Defs())
	}

	cj := New(OpCJump)
	cj.Cond, cj.Src1 = 1, 2
	uses = cj.Uses()
	if len(uses) != 2 || uses[0] != (RegRef{SpaceCRF, 1}) || uses[1] != (RegRef{SpaceCRF, 2}) {
		t.Errorf("cjump uses = %v", uses)
	}

	ld := New(OpLdPGSM)
	ld.Indirect, ld.Addr = true, 4
	ld.Indirect2, ld.Addr2 = true, 5
	uses = ld.Uses()
	if len(uses) != 2 {
		t.Errorf("ld_pgsm with two indirect addresses uses = %v", uses)
	}
}

func TestRegRefString(t *testing.T) {
	if (RegRef{SpaceDRF, 3}).String() != "d3" {
		t.Error("bad DRF ref string")
	}
	if (RegRef{SpaceARF, 0}).String() != "a0" {
		t.Error("bad ARF ref string")
	}
	if (RegRef{SpaceCRF, 12}).String() != "c12" {
		t.Error("bad CRF ref string")
	}
}

func TestProgramLabelsFinalize(t *testing.T) {
	p := &Program{}
	top := p.NewLabel()
	p.Bind(top)
	seti := New(OpSetiCRF)
	seti.Dst = 0
	seti.ImmLabel = top
	p.Append(seti)
	j := New(OpJump)
	j.Src1 = 0
	p.Append(j)
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if p.Ins[0].Imm != 0 {
		t.Errorf("label resolved to %d, want 0", p.Ins[0].Imm)
	}

	// Unbound label errors.
	q := &Program{}
	l := q.NewLabel()
	s := New(OpSetiCRF)
	s.ImmLabel = l
	q.Append(s)
	if err := q.Finalize(); err == nil {
		t.Error("Finalize accepted unbound label")
	}
}

func TestCountByCategory(t *testing.T) {
	p := &Program{}
	c := New(OpComp)
	c.ALU = FAdd
	p.Append(c)
	p.Append(New(OpCalcARF))
	p.Append(New(OpCalcARF))
	p.Append(New(OpLdRF))
	p.Append(New(OpSync))
	got := p.CountByCategory()
	if got[CatComputation] != 1 || got[CatIndexCalc] != 2 || got[CatIntraVault] != 1 || got[CatSync] != 1 {
		t.Errorf("CountByCategory = %v", got)
	}
}
