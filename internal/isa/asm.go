package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses SIMB assembly text into a Program. The grammar is the
// canonical form produced by Disassemble:
//
//	; comment
//	L0:                          ; label binding
//	comp fadd vv d2, d0, d1, vm=0xf, sm=*
//	calc_arf iadd a5, a5, #16, sm=*
//	calc_crf islt? -- see ops    c1, c0, #8
//	ld_rf d0, @a5, sm=*          ; indirect bank address from AddrRF
//	st_rf d2, 0x1000, sm=0x3
//	ld_pgsm 0x200, 0x40, sm=*    ; bank addr, pgsm addr
//	st_pgsm @a4, @a6, sm=*
//	rd_pgsm d1, 0x40, sm=*
//	wr_vsm d3, 0x80, sm=0x1
//	mov_arf a6, d3, lane=2, sm=*
//	seti_vsm 0x10, #42
//	reset d7, sm=*
//	req chip=0, vault=3, pg=1, pe=2, dram=0x100, vsm=0x20
//	seti_crf c2, =L0             ; label reference
//	seti_crf c3, #100
//	cjump c1, c2
//	jump c2
//	sync 1
//
// Masks: sm=* selects all 64 PEs; numeric masks may be hex or decimal.
// Labels are `name:` on their own line; names must match [A-Za-z_]\w*.
func Assemble(src string) (*Program, error) {
	p := &Program{}
	labelIDs := map[string]int{}
	labelOf := func(name string) int {
		if id, ok := labelIDs[name]; ok {
			return id
		}
		id := p.NewLabel()
		labelIDs[name] = id
		return id
	}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if !validLabelName(name) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", lineNo+1, name)
			}
			p.Bind(labelOf(name))
			continue
		}
		in, err := parseInstruction(line, labelOf)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", lineNo+1, err)
		}
		p.Append(in)
	}
	// Check all referenced labels were bound.
	for name, id := range labelIDs {
		if p.Labels[id] < 0 {
			return nil, fmt.Errorf("isa: label %q referenced but never bound", name)
		}
	}
	return p, nil
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

func parseInstruction(line string, labelOf func(string) int) (Instruction, error) {
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	if len(fields) == 0 {
		return Instruction{}, fmt.Errorf("empty instruction")
	}
	op, ok := opcodeByName(fields[0])
	if !ok {
		return Instruction{}, fmt.Errorf("unknown opcode %q", fields[0])
	}
	in := New(op)
	args := fields[1:]

	// Peel trailing key=value options (vm=, sm=, lane=) in any order.
	for len(args) > 0 {
		last := args[len(args)-1]
		switch {
		case strings.HasPrefix(last, "vm="):
			v, err := parseUint(last[3:], 8)
			if err != nil {
				return in, fmt.Errorf("bad vec mask %q: %v", last, err)
			}
			in.VecMask = uint8(v)
		case strings.HasPrefix(last, "sm="):
			if last[3:] == "*" {
				in.SimbMask = ^uint64(0)
			} else {
				v, err := parseUint(last[3:], 64)
				if err != nil {
					return in, fmt.Errorf("bad simb mask %q: %v", last, err)
				}
				in.SimbMask = v
			}
		case strings.HasPrefix(last, "lane="):
			v, err := strconv.Atoi(last[5:])
			if err != nil {
				return in, fmt.Errorf("bad lane %q: %v", last, err)
			}
			in.Lane = v
		default:
			goto optsDone
		}
		args = args[:len(args)-1]
	}
optsDone:

	reg := func(i int, prefix byte) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing operand %d", i)
		}
		s := args[i]
		if len(s) < 2 || s[0] != prefix {
			return 0, fmt.Errorf("operand %q: want %c-register", s, prefix)
		}
		return strconv.Atoi(s[1:])
	}
	// addr parses a direct numeric address or @aN indirect reference.
	addr := func(i int) (uint32, bool, error) {
		if i >= len(args) {
			return 0, false, fmt.Errorf("missing address operand %d", i)
		}
		s := args[i]
		if strings.HasPrefix(s, "@a") {
			n, err := strconv.Atoi(s[2:])
			return uint32(n), true, err
		}
		v, err := parseUint(s, 32)
		return uint32(v), false, err
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("missing immediate operand %d", i)
		}
		s := args[i]
		if !strings.HasPrefix(s, "#") {
			return 0, fmt.Errorf("operand %q: want #immediate", s)
		}
		return strconv.ParseInt(s[1:], 0, 64)
	}
	kv := func(i int, key string) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("missing %s=", key)
		}
		if !strings.HasPrefix(args[i], key+"=") {
			return "", fmt.Errorf("operand %q: want %s=", args[i], key)
		}
		return args[i][len(key)+1:], nil
	}

	var err error
	fail := func(e error) (Instruction, error) { return in, e }

	switch op {
	case OpComp:
		if len(args) < 5 {
			return fail(fmt.Errorf("comp needs <aluop> <mode> d,d,d"))
		}
		alu, ok := ALUOpByName(args[0])
		if !ok {
			return fail(fmt.Errorf("unknown alu op %q", args[0]))
		}
		in.ALU = alu
		switch args[1] {
		case "vv":
			in.Mode = ModeVV
		case "vs":
			in.Mode = ModeVS
		default:
			return fail(fmt.Errorf("unknown comp mode %q", args[1]))
		}
		if in.Dst, err = reg(2, 'd'); err != nil {
			return fail(err)
		}
		if in.Src1, err = reg(3, 'd'); err != nil {
			return fail(err)
		}
		if in.Src2, err = reg(4, 'd'); err != nil {
			return fail(err)
		}
	case OpCalcARF, OpCalcCRF:
		pfx := byte('a')
		if op == OpCalcCRF {
			pfx = 'c'
		}
		if len(args) < 4 {
			return fail(fmt.Errorf("%s needs <aluop> r,r,(r|#imm)", op))
		}
		alu, ok := ALUOpByName(args[0])
		if !ok {
			return fail(fmt.Errorf("unknown alu op %q", args[0]))
		}
		in.ALU = alu
		if in.Dst, err = reg(1, pfx); err != nil {
			return fail(err)
		}
		if in.Src1, err = reg(2, pfx); err != nil {
			return fail(err)
		}
		if strings.HasPrefix(args[3], "#") {
			if in.Imm, err = imm(3); err != nil {
				return fail(err)
			}
			in.HasImm = true
		} else if in.Src2, err = reg(3, pfx); err != nil {
			return fail(err)
		}
	case OpStRF, OpLdRF:
		if in.Dst, err = reg(0, 'd'); err != nil {
			return fail(err)
		}
		if in.Addr, in.Indirect, err = addr(1); err != nil {
			return fail(err)
		}
	case OpStPGSM, OpLdPGSM:
		if in.Addr, in.Indirect, err = addr(0); err != nil {
			return fail(err)
		}
		if in.Addr2, in.Indirect2, err = addr(1); err != nil {
			return fail(err)
		}
	case OpRdPGSM, OpWrPGSM, OpRdVSM, OpWrVSM:
		if in.Dst, err = reg(0, 'd'); err != nil {
			return fail(err)
		}
		if in.Addr, in.Indirect, err = addr(1); err != nil {
			return fail(err)
		}
	case OpMovDRF:
		if in.Dst, err = reg(0, 'd'); err != nil {
			return fail(err)
		}
		if in.Src1, err = reg(1, 'a'); err != nil {
			return fail(err)
		}
	case OpMovARF:
		if in.Dst, err = reg(0, 'a'); err != nil {
			return fail(err)
		}
		if in.Src1, err = reg(1, 'd'); err != nil {
			return fail(err)
		}
	case OpSetiVSM:
		if in.Addr, _, err = addr(0); err != nil {
			return fail(err)
		}
		if in.Imm, err = imm(1); err != nil {
			return fail(err)
		}
	case OpReset:
		if in.Dst, err = reg(0, 'd'); err != nil {
			return fail(err)
		}
	case OpReq:
		var s string
		if s, err = kv(0, "chip"); err != nil {
			return fail(err)
		}
		if in.DstChip, err = strconv.Atoi(s); err != nil {
			return fail(err)
		}
		if s, err = kv(1, "vault"); err != nil {
			return fail(err)
		}
		if in.DstVault, err = strconv.Atoi(s); err != nil {
			return fail(err)
		}
		if s, err = kv(2, "pg"); err != nil {
			return fail(err)
		}
		if in.DstPG, err = strconv.Atoi(s); err != nil {
			return fail(err)
		}
		if s, err = kv(3, "pe"); err != nil {
			return fail(err)
		}
		if in.DstPE, err = strconv.Atoi(s); err != nil {
			return fail(err)
		}
		if s, err = kv(4, "dram"); err != nil {
			return fail(err)
		}
		var v uint64
		if v, err = parseUint(s, 32); err != nil {
			return fail(err)
		}
		in.Addr = uint32(v)
		if s, err = kv(5, "vsm"); err != nil {
			return fail(err)
		}
		if v, err = parseUint(s, 32); err != nil {
			return fail(err)
		}
		in.Addr2 = uint32(v)
	case OpJump:
		if in.Src1, err = reg(0, 'c'); err != nil {
			return fail(err)
		}
	case OpCJump:
		if in.Cond, err = reg(0, 'c'); err != nil {
			return fail(err)
		}
		if in.Src1, err = reg(1, 'c'); err != nil {
			return fail(err)
		}
	case OpSetiCRF:
		if in.Dst, err = reg(0, 'c'); err != nil {
			return fail(err)
		}
		if len(args) < 2 {
			return fail(fmt.Errorf("seti_crf needs value"))
		}
		if strings.HasPrefix(args[1], "=") {
			name := args[1][1:]
			if !validLabelName(name) {
				return fail(fmt.Errorf("bad label reference %q", args[1]))
			}
			in.ImmLabel = labelOf(name)
		} else if in.Imm, err = imm(1); err != nil {
			return fail(err)
		}
	case OpSync:
		if len(args) < 1 {
			return fail(fmt.Errorf("sync needs phase id"))
		}
		if in.Phase, err = strconv.Atoi(args[0]); err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("unhandled opcode %v", op))
	}
	return in, nil
}

func parseUint(s string, bits int) (uint64, error) {
	return strconv.ParseUint(s, 0, bits)
}

func opcodeByName(name string) (Opcode, bool) {
	for op, n := range opNames {
		if n == name && Opcode(op) != OpInvalid {
			return Opcode(op), true
		}
	}
	return OpInvalid, false
}
