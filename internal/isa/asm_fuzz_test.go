package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble fuzzes the assemble → disassemble → assemble round trip:
// any source the assembler accepts must disassemble to canonical text
// that (a) reassembles without error and (b) is a fixpoint — its own
// disassembly — with the same instruction count. This is the property
// TestDisassembleAssembleFixpoint pins for the hand-written fixture,
// extended to arbitrary inputs; `go test` exercises the seed corpus,
// `go test -fuzz=FuzzAssemble ./internal/isa` explores beyond it.
func FuzzAssemble(f *testing.F) {
	// Seed with the every-opcode fixture as a whole and line by line,
	// so the fuzzer starts from each instruction form individually.
	f.Add(sampleProgram)
	for _, line := range strings.Split(sampleProgram, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			f.Add(line + "\n")
		}
	}
	// Syntax corners from the hand-written tests: comments, blank
	// lines, labels, and near-miss errors for coverage of the reject
	// paths.
	f.Add("\n; pure comment\n\n  sync 0 ; trailing comment\n\n")
	f.Add("top:\nseti_crf c0, =top\njump c0\n")
	f.Add("comp fadd vv d1, d2, d3, sm=zz\n")
	f.Add("req chip=0, vault=1\n")
	f.Add("ld_rf d1, @a4, sm=*\nld_rf d1, 0x1000, sm=0x3\n")

	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		text1 := Disassemble(p)
		q, err := Assemble(text1)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n--- source ---\n%s\n--- disassembly ---\n%s",
				err, src, text1)
		}
		if len(q.Ins) != len(p.Ins) {
			t.Fatalf("round trip changed instruction count: %d -> %d\n--- disassembly ---\n%s",
				len(p.Ins), len(q.Ins), text1)
		}
		text2 := Disassemble(q)
		if text1 != text2 {
			t.Fatalf("disassembly is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
		}
	})
}
