package isa

import "fmt"

// Program is a sequence of SIMB instructions plus a symbolic label table.
//
// Labels decouple control-flow targets from instruction positions so the
// compiler's instruction-reordering pass can move code without breaking
// branches: a seti_crf whose ImmLabel >= 0 receives the label's final
// instruction index when Finalize runs.
type Program struct {
	Ins []Instruction

	// Labels maps label id -> instruction index. Label ids are dense
	// small integers handed out by NewLabel.
	Labels []int

	// Name is a human-readable program name (workload/stage).
	Name string
}

// NewLabel allocates a fresh label id, initially unbound.
func (p *Program) NewLabel() int {
	p.Labels = append(p.Labels, -1)
	return len(p.Labels) - 1
}

// Bind points label id at the next instruction to be appended.
func (p *Program) Bind(id int) {
	p.Labels[id] = len(p.Ins)
}

// BindAt points label id at an explicit instruction index.
func (p *Program) BindAt(id, index int) {
	p.Labels[id] = index
}

// Append adds an instruction and returns its index.
func (p *Program) Append(in Instruction) int {
	p.Ins = append(p.Ins, in)
	return len(p.Ins) - 1
}

// Finalize materializes label references: every instruction with
// ImmLabel >= 0 gets Imm = Labels[ImmLabel]. It errors on unbound or
// out-of-range labels.
func (p *Program) Finalize() error {
	for i := range p.Ins {
		l := p.Ins[i].ImmLabel
		if l < 0 {
			continue
		}
		if l >= len(p.Labels) {
			return fmt.Errorf("isa: instruction %d references unknown label %d", i, l)
		}
		tgt := p.Labels[l]
		if tgt < 0 || tgt > len(p.Ins) {
			return fmt.Errorf("isa: label %d unbound or out of range (%d)", l, tgt)
		}
		p.Ins[i].Imm = int64(tgt)
	}
	return nil
}

// Validate checks every instruction against the given register file sizes.
func (p *Program) Validate(drfSize, arfSize, crfSize int) error {
	for i := range p.Ins {
		if err := p.Ins[i].Validate(drfSize, arfSize, crfSize); err != nil {
			return fmt.Errorf("isa: instruction %d: %w", i, err)
		}
	}
	return nil
}

// Clone deep-copies the program.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name}
	q.Ins = append([]Instruction(nil), p.Ins...)
	q.Labels = append([]int(nil), p.Labels...)
	return q
}

// CountByCategory tallies instructions per paper Fig. 11 category.
func (p *Program) CountByCategory() [NumCategories]int {
	var c [NumCategories]int
	for i := range p.Ins {
		c[CategoryOf(p.Ins[i].Op)]++
	}
	return c
}
