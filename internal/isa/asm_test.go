package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const sampleProgram = `
; blur inner-loop fragment exercising every opcode
top:
seti_crf c0, =top
seti_crf c1, #8
calc_crf iadd c2, c1, #1
calc_crf isub c3, c2, c1
calc_arf iadd a4, a0, #64, sm=*
calc_arf imul a5, a4, a1, sm=0xff
ld_rf d0, @a4, sm=*
ld_rf d1, 0x1000, sm=0x3
comp fadd vv d2, d0, d1, vm=0xf, sm=*
comp fmul vs d3, d2, d1, vm=0x7, sm=0xffff
comp fmac vv d3, d0, d1, vm=0xf, sm=*
ld_pgsm 0x200, 0x40, sm=*
st_pgsm @a4, @a5, sm=*
rd_pgsm d4, 0x40, sm=*
wr_pgsm d4, 0x60, sm=*
rd_vsm d5, 0x80, sm=*
wr_vsm d5, 0x90, sm=0x1
mov_arf a6, d3, lane=2, sm=*
mov_drf d6, a6, lane=0, sm=*
seti_vsm 0x10, #42
reset d7, sm=*
st_rf d2, @a4, sm=*
req chip=0, vault=3, pg=1, pe=2, dram=0x100, vsm=0x20
cjump c3, c0
jump c0
sync 1
`

func TestAssembleSampleProgram(t *testing.T) {
	p, err := Assemble(sampleProgram)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Ins) != 26 {
		t.Fatalf("assembled %d instructions, want 26", len(p.Ins))
	}
	if err := p.Validate(64, 64, 64); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	// seti_crf c0, =top must resolve to instruction index 0.
	if p.Ins[0].Imm != 0 {
		t.Errorf("label target = %d, want 0", p.Ins[0].Imm)
	}
	// Spot-check a few parses.
	if p.Ins[4].Op != OpCalcARF || !p.Ins[4].HasImm || p.Ins[4].Imm != 64 || p.Ins[4].SimbMask != ^uint64(0) {
		t.Errorf("calc_arf parse wrong: %+v", p.Ins[4])
	}
	if p.Ins[6].Op != OpLdRF || !p.Ins[6].Indirect || p.Ins[6].Addr != 4 {
		t.Errorf("indirect ld_rf parse wrong: %+v", p.Ins[6])
	}
	if p.Ins[7].Indirect || p.Ins[7].Addr != 0x1000 || p.Ins[7].SimbMask != 0x3 {
		t.Errorf("direct ld_rf parse wrong: %+v", p.Ins[7])
	}
	if p.Ins[9].Mode != ModeVS || p.Ins[9].VecMask != 0x7 {
		t.Errorf("comp vs parse wrong: %+v", p.Ins[9])
	}
	rq := p.Ins[22]
	if rq.Op != OpReq || rq.DstChip != 0 || rq.DstVault != 3 || rq.DstPG != 1 || rq.DstPE != 2 ||
		rq.Addr != 0x100 || rq.Addr2 != 0x20 {
		t.Errorf("req parse wrong: %+v", rq)
	}
	if p.Ins[25].Op != OpSync || p.Ins[25].Phase != 1 {
		t.Errorf("sync parse wrong: %+v", p.Ins[25])
	}
}

func TestDisassembleAssembleFixpoint(t *testing.T) {
	p, err := Assemble(sampleProgram)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	text1 := Disassemble(p)
	q, err := Assemble(text1)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text1)
	}
	text2 := Disassemble(q)
	if text1 != text2 {
		t.Fatalf("disassembly not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
	// Semantic equivalence: finalize both and compare resolved streams.
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := q.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(p.Ins) != len(q.Ins) {
		t.Fatalf("length mismatch %d vs %d", len(p.Ins), len(q.Ins))
	}
	for i := range p.Ins {
		a, b := p.Ins[i], q.Ins[i]
		a.ImmLabel, b.ImmLabel = -1, -1 // label ids may be renumbered
		if !reflect.DeepEqual(a, b) {
			t.Errorf("instruction %d differs:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus_op d1, d2",
		"comp fadd vv d1, d2",            // missing operand
		"comp nosuch vv d1, d2, d3",      // bad alu op
		"comp fadd diag d1, d2, d3",      // bad mode
		"comp fadd vv a1, d2, d3",        // wrong register class
		"calc_arf fadd a1, a2, a3",       // float op accepted only by comp
		"ld_rf d1, zzz",                  // unparseable address
		"mov_arf a1, d2, lane=x",         // bad lane
		"seti_crf c1, =9bad",             // bad label name
		"seti_crf c1, =nowhere",          // unbound label
		"sync many",                      // non-numeric phase
		"req chip=0, vault=1",            // missing req fields
		"comp fadd vv d1, d2, d3, sm=zz", // bad mask
		"1label:",                        // invalid label binding
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			// calc_arf with float op assembles (parse-level) but must fail Validate.
			if strings.HasPrefix(src, "calc_arf fadd") {
				p, _ := Assemble(src)
				if p != nil {
					if err := p.Validate(64, 64, 64); err != nil {
						continue
					}
				}
			}
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble("\n; pure comment\n\n  sync 0 ; trailing comment\n\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Ins) != 1 || p.Ins[0].Op != OpSync {
		t.Fatalf("parsed %+v", p.Ins)
	}
}

// randomInstruction builds a structurally valid random instruction for
// codec property tests.
func randomInstruction(r *rand.Rand) Instruction {
	ops := []Opcode{OpComp, OpCalcARF, OpStRF, OpLdRF, OpStPGSM, OpLdPGSM,
		OpRdPGSM, OpWrPGSM, OpRdVSM, OpWrVSM, OpMovDRF, OpMovARF,
		OpSetiVSM, OpReset, OpReq, OpJump, OpCJump, OpCalcCRF, OpSetiCRF, OpSync}
	in := New(ops[r.Intn(len(ops))])
	in.ALU = ALUOp(1 + r.Intn(NumALUOps))
	in.Mode = Mode(r.Intn(2))
	in.Dst = r.Intn(64)
	in.Src1 = r.Intn(64)
	in.Src2 = r.Intn(64)
	in.Imm = int64(int32(r.Uint32()))
	in.HasImm = r.Intn(2) == 0
	in.Addr = r.Uint32() >> 8
	in.Indirect = r.Intn(2) == 0
	in.Addr2 = r.Uint32() >> 8
	in.Indirect2 = r.Intn(2) == 0
	in.Lane = r.Intn(VecLanes)
	in.VecMask = uint8(r.Intn(16))
	in.SimbMask = r.Uint64()
	in.DstChip = r.Intn(8)
	in.DstVault = r.Intn(16)
	in.DstPG = r.Intn(8)
	in.DstPE = r.Intn(4)
	in.Cond = r.Intn(64)
	in.Phase = r.Intn(1 << 15)
	if r.Intn(4) == 0 {
		in.ImmLabel = r.Intn(16)
	}
	return in
}

func TestEncodeDecodeInstructionQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		in := randomInstruction(r)
		var buf [InstructionSize]byte
		EncodeInstruction(&in, buf[:])
		out, err := DecodeInstruction(buf[:])
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		if !reflect.DeepEqual(in, out) {
			t.Logf("mismatch:\n in=%+v\nout=%+v", in, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	p, err := Assemble(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	data := EncodeProgram(p)
	q, err := DecodeProgram(data)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if !reflect.DeepEqual(p.Ins, q.Ins) {
		t.Fatal("instruction streams differ after codec round trip")
	}
	if !reflect.DeepEqual(p.Labels, q.Labels) {
		t.Fatalf("label tables differ: %v vs %v", p.Labels, q.Labels)
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram([]byte{1, 2, 3}); err == nil {
		t.Error("short header accepted")
	}
	p, _ := Assemble("sync 0")
	data := EncodeProgram(p)
	data[0] ^= 0xFF
	if _, err := DecodeProgram(data); err == nil {
		t.Error("bad magic accepted")
	}
	data[0] ^= 0xFF
	if _, err := DecodeProgram(data[:len(data)-4]); err == nil {
		t.Error("truncated program accepted")
	}
	// Corrupt an opcode byte.
	data2 := EncodeProgram(p)
	data2[16] = 0xEE // first instruction record starts after header+labels (no labels here)
	if _, err := DecodeProgram(data2); err == nil {
		t.Error("invalid opcode accepted")
	}
}

func TestDecodeInstructionShortBuffer(t *testing.T) {
	if _, err := DecodeInstruction(make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestProgramClone(t *testing.T) {
	p, _ := Assemble(sampleProgram)
	q := p.Clone()
	q.Ins[0].Dst = 63
	q.Labels[0] = 99
	if p.Ins[0].Dst == 63 || p.Labels[0] == 99 {
		t.Fatal("Clone shares storage with original")
	}
}
