package cliutil

import (
	"os"
	"strings"
	"testing"

	"ipim"
)

func TestLookupResolves(t *testing.T) {
	got, err := Lookup("color", "red", map[string]int{"red": 1, "green": 2})
	if err != nil || got != 1 {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
}

func TestLookupUnknownListsChoicesSorted(t *testing.T) {
	_, err := Lookup("color", "mauve", map[string]int{"red": 1, "green": 2, "blue": 3})
	if err == nil {
		t.Fatal("unknown value accepted")
	}
	msg := err.Error()
	for _, want := range []string{"-color", `"mauve"`, "blue, green, red"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

func TestCheckMatchesLookupShape(t *testing.T) {
	if err := Check("exp", "fig6", []string{"fig1", "fig6"}); err != nil {
		t.Fatalf("valid value rejected: %v", err)
	}
	err := Check("exp", "fig99", []string{"fig6", "fig1"})
	if err == nil {
		t.Fatal("unknown value accepted")
	}
	if msg := err.Error(); !strings.Contains(msg, `-exp value "fig99" (valid: fig1, fig6)`) {
		t.Errorf("error %q not in canonical shape", msg)
	}
}

func TestSeed(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want uint64
	}{
		{"0", 0},
		{"12345", 12345},
		{"0x7E57", 0x7E57},
		{"0X7E57", 0x7E57},
		{"0xdeadbeef", 0xdeadbeef},
		{"0XDEADBEEF", 0xdeadbeef},
		{"0xDeAdBeEf", 0xdeadbeef},
		{"0XdeadBEEF", 0xdeadbeef},
		{"18446744073709551615", ^uint64(0)},
	} {
		got, err := Seed("seed", tc.in)
		if err != nil || got != tc.want {
			t.Errorf("Seed(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "-1", "7e57", "0x", "0X", "seed", "1.5"} {
		_, err := Seed("seed", bad)
		if err == nil {
			t.Errorf("Seed(%q) accepted", bad)
			continue
		}
		if msg := err.Error(); !strings.Contains(msg, "-seed") || !strings.Contains(msg, bad) {
			t.Errorf("Seed(%q) error %q not in canonical shape", bad, msg)
		}
	}
}

// Every domain resolver must accept its full advertised choice set and
// reject garbage with the listing error.
func TestDomainResolvers(t *testing.T) {
	for _, name := range []string{"opt", "baseline1", "baseline2", "baseline3", "baseline4"} {
		if _, err := Options(name); err != nil {
			t.Errorf("Options(%q): %v", name, err)
		}
	}
	if _, err := Options("turbo"); err == nil || !strings.Contains(err.Error(), "baseline4") {
		t.Errorf("Options error does not list choices: %v", err)
	}

	for _, wl := range ipim.Workloads() {
		if _, err := Workload(wl.Name); err != nil {
			t.Errorf("Workload(%q): %v", wl.Name, err)
		}
	}
	if _, err := Workload("Nope"); err == nil || !strings.Contains(err.Error(), "GaussianBlur") {
		t.Errorf("Workload error does not list choices: %v", err)
	}

	for _, name := range []string{"pcie3", "pcie5"} {
		if _, err := Bus(name); err != nil {
			t.Errorf("Bus(%q): %v", name, err)
		}
	}
	if _, err := Bus("isa"); err == nil || !strings.Contains(err.Error(), "pcie3, pcie5") {
		t.Errorf("Bus error does not list choices: %v", err)
	}
}

func TestCheckpointInterval(t *testing.T) {
	// Unset interval with checkpointing off stays off.
	if got, err := CheckpointInterval(0, "", "checkpoint"); err != nil || got != 0 {
		t.Errorf("CheckpointInterval(0, off) = %d, %v; want 0, nil", got, err)
	}
	// Unset interval with checkpointing on resolves to every barrier.
	if got, err := CheckpointInterval(0, "run.ckpt", "checkpoint"); err != nil || got != 1 {
		t.Errorf("CheckpointInterval(0, on) = %d, %v; want 1, nil", got, err)
	}
	// Explicit interval passes through.
	if got, err := CheckpointInterval(500, "run.ckpt", "checkpoint"); err != nil || got != 500 {
		t.Errorf("CheckpointInterval(500, on) = %d, %v; want 500, nil", got, err)
	}
	// Interval without the enabling flag is a usage error naming it.
	if _, err := CheckpointInterval(500, "", "checkpoint-dir"); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Errorf("CheckpointInterval(500, off) error = %v; want mention of -checkpoint-dir", err)
	}
	// Negative intervals are rejected.
	if _, err := CheckpointInterval(-1, "run.ckpt", "checkpoint"); err == nil || !strings.Contains(err.Error(), "-checkpoint-every") {
		t.Errorf("CheckpointInterval(-1) error = %v; want rejection", err)
	}
}

func TestResumeFile(t *testing.T) {
	if err := ResumeFile(""); err != nil {
		t.Errorf("ResumeFile(\"\") = %v; want nil", err)
	}
	dir := t.TempDir()
	if err := ResumeFile(dir); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Errorf("ResumeFile(dir) = %v; want directory rejection", err)
	}
	if err := ResumeFile(dir + "/missing.ckpt"); err == nil {
		t.Error("ResumeFile(missing) = nil; want error")
	}
	f := dir + "/run.ckpt"
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ResumeFile(f); err != nil {
		t.Errorf("ResumeFile(file) = %v; want nil", err)
	}
}
