// Package cliutil centralizes flag-choice validation for the iPIM
// command-line tools. Every binary that takes an enumerated flag
// (-opts, -workload, -config, -bus, -exp) resolves it here, so an
// unknown value always produces the same error shape: non-zero exit
// via the caller's log.Fatal, with the rejected value and the full
// list of valid choices in the message.
package cliutil

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ipim"
	"ipim/internal/host"
)

// Lookup resolves value in the choice table. An unknown value returns
// the canonical error: flag name, rejected value, and every valid
// choice in sorted order.
func Lookup[T any](flagName, value string, choices map[string]T) (T, error) {
	if v, ok := choices[value]; ok {
		return v, nil
	}
	var zero T
	return zero, fmt.Errorf("unknown -%s value %q (valid: %s)",
		flagName, value, strings.Join(Names(choices), ", "))
}

// Check verifies value is one of choices, for flags whose resolution
// happens elsewhere; the error matches Lookup's.
func Check(flagName, value string, choices []string) error {
	for _, c := range choices {
		if value == c {
			return nil
		}
	}
	sorted := append([]string(nil), choices...)
	sort.Strings(sorted)
	return fmt.Errorf("unknown -%s value %q (valid: %s)",
		flagName, value, strings.Join(sorted, ", "))
}

// Names returns the table's keys in sorted order.
func Names[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Seed resolves a -seed flag value: a non-negative 64-bit integer in
// decimal or hex with a 0x/0X prefix (either case, as strconv and C
// both accept). The error shape matches Lookup's.
func Seed(flagName, value string) (uint64, error) {
	digits, base := value, 10
	if strings.HasPrefix(value, "0x") || strings.HasPrefix(value, "0X") {
		digits, base = value[2:], 16
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad -%s value %q (want a uint64, decimal or 0x hex)", flagName, value)
	}
	return v, nil
}

// Options resolves the -opts compiler-configuration flag (the paper's
// Sec. VII-E1 presets).
func Options(value string) (ipim.Options, error) {
	return Lookup("opts", value, map[string]ipim.Options{
		"opt":       ipim.Opt,
		"baseline1": ipim.Baseline1,
		"baseline2": ipim.Baseline2,
		"baseline3": ipim.Baseline3,
		"baseline4": ipim.Baseline4,
	})
}

// Workload resolves the -workload flag against the Table II suite.
func Workload(value string) (ipim.Workload, error) {
	table := make(map[string]ipim.Workload)
	for _, wl := range ipim.Workloads() {
		table[wl.Name] = wl
	}
	return Lookup("workload", value, table)
}

// CheckpointInterval validates a -checkpoint-every flag against the
// flag that enables checkpointing (-checkpoint for ipim-run,
// -checkpoint-dir for ipim-serve): the interval must be non-negative,
// a non-zero interval requires the target flag, and an unset interval
// (0) resolves to 1 — a checkpoint at every covered barrier — when
// checkpointing is on.
func CheckpointInterval(every int64, target, targetFlag string) (int64, error) {
	if every < 0 {
		return 0, fmt.Errorf("bad -checkpoint-every value %d (want a non-negative cycle count)", every)
	}
	if every > 0 && target == "" {
		return 0, fmt.Errorf("-checkpoint-every requires -%s", targetFlag)
	}
	if target != "" && every == 0 {
		every = 1
	}
	return every, nil
}

// ResumeFile validates a -resume flag value: empty is "no resume";
// otherwise the checkpoint file must exist and be a regular file (the
// restore itself then validates format, version, CRC and machine
// configuration).
func ResumeFile(value string) error {
	if value == "" {
		return nil
	}
	fi, err := os.Stat(value)
	if err != nil {
		return fmt.Errorf("bad -resume value %q: %v", value, err)
	}
	if fi.IsDir() {
		return fmt.Errorf("bad -resume value %q: is a directory, want a checkpoint file", value)
	}
	return nil
}

// Bus resolves the -bus modeled-host-attachment flag.
func Bus(value string) (host.Bus, error) {
	return Lookup("bus", value, map[string]host.Bus{
		"pcie3": host.PCIe3x16(),
		"pcie5": host.PCIe5x16(),
	})
}
