package exp

import (
	"ipim/internal/compiler"
	"ipim/internal/sim"
)

// Stalls is a diagnostic table (not a paper figure): the fraction of
// cycles lost to each stall reason plus the TSV bus utilization, per
// workload. Used to analyze where the simulated vault spends time.
func (c *Context) Stalls() (*Table, error) {
	t := &Table{
		Name: "stalls", Title: "stall cycle breakdown (% of cycles) and TSV utilization",
		Columns: []string{"data%", "queue%", "dramQ%", "branch%", "sync%", "ifetch%", "tsv%", "IPC"},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		cyc := float64(r.stats.Cycles)
		row := Row{Label: wl.Name}
		for reason := sim.StallReason(0); reason < sim.NumStallReasons; reason++ {
			row.Values = append(row.Values, float64(r.stats.StallCycles[reason])/cyc*100)
		}
		row.Values = append(row.Values,
			float64(r.stats.TSVBeats)/cyc*100,
			r.stats.IPC())
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
