package exp

import (
	"math"
	"strings"
	"testing"

	"ipim/internal/sim"
)

// quickContext shrinks images as far as the tile distribution allows so
// the full experiment matrix stays fast in unit tests.
func quickContext() *Context {
	c := NewContext()
	c.SizeDiv = 16
	return c
}

func TestFig1Shape(t *testing.T) {
	tb, err := quickContext().Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("fig1 has %d rows, want 10", len(tb.Rows))
	}
	// Bandwidth-bound average DRAM utilization near the paper's 57.55%,
	// with Histogram the pathological outlier.
	var hist, others float64
	n := 0.0
	for _, r := range tb.Rows {
		if r.Label == "Histogram" {
			hist = r.Values[1]
			continue
		}
		others += r.Values[1]
		n++
	}
	if avg := others / n; avg < 40 || avg > 60 {
		t.Errorf("avg DRAM util %v%%, want near 57.55%%", avg)
	}
	if hist > 20 {
		t.Errorf("Histogram DRAM util %v%%, want pathological (<20%%)", hist)
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	c := quickContext()
	tb, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		for _, r := range tb.Rows {
			if r.Label == name {
				return r.Values[2]
			}
		}
		t.Fatalf("row %q missing", name)
		return 0
	}
	// Paper shape: every workload wins; Brighten and Histogram are the
	// big winners; StencilChain is the weakest.
	for _, r := range tb.Rows {
		if r.Values[2] <= 1 {
			t.Errorf("%s: speedup %v <= 1", r.Label, r.Values[2])
		}
	}
	if get("Histogram") < 3*get("GaussianBlur") {
		t.Errorf("Histogram (%v) should far exceed blur (%v)", get("Histogram"), get("GaussianBlur"))
	}
	if get("Brighten") < get("GaussianBlur") {
		t.Errorf("Brighten (%v) should exceed blur (%v)", get("Brighten"), get("GaussianBlur"))
	}
	if get("StencilChain") > get("Brighten") {
		t.Errorf("StencilChain (%v) should be among the weakest", get("StencilChain"))
	}
	if avg := tb.Mean(2); avg < 3 {
		t.Errorf("average speedup %v too low for the paper's 11.02x shape", avg)
	}
}

func TestFig7EnergySavings(t *testing.T) {
	tb, err := quickContext().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		// At the shrunken quick-test scale, fixed per-stage overheads
		// (syncs, prologues, halo exchange) weigh heaviest on the
		// 32-stage chain; allow it to dip slightly below break-even
		// here. Full bench sizes (EXPERIMENTS.md) are the real check.
		if r.Values[2] <= -30 || r.Values[2] >= 100 {
			t.Errorf("%s: energy saving %v%% implausible", r.Label, r.Values[2])
		}
	}
	if avg := tb.Mean(2); avg < 50 {
		t.Errorf("average saving %v%%, paper reports 79.49%%", avg)
	}
}

func TestFig8PonB(t *testing.T) {
	tb, err := quickContext().Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Values[2] < 1 {
			t.Errorf("%s: near-bank not faster than PonB (%vx)", r.Label, r.Values[2])
		}
	}
	if avg := tb.Mean(2); avg < 1.5 {
		t.Errorf("average PonB speedup %vx, paper reports 3.61x", avg)
	}
}

func TestFig9Breakdown(t *testing.T) {
	tb, err := quickContext().Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		var sum float64
		for _, v := range r.Values[:6] {
			if v < 0 {
				t.Errorf("%s: negative share %v", r.Label, v)
			}
			sum += v
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: breakdown sums to %v%%", r.Label, sum)
		}
	}
	if avg := tb.Mean(6); avg < 60 {
		t.Errorf("PIM-die share %v%%, paper reports 89.17%%", avg)
	}
}

func TestFig10Sensitivity(t *testing.T) {
	c := quickContext()
	rf, err := c.Fig10RF()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rf.Rows {
		// Normalized times must be non-increasing toward RF=128 (small
		// noise tolerated).
		for i := 0; i+1 < len(r.Values); i++ {
			if r.Values[i] < r.Values[i+1]*0.95 {
				t.Errorf("fig10a %s: RF step %d: %v < %v (more registers slower)", r.Label, i, r.Values[i], r.Values[i+1])
			}
		}
		if r.Values[len(r.Values)-1] != 1 {
			t.Errorf("fig10a %s: not normalized", r.Label)
		}
	}
	pg, err := c.Fig10PGSM()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range pg.Rows {
		if r.Values[len(r.Values)-1] != 1 {
			t.Errorf("fig10b %s: not normalized", r.Label)
		}
		if r.Values[0] < 0.9 {
			t.Errorf("fig10b %s: 2KB much faster than 8KB (%v)", r.Label, r.Values[0])
		}
	}
}

func TestFig11InstructionMix(t *testing.T) {
	tb, err := quickContext().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		var sum float64
		for _, v := range r.Values {
			sum += v
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: mix sums to %v%%", r.Label, sum)
		}
	}
	// Index calculation is a major share (paper: 23.25% average).
	if avg := tb.Mean(1); avg < 10 {
		t.Errorf("index-calc share %v%%, want a significant fraction", avg)
	}
}

func TestFig12CompilerAblation(t *testing.T) {
	tb, err := quickContext().Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		opt := r.Values[3]
		if opt < 1 {
			t.Errorf("%s: opt slower than baseline1 (%vx)", r.Label, opt)
		}
	}
	if avg := tb.Mean(3); avg < 1.2 {
		t.Errorf("average opt speedup %vx, paper reports 3.19x", avg)
	}
}

func TestFig13IPC(t *testing.T) {
	tb, err := quickContext().Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		ipc := r.Values[0]
		if ipc <= 0 || ipc > 1 {
			t.Errorf("%s: IPC %v out of (0,1]", r.Label, ipc)
		}
	}
	if avg := tb.Mean(0); avg < 0.2 {
		t.Errorf("average IPC %v, paper reports 0.63", avg)
	}
}

func TestTable4(t *testing.T) {
	tb, err := quickContext().Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Total row reproduces the paper's 10.28 mm² / 10.71%.
	last := tb.Rows[len(tb.Rows)-1]
	if last.Label != "Total" {
		t.Fatal("missing Total row")
	}
	if last.Values[1] < 10.2 || last.Values[1] > 10.4 {
		t.Errorf("total area %v, want 10.28", last.Values[1])
	}
	if last.Values[2] < 10.5 || last.Values[2] > 11.0 {
		t.Errorf("overhead %v%%, want 10.71%%", last.Values[2])
	}
}

func TestByNameAndFormat(t *testing.T) {
	c := quickContext()
	tb, err := c.ByName("table4")
	if err != nil {
		t.Fatal(err)
	}
	text := tb.Format()
	if !strings.Contains(text, "table4") || !strings.Contains(text, "PGSM") {
		t.Errorf("Format output missing content:\n%s", text)
	}
	if _, err := c.ByName("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentNames()) != 21 {
		t.Errorf("experiment registry has %d entries", len(ExperimentNames()))
	}
	// Every registered name must dispatch.
	for _, name := range ExperimentNames() {
		if name == "fig6" || name == "fig12" {
			continue // covered by dedicated tests (slow)
		}
		if _, err := c.ByName(name); err != nil {
			t.Errorf("experiment %s failed: %v", name, err)
		}
	}
}

func TestFaultsSweep(t *testing.T) {
	tb, err := quickContext().FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("faults rows = %d, want 5", len(tb.Rows))
	}
	base := tb.Rows[0]
	if !math.IsInf(base.Values[0], 1) || base.Values[1] != 0 || base.Values[2] != 0 ||
		base.Values[3] != 0 || base.Values[4] != 0 {
		t.Errorf("rate-0 row not a clean baseline: %+v", base.Values)
	}
	top := tb.Rows[len(tb.Rows)-1]
	if top.Values[1] == 0 || top.Values[2] == 0 {
		t.Errorf("top-rate row injected no ECC events: %+v", top.Values)
	}
	if math.IsInf(top.Values[0], 1) {
		t.Error("top-rate row left the blur output untouched (infinite PSNR)")
	}
	if top.Values[3] == 0 || top.Values[4] <= 0 {
		t.Errorf("top-rate row shows no link-fault cycle overhead: %+v", top.Values)
	}
	// PSNR must not improve as the rate rises (rows with injections).
	for i := 2; i < len(tb.Rows); i++ {
		if tb.Rows[i].Values[0] > tb.Rows[i-1].Values[0] {
			t.Errorf("PSNR rose from %v to %v between %s and %s",
				tb.Rows[i-1].Values[0], tb.Rows[i].Values[0], tb.Rows[i-1].Label, tb.Rows[i].Label)
		}
	}
}

func TestStallsDiagnostic(t *testing.T) {
	tb, err := quickContext().Stalls()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 10 {
		t.Fatalf("stalls rows = %d", len(tb.Rows))
	}
}

func TestThermalFeasibility(t *testing.T) {
	tb, err := quickContext().Thermal()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Values[0] <= 0 {
			t.Errorf("%s: non-positive cube power", r.Label)
		}
		// Paper's conclusion: every workload fits high-end active
		// cooling; the bandwidth-bound ones fit commodity cooling.
		if r.Values[4] != 1 {
			t.Errorf("%s: exceeds even high-end cooling (%.0f mW/mm2)", r.Label, r.Values[1])
		}
	}
	// Peak density in the paper's regime (~600 mW/mm²; same order).
	if m := tb.max(1); m < 100 || m > 1300 {
		t.Errorf("peak density %v mW/mm2 outside the plausible regime", m)
	}
}

func TestDRAMPolicyAblation(t *testing.T) {
	tb, err := quickContext().DRAMPolicy()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Values[0] != 1 {
			t.Errorf("%s: baseline column not normalized", r.Label)
		}
		// Close-page must hurt streaming workloads (every access pays
		// ACT+PRE; Table III's open-page default).
		if r.Values[2] < 1.1 {
			t.Errorf("%s: close-page FR-FCFS only %vx — open-page advantage lost", r.Label, r.Values[2])
		}
	}
}

func TestScalingEfficiency(t *testing.T) {
	tb, err := quickContext().Scaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		for i, col := range []int{3, 4} {
			eff := r.Values[col]
			if eff < 0.6 || eff > 1.6 {
				t.Errorf("%s: scaling efficiency %d = %v far from linear", r.Label, i, eff)
			}
		}
	}
}

func TestOffloadAmortization(t *testing.T) {
	tb, err := quickContext().Offload()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r.Values[2] <= 0 || r.Values[2] >= 100 {
			t.Errorf("%s: transfer share %v%% out of (0,100)", r.Label, r.Values[2])
		}
		if r.Values[3] < 1 {
			t.Errorf("%s: batch@10%% = %v", r.Label, r.Values[3])
		}
	}
}

func TestExchangeAblation(t *testing.T) {
	tb, err := quickContext().Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The deepest chain must favor exchange decisively; overlapped
	// recompute grows quadratically with depth.
	deep := tb.Rows[len(tb.Rows)-1]
	if deep.Values[2] < 2 {
		t.Errorf("chain-8 exchange speedup %vx, want >= 2x", deep.Values[2])
	}
	if deep.Values[3] < 2*deep.Values[4] {
		t.Errorf("chain-8 overlapped DRAM reads %vM not >> exchange %vM", deep.Values[3], deep.Values[4])
	}
}

func TestContextCachesRuns(t *testing.T) {
	c := quickContext()
	if _, err := c.Fig6(); err != nil {
		t.Fatal(err)
	}
	n := len(c.cache)
	if _, err := c.Fig7(); err != nil { // same runs reused
		t.Fatal(err)
	}
	if len(c.cache) != n {
		t.Errorf("Fig7 re-simulated: cache grew %d -> %d", n, len(c.cache))
	}
}

func TestSizeOfRespectsMinimum(t *testing.T) {
	c := NewContext()
	c.SizeDiv = 1 << 20 // absurd: must clamp at the distribution minimum
	vaultCfg := sim.OneVault()
	for _, wl := range suite() {
		w, h := c.sizeOf(wl)
		pipe := wl.Build().Pipe
		outW := w * pipe.OutNum / pipe.OutDen
		if outW/pipe.TileW < vaultCfg.PEsPerVault() {
			t.Errorf("%s: %dx%d too small for the tile distribution", wl.Name, w, h)
		}
	}
}
