// Package exp regenerates every table and figure of the paper's
// evaluation (Sec. VII). Each experiment returns a Table whose rows
// mirror the series the paper plots; EXPERIMENTS.md records the
// paper-vs-measured comparison. The iPIM side simulates one
// representative vault (32 PEs) and extrapolates to the full machine by
// vault count — exact under the SIMB lock-step, tile-interleaved
// execution model (DESIGN.md §2).
package exp

import (
	"fmt"
	"strings"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/energy"
	"ipim/internal/fault"
	"ipim/internal/gpu"
	"ipim/internal/pixel"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

// Table is one regenerated experiment.
type Table struct {
	Name    string // experiment id, e.g. "fig6"
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Row is one table row: a label and one value per column.
type Row struct {
	Label  string
	Values []float64
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	fmt.Fprintf(&b, "%-24s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-24s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%16.4g", v)
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Mean returns the geometric-free arithmetic mean of a column.
func (t *Table) Mean(col int) float64 {
	if len(t.Rows) == 0 {
		return 0
	}
	var s float64
	for _, r := range t.Rows {
		s += r.Values[col]
	}
	return s / float64(len(t.Rows))
}

// runResult caches one simulated workload execution.
type runResult struct {
	stats  sim.Stats
	art    *compiler.Artifact
	pixels float64
	imgW   int
	imgH   int
}

// Context carries the experiment configuration and caches runs.
type Context struct {
	// BenchCfg is the simulated machine (default: one full vault).
	BenchCfg sim.Config
	// FullCfg is the machine the results extrapolate to (Table III).
	FullCfg sim.Config
	GPU     gpu.Config
	Energy  energy.Model

	// SizeDiv divides the workloads' bench image sizes (for faster
	// smoke runs; 1 = full bench sizes). Sizes are clamped to the
	// minimum the tile distribution supports.
	SizeDiv int

	// Faults attaches a fault-injection plan to every simulated machine
	// (nil: faults disabled). The faults sweep manages its own plans and
	// ignores this.
	Faults *fault.Plan

	// MaxCycles installs a hard per-run cycle budget on every simulated
	// machine (0 = unlimited): runaway experiments fail with
	// sim.ErrCycleBudget instead of hanging the suite.
	MaxCycles int64

	// Mode selects the execution mode for every simulated machine
	// (default: cycle-accurate). FunctionalMode turns the suite into a
	// fast correctness pass: pixels are bit-identical but every
	// cycle-derived column reads zero.
	Mode sim.Mode

	cache    map[string]*runResult
	dnnCache map[string]*dnnRun
}

// NewContext returns the default experiment context.
func NewContext() *Context {
	return &Context{
		BenchCfg: sim.OneVault(),
		FullCfg:  sim.Default(),
		GPU:      gpu.Default(),
		Energy:   energy.DefaultModel(),
		SizeDiv:  1,
		cache:    map[string]*runResult{},
		dnnCache: map[string]*dnnRun{},
	}
}

// sizeOf picks the image size for a workload under SizeDiv, respecting
// the tile-distribution minimum (TilesX divisible by the PE count).
func (c *Context) sizeOf(wl workloads.Workload) (int, int) {
	w, h := wl.BenchW, wl.BenchH
	div := c.SizeDiv
	if div <= 0 {
		div = 1
	}
	pipe := wl.Build().Pipe
	minW := pipe.TileW * c.BenchCfg.PEsPerVault() * pipe.OutDen / pipe.OutNum
	minH := pipe.TileH * pipe.OutDen / pipe.OutNum
	for div > 1 && (w/2 >= minW || h/2 >= minH) {
		if h/2 >= minH {
			h /= 2
		} else {
			w /= 2
		}
		div /= 2
	}
	return w, h
}

// run executes a workload with the given compiler options on the bench
// machine (cached).
func (c *Context) run(wl workloads.Workload, opts compiler.Options, cfg sim.Config, key string) (*runResult, error) {
	ck := fmt.Sprintf("%s/%s/%s", wl.Name, opts.Name(), key)
	if r, ok := c.cache[ck]; ok {
		return r, nil
	}
	w := wl.Build()
	imgW, imgH := c.sizeOf(wl)
	img := pixel.Synth(imgW, imgH, 0xD1C8+uint64(len(wl.Name)))
	art, err := compiler.Compile(&cfg, w.Pipe, imgW, imgH, opts)
	if err != nil {
		return nil, fmt.Errorf("exp: compile %s: %w", wl.Name, err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		return nil, err
	}
	m.SetFaultPlan(c.Faults)
	m.SetMode(c.Mode)
	if c.MaxCycles > 0 {
		m.SetBudget(sim.RunOptions{MaxCycles: c.MaxCycles})
	}
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, err
	}
	stats, err := compiler.Execute(m, art)
	if err != nil {
		return nil, fmt.Errorf("exp: run %s: %w", wl.Name, err)
	}
	r := &runResult{stats: stats, art: art,
		pixels: float64(imgW) * float64(imgH), imgW: imgW, imgH: imgH}
	c.cache[ck] = r
	return r, nil
}

// machineTimeSec extrapolates a bench-vault run to the full machine.
func (c *Context) machineTimeSec(r *runResult) float64 {
	scale := float64(c.FullCfg.TotalVaults()) / float64(c.BenchCfg.TotalVaults())
	return float64(r.stats.Cycles) * 1e-9 / scale
}

// ipimEnergy computes the run's energy (invariant under the vault
// extrapolation: dynamic energy is per-work, and standby power and time
// scale inversely).
func (c *Context) ipimEnergy(r *runResult) energy.Breakdown {
	return c.Energy.Compute(&r.stats, c.BenchCfg.TotalPEs(), c.BenchCfg.TotalVaults(), 1.0)
}

// gpuProfile models the GPU on the same image.
func (c *Context) gpuProfile(wl workloads.Workload, r *runResult) (gpu.Profile, error) {
	return gpu.Model(c.GPU, wl.Build().Pipe, r.imgW, r.imgH)
}

// suite returns the Table II workloads.
func suite() []workloads.Workload { return workloads.All() }

// Short aliases used by the figure generators.
type (
	wlType  = workloads.Workload
	wl1Type = workloads.Workload1
)

var (
	wlByName = workloads.ByName
	gpuModel = gpu.Model
)

type gpuProfile = gpu.Profile
