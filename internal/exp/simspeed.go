package exp

import (
	"fmt"
	"time"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// Simspeed measures the simulator's own host wall-clock for a
// multi-vault machine, serial vs parallel (Machine.SetParallelism; see
// DESIGN.md, "Parallel vault simulation"). It is a diagnostic of the
// harness rather than of the modeled hardware: the simulated results
// are bit-identical between the two columns — the experiment asserts
// that — and only the host time differs. The speedup column scales with
// physical cores, so on a single-core host it sits near 1.0.
func (c *Context) Simspeed() (*Table, error) {
	t := &Table{
		Name: "simspeed", Title: "simulator host throughput, serial vs parallel",
		Columns: []string{"vaults", "Mcyc", "serial(ms)", "parallel(ms)", "speedup"},
		Notes: []string{
			"speedup = serial/parallel host wall-clock; scales with physical cores (1.0 on one core)",
			"both columns produce bit-identical sim.Stats (asserted here; pinned by determinism_test.go)",
		},
	}
	wl, err := wlByName("Brighten")
	if err != nil {
		return nil, err
	}
	w := wl.Build()
	vaultCounts := []int{4, 16}
	// Size the image for the largest machine in the sweep: the tile
	// distribution needs TilesX divisible by the total PE count, and the
	// smaller counts divide the larger.
	maxCfg := sim.OneVault()
	maxCfg.VaultsPerCube = vaultCounts[len(vaultCounts)-1]
	imgW := w.Pipe.TileW * maxCfg.TotalPEs() * w.Pipe.OutDen / w.Pipe.OutNum
	imgH := 4 * w.Pipe.TileH * w.Pipe.OutDen / w.Pipe.OutNum
	img := pixel.Synth(imgW, imgH, 0x51A5)
	for _, vaults := range vaultCounts {
		cfg := sim.OneVault()
		cfg.VaultsPerCube = vaults
		art, err := compiler.Compile(&cfg, w.Pipe, imgW, imgH, compiler.Opt)
		if err != nil {
			return nil, fmt.Errorf("exp: simspeed compile: %w", err)
		}
		var elapsed [2]time.Duration
		var stats [2]sim.Stats
		for i, par := range []int{1, 0} { // serial, then GOMAXPROCS
			m, err := cube.New(cfg)
			if err != nil {
				return nil, err
			}
			m.SetParallelism(par)
			if err := compiler.LoadInput(m, art, img); err != nil {
				return nil, err
			}
			start := time.Now()
			stats[i], err = compiler.Execute(m, art)
			if err != nil {
				return nil, fmt.Errorf("exp: simspeed run (%d vaults): %w", vaults, err)
			}
			elapsed[i] = time.Since(start)
		}
		if stats[0] != stats[1] {
			return nil, fmt.Errorf("exp: simspeed: serial and parallel stats diverged at %d vaults", vaults)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%s/%dv", wl.Name, vaults),
			Values: []float64{
				float64(vaults),
				float64(stats[0].Cycles) / 1e6,
				float64(elapsed[0]) / float64(time.Millisecond),
				float64(elapsed[1]) / float64(time.Millisecond),
				float64(elapsed[0]) / float64(elapsed[1]),
			},
		})
	}
	return t, nil
}
