package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/dram"
)

// DRAMPolicy is the ablation over the in-DRAM memory controller's page
// and scheduling policies (paper Sec. IV-E: the controller supports
// open/close page and FCFS/FR-FCFS). The paper evaluates with
// open-page + FR-FCFS; this table shows why: cycles normalized to that
// default for a representative workload subset.
func (c *Context) DRAMPolicy() (*Table, error) {
	t := &Table{
		Name: "dram", Title: "DRAM policy ablation (cycles normalized to open-page FR-FCFS)",
		Columns: []string{"open/FR-FCFS", "open/FCFS", "close/FR-FCFS", "close/FCFS"},
		Notes:   []string{"paper default: open page + FR-FCFS (Table III)"},
	}
	type variant struct {
		page  dram.PagePolicy
		sched dram.SchedPolicy
		key   string
	}
	variants := []variant{
		{dram.OpenPage, dram.FRFCFS, "open-frfcfs"},
		{dram.OpenPage, dram.FCFS, "open-fcfs"},
		{dram.ClosePage, dram.FRFCFS, "close-frfcfs"},
		{dram.ClosePage, dram.FCFS, "close-fcfs"},
	}
	for _, wl := range sensitivitySuite() {
		var cycles []float64
		for _, v := range variants {
			cfg := c.BenchCfg
			cfg.Page = v.page
			cfg.Sched = v.sched
			r, err := c.run(wl, compiler.Opt, cfg, v.key)
			if err != nil {
				return nil, fmt.Errorf("dram ablation %s/%s: %w", wl.Name, v.key, err)
			}
			cycles = append(cycles, float64(r.stats.Cycles))
		}
		row := Row{Label: wl.Name}
		for _, cyc := range cycles {
			row.Values = append(row.Values, cyc/cycles[0])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
