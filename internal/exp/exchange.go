package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// chainPipeline builds an n-stage 3x3 stencil chain, with or without
// clamped-stage (halo-exchange) semantics.
func chainPipeline(n int, clamped bool) *halide.Pipeline {
	var prev *halide.Func
	for i := 0; i < n; i++ {
		at := func(dx, dy int) halide.Expr {
			if prev == nil {
				return halide.In(dx, dy)
			}
			return prev.At(dx, dy)
		}
		var sum halide.Expr = at(-1, -1)
		for _, d := range [][2]int{{0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			sum = halide.Add(sum, at(d[0], d[1]))
		}
		prev = halide.NewFunc(fmt.Sprintf("xc%d_%v", i, clamped)).
			Define(halide.Mul(sum, halide.K(1.0/9))).ComputeRoot().LoadPGSM()
	}
	p := halide.NewPipeline(fmt.Sprintf("chain%d", n), prev)
	if clamped {
		p.ClampStages()
	}
	return p
}

// Exchange is the halo-strategy ablation behind DESIGN.md §2: an
// n-stage stencil chain compiled with overlapped tiling (cumulative
// halo recompute) vs halo exchange (PGSM/VSM transfers). Overlapped
// tiling's redundant work grows quadratically with depth; exchange pays
// a per-stage constant.
func (c *Context) Exchange() (*Table, error) {
	t := &Table{
		Name: "exchange", Title: "halo strategy ablation: n-stage chain cycles (Mcyc)",
		Columns: []string{"overlap", "exchange", "speedup", "ovlDRAMrd(M)", "exDRAMrd(M)"},
		Notes: []string{
			"overlapped tiling recomputes cumulative halos; exchange transfers them (DESIGN.md §2)",
		},
	}
	cfg := sim.OneVault()
	for _, depth := range []int{2, 4, 8} {
		var cycles [2]float64
		var reads [2]float64
		for i, clamped := range []bool{false, true} {
			pipe := chainPipeline(depth, clamped)
			imgW, imgH := 256, 64
			img := pixel.Synth(imgW, imgH, 9)
			art, err := compiler.Compile(&cfg, pipe, imgW, imgH, compiler.Opt)
			if err != nil {
				return nil, fmt.Errorf("exchange depth %d clamped=%v: %w", depth, clamped, err)
			}
			m, err := cube.New(cfg)
			if err != nil {
				return nil, err
			}
			if err := compiler.LoadInput(m, art, img); err != nil {
				return nil, err
			}
			stats, err := compiler.Execute(m, art)
			if err != nil {
				return nil, err
			}
			cycles[i] = float64(stats.Cycles)
			reads[i] = float64(stats.DRAM.Reads)
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("chain-%d", depth), Values: []float64{
			cycles[0] / 1e6, cycles[1] / 1e6, cycles[0] / cycles[1],
			reads[0] / 1e6, reads[1] / 1e6,
		}})
	}
	return t, nil
}
