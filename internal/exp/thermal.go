package exp

import (
	"fmt"

	"ipim/internal/compiler"
)

// Cooling limits the paper cites from the 3D-PIM thermal literature
// (mW/mm² of stack footprint).
const (
	commodityCoolingLimit = 706.0
	highEndCoolingLimit   = 1214.0
	dieFootprintMM2       = 96.0
)

// Thermal reproduces the paper's thermal feasibility analysis
// (Sec. VII-B): per-cube power under the most bandwidth-intensive
// workloads, the resulting power density against the active-cooling
// limits, and the share drawn by DRAM activate/precharge activity
// (paper: 63 W/cube peak, 593 mW/mm², 78.5% from ACT/PRE, feasible
// under commodity-server cooling).
func (c *Context) Thermal() (*Table, error) {
	t := &Table{
		Name: "thermal", Title: "per-cube power and density under load",
		Columns: []string{"W/cube", "mW/mm2", "dram%", "commodity-ok", "high-end-ok"},
		Notes: []string{
			"paper: 63 W peak per cube, 593 mW/mm2, fits the 706 mW/mm2 commodity active-cooling limit",
		},
	}
	vaultsPerCube := float64(c.FullCfg.VaultsPerCube)
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		b := c.ipimEnergy(r)
		seconds := float64(r.stats.Cycles) * 1e-9
		vaultPower := b.Total() / seconds
		cubePower := vaultPower * vaultsPerCube
		density := cubePower / dieFootprintMM2 * 1e3 // mW/mm²
		dramShare := b.DRAM / b.Total() * 100
		ok := func(limit float64) float64 {
			if density <= limit {
				return 1
			}
			return 0
		}
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			cubePower, density, dramShare, ok(commodityCoolingLimit), ok(highEndCoolingLimit),
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured max: %.1f W/cube, %.0f mW/mm2",
		t.max(0), t.max(1)))
	return t, nil
}

func (t *Table) max(col int) float64 {
	var m float64
	for _, r := range t.Rows {
		if r.Values[col] > m {
			m = r.Values[col]
		}
	}
	return m
}
