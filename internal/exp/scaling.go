package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/sim"
)

// Scaling validates the representative-vault extrapolation (DESIGN.md
// §2): the same workload on the same image across machines with 1, 2
// and 4 vaults. Under lock-step SIMB and interleaved tile distribution,
// cycles should drop in proportion to the vault count (modulo barrier
// cost and tile-count rounding), so "cycles x vaults" — the rightmost
// columns, normalized to the 1-vault run — should stay near 1.
func (c *Context) Scaling() (*Table, error) {
	t := &Table{
		Name: "scaling", Title: "multi-vault scaling (single-stage workloads)",
		Columns: []string{"1v(Mcyc)", "2v(Mcyc)", "4v(Mcyc)", "eff2v", "eff4v"},
		Notes: []string{
			"effNv = cycles(1v) / (N x cycles(Nv)); near 1.0 validates the vault extrapolation",
		},
	}
	// Single-stage workloads only: halo-exchange pipelines require a
	// single vault (DESIGN.md §2).
	for _, name := range []string{"Brighten", "GaussianBlur", "Shift"} {
		wl, err := wlByName(name)
		if err != nil {
			return nil, err
		}
		var cycles []float64
		for _, vaults := range []int{1, 2, 4} {
			cfg := sim.OneVault()
			cfg.VaultsPerCube = vaults
			r, err := c.run(wl, compiler.Opt, cfg, fmt.Sprintf("scale%d", vaults))
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(r.stats.Cycles))
		}
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			cycles[0] / 1e6, cycles[1] / 1e6, cycles[2] / 1e6,
			cycles[0] / (2 * cycles[1]),
			cycles[0] / (4 * cycles[2]),
		}})
	}
	return t, nil
}
