package exp

import (
	"encoding/json"
	"io"

	"ipim/internal/compiler"
)

// BenchRecord is one machine-readable benchmark result, the unit of
// the BENCH_*.json perf trajectory tracked across PRs: enough to
// recompute throughput (cycles at 1 GHz → ns) and efficiency without
// re-running the simulator.
type BenchRecord struct {
	Workload string  `json:"workload"`
	Config   string  `json:"config"` // compiler preset name
	ImgW     int     `json:"img_w"`
	ImgH     int     `json:"img_h"`
	Cycles   int64   `json:"cycles"`   // bench-vault kernel cycles
	KernelNS int64   `json:"ns"`       // bench-vault kernel time (1 GHz)
	EnergyJ  float64 `json:"energy_j"` // simulated energy of the run
	IPC      float64 `json:"ipc"`
	Issued   int64   `json:"issued"`
	Spills   int     `json:"spills"`
}

// BenchRecords runs the Table II suite under the fully optimized
// compiler configuration on the bench machine and returns one record
// per workload (sharing the context's run cache with the figure
// generators).
func (c *Context) BenchRecords() ([]BenchRecord, error) {
	var recs []BenchRecord
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		recs = append(recs, BenchRecord{
			Workload: wl.Name,
			Config:   compiler.Opt.Name(),
			ImgW:     r.imgW,
			ImgH:     r.imgH,
			Cycles:   r.stats.Cycles,
			KernelNS: r.stats.Cycles, // 1 cycle = 1 ns at the 1 GHz clock
			EnergyJ:  c.ipimEnergy(r).Total(),
			IPC:      r.stats.IPC(),
			Issued:   r.stats.Issued,
			Spills:   r.art.Spills,
		})
	}
	return recs, nil
}

// WriteBenchJSON renders records as indented JSON (one stable
// top-level object, so diffs across PRs stay readable).
func WriteBenchJSON(w io.Writer, recs []BenchRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"results": recs})
}
