package exp

import (
	"fmt"
	"strings"

	"ipim/internal/compiler"
	"ipim/internal/energy"
	"ipim/internal/isa"
)

// Fig1 reproduces the GPU profiling motivation (paper Fig. 1): per
// benchmark, the achieved DRAM bandwidth, DRAM utilization, ALU
// utilization, and the index-calculation share of ALU work.
func (c *Context) Fig1() (*Table, error) {
	t := &Table{
		Name: "fig1", Title: "GPU profiling (V100 model): bandwidth-bound behavior",
		Columns: []string{"BW(GB/s)", "DRAMutil%", "ALUutil%", "index%"},
		Notes: []string{
			"paper: 57.55% avg DRAM util, 3.43% avg ALU util, 58.71% index share",
		},
	}
	for _, wl := range suite() {
		imgW, imgH := c.sizeOf(wl)
		p, err := c.gpuProfileSized(wl, imgW, imgH)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			p.BandwidthGBs, p.DRAMUtil * 100, p.ALUUtil * 100, p.IndexFrac * 100,
		}})
	}
	return t, nil
}

func (c *Context) gpuProfileSized(wl wlType, imgW, imgH int) (gpuProfile, error) {
	return gpuModel(c.GPU, wl.Build().Pipe, imgW, imgH)
}

// Fig6 reproduces the throughput/speedup comparison (paper Fig. 6):
// iPIM (full-machine extrapolation) vs the GPU baseline.
func (c *Context) Fig6() (*Table, error) {
	t := &Table{
		Name: "fig6", Title: "iPIM speedup over the V100 GPU baseline",
		Columns: []string{"iPIM(Mpix/s)", "GPU(Mpix/s)", "speedup"},
		Notes: []string{
			"paper: 11.02x average; Brighten 21.09x, Histogram 43.78x, Blur/StencilChain ~4.3x",
		},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		g, err := c.gpuProfile(wl, r)
		if err != nil {
			return nil, err
		}
		ti := c.machineTimeSec(r)
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			r.pixels / ti / 1e6, r.pixels / g.TimeSec / 1e6, g.TimeSec / ti,
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average speedup: %.2fx", t.Mean(2)))
	return t, nil
}

// Fig7 reproduces the energy comparison (paper Fig. 7).
func (c *Context) Fig7() (*Table, error) {
	t := &Table{
		Name: "fig7", Title: "iPIM energy vs GPU (per frame)",
		Columns: []string{"iPIM(mJ)", "GPU(mJ)", "saving%"},
		Notes:   []string{"paper: 79.49% average energy saving"},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		g, err := c.gpuProfile(wl, r)
		if err != nil {
			return nil, err
		}
		ei := c.ipimEnergy(r).Total()
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			ei * 1e3, g.EnergyJ * 1e3, (1 - ei/g.EnergyJ) * 100,
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average saving: %.1f%%", t.Mean(2)))
	return t, nil
}

// Fig8 reproduces the near-bank vs process-on-base-die comparison
// (paper Fig. 8): the PonB strawman serializes all bank traffic through
// the vault TSVs.
func (c *Context) Fig8() (*Table, error) {
	t := &Table{
		Name: "fig8", Title: "near-bank iPIM vs process-on-base-die (PonB)",
		Columns: []string{"iPIM(Mcyc)", "PonB(Mcyc)", "speedup", "energySave%"},
		Notes:   []string{"paper: 3.61x average speedup, 56.71% energy saving over PonB"},
	}
	ponbCfg := c.BenchCfg
	ponbCfg.PonB = true
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		rp, err := c.run(wl, compiler.Opt, ponbCfg, "ponb")
		if err != nil {
			return nil, err
		}
		ei := c.ipimEnergy(r)
		ep := c.ponbEnergy(rp)
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			float64(r.stats.Cycles) / 1e6, float64(rp.stats.Cycles) / 1e6,
			float64(rp.stats.Cycles) / float64(r.stats.Cycles),
			(1 - ei.Total()/ep.Total()) * 100,
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average speedup: %.2fx", t.Mean(2)))
	return t, nil
}

// ponbEnergy adds the TSV crossing energy PonB pays on every bank beat.
func (c *Context) ponbEnergy(r *runResult) energy.Breakdown {
	return c.Energy.Compute(&r.stats, c.BenchCfg.TotalPEs(), c.BenchCfg.TotalVaults(), 1.0)
}

// Fig9 reproduces the energy breakdown (paper Fig. 9): DRAM, SIMD unit,
// AddrRF, DataRF, PGSM and Others shares per workload.
func (c *Context) Fig9() (*Table, error) {
	t := &Table{
		Name: "fig9", Title: "iPIM energy breakdown (%)",
		Columns: []string{"DRAM", "SIMD", "AddrRF", "DataRF", "PGSM", "Others", "PIMdie%"},
		Notes:   []string{"paper: 89.17% of energy on the PIM dies"},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		b := c.ipimEnergy(r)
		tot := b.Total()
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			b.DRAM / tot * 100, b.SIMDUnit / tot * 100, b.AddrRF / tot * 100,
			b.DataRF / tot * 100, b.PGSM / tot * 100, b.Others / tot * 100,
			b.PIMDieFraction() * 100,
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average PIM-die share: %.1f%%", t.Mean(6)))
	return t, nil
}

// Fig10RF reproduces the register-file sensitivity (paper Fig. 10a):
// execution time normalized to the 128-entry DataRF.
func (c *Context) Fig10RF() (*Table, error) {
	t := &Table{
		Name: "fig10a", Title: "DataRF size sensitivity (time normalized to RF=128)",
		Columns: []string{"RF16", "RF32", "RF64", "RF128"},
		Notes:   []string{"paper: 46.8% / 26.8% / 9.5% drops for 16/32/64 vs 128"},
	}
	sizes := []int{16, 32, 64, 128}
	for _, wl := range sensitivitySuite() {
		var cycles []float64
		for _, sz := range sizes {
			cfg := c.BenchCfg
			cfg.DataRFEntries = sz
			r, err := c.run(wl, compiler.Opt, cfg, fmt.Sprintf("rf%d", sz))
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(r.stats.Cycles))
		}
		base := cycles[len(cycles)-1]
		row := Row{Label: wl.Name}
		for _, cyc := range cycles {
			row.Values = append(row.Values, cyc/base)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10PGSM reproduces the scratchpad sensitivity (paper Fig. 10b).
func (c *Context) Fig10PGSM() (*Table, error) {
	t := &Table{
		Name: "fig10b", Title: "PGSM size sensitivity (time normalized to PGSM=8KB)",
		Columns: []string{"2KB", "4KB", "8KB"},
		Notes:   []string{"paper: 58.9% / 39.0% drops for 2KB/4KB vs 8KB"},
	}
	sizes := []int{2 << 10, 4 << 10, 8 << 10}
	for _, wl := range sensitivitySuite() {
		var cycles []float64
		for _, sz := range sizes {
			cfg := c.BenchCfg
			cfg.PGSMBytes = sz
			r, err := c.run(wl, compiler.Opt, cfg, fmt.Sprintf("pgsm%d", sz))
			if err != nil {
				return nil, err
			}
			cycles = append(cycles, float64(r.stats.Cycles))
		}
		base := cycles[len(cycles)-1]
		row := Row{Label: wl.Name}
		for _, cyc := range cycles {
			row.Values = append(row.Values, cyc/base)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11 reproduces the dynamic instruction breakdown (paper Fig. 11).
func (c *Context) Fig11() (*Table, error) {
	t := &Table{
		Name: "fig11", Title: "dynamic instruction breakdown (%)",
		Columns: []string{"comp", "index", "intra-vault", "inter-vault", "control", "sync"},
		Notes: []string{
			"paper: index calculation 23.25% average; inter-vault 1.44%",
		},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		row := Row{Label: wl.Name}
		for cat := isa.Category(0); cat < isa.NumCategories; cat++ {
			row.Values = append(row.Values, r.stats.CategoryFraction(cat)*100)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average index share: %.1f%%", t.Mean(1)))
	return t, nil
}

// Fig12 reproduces the compiler-optimization ablation (paper Fig. 12):
// speedup of each configuration over the naive baseline1.
func (c *Context) Fig12() (*Table, error) {
	t := &Table{
		Name: "fig12", Title: "compiler optimization speedup over baseline1",
		Columns: []string{"baseline2", "baseline3", "baseline4", "opt"},
		Notes: []string{
			"paper: opt 3.19x over baseline1; regalloc 2.59x, reorder 2.74x, memorder 1.30x contributions",
		},
	}
	configs := []compiler.Options{compiler.Baseline2, compiler.Baseline3, compiler.Baseline4, compiler.Opt}
	for _, wl := range suite() {
		base, err := c.run(wl, compiler.Baseline1, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		row := Row{Label: wl.Name}
		for _, o := range configs {
			r, err := c.run(wl, o, c.BenchCfg, "bench")
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, float64(base.stats.Cycles)/float64(r.stats.Cycles))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average opt speedup: %.2fx", t.Mean(3)))
	return t, nil
}

// Fig13 reproduces the IPC and component-utilization analysis (paper
// Fig. 13).
func (c *Context) Fig13() (*Table, error) {
	t := &Table{
		Name: "fig13", Title: "control-core IPC and component utilization (%)",
		Columns: []string{"IPC", "simd%", "intalu%", "datarf%", "addrrf%", "dram%"},
		Notes:   []string{"paper: average IPC 0.63; >40% AddrRF utilization on index-heavy kernels"},
	}
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		u := r.stats.Utilization(c.BenchCfg.PEsPerVault())
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			r.stats.IPC(), u["simd"] * 100, u["intalu"] * 100,
			u["datarf"] * 100, u["addrrf"] * 100, u["dram"] * 100,
		}})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("measured average IPC: %.2f", t.Mean(0)))
	return t, nil
}

// Table4 reproduces the area evaluation (paper Table IV).
func (c *Context) Table4() (*Table, error) {
	t := &Table{
		Name: "table4", Title: "area of iPIM components per DRAM die (mm², 2x DRAM-process overhead)",
		Columns: []string{"count", "area(mm2)", "overhead%"},
	}
	cfg := c.FullCfg
	items := energy.AreaReport(&cfg)
	for _, it := range items {
		t.Rows = append(t.Rows, Row{Label: it.Name, Values: []float64{
			float64(it.Number), it.AreaMM2, it.Overhead * 100,
		}})
	}
	total, overhead := energy.TotalArea(items)
	t.Rows = append(t.Rows, Row{Label: "Total", Values: []float64{0, total, overhead * 100}})
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: 10.28 mm² total, 10.71%% overhead"),
		fmt.Sprintf("naive per-bank control cores: %.1f%% overhead (paper: 122.36%%)",
			energy.NaivePerBankOverhead(&cfg)*100),
		fmt.Sprintf("control core %.2f mm² fits the %.1f mm² base-die vault budget: %v",
			energy.AreaControlCore, energy.BaseDieVaultBudget, energy.CoreFitsBaseDie()))
	return t, nil
}

// sensitivitySuite is the subset used for the Fig. 10 sweeps (a mix of
// bandwidth-, compute- and index-bound kernels; the full suite would
// multiply simulation time without changing the trend). The blur runs
// at a 16x16 tile so its staged working set (~1.2 KB per PE) actually
// exercises the smaller PGSM partitions, matching the paper's
// large-working-set setting (8K frames).
func sensitivitySuite() []wlType {
	names := []string{"Brighten", "GaussianBlur", "StencilChain"}
	var out []wlType
	for _, n := range names {
		w, err := wlByName(n)
		if err != nil {
			panic(err)
		}
		if n == "GaussianBlur" {
			// 16x8 tiles: the staged working set (~800 B/PE) fits the
			// 8 KB PGSM's 2 KB partitions and the 4 KB config's 1 KB
			// partitions but not the 2 KB config's 512 B — giving the
			// graded sensitivity the paper sees on 8K frames.
			inner := w.Build
			w.Name = "GaussianBlur16"
			w.Build = func() *wl1Type {
				b := inner()
				b.Pipe.IPIMTile(16, 8)
				return b
			}
		}
		out = append(out, w)
	}
	return out
}

// All runs every experiment in paper order.
func (c *Context) All() ([]*Table, error) {
	type gen struct {
		name string
		fn   func() (*Table, error)
	}
	gens := []gen{
		{"fig1", c.Fig1}, {"table4", c.Table4}, {"fig6", c.Fig6}, {"fig7", c.Fig7},
		{"fig8", c.Fig8}, {"fig9", c.Fig9}, {"fig10a", c.Fig10RF}, {"fig10b", c.Fig10PGSM},
		{"fig11", c.Fig11}, {"fig12", c.Fig12}, {"fig13", c.Fig13},
	}
	var out []*Table
	for _, g := range gens {
		tb, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", g.name, err)
		}
		out = append(out, tb)
	}
	return out, nil
}

// ByName runs one experiment.
func (c *Context) ByName(name string) (*Table, error) {
	switch name {
	case "fig1":
		return c.Fig1()
	case "table4":
		return c.Table4()
	case "fig6":
		return c.Fig6()
	case "fig7":
		return c.Fig7()
	case "fig8":
		return c.Fig8()
	case "fig9":
		return c.Fig9()
	case "fig10a":
		return c.Fig10RF()
	case "fig10b":
		return c.Fig10PGSM()
	case "fig11":
		return c.Fig11()
	case "fig12":
		return c.Fig12()
	case "fig13":
		return c.Fig13()
	case "stalls":
		return c.Stalls()
	case "thermal":
		return c.Thermal()
	case "dram":
		return c.DRAMPolicy()
	case "scaling":
		return c.Scaling()
	case "offload":
		return c.Offload()
	case "exchange":
		return c.Exchange()
	case "frames":
		return c.Frames()
	case "simspeed":
		return c.Simspeed()
	case "faults":
		return c.FaultSweep()
	case "dnn":
		return c.DNN()
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (valid: %s)",
		name, strings.Join(ExperimentNames(), ", "))
}

// ExperimentNames lists the available experiments — every name ByName
// accepts (TestByNameAndFormat dispatches each one).
func ExperimentNames() []string {
	return []string{"fig1", "table4", "fig6", "fig7", "fig8", "fig9",
		"fig10a", "fig10b", "fig11", "fig12", "fig13", "stalls", "thermal",
		"dram", "scaling", "offload", "exchange", "frames", "simspeed",
		"faults", "dnn"}
}
