package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/pixel"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

// The DNN/GEMM family experiment: every workload under the baseline
// list schedule and the multi-array stage-ahead schedule, each output
// checked bit-for-bit against its host golden reference. BENCH_dnn.json
// tracks the two schedules' records per workload across PRs.

// dnnRun is one executed DNN workload configuration.
type dnnRun struct {
	stats sim.Stats
	art   *compiler.Artifact
	imgW  int
	imgH  int
	// goldenDiff is the max abs deviation from the host golden (0 for a
	// correct run; pixel-exact is the family's contract).
	goldenDiff float64
}

// dnnSizeOf picks the probe size: the height is fixed by operator
// geometry, the width shrinks under SizeDiv but never below two tiles
// per PE, so the stage-ahead schedule stays engaged even in smoke runs.
func (c *Context) dnnSizeOf(wl workloads.DNNWorkload) (int, int) {
	w, h := wl.BenchW, wl.BenchH
	div := c.SizeDiv
	pipe := wl.Build().Pipe
	minW := 2 * pipe.TileW * c.BenchCfg.PEsPerVault()
	for div > 1 && w/2 >= minW {
		w /= 2
		div /= 2
	}
	return w, h
}

// runDNN executes one DNN workload with the multi-array schedule forced
// on or off (cached per schedule).
func (c *Context) runDNN(wl workloads.DNNWorkload, multiArray bool) (*dnnRun, error) {
	ck := fmt.Sprintf("dnn/%s/%v", wl.Name, multiArray)
	if r, ok := c.dnnCache[ck]; ok {
		return r, nil
	}
	cfg := c.BenchCfg
	pipe := wl.Build().Pipe.MultiArraySchedule(multiArray)
	imgW, imgH := c.dnnSizeOf(wl)
	img := pixel.Synth(imgW, imgH, 0xD2D2+uint64(len(wl.Name)))
	art, err := compiler.Compile(&cfg, pipe, imgW, imgH, compiler.Opt)
	if err != nil {
		return nil, fmt.Errorf("exp: compile %s: %w", wl.Name, err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		return nil, err
	}
	m.SetFaultPlan(c.Faults)
	m.SetMode(c.Mode)
	if c.MaxCycles > 0 {
		m.SetBudget(sim.RunOptions{MaxCycles: c.MaxCycles})
	}
	if err := compiler.LoadInput(m, art, img); err != nil {
		return nil, err
	}
	stats, err := compiler.Execute(m, art)
	if err != nil {
		return nil, fmt.Errorf("exp: run %s: %w", wl.Name, err)
	}
	out, err := compiler.ReadOutput(m, art)
	if err != nil {
		return nil, err
	}
	r := &dnnRun{stats: stats, art: art, imgW: imgW, imgH: imgH,
		goldenDiff: float64(pixel.MaxAbsDiff(out, wl.Host(img)))}
	if c.dnnCache == nil {
		c.dnnCache = map[string]*dnnRun{}
	}
	c.dnnCache[ck] = r
	return r, nil
}

// DNN regenerates the DNN/GEMM family table: baseline vs multi-array
// cycles, the schedule speedup, and the host-golden deviation (always
// 0; the column keeps the bit-exactness check visible in the output).
func (c *Context) DNN() (*Table, error) {
	tb := &Table{
		Name:    "dnn",
		Title:   "DNN/GEMM family: baseline vs multi-array stage-ahead schedule",
		Columns: []string{"base cycles", "ma cycles", "speedup", "golden diff"},
		Notes: []string{
			"multi-array: per-PE double-buffered PGSM staging overlapped with compute",
			"golden diff is max abs deviation from the host reference (must be 0)",
		},
	}
	for _, wl := range workloads.DNN() {
		base, err := c.runDNN(wl, false)
		if err != nil {
			return nil, err
		}
		ma, err := c.runDNN(wl, true)
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if ma.stats.Cycles > 0 {
			speedup = float64(base.stats.Cycles) / float64(ma.stats.Cycles)
		}
		tb.Rows = append(tb.Rows, Row{
			Label: fmt.Sprintf("%s %dx%d", wl.Name, base.imgW, base.imgH),
			Values: []float64{
				float64(base.stats.Cycles), float64(ma.stats.Cycles),
				speedup, base.goldenDiff + ma.goldenDiff,
			},
		})
	}
	return tb, nil
}

// DNNBenchRecords returns the BENCH_dnn.json rows: one record per
// (workload, schedule), Config distinguishing the two schedules.
func (c *Context) DNNBenchRecords() ([]BenchRecord, error) {
	var recs []BenchRecord
	for _, wl := range workloads.DNN() {
		for _, multiArray := range []bool{false, true} {
			r, err := c.runDNN(wl, multiArray)
			if err != nil {
				return nil, err
			}
			config := compiler.Opt.Name()
			if multiArray {
				config += "+multi_array"
			}
			recs = append(recs, BenchRecord{
				Workload: wl.Name,
				Config:   config,
				ImgW:     r.imgW,
				ImgH:     r.imgH,
				Cycles:   r.stats.Cycles,
				KernelNS: r.stats.Cycles,
				EnergyJ: c.Energy.Compute(&r.stats, c.BenchCfg.TotalPEs(),
					c.BenchCfg.TotalVaults(), 1.0).Total(),
				IPC:    r.stats.IPC(),
				Issued: r.stats.Issued,
				Spills: r.art.Spills,
			})
		}
	}
	return recs, nil
}
