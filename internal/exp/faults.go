package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/fault"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// FaultSweep sweeps the deterministic fault-injection rate and reports
// how output fidelity and execution time degrade. Two probes run per
// rate on the tiny two-vault machine: GaussianBlur measures data-path
// damage — DRAM single-bit flips are absorbed by the SECDED model
// (corrected, no data or timing change) while multi-bit flips corrupt
// the read destination, lowering PSNR against the clean output — and
// Histogram, whose cross-vault reduction traverses the NoC, measures
// the cycle overhead of link-fault retransmits.
func (c *Context) FaultSweep() (*Table, error) {
	t := &Table{
		Name: "faults", Title: "fault-rate sweep: fidelity (GaussianBlur) and overhead (Histogram)",
		Columns: []string{"PSNR(dB)", "corrected", "uncorrected", "linkFaults", "cycOvhd%"},
		Notes: []string{
			"rate applies per DRAM read event and per link flit-group; multibit fraction 0.2",
			"SECDED corrects single-bit flips in place: zero PSNR or cycle cost",
			"link retransmits (20-cycle penalty) are the only timing-visible fault",
			"rows reproduce bit-for-bit for a fixed seed (internal/fault determinism contract)",
		},
	}
	cfg := sim.TestTiny()
	type probe struct {
		art *compiler.Artifact
		img *pixel.Image
	}
	mk := func(name string) (*probe, error) {
		wl, err := wlByName(name)
		if err != nil {
			return nil, err
		}
		w := wl.Build()
		imgW := w.Pipe.TileW * cfg.TotalPEs() * w.Pipe.OutDen / w.Pipe.OutNum
		imgH := 4 * w.Pipe.TileH * w.Pipe.OutDen / w.Pipe.OutNum
		art, err := compiler.Compile(&cfg, w.Pipe, imgW, imgH, compiler.Opt)
		if err != nil {
			return nil, fmt.Errorf("faults sweep: compile %s: %w", name, err)
		}
		return &probe{art: art, img: pixel.Synth(imgW, imgH, 77)}, nil
	}
	blur, err := mk("GaussianBlur")
	if err != nil {
		return nil, err
	}
	hist, err := mk("Histogram")
	if err != nil {
		return nil, err
	}
	runAt := func(p *probe, plan *fault.Plan, readOut bool) (*pixel.Image, sim.Stats, error) {
		m, err := cube.New(cfg)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		m.SetFaultPlan(plan)
		if err := compiler.LoadInput(m, p.art, p.img); err != nil {
			return nil, sim.Stats{}, err
		}
		stats, err := compiler.Execute(m, p.art)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		if !readOut {
			return nil, stats, nil
		}
		out, err := compiler.ReadOutput(m, p.art)
		return out, stats, err
	}
	clean, _, err := runAt(blur, nil, true)
	if err != nil {
		return nil, fmt.Errorf("faults sweep: clean blur run: %w", err)
	}
	_, histBase, err := runAt(hist, nil, false)
	if err != nil {
		return nil, fmt.Errorf("faults sweep: clean histogram run: %w", err)
	}
	for _, rate := range []float64{0, 1e-3, 1e-2, 1e-1, 1} {
		var dramPlan, linkPlan *fault.Plan
		if rate > 0 {
			// The blur probe takes DRAM flips (data-path damage only; a
			// flipped pixel stays a pixel). The histogram probe takes
			// link faults only: its bin addresses are data-derived, so a
			// corrupted pixel would turn into an out-of-range PGSM
			// access and abort the run instead of measuring overhead.
			dramPlan = &fault.Plan{Seed: 1802, DRAMBitFlipRate: rate, DRAMMultiBitFraction: 0.2}
			linkPlan = &fault.Plan{Seed: 1802, LinkFaultRate: rate, LinkRetryPenalty: 20}
		}
		out, bStats, err := runAt(blur, dramPlan, true)
		if err != nil {
			return nil, fmt.Errorf("faults sweep: blur rate %g: %w", rate, err)
		}
		_, hStats, err := runAt(hist, linkPlan, false)
		if err != nil {
			return nil, fmt.Errorf("faults sweep: histogram rate %g: %w", rate, err)
		}
		t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("rate=%.0e", rate), Values: []float64{
			pixel.PSNR(clean, out), // +Inf when the output is untouched
			float64(bStats.DRAM.ECCCorrected),
			float64(bStats.DRAM.ECCUncorrected),
			float64(hStats.NoC.LinkFaults),
			(float64(hStats.Cycles)/float64(histBase.Cycles) - 1) * 100,
		}})
	}
	return t, nil
}
