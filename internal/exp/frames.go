package exp

import (
	"fmt"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/pixel"
)

// Frames measures steady-state multi-frame throughput: the same kernel
// launched repeatedly on one machine whose DRAM/bank state persists
// across launches (the paper's datacenter scenario — a resident
// accelerator streaming frames). Cold-start effects (row buffers,
// instruction cache) amortize; the table reports the per-frame cycles
// of the first vs a steady-state launch.
func (c *Context) Frames() (*Table, error) {
	t := &Table{
		Name: "frames", Title: "multi-frame steady state (per-frame kcycles)",
		Columns: []string{"frame1", "steady", "warmup%"},
		Notes:   []string{"steady = average of frames 2..4 on a machine with persistent DRAM state"},
	}
	for _, name := range []string{"Brighten", "GaussianBlur", "Histogram"} {
		wl, err := wlByName(name)
		if err != nil {
			return nil, err
		}
		imgW, imgH := c.sizeOf(wl)
		w := wl.Build()
		art, err := compiler.Compile(&c.BenchCfg, w.Pipe, imgW, imgH, compiler.Opt)
		if err != nil {
			return nil, err
		}
		m, err := cube.New(c.BenchCfg)
		if err != nil {
			return nil, err
		}
		var frameCycles []float64
		var prevEnd int64
		for f := 0; f < 4; f++ {
			img := pixel.Synth(imgW, imgH, uint64(f)+400)
			if err := compiler.LoadInput(m, art, img); err != nil {
				return nil, err
			}
			stats, err := compiler.Execute(m, art)
			if err != nil {
				return nil, fmt.Errorf("frames %s frame %d: %w", name, f, err)
			}
			// The vault clock persists across launches: per-frame cost
			// is the delta.
			frameCycles = append(frameCycles, float64(stats.Cycles-prevEnd))
			prevEnd = stats.Cycles
		}
		steady := (frameCycles[1] + frameCycles[2] + frameCycles[3]) / 3
		t.Rows = append(t.Rows, Row{Label: name, Values: []float64{
			frameCycles[0] / 1e3, steady / 1e3,
			(frameCycles[0] - steady) / steady * 100,
		}})
	}
	return t, nil
}
