package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"ipim/internal/workloads"
)

func TestBenchRecordsAndJSON(t *testing.T) {
	c := NewContext()
	c.SizeDiv = 16 // shrink for a fast pass; shapes are unchanged
	recs, err := c.BenchRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(workloads.All()) {
		t.Fatalf("got %d records, want %d", len(recs), len(workloads.All()))
	}
	for _, r := range recs {
		if r.Workload == "" || r.Config != "opt" {
			t.Errorf("record %+v missing identity", r)
		}
		if r.Cycles <= 0 || r.KernelNS != r.Cycles || r.EnergyJ <= 0 || r.IPC <= 0 {
			t.Errorf("%s: implausible accounting %+v", r.Workload, r)
		}
		if r.ImgW <= 0 || r.ImgH <= 0 {
			t.Errorf("%s: missing image dims", r.Workload)
		}
	}

	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var round struct {
		Results []BenchRecord `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(round.Results) != len(recs) || round.Results[0] != recs[0] {
		t.Error("JSON round-trip lost data")
	}
}

func TestDNNBenchRecords(t *testing.T) {
	c := NewContext()
	c.SizeDiv = 8 // dnnSizeOf keeps >= 2 tiles/PE so stage-ahead stays engaged
	recs, err := c.DNNBenchRecords()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*len(workloads.DNN()) {
		t.Fatalf("got %d records, want %d", len(recs), 2*len(workloads.DNN()))
	}
	for i, r := range recs {
		wantCfg := "opt"
		if i%2 == 1 {
			wantCfg = "opt+multi_array"
		}
		if r.Config != wantCfg {
			t.Errorf("record %d config %q, want %q", i, r.Config, wantCfg)
		}
		if r.Cycles <= 0 || r.KernelNS != r.Cycles || r.EnergyJ <= 0 || r.IPC <= 0 {
			t.Errorf("%s/%s: implausible accounting %+v", r.Workload, r.Config, r)
		}
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("output is not valid JSON")
	}
}
