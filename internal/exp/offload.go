package exp

import (
	"ipim/internal/compiler"
	"ipim/internal/host"
)

// Offload models the system-integration picture (paper Sec. VI): kernel
// time on the full machine vs PCIe transfer time for one frame, and the
// batch size at which transfers amortize below 10% of the total — the
// reason the paper's standalone accelerator is used with resident data
// in the datacenter scenario.
func (c *Context) Offload() (*Table, error) {
	t := &Table{
		Name: "offload", Title: "host offload over PCIe 3.0 x16 (per frame, full machine)",
		Columns: []string{"kernel(us)", "xfer(us)", "xferShare%", "batch@10%"},
		Notes: []string{
			"paper Sec. VI: standalone accelerator, PCIe-attached, data resident across kernels",
		},
	}
	bus := host.PCIe3x16()
	for _, wl := range suite() {
		r, err := c.run(wl, compiler.Opt, c.BenchCfg, "bench")
		if err != nil {
			return nil, err
		}
		pipe := wl.Build().Pipe
		outPixels := r.pixels * float64(pipe.OutNum*pipe.OutNum) / float64(pipe.OutDen*pipe.OutDen)
		o := host.Offload{
			InputBytes:  int64(r.pixels * 4),
			OutputBytes: int64(outPixels * 4),
			KernelNS:    c.machineTimeSec(r) * 1e9,
		}
		// Smallest batch with transfer share <= 10%.
		batch := 1
		for batch < 1<<20 {
			total := o.Amortized(bus, batch)
			if (total-float64(batch)*o.KernelNS)/total <= 0.10 {
				break
			}
			batch *= 2
		}
		xfer := bus.TransferNS(o.InputBytes) + bus.TransferNS(o.OutputBytes)
		t.Rows = append(t.Rows, Row{Label: wl.Name, Values: []float64{
			o.KernelNS / 1e3, xfer / 1e3, o.TransferShare(bus) * 100, float64(batch),
		}})
	}
	return t, nil
}
