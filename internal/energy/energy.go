// Package energy implements iPIM's energy and area models. All dynamic
// per-event energies come straight from the paper's Table III; the area
// constants come from Table IV (which already includes the conservative
// 2x DRAM-process overhead the paper applies). The PGSM/VSM access
// energies and the background/core power — which the paper derived from
// cacti-3DD and the ARM Cortex-A5 datasheet but does not tabulate — use
// documented cacti-class estimates (see DESIGN.md §5).
package energy

import "ipim/internal/sim"

// Model holds per-event energies in joules and standby powers in watts.
type Model struct {
	// Table III "J/access".
	DRAMRdWr  float64 // 0.52 nJ per 128-bit CAS
	DRAMRasOp float64 // 0.22 nJ per ACT or PRE
	AddrRF    float64 // 0.43 pJ per access
	DataRF    float64 // 2.66 pJ per access
	SIMDUnit  float64 // 87.37 pJ per vector op
	IntALU    float64 // 11.05 pJ per op

	// Table III "J/bit".
	PEBusBit  float64 // 0.017 pJ/bit
	TSVBit    float64 // 4.64 pJ/bit
	SerdesBit float64 // 4.50 pJ/bit

	// cacti-class estimates for the scratchpads (per 128-bit access).
	PGSM float64
	VSM  float64

	// Refresh energy per all-bank refresh per bank.
	Refresh float64

	// Standby powers.
	BankBackgroundW float64 // per bank
	CoreW           float64 // control core, per vault (ARM A5-class)
}

// DefaultModel returns the Table III energy model.
func DefaultModel() Model {
	const (
		pJ = 1e-12
		nJ = 1e-9
	)
	return Model{
		DRAMRdWr:        0.52 * nJ,
		DRAMRasOp:       0.22 * nJ,
		AddrRF:          0.43 * pJ,
		DataRF:          2.66 * pJ,
		SIMDUnit:        87.37 * pJ,
		IntALU:          11.05 * pJ,
		PEBusBit:        0.017 * pJ,
		TSVBit:          4.64 * pJ,
		SerdesBit:       4.50 * pJ,
		PGSM:            4.0 * pJ,
		VSM:             20.0 * pJ,
		Refresh:         28.0 * nJ, // tRFC x refresh current class estimate
		BankBackgroundW: 0.5e-3,
		CoreW:           80e-3,
	}
}

// Breakdown is the Fig. 9 energy decomposition in joules.
type Breakdown struct {
	DRAM     float64 // background + RAS + CAS + refresh
	SIMDUnit float64 // "all floating/integer operation energy" incl. the int ALUs
	AddrRF   float64
	DataRF   float64
	PGSM     float64
	Others   float64 // data movement (PEbus/TSV/NoC/SERDES) + VSM + control core
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.DRAM + b.SIMDUnit + b.AddrRF + b.DataRF + b.PGSM + b.Others
}

// PIMDieFraction returns the share of energy spent on the PIM dies
// (everything except Others), the quantity the paper reports as 89.17%.
func (b Breakdown) PIMDieFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return (t - b.Others) / t
}

// Compute converts run statistics into the Fig. 9 energy breakdown.
// nBanks and nVaults describe the portion of the machine the stats
// cover (for background/core standby energy); cycleNS is the clock
// period in nanoseconds (1 at 1 GHz).
func (m Model) Compute(s *sim.Stats, nBanks, nVaults int, cycleNS float64) Breakdown {
	seconds := float64(s.Cycles) * cycleNS * 1e-9
	var b Breakdown
	b.DRAM = float64(s.DRAM.Reads+s.DRAM.Writes)*m.DRAMRdWr +
		float64(s.DRAM.Activates+s.DRAM.Precharges)*m.DRAMRasOp +
		float64(s.DRAM.Refreshes)*float64(nBanks)*m.Refresh +
		seconds*m.BankBackgroundW*float64(nBanks)
	b.SIMDUnit = float64(s.SIMDOps)*m.SIMDUnit + float64(s.IntALUOps)*m.IntALU
	b.AddrRF = float64(s.AddrRFAcc) * m.AddrRF
	b.DataRF = float64(s.DataRFAcc) * m.DataRF
	b.PGSM = float64(s.PGSMAcc) * m.PGSM
	const beatBits = 128
	movement := float64(s.PEBusBeats)*beatBits*m.PEBusBit +
		float64(s.TSVBeats)*beatBits*m.TSVBit +
		float64(s.NoC.Flits)*beatBits*m.TSVBit + // on-chip mesh links are TSV-class wires
		float64(s.SerdesBeat)*32*m.SerdesBit
	b.Others = movement +
		float64(s.VSMAcc)*m.VSM +
		seconds*m.CoreW*float64(nVaults)
	return b
}
