package energy

import "ipim/internal/sim"

// Area model (paper Table IV). Per-unit areas are derived from the
// table's totals (which already include the conservative 2x
// DRAM-process overhead): 64 SIMD units = 2.26 mm², 64 int ALUs =
// 0.32 mm², 64 AddrRFs (256 B) = 0.20 mm², 64 DataRFs (1 KB) =
// 1.79 mm², 16 memory controllers = 1.84 mm², 16 PGSMs (8 KB) =
// 3.87 mm². Register files and scratchpads scale linearly with
// capacity for the Fig. 10 sensitivity configurations.
const (
	// mm² per unit at Table III capacities.
	areaSIMDUnit = 2.26 / 64
	areaIntALU   = 0.32 / 64
	areaAddrRF   = 0.20 / 64 // at 256 B
	areaDataRF   = 1.79 / 64 // at 1 KB (64 x 128 b)
	areaMemCtrl  = 1.84 / 16
	areaPGSM     = 3.87 / 16 // at 8 KB

	// Base-logic-die components (silicon process, no 2x overhead).
	AreaControlCore = 0.92 // mm², includes the VSM
	AreaVSM         = 0.23 // mm², part of AreaControlCore
	// BaseDieVaultBudget is the spare base-die area per vault the
	// control core must fit into (paper cites 3.5 mm² from TETRIS).
	BaseDieVaultBudget = 3.5

	// DRAMDieArea is one HBM-class DRAM die (paper cites 96 mm²).
	DRAMDieArea = 96.0
)

// AreaItem is one row of the Table IV area report.
type AreaItem struct {
	Name     string
	Number   int
	AreaMM2  float64 // total for all units, incl. DRAM-process overhead
	Overhead float64 // fraction of the DRAM die
}

// AreaReport reproduces Table IV for a configuration: the per-DRAM-die
// overhead of the execution components. The paper's reference die holds
// 16 PGs x 4 PEs (one PG per vault per die x 16 vaults).
func AreaReport(cfg *sim.Config) []AreaItem {
	// Components on one DRAM die: one PG per vault, all vaults.
	nPG := cfg.VaultsPerCube
	nPE := nPG * cfg.PEsPerPG
	// Linear capacity scaling for the sensitivity sweeps.
	drfScale := float64(cfg.DataRFEntries) / 64
	arfScale := float64(cfg.AddrRFEntries) / 64
	pgsmScale := float64(cfg.PGSMBytes) / float64(8<<10)
	items := []AreaItem{
		{Name: "SIMD Unit", Number: nPE, AreaMM2: float64(nPE) * areaSIMDUnit},
		{Name: "Int ALU", Number: nPE, AreaMM2: float64(nPE) * areaIntALU},
		{Name: "Address Register File", Number: nPE, AreaMM2: float64(nPE) * areaAddrRF * arfScale},
		{Name: "Data Register File", Number: nPE, AreaMM2: float64(nPE) * areaDataRF * drfScale},
		{Name: "Memory Controller", Number: nPG, AreaMM2: float64(nPG) * areaMemCtrl},
		{Name: "PGSM", Number: nPG, AreaMM2: float64(nPG) * areaPGSM * pgsmScale},
	}
	for i := range items {
		items[i].Overhead = items[i].AreaMM2 / DRAMDieArea
	}
	return items
}

// TotalArea sums an area report.
func TotalArea(items []AreaItem) (mm2, overhead float64) {
	for _, it := range items {
		mm2 += it.AreaMM2
	}
	return mm2, mm2 / DRAMDieArea
}

// NaivePerBankOverhead returns the per-DRAM-die area overhead of the
// strawman that integrates a full control core next to every bank
// (paper: 122.36%, ~10x worse than the decoupled design). The core
// pays the same conservative 2x DRAM-process factor.
func NaivePerBankOverhead(cfg *sim.Config) float64 {
	base, _ := TotalArea(AreaReport(cfg))
	nPE := cfg.VaultsPerCube * cfg.PEsPerPG
	cores := float64(nPE) * (AreaControlCore - AreaVSM) * 2
	return (base + cores) / DRAMDieArea
}

// CoreFitsBaseDie reports whether the control core fits the spare
// base-die area per vault.
func CoreFitsBaseDie() bool { return AreaControlCore <= BaseDieVaultBudget }
