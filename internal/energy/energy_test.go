package energy

import (
	"math"
	"testing"

	"ipim/internal/sim"
)

func TestBreakdownTotalEqualsSum(t *testing.T) {
	b := Breakdown{DRAM: 1, SIMDUnit: 2, AddrRF: 3, DataRF: 4, PGSM: 5, Others: 6}
	if b.Total() != 21 {
		t.Fatalf("Total = %v, want 21", b.Total())
	}
}

func TestPIMDieFraction(t *testing.T) {
	b := Breakdown{DRAM: 80, SIMDUnit: 5, AddrRF: 1, DataRF: 2, PGSM: 2, Others: 10}
	got := b.PIMDieFraction()
	if math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("PIMDieFraction = %v, want 0.9", got)
	}
	var zero Breakdown
	if zero.PIMDieFraction() != 0 {
		t.Fatal("zero breakdown fraction must be 0")
	}
}

func TestComputeUsesTableIIIConstants(t *testing.T) {
	m := DefaultModel()
	var s sim.Stats
	s.Cycles = 1000
	s.DRAM.Reads = 100
	s.DRAM.Writes = 50
	s.DRAM.Activates = 10
	s.DRAM.Precharges = 10
	s.SIMDOps = 200
	s.IntALUOps = 40
	s.AddrRFAcc = 300
	s.DataRFAcc = 400
	s.PGSMAcc = 20
	s.VSMAcc = 5
	s.TSVBeats = 8
	s.PEBusBeats = 150

	b := m.Compute(&s, 4, 1, 1.0)

	// CAS energy: 150 accesses x 0.52 nJ.
	wantCAS := 150 * 0.52e-9
	wantRAS := 20 * 0.22e-9
	bg := 1000e-9 * m.BankBackgroundW * 4
	if math.Abs(b.DRAM-(wantCAS+wantRAS+bg)) > 1e-15 {
		t.Errorf("DRAM = %v, want %v", b.DRAM, wantCAS+wantRAS+bg)
	}
	wantSIMD := 200*87.37e-12 + 40*11.05e-12
	if math.Abs(b.SIMDUnit-wantSIMD) > 1e-18 {
		t.Errorf("SIMDUnit = %v, want %v", b.SIMDUnit, wantSIMD)
	}
	if math.Abs(b.AddrRF-300*0.43e-12) > 1e-18 {
		t.Errorf("AddrRF = %v", b.AddrRF)
	}
	if math.Abs(b.DataRF-400*2.66e-12) > 1e-18 {
		t.Errorf("DataRF = %v", b.DataRF)
	}
	if b.Others <= 0 {
		t.Error("Others must include movement + core energy")
	}
	// Total must exceed any single component.
	if b.Total() <= b.DRAM {
		t.Error("total not larger than DRAM component")
	}
}

func TestComputeDRAMDominatesForMemoryBound(t *testing.T) {
	// A bandwidth-bound profile (like Brighten): DRAM energy dominates,
	// and most energy lands on the PIM dies (paper: 89.17%).
	m := DefaultModel()
	var s sim.Stats
	s.Cycles = 100000
	s.DRAM.Reads = 50000
	s.DRAM.Writes = 25000
	s.DRAM.Activates = 600
	s.DRAM.Precharges = 600
	s.SIMDOps = 75000
	s.DataRFAcc = 225000
	s.AddrRFAcc = 150000
	s.IntALUOps = 50000
	s.TSVBeats = 100
	s.PEBusBeats = 75000
	b := m.Compute(&s, 32, 1, 1.0)
	if b.DRAM < b.SIMDUnit || b.DRAM < b.Others {
		t.Errorf("DRAM energy should dominate: %+v", b)
	}
	if f := b.PIMDieFraction(); f < 0.7 {
		t.Errorf("PIM-die fraction = %v, want the large majority", f)
	}
}

func TestAreaReportMatchesTableIV(t *testing.T) {
	cfg := sim.Default()
	items := AreaReport(&cfg)
	want := map[string]float64{
		"SIMD Unit":             2.26,
		"Int ALU":               0.32,
		"Address Register File": 0.20,
		"Data Register File":    1.79,
		"Memory Controller":     1.84,
		"PGSM":                  3.87,
	}
	for _, it := range items {
		w, ok := want[it.Name]
		if !ok {
			t.Errorf("unexpected area item %q", it.Name)
			continue
		}
		if math.Abs(it.AreaMM2-w) > 1e-9 {
			t.Errorf("%s area = %v, want %v", it.Name, it.AreaMM2, w)
		}
	}
	total, overhead := TotalArea(items)
	if math.Abs(total-10.28) > 1e-9 {
		t.Errorf("total area = %v, want 10.28", total)
	}
	// Paper: 10.71%.
	if math.Abs(overhead-0.1071) > 0.001 {
		t.Errorf("overhead = %v, want ~0.1071", overhead)
	}
}

func TestAreaScalesWithCapacity(t *testing.T) {
	cfg := sim.Default()
	cfg.DataRFEntries = 128
	cfg.PGSMBytes = 2 << 10
	items := AreaReport(&cfg)
	for _, it := range items {
		switch it.Name {
		case "Data Register File":
			if math.Abs(it.AreaMM2-2*1.79) > 1e-9 {
				t.Errorf("128-entry DRF area = %v, want %v", it.AreaMM2, 2*1.79)
			}
		case "PGSM":
			if math.Abs(it.AreaMM2-3.87/4) > 1e-9 {
				t.Errorf("2KB PGSM area = %v, want %v", it.AreaMM2, 3.87/4)
			}
		}
	}
}

func TestNaivePerBankOverheadIsMuchWorse(t *testing.T) {
	cfg := sim.Default()
	_, decoupled := TotalArea(AreaReport(&cfg))
	naive := NaivePerBankOverhead(&cfg)
	if naive < 5*decoupled {
		t.Errorf("naive overhead %v not dramatically worse than decoupled %v", naive, decoupled)
	}
	// Paper: 122.36% naive. Our constants give the same order.
	if naive < 0.8 || naive > 2.0 {
		t.Errorf("naive overhead = %v, want order of 100%%", naive)
	}
}

func TestCoreFitsBaseDie(t *testing.T) {
	if !CoreFitsBaseDie() {
		t.Fatalf("control core %v mm² must fit the %v mm² vault budget", AreaControlCore, BaseDieVaultBudget)
	}
}
