package engine

import (
	"encoding/binary"
	"fmt"

	"ipim/internal/isa"
)

// Full-mask vector movers and fixed-beat DMA copies for the functional
// execution mode. Each is the corresponding masked or generic accessor
// specialized to its hot shape: the whole span is bounds-checked once,
// converted to an array pointer, and moved with constant-index
// accesses — no per-lane mask tests, no memmove calls. When the span
// would wrap mod 2^32 or leave the storage, each delegates to (or
// reproduces the error of) its generic counterpart, so error text and
// exact-wraparound addressing stay identical to cycle mode. The
// cycle-mode issue path never calls these — its accessors are
// byte-for-byte the seed implementations — so the timing model's
// behavior cannot drift when these change.

// vecBytes is one full vector register in bank/PGSM bytes. The
// constant-index copies below unroll all four lanes by hand; the
// assertion fails to compile if the lane count ever changes.
const vecBytes = 4 * isa.VecLanes

var _ [1]struct{} = [5 - isa.VecLanes]struct{}{}

// LoadVectorFull is LoadVector with every lane selected.
func (pe *PE) LoadVectorFull(addr uint32, reg int) error {
	end := uint64(addr) + vecBytes
	if end > uint64(pe.bankBytes) {
		return pe.LoadVector(addr, reg, isa.VecMaskAll)
	}
	bank, err := pe.ensure(int(end))
	if err != nil {
		return err
	}
	b := (*[vecBytes]byte)(bank[addr:end])
	d := &pe.DataRF[reg]
	d[0] = binary.LittleEndian.Uint32(b[0:4])
	d[1] = binary.LittleEndian.Uint32(b[4:8])
	d[2] = binary.LittleEndian.Uint32(b[8:12])
	d[3] = binary.LittleEndian.Uint32(b[12:16])
	return nil
}

// StoreVectorFull is StoreVector with every lane selected.
func (pe *PE) StoreVectorFull(addr uint32, reg int) error {
	end := uint64(addr) + vecBytes
	if end > uint64(pe.bankBytes) {
		return pe.StoreVector(addr, reg, isa.VecMaskAll)
	}
	bank, err := pe.ensure(int(end))
	if err != nil {
		return err
	}
	b := (*[vecBytes]byte)(bank[addr:end])
	d := &pe.DataRF[reg]
	binary.LittleEndian.PutUint32(b[0:4], d[0])
	binary.LittleEndian.PutUint32(b[4:8], d[1])
	binary.LittleEndian.PutUint32(b[8:12], d[2])
	binary.LittleEndian.PutUint32(b[12:16], d[3])
	return nil
}

// VectorToPGSMFull is VectorToPGSM with every lane selected.
func (pg *PG) VectorToPGSMFull(pe *PE, addr uint32, reg int) error {
	end := uint64(addr) + vecBytes
	if end > uint64(len(pg.PGSM)) {
		return pg.VectorToPGSM(pe, addr, reg, isa.VecMaskAll)
	}
	b := (*[vecBytes]byte)(pg.PGSM[addr:end])
	d := &pe.DataRF[reg]
	binary.LittleEndian.PutUint32(b[0:4], d[0])
	binary.LittleEndian.PutUint32(b[4:8], d[1])
	binary.LittleEndian.PutUint32(b[8:12], d[2])
	binary.LittleEndian.PutUint32(b[12:16], d[3])
	return nil
}

// VectorFromPGSMFull is VectorFromPGSM with every lane selected.
func (pg *PG) VectorFromPGSMFull(pe *PE, addr uint32, reg int) error {
	end := uint64(addr) + vecBytes
	if end > uint64(len(pg.PGSM)) {
		return pg.VectorFromPGSM(pe, addr, reg, isa.VecMaskAll)
	}
	b := (*[vecBytes]byte)(pg.PGSM[addr:end])
	d := &pe.DataRF[reg]
	d[0] = binary.LittleEndian.Uint32(b[0:4])
	d[1] = binary.LittleEndian.Uint32(b[4:8])
	d[2] = binary.LittleEndian.Uint32(b[8:12])
	d[3] = binary.LittleEndian.Uint32(b[12:16])
	return nil
}

// DMABankToPGSM copies one n-byte bank beat into the PGSM — the
// functional ld_pgsm data movement. Bounds behavior and error text
// match ReadBank followed by WritePGSM exactly; the 16-byte beat (the
// DRAM column width) moves as a fixed-size copy.
func (pg *PG) DMABankToPGSM(pe *PE, bankAddr, pgsmAddr uint32, n int) error {
	bank, err := pe.ensure(int(bankAddr) + n)
	if err != nil {
		return err
	}
	if int(pgsmAddr)+n > len(pg.PGSM) {
		return fmt.Errorf("engine: PGSM write at %#x+%d beyond %d bytes", pgsmAddr, n, len(pg.PGSM))
	}
	if n == 16 {
		*(*[16]byte)(pg.PGSM[pgsmAddr:]) = *(*[16]byte)(bank[bankAddr:])
		return nil
	}
	copy(pg.PGSM[pgsmAddr:int(pgsmAddr)+n], bank[bankAddr:int(bankAddr)+n])
	return nil
}

// DMAPGSMToBank copies one n-byte PGSM beat into the bank — the
// functional st_pgsm data movement. Bounds behavior and error text
// match ReadPGSM followed by WriteBank exactly.
func (pg *PG) DMAPGSMToBank(pe *PE, pgsmAddr, bankAddr uint32, n int) error {
	if int(pgsmAddr)+n > len(pg.PGSM) {
		return fmt.Errorf("engine: PGSM access at %#x+%d beyond %d bytes", pgsmAddr, n, len(pg.PGSM))
	}
	bank, err := pe.ensure(int(bankAddr) + n)
	if err != nil {
		return err
	}
	if n == 16 {
		*(*[16]byte)(bank[bankAddr:]) = *(*[16]byte)(pg.PGSM[pgsmAddr:])
		return nil
	}
	copy(bank[bankAddr:int(bankAddr)+n], pg.PGSM[pgsmAddr:int(pgsmAddr)+n])
	return nil
}
