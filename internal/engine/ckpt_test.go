package engine

import (
	"bytes"
	"testing"
)

func TestBankPrefixRestoreRoundTrip(t *testing.T) {
	src := newTestPE(t)
	if got := src.BankPrefix(); got != nil {
		t.Fatalf("untouched bank has a %d-byte prefix, want nil", len(got))
	}
	if err := src.WriteBank(0x40, []byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	prefix := src.BankPrefix()
	if len(prefix) < 0x44 {
		t.Fatalf("prefix covers %d bytes, want at least 0x44", len(prefix))
	}

	dst := newTestPE(t)
	dst.RestoreBank(prefix)
	got, err := dst.ReadBank(0x40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Errorf("restored bank reads %v, want [9 8 7 6]", got)
	}
	if !bytes.Equal(dst.BankPrefix(), prefix) {
		t.Error("restored prefix differs from the checkpointed one")
	}
}

func TestRestoreBankClearsStaleTail(t *testing.T) {
	// A pooled machine may have materialized more of the bank in a
	// previous life than the checkpoint carries; the tail must read
	// zero after the restore, exactly like unmaterialized DRAM.
	pe := newTestPE(t)
	if err := pe.WriteBank(0x200, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	pe.RestoreBank([]byte{1, 2, 3}) // much shorter prefix
	got, err := pe.ReadBank(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 0}) {
		t.Errorf("bank head reads %v, want [1 2 3 0]", got)
	}
	tail, err := pe.ReadBank(0x200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tail[0] != 0 || tail[1] != 0 {
		t.Errorf("stale tail survived the restore: %v", tail)
	}
}

func TestRestoreBankOversizePanics(t *testing.T) {
	pe := newTestPE(t)
	defer func() {
		if recover() == nil {
			t.Error("restoring a prefix larger than the bank must panic")
		}
	}()
	pe.RestoreBank(make([]byte, pe.bankBytes+1))
}
