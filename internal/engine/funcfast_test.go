package engine

// Differential tests for the functional-mode full-mask movers and DMA
// copies (funcfast.go): each specialized accessor must be byte- and
// error-identical to the generic masked accessor it shortcuts, on
// in-bounds spans, exact-fit boundaries, out-of-bounds spans, and
// 32-bit address wraparound.

import (
	"bytes"
	"fmt"
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// pePair returns two identically seeded PEs in their PGs.
func pePair(t *testing.T) (*PG, *PE, *PG, *PE) {
	t.Helper()
	cfg := sim.TestTiny()
	pgA := NewPG(&cfg, 0, 0, 0)
	pgB := NewPG(&cfg, 0, 0, 0)
	peA, peB := pgA.PEs[0], pgB.PEs[0]
	for _, pe := range []*PE{peA, peB} {
		var buf [1024]byte
		for i := range buf {
			buf[i] = byte(i*13 + 7)
		}
		if err := pe.WriteBank(0, buf[:]); err != nil {
			t.Fatal(err)
		}
		for r := range pe.DataRF {
			for l := range pe.DataRF[r] {
				pe.DataRF[r][l] = uint32(r<<8 | l | 0x5A5A0000)
			}
		}
	}
	for _, pg := range []*PG{pgA, pgB} {
		for i := range pg.PGSM {
			pg.PGSM[i] = byte(i*31 + 5)
		}
	}
	return pgA, peA, pgB, peB
}

// errText renders an error for equality comparison (nil-safe).
func errText(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// comparePE fails where two PEs' register files or low/high bank bytes
// differ.
func comparePE(t *testing.T, label string, a, b *PE) {
	t.Helper()
	for r := range a.DataRF {
		if a.DataRF[r] != b.DataRF[r] {
			t.Fatalf("%s: DataRF[%d] diverged: %v vs %v", label, r, a.DataRF[r], b.DataRF[r])
		}
	}
	ba, err := a.ReadBank(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.ReadBank(0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("%s: low bank bytes diverged", label)
	}
}

func TestLoadVectorFullMatchesGeneric(t *testing.T) {
	cfg := sim.TestTiny()
	bank := uint32(cfg.BankBytes)
	addrs := []uint32{0, 4, 20, 100, bank - 16, bank - 15, bank - 1, 0xFFFFFFF0, 0xFFFFFFFC}
	for _, addr := range addrs {
		_, peA, _, peB := pePair(t)
		errGen := peA.LoadVector(addr, 3, isa.VecMaskAll)
		errFull := peB.LoadVectorFull(addr, 3)
		if errText(errGen) != errText(errFull) {
			t.Fatalf("addr %#x: generic err %q, full err %q", addr, errText(errGen), errText(errFull))
		}
		comparePE(t, fmt.Sprintf("load addr %#x", addr), peA, peB)
	}
}

func TestStoreVectorFullMatchesGeneric(t *testing.T) {
	cfg := sim.TestTiny()
	bank := uint32(cfg.BankBytes)
	addrs := []uint32{0, 8, 36, bank - 16, bank - 15, 0xFFFFFFF4}
	for _, addr := range addrs {
		_, peA, _, peB := pePair(t)
		errGen := peA.StoreVector(addr, 5, isa.VecMaskAll)
		errFull := peB.StoreVectorFull(addr, 5)
		if errText(errGen) != errText(errFull) {
			t.Fatalf("addr %#x: generic err %q, full err %q", addr, errText(errGen), errText(errFull))
		}
		comparePE(t, fmt.Sprintf("store addr %#x", addr), peA, peB)
		if errGen == nil && addr < bank-16 {
			got, err := peA.ReadBank(addr, 16)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(got, make([]byte, 16)) {
				t.Fatalf("addr %#x: store wrote nothing", addr)
			}
		}
	}
}

func TestVectorPGSMFullMatchesGeneric(t *testing.T) {
	cfg := sim.TestTiny()
	sz := uint32(cfg.PGSMBytes)
	addrs := []uint32{0, 12, sz - 16, sz - 15, sz, 0xFFFFFFF8}
	for _, addr := range addrs {
		pgA, peA, pgB, peB := pePair(t)
		errGen := pgA.VectorToPGSM(peA, addr, 2, isa.VecMaskAll)
		errFull := pgB.VectorToPGSMFull(peB, addr, 2)
		if errText(errGen) != errText(errFull) {
			t.Fatalf("to-PGSM addr %#x: generic err %q, full err %q", addr, errText(errGen), errText(errFull))
		}
		if !bytes.Equal(pgA.PGSM, pgB.PGSM) {
			t.Fatalf("to-PGSM addr %#x: PGSM bytes diverged", addr)
		}
		errGen = pgA.VectorFromPGSM(peA, addr, 7, isa.VecMaskAll)
		errFull = pgB.VectorFromPGSMFull(peB, addr, 7)
		if errText(errGen) != errText(errFull) {
			t.Fatalf("from-PGSM addr %#x: generic err %q, full err %q", addr, errText(errGen), errText(errFull))
		}
		comparePE(t, fmt.Sprintf("from-PGSM addr %#x", addr), peA, peB)
	}
}

// dmaBankToPGSMRef is the generic reference the DMA fast path replaces:
// the exact ReadBank+WritePGSM sequence the instruction-major loop runs.
func dmaBankToPGSMRef(pg *PG, pe *PE, bankAddr, pgsmAddr uint32, n int) error {
	b, err := pe.ReadBank(bankAddr, n)
	if err != nil {
		return err
	}
	return pg.WritePGSM(pgsmAddr, b)
}

func dmaPGSMToBankRef(pg *PG, pe *PE, pgsmAddr, bankAddr uint32, n int) error {
	b, err := pg.ReadPGSM(pgsmAddr, n)
	if err != nil {
		return err
	}
	return pe.WriteBank(bankAddr, b)
}

func TestDMABankToPGSMMatchesGeneric(t *testing.T) {
	cfg := sim.TestTiny()
	bank, sz := uint32(cfg.BankBytes), uint32(cfg.PGSMBytes)
	cases := []struct {
		bankAddr, pgsmAddr uint32
		n                  int
	}{
		{0x100, 0x20, 16},  // the DRAM column beat (fixed-size copy)
		{0x104, 0x24, 16},  // unaligned beat
		{0x40, 0x40, 7},    // odd size: copy path
		{bank - 16, 0, 16}, // bank end, exact fit
		{bank - 8, 0, 16},  // bank overflow
		{0, sz - 16, 16},   // PGSM end, exact fit
		{0, sz - 8, 16},    // PGSM overflow
	}
	for _, tc := range cases {
		pgA, peA, pgB, peB := pePair(t)
		errRef := dmaBankToPGSMRef(pgA, peA, tc.bankAddr, tc.pgsmAddr, tc.n)
		errDMA := pgB.DMABankToPGSM(peB, tc.bankAddr, tc.pgsmAddr, tc.n)
		if errText(errRef) != errText(errDMA) {
			t.Fatalf("%+v: ref err %q, dma err %q", tc, errText(errRef), errText(errDMA))
		}
		if !bytes.Equal(pgA.PGSM, pgB.PGSM) {
			t.Fatalf("%+v: PGSM bytes diverged", tc)
		}
	}
}

func TestDMAPGSMToBankMatchesGeneric(t *testing.T) {
	cfg := sim.TestTiny()
	bank, sz := uint32(cfg.BankBytes), uint32(cfg.PGSMBytes)
	cases := []struct {
		pgsmAddr, bankAddr uint32
		n                  int
	}{
		{0x20, 0x100, 16},
		{0x2C, 0x10C, 16},
		{0x40, 0x40, 5},
		{sz - 16, 0, 16},
		{sz - 4, 0, 16},    // PGSM overflow: must error before touching the bank
		{0, bank - 16, 16}, // bank end, exact fit
		{0, bank - 12, 16}, // bank overflow
	}
	for _, tc := range cases {
		pgA, peA, pgB, peB := pePair(t)
		errRef := dmaPGSMToBankRef(pgA, peA, tc.pgsmAddr, tc.bankAddr, tc.n)
		errDMA := pgB.DMAPGSMToBank(peB, tc.pgsmAddr, tc.bankAddr, tc.n)
		if errText(errRef) != errText(errDMA) {
			t.Fatalf("%+v: ref err %q, dma err %q", tc, errText(errRef), errText(errDMA))
		}
		comparePE(t, fmt.Sprintf("%+v", tc), peA, peB)
	}
}
