// Package engine implements the execution side of iPIM's decoupled
// control-execution architecture: the Process Engine (PE) — SIMD unit,
// integer ALU, data/address register files and the near-bank memory —
// and the Process Group (PG) — four PEs, their shared scratchpad (PGSM)
// and the in-DRAM memory controller (paper Sec. IV-A/IV-E).
//
// The engine layer is purely functional: it moves and transforms bytes.
// All timing lives in the vault's control core model, which consults the
// PG's dram.Controller for bank access scheduling.
package engine

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Vector is one DataRF entry: 4 lanes of raw 32-bit data (FP32 or INT32
// depending on the instruction interpreting it).
type Vector [isa.VecLanes]uint32

// PE is one process engine: compute logic and buffers attached to one
// DRAM bank.
//
// Concurrency: a PE is owned by its vault — register files, scratchpads
// and all bank *writes* happen only on the goroutine currently running
// that vault (or on the host thread outside a run). The bank storage
// itself is additionally readable from other vaults' goroutines through
// SnapshotRead (the req instruction's remote-read path), which is why
// the backing slice is published through an atomic pointer: lazy growth
// swaps in a larger array without invalidating a concurrent reader's
// view of everything written before the swap.
type PE struct {
	// Index identifies the PE within its vault: pgID*PEsPerPG + peID.
	Index int

	DataRF []Vector
	AddrRF []int32

	bank      atomic.Pointer[[]byte] // lazily grown up to bankBytes
	bankBytes int
}

// NewPE builds a PE with the configured register files. A0-A3 are
// initialized with the PE's identifiers (paper Sec. IV-E).
func NewPE(cfg *sim.Config, cubeID, vaultID, pgID, peID int) *PE {
	pe := &PE{
		Index:     pgID*cfg.PEsPerPG + peID,
		DataRF:    make([]Vector, cfg.DataRFEntries),
		AddrRF:    make([]int32, cfg.AddrRFEntries),
		bankBytes: cfg.BankBytes,
	}
	pe.AddrRF[isa.ARFPeID] = int32(peID)
	pe.AddrRF[isa.ARFPgID] = int32(pgID)
	pe.AddrRF[isa.ARFVaultID] = int32(vaultID)
	pe.AddrRF[isa.ARFChipID] = int32(cubeID)
	return pe
}

// bankSlice returns the current backing array (nil before first use).
func (pe *PE) bankSlice() []byte {
	if p := pe.bank.Load(); p != nil {
		return *p
	}
	return nil
}

// ensure grows the lazily allocated bank storage to cover [0, end) and
// returns the (possibly freshly published) backing slice. Owner-only:
// growth is a single-writer publish; concurrent SnapshotRead callers
// keep a consistent older view.
func (pe *PE) ensure(end int) ([]byte, error) {
	if end > pe.bankBytes {
		return nil, fmt.Errorf("engine: bank access at %#x beyond %d-byte bank", end, pe.bankBytes)
	}
	bank := pe.bankSlice()
	if end > len(bank) {
		// Grow in 64 KB steps to amortize.
		sz := (end + 0xFFFF) &^ 0xFFFF
		if sz > pe.bankBytes {
			sz = pe.bankBytes
		}
		nb := make([]byte, sz)
		copy(nb, bank)
		pe.bank.Store(&nb)
		bank = nb
	}
	return bank, nil
}

// ReadBank copies n bytes at addr out of the bank. Owner-only (it may
// grow the bank); remote vaults use SnapshotRead.
func (pe *PE) ReadBank(addr uint32, n int) ([]byte, error) {
	bank, err := pe.ensure(int(addr) + n)
	if err != nil {
		return nil, err
	}
	return bank[addr : int(addr)+n], nil
}

// WriteBank copies b into the bank at addr. Owner-only.
func (pe *PE) WriteBank(addr uint32, b []byte) error {
	bank, err := pe.ensure(int(addr) + len(b))
	if err != nil {
		return err
	}
	copy(bank[addr:], b)
	return nil
}

// SnapshotRead returns a copy of n bytes at addr as of the most
// recently published bank array, zero-filling any tail the bank has not
// materialized yet (untouched DRAM reads as zero, exactly like the
// owner's ReadBank of never-written bytes). It never grows the bank, so
// it is safe to call from another vault's goroutine while the owner
// executes — provided the program itself does not write the addressed
// bytes in the same barrier phase (the SIMB memory model; see
// DESIGN.md).
func (pe *PE) SnapshotRead(addr uint32, n int) ([]byte, error) {
	if int(addr)+n > pe.bankBytes {
		return nil, fmt.Errorf("engine: bank access at %#x beyond %d-byte bank", int(addr)+n, pe.bankBytes)
	}
	out := make([]byte, n)
	bank := pe.bankSlice()
	if int(addr) < len(bank) {
		copy(out, bank[addr:])
	}
	return out, nil
}

// LoadVector reads vector lanes from the bank into DataRF[reg]. Only
// lanes selected by vmask are written; lane l's word comes from
// addr + 4*l. Addresses need only 4-byte alignment: the timing layer
// charges a second column access when the 128-bit window crosses a
// column boundary.
func (pe *PE) LoadVector(addr uint32, reg int, vmask uint8) error {
	hi := highSetLane(vmask)
	if hi < 0 {
		return nil
	}
	// Fast path: when the whole span [addr, addr+4*hi+4) fits the bank
	// without 32-bit address wraparound, one bounds check + growth
	// covers every lane. Lane addresses wrap mod 2^32 by the ISA's
	// indirect-addressing semantics (e.g. base-4 with lane 0 masked
	// off), so a span that overflows falls back to per-lane addressing.
	if end := uint64(addr) + uint64(4*hi) + 4; end <= uint64(pe.bankBytes) {
		bank, err := pe.ensure(int(end))
		if err != nil {
			return err
		}
		for l := 0; l <= hi; l++ {
			if vmask&(1<<uint(l)) == 0 {
				continue
			}
			pe.DataRF[reg][l] = binary.LittleEndian.Uint32(bank[addr+uint32(4*l):])
		}
		return nil
	}
	for l := 0; l <= hi; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		b, err := pe.ReadBank(addr+uint32(4*l), 4)
		if err != nil {
			return err
		}
		pe.DataRF[reg][l] = binary.LittleEndian.Uint32(b)
	}
	return nil
}

// highSetLane returns the highest lane index selected by vmask, or -1
// for an empty mask.
func highSetLane(vmask uint8) int {
	for l := isa.VecLanes - 1; l >= 0; l-- {
		if vmask&(1<<uint(l)) != 0 {
			return l
		}
	}
	return -1
}

// StoreVector writes the vmask-selected lanes of DataRF[reg] to the
// bank at addr (lane l to addr + 4*l).
func (pe *PE) StoreVector(addr uint32, reg int, vmask uint8) error {
	hi := highSetLane(vmask)
	if hi < 0 {
		return nil
	}
	// Same fast/slow split as LoadVector: batched unless the lane span
	// wraps or exceeds the bank.
	if end := uint64(addr) + uint64(4*hi) + 4; end <= uint64(pe.bankBytes) {
		bank, err := pe.ensure(int(end))
		if err != nil {
			return err
		}
		for l := 0; l <= hi; l++ {
			if vmask&(1<<uint(l)) == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(bank[addr+uint32(4*l):], pe.DataRF[reg][l])
		}
		return nil
	}
	var b [4]byte
	for l := 0; l <= hi; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b[:], pe.DataRF[reg][l])
		if err := pe.WriteBank(addr+uint32(4*l), b[:]); err != nil {
			return err
		}
	}
	return nil
}

// Comp executes one comp instruction on this PE.
func (pe *PE) Comp(in *isa.Instruction) {
	src1 := pe.DataRF[in.Src1]
	src2 := pe.DataRF[in.Src2]
	dst := pe.DataRF[in.Dst]
	for l := 0; l < isa.VecLanes; l++ {
		if in.VecMask&(1<<uint(l)) == 0 {
			continue
		}
		b := src2[l]
		if in.Mode == isa.ModeVS {
			b = src2[0] // scalar-vector: lane 0 broadcast
		}
		dst[l] = isa.EvalLane(in.ALU, src1[l], b, dst[l])
	}
	pe.DataRF[in.Dst] = dst
}

// CalcARF executes one calc_arf instruction on this PE's integer ALU.
func (pe *PE) CalcARF(in *isa.Instruction) {
	a := pe.AddrRF[in.Src1]
	var b int32
	if in.HasImm {
		b = int32(in.Imm)
	} else {
		b = pe.AddrRF[in.Src2]
	}
	pe.AddrRF[in.Dst] = isa.EvalI(in.ALU, a, b, pe.AddrRF[in.Dst])
}

// MovToDRF implements mov_drf: AddrRF[src] broadcast into one lane of
// DataRF[dst] (the scalar-to-vector multiplexer of Sec. IV-E).
func (pe *PE) MovToDRF(dst, src, lane int) {
	pe.DataRF[dst][lane] = uint32(pe.AddrRF[src])
}

// MovToARF implements mov_arf: one lane of DataRF[src] into AddrRF[dst].
func (pe *PE) MovToARF(dst, src, lane int) {
	pe.AddrRF[dst] = int32(pe.DataRF[src][lane])
}

// Reset zeroes DataRF[reg].
func (pe *PE) Reset(reg int) { pe.DataRF[reg] = Vector{} }

// FlipDataRFBit flips one bit of DataRF[reg] lane. The fault-injection
// layer uses it to corrupt the destination of an uncorrectable bank
// read; the bank backing store itself is never mutated (it may be
// concurrently snapshot-read by other vaults).
func (pe *PE) FlipDataRFBit(reg, lane int, bit uint) {
	pe.DataRF[reg][lane] ^= 1 << bit
}

// EffectiveAddr resolves a (possibly indirect) address field against
// this PE's AddrRF.
func (pe *PE) EffectiveAddr(addr uint32, indirect bool) uint32 {
	if indirect {
		return uint32(pe.AddrRF[addr])
	}
	return addr
}

// PG is one process group: PEs sharing a scratchpad and an in-DRAM
// memory controller.
type PG struct {
	ID   int
	PEs  []*PE
	PGSM []byte
	Ctrl *dram.Controller
}

// NewPG builds a process group with its PEs and controller.
func NewPG(cfg *sim.Config, cubeID, vaultID, pgID int) *PG {
	pg := &PG{
		ID:   pgID,
		PGSM: make([]byte, cfg.PGSMBytes),
		Ctrl: dram.NewController(cfg.PEsPerPG, cfg.DRAMReqQueue, cfg.Timing, cfg.Geometry(), cfg.Page, cfg.Sched),
	}
	for pe := 0; pe < cfg.PEsPerPG; pe++ {
		pg.PEs = append(pg.PEs, NewPE(cfg, cubeID, vaultID, pgID, pe))
	}
	return pg
}

// ReadPGSM copies n bytes at addr out of the scratchpad.
func (pg *PG) ReadPGSM(addr uint32, n int) ([]byte, error) {
	if int(addr)+n > len(pg.PGSM) {
		return nil, fmt.Errorf("engine: PGSM access at %#x+%d beyond %d bytes", addr, n, len(pg.PGSM))
	}
	return pg.PGSM[addr : int(addr)+n], nil
}

// WritePGSM copies b into the scratchpad at addr.
func (pg *PG) WritePGSM(addr uint32, b []byte) error {
	if int(addr)+len(b) > len(pg.PGSM) {
		return fmt.Errorf("engine: PGSM write at %#x+%d beyond %d bytes", addr, len(b), len(pg.PGSM))
	}
	copy(pg.PGSM[addr:], b)
	return nil
}

// FlipPGSMBit flips one bit of the scratchpad byte at addr (fault
// injection on the destination of an uncorrectable bank-to-PGSM read).
func (pg *PG) FlipPGSMBit(addr uint32, bit uint) error {
	if int(addr) >= len(pg.PGSM) {
		return fmt.Errorf("engine: PGSM bit flip at %#x beyond %d bytes", addr, len(pg.PGSM))
	}
	pg.PGSM[addr] ^= 1 << bit
	return nil
}

// VectorToPGSM writes the vmask-selected lanes of DataRF[reg] into the
// PGSM (lane l at addr + 4*l). PGSM is SRAM: any 4-byte-aligned address
// is legal.
func (pg *PG) VectorToPGSM(pe *PE, addr uint32, reg int, vmask uint8) error {
	hi := highSetLane(vmask)
	if hi < 0 {
		return nil
	}
	// Batched fast path when the lane span neither wraps mod 2^32 nor
	// leaves the scratchpad; otherwise exact per-lane addressing.
	if end := uint64(addr) + uint64(4*hi) + 4; end <= uint64(len(pg.PGSM)) {
		for l := 0; l <= hi; l++ {
			if vmask&(1<<uint(l)) == 0 {
				continue
			}
			binary.LittleEndian.PutUint32(pg.PGSM[addr+uint32(4*l):], pe.DataRF[reg][l])
		}
		return nil
	}
	var b [4]byte
	for l := 0; l <= hi; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b[:], pe.DataRF[reg][l])
		if err := pg.WritePGSM(addr+uint32(4*l), b[:]); err != nil {
			return err
		}
	}
	return nil
}

// VectorFromPGSM reads vmask-selected lanes from the PGSM into
// DataRF[reg].
func (pg *PG) VectorFromPGSM(pe *PE, addr uint32, reg int, vmask uint8) error {
	hi := highSetLane(vmask)
	if hi < 0 {
		return nil
	}
	if end := uint64(addr) + uint64(4*hi) + 4; end <= uint64(len(pg.PGSM)) {
		for l := 0; l <= hi; l++ {
			if vmask&(1<<uint(l)) == 0 {
				continue
			}
			pe.DataRF[reg][l] = binary.LittleEndian.Uint32(pg.PGSM[addr+uint32(4*l):])
		}
		return nil
	}
	for l := 0; l <= hi; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		b, err := pg.ReadPGSM(addr+uint32(4*l), 4)
		if err != nil {
			return err
		}
		pe.DataRF[reg][l] = binary.LittleEndian.Uint32(b)
	}
	return nil
}
