package engine

// Checkpoint accessors for the PE's lazily materialized bank storage.
// Only the materialized prefix is serialized — unmaterialized DRAM
// reads as zero on both sides of a restore, so the prefix plus the bank
// capacity fully determines the bank's contents. Restore must also zero
// any stale tail: a pooled machine being restored in place may have
// materialized more of the bank in a previous life than the checkpoint
// carries.

import "fmt"

// BankPrefix returns the PE's materialized bank prefix (nil when the
// bank was never touched). Owner-only, like ReadBank: the caller must
// be the vault's goroutine at a quiescent point, and must not retain
// the slice across bank writes.
func (pe *PE) BankPrefix() []byte { return pe.bankSlice() }

// RestoreBank rewrites the bank so its contents are exactly data
// followed by zeros: the prefix is copied in and any longer already-
// materialized tail is cleared. Owner-only. The prefix must fit the
// bank; callers validate against the configured bank capacity before
// applying (the checkpoint decode path does), so exceeding it is a
// programming error and panics.
func (pe *PE) RestoreBank(data []byte) {
	if len(data) > pe.bankBytes {
		panic(fmt.Sprintf("engine: restoring %d-byte prefix into %d-byte bank", len(data), pe.bankBytes))
	}
	bank := pe.bankSlice()
	if len(data) > len(bank) {
		var err error
		bank, err = pe.ensure(len(data))
		if err != nil {
			panic(err) // unreachable: length checked above
		}
	}
	copy(bank, data)
	for i := len(data); i < len(bank); i++ {
		bank[i] = 0
	}
}
