package engine

import (
	"math"
	"testing"
	"testing/quick"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

func testCfg() sim.Config { return sim.TestTiny() }

func newTestPE(t *testing.T) *PE {
	t.Helper()
	cfg := testCfg()
	return NewPE(&cfg, 0, 1, 1, 1)
}

func f32(v float32) uint32 { return math.Float32bits(v) }

func TestNewPEInitializesIDRegisters(t *testing.T) {
	cfg := testCfg()
	pe := NewPE(&cfg, 3, 7, 1, 0)
	if pe.AddrRF[isa.ARFPeID] != 0 || pe.AddrRF[isa.ARFPgID] != 1 ||
		pe.AddrRF[isa.ARFVaultID] != 7 || pe.AddrRF[isa.ARFChipID] != 3 {
		t.Fatalf("ID registers wrong: %v", pe.AddrRF[:4])
	}
	if pe.Index != 1*cfg.PEsPerPG+0 {
		t.Fatalf("Index = %d", pe.Index)
	}
}

func TestBankReadWriteRoundTrip(t *testing.T) {
	pe := newTestPE(t)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := pe.WriteBank(0x100, data); err != nil {
		t.Fatal(err)
	}
	got, err := pe.ReadBank(0x100, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("bank[%d] = %d, want %d", i, got[i], data[i])
		}
	}
	// Unwritten regions read zero.
	z, err := pe.ReadBank(0x200, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range z {
		if b != 0 {
			t.Fatal("unwritten bank bytes not zero")
		}
	}
}

func TestBankOutOfCapacityErrors(t *testing.T) {
	pe := newTestPE(t)
	if _, err := pe.ReadBank(uint32(testCfg().BankBytes), 16); err == nil {
		t.Fatal("read beyond bank capacity accepted")
	}
	if err := pe.WriteBank(uint32(testCfg().BankBytes-4), make([]byte, 16)); err == nil {
		t.Fatal("write beyond bank capacity accepted")
	}
}

func TestLoadStoreVector(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[3] = Vector{f32(1), f32(2), f32(3), f32(4)}
	if err := pe.StoreVector(0x40, 3, 0xF); err != nil {
		t.Fatal(err)
	}
	if err := pe.LoadVector(0x40, 5, 0xF); err != nil {
		t.Fatal(err)
	}
	if pe.DataRF[5] != pe.DataRF[3] {
		t.Fatalf("vector round trip: %v vs %v", pe.DataRF[5], pe.DataRF[3])
	}
}

func TestCompVectorVector(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[0] = Vector{f32(1), f32(2), f32(3), f32(4)}
	pe.DataRF[1] = Vector{f32(10), f32(20), f32(30), f32(40)}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FAdd
	in.Dst, in.Src1, in.Src2 = 2, 0, 1
	pe.Comp(&in)
	want := Vector{f32(11), f32(22), f32(33), f32(44)}
	if pe.DataRF[2] != want {
		t.Fatalf("comp fadd vv = %v, want %v", pe.DataRF[2], want)
	}
}

func TestCompScalarVectorBroadcastsLane0(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[0] = Vector{f32(1), f32(2), f32(3), f32(4)}
	pe.DataRF[1] = Vector{f32(100), f32(999), f32(999), f32(999)}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FMul
	in.Mode = isa.ModeVS
	in.Dst, in.Src1, in.Src2 = 2, 0, 1
	pe.Comp(&in)
	want := Vector{f32(100), f32(200), f32(300), f32(400)}
	if pe.DataRF[2] != want {
		t.Fatalf("comp fmul vs = %v, want %v", pe.DataRF[2], want)
	}
}

func TestCompVecMaskLeavesLanesUntouched(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[0] = Vector{f32(1), f32(1), f32(1), f32(1)}
	pe.DataRF[1] = Vector{f32(2), f32(2), f32(2), f32(2)}
	pe.DataRF[2] = Vector{f32(7), f32(7), f32(7), f32(7)}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FAdd
	in.Dst, in.Src1, in.Src2 = 2, 0, 1
	in.VecMask = 0b0101
	pe.Comp(&in)
	want := Vector{f32(3), f32(7), f32(3), f32(7)}
	if pe.DataRF[2] != want {
		t.Fatalf("masked comp = %v, want %v", pe.DataRF[2], want)
	}
}

func TestCompMacReadsAccumulator(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[0] = Vector{f32(2), f32(2), f32(2), f32(2)}
	pe.DataRF[1] = Vector{f32(3), f32(3), f32(3), f32(3)}
	pe.DataRF[2] = Vector{f32(1), f32(2), f32(3), f32(4)}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FMac
	in.Dst, in.Src1, in.Src2 = 2, 0, 1
	pe.Comp(&in)
	want := Vector{f32(7), f32(8), f32(9), f32(10)}
	if pe.DataRF[2] != want {
		t.Fatalf("fmac = %v, want %v", pe.DataRF[2], want)
	}
}

func TestCalcARFImmediateAndRegister(t *testing.T) {
	pe := newTestPE(t)
	pe.AddrRF[4] = 100
	in := isa.New(isa.OpCalcARF)
	in.ALU = isa.IAdd
	in.Dst, in.Src1 = 5, 4
	in.HasImm, in.Imm = true, 28
	pe.CalcARF(&in)
	if pe.AddrRF[5] != 128 {
		t.Fatalf("calc_arf imm = %d, want 128", pe.AddrRF[5])
	}
	in2 := isa.New(isa.OpCalcARF)
	in2.ALU = isa.IMul
	in2.Dst, in2.Src1, in2.Src2 = 6, 5, 5
	pe.CalcARF(&in2)
	if pe.AddrRF[6] != 128*128 {
		t.Fatalf("calc_arf reg = %d", pe.AddrRF[6])
	}
}

func TestMovBetweenRegisterFiles(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[2] = Vector{11, 22, 33, 44}
	pe.MovToARF(7, 2, 2)
	if pe.AddrRF[7] != 33 {
		t.Fatalf("MovToARF lane 2 = %d, want 33", pe.AddrRF[7])
	}
	pe.MovToDRF(3, 7, 1)
	if pe.DataRF[3][1] != 33 {
		t.Fatalf("MovToDRF = %v", pe.DataRF[3])
	}
}

func TestResetZeroesEntry(t *testing.T) {
	pe := newTestPE(t)
	pe.DataRF[2] = Vector{1, 2, 3, 4}
	pe.Reset(2)
	if pe.DataRF[2] != (Vector{}) {
		t.Fatalf("Reset left %v", pe.DataRF[2])
	}
}

func TestEffectiveAddr(t *testing.T) {
	pe := newTestPE(t)
	pe.AddrRF[9] = 0x1234
	if pe.EffectiveAddr(0x40, false) != 0x40 {
		t.Fatal("direct address modified")
	}
	if pe.EffectiveAddr(9, true) != 0x1234 {
		t.Fatal("indirect address not resolved via AddrRF")
	}
}

func TestPGSMRoundTripAndBounds(t *testing.T) {
	cfg := testCfg()
	pg := NewPG(&cfg, 0, 0, 0)
	pe := pg.PEs[0]
	pe.DataRF[1] = Vector{5, 6, 7, 8}
	if err := pg.VectorToPGSM(pe, 0x20, 1, 0xF); err != nil {
		t.Fatal(err)
	}
	if err := pg.VectorFromPGSM(pg.PEs[1], 0x20, 2, 0xF); err != nil {
		t.Fatal(err)
	}
	if pg.PEs[1].DataRF[2] != (Vector{5, 6, 7, 8}) {
		t.Fatalf("PGSM sharing between PEs failed: %v", pg.PEs[1].DataRF[2])
	}
	if err := pg.WritePGSM(uint32(cfg.PGSMBytes-4), make([]byte, 16)); err == nil {
		t.Fatal("PGSM overflow write accepted")
	}
	if _, err := pg.ReadPGSM(uint32(cfg.PGSMBytes), 1); err == nil {
		t.Fatal("PGSM overflow read accepted")
	}
}

func TestNewPGShape(t *testing.T) {
	cfg := testCfg()
	pg := NewPG(&cfg, 0, 0, 1)
	if len(pg.PEs) != cfg.PEsPerPG {
		t.Fatalf("PG has %d PEs, want %d", len(pg.PEs), cfg.PEsPerPG)
	}
	if len(pg.PGSM) != cfg.PGSMBytes {
		t.Fatalf("PGSM %d bytes, want %d", len(pg.PGSM), cfg.PGSMBytes)
	}
	if pg.PEs[1].Index != 1*cfg.PEsPerPG+1 {
		t.Fatalf("PE index = %d", pg.PEs[1].Index)
	}
}

// Property: StoreVector then LoadVector is identity for arbitrary lane
// bit patterns and aligned addresses.
func TestVectorBankRoundTripQuick(t *testing.T) {
	pe := newTestPE(t)
	f := func(a, b, c, d uint32, addrSeed uint16) bool {
		addr := (uint32(addrSeed) * 16) % uint32(testCfg().BankBytes-16)
		pe.DataRF[1] = Vector{a, b, c, d}
		if err := pe.StoreVector(addr, 1, 0xF); err != nil {
			return false
		}
		if err := pe.LoadVector(addr, 2, 0xF); err != nil {
			return false
		}
		return pe.DataRF[2] == pe.DataRF[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
