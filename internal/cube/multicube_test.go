package cube

import (
	"testing"

	"ipim/internal/sim"
)

// Multi-cube SPMD tests: the same program running on every vault of a
// 2-cube machine, with barriers crossing the SERDES links.

func TestMultiCubeSPMDWithBarriers(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.Cubes = 2
	cfg.BankBytes = 1 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
comp fmac vv d1, d0, d0, vm=0xf, sm=*
sync 0
comp fmac vv d2, d1, d1, vm=0xf, sm=*
sync 1
st_rf d2, 0x0, sm=*
`
	stats, err := m.RunSame(mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	// 4 vaults x 2 syncs.
	if stats.Syncs != 8 {
		t.Fatalf("syncs = %d, want 8", stats.Syncs)
	}
	// All vault clocks aligned at the end within the tail + barrier.
	var minNow, maxNow int64
	for c := 0; c < 2; c++ {
		for v := 0; v < cfg.VaultsPerCube; v++ {
			n := m.Vault(c, v).Now()
			if minNow == 0 || n < minNow {
				minNow = n
			}
			if n > maxNow {
				maxNow = n
			}
		}
	}
	if maxNow-minNow > 100 {
		t.Fatalf("vault clocks diverged: %d..%d", minNow, maxNow)
	}
}

func TestCrossCubeBarrierCostExceedsLocal(t *testing.T) {
	// The master-slave barrier spans the SERDES for multi-cube machines.
	one := sim.TestTiny()
	one.BankBytes = 1 << 20
	m1, err := New(one)
	if err != nil {
		t.Fatal(err)
	}
	two := one
	two.Cubes = 2
	m2, err := New(two)
	if err != nil {
		t.Fatal(err)
	}
	if m2.barrierCost() < m1.barrierCost() {
		t.Fatalf("2-cube barrier (%d) cheaper than 1-cube (%d)", m2.barrierCost(), m1.barrierCost())
	}
}

func TestRemoteRoundTripFartherIsSlower(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.Cubes = 2
	cfg.BankBytes = 1 << 20
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	local := m.RemoteRoundTrip(0, 0, 0, 0, 1)
	cross := m.RemoteRoundTrip(0, 0, 0, 1, 1)
	if cross <= local {
		t.Fatalf("cross-cube round trip (%d) not slower than intra-cube (%d)", cross, local)
	}
}

func TestRefreshOverheadIsSmallButPresent(t *testing.T) {
	// A long-running kernel spans refresh epochs; disabling refresh
	// (huge tREFI) must be slightly faster, not dramatically.
	src := `
seti_crf c1, #800
seti_crf c2, =loop
loop:
ld_rf d0, 0x0, sm=*
st_rf d0, 0x100, sm=*
calc_crf isub c1, c1, #1
cjump c1, c2
`
	run := func(trefi int) int64 {
		cfg := sim.TestTiny()
		cfg.Timing.TREFI = trefi
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := m.RunVault(0, 0, mustAssemble(t, src))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cycles
	}
	withRefresh := run(3900)
	noRefresh := run(1 << 30)
	if withRefresh <= noRefresh {
		t.Fatalf("refresh-free run (%d) not faster than refreshing run (%d)", noRefresh, withRefresh)
	}
	overhead := float64(withRefresh-noRefresh) / float64(noRefresh)
	if overhead > 0.25 {
		t.Fatalf("refresh overhead %.1f%% implausibly high", overhead*100)
	}
}

// TestFullTableIIIMachineSmoke runs a small SPMD program across the
// complete paper-scale machine: 8 cubes x 16 vaults x 32 PEs = 4096
// process engines, with two global barriers.
func TestFullTableIIIMachineSmoke(t *testing.T) {
	cfg := sim.Default()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
calc_arf iadd a4, a2, #1, sm=*   ; a4 = vaultID + 1
mov_drf d1, a4, lane=0, sm=*
sync 0
comp iadd vv d2, d1, d1, vm=0x1, sm=*
st_rf d2, 0x0, sm=*
sync 1
`
	stats, err := m.RunSame(mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Syncs != int64(2*cfg.TotalVaults()) {
		t.Fatalf("syncs = %d, want %d", stats.Syncs, 2*cfg.TotalVaults())
	}
	// Spot-check results on distant corners of the machine.
	for _, loc := range [][4]int{{0, 0, 0, 0}, {7, 15, 7, 3}, {3, 9, 2, 1}} {
		b, err := m.ReadBank(loc[0], loc[1], loc[2], loc[3], 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		want := int32(2 * (loc[1] + 1))
		if got != want {
			t.Fatalf("cube %d vault %d: %d, want %d", loc[0], loc[1], got, want)
		}
	}
}
