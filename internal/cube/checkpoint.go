package cube

// Machine-level checkpoint/restore and deterministic resume.
//
// A checkpoint is a complete image of the machine's architectural state
// at a quiescent point — a phase barrier mid-run, or idle between runs.
// The payload schema (inside the internal/ckpt container) is, in order:
//
//  1. configuration digest (rejects restores onto a mismatched machine)
//  2. fault plan (so RestoreMachine needs no plan argument and the
//     decision streams pick up exactly where they left off)
//  3. deduplicated program table (vaults often share one *isa.Program;
//     pointer sharing is restored so memo keys and artifact identity
//     behave as before the checkpoint)
//  4. one vault image per vault, in (cube, vault) order
//  5. link state for every mesh, the SERDES mesh, and every per-source
//     port shard, in construction order
//  6. the in-progress run, if any: budget, resolved mode, the run's
//     baseline stats snapshot, the active vault set, and each active
//     vault's budget-origin offset
//
// Restore follows the decode-then-apply discipline end to end: the
// whole payload is parsed and validated into images first and only then
// applied, so a corrupt or truncated checkpoint returns a typed error
// (wrapping ckpt.ErrCorrupt / ckpt.ErrVersion / ErrCheckpointConfig)
// and leaves the machine exactly as it was — never half-restored.
//
// The correctness contract is differential and pinned by tests at the
// repository root: run-to-barrier-N → checkpoint → restore onto a fresh
// machine → ResumeContext must match the uninterrupted run bit for bit
// in pixels, sim.Stats and fault counters, at any worker count, in
// fast-forward and stepwise modes, with or without the timing memoizer
// (which is flushed on restore — its blocks belong to the abandoned
// timeline's controller snapshots).

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ipim/internal/ckpt"
	"ipim/internal/fault"
	"ipim/internal/isa"
	"ipim/internal/noc"
	"ipim/internal/sim"
	"ipim/internal/vault"
)

// ErrCheckpointConfig marks a checkpoint taken on a machine whose
// configuration differs from the one it is being restored onto.
// Restores require an identical sim.Config: geometry, timing and
// latency parameters all shape the serialized state.
var ErrCheckpointConfig = errors.New("cube: checkpoint configuration mismatch")

// ErrNoResume marks a ResumeContext call on a machine whose checkpoint
// carried no in-progress run (or whose resume was already consumed).
var ErrNoResume = errors.New("cube: no checkpointed run to resume")

// liveRun is the in-flight run's bookkeeping, stashed on the machine
// between BeginRun and EndRun so a mid-run checkpoint (taken by the
// barrier hook) can serialize the run section.
type liveRun struct {
	keys   [][2]int
	active []*vault.Vault
	budget sim.RunOptions
	mode   sim.Mode
	before sim.Stats
}

// resumeState is a restored checkpoint's run section, consumed by
// ResumeContext.
type resumeState struct {
	keys       [][2]int
	budget     sim.RunOptions
	mode       sim.Mode
	before     sim.Stats
	elapsed    []int64
	funcIssued []int64
}

// configDigest is the compatibility string a checkpoint embeds.
// sim.Config is a flat value struct, so %+v covers every field and is
// stable for identical configurations.
func configDigest(cfg *sim.Config) string { return fmt.Sprintf("%+v", *cfg) }

// Checkpoint serializes the machine's full architectural state to w as
// one versioned, CRC-guarded container. The machine must be quiescent:
// idle between runs, or at a phase barrier (the RunOptions checkpoint
// hook calls it there). A non-quiescent vault is an error, not a panic,
// so misuse from the public API is recoverable.
func (m *Machine) Checkpoint(w io.Writer) error {
	for c := range m.Vaults {
		for vid, v := range m.Vaults[c] {
			if !v.Quiescent() {
				return fmt.Errorf("cube: checkpoint of non-quiescent vault %d/%d (mid-phase)", c, vid)
			}
		}
	}
	return ckpt.Write(w, m.checkpointPayload())
}

// CheckpointBytes is Checkpoint into a fresh byte slice (the form the
// serve journal and the periodic sink consume).
func (m *Machine) CheckpointBytes() ([]byte, error) {
	for c := range m.Vaults {
		for vid, v := range m.Vaults[c] {
			if !v.Quiescent() {
				return nil, fmt.Errorf("cube: checkpoint of non-quiescent vault %d/%d (mid-phase)", c, vid)
			}
		}
	}
	return ckpt.Seal(m.checkpointPayload()), nil
}

// checkpointPayload builds the checkpoint payload. Callers have
// verified quiescence (vault.EncodeCkpt re-asserts it).
func (m *Machine) checkpointPayload() []byte {
	e := &ckpt.Enc{}
	e.String(configDigest(&m.Cfg))

	// Fault plan by value (it is immutable and flat).
	if p := m.fplan; p != nil {
		e.Bool(true)
		e.U64(p.Seed)
		e.F64(p.DRAMBitFlipRate)
		e.F64(p.DRAMMultiBitFraction)
		e.F64(p.LinkFaultRate)
		e.I64(p.LinkRetryPenalty)
		e.F64(p.ExecFaultRate)
		e.Int(p.ExecFailFirst)
	} else {
		e.Bool(false)
	}

	// Program table: distinct loaded programs in first-appearance order
	// over the (cube, vault) walk, so the indices below are stable.
	var progs []*isa.Program
	index := map[*isa.Program]int{}
	for _, cube := range m.Vaults {
		for _, v := range cube {
			if p := v.Program(); p != nil {
				if _, ok := index[p]; !ok {
					index[p] = len(progs)
					progs = append(progs, p)
				}
			}
		}
	}
	e.U32(uint32(len(progs)))
	for _, p := range progs {
		e.String(p.Name)
		e.Bytes32(isa.EncodeProgram(p))
	}

	// Vault images.
	for _, cube := range m.Vaults {
		for _, v := range cube {
			pi := -1
			if p := v.Program(); p != nil {
				pi = index[p]
			}
			v.EncodeCkpt(e, pi)
		}
	}

	// Interconnect: meshes, SERDES, then every port shard.
	for _, mesh := range m.meshes {
		mesh.EncodeCkpt(e)
	}
	m.serdes.EncodeCkpt(e)
	for _, ps := range m.ports {
		for _, p := range ps {
			for _, st := range p.mesh {
				st.EncodeCkpt(e)
			}
			p.serdes.EncodeCkpt(e)
		}
	}

	// In-progress run, if any.
	if r := m.run; r != nil {
		e.Bool(true)
		e.I64(r.budget.MaxCycles)
		e.I64(r.budget.MaxPhaseSteps)
		e.I64(r.budget.CheckpointEvery)
		e.U8(uint8(r.budget.Mode))
		e.U8(uint8(r.mode))
		r.before.EncodeCkpt(e)
		e.U32(uint32(len(r.keys)))
		for i, k := range r.keys {
			e.Int(k[0])
			e.Int(k[1])
			e.I64(r.active[i].RunStartDelta())
			e.I64(r.active[i].FuncIssued())
		}
	} else {
		e.Bool(false)
	}
	return e.Bytes()
}

// Restore rewrites the machine's state in place from a sealed
// checkpoint container (the bytes a CheckpointSink received or
// CheckpointBytes returned). The whole payload is decoded and validated
// first; on any error the machine is untouched. On success any
// checkpointed in-progress run is armed for ResumeContext. The timing
// memoizer is flushed on every vault.
func (m *Machine) Restore(data []byte) error {
	payload, err := ckpt.Open(data)
	if err != nil {
		return err
	}
	return m.restorePayload(payload)
}

// RestoreMachine builds a fresh machine for cfg and restores the
// checkpoint read from r onto it. cfg must equal the configuration the
// checkpoint was taken under (ErrCheckpointConfig otherwise); the fault
// plan travels inside the checkpoint, so none is passed here.
func RestoreMachine(r io.Reader, cfg sim.Config) (*Machine, error) {
	payload, err := ckpt.Read(r)
	if err != nil {
		return nil, err
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := m.restorePayload(payload); err != nil {
		return nil, err
	}
	return m, nil
}

// HasResume reports whether a restored checkpoint's in-progress run is
// waiting to be resumed with ResumeContext.
func (m *Machine) HasResume() bool { return m.resume != nil }

// restorePayload decodes, validates, then applies one checkpoint
// payload. Decode and validation touch no machine state.
func (m *Machine) restorePayload(payload []byte) error {
	d := ckpt.NewDec(payload)

	digest := d.String()
	if d.Err() == nil && digest != configDigest(&m.Cfg) {
		return fmt.Errorf("%w: checkpoint taken under a different configuration", ErrCheckpointConfig)
	}

	var plan *fault.Plan
	if d.Bool() {
		plan = &fault.Plan{
			Seed:                 d.U64(),
			DRAMBitFlipRate:      d.F64(),
			DRAMMultiBitFraction: d.F64(),
			LinkFaultRate:        d.F64(),
			LinkRetryPenalty:     d.I64(),
			ExecFaultRate:        d.F64(),
			ExecFailFirst:        d.Int(),
		}
		if d.Err() == nil {
			if err := plan.Validate(); err != nil {
				return fmt.Errorf("cube: checkpoint fault plan: %v: %w", err, ckpt.ErrCorrupt)
			}
		}
	}

	nProgs := int(d.U32())
	if d.Err() == nil && nProgs > d.Len()/8 {
		return fmt.Errorf("cube: checkpoint declares %d programs in %d bytes: %w", nProgs, d.Len(), ckpt.ErrCorrupt)
	}
	progs := make([]*isa.Program, 0, nProgs)
	for i := 0; i < nProgs && d.Err() == nil; i++ {
		name := d.String()
		blob := d.Bytes32()
		if d.Err() != nil {
			break
		}
		p, err := isa.DecodeProgram(blob)
		if err != nil {
			return fmt.Errorf("cube: checkpoint program %d: %v: %w", i, err, ckpt.ErrCorrupt)
		}
		p.Name = name
		if err := vault.ValidateForLoad(&m.Cfg, p); err != nil {
			return fmt.Errorf("cube: checkpoint program %d: %v: %w", i, err, ckpt.ErrCorrupt)
		}
		progs = append(progs, p)
	}

	nVaults := m.Cfg.Cubes * m.Cfg.VaultsPerCube
	imgs := make([]*vault.Image, 0, nVaults)
	for i := 0; i < nVaults && d.Err() == nil; i++ {
		img, err := vault.DecodeVaultCkpt(d, &m.Cfg, progs)
		if err != nil {
			return err
		}
		imgs = append(imgs, img)
	}

	var meshImgs []*noc.LinkImage
	for _, mesh := range m.meshes {
		img, err := noc.DecodeLinkCkpt(d, mesh.Nodes())
		if err != nil {
			return err
		}
		meshImgs = append(meshImgs, img)
	}
	serdesImg, err := noc.DecodeLinkCkpt(d, m.serdes.Nodes())
	if err != nil {
		return err
	}
	var portImgs [][]*noc.LinkImage // per port: meshes..., serdes
	for _, ps := range m.ports {
		for range ps {
			var shard []*noc.LinkImage
			for _, mesh := range m.meshes {
				img, err := noc.DecodeLinkCkpt(d, mesh.Nodes())
				if err != nil {
					return err
				}
				shard = append(shard, img)
			}
			img, err := noc.DecodeLinkCkpt(d, m.serdes.Nodes())
			if err != nil {
				return err
			}
			portImgs = append(portImgs, append(shard, img))
		}
	}

	var rs *resumeState
	if d.Bool() {
		rs = &resumeState{
			budget: sim.RunOptions{
				MaxCycles:       d.I64(),
				MaxPhaseSteps:   d.I64(),
				CheckpointEvery: d.I64(),
				Mode:            sim.Mode(d.U8()),
			},
			mode: sim.Mode(d.U8()),
		}
		rs.before.DecodeCkpt(d)
		nActive := int(d.U32())
		if d.Err() == nil && (nActive == 0 || nActive > nVaults) {
			return fmt.Errorf("cube: checkpoint run section has %d active vaults of %d: %w", nActive, nVaults, ckpt.ErrCorrupt)
		}
		for i := 0; i < nActive && d.Err() == nil; i++ {
			k := [2]int{d.Int(), d.Int()}
			rs.keys = append(rs.keys, k)
			rs.elapsed = append(rs.elapsed, d.I64())
			rs.funcIssued = append(rs.funcIssued, d.I64())
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if d.Len() != 0 {
		return fmt.Errorf("cube: %d trailing bytes after checkpoint payload: %w", d.Len(), ckpt.ErrCorrupt)
	}
	if rs != nil {
		if rs.mode != sim.CycleMode && rs.mode != sim.FunctionalMode {
			return fmt.Errorf("cube: checkpoint run section has unresolved mode %d: %w", rs.mode, ckpt.ErrCorrupt)
		}
		prev := [2]int{-1, -1}
		for i, k := range rs.keys {
			if k[0] < 0 || k[0] >= m.Cfg.Cubes || k[1] < 0 || k[1] >= m.Cfg.VaultsPerCube {
				return fmt.Errorf("cube: checkpoint run section references vault %v: %w", k, ckpt.ErrCorrupt)
			}
			if k[0] < prev[0] || (k[0] == prev[0] && k[1] <= prev[1]) {
				return fmt.Errorf("cube: checkpoint run section vault order broken at %v: %w", k, ckpt.ErrCorrupt)
			}
			prev = k
			if !imgs[k[0]*m.Cfg.VaultsPerCube+k[1]].HasProgram() {
				return fmt.Errorf("cube: checkpoint run section vault %v has no program: %w", k, ckpt.ErrCorrupt)
			}
			if rs.elapsed[i] < 0 {
				return fmt.Errorf("cube: checkpoint run section vault %v has negative elapsed time: %w", k, ckpt.ErrCorrupt)
			}
		}
	}

	// Everything validated — apply, infallibly. Plan first: attaching
	// resets the fault decision-stream counters the images then restore.
	m.SetFaultPlan(plan)
	i := 0
	for _, cube := range m.Vaults {
		for _, v := range cube {
			v.ApplyCkpt(imgs[i])
			i++
		}
	}
	for mi, mesh := range m.meshes {
		mesh.ApplyLinkCkpt(meshImgs[mi])
	}
	m.serdes.ApplyLinkCkpt(serdesImg)
	pi := 0
	for _, ps := range m.ports {
		for _, p := range ps {
			shard := portImgs[pi]
			pi++
			for si, st := range p.mesh {
				st.ApplyLinkCkpt(shard[si])
			}
			p.serdes.ApplyLinkCkpt(shard[len(shard)-1])
		}
	}
	m.resume = rs
	return nil
}

// Resume is ResumeContext under a background context.
func (m *Machine) Resume() (sim.Stats, error) {
	return m.ResumeContext(context.Background())
}

// ResumeContext continues the in-progress run a restored checkpoint
// carried, from its barrier to completion, and returns the stats of the
// WHOLE run (the uninterrupted run's stats, bit for bit — the baseline
// snapshot travels in the checkpoint). By default the serialized budget
// governs the resumed run, so budget exhaustion trips at the same
// instruction it would have without the interruption; host-side knobs
// the caller has armed on the machine (SetBudget) override it — the
// checkpoint sink (which cannot be serialized) always, and non-zero
// MaxCycles/MaxPhaseSteps/CheckpointEvery in place of the serialized
// values, which is how a budget-aborted run is resumed with a looser
// budget. Each checkpoint's resume is consumed by one call: a second
// call returns ErrNoResume until another Restore.
func (m *Machine) ResumeContext(ctx context.Context) (sim.Stats, error) {
	rs := m.resume
	if rs == nil {
		return sim.Stats{}, ErrNoResume
	}
	m.resume = nil
	var active []*vault.Vault
	for _, k := range rs.keys {
		active = append(active, m.Vaults[k[0]][k[1]])
	}
	budget := rs.budget
	budget.CheckpointSink = m.budget.CheckpointSink
	if m.budget.MaxCycles > 0 {
		budget.MaxCycles = m.budget.MaxCycles
	}
	if m.budget.MaxPhaseSteps > 0 {
		budget.MaxPhaseSteps = m.budget.MaxPhaseSteps
	}
	if m.budget.CheckpointEvery > 0 {
		budget.CheckpointEvery = m.budget.CheckpointEvery
	}
	interrupt := makeInterrupt(ctx)
	for i, v := range active {
		v.BeginResumedRun(budget, rs.mode, interrupt, rs.elapsed[i], rs.funcIssued[i])
	}
	return m.finishRun(ctx, rs.keys, active, budget, rs.mode, rs.before)
}
