// Package cube assembles iPIM's full machine hierarchy (paper
// Sec. IV-A): vaults on a per-cube 2D-mesh on-chip network, cubes on a
// 2D-mesh of off-chip SERDES links, the master–slave inter-vault
// synchronization protocol (Sec. IV-D), and the host-side data loading
// interface. It also provides the process-on-base-die (PonB) baseline
// by flipping the config's PonB switch (Sec. VII-C1).
package cube

import (
	"fmt"

	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/noc"
	"ipim/internal/sim"
	"ipim/internal/vault"
)

// Machine is a complete iPIM accelerator.
type Machine struct {
	Cfg sim.Config

	// Vaults[cube][vault].
	Vaults [][]*vault.Vault

	meshes []*noc.Mesh // per-cube on-chip mesh
	serdes *noc.Mesh   // inter-cube SERDES mesh

	// remoteServiceLat is the remote-end bank service latency applied to
	// req round trips: tRCD + tCL + data + queueing margin.
	remoteServiceLat int64
}

// New builds a machine for the configuration.
func New(cfg sim.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg}
	t := cfg.Timing
	m.remoteServiceLat = int64(t.TRCD + t.TCL + 1 + 8)
	mw, mh := meshDims(cfg.VaultsPerCube)
	sw, sh := meshDims(cfg.Cubes)
	m.serdes = noc.NewMesh(sw, sh, cfg.TSERDESNum, cfg.TSERDESDen, cfg.SERDESLinkBytesPerCycle)
	for c := 0; c < cfg.Cubes; c++ {
		m.meshes = append(m.meshes, noc.NewMesh(mw, mh, int64(cfg.TNoCHop), 1, cfg.NoCLinkBytesPerCycle))
		var vs []*vault.Vault
		for vid := 0; vid < cfg.VaultsPerCube; vid++ {
			vs = append(vs, vault.New(&m.Cfg, c, vid, m))
		}
		m.Vaults = append(m.Vaults, vs)
	}
	return m, nil
}

// meshDims picks near-square 2D mesh dimensions for n nodes.
func meshDims(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	for n%w != 0 {
		w++
	}
	return w, n / w
}

// Vault returns the vault at (cube, vault).
func (m *Machine) Vault(cube, vlt int) *vault.Vault { return m.Vaults[cube][vlt] }

// RemoteRead implements vault.Remote.
func (m *Machine) RemoteRead(chip, vlt, pg, pe int, addr uint32) ([]byte, error) {
	if chip < 0 || chip >= len(m.Vaults) || vlt < 0 || vlt >= len(m.Vaults[chip]) {
		return nil, fmt.Errorf("cube: remote read target chip=%d vault=%d out of range", chip, vlt)
	}
	v := m.Vaults[chip][vlt]
	if pg < 0 || pg >= len(v.PGs) || pe < 0 || pe >= m.Cfg.PEsPerPG {
		return nil, fmt.Errorf("cube: remote read target pg=%d pe=%d out of range", pg, pe)
	}
	b, err := v.PE(pg, pe).ReadBank(addr, dram.AccessBytes)
	if err != nil {
		return nil, err
	}
	out := make([]byte, dram.AccessBytes)
	copy(out, b)
	return out, nil
}

// RemoteRoundTrip implements vault.Remote: request packet to the remote
// vault, bank service there, 16-byte response back, all over the mesh
// (and the SERDES links for cross-cube requests).
func (m *Machine) RemoteRoundTrip(now int64, srcChip, srcVault, dstChip, dstVault int) int64 {
	const reqBytes = 16 // address + routing header
	t := m.sendVaultToVault(now, srcChip, srcVault, dstChip, dstVault, reqBytes)
	t += m.remoteServiceLat
	return m.sendVaultToVault(t, dstChip, dstVault, srcChip, srcVault, dram.AccessBytes)
}

// sendVaultToVault models one direction of inter-vault traffic.
func (m *Machine) sendVaultToVault(now int64, srcChip, srcVault, dstChip, dstVault int, bytes int) int64 {
	if srcChip == dstChip {
		return m.meshes[srcChip].Send(now, srcVault, dstVault, bytes)
	}
	// Egress to the cube's SERDES port (vault 0 by convention), cross
	// the cube mesh, then ingress to the destination vault.
	t := m.meshes[srcChip].Send(now, srcVault, 0, bytes)
	t = m.serdes.Send(t, srcChip, dstChip, bytes)
	return m.meshes[dstChip].Send(t, 0, dstVault, bytes)
}

// barrierCost returns the master–slave sync overhead: every slave
// signals the master vault (vault 0 of cube 0), the master updates the
// global synchronization status vector, then broadcasts the
// proceed-phase message (paper Sec. IV-D). Cost is two worst-case
// traversals plus bookkeeping.
func (m *Machine) barrierCost() int64 {
	maxHops := 0
	mesh := m.meshes[0]
	for vid := 0; vid < m.Cfg.VaultsPerCube; vid++ {
		if h := mesh.HopCount(0, vid); h > maxHops {
			maxHops = h
		}
	}
	interCube := 0
	for c := 0; c < m.Cfg.Cubes; c++ {
		if h := m.serdes.HopCount(0, c); h > interCube {
			interCube = h
		}
	}
	oneWay := int64(maxHops*m.Cfg.TNoCHop) + (int64(interCube)*m.Cfg.TSERDESNum+m.Cfg.TSERDESDen-1)/m.Cfg.TSERDESDen
	const bookkeeping = 4
	return 2*oneWay + bookkeeping
}

// Run executes one program per vault (entries may repeat the same
// program; a nil entry idles that vault). Programs must be finalized.
// Vaults run phase by phase: every vault executes to its next sync,
// then the machine aligns clocks with the barrier cost and proceeds —
// exactly the lock-step phase semantics the sync instruction provides.
// It returns aggregated statistics (Cycles = wall clock of the slowest
// vault).
func (m *Machine) Run(programs map[[2]int]*isa.Program) (sim.Stats, error) {
	var active []*vault.Vault
	for key, p := range programs {
		if p == nil {
			continue
		}
		v := m.Vaults[key[0]][key[1]]
		if err := v.Load(p); err != nil {
			return sim.Stats{}, fmt.Errorf("cube: vault %v: %w", key, err)
		}
		active = append(active, v)
	}
	if len(active) == 0 {
		return sim.Stats{}, fmt.Errorf("cube: no programs to run")
	}
	// Vault counters accumulate across the machine's lifetime; snapshot
	// them so a reused Machine (e.g. a pooled worker in internal/serve)
	// reports only what THIS run contributed.
	before := m.collectStats(active)
	for {
		allDone := true
		anyPhase := false
		for _, v := range active {
			if v.Done() {
				continue
			}
			done, err := v.RunPhase()
			if err != nil {
				return sim.Stats{}, err
			}
			if !done {
				anyPhase = true
				allDone = false
			} else if !v.Done() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if anyPhase {
			// Barrier: align all participants to the slowest plus the
			// master-slave round trip.
			var t int64
			for _, v := range active {
				if v.Now() > t {
					t = v.Now()
				}
			}
			t += m.barrierCost()
			for _, v := range active {
				v.AlignTo(t)
			}
		}
	}
	total := m.collectStats(active)
	total.Sub(&before)
	return total, nil
}

// collectStats folds and sums the cumulative counters of the given
// vaults plus the machine-global NoC/SERDES links. Callers diff two
// collections to get per-run stats (FoldDRAMStats is idempotent, so
// collecting twice is safe).
func (m *Machine) collectStats(active []*vault.Vault) sim.Stats {
	var total sim.Stats
	for _, v := range active {
		v.FoldDRAMStats()
		total.Add(&v.Stats)
	}
	for _, mesh := range m.meshes {
		total.NoC.Packets += mesh.Stats.Packets
		total.NoC.Flits += mesh.Stats.Flits
		total.NoC.Hops += mesh.Stats.Hops
	}
	total.SerdesBeat += m.serdes.Stats.Flits
	return total
}

// RunSame loads the same program into every vault and runs the machine.
func (m *Machine) RunSame(p *isa.Program) (sim.Stats, error) {
	programs := map[[2]int]*isa.Program{}
	for c := range m.Vaults {
		for vid := range m.Vaults[c] {
			programs[[2]int{c, vid}] = p
		}
	}
	return m.Run(programs)
}

// RunVault runs a program on a single vault (the representative-vault
// bench mode; see DESIGN.md §2).
func (m *Machine) RunVault(cubeID, vaultID int, p *isa.Program) (sim.Stats, error) {
	return m.Run(map[[2]int]*isa.Program{{cubeID, vaultID}: p})
}
