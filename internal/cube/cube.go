// Package cube assembles iPIM's full machine hierarchy (paper
// Sec. IV-A): vaults on a per-cube 2D-mesh on-chip network, cubes on a
// 2D-mesh of off-chip SERDES links, the master–slave inter-vault
// synchronization protocol (Sec. IV-D), and the host-side data loading
// interface. It also provides the process-on-base-die (PonB) baseline
// by flipping the config's PonB switch (Sec. VII-C1).
//
// Between two master–slave barriers the vaults are architecturally
// independent, so Machine.Run executes each inter-barrier phase on a
// bounded pool of worker goroutines (one vault per task, up to the
// configured parallelism). The schedule is provably irrelevant to the
// result: every piece of state a vault touches during a phase is either
// owned by that vault, immutable, sharded per source vault (the
// NoC/SERDES link-contention state and counters), or read through a
// published snapshot (remote bank reads). Serial and parallel runs
// therefore produce bit-identical sim.Stats — pinned by the determinism
// tests at the repository root.
package cube

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"ipim/internal/ckpt"
	"ipim/internal/dram"
	"ipim/internal/fault"
	"ipim/internal/isa"
	"ipim/internal/noc"
	"ipim/internal/sim"
	"ipim/internal/vault"
)

// port is one vault's private interconnect shard: its view of link
// occupancy (and its share of traffic counters) on every mesh a packet
// from this vault can traverse — its own cube mesh, the SERDES mesh,
// and any destination cube's mesh. Sharding makes RemoteRoundTrip a
// pure function of the source vault's own history, independent of how
// vault goroutines interleave.
type port struct {
	mesh   []*noc.LinkState // indexed like Machine.meshes
	serdes *noc.LinkState
}

// Machine is a complete iPIM accelerator.
type Machine struct {
	Cfg sim.Config // the validated configuration the machine was built from

	// Vaults[cube][vault].
	Vaults [][]*vault.Vault

	meshes []*noc.Mesh // per-cube on-chip mesh
	serdes *noc.Mesh   // inter-cube SERDES mesh

	// ports[cube][vault] is the per-source-vault interconnect shard.
	ports [][]*port

	// remoteServiceLat is the remote-end bank service latency applied to
	// req round trips: tRCD + tCL + data + queueing margin.
	remoteServiceLat int64

	// parallelism caps the worker goroutines running vault phases
	// concurrently: 0 = GOMAXPROCS, 1 = serial. Set via SetParallelism;
	// forced to 1 when IPIM_SERIAL=1 is set in the environment.
	parallelism int
	forceSerial bool

	// stepwise disables idle-cycle fast-forward on every vault (see
	// Vault.SetFastForward). Set via SetFastForward; forced on when
	// IPIM_NO_FF=1 is set in the environment.
	stepwise bool

	// budget bounds every run until changed (zero = unlimited). Set via
	// SetBudget.
	budget sim.RunOptions

	// mode is the machine's default execution mode (SetMode); a run's
	// RunOptions.Mode overrides it. DefaultMode means CycleMode.
	mode sim.Mode

	// memoOff disables the block timing memoizer on every vault. Set
	// via SetTimingMemo; forced on when IPIM_NO_MEMO=1 is set in the
	// environment.
	memoOff bool

	// fplan is the fault plan attached via SetFaultPlan (nil = none),
	// kept so checkpoints can serialize it.
	fplan *fault.Plan

	// run is the in-flight run's bookkeeping (see liveRun), non-nil
	// only between BeginRun and EndRun; mid-run checkpoints read it.
	run *liveRun

	// resume holds a restored checkpoint's in-progress run until
	// ResumeContext consumes it.
	resume *resumeState
}

// New builds a machine for the configuration.
func New(cfg sim.Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, forceSerial: os.Getenv("IPIM_SERIAL") == "1"}
	if os.Getenv("IPIM_NO_FF") == "1" {
		m.stepwise = true
	}
	t := cfg.Timing
	m.remoteServiceLat = int64(t.TRCD + t.TCL + 1 + 8)
	mw, mh := meshDims(cfg.VaultsPerCube)
	sw, sh := meshDims(cfg.Cubes)
	m.serdes = noc.NewMesh(sw, sh, cfg.TSERDESNum, cfg.TSERDESDen, cfg.SERDESLinkBytesPerCycle)
	for c := 0; c < cfg.Cubes; c++ {
		m.meshes = append(m.meshes, noc.NewMesh(mw, mh, int64(cfg.TNoCHop), 1, cfg.NoCLinkBytesPerCycle))
		var vs []*vault.Vault
		for vid := 0; vid < cfg.VaultsPerCube; vid++ {
			vs = append(vs, vault.New(&m.Cfg, c, vid, m))
		}
		m.Vaults = append(m.Vaults, vs)
	}
	for c := 0; c < cfg.Cubes; c++ {
		var ps []*port
		for vid := 0; vid < cfg.VaultsPerCube; vid++ {
			p := &port{serdes: m.serdes.NewLinkState()}
			for _, mesh := range m.meshes {
				p.mesh = append(p.mesh, mesh.NewLinkState())
			}
			ps = append(ps, p)
		}
		m.ports = append(m.ports, ps)
	}
	if m.stepwise {
		m.SetFastForward(false)
	}
	if os.Getenv("IPIM_NO_MEMO") == "1" {
		m.SetTimingMemo(false)
	}
	return m, nil
}

// SetMode selects the machine's default execution mode for subsequent
// runs: CycleMode (the default; DefaultMode is equivalent) or
// FunctionalMode (functional outputs only, no cycle accounting — see
// sim.Mode). A per-run RunOptions.Mode installed via SetBudget
// overrides it. Not safe to call during an active Run.
func (m *Machine) SetMode(mode sim.Mode) { m.mode = mode }

// Mode reports the machine's default execution mode.
func (m *Machine) Mode() sim.Mode { return m.mode }

// runMode resolves the mode one run executes under: the budget's
// override if set, else the machine default.
func (m *Machine) runMode() sim.Mode {
	mode := m.mode
	if m.budget.Mode != sim.DefaultMode {
		mode = m.budget.Mode
	}
	if mode == sim.DefaultMode {
		// Resolve eagerly: runs (and the checkpoints they serialize)
		// always carry a concrete mode.
		mode = sim.CycleMode
	}
	return mode
}

// SetTimingMemo enables (the default) or disables the block-level
// timing memoizer on every vault; disabling also flushes every cached
// block. Memoized and unmemoized cycle runs produce bit-identical
// sim.Stats and outputs (the differential tests at the repository root
// pin this); the switch exists as the reference semantics those tests
// compare against, mirroring SetFastForward. IPIM_NO_MEMO=1 in the
// environment forces it off at construction. Not safe to call during
// an active Run.
func (m *Machine) SetTimingMemo(on bool) {
	m.memoOff = !on
	for _, cube := range m.Vaults {
		for _, v := range cube {
			v.SetTimingMemo(on)
		}
	}
}

// TimingMemo reports whether the block timing memoizer is enabled.
func (m *Machine) TimingMemo() bool { return !m.memoOff }

// TimingMemoStats totals the vaults' memoizer hit and miss counts over
// the machine's lifetime (host-side diagnostics, not part of
// sim.Stats).
func (m *Machine) TimingMemoStats() (hits, misses int64) {
	for _, cube := range m.Vaults {
		for _, v := range cube {
			h, ms := v.TimingMemoStats()
			hits += h
			misses += ms
		}
	}
	return hits, misses
}

// SetFastForward enables (the default) or disables idle-cycle
// fast-forward on every vault. Disabled, stall waits advance each
// vault's clock one cycle at a time — the reference semantics the
// event-driven jumps are differentially tested against. Both modes
// produce bit-identical sim.Stats and outputs; only host time differs.
// IPIM_NO_FF=1 in the environment forces it off at construction (the
// debugging escape hatch, mirroring IPIM_SERIAL). Not safe to call
// during an active Run.
func (m *Machine) SetFastForward(on bool) {
	m.stepwise = !on
	for _, cube := range m.Vaults {
		for _, v := range cube {
			v.SetFastForward(on)
		}
	}
}

// FastForward reports whether idle-cycle fast-forward is enabled.
func (m *Machine) FastForward() bool { return !m.stepwise }

// SetDRAMPolicy switches every per-PG memory controller to the given
// row-buffer and scheduling policies. Policies steer request timing
// only, never data (internal/dram is timing-only), so outputs are
// bit-identical across settings; the schedule auto-tuner and the
// serving daemon use this to evaluate and serve tuned DRAM policies on
// a pooled machine without rebuilding it. Not safe to call during an
// active Run — change policies only between runs, like SetFastForward.
func (m *Machine) SetDRAMPolicy(page dram.PagePolicy, sched dram.SchedPolicy) {
	for _, cube := range m.Vaults {
		for _, v := range cube {
			for _, pg := range v.PGs {
				pg.Ctrl.SetPolicies(page, sched)
			}
			// Policies are part of every memo block's key, so stale
			// blocks could never match — but a policy swap means the
			// cached timings are for schedules the caller no longer
			// wants evaluated; drop them.
			v.FlushTimingMemo()
		}
	}
}

// FastForwardedCycles totals, over every vault, the idle cycles crossed
// in event jumps without simulating them individually (simulated
// cycles, cumulative over the machine's lifetime; zero with
// fast-forward disabled). Diagnostic only — deliberately not part of
// sim.Stats, which is bit-identical in both modes.
func (m *Machine) FastForwardedCycles() int64 {
	var ff int64
	for _, cube := range m.Vaults {
		for _, v := range cube {
			ff += v.FastForwardedCycles()
		}
	}
	return ff
}

// NextEvent returns a lower bound on the next cycle at or after now at
// which any vault's pending state can change on its own (the min of the
// per-vault bounds; see Vault.NextEvent), or vault.NoEvent when every
// vault is quiescent. Only meaningful between phases — during a phase
// the vaults advance their own clocks concurrently.
func (m *Machine) NextEvent(now int64) int64 {
	best := vault.NoEvent
	for _, cube := range m.Vaults {
		for _, v := range cube {
			if t := v.NextEvent(now); t < best {
				best = t
			}
		}
	}
	return best
}

// SetParallelism bounds the worker goroutines Run uses per barrier
// phase: 0 (the default) means GOMAXPROCS, 1 forces the serial
// schedule, n>1 caps the pool at n. Parallel and serial schedules
// produce bit-identical results; the knob exists for benchmarking and
// for capping the simulator's CPU footprint (e.g. one machine of many
// in a serving pool). Not safe to call during an active Run.
func (m *Machine) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	m.parallelism = n
}

// Parallelism reports the configured worker bound (0 = GOMAXPROCS).
func (m *Machine) Parallelism() int { return m.parallelism }

// SetBudget installs an execution budget applied by every subsequent
// run (zero value = unlimited). Budget exhaustion aborts the run with
// an error wrapping sim.ErrCycleBudget and resets the machine (see
// Reset); the error point is deterministic — a pure function of the
// budget and the programs, independent of the phase schedule or worker
// count. Not safe to call during an active Run.
func (m *Machine) SetBudget(b sim.RunOptions) { m.budget = b }

// Budget reports the installed execution budget.
func (m *Machine) Budget() sim.RunOptions { return m.budget }

// SetFaultPlan attaches a fault-injection plan to every vault and every
// per-source link shard (nil detaches). Decision sites are derived from
// stable component coordinates and event counters are owned per
// component, so the injected faults — like everything else the machine
// computes — are bit-identical across serial and parallel schedules.
// Not safe to call during an active Run.
func (m *Machine) SetFaultPlan(p *fault.Plan) {
	m.fplan = p
	for c := range m.Vaults {
		for vid, v := range m.Vaults[c] {
			v.SetFaultPlan(p)
			port := m.ports[c][vid]
			for mi, st := range port.mesh {
				st.AttachFaults(p, fault.Site(fault.DomLink, c, vid, mi))
			}
			port.serdes.AttachFaults(p, fault.Site(fault.DomLink, c, vid, -1))
		}
	}
	for mi, mesh := range m.meshes {
		mesh.AttachFaults(p, fault.Site(fault.DomLink, -1, -1, mi))
	}
	m.serdes.AttachFaults(p, fault.Site(fault.DomLink, -1, -1, -1))
}

// phaseWorkers resolves the worker count for a phase over n active
// vaults.
func (m *Machine) phaseWorkers(n int) int {
	if m.forceSerial {
		return 1
	}
	w := m.parallelism
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// meshDims picks near-square 2D mesh dimensions for n nodes.
func meshDims(n int) (w, h int) {
	w = 1
	for w*w < n {
		w++
	}
	for n%w != 0 {
		w++
	}
	return w, n / w
}

// Vault returns the vault at (cube, vault).
func (m *Machine) Vault(cube, vlt int) *vault.Vault { return m.Vaults[cube][vlt] }

// RemoteRead implements vault.Remote. It reads through the target
// bank's published snapshot (never growing the bank), so it is safe to
// call while the target vault executes on another goroutine; the SIMB
// memory model guarantees the addressed bytes were written before the
// last barrier, hence are identical in every snapshot any schedule can
// observe.
func (m *Machine) RemoteRead(chip, vlt, pg, pe int, addr uint32) ([]byte, error) {
	if chip < 0 || chip >= len(m.Vaults) || vlt < 0 || vlt >= len(m.Vaults[chip]) {
		return nil, fmt.Errorf("cube: remote read target chip=%d vault=%d out of range", chip, vlt)
	}
	v := m.Vaults[chip][vlt]
	if pg < 0 || pg >= len(v.PGs) || pe < 0 || pe >= m.Cfg.PEsPerPG {
		return nil, fmt.Errorf("cube: remote read target pg=%d pe=%d out of range", pg, pe)
	}
	return v.PE(pg, pe).SnapshotRead(addr, dram.AccessBytes)
}

// RemoteRoundTrip implements vault.Remote: request packet to the remote
// vault, bank service there, 16-byte response back, all over the mesh
// (and the SERDES links for cross-cube requests). Timing is computed
// against the source vault's private link shard, so it depends only on
// that vault's own traffic history.
func (m *Machine) RemoteRoundTrip(now int64, srcChip, srcVault, dstChip, dstVault int) int64 {
	const reqBytes = 16 // address + routing header
	p := m.ports[srcChip][srcVault]
	t := m.sendVaultToVault(p, now, srcChip, srcVault, dstChip, dstVault, reqBytes)
	t += m.remoteServiceLat
	return m.sendVaultToVault(p, t, dstChip, dstVault, srcChip, srcVault, dram.AccessBytes)
}

// sendVaultToVault models one direction of inter-vault traffic on the
// given source port.
func (m *Machine) sendVaultToVault(p *port, now int64, srcChip, srcVault, dstChip, dstVault int, bytes int) int64 {
	if srcChip == dstChip {
		return m.meshes[srcChip].SendOn(p.mesh[srcChip], now, srcVault, dstVault, bytes)
	}
	// Egress to the cube's SERDES port (vault 0 by convention), cross
	// the cube mesh, then ingress to the destination vault.
	t := m.meshes[srcChip].SendOn(p.mesh[srcChip], now, srcVault, 0, bytes)
	t = m.serdes.SendOn(p.serdes, t, srcChip, dstChip, bytes)
	return m.meshes[dstChip].SendOn(p.mesh[dstChip], t, 0, dstVault, bytes)
}

// barrierCost returns the master–slave sync overhead: every slave
// signals the master vault (vault 0 of cube 0), the master updates the
// global synchronization status vector, then broadcasts the
// proceed-phase message (paper Sec. IV-D). Cost is two worst-case
// traversals plus bookkeeping.
func (m *Machine) barrierCost() int64 {
	maxHops := 0
	mesh := m.meshes[0]
	for vid := 0; vid < m.Cfg.VaultsPerCube; vid++ {
		if h := mesh.HopCount(0, vid); h > maxHops {
			maxHops = h
		}
	}
	interCube := 0
	for c := 0; c < m.Cfg.Cubes; c++ {
		if h := m.serdes.HopCount(0, c); h > interCube {
			interCube = h
		}
	}
	oneWay := int64(maxHops*m.Cfg.TNoCHop) + (int64(interCube)*m.Cfg.TSERDESNum+m.Cfg.TSERDESDen-1)/m.Cfg.TSERDESDen
	const bookkeeping = 4
	return 2*oneWay + bookkeeping
}

// Run executes one program per vault (entries may repeat the same
// program; a nil entry idles that vault). Programs must be finalized.
// Vaults run phase by phase: every vault executes to its next sync,
// then the machine aligns clocks with the barrier cost and proceeds —
// exactly the lock-step phase semantics the sync instruction provides.
// Within a phase the active vaults run concurrently on up to
// phaseWorkers goroutines; results are schedule-independent (see the
// package comment). It returns aggregated statistics (Cycles = wall
// clock of the slowest vault).
//
// Run is RunContext under a background context: any budget installed
// with SetBudget still applies, and the result is bit-identical to a
// RunContext whose context never expires.
func (m *Machine) Run(programs map[[2]int]*isa.Program) (sim.Stats, error) {
	return m.RunContext(context.Background(), programs)
}

// RunContext is Run with cooperative cancellation. The context is
// checked at every phase barrier and — through a per-vault hook polled
// every vault.InterruptEvery issued instructions — inside phases, so
// even a single never-syncing phase (a runaway backward branch) is
// interruptible within microseconds of wall clock. On cancellation it
// returns an error wrapping sim.ErrCancelled and the context's cause
// (so errors.Is against context.DeadlineExceeded / context.Canceled
// works too); on budget exhaustion (SetBudget), an error wrapping
// sim.ErrCycleBudget. In both cases the machine has been Reset and is
// immediately reusable. A RunContext whose context never expires is
// bit-identical to Run — the hooks are pure control, touching no timed
// state.
func (m *Machine) RunContext(ctx context.Context, programs map[[2]int]*isa.Program) (sim.Stats, error) {
	// Fix the vault order up front: loading, stepping, error selection
	// and stats folding all walk vaults in ascending (cube, vault)
	// order, so nothing depends on Go's randomized map iteration.
	keys := make([][2]int, 0, len(programs))
	for key, p := range programs {
		if p != nil {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var active []*vault.Vault
	for _, key := range keys {
		v := m.Vaults[key[0]][key[1]]
		if err := v.Load(programs[key]); err != nil {
			return sim.Stats{}, fmt.Errorf("cube: vault %v: %w", key, err)
		}
		active = append(active, v)
	}
	if len(active) == 0 {
		return sim.Stats{}, fmt.Errorf("cube: no programs to run")
	}
	// Vault counters accumulate across the machine's lifetime; snapshot
	// them so a reused Machine (e.g. a pooled worker in internal/serve)
	// reports only what THIS run contributed.
	before := m.collectStats(active)

	// Arm run control and drive the phase loop to completion.
	interrupt := makeInterrupt(ctx)
	mode := m.runMode()
	for _, v := range active {
		v.BeginRun(m.budget, mode, interrupt)
	}
	return m.finishRun(ctx, keys, active, m.budget, mode, before)
}

// makeInterrupt builds the per-vault cancellation hook for a context.
// The hook is shared by all vault goroutines — a context's Done channel
// is safe for concurrent polling — and is nil for non-cancellable
// contexts so the vaults skip the poll entirely.
func makeInterrupt(ctx context.Context) func() error {
	if ctx.Done() == nil {
		return nil
	}
	return func() error {
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: %w", sim.ErrCancelled, context.Cause(ctx))
		default:
			return nil
		}
	}
}

// runProgress is the checkpoint pacing metric: the furthest active
// vault clock in cycle mode, or — since functional runs never advance
// clocks — the furthest cumulative issue counter.
func runProgress(active []*vault.Vault, functional bool) int64 {
	var p int64
	for _, v := range active {
		if functional {
			if v.Stats.Issued > p {
				p = v.Stats.Issued
			}
		} else if v.Now() > p {
			p = v.Now()
		}
	}
	return p
}

// finishRun drives an armed run (BeginRun or BeginResumedRun already
// called on every active vault) phase by phase to completion, aligning
// clocks at each barrier and taking periodic checkpoints there when the
// budget arms a sink. It is the shared back half of RunContext and
// ResumeContext; the run bookkeeping it stashes on the machine is what
// a mid-run checkpoint serializes. On return the vaults are disarmed.
func (m *Machine) finishRun(ctx context.Context, keys [][2]int, active []*vault.Vault, budget sim.RunOptions, mode sim.Mode, before sim.Stats) (sim.Stats, error) {
	m.run = &liveRun{keys: keys, active: active, budget: budget, mode: mode, before: before}
	defer func() {
		m.run = nil
		for _, v := range active {
			v.EndRun()
		}
	}()

	functional := mode == sim.FunctionalMode
	workers := m.phaseWorkers(len(active))
	phased := make([]bool, len(active))
	ckptOn := budget.CheckpointSink != nil && budget.CheckpointEvery > 0
	lastCkpt := runProgress(active, functional)
	if ckptOn {
		// Run-start checkpoint: programs are loaded, inputs staged and
		// run control armed, but no phase has executed — the earliest
		// point a crash-recovery journal can resume from, and the only
		// checkpoint a single-phase (sync-free) program ever gets.
		if err := budget.CheckpointSink(ckpt.Seal(m.checkpointPayload())); err != nil {
			m.Reset()
			return sim.Stats{}, fmt.Errorf("cube: checkpoint sink: %w", err)
		}
	}
	for {
		// Barrier-level check: catches cancellation between phases even
		// if no vault issues another instruction.
		if err := ctx.Err(); err != nil {
			m.Reset()
			return sim.Stats{}, fmt.Errorf("cube: %w: %w", sim.ErrCancelled, context.Cause(ctx))
		}
		var err error
		if workers <= 1 {
			err = m.runPhaseSerial(active, phased)
		} else {
			err = m.runPhaseParallel(active, phased, workers)
		}
		if err != nil {
			if errors.Is(err, sim.ErrCancelled) || errors.Is(err, sim.ErrCycleBudget) {
				// An aborted run leaves vaults mid-phase with queued DRAM
				// traffic and drifted clocks; rewind everything so the
				// machine is reusable (documented state: see Reset).
				m.Reset()
				return sim.Stats{}, fmt.Errorf("cube: %w", err)
			}
			return sim.Stats{}, err
		}
		allDone := true
		anyPhase := false
		for i, v := range active {
			if phased[i] {
				anyPhase = true
			}
			if !v.Done() {
				allDone = false
			}
		}
		if allDone {
			break
		}
		if anyPhase && !functional {
			// Barrier: align all participants to the slowest plus the
			// master-slave round trip. Functional runs skip it: no
			// clock advances, so there is nothing to align (and
			// aligning would charge sync stalls no one simulated).
			var t int64
			for _, v := range active {
				if v.Now() > t {
					t = v.Now()
				}
			}
			t += m.barrierCost()
			for _, v := range active {
				v.AlignTo(t)
			}
		}
		// Periodic checkpoint, at the barrier only: every vault has
		// drained (quiescent) and clocks are aligned, so the snapshot
		// needs no in-flight state. Pure control — it reads timed state
		// but never writes it, so a checkpointing run's stats are
		// bit-identical to a non-checkpointing one.
		if ckptOn {
			if p := runProgress(active, functional); p-lastCkpt >= budget.CheckpointEvery {
				lastCkpt = p
				if err := budget.CheckpointSink(ckpt.Seal(m.checkpointPayload())); err != nil {
					m.Reset()
					return sim.Stats{}, fmt.Errorf("cube: checkpoint sink: %w", err)
				}
			}
		}
	}
	total := m.collectStats(active)
	total.Sub(&before)
	return total, nil
}

// runPhaseSerial steps every unfinished vault to its next sync on the
// calling goroutine. phased[i] records whether vault i stopped at a
// sync (as opposed to running to completion). Like the parallel
// schedule, every active vault runs the phase even after one errors —
// abandoning the loop early would leave later vaults' state (clocks,
// fault event counters) behind where a parallel run puts them, so a
// retry after a transient fault would diverge between schedules. The
// lowest-(cube,vault) error is returned, matching runPhaseParallel.
func (m *Machine) runPhaseSerial(active []*vault.Vault, phased []bool) error {
	var firstErr error
	for i, v := range active {
		phased[i] = false
		if v.Done() {
			continue
		}
		done, err := v.RunPhase()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		phased[i] = !done
	}
	return firstErr
}

// runPhaseParallel is runPhaseSerial on a bounded worker pool. Vault i
// only ever runs on one goroutine at a time, and the pool joins before
// returning, so each vault's state is handed between goroutines with
// proper happens-before edges. Errors are collected per vault and the
// lowest-(cube,vault) one is returned, matching what a serial schedule
// blames first.
func (m *Machine) runPhaseParallel(active []*vault.Vault, phased []bool, workers int) error {
	errs := make([]error, len(active))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				v := active[i]
				done, err := v.RunPhase()
				phased[i] = !done
				errs[i] = err
			}
		}()
	}
	for i, v := range active {
		phased[i] = false
		if v.Done() {
			continue
		}
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// collectStats folds and sums the cumulative counters of the given
// vaults plus the machine-global NoC/SERDES links, walking vaults and
// port shards in ascending (cube, vault) order so the fold is a fixed
// reduction tree. Callers diff two collections to get per-run stats
// (FoldDRAMStats is idempotent, so collecting twice is safe).
func (m *Machine) collectStats(active []*vault.Vault) sim.Stats {
	var total sim.Stats
	for _, v := range active {
		v.FoldDRAMStats()
		total.Add(&v.Stats)
	}
	for _, ps := range m.ports {
		for _, p := range ps {
			for _, st := range p.mesh {
				total.NoC.Packets += st.Stats.Packets
				total.NoC.Flits += st.Stats.Flits
				total.NoC.Hops += st.Stats.Hops
				total.NoC.LinkFaults += st.Stats.LinkFaults
				total.NoC.RetransmitFlits += st.Stats.RetransmitFlits
			}
			total.SerdesBeat += p.serdes.Stats.Flits
			total.NoC.LinkFaults += p.serdes.Stats.LinkFaults
			total.NoC.RetransmitFlits += p.serdes.Stats.RetransmitFlits
		}
	}
	// Direct (unsharded) mesh traffic, if any future caller injects it.
	for _, mesh := range m.meshes {
		total.NoC.Packets += mesh.Stats.Packets
		total.NoC.Flits += mesh.Stats.Flits
		total.NoC.Hops += mesh.Stats.Hops
		total.NoC.LinkFaults += mesh.Stats.LinkFaults
		total.NoC.RetransmitFlits += mesh.Stats.RetransmitFlits
	}
	total.SerdesBeat += m.serdes.Stats.Flits
	total.NoC.LinkFaults += m.serdes.Stats.LinkFaults
	total.NoC.RetransmitFlits += m.serdes.Stats.RetransmitFlits
	return total
}

// Reset returns the machine to a clean reusable state: every vault's
// program is unloaded, its queues drained and clock rewound to zero,
// instruction caches go cold, DRAM controller timing state (open rows,
// request queues, tFAW/refresh windows) is rewound, and every
// interconnect shard's link-occupancy timeline is zeroed — timing-wise
// the machine is indistinguishable from one fresh out of New.
//
// Cumulative state deliberately survives: Stats counters (pools diff
// snapshots around each run), attached fault plans and their per-site
// decision streams, SRAM/DRAM data contents, and configuration
// (parallelism, budget). RunContext calls Reset automatically when a
// run is cancelled or exhausts its budget; worker pools call it when
// recovering a machine from a panic.
func (m *Machine) Reset() {
	for _, cube := range m.Vaults {
		for _, v := range cube {
			v.Abort()
		}
	}
	for _, ps := range m.ports {
		for _, p := range ps {
			for _, st := range p.mesh {
				st.ResetTiming()
			}
			p.serdes.ResetTiming()
		}
	}
	for _, mesh := range m.meshes {
		mesh.ResetTiming()
	}
	m.serdes.ResetTiming()
}

// RunSame loads the same program into every vault and runs the machine.
func (m *Machine) RunSame(p *isa.Program) (sim.Stats, error) {
	return m.RunSameContext(context.Background(), p)
}

// RunSameContext is RunSame with the cancellation and budget semantics
// of RunContext.
func (m *Machine) RunSameContext(ctx context.Context, p *isa.Program) (sim.Stats, error) {
	programs := map[[2]int]*isa.Program{}
	for c := range m.Vaults {
		for vid := range m.Vaults[c] {
			programs[[2]int{c, vid}] = p
		}
	}
	return m.RunContext(ctx, programs)
}

// RunVault runs a program on a single vault (the representative-vault
// bench mode; see DESIGN.md §2).
func (m *Machine) RunVault(cubeID, vaultID int, p *isa.Program) (sim.Stats, error) {
	return m.RunVaultContext(context.Background(), cubeID, vaultID, p)
}

// RunVaultContext is RunVault with the cancellation and budget
// semantics of RunContext.
func (m *Machine) RunVaultContext(ctx context.Context, cubeID, vaultID int, p *isa.Program) (sim.Stats, error) {
	return m.RunContext(ctx, map[[2]int]*isa.Program{{cubeID, vaultID}: p})
}
