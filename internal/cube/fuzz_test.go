package cube

// Hostile-input hardening for the checkpoint decoder. The contract
// (decode-then-apply, see checkpoint.go): Restore on arbitrary bytes
// either succeeds or fails with a typed error — ckpt.ErrCorrupt (which
// ErrTruncated wraps), ckpt.ErrVersion or ErrCheckpointConfig — and a
// failed Restore leaves the machine bit-identical to how it found it.
// Never a panic, never a half-restored machine.

import (
	"bytes"
	"errors"
	"testing"

	"ipim/internal/ckpt"
	"ipim/internal/sim"
)

// ckptSeeds builds the seed corpus: an idle-machine checkpoint and a
// mid-run (run-section-carrying) checkpoint from a checkpointing run.
func ckptSeeds(t testing.TB) (idle, midrun []byte) {
	t.Helper()
	m := newTinyMachine(t)
	idle, err := m.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	m.SetBudget(sim.RunOptions{
		CheckpointEvery: 1,
		CheckpointSink: func(data []byte) error {
			if midrun == nil {
				midrun = append([]byte(nil), data...)
			}
			return nil
		},
	})
	if _, err := m.RunSame(mustAssemble(t, brightenSrc)); err != nil {
		t.Fatal(err)
	}
	if midrun == nil {
		t.Fatal("checkpointing run produced no checkpoint")
	}
	return idle, midrun
}

// TestCheckpointDecodeHostile pins the typed error for each corruption
// class a crash can realistically produce.
func TestCheckpointDecodeHostile(t *testing.T) {
	idle, midrun := ckptSeeds(t)
	m := newTinyMachine(t)
	baseline, err := m.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte, want error) {
		t.Helper()
		if err := m.Restore(data); !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
		after, err := m.CheckpointBytes()
		if err != nil {
			t.Fatalf("%s: checkpoint after failed restore: %v", name, err)
		}
		if !bytes.Equal(baseline, after) {
			t.Errorf("%s: failed restore mutated the machine", name)
		}
	}

	check("empty", nil, ckpt.ErrTruncated)
	check("short header", idle[:10], ckpt.ErrTruncated)
	torn := append([]byte(nil), midrun...)
	check("torn tail", torn[:len(torn)-5], ckpt.ErrTruncated)
	ver := append([]byte(nil), idle...)
	ver[8] ^= 0xFF // version field, after the 8-byte magic
	check("version flip", ver, ckpt.ErrVersion)
	crc := append([]byte(nil), midrun...)
	crc[len(crc)-1] ^= 0x01
	check("CRC flip", crc, ckpt.ErrCorrupt)
	payload := append([]byte(nil), midrun...)
	payload[len(payload)/2] ^= 0x10 // body flip: CRC catches it
	check("payload flip", payload, ckpt.ErrCorrupt)
	check("trailing garbage", append(append([]byte(nil), idle...), 0xAB), ckpt.ErrCorrupt)

	// Wrong-config checkpoint: structurally valid, rejected by digest.
	other, err := New(sim.TestTinyOneVault())
	if err != nil {
		t.Fatal(err)
	}
	otherData, err := other.CheckpointBytes()
	if err != nil {
		t.Fatal(err)
	}
	check("config mismatch", otherData, ErrCheckpointConfig)
}

// FuzzCheckpointDecode throws arbitrary mutations of real checkpoints
// at Restore.
func FuzzCheckpointDecode(f *testing.F) {
	m, err := New(sim.TestTiny())
	if err != nil {
		f.Fatal(err)
	}
	idle, midrun := ckptSeeds(f)
	f.Add(idle)
	f.Add(midrun)
	f.Add(idle[:len(idle)-7]) // torn tail
	ver := append([]byte(nil), idle...)
	ver[8] ^= 0x01
	f.Add(ver) // schema version rejection
	f.Add([]byte("IPIMCKPT"))
	baseline, err := m.CheckpointBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		err := m.Restore(data)
		if err == nil {
			// A structurally valid checkpoint restored; rewind to the
			// known baseline for the next iteration.
			if err := m.Restore(baseline); err != nil {
				t.Fatalf("baseline re-restore: %v", err)
			}
			return
		}
		if !errors.Is(err, ckpt.ErrCorrupt) && !errors.Is(err, ckpt.ErrVersion) && !errors.Is(err, ErrCheckpointConfig) {
			t.Fatalf("untyped restore error: %v", err)
		}
		after, cerr := m.CheckpointBytes()
		if cerr != nil {
			t.Fatalf("checkpoint after failed restore: %v", cerr)
		}
		if !bytes.Equal(baseline, after) {
			t.Fatal("failed restore half-mutated the machine")
		}
	})
}
