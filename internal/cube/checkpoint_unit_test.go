package cube

import (
	"bytes"
	"errors"
	"testing"

	"ipim/internal/sim"
)

// brightenInputs loads the brighten kernel's VSM constant and distinct
// per-PE bank contents onto m.
func brightenInputs(t *testing.T, m *Machine) {
	t.Helper()
	if err := m.WriteVSM(0, 0, 0, f32bytes(2.0, 2.0, 2.0, 2.0)); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < m.Cfg.PGsPerVault; pg++ {
		for pe := 0; pe < m.Cfg.PEsPerPG; pe++ {
			var in []float32
			for i := 0; i < 16; i++ {
				in = append(in, float32(pg*100+pe*10)+float32(i))
			}
			if err := m.WriteBank(0, 0, pg, pe, 0, f32bytes(in...)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCheckpointWriterRestoreMachineRoundTrip(t *testing.T) {
	src := newTinyMachine(t)
	brightenInputs(t, src)
	if _, err := src.RunVault(0, 0, mustAssemble(t, brightenSrc)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	got, err := RestoreMachine(bytes.NewReader(buf.Bytes()), sim.TestTiny())
	if err != nil {
		t.Fatalf("RestoreMachine: %v", err)
	}
	if got.HasResume() {
		t.Error("idle checkpoint must not arm a resume")
	}
	a, err := src.ReadBank(0, 0, 0, 0, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.ReadBank(0, 0, 0, 0, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("restored machine's bank contents differ from the source")
	}
	// An idle machine with no resume section rejects Resume.
	if _, err := got.Resume(); !errors.Is(err, ErrNoResume) {
		t.Errorf("Resume on an idle restore = %v, want ErrNoResume", err)
	}

	// The wrong target configuration is a typed rejection.
	if _, err := RestoreMachine(bytes.NewReader(buf.Bytes()), sim.OneVault()); !errors.Is(err, ErrCheckpointConfig) {
		t.Errorf("mismatched config = %v, want ErrCheckpointConfig", err)
	}
	// And hostile bytes never half-build a machine.
	if _, err := RestoreMachine(bytes.NewReader(buf.Bytes()[:40]), sim.TestTiny()); err == nil {
		t.Error("truncated container accepted")
	}
}

func TestResumeFromMidRunCheckpoint(t *testing.T) {
	// Reference: the uninterrupted run.
	ref := newTinyMachine(t)
	brightenInputs(t, ref)
	wantStats, err := ref.RunVault(0, 0, mustAssemble(t, brightenSrc))
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := ref.ReadBank(0, 0, 0, 1, 256, 64)
	if err != nil {
		t.Fatal(err)
	}

	// The checkpointed run: capture the run-start checkpoint (the only
	// barrier a sync-free program crosses), then abandon the machine.
	src := newTinyMachine(t)
	brightenInputs(t, src)
	var ck []byte
	src.SetBudget(sim.RunOptions{CheckpointEvery: 1, CheckpointSink: func(data []byte) error {
		ck = append(ck[:0], data...)
		return nil
	}})
	if _, err := src.RunVault(0, 0, mustAssemble(t, brightenSrc)); err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("checkpoint sink never fired")
	}

	got, err := RestoreMachine(bytes.NewReader(ck), sim.TestTiny())
	if err != nil {
		t.Fatalf("RestoreMachine: %v", err)
	}
	if !got.HasResume() {
		t.Fatal("mid-run checkpoint did not arm a resume")
	}
	stats, err := got.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if stats != wantStats {
		t.Errorf("resumed Stats differ from the uninterrupted run:\n got %+v\nwant %+v", stats, wantStats)
	}
	gotOut, err := got.ReadBank(0, 0, 0, 1, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotOut, wantOut) {
		t.Error("resumed output differs from the uninterrupted run")
	}
	// The resume is consumed: a second call is a typed error.
	if got.HasResume() {
		t.Error("HasResume still true after the resume was consumed")
	}
	if _, err := got.Resume(); !errors.Is(err, ErrNoResume) {
		t.Errorf("second Resume = %v, want ErrNoResume", err)
	}
}
