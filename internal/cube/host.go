package cube

import (
	"fmt"

	"ipim/internal/engine"
)

// Host-side data interface. iPIM is a standalone accelerator with its
// own address space (paper Sec. VI): the host loads inputs into banks
// and constant pools into VSMs before launching kernels, and reads
// results back afterwards. These transfers happen outside the timed
// region, exactly as the paper's evaluation (which times kernels on
// data already resident in the stack).

// PEAt returns the PE at machine-global coordinates.
func (m *Machine) PEAt(cubeID, vaultID, pgID, peID int) (*engine.PE, error) {
	if cubeID < 0 || cubeID >= len(m.Vaults) {
		return nil, fmt.Errorf("cube: cube %d out of range", cubeID)
	}
	v := m.Vaults[cubeID]
	if vaultID < 0 || vaultID >= len(v) {
		return nil, fmt.Errorf("cube: vault %d out of range", vaultID)
	}
	if pgID < 0 || pgID >= m.Cfg.PGsPerVault || peID < 0 || peID >= m.Cfg.PEsPerPG {
		return nil, fmt.Errorf("cube: pg %d / pe %d out of range", pgID, peID)
	}
	return v[vaultID].PE(pgID, peID), nil
}

// WriteBank loads host data into a PE's bank.
func (m *Machine) WriteBank(cubeID, vaultID, pgID, peID int, addr uint32, data []byte) error {
	pe, err := m.PEAt(cubeID, vaultID, pgID, peID)
	if err != nil {
		return err
	}
	return pe.WriteBank(addr, data)
}

// ReadBank copies data out of a PE's bank.
func (m *Machine) ReadBank(cubeID, vaultID, pgID, peID int, addr uint32, n int) ([]byte, error) {
	pe, err := m.PEAt(cubeID, vaultID, pgID, peID)
	if err != nil {
		return nil, err
	}
	b, err := pe.ReadBank(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// WriteVSM loads host data (e.g. a constant pool) into a vault's VSM.
func (m *Machine) WriteVSM(cubeID, vaultID int, addr uint32, data []byte) error {
	if cubeID < 0 || cubeID >= len(m.Vaults) || vaultID < 0 || vaultID >= len(m.Vaults[cubeID]) {
		return fmt.Errorf("cube: vault (%d,%d) out of range", cubeID, vaultID)
	}
	v := m.Vaults[cubeID][vaultID]
	if int(addr)+len(data) > len(v.VSM) {
		return fmt.Errorf("cube: VSM write at %#x+%d beyond %d bytes", addr, len(data), len(v.VSM))
	}
	copy(v.VSM[addr:], data)
	return nil
}
