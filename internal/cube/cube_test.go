package cube

import (
	"encoding/binary"
	"math"
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

func mustAssemble(t testing.TB, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatalf("finalize: %v", err)
	}
	return p
}

func newTinyMachine(t testing.TB) *Machine {
	t.Helper()
	m, err := New(sim.TestTiny())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func f32bytes(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func bytesToF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// brightenSrc scales 4 vectors per PE by a VSM-resident constant.
const brightenSrc = `
rd_vsm d7, 0x0, sm=*
calc_arf iadd a6, a5, #256, sm=*
seti_crf c1, #4
seti_crf c2, =loop
loop:
ld_rf d0, @a5, sm=*
comp fmul vs d1, d0, d7, vm=0xf, sm=*
st_rf d1, @a6, sm=*
calc_arf iadd a5, a5, #16, sm=*
calc_arf iadd a6, a6, #16, sm=*
calc_crf isub c1, c1, #1
cjump c1, c2
`

func TestBrightenKernelEndToEnd(t *testing.T) {
	m := newTinyMachine(t)
	const alpha = float32(2.5)
	if err := m.WriteVSM(0, 0, 0, f32bytes(alpha, alpha, alpha, alpha)); err != nil {
		t.Fatal(err)
	}
	// Distinct input per PE.
	for pg := 0; pg < m.Cfg.PGsPerVault; pg++ {
		for pe := 0; pe < m.Cfg.PEsPerPG; pe++ {
			var in []float32
			for i := 0; i < 16; i++ {
				in = append(in, float32(pg*100+pe*10)+float32(i))
			}
			if err := m.WriteBank(0, 0, pg, pe, 0, f32bytes(in...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats, err := m.RunVault(0, 0, mustAssemble(t, brightenSrc))
	if err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < m.Cfg.PGsPerVault; pg++ {
		for pe := 0; pe < m.Cfg.PEsPerPG; pe++ {
			out, err := m.ReadBank(0, 0, pg, pe, 256, 64)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range bytesToF32(out) {
				want := (float32(pg*100+pe*10) + float32(i)) * alpha
				if v != want {
					t.Fatalf("pg%d pe%d out[%d] = %v, want %v", pg, pe, i, v, want)
				}
			}
		}
	}
	if stats.Cycles <= 0 || stats.Issued == 0 {
		t.Fatalf("no timing recorded: %+v", stats)
	}
	// 2 prologue + 2 seti + 4 iterations x 7 instructions.
	if stats.Issued != 4+4*7 {
		t.Errorf("issued = %d, want 32", stats.Issued)
	}
	if ipc := stats.IPC(); ipc <= 0 || ipc > 1 {
		t.Errorf("IPC = %v outside (0,1]", ipc)
	}
	if stats.DRAM.Reads != 4*4 || stats.DRAM.Writes != 4*4 { // 4 PEs x 4 iters
		t.Errorf("DRAM reads/writes = %d/%d, want 16/16", stats.DRAM.Reads, stats.DRAM.Writes)
	}
	if stats.InstByCategory[isa.CatIndexCalc] != 9 { // 1 prologue + 2 x 4 iters
		t.Errorf("index-calc count = %d, want 9", stats.InstByCategory[isa.CatIndexCalc])
	}
}

func TestSimbMaskSelectsPEs(t *testing.T) {
	m := newTinyMachine(t)
	// Only PE index 2 (pg1, pe0) stores d0 (zeros overwritten by ld).
	src := `
ld_rf d0, 0x0, sm=0x4
comp fadd vv d1, d0, d0, vm=0xf, sm=0x4
st_rf d1, 0x40, sm=0x4
`
	for pg := 0; pg < 2; pg++ {
		for pe := 0; pe < 2; pe++ {
			m.WriteBank(0, 0, pg, pe, 0, f32bytes(1, 2, 3, 4))
		}
	}
	if _, err := m.RunVault(0, 0, mustAssemble(t, src)); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < 2; pg++ {
		for pe := 0; pe < 2; pe++ {
			out, _ := m.ReadBank(0, 0, pg, pe, 0x40, 16)
			got := bytesToF32(out)
			if pg == 1 && pe == 0 {
				if got[0] != 2 || got[3] != 8 {
					t.Fatalf("masked PE wrong result: %v", got)
				}
			} else if got[0] != 0 {
				t.Fatalf("unmasked PE pg%d pe%d wrote data: %v", pg, pe, got)
			}
		}
	}
}

func TestPGSMSharingBetweenPEs(t *testing.T) {
	m := newTinyMachine(t)
	// PE0 of each PG loads its bank vector into PGSM; then all PEs of
	// the PG read it back (data sharing within a process group).
	src := `
ld_pgsm 0x0, 0x20, sm=0x5
rd_pgsm d2, 0x20, sm=*
st_rf d2, 0x100, sm=*
`
	m.WriteBank(0, 0, 0, 0, 0, f32bytes(7, 8, 9, 10))
	m.WriteBank(0, 0, 1, 0, 0, f32bytes(70, 80, 90, 100))
	if _, err := m.RunVault(0, 0, mustAssemble(t, src)); err != nil {
		t.Fatal(err)
	}
	// PE1 of pg0 sees pg0's PGSM data.
	out, _ := m.ReadBank(0, 0, 0, 1, 0x100, 16)
	if got := bytesToF32(out); got[0] != 7 || got[3] != 10 {
		t.Fatalf("pg0 pe1 read %v via PGSM", got)
	}
	out, _ = m.ReadBank(0, 0, 1, 1, 0x100, 16)
	if got := bytesToF32(out); got[0] != 70 {
		t.Fatalf("pg1 pe1 read %v via PGSM", got)
	}
}

func TestIndirectAddressingPerPE(t *testing.T) {
	m := newTinyMachine(t)
	// Each PE stores its vault-wide PE index vector to addr 16*index:
	// a4 = (pgID*2 + peID) * 16, mov to DRF, store.
	src := `
calc_arf shl a4, a1, #1, sm=*
calc_arf iadd a4, a4, a0, sm=*
mov_drf d1, a4, lane=0, sm=*
calc_arf shl a5, a4, #4, sm=*
st_rf d1, @a5, sm=*
`
	if _, err := m.RunVault(0, 0, mustAssemble(t, src)); err != nil {
		t.Fatal(err)
	}
	for pg := 0; pg < 2; pg++ {
		for pe := 0; pe < 2; pe++ {
			idx := pg*2 + pe
			out, _ := m.ReadBank(0, 0, pg, pe, uint32(16*idx), 16)
			got := binary.LittleEndian.Uint32(out)
			if got != uint32(idx) {
				t.Fatalf("pg%d pe%d stored %d at %#x, want %d", pg, pe, got, 16*idx, idx)
			}
		}
	}
}

func TestDataHazardStallsIssue(t *testing.T) {
	// A dependent chain of fmacs must take longer than independent ones.
	m1 := newTinyMachine(t)
	dep := `
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
`
	sDep, err := m1.RunVault(0, 0, mustAssemble(t, dep))
	if err != nil {
		t.Fatal(err)
	}
	m2 := newTinyMachine(t)
	indep := `
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d2, d0, d0, vm=0xf, sm=*
comp fmac vv d3, d0, d0, vm=0xf, sm=*
comp fmac vv d4, d0, d0, vm=0xf, sm=*
`
	sIndep, err := m2.RunVault(0, 0, mustAssemble(t, indep))
	if err != nil {
		t.Fatal(err)
	}
	if sDep.Cycles <= sIndep.Cycles {
		t.Fatalf("dependent chain (%d cycles) not slower than independent (%d)", sDep.Cycles, sIndep.Cycles)
	}
	if sDep.StallCycles[sim.StallData] == 0 {
		t.Fatal("no data-hazard stalls recorded for dependent chain")
	}
	if sIndep.StallCycles[sim.StallData] != 0 {
		t.Fatal("independent stream recorded hazard stalls")
	}
}

func TestRemoteReqAcrossVaults(t *testing.T) {
	m := newTinyMachine(t)
	m.WriteBank(0, 1, 0, 0, 0x0, f32bytes(42, 43, 44, 45))
	src := `
req chip=0, vault=1, pg=0, pe=0, dram=0x0, vsm=0x40
sync 0
rd_vsm d1, 0x40, sm=0x1
st_rf d1, 0x80, sm=0x1
`
	stats, err := m.RunVault(0, 0, mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(0, 0, 0, 0, 0x80, 16)
	if got := bytesToF32(out); got[0] != 42 || got[3] != 45 {
		t.Fatalf("remote data = %v", got)
	}
	if stats.RemoteReqs != 1 || stats.Syncs != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.NoC.Packets == 0 {
		t.Fatal("remote access generated no NoC traffic")
	}
}

func TestReqWithoutSyncStillOrdersRdVSM(t *testing.T) {
	m := newTinyMachine(t)
	m.WriteBank(0, 1, 0, 0, 0x0, f32bytes(5, 6, 7, 8))
	src := `
req chip=0, vault=1, pg=0, pe=0, dram=0x0, vsm=0x40
rd_vsm d1, 0x40, sm=0x1
st_rf d1, 0x80, sm=0x1
`
	stats, err := m.RunVault(0, 0, mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(0, 0, 0, 0, 0x80, 16)
	if got := bytesToF32(out); got[0] != 5 {
		t.Fatalf("remote data = %v", got)
	}
	// The rd_vsm must have waited for the round trip: cycles exceed the
	// handful of issue slots.
	if stats.Cycles < 20 {
		t.Fatalf("rd_vsm did not wait for remote arrival: %d cycles", stats.Cycles)
	}
}

func TestMultiVaultSyncAligns(t *testing.T) {
	m := newTinyMachine(t)
	// Vault 0 does heavy work before the sync; vault 1 almost none.
	heavy := `
seti_crf c1, #50
seti_crf c2, =loop
loop:
comp fmac vv d1, d1, d1, vm=0xf, sm=*
calc_crf isub c1, c1, #1
cjump c1, c2
sync 0
st_rf d1, 0x0, sm=0x1
`
	light := `
sync 0
st_rf d1, 0x0, sm=0x1
`
	ph := mustAssemble(t, heavy)
	pl := mustAssemble(t, light)
	stats, err := m.Run(map[[2]int]*isa.Program{{0, 0}: ph, {0, 1}: pl})
	if err != nil {
		t.Fatal(err)
	}
	v0, v1 := m.Vault(0, 0), m.Vault(0, 1)
	if v1.Stats.StallCycles[sim.StallSync] == 0 {
		t.Fatal("light vault did not wait at the barrier")
	}
	// Both vaults end at roughly the same wall clock (within the tail
	// store + barrier cost).
	d := v0.Now() - v1.Now()
	if d < 0 {
		d = -d
	}
	if d > 100 {
		t.Fatalf("vault clocks diverged by %d after barrier", d)
	}
	if stats.Syncs != 2 {
		t.Fatalf("syncs = %d, want 2", stats.Syncs)
	}
}

func TestPonBSlowerForStreaming(t *testing.T) {
	// Unrolled independent loads: near-bank overlaps all banks; PonB
	// serializes every beat on the vault TSVs.
	src := `
ld_rf d0, 0x0, sm=*
ld_rf d1, 0x10, sm=*
ld_rf d2, 0x20, sm=*
ld_rf d3, 0x30, sm=*
ld_rf d4, 0x40, sm=*
ld_rf d5, 0x50, sm=*
ld_rf d6, 0x60, sm=*
ld_rf d7, 0x70, sm=*
st_rf d0, 0x100, sm=*
st_rf d1, 0x110, sm=*
st_rf d2, 0x120, sm=*
st_rf d3, 0x130, sm=*
st_rf d4, 0x140, sm=*
st_rf d5, 0x150, sm=*
st_rf d6, 0x160, sm=*
st_rf d7, 0x170, sm=*
`
	near, err := newTinyMachine(t).RunVault(0, 0, mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.TestTiny()
	cfg.PonB = true
	mp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ponb, err := mp.RunVault(0, 0, mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if ponb.Cycles <= near.Cycles {
		t.Fatalf("PonB (%d cycles) not slower than near-bank (%d)", ponb.Cycles, near.Cycles)
	}
	if ponb.TSVBeats == 0 {
		t.Fatal("PonB recorded no TSV traffic")
	}
	if near.TSVBeats != 0 {
		t.Fatal("near-bank bank accesses crossed TSVs")
	}
}

func TestInstQueueCapacityLimitsInflight(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.InstQueue = 2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := `
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d2, d0, d0, vm=0xf, sm=*
comp fmac vv d3, d0, d0, vm=0xf, sm=*
comp fmac vv d4, d0, d0, vm=0xf, sm=*
`
	stats, err := m.RunVault(0, 0, mustAssemble(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if stats.StallCycles[sim.StallQueueFull] == 0 {
		t.Fatal("2-entry issued queue never filled with 8-cycle macs")
	}
}

func TestHistogramStyleScatterIncrement(t *testing.T) {
	m := newTinyMachine(t)
	// Value-dependent addressing: bin = f2i(v); addr = base + bin*16;
	// load bin count, add 1, store. Two increments of the same bin.
	src := `
rd_vsm d6, 0x0, sm=0x1        ; ones vector
ld_rf d0, 0x0, sm=0x1         ; pixel value
comp f2i vv d1, d0, d0, vm=0x1, sm=0x1
mov_arf a4, d1, lane=0, sm=0x1
calc_arf shl a4, a4, #4, sm=0x1
calc_arf iadd a4, a4, #4096, sm=0x1
ld_rf d2, @a4, sm=0x1
comp iadd vv d2, d2, d6, vm=0x1, sm=0x1
st_rf d2, @a4, sm=0x1
ld_rf d2, @a4, sm=0x1
comp iadd vv d2, d2, d6, vm=0x1, sm=0x1
st_rf d2, @a4, sm=0x1
`
	// ones = int32 1 in lane 0.
	ones := make([]byte, 16)
	binary.LittleEndian.PutUint32(ones, 1)
	m.WriteVSM(0, 0, 0, ones)
	m.WriteBank(0, 0, 0, 0, 0, f32bytes(3.7, 0, 0, 0)) // bin 3
	if _, err := m.RunVault(0, 0, mustAssemble(t, src)); err != nil {
		t.Fatal(err)
	}
	out, _ := m.ReadBank(0, 0, 0, 0, 4096+3*16, 4)
	if got := binary.LittleEndian.Uint32(out); got != 2 {
		t.Fatalf("bin 3 count = %d, want 2", got)
	}
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4},
	}
	for _, c := range cases {
		w, h := meshDims(c.n)
		if w != c.w || h != c.h {
			t.Errorf("meshDims(%d) = (%d,%d), want (%d,%d)", c.n, w, h, c.w, c.h)
		}
	}
}

func TestRunErrors(t *testing.T) {
	m := newTinyMachine(t)
	if _, err := m.Run(map[[2]int]*isa.Program{}); err == nil {
		t.Error("empty program map accepted")
	}
	// Register index beyond tiny config's files.
	bad := &isa.Program{}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FAdd
	in.Dst = 9999
	bad.Append(in)
	if _, err := m.RunVault(0, 0, bad); err == nil {
		t.Error("invalid program accepted")
	}
}

func TestHostAccessorErrors(t *testing.T) {
	m := newTinyMachine(t)
	if _, err := m.PEAt(9, 0, 0, 0); err == nil {
		t.Error("bad cube accepted")
	}
	if _, err := m.PEAt(0, 9, 0, 0); err == nil {
		t.Error("bad vault accepted")
	}
	if _, err := m.PEAt(0, 0, 9, 0); err == nil {
		t.Error("bad pg accepted")
	}
	if err := m.WriteVSM(0, 0, uint32(m.Cfg.VSMBytes), []byte{1}); err == nil {
		t.Error("VSM overflow accepted")
	}
	if err := m.WriteVSM(0, 5, 0, []byte{1}); err == nil {
		t.Error("bad vault VSM write accepted")
	}
}

func TestRemoteReadErrors(t *testing.T) {
	m := newTinyMachine(t)
	if _, err := m.RemoteRead(5, 0, 0, 0, 0); err == nil {
		t.Error("bad chip accepted")
	}
	if _, err := m.RemoteRead(0, 0, 7, 0, 0); err == nil {
		t.Error("bad pg accepted")
	}
}
