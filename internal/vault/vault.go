// Package vault implements iPIM's control core and the vault-level
// execution model (paper Sec. IV-B): a pipelined, single-issue, in-order
// core on the base logic die that checks true/anti/output dependencies
// against an Issued Instruction Queue at issue time (no forwarding),
// broadcasts SIMB instructions to the vault's process engines over the
// shared TSVs, and retires an instruction only when every PE selected by
// its simb_mask has finished (lock-step execution).
//
// Functional execution happens at issue time in program order, which is
// exact for an in-order core; completion *times* are computed from the
// Table III latencies, the per-PG DRAM controllers, TSV serialization
// and the NoC, and drive all stalls (hazards, queue capacity, DRAM
// request queue back-pressure, branches, barriers).
package vault

import (
	"fmt"
	"math"

	"ipim/internal/dram"
	"ipim/internal/engine"
	"ipim/internal/fault"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Remote is the machine-level service a vault uses for inter-vault
// accesses (the req instruction) — implemented by the cube package.
//
// Concurrency: RunPhase may execute on a different goroutine each
// phase (the machine's phase worker pool), so both methods must be
// safe to call concurrently from many vaults' goroutines AND return
// schedule-independent results. Everything else a vault touches during
// RunPhase is vault-owned (PGs, controllers, VSM, register files,
// in-flight queue, clock) or immutable (*sim.Config, the loaded
// *isa.Program, which may be shared read-only across vaults); these
// Remote calls are the only cross-vault edges in the timed path.
type Remote interface {
	// RemoteRead returns 16 bytes from the addressed remote bank.
	RemoteRead(chip, vlt, pg, pe int, addr uint32) ([]byte, error)
	// RemoteRoundTrip returns the local arrival time of the 16-byte
	// response for a req injected at now by (srcChip, srcVault).
	RemoteRoundTrip(now int64, srcChip, srcVault, dstChip, dstVault int) int64
}

// NoEvent is the NextEvent sentinel for "no lower bound": the component
// is quiescent and cannot change state on its own. It matches
// dram.NoEvent so bounds from different layers min together directly.
const NoEvent int64 = math.MaxInt64

// entry is one Issued Instruction Queue slot. Entries are recycled
// through the vault's free list (newEntry/freeEntry): an entry pointer
// is live exactly while it sits in the inflight queue, so reuse cannot
// alias two in-flight instructions.
type entry struct {
	idx       int
	defs      []isa.RegRef
	uses      []isa.RegRef
	completes int64
	// Pending bank requests (emptied once resolved). pgs[i] owns
	// reqs[i].
	reqs []*dram.Request
	pgs  []*engine.PG
	// post-DRAM latency (PE bus + RF/PGSM write) added per request.
	extra int64
	// usesTSV marks bank traffic that must serialize on the vault TSVs
	// (PonB mode).
	usesTSV bool
}

// instrDeps caches one instruction's register def/use sets. The vault
// precomputes them at Load time so the issue loop's hazard checks never
// allocate: isa.Instruction.Defs/Uses build fresh slices per call, which
// at one call per issued instruction dominated the simulator's garbage
// production before the fast-forward work.
type instrDeps struct {
	defs, uses []isa.RegRef
}

// peSlot pairs a PE with its process group, precomputed per vault-wide
// PE index so the per-instruction broadcast loop avoids the div/mod of
// peByIndex.
type peSlot struct {
	pg *engine.PG
	pe *engine.PE
}

// Vault is one vault: control core state plus its process groups.
type Vault struct {
	Cfg    *sim.Config // shared machine configuration (immutable)
	CubeID int         // cube (chip) index within the machine
	ID     int         // vault index within the cube

	PGs []*engine.PG // process groups, indexed by PG id
	VSM []byte       // vault shared memory backing store
	CRF []int32      // control-core scalar register file

	// Stats accumulates over the vault's lifetime in simulated cycles
	// and event counts; the machine diffs snapshots around each run.
	Stats sim.Stats

	remote Remote

	prog     *isa.Program
	pc       int
	now      int64
	inflight []*entry
	tsvFree  int64
	vsmReady map[uint32]int64
	done     bool
	tracer   *Tracer

	// deps[i] is the precomputed def/use set of prog.Ins[i] (rebuilt by
	// Load; see instrDeps).
	deps []instrDeps

	// peList[i] is the (PG, PE) pair at vault-wide PE index i; peFlat
	// is the same order with only the PE pointers, packed densely for
	// the functional executor's hot loops.
	peList []peSlot
	peFlat []*engine.PE

	// Free lists for issued-queue entries and DRAM requests. Both kinds
	// of object have exact lifetimes (an entry dies when it leaves
	// inflight; a request dies when resolve consumes its Finish time),
	// so recycling is safe and keeps the issue loop allocation-free in
	// steady state.
	entryPool []*entry
	reqPool   []*dram.Request

	// stepwise disables idle-cycle fast-forward: every stall advance
	// walks the clock one cycle at a time instead of jumping to the
	// event bound. Stats are bit-identical either way (the differential
	// property test at the repo root pins this); the mode exists as the
	// reference semantics fast-forward is checked against. Set via
	// SetFastForward (the machine wires it; IPIM_NO_FF=1 forces it).
	stepwise bool

	// ffSkipped counts idle cycles the vault's clock crossed in a
	// single event jump without simulating them individually (the
	// interior of every multi-cycle stall advance). Diagnostic only —
	// deliberately NOT part of sim.Stats, which must stay bit-identical
	// between fast-forward and stepwise runs.
	ffSkipped int64
	// ffIssue accumulates ffSkipped within the current instruction's
	// issue, for the tracer's fast-forward attribution.
	ffIssue int64

	// Direct-mapped instruction cache tags (line index per set; -1 =
	// invalid). The VSM backs the I$ (paper Sec. IV-E).
	icache []int64

	// Fault injection (nil = disabled). The event counters are owned by
	// this vault and advance only with its own serial execution, so the
	// fault stream is independent of the machine's phase schedule (see
	// internal/fault). faultN counts 128-bit bank reads; execN counts
	// execution phases.
	fp        *fault.Plan
	faultN    uint64
	execN     uint64
	execSite  uint64
	bankSites [][]uint64 // [pg][bank] decision-site ids

	// Run control, armed per run by the machine (BeginRun). limited
	// gates every check with one branch so an unarmed vault's issue
	// loop is untouched. Budget checks read only vault-owned state
	// (clock, issue counters), so the error point is identical on
	// every phase schedule; the interrupt hook (context cancellation)
	// is polled at a bounded instruction interval and is the only
	// wall-clock-dependent exit.
	limited    bool
	budget     sim.RunOptions
	interrupt  func() error
	runStart   int64 // vault clock when the current run was armed
	phaseSteps int64 // instructions issued in the current phase
	sinceCheck int   // instructions since the interrupt hook last ran

	// funcMode runs phases through the functional interpreter (no cycle
	// accounting; see functional.go). Armed per run by BeginRun;
	// funcIssued counts issued instructions for the run, standing in
	// for the clock in MaxCycles budget checks.
	funcMode   bool
	funcIssued int64

	// memo is the block-level timing memoizer for cycle mode (see
	// memo.go); memoOff disables it (SetTimingMemo; the machine wires
	// IPIM_NO_MEMO=1 through it).
	memo    *timingMemo
	memoOff bool
}

// New builds a vault.
func New(cfg *sim.Config, cubeID, vaultID int, remote Remote) *Vault {
	v := &Vault{
		Cfg:      cfg,
		CubeID:   cubeID,
		ID:       vaultID,
		VSM:      make([]byte, cfg.VSMBytes),
		CRF:      make([]int32, cfg.CtrlRFEntries),
		remote:   remote,
		vsmReady: make(map[uint32]int64),
		done:     true,
		memo:     &timingMemo{},
	}
	for pg := 0; pg < cfg.PGsPerVault; pg++ {
		v.PGs = append(v.PGs, engine.NewPG(cfg, cubeID, vaultID, pg))
	}
	for i := 0; i < cfg.PEsPerVault(); i++ {
		pg := v.PGs[i/cfg.PEsPerPG]
		v.peList = append(v.peList, peSlot{pg: pg, pe: pg.PEs[i%cfg.PEsPerPG]})
		v.peFlat = append(v.peFlat, pg.PEs[i%cfg.PEsPerPG])
	}
	if cfg.ICacheLines > 0 && cfg.ICacheLineInstr > 0 {
		v.icache = make([]int64, cfg.ICacheLines)
		for i := range v.icache {
			v.icache[i] = -1
		}
	}
	return v
}

// SetFastForward enables (the default) or disables idle-cycle
// fast-forward for this vault. Disabled, every stall advance steps the
// clock one cycle at a time — the reference semantics the event-driven
// jumps are differentially tested against. The produced sim.Stats are
// bit-identical in both modes; only host time differs. Not safe to call
// during an active run.
func (v *Vault) SetFastForward(on bool) { v.stepwise = !on }

// FastForwardedCycles reports how many idle cycles this vault's clock
// has crossed in event jumps without simulating them individually,
// cumulatively over the vault's lifetime. Zero in stepwise mode. This
// is a host-side diagnostic (units: simulated cycles); it is not part
// of sim.Stats and does not fold across vaults.
func (v *Vault) FastForwardedCycles() int64 { return v.ffSkipped }

// advanceTo moves the vault clock forward to t, charging the wait to
// the given stall reason. This is the single choke point every stall
// advance goes through: in fast-forward mode the clock jumps straight
// to t (counting the interior cycles as skipped); in stepwise mode it
// walks cycle by cycle. Both charge exactly (t - now) cycles to reason,
// so the two modes produce identical statistics. No-op when t <= now.
func (v *Vault) advanceTo(t int64, reason sim.StallReason) {
	if t <= v.now {
		return
	}
	if v.stepwise {
		for v.now < t {
			v.now++
			v.Stats.StallCycles[reason]++
		}
		return
	}
	d := t - v.now
	if d > 1 {
		v.ffSkipped += d - 1
		v.ffIssue += d - 1
	}
	v.Stats.StallCycles[reason] += d
	v.now = t
}

// NextEvent returns a lower bound on the next cycle at or after now at
// which this vault's *pending* state can change on its own: the
// earliest in-flight completion, DRAM controller event, or remote
// response arrival. It returns NoEvent when nothing is pending (the
// core itself can still issue, which is not an "event" in this sense).
// Read-only: unlike resolve, it never schedules queued DRAM requests,
// so the bound for a bank instruction is its controller's next command
// time, not the final completion time. Safe only on the goroutine
// currently running the vault.
func (v *Vault) NextEvent(now int64) int64 {
	best := NoEvent
	for _, e := range v.inflight {
		if len(e.reqs) == 0 {
			if e.completes > now && e.completes < best {
				best = e.completes
			}
			continue
		}
		for _, pg := range e.pgs {
			if t := pg.Ctrl.NextEvent(now); t < best {
				best = t
			}
		}
	}
	for _, r := range v.vsmReady {
		if r > now && r < best {
			best = r
		}
	}
	return best
}

// newEntry pops a recycled issued-queue entry (or allocates one).
func (v *Vault) newEntry() *entry {
	if n := len(v.entryPool); n > 0 {
		e := v.entryPool[n-1]
		v.entryPool = v.entryPool[:n-1]
		return e
	}
	return &entry{}
}

// freeEntry returns an entry (and the requests it still references) to
// the free lists. Only call once the entry has left inflight.
func (v *Vault) freeEntry(e *entry) {
	for _, r := range e.reqs {
		v.reqPool = append(v.reqPool, r)
	}
	e.reqs = e.reqs[:0]
	e.pgs = e.pgs[:0]
	e.defs, e.uses = nil, nil
	e.idx, e.completes, e.extra, e.usesTSV = 0, 0, 0, false
	v.entryPool = append(v.entryPool, e)
}

// newReq pops a recycled DRAM request (or allocates one). The caller
// overwrites every field that matters: Bank/Addr/Write here,
// Arrive/Done/issued in Enqueue, Finish when the controller issues it.
func (v *Vault) newReq(bank int, addr uint32, write bool) *dram.Request {
	if n := len(v.reqPool); n > 0 {
		r := v.reqPool[n-1]
		v.reqPool = v.reqPool[:n-1]
		r.Bank, r.Addr, r.Write = bank, addr, write
		return r
	}
	return &dram.Request{Bank: bank, Addr: addr, Write: write}
}

// fetch models the instruction fetch: a direct-mapped I$ miss refills
// the line from the VSM, bubbling the pipeline.
func (v *Vault) fetch(pc int) {
	if v.icache == nil {
		return
	}
	line := int64(pc / v.Cfg.ICacheLineInstr)
	set := int(line) % len(v.icache)
	if v.icache[set] == line {
		return
	}
	v.icache[set] = line
	v.advanceTo(v.now+int64(v.Cfg.ICacheMissCost), sim.StallIFetch)
}

// PE returns the PE at (pg, pe).
func (v *Vault) PE(pg, pe int) *engine.PE { return v.PGs[pg].PEs[pe] }

// FoldDRAMStats snapshots the per-PG memory controller counters into
// the vault stats. Controllers accumulate across the vault's lifetime,
// so this assignment is idempotent.
func (v *Vault) FoldDRAMStats() {
	var d dram.Stats
	for _, pg := range v.PGs {
		s := pg.Ctrl.Stats
		d.Reads += s.Reads
		d.Writes += s.Writes
		d.Activates += s.Activates
		d.Precharges += s.Precharges
		d.Refreshes += s.Refreshes
		d.RowHits += s.RowHits
		d.RowMisses += s.RowMisses
		d.QueueFullStalls += s.QueueFullStalls
		d.BusyCycles += s.BusyCycles
		d.ECCCorrected += s.ECCCorrected
		d.ECCUncorrected += s.ECCUncorrected
	}
	v.Stats.DRAM = d
}

// SetFaultPlan attaches a fault-injection plan (nil detaches) and
// resets the vault's fault event counters.
func (v *Vault) SetFaultPlan(p *fault.Plan) {
	v.fp = p
	v.FlushTimingMemo()
	v.faultN, v.execN = 0, 0
	v.execSite = 0
	v.bankSites = nil
	if p == nil {
		return
	}
	v.execSite = fault.Site(fault.DomExec, v.CubeID, v.ID)
	v.bankSites = make([][]uint64, len(v.PGs))
	for pgID := range v.PGs {
		sites := make([]uint64, v.Cfg.PEsPerPG)
		for b := range sites {
			sites[b] = fault.Site(fault.DomBank, v.CubeID, v.ID, pgID, b)
		}
		v.bankSites[pgID] = sites
	}
}

// peByIndex returns the PE with vault-wide index i (pg*PEsPerPG + pe)
// and its process group, via the precomputed lookup table.
func (v *Vault) peByIndex(i int) (*engine.PG, *engine.PE) {
	s := v.peList[i]
	return s.pg, s.pe
}

// Load installs a finalized program and resets core state. Timing state
// (DRAM bank state, the clock) is preserved so consecutive kernels model
// a continuously running machine.
func (v *Vault) Load(p *isa.Program) error {
	if err := ValidateForLoad(v.Cfg, p); err != nil {
		return err
	}
	v.prog = p
	v.pc = 0
	v.inflight = v.inflight[:0]
	v.done = false
	// Precompute per-instruction def/use sets so the issue loop's hazard
	// checks are allocation-free (Defs/Uses build fresh slices per call).
	if cap(v.deps) < len(p.Ins) {
		v.deps = make([]instrDeps, len(p.Ins))
	}
	v.deps = v.deps[:len(p.Ins)]
	for i := range p.Ins {
		v.deps[i] = instrDeps{defs: p.Ins[i].Defs(), uses: p.Ins[i].Uses()}
	}
	return nil
}

// Done reports whether the loaded program ran to completion.
func (v *Vault) Done() bool { return v.done }

// Now returns the vault clock in cycles.
func (v *Vault) Now() int64 { return v.now }

// AlignTo advances the vault clock to t cycles (a barrier release),
// charging the wait to sync stall time. The machine calls it on every
// phase participant after a barrier; a t at or before the current clock
// is a no-op.
func (v *Vault) AlignTo(t int64) {
	v.advanceTo(t, sim.StallSync)
}

// InterruptEvery is the instruction interval at which an armed vault
// polls its interrupt hook inside a phase: small enough that even a
// tight two-instruction spin loop is interruptible within microseconds
// of wall clock, large enough that the poll cost vanishes against the
// issue loop.
const InterruptEvery = 1024

// BeginRun arms run control for one machine run: the budget (zero =
// unlimited), the resolved execution mode, and an optional interrupt
// hook polled every InterruptEvery issued instructions. Budgets are
// measured from the vault's current clock — or, in FunctionalMode,
// from an issued-instruction counter standing in for the clock. The
// machine calls this after Load and disarms with EndRun.
func (v *Vault) BeginRun(budget sim.RunOptions, mode sim.Mode, interrupt func() error) {
	v.budget = budget
	v.interrupt = interrupt
	v.runStart = v.now
	v.phaseSteps = 0
	v.sinceCheck = 0
	v.funcIssued = 0
	v.funcMode = mode == sim.FunctionalMode
	v.limited = budget.Enabled() || interrupt != nil
}

// EndRun disarms run control.
func (v *Vault) EndRun() {
	v.budget = sim.RunOptions{}
	v.interrupt = nil
	v.limited = false
	v.funcMode = false
}

// checkRunControl enforces the armed budgets and polls the interrupt
// hook. Called once per issue-loop iteration when limited.
func (v *Vault) checkRunControl() error {
	v.phaseSteps++
	if b := v.budget.MaxPhaseSteps; b > 0 && v.phaseSteps > b {
		v.Stats.Cycles = v.now
		return fmt.Errorf("vault %d/%d: pc=%d: %w: %d instructions in one phase without sync (budget %d)",
			v.CubeID, v.ID, v.pc, sim.ErrCycleBudget, v.phaseSteps-1, b)
	}
	if b := v.budget.MaxCycles; b > 0 && v.now-v.runStart >= b {
		v.Stats.Cycles = v.now
		return fmt.Errorf("vault %d/%d: pc=%d: %w: %d cycles into the run (budget %d)",
			v.CubeID, v.ID, v.pc, sim.ErrCycleBudget, v.now-v.runStart, b)
	}
	if v.interrupt != nil {
		if v.sinceCheck++; v.sinceCheck >= InterruptEvery {
			v.sinceCheck = 0
			if err := v.interrupt(); err != nil {
				v.Stats.Cycles = v.now
				return fmt.Errorf("vault %d/%d: pc=%d: %w", v.CubeID, v.ID, v.pc, err)
			}
		}
	}
	return nil
}

// Abort abandons the in-flight run and returns the vault to a clean,
// reusable idle timing state: issued queue and pending remote traffic
// dropped, clock and TSV timeline rewound to zero, I$ cold, and every
// per-PG DRAM controller timing-reset. Cumulative statistics and fault
// event counters are preserved — counters only accumulate (callers diff
// snapshots), and fault decision streams continue where they left off.
// The one exception is Stats.Cycles: it mirrors the wall clock (Add
// max-folds it rather than summing), so it rewinds with the clock to
// keep post-abort snapshot diffs meaningful.
func (v *Vault) Abort() {
	v.prog = nil
	v.pc = 0
	v.inflight = v.inflight[:0]
	for addr := range v.vsmReady {
		delete(v.vsmReady, addr)
	}
	v.done = true
	v.now = 0
	v.Stats.Cycles = 0
	v.tsvFree = 0
	for i := range v.icache {
		v.icache[i] = -1
	}
	for _, pg := range v.PGs {
		pg.Ctrl.ResetTiming()
	}
	v.FlushTimingMemo()
	v.EndRun()
}

// RunPhase executes instructions until the program ends (done=true) or a
// sync instruction retires (done=false; the machine aligns vaults and
// calls RunPhase again). Dispatch: FunctionalMode phases run through the
// functional interpreter (functional.go); cycle-mode phases go through
// the block timing memoizer when it is usable (memo.go) and the plain
// issue loop otherwise.
func (v *Vault) RunPhase() (bool, error) {
	if v.prog == nil {
		return true, fmt.Errorf("vault: no program loaded")
	}
	v.phaseSteps = 0
	if v.fp.ExecEnabled() {
		// Transient execution fault: one roll per phase, indexed by the
		// vault's own phase counter so the decision is schedule-free.
		n := v.execN
		v.execN++
		if v.fp.ExecFault(v.execSite, n) {
			v.Stats.Cycles = v.now
			return false, fmt.Errorf("vault %d/%d: phase roll %d: %w", v.CubeID, v.ID, n, fault.ErrTransient)
		}
	}
	if v.funcMode {
		return v.runPhaseFunctional()
	}
	if v.memoUsable() {
		return v.memoPhase()
	}
	return v.runPhaseCycle(false)
}

// runPhaseCycle is the cycle-accurate issue loop. With record set, each
// instruction is also shown to the memoizer's recorder before it issues
// (the only difference — the issue path itself is shared verbatim, so
// memoized runs are bit-identical to unmemoized ones on every miss by
// construction).
func (v *Vault) runPhaseCycle(record bool) (bool, error) {
	for {
		if v.pc >= len(v.prog.Ins) {
			v.drain()
			v.done = true
			v.Stats.Cycles = v.now
			return true, nil
		}
		if v.limited {
			if err := v.checkRunControl(); err != nil {
				return false, err
			}
		}
		in := &v.prog.Ins[v.pc]
		if in.Op == isa.OpSync {
			v.drain()
			v.Stats.Issued++
			v.Stats.InstByCategory[isa.CatSync]++
			v.Stats.Syncs++
			v.pc++
			v.now++
			v.Stats.Cycles = v.now
			return false, nil
		}
		if record {
			v.memo.note(v, in)
		}
		if err := v.issue(in); err != nil {
			return false, fmt.Errorf("vault %d/%d: pc=%d %s: %w", v.CubeID, v.ID, v.pc, in.Op, err)
		}
	}
}

// drain waits for the issued queue to empty and all remote responses to
// land, charging the wait to sync stall time.
func (v *Vault) drain() {
	t := v.now
	for _, e := range v.inflight {
		if c := v.resolve(e); c > t {
			t = c
		}
		v.freeEntry(e)
	}
	v.inflight = v.inflight[:0]
	if len(v.vsmReady) > 0 {
		for addr, r := range v.vsmReady {
			if r > t {
				t = r
			}
			delete(v.vsmReady, addr) // consumed by the barrier
		}
	}
	v.advanceTo(t, sim.StallSync)
}

// resolve returns the completion time of an entry, scheduling any
// pending DRAM requests it owns.
func (v *Vault) resolve(e *entry) int64 {
	if len(e.reqs) == 0 {
		return e.completes
	}
	// Drain the involved controllers' queues deterministically.
	for _, pg := range v.PGs {
		if pg.Ctrl.QueueLen() > 0 {
			pg.Ctrl.AdvanceTo(math.MaxInt64 / 2)
		}
	}
	last := int64(0)
	for _, r := range e.reqs {
		if !r.Done {
			panic("vault: request still pending after controller drain")
		}
		done := r.Finish
		if e.usesTSV {
			// PonB: every 128-bit beat crosses the shared TSV bus.
			beat := done + int64(v.Cfg.TPEBus)
			if beat < v.tsvFree {
				beat = v.tsvFree
			}
			v.tsvFree = beat + int64(v.Cfg.TTSV)
			v.Stats.TSVBeats++
			done = beat + int64(v.Cfg.TTSV)
		}
		done += e.extra
		if done > last {
			last = done
		}
	}
	for _, r := range e.reqs {
		v.reqPool = append(v.reqPool, r) // dead: Finish consumed above
	}
	e.reqs = e.reqs[:0]
	e.pgs = e.pgs[:0]
	if last > e.completes {
		e.completes = last
	}
	return e.completes
}

// retire drops finished entries from the issued queue, recycling them.
func (v *Vault) retire() {
	dst := v.inflight[:0]
	for _, e := range v.inflight {
		if len(e.reqs) == 0 && e.completes <= v.now {
			v.freeEntry(e)
			continue
		}
		dst = append(dst, e)
	}
	v.inflight = dst
}

// waitOldest advances the clock to the earliest completion among the
// in-flight instructions, charging the delta to reason.
func (v *Vault) waitOldest(reason sim.StallReason) {
	best := int64(math.MaxInt64)
	for _, e := range v.inflight {
		if c := v.resolve(e); c < best {
			best = c
		}
	}
	if best > v.now {
		v.advanceTo(best, reason)
	} else {
		v.now++ // defensive: guarantee progress
	}
	v.retire()
}

// conflictsWith reports whether issuing an instruction with the given
// defs/uses against in-flight entry e creates a RAW, WAR or WAW hazard.
func conflictsWith(e *entry, defs, uses []isa.RegRef) bool {
	for _, d := range e.defs {
		for _, u := range uses { // RAW
			if d == u {
				return true
			}
		}
		for _, d2 := range defs { // WAW
			if d == d2 {
				return true
			}
		}
	}
	for _, u := range e.uses {
		for _, d2 := range defs { // WAR
			if u == d2 {
				return true
			}
		}
	}
	return false
}

// issue executes one instruction: hazard checks, functional execution,
// completion scheduling, pc update. One issue consumes one cycle.
func (v *Vault) issue(in *isa.Instruction) error {
	issuePC := v.pc
	issueStart := v.now
	var stallSnap [sim.NumStallReasons]int64
	if v.tracer != nil {
		stallSnap = v.Stats.StallCycles
		v.ffIssue = 0
		defer func() {
			var reason sim.StallReason
			var best int64
			for r := sim.StallReason(0); r < sim.NumStallReasons; r++ {
				if d := v.Stats.StallCycles[r] - stallSnap[r]; d > best {
					best, reason = d, r
				}
			}
			stall := v.now - issueStart - 1
			if stall < 0 {
				stall = 0
			}
			v.tracer.record(TraceEntry{
				PC: issuePC, Op: in.Op,
				Issue: v.now, Stall: stall, Reason: reason,
				FastForwarded: v.ffIssue,
			})
		}()
	}
	v.fetch(issuePC)
	v.retire()
	// Issued queue capacity (Table III: 64 entries).
	for len(v.inflight) >= v.Cfg.InstQueue {
		v.waitOldest(sim.StallQueueFull)
	}
	d := &v.deps[issuePC]
	defs, uses := d.defs, d.uses
	// Issue-time dependency check against the Issued Inst Queue: stall
	// with pipeline bubbles until the conflicting instructions retire.
	for {
		wait := int64(-1)
		for _, e := range v.inflight {
			if conflictsWith(e, defs, uses) {
				if c := v.resolve(e); c > wait {
					wait = c
				}
			}
		}
		if wait < 0 {
			break
		}
		v.advanceTo(wait, sim.StallData)
		v.retire()
		break
	}

	mask := in.SimbMask
	nPE := v.Cfg.PEsPerVault()
	cat := isa.CategoryOf(in.Op)
	v.Stats.Issued++
	v.Stats.InstByCategory[cat]++

	completes := v.now + 1 // default single-cycle core-side op
	var pend *entry

	switch in.Op {
	case isa.OpComp:
		lat := int64(v.Cfg.LatencyOf(classOf(in.ALU)))
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			pe.Comp(in)
			v.Stats.SIMDOps++
			v.Stats.DataRFAcc += 3
			if in.ALU.ReadsDst() {
				v.Stats.DataRFAcc++
			}
		}
		completes = v.now + lat

	case isa.OpCalcARF:
		lat := int64(v.Cfg.LatencyOf(classOf(in.ALU)))
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			pe.CalcARF(in)
			v.Stats.IntALUOps++
			v.Stats.AddrRFAcc += 3
		}
		completes = v.now + lat

	case isa.OpLdRF, isa.OpStRF, isa.OpLdPGSM, isa.OpStPGSM:
		var err error
		pend, err = v.issueBank(in, mask, nPE)
		if err != nil {
			return err
		}

	case isa.OpRdPGSM, isa.OpWrPGSM:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			pg, pe := v.peByIndex(i)
			addr := pe.EffectiveAddr(in.Addr, in.Indirect)
			var err error
			if in.Op == isa.OpRdPGSM {
				err = pg.VectorFromPGSM(pe, addr, in.Dst, in.VecMask)
			} else {
				err = pg.VectorToPGSM(pe, addr, in.Dst, in.VecMask)
			}
			if err != nil {
				return err
			}
			v.Stats.PGSMAcc++
			v.Stats.DataRFAcc++
		}
		completes = v.now + int64(v.Cfg.TPGSM+v.Cfg.TDataRF)

	case isa.OpRdVSM, isa.OpWrVSM:
		last := v.now + 1
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			addr := pe.EffectiveAddr(in.Addr, in.Indirect)
			if int(addr)+4*highLane(in.VecMask)+4 > len(v.VSM) {
				return fmt.Errorf("VSM access at %#x beyond %d bytes", addr, len(v.VSM))
			}
			start := v.now + 1
			// A read of data a req is fetching waits for its arrival.
			if in.Op == isa.OpRdVSM {
				if r, ok := v.vsmReady[addr]; ok && r > start {
					start = r
				}
			}
			beat := start
			if beat < v.tsvFree {
				beat = v.tsvFree
			}
			v.tsvFree = beat + int64(v.Cfg.TTSV)
			end := beat + int64(v.Cfg.TTSV+v.Cfg.TVSM+v.Cfg.TDataRF)
			if end > last {
				last = end
			}
			if in.Op == isa.OpRdVSM {
				copyVSMToVector(v.VSM, addr, pe, in.Dst, in.VecMask)
			} else {
				copyVectorToVSM(pe, in.Dst, v.VSM, addr, in.VecMask)
			}
			v.Stats.VSMAcc++
			v.Stats.TSVBeats++
			v.Stats.DataRFAcc++
		}
		completes = last

	case isa.OpMovDRF:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			pe.MovToDRF(in.Dst, in.Src1, in.Lane)
			v.Stats.AddrRFAcc++
			v.Stats.DataRFAcc++
		}
		completes = v.now + int64(v.Cfg.TAddrRF+v.Cfg.TDataRF)

	case isa.OpMovARF:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			pe.MovToARF(in.Dst, in.Src1, in.Lane)
			v.Stats.AddrRFAcc++
			v.Stats.DataRFAcc++
		}
		completes = v.now + int64(v.Cfg.TAddrRF+v.Cfg.TDataRF)

	case isa.OpReset:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			pe.Reset(in.Dst)
			v.Stats.DataRFAcc++
		}
		completes = v.now + int64(v.Cfg.TDataRF)

	case isa.OpSetiVSM:
		if int(in.Addr)+4 > len(v.VSM) {
			return fmt.Errorf("seti_vsm at %#x beyond %d bytes", in.Addr, len(v.VSM))
		}
		putU32(v.VSM, in.Addr, uint32(int32(in.Imm)))
		v.Stats.VSMAcc++
		completes = v.now + int64(v.Cfg.TVSM)

	case isa.OpReq:
		if v.remote == nil {
			return fmt.Errorf("req issued but no remote fabric attached")
		}
		data, err := v.remote.RemoteRead(in.DstChip, in.DstVault, in.DstPG, in.DstPE, in.Addr)
		if err != nil {
			return err
		}
		if int(in.Addr2)+len(data) > len(v.VSM) {
			return fmt.Errorf("req response at VSM %#x beyond %d bytes", in.Addr2, len(v.VSM))
		}
		copy(v.VSM[in.Addr2:], data)
		arrive := v.remote.RemoteRoundTrip(v.now+1, v.CubeID, v.ID, in.DstChip, in.DstVault)
		if cur, ok := v.vsmReady[in.Addr2]; !ok || arrive > cur {
			v.vsmReady[in.Addr2] = arrive
		}
		v.Stats.RemoteReqs++
		v.Stats.VSMAcc++

	case isa.OpCalcCRF:
		a := v.CRF[in.Src1]
		b := int32(in.Imm)
		if !in.HasImm {
			b = v.CRF[in.Src2]
		}
		v.CRF[in.Dst] = isa.EvalI(in.ALU, a, b, v.CRF[in.Dst])

	case isa.OpSetiCRF:
		v.CRF[in.Dst] = int32(in.Imm)

	case isa.OpJump, isa.OpCJump:
		taken := true
		if in.Op == isa.OpCJump {
			taken = v.CRF[in.Cond] != 0
		}
		if taken {
			tgt := int(v.CRF[in.Src1])
			if tgt < 0 || tgt > len(v.prog.Ins) {
				return fmt.Errorf("jump target %d outside program of %d instructions", tgt, len(v.prog.Ins))
			}
			v.pc = tgt
			v.now++
			v.advanceTo(v.now+int64(v.Cfg.BranchPenalty), sim.StallBranch)
			return nil
		}

	default:
		return fmt.Errorf("unhandled opcode %v", in.Op)
	}

	// Multi-cycle instructions occupy the issued queue until they
	// complete; bank instructions until their DRAM requests finish.
	if pend != nil {
		pend.idx = v.pc
		pend.defs, pend.uses = defs, uses
		v.inflight = append(v.inflight, pend)
	} else if completes > v.now+1 {
		e := v.newEntry()
		e.idx, e.defs, e.uses, e.completes = v.pc, defs, uses, completes
		v.inflight = append(v.inflight, e)
	}
	v.pc++
	v.now++
	return nil
}

// issueBank executes a bank-accessing instruction: functional transfer
// at issue, one DRAM request per masked PE, back-pressure on the PG
// request queues.
func (v *Vault) issueBank(in *isa.Instruction, mask uint64, nPE int) (*entry, error) {
	e := v.newEntry()
	e.extra, e.usesTSV, e.completes = int64(v.Cfg.TPEBus), v.Cfg.PonB, v.now+1
	switch in.Op {
	case isa.OpLdRF, isa.OpStRF:
		e.extra += int64(v.Cfg.TDataRF)
	default:
		e.extra += int64(v.Cfg.TPGSM)
	}
	for i := 0; i < nPE; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pg, pe := v.peByIndex(i)
		bankAddr := pe.EffectiveAddr(in.Addr, in.Indirect)
		// Byte span touched, from the vector mask.
		spanLo := bankAddr + uint32(4*lowLane(in.VecMask))
		spanHi := bankAddr + uint32(4*highLane(in.VecMask)) + 4
		var err error
		var pgsmAddr uint32
		switch in.Op {
		case isa.OpLdRF:
			err = pe.LoadVector(bankAddr, in.Dst, in.VecMask)
			v.Stats.DataRFAcc++
		case isa.OpStRF:
			err = pe.StoreVector(bankAddr, in.Dst, in.VecMask)
			v.Stats.DataRFAcc++
		case isa.OpLdPGSM:
			pgsmAddr = pe.EffectiveAddr(in.Addr2, in.Indirect2)
			var b []byte
			if b, err = pe.ReadBank(bankAddr, dram.AccessBytes); err == nil {
				err = pg.WritePGSM(pgsmAddr, b)
			}
			spanLo, spanHi = bankAddr, bankAddr+dram.AccessBytes
			v.Stats.PGSMAcc++
		case isa.OpStPGSM:
			pgsmAddr = pe.EffectiveAddr(in.Addr2, in.Indirect2)
			var b []byte
			if b, err = pg.ReadPGSM(pgsmAddr, dram.AccessBytes); err == nil {
				err = pe.WriteBank(bankAddr, b)
			}
			spanLo, spanHi = bankAddr, bankAddr+dram.AccessBytes
			v.Stats.PGSMAcc++
		}
		if err != nil {
			// Deliberately not recycled: earlier iterations may have
			// enqueued requests the controller still references, and the
			// error aborts the run anyway.
			return nil, err
		}
		// Requests that completed by now free their queue slots before
		// back-pressure is assessed.
		pg.Ctrl.AdvanceTo(v.now)
		// One column request per 128-bit column the span touches: an
		// unaligned vector access costs two column accesses.
		for col := spanLo &^ (dram.AccessBytes - 1); col < spanHi; col += dram.AccessBytes {
			req := v.newReq(pe.Index%v.Cfg.PEsPerPG, col, in.Op.IsBankStore())
			// DRAM request queue back-pressure stalls the pipeline
			// (paper Sec. V-C, memory order enforcement rationale).
			for !pg.Ctrl.Enqueue(v.now, req) {
				next := pg.Ctrl.NextEvent(v.now)
				if next <= v.now {
					next = v.now + 1
				}
				v.advanceTo(next, sim.StallDRAMQueue)
				pg.Ctrl.AdvanceTo(v.now)
			}
			e.reqs = append(e.reqs, req)
			e.pgs = append(e.pgs, pg)
			v.Stats.PEBusBeats++
			if v.fp != nil && v.fp.DRAMBitFlipRate > 0 && !req.Write {
				v.injectReadFault(in, pg, pe, req.Bank, bankAddr, col, pgsmAddr)
			}
		}
	}
	if len(e.reqs) == 0 {
		// Empty mask: nothing to wait for.
		v.freeEntry(e)
		return nil, nil
	}
	return e, nil
}

// injectReadFault rolls the fault plan for one 128-bit column read and
// applies the SECDED outcome: a single-bit event is corrected (counter
// only, data intact); a multi-bit event is detected-uncorrectable and
// corrupts the read *destination* — the DataRF lane or PGSM byte that
// consumed the flipped bit. The bank backing store is never mutated:
// other vaults may be snapshot-reading it concurrently, and in-place
// corruption would make results depend on the phase schedule.
func (v *Vault) injectReadFault(in *isa.Instruction, pg *engine.PG, pe *engine.PE, bank int, bankAddr, col, pgsmAddr uint32) {
	n := v.faultN
	v.faultN++
	bf := v.fp.BankRead(v.bankSites[pg.ID][bank], n)
	if !bf.Injected {
		return
	}
	pg.Ctrl.NoteECC(bank, bf.Corrected)
	if bf.Corrected {
		return
	}
	for _, bit := range bf.Bits {
		// Byte offset of the flipped bit relative to the access origin.
		off := int64(col) + int64(bit/8) - int64(bankAddr)
		if off < 0 || off >= dram.AccessBytes {
			continue // column byte outside the consumed span
		}
		switch in.Op {
		case isa.OpLdRF:
			lane := int(off / 4)
			if in.VecMask&(1<<uint(lane)) == 0 {
				continue // unselected lane: the bits never reach the RF
			}
			pe.FlipDataRFBit(in.Dst, lane, uint(off%4)*8+uint(bit%8))
		case isa.OpLdPGSM:
			// WritePGSM validated [pgsmAddr, pgsmAddr+16) above, so the
			// flip cannot go out of bounds.
			_ = pg.FlipPGSMBit(pgsmAddr+uint32(off), uint(bit%8))
		}
	}
}

// classOf maps an ALU op to its Table III latency class.
func classOf(op isa.ALUOp) sim.ALUClass {
	switch op {
	case isa.FAdd, isa.FSub, isa.IAdd, isa.ISub, isa.FMin, isa.FMax,
		isa.IMin, isa.IMax, isa.FCmpLT, isa.FCmpLE, isa.ICmpLT, isa.ICmpEQ,
		isa.FAbs, isa.FFloor:
		return sim.ClassAdd
	case isa.FMul, isa.IMul, isa.FDiv:
		return sim.ClassMul
	case isa.FMac, isa.IMac:
		return sim.ClassMac
	default:
		return sim.ClassLogic
	}
}

func putU32(b []byte, addr uint32, v uint32) {
	b[addr] = byte(v)
	b[addr+1] = byte(v >> 8)
	b[addr+2] = byte(v >> 16)
	b[addr+3] = byte(v >> 24)
}

func getU32(b []byte, addr uint32) uint32 {
	return uint32(b[addr]) | uint32(b[addr+1])<<8 | uint32(b[addr+2])<<16 | uint32(b[addr+3])<<24
}

func copyVSMToVector(vsm []byte, addr uint32, pe *engine.PE, reg int, vmask uint8) {
	for l := 0; l < isa.VecLanes; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		pe.DataRF[reg][l] = getU32(vsm, addr+uint32(4*l))
	}
}

func copyVectorToVSM(pe *engine.PE, reg int, vsm []byte, addr uint32, vmask uint8) {
	for l := 0; l < isa.VecLanes; l++ {
		if vmask&(1<<uint(l)) == 0 {
			continue
		}
		putU32(vsm, addr+uint32(4*l), pe.DataRF[reg][l])
	}
}

// highLane returns the highest lane index selected by a vector mask
// (0 when the mask is empty).
func highLane(vmask uint8) int {
	for l := isa.VecLanes - 1; l > 0; l-- {
		if vmask&(1<<uint(l)) != 0 {
			return l
		}
	}
	return 0
}

// lowLane returns the lowest selected lane index (0 when empty).
func lowLane(vmask uint8) int {
	for l := 0; l < isa.VecLanes-1; l++ {
		if vmask&(1<<uint(l)) != 0 {
			return l
		}
	}
	return isa.VecLanes - 1
}
