package vault

import (
	"fmt"
	"sort"
	"strings"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// TraceEntry records one issued instruction for offline analysis. All
// time fields are in simulated vault cycles.
type TraceEntry struct {
	PC    int        // program counter of the instruction
	Op    isa.Opcode // opcode, for aggregation without the program
	Issue int64      // cycle the instruction issued
	Stall int64      // issue-stall cycles attributed to this instruction
	// Reason classifies the stall (meaningful when Stall > 0).
	Reason sim.StallReason
	// FastForwarded counts how many of the Stall cycles the clock
	// crossed in event jumps rather than simulating one by one. It is a
	// subset of Stall, never an extra charge: Stall is identical whether
	// fast-forward is enabled or not, and FastForwarded is zero in
	// stepwise mode. Reporting it separately keeps skipped idle spans
	// from being silently folded into the dominant stall reason.
	FastForwarded int64
}

// Tracer collects per-instruction issue records. Attach one to a vault
// with SetTracer before running; Max bounds memory (0 = 1M entries).
// The zero value is ready to use. A Tracer must only be attached to one
// vault at a time: record is called from the vault's issue loop, which
// may run on a different goroutine each phase but never concurrently.
type Tracer struct {
	Entries []TraceEntry // recorded issues, in issue order
	Max     int          // record cap (0 = 1M); excess counted, not kept
	dropped int64
}

func (tr *Tracer) record(e TraceEntry) {
	max := tr.Max
	if max == 0 {
		max = 1 << 20
	}
	if len(tr.Entries) >= max {
		tr.dropped++
		return
	}
	tr.Entries = append(tr.Entries, e)
}

// Dropped reports how many records were discarded at the Max bound.
func (tr *Tracer) Dropped() int64 { return tr.dropped }

// SetTracer attaches a tracer to the vault (nil detaches). Not safe to
// call during an active run.
func (v *Vault) SetTracer(tr *Tracer) { v.tracer = tr }

// StallSite aggregates stall cycles at one program counter. All cycle
// fields are simulated vault cycles; FastForwarded is the portion of
// Stall crossed in event jumps (see TraceEntry.FastForwarded).
type StallSite struct {
	PC            int             // program counter of the site
	Op            isa.Opcode      // opcode at the site
	Count         int64           // times the instruction issued
	Stall         int64           // total stall cycles charged here
	FastForwarded int64           // portion of Stall crossed in jumps
	Reason        sim.StallReason // dominant reason of the last stalled issue
}

// TopStallSites returns the n program locations losing the most cycles.
func (tr *Tracer) TopStallSites(n int) []StallSite {
	agg := map[int]*StallSite{}
	for _, e := range tr.Entries {
		s, ok := agg[e.PC]
		if !ok {
			s = &StallSite{PC: e.PC, Op: e.Op, Reason: e.Reason}
			agg[e.PC] = s
		}
		s.Count++
		s.Stall += e.Stall
		s.FastForwarded += e.FastForwarded
		if e.Stall > 0 {
			s.Reason = e.Reason
		}
	}
	sites := make([]StallSite, 0, len(agg))
	for _, s := range agg {
		sites = append(sites, *s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Stall > sites[j].Stall })
	if len(sites) > n {
		sites = sites[:n]
	}
	return sites
}

// StallByOpcode aggregates stall cycles per opcode.
func (tr *Tracer) StallByOpcode() map[isa.Opcode]int64 {
	agg := map[isa.Opcode]int64{}
	for _, e := range tr.Entries {
		agg[e.Op] += e.Stall
	}
	return agg
}

// FastForwardedCycles totals the traced cycles the clock crossed in
// event jumps, across all recorded entries.
func (tr *Tracer) FastForwardedCycles() int64 {
	var ff int64
	for _, e := range tr.Entries {
		ff += e.FastForwarded
	}
	return ff
}

// Summary renders a human-readable trace digest against the program.
func (tr *Tracer) Summary(p *isa.Program, topN int) string {
	var b strings.Builder
	var total, stall, ff int64
	for _, e := range tr.Entries {
		total++
		stall += e.Stall
		ff += e.FastForwarded
	}
	fmt.Fprintf(&b, "traced %d issues, %d stall cycles", total, stall)
	if ff > 0 {
		fmt.Fprintf(&b, " (%d fast-forwarded)", ff)
	}
	if tr.dropped > 0 {
		fmt.Fprintf(&b, " (%d records dropped)", tr.dropped)
	}
	b.WriteByte('\n')
	byOp := tr.StallByOpcode()
	type kv struct {
		op isa.Opcode
		st int64
	}
	var ops []kv
	for op, st := range byOp {
		ops = append(ops, kv{op, st})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].st > ops[j].st })
	b.WriteString("stall cycles by opcode:\n")
	for i, o := range ops {
		if i >= topN || o.st == 0 {
			break
		}
		fmt.Fprintf(&b, "  %-10s %12d\n", o.op, o.st)
	}
	b.WriteString("hottest stall sites:\n")
	for _, s := range tr.TopStallSites(topN) {
		if s.Stall == 0 {
			break
		}
		text := s.Op.String()
		if p != nil && s.PC < len(p.Ins) {
			text = isa.FormatInstruction(&p.Ins[s.PC])
		}
		extra := ""
		if s.FastForwarded > 0 {
			extra = fmt.Sprintf("  (ff %d)", s.FastForwarded)
		}
		fmt.Fprintf(&b, "  pc=%-6d %-12s x%-8d %10d cycles%s  %s\n",
			s.PC, s.Reason, s.Count, s.Stall, extra, text)
	}
	return b.String()
}
