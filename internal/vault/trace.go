package vault

import (
	"fmt"
	"sort"
	"strings"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// TraceEntry records one issued instruction for offline analysis.
type TraceEntry struct {
	PC    int
	Op    isa.Opcode
	Issue int64 // cycle the instruction issued
	Stall int64 // issue-stall cycles attributed to this instruction
	// Reason classifies the stall (meaningful when Stall > 0).
	Reason sim.StallReason
}

// Tracer collects per-instruction issue records. Attach one to a vault
// with SetTracer before running; Max bounds memory (0 = 1M entries).
type Tracer struct {
	Entries []TraceEntry
	Max     int
	dropped int64
}

func (tr *Tracer) record(e TraceEntry) {
	max := tr.Max
	if max == 0 {
		max = 1 << 20
	}
	if len(tr.Entries) >= max {
		tr.dropped++
		return
	}
	tr.Entries = append(tr.Entries, e)
}

// Dropped reports how many records were discarded at the Max bound.
func (tr *Tracer) Dropped() int64 { return tr.dropped }

// SetTracer attaches a tracer to the vault (nil detaches).
func (v *Vault) SetTracer(tr *Tracer) { v.tracer = tr }

// StallByPC aggregates stall cycles per program counter, descending.
type StallSite struct {
	PC     int
	Op     isa.Opcode
	Count  int64
	Stall  int64
	Reason sim.StallReason
}

// TopStallSites returns the n program locations losing the most cycles.
func (tr *Tracer) TopStallSites(n int) []StallSite {
	agg := map[int]*StallSite{}
	for _, e := range tr.Entries {
		s, ok := agg[e.PC]
		if !ok {
			s = &StallSite{PC: e.PC, Op: e.Op, Reason: e.Reason}
			agg[e.PC] = s
		}
		s.Count++
		s.Stall += e.Stall
		if e.Stall > 0 {
			s.Reason = e.Reason
		}
	}
	sites := make([]StallSite, 0, len(agg))
	for _, s := range agg {
		sites = append(sites, *s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Stall > sites[j].Stall })
	if len(sites) > n {
		sites = sites[:n]
	}
	return sites
}

// StallByOpcode aggregates stall cycles per opcode.
func (tr *Tracer) StallByOpcode() map[isa.Opcode]int64 {
	agg := map[isa.Opcode]int64{}
	for _, e := range tr.Entries {
		agg[e.Op] += e.Stall
	}
	return agg
}

// Summary renders a human-readable trace digest against the program.
func (tr *Tracer) Summary(p *isa.Program, topN int) string {
	var b strings.Builder
	var total, stall int64
	for _, e := range tr.Entries {
		total++
		stall += e.Stall
	}
	fmt.Fprintf(&b, "traced %d issues, %d stall cycles", total, stall)
	if tr.dropped > 0 {
		fmt.Fprintf(&b, " (%d records dropped)", tr.dropped)
	}
	b.WriteByte('\n')
	byOp := tr.StallByOpcode()
	type kv struct {
		op isa.Opcode
		st int64
	}
	var ops []kv
	for op, st := range byOp {
		ops = append(ops, kv{op, st})
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].st > ops[j].st })
	b.WriteString("stall cycles by opcode:\n")
	for i, o := range ops {
		if i >= topN || o.st == 0 {
			break
		}
		fmt.Fprintf(&b, "  %-10s %12d\n", o.op, o.st)
	}
	b.WriteString("hottest stall sites:\n")
	for _, s := range tr.TopStallSites(topN) {
		if s.Stall == 0 {
			break
		}
		text := s.Op.String()
		if p != nil && s.PC < len(p.Ins) {
			text = isa.FormatInstruction(&p.Ins[s.PC])
		}
		fmt.Fprintf(&b, "  pc=%-6d %-12s x%-8d %10d cycles  %s\n",
			s.PC, s.Reason, s.Count, s.Stall, text)
	}
	return b.String()
}
