package vault

import (
	"fmt"

	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Block-level timing memoizer (cycle mode). The unit of caching is one
// barrier phase — the run of instructions from a phase-entry pc to the
// next sync or end of program, which is exactly a basic block at the
// granularity the machine schedules (control flow inside a phase is
// resolved by the CRF, which is part of the key). The insight from the
// ROADMAP: a block entered with the same architectural and
// bank-scheduling state costs the same cycles, so its timing can be
// replayed instead of re-simulated.
//
// Key = exact state comparison, not a digest: (program identity, entry
// pc) indexes the cache, and a candidate block matches only if the
// entry CRF, every PE's AddrRF, the I$ tags, and each bank-touching
// PG's canonical DRAM timing snapshot (dram.TimingSnapshot, rebased to
// the vault clock) are all equal, with DRAM refresh matched under the
// windowing rule below. Exact comparison removes any hash-collision
// soundness risk: a hit *proves* the recorded run started from an
// equivalent state.
//
// Miss path: the ordinary cycle-mode issue loop runs unchanged (so
// memoized runs are bit-identical to stepwise by construction on every
// miss), while a recorder notes two things per instruction: opcodes
// that disqualify the block from caching, and which PGs see bank
// traffic. Disqualifiers are req (it touches the vault's NoC port
// shard and vsmReady, neither of which is in the key) and mov_arf (it
// makes future addresses depend on DataRF contents, which are not in
// the key).
//
// Hit path: the block is re-executed *functionally* (execFunc — real
// data movement, real branch evaluation, real pc updates), then the
// recorded timing is applied wholesale: clock delta, per-counter stats
// delta, exit I$ tags, exit canonical controller snapshots and
// controller-counter deltas for the touched PGs, and the fast-forward
// diagnostic delta. Untouched PGs are never consulted by the cycle
// loop for an empty queue, so they need neither keying nor restoring.
//
// Refresh windowing: requiring the refresh epoch to line up exactly
// would make every block miss (tREFI-relative phase almost never
// repeats). Instead, a block recorded with zero refreshes and no live
// blackout matches any entry state whose next refresh boundary lies
// beyond the block's recorded duration — every time comparison the
// block can make stays strictly below the boundary, so the epoch is
// provably untouched and is left alone on replay. Blocks that did
// refresh (or were recorded under a live blackout) fall back to exact
// relative epoch equality and restore the recorded exit epoch.
//
// The memoizer arms only when the reference semantics are in force and
// nothing excluded from the key is live: fast-forward on (stepwise is
// the reference mode the differential tests compare against), no
// tracer, no fault plan, no cycle budgets, and empty in-flight/remote
// state at the phase boundary. Everything is vault-owned, so the cache
// is schedule-independent and race-free by the same argument as the
// rest of the vault.

// memoKey addresses one cache bucket: program identity and entry pc.
type memoKey struct {
	prog *isa.Program
	pc   int
}

// memoBlock is one recorded phase: the entry state that must match and
// the timing effects to apply on a hit.
type memoBlock struct {
	// Entry state (exact copies; key comparison).
	crf     []int32
	arf     [][]int32             // per vault-wide PE index
	itags   []int64               // I$ tags (nil when the config has no I$)
	touched []int                 // PG ids with bank traffic, ascending
	entry   []dram.TimingSnapshot // canonical entry state per touched PG

	// Recorded effects.
	dNow       int64                 // clock advance across the block
	statsDelta sim.Stats             // vault counter delta (plain fold)
	ffDelta    int64                 // fast-forward diagnostic delta
	ctrlStats  []dram.Stats          // controller counter delta per touched PG
	exit       []dram.TimingSnapshot // canonical exit state per touched PG
	itagsExit  []int64
	exitPC     int
	exitDone   bool
}

// Cache bounds: per-entry-pc candidate list and a global block cap
// (beyond it the whole cache flushes — phases are large, so a full
// cache means the workload does not repeat and caching it is moot).
const (
	memoMaxPerKey = 4
	memoMaxBlocks = 256
)

// timingMemo is one vault's block cache plus recording scratch state.
type timingMemo struct {
	blocks map[memoKey][]*memoBlock
	size   int

	hits, misses int64

	// Recording scratch (reused across phases; active between
	// beginRecord and commit on the miss path).
	recPC        int
	recCRF       []int32
	recARF       [][]int32
	recITags     []int64
	recNow       int64
	recFF        int64
	recStats     sim.Stats
	recCtrl      []dram.TimingSnapshot // per PG (all PGs)
	recCtrlStats []dram.Stats          // per PG (all PGs)
	recTouched   []bool                // per PG
	disqualified bool

	// Lookup scratch: current canonical snapshot per PG, captured
	// lazily per lookup (capValid marks which are fresh this lookup).
	capSnap  []dram.TimingSnapshot
	capValid []bool
	// restoreRefresh[i] tells replay whether touched PG i's refresh
	// epoch must be restored from the exit snapshot (exact-match
	// regime) or left alone (no-refresh-window regime).
	restoreRefresh []bool
}

// memoUsable reports whether this phase may consult the block cache:
// memoizer on, reference-mode features quiescent, and no timing state
// outside the key live at the phase boundary.
func (v *Vault) memoUsable() bool {
	return v.memo != nil && !v.memoOff && !v.stepwise && v.tracer == nil &&
		v.fp == nil && !v.budget.Enabled() &&
		len(v.inflight) == 0 && len(v.vsmReady) == 0
}

// SetTimingMemo enables (the default) or disables the block timing
// memoizer for this vault; disabling flushes the cache. Disabled, every
// phase re-simulates through the full timing model — the semantics the
// memoizer is differentially tested against. Stats are bit-identical
// either way. Not safe to call during an active run.
func (v *Vault) SetTimingMemo(on bool) {
	v.memoOff = !on
	if !on {
		v.FlushTimingMemo()
	}
}

// FlushTimingMemo drops every cached block (hit/miss counters are
// preserved). The vault flushes itself on Abort, fault-plan changes and
// DRAM policy changes; the machine exposes this for tests and for any
// out-of-band mutation of timing-relevant state.
func (v *Vault) FlushTimingMemo() {
	if v.memo == nil {
		return
	}
	v.memo.blocks = nil
	v.memo.size = 0
}

// TimingMemoStats reports the memoizer's lifetime hit and miss counts
// (host-side diagnostics, not part of sim.Stats).
func (v *Vault) TimingMemoStats() (hits, misses int64) {
	if v.memo == nil {
		return 0, 0
	}
	return v.memo.hits, v.memo.misses
}

// memoPhase runs one phase through the memoizer: replay on a key match,
// otherwise record around the ordinary cycle loop. Only called when
// memoUsable.
func (v *Vault) memoPhase() (bool, error) {
	mm := v.memo
	if blk := mm.lookup(v); blk != nil {
		mm.hits++
		return v.replayBlock(blk, mm.restoreRefresh)
	}
	mm.misses++
	mm.beginRecord(v)
	done, err := v.runPhaseCycle(true)
	if err == nil {
		mm.commit(v, done)
	}
	return done, err
}

// lookup scans the candidate blocks for the current (prog, pc) and
// returns the first whose entry state matches the vault's, filling
// mm.restoreRefresh for the touched PGs. Nil means miss.
func (mm *timingMemo) lookup(v *Vault) *memoBlock {
	if mm.blocks == nil {
		return nil
	}
	cands := mm.blocks[memoKey{v.prog, v.pc}]
	if len(cands) == 0 {
		return nil
	}
	// Lazily capture current canonical controller state, once per PG
	// across all candidates.
	if cap(mm.capSnap) < len(v.PGs) {
		mm.capSnap = make([]dram.TimingSnapshot, len(v.PGs))
		mm.capValid = make([]bool, len(v.PGs))
	}
	mm.capSnap = mm.capSnap[:len(v.PGs)]
	mm.capValid = mm.capValid[:len(v.PGs)]
	for i := range mm.capValid {
		mm.capValid[i] = false
	}
next:
	for _, blk := range cands {
		if !eqI32(blk.crf, v.CRF) || !eqI64(blk.itags, v.icache) {
			continue
		}
		for i, slot := range v.peList {
			if !eqI32(blk.arf[i], slot.pe.AddrRF) {
				continue next
			}
		}
		mm.restoreRefresh = mm.restoreRefresh[:0]
		for i, pgID := range blk.touched {
			if !mm.capValid[pgID] {
				v.PGs[pgID].Ctrl.CaptureTiming(v.now, &mm.capSnap[pgID])
				mm.capValid[pgID] = true
			}
			cur := &mm.capSnap[pgID]
			ent := &blk.entry[i]
			if !cur.CoreEqual(ent) {
				continue next
			}
			nrCur, ruCur := cur.RefreshRel()
			nrEnt, ruEnt := ent.RefreshRel()
			switch {
			case blk.ctrlStats[i].Refreshes == 0 && ruEnt <= 0 && ruCur <= 0 && nrCur > blk.dNow:
				// No-refresh window: every time the block compares
				// against the boundary is <= entry+dNow < nextRefresh,
				// so the epoch is untouched in both runs.
				mm.restoreRefresh = append(mm.restoreRefresh, false)
			case nrCur == nrEnt && ruCur == ruEnt:
				// Exact epoch match: the replayed run would evolve the
				// epoch exactly as recorded; restore the recorded exit.
				mm.restoreRefresh = append(mm.restoreRefresh, true)
			default:
				continue next
			}
		}
		return blk
	}
	return nil
}

// replayBlock re-executes the block functionally and applies the
// recorded timing: the definition of a memo hit.
func (v *Vault) replayBlock(blk *memoBlock, restoreRefresh []bool) (bool, error) {
	base := v.now
	for {
		if v.pc >= len(v.prog.Ins) {
			v.done = true
			break
		}
		in := &v.prog.Ins[v.pc]
		if in.Op == isa.OpSync {
			v.pc++
			break
		}
		if v.interrupt != nil {
			if v.sinceCheck++; v.sinceCheck >= InterruptEvery {
				v.sinceCheck = 0
				if err := v.interrupt(); err != nil {
					v.Stats.Cycles = v.now
					return false, fmt.Errorf("vault %d/%d: pc=%d: %w", v.CubeID, v.ID, v.pc, err)
				}
			}
		}
		if err := v.execFunc(in); err != nil {
			return false, fmt.Errorf("vault %d/%d: pc=%d %s: %w", v.CubeID, v.ID, v.pc, in.Op, err)
		}
	}
	if v.pc != blk.exitPC || v.done != blk.exitDone {
		// Unreachable if the key comparison is sound; fail loudly
		// rather than corrupt timing.
		return false, fmt.Errorf("vault %d/%d: timing memo replay diverged: pc=%d done=%v, recorded pc=%d done=%v",
			v.CubeID, v.ID, v.pc, v.done, blk.exitPC, blk.exitDone)
	}
	v.now = base + blk.dNow
	v.Stats.AddCounters(&blk.statsDelta)
	v.Stats.Cycles = v.now
	v.ffSkipped += blk.ffDelta
	copy(v.icache, blk.itagsExit)
	for i, pgID := range blk.touched {
		ctrl := v.PGs[pgID].Ctrl
		ctrl.RestoreTiming(&blk.exit[i], v.now, restoreRefresh[i])
		ctrl.Stats.Add(blk.ctrlStats[i])
	}
	return blk.exitDone, nil
}

// beginRecord snapshots the entry state before a miss runs the cycle
// loop. All PGs are snapshotted (the touched set is unknown until the
// block retires); scratch slices are reused so steady-state recording
// of already-cached-but-evicted phases does not allocate.
func (mm *timingMemo) beginRecord(v *Vault) {
	mm.recPC = v.pc
	mm.recCRF = append(mm.recCRF[:0], v.CRF...)
	if cap(mm.recARF) < len(v.peList) {
		mm.recARF = make([][]int32, len(v.peList))
	}
	mm.recARF = mm.recARF[:len(v.peList)]
	for i, slot := range v.peList {
		mm.recARF[i] = append(mm.recARF[i][:0], slot.pe.AddrRF...)
	}
	mm.recITags = append(mm.recITags[:0], v.icache...)
	mm.recNow = v.now
	mm.recFF = v.ffSkipped
	mm.recStats = v.Stats
	if cap(mm.recCtrl) < len(v.PGs) {
		mm.recCtrl = make([]dram.TimingSnapshot, len(v.PGs))
		mm.recCtrlStats = make([]dram.Stats, len(v.PGs))
		mm.recTouched = make([]bool, len(v.PGs))
	}
	mm.recCtrl = mm.recCtrl[:len(v.PGs)]
	mm.recCtrlStats = mm.recCtrlStats[:len(v.PGs)]
	mm.recTouched = mm.recTouched[:len(v.PGs)]
	for pg := range v.PGs {
		v.PGs[pg].Ctrl.CaptureTiming(v.now, &mm.recCtrl[pg])
		mm.recCtrlStats[pg] = v.PGs[pg].Ctrl.Stats
		mm.recTouched[pg] = false
	}
	mm.disqualified = false
}

// note observes one instruction on the recording path: disqualifying
// opcodes and the touched-PG set (from the SIMB mask of bank ops).
func (mm *timingMemo) note(v *Vault, in *isa.Instruction) {
	switch in.Op {
	case isa.OpReq, isa.OpMovARF:
		mm.disqualified = true
	case isa.OpLdRF, isa.OpStRF, isa.OpLdPGSM, isa.OpStPGSM:
		mask := in.SimbMask
		for i := 0; i < v.Cfg.PEsPerVault(); i++ {
			if mask&(1<<uint(i)) != 0 {
				mm.recTouched[i/v.Cfg.PEsPerPG] = true
			}
		}
	}
}

// commit stores the just-recorded phase as a memo block (unless a
// disqualifying instruction ran).
func (mm *timingMemo) commit(v *Vault, done bool) {
	if mm.disqualified {
		return
	}
	if mm.size >= memoMaxBlocks {
		mm.blocks = nil
		mm.size = 0
	}
	if mm.blocks == nil {
		mm.blocks = make(map[memoKey][]*memoBlock)
	}
	blk := &memoBlock{
		crf:       append([]int32(nil), mm.recCRF...),
		arf:       make([][]int32, len(mm.recARF)),
		itags:     append([]int64(nil), mm.recITags...),
		dNow:      v.now - mm.recNow,
		ffDelta:   v.ffSkipped - mm.recFF,
		itagsExit: append([]int64(nil), v.icache...),
		exitPC:    v.pc,
		exitDone:  done,
	}
	for i := range mm.recARF {
		blk.arf[i] = append([]int32(nil), mm.recARF[i]...)
	}
	blk.statsDelta = v.Stats
	blk.statsDelta.SubCounters(&mm.recStats)
	for pg, t := range mm.recTouched {
		if !t {
			continue
		}
		ctrl := v.PGs[pg].Ctrl
		blk.touched = append(blk.touched, pg)
		blk.entry = append(blk.entry, mm.recCtrl[pg].Clone())
		blk.ctrlStats = append(blk.ctrlStats, ctrl.Stats.Delta(mm.recCtrlStats[pg]))
		var exit dram.TimingSnapshot
		ctrl.CaptureTiming(v.now, &exit)
		blk.exit = append(blk.exit, exit)
	}
	key := memoKey{v.prog, mm.recPC}
	bs := mm.blocks[key]
	if len(bs) >= memoMaxPerKey {
		copy(bs, bs[1:])
		bs = bs[:len(bs)-1]
		mm.size--
	}
	mm.blocks[key] = append(bs, blk)
	mm.size++
}

// eqI32 reports element-wise equality.
func eqI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// eqI64 reports element-wise equality.
func eqI64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
