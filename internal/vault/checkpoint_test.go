package vault

import (
	"errors"
	"testing"

	"ipim/internal/ckpt"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// ckptSrc is a small program that dirties a bit of everything a vault
// image carries: VSM, a PE bank, DataRF traffic, DRAM activity.
const ckptSrc = `
seti_vsm 0x0, #1065353216
rd_vsm d1, 0x0, sm=0x1
st_rf d1, 0x40, sm=0x1
ld_rf d2, 0x40, sm=0x1
`

func encodeVault(t *testing.T, v *Vault, progIndex int) []byte {
	t.Helper()
	var e ckpt.Enc
	v.EncodeCkpt(&e, progIndex)
	return e.Bytes()
}

func TestVaultCkptRoundTrip(t *testing.T) {
	cfg := sim.TestTiny()
	src := runSrc(t, cfg, ckptSrc)
	if !src.Quiescent() {
		t.Fatal("vault not quiescent after a completed program")
	}
	prog := src.Program()
	if prog == nil {
		t.Fatal("completed vault lost its program")
	}
	payload := encodeVault(t, src, 0)

	img, err := DecodeVaultCkpt(ckpt.NewDec(payload), &cfg, []*isa.Program{prog})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !img.HasProgram() {
		t.Error("image dropped the program reference")
	}
	dst := New(&cfg, 0, 0, nil)
	dst.ApplyCkpt(img)

	if dst.Now() != src.Now() || dst.Done() != src.Done() {
		t.Errorf("restored clock/done = %d/%v, want %d/%v", dst.Now(), dst.Done(), src.Now(), src.Done())
	}
	if dst.Stats != src.Stats {
		t.Errorf("restored Stats differ:\n got %+v\nwant %+v", dst.Stats, src.Stats)
	}
	a, err := src.PE(0, 0).ReadBank(0x40, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.PE(0, 0).ReadBank(0x40, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("restored bank reads %v, want %v", b, a)
	}
	// The restored vault must re-encode byte-identically: the image is
	// a verbatim snapshot, not a lossy projection.
	if string(encodeVault(t, dst, 0)) != string(payload) {
		t.Error("re-encoded checkpoint differs from the original")
	}
}

func TestVaultCkptRejections(t *testing.T) {
	cfg := sim.TestTiny()
	src := runSrc(t, cfg, ckptSrc)
	prog := src.Program()
	payload := encodeVault(t, src, 0)

	if _, err := DecodeVaultCkpt(ckpt.NewDec(payload[:16]), &cfg, []*isa.Program{prog}); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
	// Program index outside the machine's table.
	if _, err := DecodeVaultCkpt(ckpt.NewDec(payload), &cfg, nil); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("dangling program index: err = %v, want ErrCorrupt", err)
	}
	// A non-zero pc with no program is structurally impossible.
	orphan := encodeVault(t, src, -1)
	if _, err := DecodeVaultCkpt(ckpt.NewDec(orphan), &cfg, nil); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("pc without program: err = %v, want ErrCorrupt", err)
	}
	// A mismatched target configuration cannot accept the image.
	other := sim.OneVault()
	if _, err := DecodeVaultCkpt(ckpt.NewDec(payload), &other, []*isa.Program{prog}); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("config mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestBeginResumedRunMovesBudgetOrigin(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, ckptSrc)
	elapsed, funcIssued := v.Now()/2, int64(17)
	v.BeginResumedRun(sim.RunOptions{MaxCycles: 1 << 40}, sim.CycleMode, nil, elapsed, funcIssued)
	if got := v.RunStartDelta(); got != elapsed {
		t.Errorf("RunStartDelta = %d, want %d", got, elapsed)
	}
	if got := v.FuncIssued(); got != funcIssued {
		t.Errorf("FuncIssued = %d, want %d", got, funcIssued)
	}
	v.EndRun()
}
