package vault

// In-package unit tests for the functional execution mode and the block
// timing memoizer. The root-package differential matrix
// (funcmode_test.go) pins whole-machine equivalence; these tests pin the
// pieces directly: every specialized comp kernel against isa.EvalLane on
// adversarial bit patterns, each execFunc dispatch path against the
// cycle-mode interpreter on a single vault, the functional budget
// reinterpretation, and the memoizer's hit/flush/bypass machinery.

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ipim/internal/engine"
	"ipim/internal/fault"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// kernelPatterns are adversarial 32-bit lane values: NaNs, infinities,
// denormals, signed zeros, integer extremes, float values at the F2I
// clamp boundaries, and shift counts around the mod-32 wrap.
var kernelPatterns = []uint32{
	0x00000000, 0x80000000, // +0, -0
	0x3F800000, 0xBF800000, // +1, -1
	0x7F800000, 0xFF800000, // +Inf, -Inf
	0x7FC00000, 0xFFC00000, // quiet NaNs
	0x7F800001,             // signaling NaN pattern
	0x00000001, 0x807FFFFF, // denormals
	0x7F7FFFFF, 0xFF7FFFFF, // +-MaxFloat32
	0x4EFFFFFF, 0x4F000000, // floats straddling MaxInt32
	0xCF000000, 0xCF000001, // floats straddling MinInt32
	0x7FFFFFFF, 0x80000001, // MaxInt32, MinInt32+1 as ints
	0xFFFFFFFF,             // -1 as int, NaN as float
	0x0000001F, 0x00000020, // shift counts at the mod-32 wrap
	0x40490FDB, // pi
	0xC2F6E979, // -123.456
	0x501502F9, // 1e10
}

// TestCompKernelsBitExact proves every specialized functional-mode comp
// kernel computes exactly what the cycle-mode reference (isa.EvalLane)
// computes, lane for lane, across the adversarial pattern matrix.
func TestCompKernelsBitExact(t *testing.T) {
	n := len(kernelPatterns)
	for op := isa.ALUOp(1); op.ValidForComp(); op++ {
		k := compKernelFor(op)
		if k == nil {
			t.Fatalf("comp op %v has no functional kernel", op)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var a, b, acc, d engine.Vector
				for l := 0; l < isa.VecLanes; l++ {
					a[l] = kernelPatterns[(i+l)%n]
					b[l] = kernelPatterns[(j+l)%n]
					acc[l] = kernelPatterns[(i+j+l)%n]
				}
				d = acc
				k(&d, &a, &b)
				for l := 0; l < isa.VecLanes; l++ {
					want := isa.EvalLane(op, a[l], b[l], acc[l])
					if d[l] != want {
						t.Fatalf("%v lane %d: a=%#x b=%#x acc=%#x: kernel=%#x EvalLane=%#x",
							op, l, a[l], b[l], acc[l], d[l], want)
					}
				}
			}
		}
	}
	if compKernelFor(isa.ALUInvalid) != nil {
		t.Fatal("kernel table maps the invalid op")
	}
	if compKernelFor(isa.ALUOp(250)) != nil {
		t.Fatal("kernel table maps an out-of-range op")
	}
}

// assembleProg assembles and finalizes a program or fails the test.
func assembleProg(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

// seedArch fills a fresh vault's architectural state deterministically:
// DataRF lanes from the adversarial pattern pool, spare AddrRF entries
// with small integers, a4..a7 with aligned bank/PGSM addresses for
// indirect tests, the low bank bytes, and the low VSM bytes. The same
// sequence lands on every vault it is applied to.
func seedArch(v *Vault) {
	u := uint32(0x9E3779B9)
	next := func() uint32 { u = u*1664525 + 1013904223; return u }
	for _, pg := range v.PGs {
		for _, pe := range pg.PEs {
			for r := range pe.DataRF {
				for l := range pe.DataRF[r] {
					pe.DataRF[r][l] = kernelPatterns[int(next()>>8)%len(kernelPatterns)]
				}
			}
			for r := 8; r < len(pe.AddrRF); r++ {
				pe.AddrRF[r] = int32(next() % 1024)
			}
			pe.AddrRF[4], pe.AddrRF[5] = 0x40, 0x80
			pe.AddrRF[6], pe.AddrRF[7] = 0x100, 0x30
			var buf [512]byte
			for i := range buf {
				buf[i] = byte(next() >> 16)
			}
			if err := pe.WriteBank(0, buf[:]); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < 256; i++ {
		v.VSM[i] = byte(i*7 + 3)
	}
}

// runVaultMode runs p to completion on a fresh seeded vault in the given
// mode and returns the vault.
func runVaultMode(t *testing.T, cfg *sim.Config, p *isa.Program, mode sim.Mode) *Vault {
	t.Helper()
	v := New(cfg, 0, 0, nil)
	seedArch(v)
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	v.BeginRun(sim.RunOptions{}, mode, nil)
	defer v.EndRun()
	for {
		done, err := v.RunPhase()
		if err != nil {
			t.Fatalf("%v mode: %v", mode, err)
		}
		if done {
			return v
		}
	}
}

// compareArch fails the test wherever two vaults' architectural state
// (CRF, per-PE register files, bank bytes, PGSM, VSM) differs.
func compareArch(t *testing.T, vc, vf *Vault) {
	t.Helper()
	if !reflect.DeepEqual(vc.CRF, vf.CRF) {
		t.Errorf("CRF diverged:\n cycle %v\n func  %v", vc.CRF, vf.CRF)
	}
	if !bytes.Equal(vc.VSM, vf.VSM) {
		t.Error("VSM bytes diverged")
	}
	for gi := range vc.PGs {
		if !bytes.Equal(vc.PGs[gi].PGSM, vf.PGs[gi].PGSM) {
			t.Errorf("PG %d PGSM diverged", gi)
		}
		for pi := range vc.PGs[gi].PEs {
			cpe, fpe := vc.PGs[gi].PEs[pi], vf.PGs[gi].PEs[pi]
			if !reflect.DeepEqual(cpe.DataRF, fpe.DataRF) {
				t.Errorf("PE %d/%d DataRF diverged", gi, pi)
			}
			if !reflect.DeepEqual(cpe.AddrRF, fpe.AddrRF) {
				t.Errorf("PE %d/%d AddrRF diverged", gi, pi)
			}
			cb, err := cpe.ReadBank(0, 0x400)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := fpe.ReadBank(0, 0x400)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cb, fb) {
				t.Errorf("PE %d/%d bank bytes diverged", gi, pi)
			}
		}
	}
}

// diffSrc runs src in cycle mode and functional mode on identically
// seeded vaults and requires identical architectural outcomes.
func diffSrc(t *testing.T, src string) {
	t.Helper()
	cfg := sim.TestTiny()
	p := assembleProg(t, src)
	vc := runVaultMode(t, &cfg, p, sim.CycleMode)
	vf := runVaultMode(t, &cfg, p, sim.FunctionalMode)
	compareArch(t, vc, vf)
	if vc.Stats.Issued != vf.Stats.Issued {
		t.Errorf("Issued: cycle %d, functional %d", vc.Stats.Issued, vf.Stats.Issued)
	}
	if vf.Stats.Cycles != 0 {
		t.Errorf("functional mode advanced the clock to %d", vf.Stats.Cycles)
	}
}

// compSweepSrc emits one comp instruction per ALU op in the given mode,
// each with its own destination so no result is overwritten before the
// final comparison.
func compSweepSrc(mode, opts string) string {
	var b strings.Builder
	for op, i := isa.ALUOp(1), 0; op.ValidForComp(); op, i = op+1, i+1 {
		fmt.Fprintf(&b, "comp %s %s d%d, d%d, d%d, %s\n",
			op, mode, 8+i, i%8, (i+3)%8, opts)
	}
	return b.String()
}

func TestFunctionalCompSweepVVFull(t *testing.T) {
	diffSrc(t, compSweepSrc("vv", "vm=0xf, sm=*"))
}

func TestFunctionalCompSweepVSFull(t *testing.T) {
	diffSrc(t, compSweepSrc("vs", "vm=0xf, sm=*"))
}

func TestFunctionalCompSweepPartialSimbMask(t *testing.T) {
	// Full vector mask but only PEs 1 and 2 selected: the fused loops'
	// all-PEs precondition fails and the kernel loop runs masked.
	diffSrc(t, compSweepSrc("vv", "vm=0xf, sm=0x6"))
	diffSrc(t, compSweepSrc("vs", "vm=0xf, sm=0x6"))
}

func TestFunctionalCompSweepPartialVecMask(t *testing.T) {
	// Partial vector mask: the functional executor must fall back to the
	// generic per-PE interpreter.
	diffSrc(t, compSweepSrc("vv", "vm=0x5, sm=*"))
	diffSrc(t, compSweepSrc("vs", "vm=0xa, sm=0x7"))
}

func TestFunctionalCompAliasing(t *testing.T) {
	// dst aliasing src1/src2, including the VS broadcast whose lane 0 is
	// overwritten mid-instruction unless the broadcast is materialized
	// first.
	diffSrc(t, `
comp iadd vs d2, d0, d2, vm=0xf, sm=*
comp fmul vs d3, d3, d3, vm=0xf, sm=0x7
comp fmin vs d4, d1, d4, vm=0xf, sm=*
comp imac vv d5, d5, d5, vm=0xf, sm=*
comp fmac vs d6, d6, d6, vm=0xf, sm=*
`)
}

func TestFunctionalCalcARF(t *testing.T) {
	diffSrc(t, `
calc_arf iadd a8, a9, #12, sm=*
calc_arf iadd a9, a10, #-4, sm=0x5
calc_arf isub a10, a11, #3, sm=*
calc_arf shl a11, a12, #2, sm=0x3
calc_arf iadd a12, a13, a14, sm=*
calc_arf mov a13, a8, a8, sm=0x9
`)
}

func TestFunctionalMemoryOps(t *testing.T) {
	diffSrc(t, `
ld_rf d1, 0x0, sm=*
ld_rf d2, 0x10, vm=0x5, sm=*
calc_arf iadd a4, a0, #64, sm=*
ld_rf d3, @a4, sm=*
st_rf d1, 0x200, sm=*
st_rf d2, 0x210, vm=0x3, sm=0x7
ld_pgsm 0x0, 0x20, sm=*
st_pgsm 0x240, 0x20, sm=*
ld_pgsm @a4, @a6, sm=0x5
st_pgsm @a5, @a7, sm=0xa
rd_pgsm d4, 0x20, sm=*
rd_pgsm d5, 0x20, vm=0x3, sm=*
wr_pgsm d1, 0x40, sm=*
wr_pgsm d2, 0x60, vm=0x9, sm=0x3
rd_pgsm d6, @a7, sm=0x6
mov_drf d7, a4, lane=1, sm=*
mov_arf a15, d1, lane=2, sm=*
reset d8, sm=*
seti_vsm 0x10, #305419896
rd_vsm d9, 0x10, sm=*
rd_vsm d10, 0x0, vm=0x3, sm=0x5
wr_vsm d1, 0x80, sm=*
`)
}

func TestFunctionalControlFlow(t *testing.T) {
	diffSrc(t, `
seti_crf c1, #3
seti_crf c0, =loop
loop:
comp iadd vv d10, d10, d1, vm=0xf, sm=*
sync 1
calc_crf isub c1, c1, #1
cjump c1, c0
seti_crf c2, #0
cjump c2, c0
calc_crf iadd c5, c1, c2
calc_crf imul c6, c5, #7
seti_crf c3, =end
jump c3
seti_crf c4, #99
end:
sync 1
`)
}

// TestFunctionalErrorParity runs programs that fault mid-stream in both
// modes and requires the same error text (the pc/op wrapping and the
// underlying cause are mode-independent).
func TestFunctionalErrorParity(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"vsm-oob-read", "rd_vsm d0, 0x3fffc, sm=0x1", "VSM access"},
		{"vsm-oob-write", "wr_vsm d0, 0x3fffc, sm=0x1", "VSM access"},
		{"seti-vsm-oob", "seti_vsm 0x3fffd, #1", "beyond"},
		{"jump-oob", "seti_crf c0, #9999\njump c0", "jump target"},
	}
	cfg := sim.TestTiny()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := assembleProg(t, tc.src)
			errs := [2]error{}
			for mi, mode := range []sim.Mode{sim.CycleMode, sim.FunctionalMode} {
				v := New(&cfg, 0, 0, nil)
				if err := v.Load(p); err != nil {
					t.Fatal(err)
				}
				v.BeginRun(sim.RunOptions{}, mode, nil)
				for {
					done, err := v.RunPhase()
					if err != nil {
						errs[mi] = err
						break
					}
					if done {
						break
					}
				}
				v.EndRun()
				if errs[mi] == nil {
					t.Fatalf("%v mode: program did not fault", mode)
				}
				if !strings.Contains(errs[mi].Error(), tc.want) {
					t.Fatalf("%v mode: error %q does not mention %q", mode, errs[mi], tc.want)
				}
			}
			if errs[0].Error() != errs[1].Error() {
				t.Fatalf("error text diverged:\n cycle      %q\n functional %q", errs[0], errs[1])
			}
		})
	}
}

func TestFunctionalReqWithoutRemote(t *testing.T) {
	cfg := sim.TestTiny()
	p := assembleProg(t, "req chip=0, vault=1, pg=0, pe=1, dram=0x0, vsm=0x0")
	v := New(&cfg, 0, 0, nil)
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	v.BeginRun(sim.RunOptions{}, sim.FunctionalMode, nil)
	defer v.EndRun()
	_, err := v.RunPhase()
	if err == nil || !strings.Contains(err.Error(), "no remote fabric attached") {
		t.Fatalf("req without remote: %v", err)
	}
}

// spinProg is an infinite loop that never syncs: the subject for every
// budget and interrupt test.
func spinProg(t *testing.T) *isa.Program {
	t.Helper()
	return assembleProg(t, "seti_crf c0, =loop\nloop:\njump c0")
}

func TestFunctionalMaxPhaseSteps(t *testing.T) {
	cfg := sim.TestTiny()
	v := New(&cfg, 0, 0, nil)
	if err := v.Load(spinProg(t)); err != nil {
		t.Fatal(err)
	}
	v.BeginRun(sim.RunOptions{MaxPhaseSteps: 64}, sim.FunctionalMode, nil)
	defer v.EndRun()
	_, err := v.RunPhase()
	if !errors.Is(err, sim.ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "in one phase without sync") {
		t.Fatalf("unexpected budget message: %v", err)
	}
}

func TestFunctionalMaxCyclesAsInstructionBound(t *testing.T) {
	cfg := sim.TestTiny()
	v := New(&cfg, 0, 0, nil)
	if err := v.Load(spinProg(t)); err != nil {
		t.Fatal(err)
	}
	v.BeginRun(sim.RunOptions{MaxCycles: 100}, sim.FunctionalMode, nil)
	defer v.EndRun()
	_, err := v.RunPhase()
	if !errors.Is(err, sim.ErrCycleBudget) {
		t.Fatalf("want ErrCycleBudget, got %v", err)
	}
	if !strings.Contains(err.Error(), "instructions into the run") {
		t.Fatalf("functional MaxCycles should trip as an instruction bound: %v", err)
	}
}

func TestFunctionalInterruptHook(t *testing.T) {
	cfg := sim.TestTiny()
	errStop := errors.New("stop requested")
	calls := 0
	v := New(&cfg, 0, 0, nil)
	if err := v.Load(spinProg(t)); err != nil {
		t.Fatal(err)
	}
	v.BeginRun(sim.RunOptions{}, sim.FunctionalMode, func() error {
		calls++
		if calls >= 2 {
			return errStop
		}
		return nil
	})
	defer v.EndRun()
	_, err := v.RunPhase()
	if !errors.Is(err, errStop) {
		t.Fatalf("interrupt error not propagated: %v", err)
	}
	if calls != 2 {
		t.Fatalf("interrupt hook called %d times, want 2", calls)
	}
}

// memoTestSrc is a two-phase program whose reloads leave CRF/ARF and the
// controllers in a repeatable steady state, so re-running it on the same
// vault (the serve/autotune pattern) can hit the block cache.
const memoTestSrc = `
ld_rf d0, 0x0, sm=*
comp iadd vv d1, d0, d0, vm=0xf, sm=*
st_rf d1, 0x40, sm=*
sync 1
ld_rf d2, 0x40, sm=*
`

// runLoaded reloads p and runs it to completion on v.
func runLoaded(t *testing.T, v *Vault, p *isa.Program) {
	t.Helper()
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := v.RunPhase()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
	}
}

// TestTimingMemoHitsAndStaysBitIdentical reruns one program on a
// memoized vault and a memo-disabled vault: the memoizer must start
// replaying blocks after the entry states converge, while every stat —
// including the clock — stays bit-identical to full re-simulation.
func TestTimingMemoHitsAndStaysBitIdentical(t *testing.T) {
	cfg := sim.TestTiny()
	p := assembleProg(t, memoTestSrc)
	vm := New(&cfg, 0, 0, nil) // memoizer on by default
	vs := New(&cfg, 0, 0, nil)
	vs.SetTimingMemo(false)
	const runs = 5
	for r := 0; r < runs; r++ {
		runLoaded(t, vm, p)
		runLoaded(t, vs, p)
	}
	hits, misses := vm.TimingMemoStats()
	if hits == 0 {
		t.Fatalf("no memo hits after %d identical reloads (misses %d)", runs, misses)
	}
	if misses == 0 {
		t.Fatal("memoizer reported zero misses; the first run cannot hit")
	}
	h, m := vs.TimingMemoStats()
	if h != 0 || m != 0 {
		t.Fatalf("disabled memoizer recorded activity: hits=%d misses=%d", h, m)
	}
	vm.FoldDRAMStats()
	vs.FoldDRAMStats()
	if !reflect.DeepEqual(vm.Stats, vs.Stats) {
		t.Fatalf("memoized stats diverged from stepwise:\n memo %+v\n full %+v", vm.Stats, vs.Stats)
	}
	compareArch(t, vs, vm)
}

func TestTimingMemoFlushAndDisable(t *testing.T) {
	cfg := sim.TestTiny()
	p := assembleProg(t, memoTestSrc)
	v := New(&cfg, 0, 0, nil)
	for r := 0; r < 4; r++ {
		runLoaded(t, v, p)
	}
	hits, misses := v.TimingMemoStats()
	if v.memo.blocks == nil {
		t.Fatal("no blocks cached after repeated runs")
	}

	// Flush drops the blocks but preserves the lifetime counters, and
	// the next run records fresh misses.
	v.FlushTimingMemo()
	if v.memo.blocks != nil || v.memo.size != 0 {
		t.Fatal("flush left blocks behind")
	}
	if h, m := v.TimingMemoStats(); h != hits || m != misses {
		t.Fatalf("flush reset counters: %d/%d -> %d/%d", hits, misses, h, m)
	}
	runLoaded(t, v, p)
	if _, m := v.TimingMemoStats(); m <= misses {
		t.Fatalf("post-flush run did not miss (misses still %d)", m)
	}

	// Disabling freezes the counters entirely and empties the cache.
	v.SetTimingMemo(false)
	hits, misses = v.TimingMemoStats()
	runLoaded(t, v, p)
	if h, m := v.TimingMemoStats(); h != hits || m != misses {
		t.Fatalf("disabled memoizer still counting: %d/%d -> %d/%d", hits, misses, h, m)
	}
	v.SetTimingMemo(true)
	runLoaded(t, v, p)
	if _, m := v.TimingMemoStats(); m == misses {
		t.Fatal("re-enabled memoizer inactive")
	}
}

// TestMemoUsableGating walks every condition that must bypass the block
// cache: disabled memoizer, stepwise timing, an attached tracer, a fault
// plan, and an armed budget.
func TestMemoUsableGating(t *testing.T) {
	cfg := sim.TestTiny()
	v := New(&cfg, 0, 0, nil)
	if !v.memoUsable() {
		t.Fatal("fresh vault must be memo-usable")
	}
	v.SetTimingMemo(false)
	if v.memoUsable() {
		t.Fatal("usable while disabled")
	}
	v.SetTimingMemo(true)

	v.SetFastForward(false)
	if v.memoUsable() {
		t.Fatal("usable in stepwise mode")
	}
	v.SetFastForward(true)

	v.SetTracer(&Tracer{})
	if v.memoUsable() {
		t.Fatal("usable with a tracer attached")
	}
	v.SetTracer(nil)

	v.SetFaultPlan(&fault.Plan{Seed: 1, DRAMBitFlipRate: 0.5})
	if v.memoUsable() {
		t.Fatal("usable with a fault plan")
	}
	v.SetFaultPlan(nil)

	v.budget = sim.RunOptions{MaxCycles: 10}
	if v.memoUsable() {
		t.Fatal("usable with an armed budget")
	}
	v.budget = sim.RunOptions{}

	if !v.memoUsable() {
		t.Fatal("vault should be memo-usable again after clearing every gate")
	}
}

// TestMemoFlushedOnFaultPlanChange pins the invalidation rule: cached
// timing deltas recorded without a fault plan must not survive one being
// attached (or detached — the decision stream indexes shift).
func TestMemoFlushedOnFaultPlanChange(t *testing.T) {
	cfg := sim.TestTiny()
	p := assembleProg(t, memoTestSrc)
	v := New(&cfg, 0, 0, nil)
	for r := 0; r < 3; r++ {
		runLoaded(t, v, p)
	}
	if v.memo.blocks == nil {
		t.Fatal("no blocks cached")
	}
	v.SetFaultPlan(&fault.Plan{Seed: 7, DRAMBitFlipRate: 0.01})
	if v.memo.blocks != nil {
		t.Fatal("fault plan attach did not flush the block cache")
	}
	v.SetFaultPlan(nil)
}

// TestMemoAbortFlushes pins Abort's contract of returning the vault to
// a clean reusable state with the block cache dropped.
func TestMemoAbortFlushes(t *testing.T) {
	cfg := sim.TestTiny()
	p := assembleProg(t, memoTestSrc)
	v := New(&cfg, 0, 0, nil)
	for r := 0; r < 3; r++ {
		runLoaded(t, v, p)
	}
	if v.memo.blocks == nil {
		t.Fatal("no blocks cached")
	}
	v.Abort()
	if v.memo.blocks != nil {
		t.Fatal("Abort did not flush the block cache")
	}
}
