package vault

import (
	"encoding/binary"
	"math"
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// runSrc assembles and runs a program on a fresh single vault with the
// given config, returning the vault for inspection.
func runSrc(t *testing.T, cfg sim.Config, src string) *Vault {
	t.Helper()
	v := New(&cfg, 0, 0, nil)
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	for {
		done, err := v.RunPhase()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return v
		}
	}
}

func f32le(v float32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
	return b[:]
}

func TestSetiVSMAndRdVSM(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, `
seti_vsm 0x0, #1065353216   ; 1.0f bit pattern
seti_vsm 0x4, #1073741824   ; 2.0f
rd_vsm d1, 0x0, sm=0x1
st_rf d1, 0x40, sm=0x1
`)
	b, err := v.PE(0, 0).ReadBank(0x40, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(b)) != 1.0 {
		t.Fatalf("lane0 = %x", b[:4])
	}
	if math.Float32frombits(binary.LittleEndian.Uint32(b[4:])) != 2.0 {
		t.Fatalf("lane1 = %x", b[4:8])
	}
}

func TestWrVSMSerializesOnTSV(t *testing.T) {
	cfg := sim.TestTiny() // 4 PEs per vault
	// One wr_vsm with all PEs masked: 4 TSV beats.
	v := runSrc(t, cfg, `wr_vsm d0, 0x0, sm=*`)
	if v.Stats.TSVBeats != int64(cfg.PEsPerVault()) {
		t.Fatalf("TSV beats = %d, want %d", v.Stats.TSVBeats, cfg.PEsPerVault())
	}
	// Serialization: completion grows with PE count.
	cfg2 := cfg
	cfg2.PGsPerVault = 1 // 2 PEs
	v2 := runSrc(t, cfg2, `wr_vsm d0, 0x0, sm=*`)
	if v.Stats.Cycles <= v2.Stats.Cycles {
		t.Fatalf("4-PE wr_vsm (%d cyc) not slower than 2-PE (%d)", v.Stats.Cycles, v2.Stats.Cycles)
	}
}

func TestMovRoundTripThroughARF(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, `
calc_arf iadd a4, a0, #100, sm=*   ; a4 = peID + 100
mov_drf d1, a4, lane=3, sm=*
mov_arf a5, d1, lane=3, sm=*
calc_arf shl a6, a5, #1, sm=*
mov_drf d2, a6, lane=0, sm=*
st_rf d2, 0x0, sm=*
`)
	// PE (1,1) of tiny config: peID=1 -> (1+100)*2 = 202 in lane 0.
	b, err := v.PE(1, 1).ReadBank(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := int32(binary.LittleEndian.Uint32(b)); got != 202 {
		t.Fatalf("lane0 = %d, want 202", got)
	}
}

func TestResetAndCompChain(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, `
reset d1, sm=*
comp icmpeq vv d2, d1, d1, vm=0xf, sm=*   ; 1 where equal (all lanes)
comp iadd vv d3, d2, d2, vm=0xf, sm=*
st_rf d3, 0x0, sm=0x1
`)
	b, _ := v.PE(0, 0).ReadBank(0, 16)
	for l := 0; l < 4; l++ {
		if got := binary.LittleEndian.Uint32(b[4*l:]); got != 2 {
			t.Fatalf("lane %d = %d, want 2", l, got)
		}
	}
}

func TestPGSMBlockMoves(t *testing.T) {
	cfg := sim.TestTiny()
	v := New(&cfg, 0, 0, nil)
	// Preload PE(0,0) bank.
	if err := v.PE(0, 0).WriteBank(0x100, f32le(7)); err != nil {
		t.Fatal(err)
	}
	p, err := isa.Assemble(`
ld_pgsm 0x100, 0x20, sm=0x1   ; bank -> PGSM
st_pgsm 0x200, 0x20, sm=0x1   ; PGSM -> bank
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatal(err)
	}
	b, _ := v.PE(0, 0).ReadBank(0x200, 4)
	if math.Float32frombits(binary.LittleEndian.Uint32(b)) != 7 {
		t.Fatalf("block move lost data: %x", b)
	}
	v.FoldDRAMStats()
	if v.Stats.DRAM.Reads == 0 || v.Stats.DRAM.Writes == 0 {
		t.Fatalf("PGSM block moves bypassed the bank: %+v", v.Stats.DRAM)
	}
}

func TestUnalignedLoadCostsTwoColumns(t *testing.T) {
	cfg := sim.TestTiny()
	aligned := runSrc(t, cfg, `ld_rf d0, 0x0, sm=0x1`)
	aligned.FoldDRAMStats()
	unaligned := runSrc(t, cfg, `
calc_arf iadd a4, a0, #8, sm=0x1
ld_rf d0, @a4, sm=0x1
`)
	unaligned.FoldDRAMStats()
	if aligned.Stats.DRAM.Reads != 1 {
		t.Fatalf("aligned load issued %d column reads", aligned.Stats.DRAM.Reads)
	}
	if unaligned.Stats.DRAM.Reads != 2 {
		t.Fatalf("unaligned load issued %d column reads, want 2", unaligned.Stats.DRAM.Reads)
	}
}

func TestBranchPenaltyCharged(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, `
seti_crf c1, #5
seti_crf c0, =loop
loop:
calc_crf isub c1, c1, #1
cjump c1, c0
`)
	// 4 taken branches x penalty cycles.
	want := int64(4 * cfg.BranchPenalty)
	if v.Stats.StallCycles[sim.StallBranch] != want {
		t.Fatalf("branch stall = %d, want %d", v.Stats.StallCycles[sim.StallBranch], want)
	}
	if v.CRF[1] != 0 {
		t.Fatalf("loop counter = %d", v.CRF[1])
	}
}

func TestPonBChargesTSVOnBankTraffic(t *testing.T) {
	cfg := sim.TestTiny()
	cfg.PonB = true
	v := runSrc(t, cfg, `
ld_rf d0, 0x0, sm=*
ld_rf d1, 0x10, sm=*
st_rf d0, 0x100, sm=*
`)
	if v.Stats.TSVBeats == 0 {
		t.Fatal("PonB bank traffic did not cross the TSVs")
	}
	// 3 instructions x 4 PEs = 12 beats.
	if v.Stats.TSVBeats != 12 {
		t.Fatalf("TSV beats = %d, want 12", v.Stats.TSVBeats)
	}
}

func TestEmptySimbMaskCompletesImmediately(t *testing.T) {
	cfg := sim.TestTiny()
	v := runSrc(t, cfg, `ld_rf d0, 0x0, sm=0x0`)
	v.FoldDRAMStats()
	if v.Stats.DRAM.Reads != 0 {
		t.Fatalf("empty mask generated %d bank reads", v.Stats.DRAM.Reads)
	}
}

func TestVecMaskedVSMBoundsCheck(t *testing.T) {
	cfg := sim.TestTiny()
	v := New(&cfg, 0, 0, nil)
	// Lane-0-only access at the very last word is legal...
	src := `rd_vsm d0, 0x3fffc, sm=0x1, vm=0x1`
	p, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p.Finalize()
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatalf("lane-0 access at VSM end rejected: %v", err)
	}
	// ...but a full-vector access there is out of bounds.
	v2 := New(&cfg, 0, 0, nil)
	p2, _ := isa.Assemble(`rd_vsm d0, 0x3fffc, sm=0x1`)
	p2.Finalize()
	if err := v2.Load(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := v2.RunPhase(); err == nil {
		t.Fatal("full-vector VSM overflow accepted")
	}
}
