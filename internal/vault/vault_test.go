package vault

import (
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

func newTestVault(t *testing.T) *Vault {
	t.Helper()
	cfg := sim.TestTiny()
	return New(&cfg, 0, 0, nil)
}

func TestConflictsWith(t *testing.T) {
	d := func(refs ...isa.RegRef) []isa.RegRef { return refs }
	e := &entry{
		defs: d(isa.RegRef{Space: isa.SpaceDRF, Index: 1}),
		uses: d(isa.RegRef{Space: isa.SpaceDRF, Index: 2}),
	}
	cases := []struct {
		name       string
		defs, uses []isa.RegRef
		want       bool
	}{
		{"RAW", nil, d(isa.RegRef{Space: isa.SpaceDRF, Index: 1}), true},
		{"WAW", d(isa.RegRef{Space: isa.SpaceDRF, Index: 1}), nil, true},
		{"WAR", d(isa.RegRef{Space: isa.SpaceDRF, Index: 2}), nil, true},
		{"independent", d(isa.RegRef{Space: isa.SpaceDRF, Index: 5}), d(isa.RegRef{Space: isa.SpaceDRF, Index: 6}), false},
		{"different space same index", d(isa.RegRef{Space: isa.SpaceARF, Index: 1}), d(isa.RegRef{Space: isa.SpaceARF, Index: 2}), false},
	}
	for _, c := range cases {
		if got := conflictsWith(e, c.defs, c.uses); got != c.want {
			t.Errorf("%s: conflictsWith = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := map[isa.ALUOp]sim.ALUClass{
		isa.FAdd:   sim.ClassAdd,
		isa.ISub:   sim.ClassAdd,
		isa.FMin:   sim.ClassAdd,
		isa.FCmpLT: sim.ClassAdd,
		isa.FMul:   sim.ClassMul,
		isa.FDiv:   sim.ClassMul,
		isa.IMul:   sim.ClassMul,
		isa.FMac:   sim.ClassMac,
		isa.IMac:   sim.ClassMac,
		isa.Shl:    sim.ClassLogic,
		isa.And:    sim.ClassLogic,
		isa.Mov:    sim.ClassLogic,
		isa.I2F:    sim.ClassLogic,
	}
	for op, want := range cases {
		if got := classOf(op); got != want {
			t.Errorf("classOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestLoadRejectsBadPrograms(t *testing.T) {
	v := newTestVault(t)
	// Register out of range.
	p := &isa.Program{}
	in := isa.New(isa.OpComp)
	in.ALU = isa.FAdd
	in.Dst = 1000
	p.Append(in)
	if err := v.Load(p); err == nil {
		t.Error("out-of-range register accepted")
	}
	// Unfinalized label reference outside seti_crf.
	p2 := &isa.Program{}
	in2 := isa.New(isa.OpCalcARF)
	in2.ALU = isa.IAdd
	in2.ImmLabel = 3
	in2.HasImm = true
	p2.Append(in2)
	if err := v.Load(p2); err == nil {
		t.Error("label reference outside seti_crf accepted")
	}
}

func TestRunPhaseWithoutProgramErrors(t *testing.T) {
	v := newTestVault(t)
	if _, err := v.RunPhase(); err == nil {
		t.Fatal("RunPhase without a program succeeded")
	}
}

func TestAlignToChargesSyncStall(t *testing.T) {
	v := newTestVault(t)
	v.AlignTo(100)
	if v.Now() != 100 {
		t.Fatalf("Now = %d after AlignTo(100)", v.Now())
	}
	if v.Stats.StallCycles[sim.StallSync] != 100 {
		t.Fatalf("sync stall = %d", v.Stats.StallCycles[sim.StallSync])
	}
	// Aligning backwards is a no-op.
	v.AlignTo(50)
	if v.Now() != 100 {
		t.Fatal("AlignTo moved the clock backwards")
	}
}

func TestReqWithoutRemoteFabricErrors(t *testing.T) {
	v := newTestVault(t)
	p := &isa.Program{}
	p.Append(isa.New(isa.OpReq))
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err == nil {
		t.Fatal("req without remote fabric succeeded")
	}
}

func TestJumpTargetOutOfRangeErrors(t *testing.T) {
	v := newTestVault(t)
	p := &isa.Program{}
	seti := isa.New(isa.OpSetiCRF)
	seti.Dst, seti.Imm = 0, 999
	p.Append(seti)
	j := isa.New(isa.OpJump)
	j.Src1 = 0
	p.Append(j)
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err == nil {
		t.Fatal("jump to instruction 999 succeeded")
	}
}

func TestVSMBoundsErrors(t *testing.T) {
	v := newTestVault(t)
	p := &isa.Program{}
	in := isa.New(isa.OpSetiVSM)
	in.Addr = uint32(v.Cfg.VSMBytes)
	in.Imm = 1
	p.Append(in)
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err == nil {
		t.Fatal("seti_vsm beyond VSM succeeded")
	}
}

func TestEmptyProgramCompletes(t *testing.T) {
	v := newTestVault(t)
	if err := v.Load(&isa.Program{}); err != nil {
		t.Fatal(err)
	}
	done, err := v.RunPhase()
	if err != nil || !done {
		t.Fatalf("empty program: done=%v err=%v", done, err)
	}
	if !v.Done() {
		t.Fatal("vault not Done after empty program")
	}
}

func TestSetiAndCalcCRF(t *testing.T) {
	v := newTestVault(t)
	p, err := isa.Assemble(`
seti_crf c1, #10
calc_crf imul c2, c1, #3
calc_crf isub c2, c2, c1
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatal(err)
	}
	if v.CRF[2] != 20 {
		t.Fatalf("CRF[2] = %d, want 20", v.CRF[2])
	}
	if v.Stats.InstByCategory[isa.CatControlFlow] != 3 {
		t.Fatalf("control-flow count = %d", v.Stats.InstByCategory[isa.CatControlFlow])
	}
}
