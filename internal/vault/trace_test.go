package vault

import (
	"strings"
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

func TestTracerRecordsIssuesAndStalls(t *testing.T) {
	v := newTestVault(t)
	tr := &Tracer{}
	v.SetTracer(tr)
	// A dependent fmac chain guarantees data-hazard stalls.
	p, err := isa.Assemble(`
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 3 {
		t.Fatalf("traced %d entries, want 3", len(tr.Entries))
	}
	// The first instruction pays only the cold I$ refill.
	if tr.Entries[0].Stall != int64(v.Cfg.ICacheMissCost) || tr.Entries[0].Reason != sim.StallIFetch {
		t.Errorf("first instruction: stall=%d reason=%v, want cold icache miss",
			tr.Entries[0].Stall, tr.Entries[0].Reason)
	}
	if tr.Entries[1].Stall == 0 || tr.Entries[1].Reason != sim.StallData {
		t.Errorf("dependent fmac: stall=%d reason=%v", tr.Entries[1].Stall, tr.Entries[1].Reason)
	}
	sites := tr.TopStallSites(5)
	if len(sites) == 0 || sites[0].Stall == 0 {
		t.Fatalf("no stall sites: %+v", sites)
	}
	byOp := tr.StallByOpcode()
	if byOp[isa.OpComp] == 0 {
		t.Error("comp stalls not aggregated")
	}
	sum := tr.Summary(p, 5)
	for _, want := range []string{"traced 3 issues", "comp", "data-hazard"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestTracerMaxBound(t *testing.T) {
	tr := &Tracer{Max: 2}
	for i := 0; i < 5; i++ {
		tr.record(TraceEntry{PC: i})
	}
	if len(tr.Entries) != 2 || tr.Dropped() != 3 {
		t.Fatalf("entries=%d dropped=%d", len(tr.Entries), tr.Dropped())
	}
}

// traceChain runs the dependent-fmac stall program on a fresh vault
// with fast-forward on or off and returns the tracer.
func traceChain(t *testing.T, fastForward bool) *Tracer {
	t.Helper()
	v := newTestVault(t)
	v.SetFastForward(fastForward)
	tr := &Tracer{}
	v.SetTracer(tr)
	p, err := isa.Assemble(`
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTracerFastForwardAttribution is the regression test for skipped
// idle spans in the trace: a fast-forwarded run must report the skipped
// cycles as their own FastForwarded category — a subset of Stall, not
// an extra charge silently folded into the dominant stall reason — and
// Stall/Reason themselves must be identical to a stepwise run's.
func TestTracerFastForwardAttribution(t *testing.T) {
	ff := traceChain(t, true)
	sw := traceChain(t, false)
	if len(ff.Entries) != len(sw.Entries) {
		t.Fatalf("entry counts diverge: ff=%d stepwise=%d", len(ff.Entries), len(sw.Entries))
	}
	for i := range ff.Entries {
		fe, se := ff.Entries[i], sw.Entries[i]
		if fe.Stall != se.Stall || fe.Reason != se.Reason || fe.Issue != se.Issue {
			t.Errorf("entry %d: stall attribution diverges between modes:\nff:       %+v\nstepwise: %+v", i, fe, se)
		}
		if fe.FastForwarded > fe.Stall {
			t.Errorf("entry %d: FastForwarded=%d exceeds Stall=%d — skipped spans must be a subset of the stall charge",
				i, fe.FastForwarded, fe.Stall)
		}
		if se.FastForwarded != 0 {
			t.Errorf("entry %d: stepwise run reports FastForwarded=%d, want 0", i, se.FastForwarded)
		}
	}
	if ff.FastForwardedCycles() == 0 {
		t.Error("fast-forward run traced no skipped cycles — the dependent chain should jump its data-hazard waits")
	}
	// The per-site aggregation and the summary must surface the category.
	sites := ff.TopStallSites(5)
	var siteFF int64
	for _, s := range sites {
		siteFF += s.FastForwarded
	}
	if siteFF != ff.FastForwardedCycles() {
		t.Errorf("stall sites account %d fast-forwarded cycles, tracer total %d", siteFF, ff.FastForwardedCycles())
	}
	if sum := ff.Summary(nil, 5); !strings.Contains(sum, "fast-forwarded") {
		t.Errorf("summary does not surface the fast-forwarded category:\n%s", sum)
	}
	if sum := sw.Summary(nil, 5); strings.Contains(sum, "fast-forwarded") {
		t.Errorf("stepwise summary claims fast-forwarded cycles:\n%s", sum)
	}
}
