package vault

import (
	"strings"
	"testing"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

func TestTracerRecordsIssuesAndStalls(t *testing.T) {
	v := newTestVault(t)
	tr := &Tracer{}
	v.SetTracer(tr)
	// A dependent fmac chain guarantees data-hazard stalls.
	p, err := isa.Assemble(`
comp fmac vv d1, d0, d0, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
comp fmac vv d1, d1, d1, vm=0xf, sm=*
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := v.Load(p); err != nil {
		t.Fatal(err)
	}
	if _, err := v.RunPhase(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) != 3 {
		t.Fatalf("traced %d entries, want 3", len(tr.Entries))
	}
	// The first instruction pays only the cold I$ refill.
	if tr.Entries[0].Stall != int64(v.Cfg.ICacheMissCost) || tr.Entries[0].Reason != sim.StallIFetch {
		t.Errorf("first instruction: stall=%d reason=%v, want cold icache miss",
			tr.Entries[0].Stall, tr.Entries[0].Reason)
	}
	if tr.Entries[1].Stall == 0 || tr.Entries[1].Reason != sim.StallData {
		t.Errorf("dependent fmac: stall=%d reason=%v", tr.Entries[1].Stall, tr.Entries[1].Reason)
	}
	sites := tr.TopStallSites(5)
	if len(sites) == 0 || sites[0].Stall == 0 {
		t.Fatalf("no stall sites: %+v", sites)
	}
	byOp := tr.StallByOpcode()
	if byOp[isa.OpComp] == 0 {
		t.Error("comp stalls not aggregated")
	}
	sum := tr.Summary(p, 5)
	for _, want := range []string{"traced 3 issues", "comp", "data-hazard"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}

func TestTracerMaxBound(t *testing.T) {
	tr := &Tracer{Max: 2}
	for i := 0; i < 5; i++ {
		tr.record(TraceEntry{PC: i})
	}
	if len(tr.Entries) != 2 || tr.Dropped() != 3 {
		t.Fatalf("entries=%d dropped=%d", len(tr.Entries), tr.Dropped())
	}
}
