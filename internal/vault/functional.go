package vault

import (
	"fmt"

	"ipim/internal/dram"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Functional execution: the instruction-stream interpreter with every
// timing concern removed. execFunc applies exactly the architectural
// mutations the cycle-mode issue path applies — register files,
// scratchpads, bank bytes, control flow, and the fault-injection
// decision stream — but never touches the clock, the issued queue, the
// DRAM controllers' schedules, the TSV timeline or the NoC. Two callers
// share it: FunctionalMode runs (runPhaseFunctional) and the timing
// memoizer's cache-hit replay (memo.go), which re-executes a block
// functionally and applies recorded timing deltas.

// runPhaseFunctional is RunPhase's FunctionalMode loop: execute to the
// next sync or end of program with no cycle accounting. Stats carry
// instruction counts only (Issued, InstByCategory, Syncs); Cycles and
// every stall/activity counter stay untouched. Error wrapping matches
// the cycle-mode loop exactly so budget and fault errors are
// mode-independent where their content is (the differential fuzz
// harness pins this).
func (v *Vault) runPhaseFunctional() (bool, error) {
	for {
		if v.pc >= len(v.prog.Ins) {
			v.done = true
			return true, nil
		}
		if v.limited {
			if err := v.checkRunControlFunc(); err != nil {
				return false, err
			}
		}
		in := &v.prog.Ins[v.pc]
		if in.Op == isa.OpSync {
			v.Stats.Issued++
			v.Stats.InstByCategory[isa.CatSync]++
			v.Stats.Syncs++
			v.pc++
			return false, nil
		}
		v.Stats.Issued++
		v.Stats.InstByCategory[isa.CategoryOf(in.Op)]++
		if err := v.execFunc(in); err != nil {
			return false, fmt.Errorf("vault %d/%d: pc=%d %s: %w", v.CubeID, v.ID, v.pc, in.Op, err)
		}
	}
}

// checkRunControlFunc is checkRunControl for functional runs, where no
// clock exists to measure MaxCycles against: the cycle budget is
// reinterpreted as an issued-instruction bound (every instruction costs
// at least one cycle, so a program that exceeds N instructions would
// certainly have exceeded N cycles — the bound is conservative, never
// late). MaxPhaseSteps counts loop iterations exactly like cycle mode,
// so it trips at the identical pc with the identical message in both
// modes; the interrupt hook is polled on the same InterruptEvery
// cadence.
func (v *Vault) checkRunControlFunc() error {
	v.phaseSteps++
	if b := v.budget.MaxPhaseSteps; b > 0 && v.phaseSteps > b {
		return fmt.Errorf("vault %d/%d: pc=%d: %w: %d instructions in one phase without sync (budget %d)",
			v.CubeID, v.ID, v.pc, sim.ErrCycleBudget, v.phaseSteps-1, b)
	}
	if b := v.budget.MaxCycles; b > 0 {
		if v.funcIssued++; v.funcIssued > b {
			return fmt.Errorf("vault %d/%d: pc=%d: %w: %d instructions into the run (budget %d)",
				v.CubeID, v.ID, v.pc, sim.ErrCycleBudget, v.funcIssued-1, b)
		}
	}
	if v.interrupt != nil {
		if v.sinceCheck++; v.sinceCheck >= InterruptEvery {
			v.sinceCheck = 0
			if err := v.interrupt(); err != nil {
				return fmt.Errorf("vault %d/%d: pc=%d: %w", v.CubeID, v.ID, v.pc, err)
			}
		}
	}
	return nil
}

// execFunc executes one non-sync instruction functionally, managing pc
// itself (sequential fall-through or taken jump). It mirrors the
// mutation set of issue() case for case — same transfer calls in the
// same order, same error returns, same fault-injection rolls against
// the same vault-owned counters — so functional outputs are
// bit-identical to cycle mode under any fault plan. It deliberately
// touches no stats: runPhaseFunctional counts issues itself, and the
// memoizer's replay path gets every counter from the recorded delta.
func (v *Vault) execFunc(in *isa.Instruction) error {
	mask := in.SimbMask
	nPE := v.Cfg.PEsPerVault()
	switch in.Op {
	case isa.OpComp:
		v.execFuncComp(in, mask, 0, nPE)

	case isa.OpCalcARF:
		v.execFuncCalcARF(in, mask, 0, nPE)

	case isa.OpLdRF, isa.OpStRF, isa.OpLdPGSM, isa.OpStPGSM:
		if err := v.execFuncBank(in, mask, 0, nPE); err != nil {
			return err
		}

	case isa.OpRdPGSM, isa.OpWrPGSM:
		rd := in.Op == isa.OpRdPGSM
		full := in.VecMask == isa.VecMaskAll
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			pg, pe := v.peByIndex(i)
			addr := pe.EffectiveAddr(in.Addr, in.Indirect)
			var err error
			switch {
			case rd && full:
				err = pg.VectorFromPGSMFull(pe, addr, in.Dst)
			case rd:
				err = pg.VectorFromPGSM(pe, addr, in.Dst, in.VecMask)
			case full:
				err = pg.VectorToPGSMFull(pe, addr, in.Dst)
			default:
				err = pg.VectorToPGSM(pe, addr, in.Dst, in.VecMask)
			}
			if err != nil {
				return err
			}
		}

	case isa.OpMovDRF:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			v.peList[i].pe.MovToDRF(in.Dst, in.Src1, in.Lane)
		}

	case isa.OpMovARF:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			v.peList[i].pe.MovToARF(in.Dst, in.Src1, in.Lane)
		}

	case isa.OpReset:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			v.peList[i].pe.Reset(in.Dst)
		}

	case isa.OpRdVSM, isa.OpWrVSM:
		for i := 0; i < nPE; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			_, pe := v.peByIndex(i)
			addr := pe.EffectiveAddr(in.Addr, in.Indirect)
			if int(addr)+4*highLane(in.VecMask)+4 > len(v.VSM) {
				return fmt.Errorf("VSM access at %#x beyond %d bytes", addr, len(v.VSM))
			}
			if in.Op == isa.OpRdVSM {
				copyVSMToVector(v.VSM, addr, pe, in.Dst, in.VecMask)
			} else {
				copyVectorToVSM(pe, in.Dst, v.VSM, addr, in.VecMask)
			}
		}

	case isa.OpSetiVSM:
		if int(in.Addr)+4 > len(v.VSM) {
			return fmt.Errorf("seti_vsm at %#x beyond %d bytes", in.Addr, len(v.VSM))
		}
		putU32(v.VSM, in.Addr, uint32(int32(in.Imm)))

	case isa.OpReq:
		if v.remote == nil {
			return fmt.Errorf("req issued but no remote fabric attached")
		}
		data, err := v.remote.RemoteRead(in.DstChip, in.DstVault, in.DstPG, in.DstPE, in.Addr)
		if err != nil {
			return err
		}
		if int(in.Addr2)+len(data) > len(v.VSM) {
			return fmt.Errorf("req response at VSM %#x beyond %d bytes", in.Addr2, len(v.VSM))
		}
		copy(v.VSM[in.Addr2:], data)
		// No RemoteRoundTrip: the NoC is a timing model, and vsmReady
		// only delays a later rd_vsm — the bytes are already placed.

	case isa.OpCalcCRF:
		a := v.CRF[in.Src1]
		b := int32(in.Imm)
		if !in.HasImm {
			b = v.CRF[in.Src2]
		}
		v.CRF[in.Dst] = isa.EvalI(in.ALU, a, b, v.CRF[in.Dst])

	case isa.OpSetiCRF:
		v.CRF[in.Dst] = int32(in.Imm)

	case isa.OpJump, isa.OpCJump:
		taken := true
		if in.Op == isa.OpCJump {
			taken = v.CRF[in.Cond] != 0
		}
		if taken {
			tgt := int(v.CRF[in.Src1])
			if tgt < 0 || tgt > len(v.prog.Ins) {
				return fmt.Errorf("jump target %d outside program of %d instructions", tgt, len(v.prog.Ins))
			}
			v.pc = tgt
			return nil
		}

	default:
		return fmt.Errorf("unhandled opcode %v", in.Op)
	}
	v.pc++
	return nil
}

// execFuncBank is the functional half of issueBank: the same transfers
// with the same error returns, plus the same per-column fault rolls in
// the same order (faultN advances identically, so a fault plan corrupts
// the same bits in both modes). No DRAM request is ever enqueued.
func (v *Vault) execFuncBank(in *isa.Instruction, mask uint64, lo, hi int) error {
	// Lane-span offsets and the fault-plan test depend only on the
	// instruction, not the PE: hoist them out of the loop.
	lo4 := uint32(4 * lowLane(in.VecMask))
	hi4 := uint32(4*highLane(in.VecMask)) + 4
	faulty := v.fp != nil && v.fp.DRAMBitFlipRate > 0 && !in.Op.IsBankStore()
	if !faulty {
		// Fault-free runs dispatch the op once and use the full-mask
		// movers where the vector mask allows; the loop below stays the
		// reference for fault plans, where the per-column rolls must
		// land in cycle-mode order.
		switch {
		case in.Op == isa.OpLdRF && in.VecMask == isa.VecMaskAll:
			for i := lo; i < hi; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				pe := v.peList[i].pe
				if err := pe.LoadVectorFull(pe.EffectiveAddr(in.Addr, in.Indirect), in.Dst); err != nil {
					return err
				}
			}
			return nil
		case in.Op == isa.OpStRF && in.VecMask == isa.VecMaskAll:
			for i := lo; i < hi; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				pe := v.peList[i].pe
				if err := pe.StoreVectorFull(pe.EffectiveAddr(in.Addr, in.Indirect), in.Dst); err != nil {
					return err
				}
			}
			return nil
		case in.Op == isa.OpLdPGSM:
			for i := lo; i < hi; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				pg, pe := v.peList[i].pg, v.peList[i].pe
				err := pg.DMABankToPGSM(pe, pe.EffectiveAddr(in.Addr, in.Indirect),
					pe.EffectiveAddr(in.Addr2, in.Indirect2), dram.AccessBytes)
				if err != nil {
					return err
				}
			}
			return nil
		case in.Op == isa.OpStPGSM:
			for i := lo; i < hi; i++ {
				if mask&(1<<uint(i)) == 0 {
					continue
				}
				pg, pe := v.peList[i].pg, v.peList[i].pe
				err := pg.DMAPGSMToBank(pe, pe.EffectiveAddr(in.Addr2, in.Indirect2),
					pe.EffectiveAddr(in.Addr, in.Indirect), dram.AccessBytes)
				if err != nil {
					return err
				}
			}
			return nil
		}
	}
	for i := lo; i < hi; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pg, pe := v.peByIndex(i)
		bankAddr := pe.EffectiveAddr(in.Addr, in.Indirect)
		spanLo := bankAddr + lo4
		spanHi := bankAddr + hi4
		var err error
		var pgsmAddr uint32
		switch in.Op {
		case isa.OpLdRF:
			err = pe.LoadVector(bankAddr, in.Dst, in.VecMask)
		case isa.OpStRF:
			err = pe.StoreVector(bankAddr, in.Dst, in.VecMask)
		case isa.OpLdPGSM:
			pgsmAddr = pe.EffectiveAddr(in.Addr2, in.Indirect2)
			var b []byte
			if b, err = pe.ReadBank(bankAddr, dram.AccessBytes); err == nil {
				err = pg.WritePGSM(pgsmAddr, b)
			}
			spanLo, spanHi = bankAddr, bankAddr+dram.AccessBytes
		case isa.OpStPGSM:
			pgsmAddr = pe.EffectiveAddr(in.Addr2, in.Indirect2)
			var b []byte
			if b, err = pg.ReadPGSM(pgsmAddr, dram.AccessBytes); err == nil {
				err = pe.WriteBank(bankAddr, b)
			}
			spanLo, spanHi = bankAddr, bankAddr+dram.AccessBytes
		}
		if err != nil {
			return err
		}
		if faulty {
			bank := pe.Index % v.Cfg.PEsPerPG
			for col := spanLo &^ (dram.AccessBytes - 1); col < spanHi; col += dram.AccessBytes {
				v.injectReadFault(in, pg, pe, bank, bankAddr, col, pgsmAddr)
			}
		}
	}
	return nil
}
