package vault

// Checkpoint codec for one vault. A vault serializes at phase barriers
// only, where it is quiescent by construction: the issued queue and
// remote-response map are empty (drain ran) and every PG controller's
// request queue is empty, so the architectural state is exactly the
// core registers and memories, the clock and TSV timeline, the I$ tags
// (timing-relevant: a cold set costs a refill bubble), the fault
// decision-stream positions, the accumulated Stats, and the per-PG/PE
// memories and controller timing images.
//
// The program itself is serialized once machine-wide (vaults often
// share one *isa.Program); the vault image carries an index into the
// machine's program table. Decode validates everything against the
// target configuration and touches no vault; Apply is infallible on a
// validated image, so a corrupt checkpoint can never half-restore a
// vault. The machine must re-attach the fault plan (SetFaultPlan)
// BEFORE Apply: attaching resets the decision-stream counters that
// Apply then restores.

import (
	"fmt"

	"ipim/internal/ckpt"
	"ipim/internal/dram"
	"ipim/internal/engine"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Image is a decoded, validated vault checkpoint, ready to be applied
// with ApplyCkpt. Produced only by DecodeVaultCkpt.
type Image struct {
	prog      *isa.Program
	pc        int
	now       int64
	done      bool
	tsvFree   int64
	ffSkipped int64
	faultN    uint64
	execN     uint64
	stats     sim.Stats
	crf       []int32
	vsm       []byte
	icache    []int64
	pgs       []pgImage
}

// pgImage is one process group's slice of a vault image.
type pgImage struct {
	pgsm []byte
	ctrl *dram.CtrlImage
	pes  []peImage
}

// peImage is one PE's slice of a vault image.
type peImage struct {
	dataRF []engine.Vector
	addrRF []int32
	bank   []byte
}

// HasProgram reports whether the image carries a loaded program (the
// machine's restore path cross-checks this against the checkpointed
// run's active vault set).
func (img *Image) HasProgram() bool { return img.prog != nil }

// ValidateForLoad checks that p can be installed on a vault built from
// cfg, applying exactly the checks Load performs. The checkpoint decode
// path validates restored programs with it up front so the later apply
// step cannot fail.
func ValidateForLoad(cfg *sim.Config, p *isa.Program) error {
	if err := p.Validate(cfg.DataRFEntries, cfg.AddrRFEntries, cfg.CtrlRFEntries); err != nil {
		return err
	}
	for i := range p.Ins {
		in := &p.Ins[i]
		if in.ImmLabel >= 0 && in.Op != isa.OpSetiCRF {
			return fmt.Errorf("vault: instruction %d: label reference outside seti_crf", i)
		}
	}
	return nil
}

// EncodeCkpt appends the vault's checkpoint state to e. progIndex is
// the position of the vault's loaded program in the machine's program
// table (-1 when no program is loaded). The vault must be quiescent —
// at a phase barrier or idle between runs; panics otherwise, like
// dram.CaptureTiming.
func (v *Vault) EncodeCkpt(e *ckpt.Enc, progIndex int) {
	if len(v.inflight) != 0 || len(v.vsmReady) != 0 {
		panic(fmt.Sprintf("vault: checkpoint of non-quiescent vault %d/%d (%d inflight, %d pending remote)",
			v.CubeID, v.ID, len(v.inflight), len(v.vsmReady)))
	}
	e.Int(progIndex)
	e.Int(v.pc)
	e.I64(v.now)
	e.Bool(v.done)
	e.I64(v.tsvFree)
	e.I64(v.ffSkipped)
	e.U64(v.faultN)
	e.U64(v.execN)
	v.Stats.EncodeCkpt(e)
	e.I32s(v.CRF)
	e.Bytes32(v.VSM)
	e.I64s(v.icache)
	for _, pg := range v.PGs {
		e.Bytes32(pg.PGSM)
		pg.Ctrl.EncodeCkpt(e, v.now)
		for _, pe := range pg.PEs {
			e.U32(uint32(len(pe.DataRF)))
			for _, vec := range pe.DataRF {
				for _, lane := range vec {
					e.U32(lane)
				}
			}
			e.I32s(pe.AddrRF)
			e.Bytes32(pe.BankPrefix())
		}
	}
}

// DecodeVaultCkpt parses one vault checkpoint from d and validates it
// against a vault built from cfg. progs is the machine's decoded,
// ValidateForLoad-checked program table the image's program index
// resolves into. Touches no vault; errors wrap ckpt.ErrCorrupt.
func DecodeVaultCkpt(d *ckpt.Dec, cfg *sim.Config, progs []*isa.Program) (*Image, error) {
	img := &Image{}
	progIndex := d.Int()
	img.pc = d.Int()
	img.now = d.I64()
	img.done = d.Bool()
	img.tsvFree = d.I64()
	img.ffSkipped = d.I64()
	img.faultN = d.U64()
	img.execN = d.U64()
	img.stats.DecodeCkpt(d)
	img.crf = d.I32s()
	img.vsm = d.Bytes32()
	img.icache = d.I64s()
	for pg := 0; pg < cfg.PGsPerVault && d.Err() == nil; pg++ {
		pi := pgImage{pgsm: d.Bytes32()}
		ctrl, err := dram.DecodeCtrlCkpt(d, cfg.PEsPerPG)
		if err != nil {
			return nil, err
		}
		pi.ctrl = ctrl
		for pe := 0; pe < cfg.PEsPerPG && d.Err() == nil; pe++ {
			nrf := int(d.U32())
			if d.Err() == nil && nrf != cfg.DataRFEntries {
				return nil, fmt.Errorf("vault: checkpoint has %d DataRF entries, config has %d: %w", nrf, cfg.DataRFEntries, ckpt.ErrCorrupt)
			}
			pj := peImage{dataRF: make([]engine.Vector, 0, cfg.DataRFEntries)}
			for r := 0; r < nrf && d.Err() == nil; r++ {
				var vec engine.Vector
				for l := range vec {
					vec[l] = d.U32()
				}
				pj.dataRF = append(pj.dataRF, vec)
			}
			pj.addrRF = d.I32s()
			pj.bank = d.Bytes32()
			pi.pes = append(pi.pes, pj)
		}
		img.pgs = append(img.pgs, pi)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	if progIndex < -1 || progIndex >= len(progs) {
		return nil, fmt.Errorf("vault: checkpoint references program %d of %d: %w", progIndex, len(progs), ckpt.ErrCorrupt)
	}
	if progIndex >= 0 {
		img.prog = progs[progIndex]
		if img.pc < 0 || img.pc > len(img.prog.Ins) {
			return nil, fmt.Errorf("vault: checkpoint pc %d outside program of %d instructions: %w", img.pc, len(img.prog.Ins), ckpt.ErrCorrupt)
		}
	} else if img.pc != 0 {
		return nil, fmt.Errorf("vault: checkpoint has pc %d with no program: %w", img.pc, ckpt.ErrCorrupt)
	}
	if img.now < 0 {
		return nil, fmt.Errorf("vault: checkpoint clock %d is negative: %w", img.now, ckpt.ErrCorrupt)
	}
	if len(img.crf) != cfg.CtrlRFEntries {
		return nil, fmt.Errorf("vault: checkpoint has %d CRF entries, config has %d: %w", len(img.crf), cfg.CtrlRFEntries, ckpt.ErrCorrupt)
	}
	if len(img.vsm) != cfg.VSMBytes {
		return nil, fmt.Errorf("vault: checkpoint has %d VSM bytes, config has %d: %w", len(img.vsm), cfg.VSMBytes, ckpt.ErrCorrupt)
	}
	wantIC := 0
	if cfg.ICacheLines > 0 && cfg.ICacheLineInstr > 0 {
		wantIC = cfg.ICacheLines
	}
	if len(img.icache) != wantIC {
		return nil, fmt.Errorf("vault: checkpoint has %d I$ sets, config has %d: %w", len(img.icache), wantIC, ckpt.ErrCorrupt)
	}
	for pg := range img.pgs {
		pi := &img.pgs[pg]
		if len(pi.pgsm) != cfg.PGSMBytes {
			return nil, fmt.Errorf("vault: checkpoint has %d PGSM bytes, config has %d: %w", len(pi.pgsm), cfg.PGSMBytes, ckpt.ErrCorrupt)
		}
		for pe := range pi.pes {
			pj := &pi.pes[pe]
			if len(pj.addrRF) != cfg.AddrRFEntries {
				return nil, fmt.Errorf("vault: checkpoint has %d AddrRF entries, config has %d: %w", len(pj.addrRF), cfg.AddrRFEntries, ckpt.ErrCorrupt)
			}
			if len(pj.bank) > cfg.BankBytes {
				return nil, fmt.Errorf("vault: checkpoint has %d-byte bank prefix, config bank is %d bytes: %w", len(pj.bank), cfg.BankBytes, ckpt.ErrCorrupt)
			}
		}
	}
	return img, nil
}

// ApplyCkpt rewrites the vault's architectural state from a validated
// image. The caller (the machine) must have re-attached the fault plan
// first — SetFaultPlan resets the decision-stream counters this method
// then restores. The timing memoizer is flushed: its blocks were
// recorded against the abandoned timeline. Never fails: all validation
// happened in DecodeVaultCkpt.
func (v *Vault) ApplyCkpt(img *Image) {
	v.prog = nil
	if img.prog != nil {
		if err := v.Load(img.prog); err != nil {
			panic(fmt.Sprintf("vault: validated checkpoint program failed to load: %v", err))
		}
	}
	v.pc = img.pc
	v.done = img.done
	v.now = img.now
	v.tsvFree = img.tsvFree
	v.ffSkipped = img.ffSkipped
	v.ffIssue = 0
	v.faultN = img.faultN
	v.execN = img.execN
	v.Stats = img.stats
	copy(v.CRF, img.crf)
	copy(v.VSM, img.vsm)
	copy(v.icache, img.icache)
	v.inflight = v.inflight[:0]
	for addr := range v.vsmReady {
		delete(v.vsmReady, addr)
	}
	for i, pg := range v.PGs {
		pi := &img.pgs[i]
		copy(pg.PGSM, pi.pgsm)
		pg.Ctrl.ApplyCtrlCkpt(pi.ctrl, v.now)
		for j, pe := range pg.PEs {
			pj := &pi.pes[j]
			copy(pe.DataRF, pj.dataRF)
			copy(pe.AddrRF, pj.addrRF)
			pe.RestoreBank(pj.bank)
		}
	}
	v.FlushTimingMemo()
}

// Program returns the vault's loaded program (nil when idle). The
// machine's checkpoint encoder uses it to build the deduplicated
// program table.
func (v *Vault) Program() *isa.Program { return v.prog }

// Quiescent reports whether the vault is at a point a checkpoint may be
// taken: no in-flight instructions and no pending remote responses.
// True at every phase barrier and between runs.
func (v *Vault) Quiescent() bool { return len(v.inflight) == 0 && len(v.vsmReady) == 0 }

// RunStartDelta reports how many cycles the vault's clock has advanced
// since the current run was armed (BeginRun). The machine serializes it
// at checkpoint time so a resumed run's MaxCycles budget trips at the
// same instruction it would have without the interruption.
func (v *Vault) RunStartDelta() int64 { return v.now - v.runStart }

// FuncIssued reports the functional-mode issued-instruction counter
// standing in for the clock in MaxCycles budget checks. Serialized at
// checkpoint time for the same reason as RunStartDelta.
func (v *Vault) FuncIssued() int64 { return v.funcIssued }

// BeginResumedRun arms run control continuing a checkpointed run:
// BeginRun, then the budget origin is moved back by elapsed cycles (and
// the functional issue counter restored), so budgets measure from the
// original run's start rather than the resume point.
func (v *Vault) BeginResumedRun(budget sim.RunOptions, mode sim.Mode, interrupt func() error, elapsed, funcIssued int64) {
	v.BeginRun(budget, mode, interrupt)
	v.runStart = v.now - elapsed
	v.funcIssued = funcIssued
}
