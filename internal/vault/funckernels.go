package vault

import (
	"math"

	"ipim/internal/engine"
	"ipim/internal/isa"
)

// Specialized functional-mode ALU kernels. The cycle-mode issue path
// interprets comp instructions through the generic per-lane dispatcher
// (engine.PE.Comp → isa.EvalLane), which re-decides the op's type and
// semantics for every lane of every PE. That cost is invisible under
// the timing model but dominates a pure-functional run, so the
// functional executor hoists the dispatch: one kernel lookup per
// instruction, then a tight unrolled loop over the vault's masked PEs.
//
// Every kernel must be bit-exact with isa.EvalLane — same rounding
// (float32 expression shapes match isa.EvalF exactly; Go never fuses),
// same NaN behaviour in min/max/compares, same F2I clamping. NaN
// results are normalized to isa.CanonNaN via u32, exactly as EvalLane
// normalizes its float path — without that, the architectural bits of
// NaN+NaN would depend on which operand the compiler left in the x86
// destination register, which varies per inlining context. The
// differential harness (funcmode_test.go, FuzzFunctionalVsTiming) pins
// this against the cycle-mode interpreter; any divergence is a test
// failure, not a silent wrong pixel.

// compKernel applies one comp op to all four lanes of d (in place, d as
// accumulator for mac ops). Kernels assume a full vector mask; partial
// masks take the generic path.
type compKernel func(d, a, b *engine.Vector)

// f32 and u32 are the raw-bits/FP32 reinterpretations every float
// kernel uses (inlined: no call cost). u32 carries the CanonNaN
// normalization, so every float kernel inherits EvalLane's NaN
// semantics for free.
func f32(x uint32) float32 { return math.Float32frombits(x) }

func u32(x float32) uint32 {
	if x != x {
		return isa.CanonNaN
	}
	return math.Float32bits(x)
}

// b1 converts a comparison result to the ALU's 1/0 encoding.
func b1f(ok bool) uint32 {
	if ok {
		return u32(1)
	}
	return u32(0)
}

func b1i(ok bool) uint32 {
	if ok {
		return 1
	}
	return 0
}

func kFAdd(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = u32(f32(a[l]) + f32(b[l]))
	}
}

func kFSub(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = u32(f32(a[l]) - f32(b[l]))
	}
}

func kFMul(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = u32(f32(a[l]) * f32(b[l]))
	}
}

func kFMac(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = u32(f32(d[l]) + f32(a[l])*f32(b[l]))
	}
}

func kFDiv(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = u32(f32(a[l]) / f32(b[l]))
	}
}

func kFMin(d, a, b *engine.Vector) {
	for l := range d {
		av, bv := f32(a[l]), f32(b[l])
		if av < bv {
			d[l] = u32(av)
		} else {
			d[l] = u32(bv)
		}
	}
}

func kFMax(d, a, b *engine.Vector) {
	for l := range d {
		av, bv := f32(a[l]), f32(b[l])
		if av > bv {
			d[l] = u32(av)
		} else {
			d[l] = u32(bv)
		}
	}
}

func kFAbs(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = u32(float32(math.Abs(float64(f32(a[l])))))
	}
}

func kFCmpLT(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = b1f(f32(a[l]) < f32(b[l]))
	}
}

func kFCmpLE(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = b1f(f32(a[l]) <= f32(b[l]))
	}
}

func kFFloor(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = u32(float32(math.Floor(float64(f32(a[l])))))
	}
}

func kI2F(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = u32(float32(int32(a[l])))
	}
}

func kF2I(d, a, _ *engine.Vector) {
	for l := range d {
		f := f32(a[l])
		switch {
		case math.IsNaN(float64(f)):
			d[l] = 0
		case f >= math.MaxInt32:
			d[l] = uint32(int32(math.MaxInt32))
		case f <= math.MinInt32:
			minI32 := int32(math.MinInt32)
			d[l] = uint32(minI32)
		default:
			d[l] = uint32(int32(f))
		}
	}
}

func kIAdd(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(a[l]) + int32(b[l]))
	}
}

func kISub(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(a[l]) - int32(b[l]))
	}
}

func kIMul(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(a[l]) * int32(b[l]))
	}
}

func kIMac(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(d[l]) + int32(a[l])*int32(b[l]))
	}
}

func kIMin(d, a, b *engine.Vector) {
	for l := range d {
		av, bv := int32(a[l]), int32(b[l])
		if av < bv {
			d[l] = uint32(av)
		} else {
			d[l] = uint32(bv)
		}
	}
}

func kIMax(d, a, b *engine.Vector) {
	for l := range d {
		av, bv := int32(a[l]), int32(b[l])
		if av > bv {
			d[l] = uint32(av)
		} else {
			d[l] = uint32(bv)
		}
	}
}

func kICmpLT(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = b1i(int32(a[l]) < int32(b[l]))
	}
}

func kICmpEQ(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = b1i(int32(a[l]) == int32(b[l]))
	}
}

func kShl(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(a[l]) << (b[l] & 31))
	}
}

func kShr(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = a[l] >> (b[l] & 31)
	}
}

func kAnd(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = a[l] & b[l]
	}
}

func kOr(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = a[l] | b[l]
	}
}

func kXor(d, a, b *engine.Vector) {
	for l := range d {
		d[l] = a[l] ^ b[l]
	}
}

func kCropLSB(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = uint32(int32(a[l]) & 0xFFFF)
	}
}

func kCropMSB(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = uint32((int32(a[l]) >> 16) & 0xFFFF)
	}
}

func kMov(d, a, _ *engine.Vector) {
	for l := range d {
		d[l] = a[l]
	}
}

// compKernels maps every ValidForComp ALU op to its specialized kernel.
// Package-level funcs, so the lookup never allocates.
var compKernels = [...]compKernel{
	isa.FAdd:    kFAdd,
	isa.FSub:    kFSub,
	isa.FMul:    kFMul,
	isa.FMac:    kFMac,
	isa.FDiv:    kFDiv,
	isa.FMin:    kFMin,
	isa.FMax:    kFMax,
	isa.FAbs:    kFAbs,
	isa.FCmpLT:  kFCmpLT,
	isa.FCmpLE:  kFCmpLE,
	isa.FFloor:  kFFloor,
	isa.I2F:     kI2F,
	isa.F2I:     kF2I,
	isa.IAdd:    kIAdd,
	isa.ISub:    kISub,
	isa.IMul:    kIMul,
	isa.IMac:    kIMac,
	isa.IMin:    kIMin,
	isa.IMax:    kIMax,
	isa.ICmpLT:  kICmpLT,
	isa.ICmpEQ:  kICmpEQ,
	isa.Shl:     kShl,
	isa.Shr:     kShr,
	isa.And:     kAnd,
	isa.Or:      kOr,
	isa.Xor:     kXor,
	isa.CropLSB: kCropLSB,
	isa.CropMSB: kCropMSB,
	isa.Mov:     kMov,
}

// compKernelFor returns the specialized kernel for op, or nil when the
// op has none (the caller falls back to the generic interpreter).
func compKernelFor(op isa.ALUOp) compKernel {
	if int(op) < len(compKernels) {
		return compKernels[op]
	}
	return nil
}

// The fused loops below unroll all four lanes by hand; this assertion
// fails to compile if the lane count ever changes.
var _ [1]struct{} = [5 - isa.VecLanes]struct{}{}

// execFuncComp executes one comp instruction across the masked PEs in
// [lo, hi) with the op dispatch hoisted out of the lane loop. The ops
// that dominate compiled image pipelines additionally get fused loops —
// op dispatched once per instruction, lanes unrolled, no per-PE kernel
// call — when every PE in range is selected. Partial vector masks and
// unknown ops fall back to the cycle path's generic interpreter
// (bitwise identical by definition).
func (v *Vault) execFuncComp(in *isa.Instruction, mask uint64, lo, hi int) {
	if in.VecMask != isa.VecMaskAll {
		for i := lo; i < hi; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			v.peFlat[i].Comp(in)
		}
		return
	}
	pes := v.peFlat[lo:hi]
	sub := mask >> uint(lo)
	// 1<<64 shifts to 0 in Go, so the wrap still yields the all-ones
	// mask for a 64-PE range.
	all := sub&(uint64(1)<<uint(len(pes))-1) == uint64(1)<<uint(len(pes))-1
	dst, s1, s2 := in.Dst, in.Src1, in.Src2
	vs := in.Mode == isa.ModeVS
	if all {
		switch in.ALU {
		case isa.FAdd:
			if vs {
				for i := range pes {
					pe := pes[i]
					d, a := &pe.DataRF[dst], &pe.DataRF[s1]
					s := f32(pe.DataRF[s2][0])
					d[0], d[1], d[2], d[3] = u32(f32(a[0])+s), u32(f32(a[1])+s), u32(f32(a[2])+s), u32(f32(a[3])+s)
				}
			} else {
				for i := range pes {
					pe := pes[i]
					d, a, b := &pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2]
					d[0], d[1], d[2], d[3] = u32(f32(a[0])+f32(b[0])), u32(f32(a[1])+f32(b[1])), u32(f32(a[2])+f32(b[2])), u32(f32(a[3])+f32(b[3]))
				}
			}
			return
		case isa.FSub:
			if vs {
				for i := range pes {
					pe := pes[i]
					d, a := &pe.DataRF[dst], &pe.DataRF[s1]
					s := f32(pe.DataRF[s2][0])
					d[0], d[1], d[2], d[3] = u32(f32(a[0])-s), u32(f32(a[1])-s), u32(f32(a[2])-s), u32(f32(a[3])-s)
				}
			} else {
				for i := range pes {
					pe := pes[i]
					d, a, b := &pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2]
					d[0], d[1], d[2], d[3] = u32(f32(a[0])-f32(b[0])), u32(f32(a[1])-f32(b[1])), u32(f32(a[2])-f32(b[2])), u32(f32(a[3])-f32(b[3]))
				}
			}
			return
		case isa.FMul:
			if vs {
				for i := range pes {
					pe := pes[i]
					d, a := &pe.DataRF[dst], &pe.DataRF[s1]
					s := f32(pe.DataRF[s2][0])
					d[0], d[1], d[2], d[3] = u32(f32(a[0])*s), u32(f32(a[1])*s), u32(f32(a[2])*s), u32(f32(a[3])*s)
				}
			} else {
				for i := range pes {
					pe := pes[i]
					d, a, b := &pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2]
					d[0], d[1], d[2], d[3] = u32(f32(a[0])*f32(b[0])), u32(f32(a[1])*f32(b[1])), u32(f32(a[2])*f32(b[2])), u32(f32(a[3])*f32(b[3]))
				}
			}
			return
		case isa.FMac:
			if vs {
				for i := range pes {
					pe := pes[i]
					d, a := &pe.DataRF[dst], &pe.DataRF[s1]
					s := f32(pe.DataRF[s2][0])
					d[0], d[1], d[2], d[3] = u32(f32(d[0])+f32(a[0])*s), u32(f32(d[1])+f32(a[1])*s), u32(f32(d[2])+f32(a[2])*s), u32(f32(d[3])+f32(a[3])*s)
				}
			} else {
				for i := range pes {
					pe := pes[i]
					d, a, b := &pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2]
					d[0], d[1], d[2], d[3] = u32(f32(d[0])+f32(a[0])*f32(b[0])), u32(f32(d[1])+f32(a[1])*f32(b[1])), u32(f32(d[2])+f32(a[2])*f32(b[2])), u32(f32(d[3])+f32(a[3])*f32(b[3]))
				}
			}
			return
		case isa.FMin:
			kernelAll(pes, dst, s1, s2, vs, kFMin)
			return
		case isa.FMax:
			kernelAll(pes, dst, s1, s2, vs, kFMax)
			return
		case isa.IAdd:
			if vs {
				for i := range pes {
					pe := pes[i]
					d, a := &pe.DataRF[dst], &pe.DataRF[s1]
					s := pe.DataRF[s2][0]
					d[0], d[1], d[2], d[3] = uint32(int32(a[0])+int32(s)), uint32(int32(a[1])+int32(s)), uint32(int32(a[2])+int32(s)), uint32(int32(a[3])+int32(s))
				}
			} else {
				for i := range pes {
					pe := pes[i]
					d, a, b := &pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2]
					d[0], d[1], d[2], d[3] = uint32(int32(a[0])+int32(b[0])), uint32(int32(a[1])+int32(b[1])), uint32(int32(a[2])+int32(b[2])), uint32(int32(a[3])+int32(b[3]))
				}
			}
			return
		case isa.Mov:
			for i := range pes {
				pe := pes[i]
				d, a := &pe.DataRF[dst], &pe.DataRF[s1]
				d[0], d[1], d[2], d[3] = a[0], a[1], a[2], a[3]
			}
			return
		}
	}
	k := compKernelFor(in.ALU)
	if k == nil {
		for i := lo; i < hi; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			v.peFlat[i].Comp(in)
		}
		return
	}
	if vs {
		// Scalar-vector: broadcast src2 lane 0. The broadcast vector is
		// materialized before the kernel writes anything, preserving the
		// read-before-write semantics of the generic path when dst
		// aliases src2.
		var bb engine.Vector
		for i := lo; i < hi; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			pe := v.peFlat[i]
			s := pe.DataRF[s2][0]
			bb[0], bb[1], bb[2], bb[3] = s, s, s, s
			k(&pe.DataRF[dst], &pe.DataRF[s1], &bb)
		}
		return
	}
	for i := lo; i < hi; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		pe := v.peFlat[i]
		k(&pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2])
	}
}

// kernelAll applies a lane kernel to every PE in pes (all selected,
// full vector mask), handling the VS broadcast with copy-first
// semantics.
func kernelAll(pes []*engine.PE, dst, s1, s2 int, vs bool, k compKernel) {
	if vs {
		var bb engine.Vector
		for i := range pes {
			pe := pes[i]
			s := pe.DataRF[s2][0]
			bb[0], bb[1], bb[2], bb[3] = s, s, s, s
			k(&pe.DataRF[dst], &pe.DataRF[s1], &bb)
		}
		return
	}
	for i := range pes {
		pe := pes[i]
		k(&pe.DataRF[dst], &pe.DataRF[s1], &pe.DataRF[s2])
	}
}

// execFuncCalcARF executes one calc_arf across the masked PEs in
// [lo, hi). The compiler's address streams are overwhelmingly
// iadd-with-immediate, so that shape gets a dedicated loop; everything
// else goes through the generic scalar ALU.
func (v *Vault) execFuncCalcARF(in *isa.Instruction, mask uint64, lo, hi int) {
	if in.HasImm && in.ALU == isa.IAdd {
		imm := int32(in.Imm)
		dst, src := in.Dst, in.Src1
		pes := v.peFlat[lo:hi]
		if sub := mask >> uint(lo); sub&(uint64(1)<<uint(len(pes))-1) == uint64(1)<<uint(len(pes))-1 {
			for i := range pes {
				pe := pes[i]
				pe.AddrRF[dst] = pe.AddrRF[src] + imm
			}
			return
		}
		for i := lo; i < hi; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			pe := v.peFlat[i]
			pe.AddrRF[dst] = pe.AddrRF[src] + imm
		}
		return
	}
	for i := lo; i < hi; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v.peFlat[i].CalcARF(in)
	}
}
