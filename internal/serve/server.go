// Package serve wraps the iPIM simulator in a production-style image
// processing service: a stdlib-only HTTP daemon that accepts netpbm
// images, runs them through a Table II workload on a pool of simulated
// accelerators, and returns the processed image together with the
// simulated cycle/energy/host-transfer accounting.
//
// The subsystem has three layers:
//
//   - a compiled-artifact LRU cache with single-flight compilation
//     (N concurrent requests for an uncached key trigger one Compile);
//   - a machine pool — fixed ipim.Machine workers behind a bounded
//     dispatch queue, giving backpressure (429/503 + Retry-After),
//     per-request deadlines with cooperative mid-run cancellation,
//     hard cycle budgets, a hang watchdog, panic isolation and
//     graceful drain;
//   - an observability surface — /healthz (liveness), /readyz
//     (readiness), Prometheus-format /metrics and structured access
//     logs.
//
// This is the paper's datacenter deployment scenario (Sec. VI): a
// standalone accelerator behind a host that amortizes PCIe transfers
// across a stream of offloaded kernels.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipim"
	"ipim/internal/autotune"
	"ipim/internal/host"
)

// Config configures a Server. The zero value is usable: it serves the
// representative one-vault machine with modest pool and cache sizes.
type Config struct {
	// Machine is the simulated accelerator configuration. Zero value:
	// ipim.OneVaultConfig().
	Machine ipim.Config
	// Workers is the number of pooled machines (default 2).
	Workers int
	// MachineParallelism bounds each pooled machine's per-phase
	// simulation goroutines (ipim Machine.SetParallelism). Results are
	// bit-identical at any setting (see DESIGN.md, "Parallel vault
	// simulation"). Default (0) keeps machines serial — with several
	// pooled machines sharing the host that maximizes aggregate
	// throughput; raise it (e.g. to runtime.GOMAXPROCS(0)) to trade
	// throughput for lower single-request latency on an idle server.
	MachineParallelism int
	// QueueCap bounds the dispatch queue (default 64). A full queue
	// rejects with 429.
	QueueCap int
	// CacheCap bounds the compiled-artifact LRU (default 32 entries).
	CacheCap int
	// DefaultTimeout applies when the request has no timeout query
	// parameter (default 60s); MaxTimeout caps client-requested
	// timeouts (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxCycles is the hard per-run simulated-cycle budget. It applies
	// to every run and caps the per-request max_cycles query parameter
	// (clients may tighten the budget, never loosen it). A run that
	// exhausts it fails with 504 and increments
	// ipim_cycle_budget_exceeded_total. 0 disables the server-wide
	// budget (per-request budgets still apply).
	MaxCycles int64
	// WatchdogInterval is the stuck-worker scan period of the pool's
	// hang watchdog (default 250ms; negative disables it).
	WatchdogInterval time.Duration
	// MaxBodyBytes bounds the request body (default 64 MiB).
	MaxBodyBytes int64
	// Bus is the modeled host attachment (default PCIe 3.0 x16).
	Bus host.Bus
	// Logger receives structured access logs (default: discard).
	Logger *log.Logger

	// Faults attaches a deterministic fault-injection plan to every
	// pooled machine (nil: faults disabled). See internal/fault.
	Faults *ipim.FaultPlan
	// MaxRetries bounds in-place retries of a run that failed with a
	// transient injected fault (ipim.ErrTransientFault). Default 2;
	// negative disables retries.
	MaxRetries int
	// RetryBackoff scales the full-jitter retry wait: attempt k sleeps
	// uniform in [0, RetryBackoff<<k), capped (default 25ms base). The
	// jitter decorrelates retry bursts when many requests trip over the
	// same transient-fault window; the per-request deadline still
	// applies.
	RetryBackoff time.Duration
	// RetrySeed seeds the jittered-backoff source so tests get a
	// deterministic retry schedule (0: seeded from the clock).
	RetrySeed int64

	// CheckpointDir enables crash-recovery journaling: every journaled
	// run streams a machine checkpoint into <dir>/<jobID>.ckpt at phase
	// barriers, and a request whose job crashed (worker panic, process
	// death) resumes from the last checkpoint instead of restarting.
	// Empty (the default) disables journaling.
	CheckpointDir string
	// CheckpointEvery is the minimum simulated-cycle spacing between
	// journal checkpoints (default 1: every covered barrier). Larger
	// values trade resume granularity for journal write traffic.
	CheckpointEvery int64
	// ChaosCrashAfterCheckpoints is the chaos-testing knob: a fresh
	// (non-resumed) journaled plane run panics on its worker after
	// writing this many checkpoints, at most once per distinct job, so
	// the recovery path is exercised deterministically under load.
	// 0 (the default, and the only sane production value) disables it.
	ChaosCrashAfterCheckpoints int
	// DegradeThreshold trips degraded mode when the mean uncorrected
	// ECC error count over the last DegradeWindow completed requests
	// exceeds it; while degraded the server sheds /v1/process load with
	// 503 + Retry-After for DegradeCooldown. 0 disables degraded mode.
	DegradeThreshold float64
	DegradeWindow    int           // default 16 requests
	DegradeCooldown  time.Duration // default 5s

	// TuneWorkers enables background schedule tuning: unknown artifact
	// keys are queued for an internal/autotune search using this many
	// parallel evaluation workers, and winners that clear TuneMargin
	// are swapped into the artifact cache (X-Ipim-Schedule: tuned).
	// 0 (the default) disables tuning.
	TuneWorkers int
	// TuneDB is the persistent results-store journal (JSONL). Empty:
	// memory-only — tuning restarts from scratch on every boot. A warm
	// journal (e.g. written by ipim-tune -db) short-circuits searches.
	TuneDB string
	// TuneMargin is the minimum improvement ratio
	// (default-schedule cycles / tuned cycles) a search winner needs
	// before the artifact is swapped (default 1.02; 1.0 swaps on any
	// non-regression).
	TuneMargin float64
	// TuneStrategy picks the search strategy (default "hill").
	TuneStrategy string
	// TuneQueueCap bounds the background tuning queue (default 16; a
	// full queue drops the enqueue, to be retried by a later request).
	TuneQueueCap int

	// StreamMaxFrames caps the frame count of one /v1/stream body
	// (default 1024). The body size is already bounded by MaxBodyBytes;
	// this bounds per-frame bookkeeping.
	StreamMaxFrames int
	// RecoveryGrace bounds how long /readyz reports 503 for the
	// checkpoint-journal backlog found at boot (default 30s). Within the
	// grace window a worker that restarted with interrupted jobs on disk
	// stays out of the router's ring until every boot-time entry has been
	// resumed (or discarded); after it, the worker goes ready regardless,
	// so a backlog nobody re-submits cannot park the worker forever.
	// Negative disables the gate.
	RecoveryGrace time.Duration

	// RouterURL enables fleet worker mode: the server registers with the
	// ipim-router at this base URL and heartbeats its health state
	// (ready/backlog/degraded/draining) every HeartbeatInterval. Empty
	// (the default) is standalone mode.
	RouterURL string
	// AdvertiseAddr is the base URL the router should reach this worker
	// at (required when RouterURL is set), e.g. "http://10.0.0.7:8080".
	AdvertiseAddr string
	// HeartbeatInterval is the registration beat period (default 1s).
	HeartbeatInterval time.Duration

	// ChaosStreamAbortAfterFrames is a chaos knob for the fleet failover
	// path: the first stream served after boot (or after SetStreamChaos)
	// aborts its connection mid-stream once this many output frames have
	// been written, exactly once. 0 disables it.
	ChaosStreamAbortAfterFrames int
	// ChaosStreamStallAfterFrames is the process-level variant: the
	// first stream stalls forever after this many output frames, so an
	// external harness can SIGKILL the worker at a deterministic point.
	// 0 disables it.
	ChaosStreamStallAfterFrames int
}

func (c *Config) fillDefaults() {
	if c.Machine.Cubes == 0 {
		c.Machine = ipim.OneVaultConfig()
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.MachineParallelism == 0 {
		c.MachineParallelism = 1
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.CacheCap == 0 {
		c.CacheCap = 32
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = 250 * time.Millisecond
	}
	if c.Bus.BytesPerNS == 0 {
		c.Bus = host.PCIe3x16()
	}
	if c.Logger == nil {
		c.Logger = log.New(io.Discard, "", 0)
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.DegradeWindow == 0 {
		c.DegradeWindow = 16
	}
	if c.DegradeCooldown == 0 {
		c.DegradeCooldown = 5 * time.Second
	}
	if c.TuneMargin == 0 {
		c.TuneMargin = 1.02
	}
	if c.TuneStrategy == "" {
		c.TuneStrategy = "hill"
	}
	if c.TuneQueueCap == 0 {
		c.TuneQueueCap = 16
	}
	if c.StreamMaxFrames == 0 {
		c.StreamMaxFrames = 1024
	}
	if c.RecoveryGrace == 0 {
		c.RecoveryGrace = 30 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = time.Second
	}
}

// Server is the HTTP image-processing service. Create with New, mount
// it (it implements http.Handler), and call Shutdown on SIGTERM.
type Server struct {
	cfg     Config
	pool    *pool
	cache   *artifactCache
	metrics *metrics
	meter   *host.Meter
	degrade *degradeState
	tuner   *tuner // nil when background tuning is disabled
	mux     *http.ServeMux

	journal  *ckptJournal   // nil when crash-recovery journaling is disabled
	recovery *recoveryState // nil without a journal; gates /readyz on the boot backlog
	backoff  *jitter

	heartbeat *heartbeater // nil in standalone mode

	// chaosCrashed tracks job ids that already took their injected
	// chaos crash, so a chaos run makes progress on the second attempt.
	chaosCrashed sync.Map
	// chaosStreamAbort is ChaosStreamAbortAfterFrames, atomic so tests
	// can re-arm it at runtime (SetStreamChaos); chaosStreamClaimed
	// makes either stream-chaos knob single-shot.
	chaosStreamAbort   atomic.Int64
	chaosStreamClaimed atomic.Bool

	draining chan struct{} // closed when Shutdown begins
}

// New builds the pool, cache and routes.
func New(cfg Config) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	p, err := newPool(cfg.Machine, cfg.Workers, cfg.QueueCap, cfg.MachineParallelism, cfg.Faults,
		cfg.WatchdogInterval, cfg.Logger)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		pool:     p,
		cache:    newArtifactCache(cfg.CacheCap),
		metrics:  newMetrics(),
		meter:    host.NewMeter(cfg.Bus),
		degrade:  newDegradeState(cfg.DegradeThreshold, cfg.DegradeWindow, cfg.DegradeCooldown),
		backoff:  newJitter(cfg.RetrySeed),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	s.chaosStreamAbort.Store(int64(cfg.ChaosStreamAbortAfterFrames))
	if cfg.CheckpointDir != "" {
		j, err := newCkptJournal(cfg.CheckpointDir)
		if err != nil {
			p.drain(context.Background())
			return nil, err
		}
		s.journal = j
		s.metrics.journalPending = j.pending
		s.recovery = newRecoveryState(j.ids(), cfg.RecoveryGrace)
		s.metrics.recoveryBacklog = s.recovery.backlog
		if n := s.recovery.backlog(); n > 0 {
			cfg.Logger.Printf("checkpoint journal: %d interrupted job(s) in %s awaiting resume", n, cfg.CheckpointDir)
		}
	}
	s.metrics.queueDepth = p.queueDepth
	s.metrics.panicCount = p.panicCount
	s.metrics.cancelledCount = p.cancelledCount
	s.metrics.budgetExceededCount = p.budgetExceededCount
	s.metrics.busySeconds = p.busySeconds
	s.metrics.cacheStats = s.cache.stats
	s.metrics.hostSnapshot = func() (int64, int64, int64, int64) {
		ms := s.meter.Snapshot()
		return ms.Requests, ms.BytesIn, ms.BytesOut, ms.TransferNS
	}
	s.metrics.degraded = func() bool {
		_, shedding := s.degrade.active()
		return shedding
	}
	t, err := newTuner(&s.cfg, s.cache, s.pool)
	if err != nil {
		p.drain(context.Background())
		return nil, err
	}
	s.tuner = t
	if t != nil {
		s.metrics.tuneSnapshot = t.snapshot
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/process", s.handleProcess)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/v1/simb", s.handleSimb)
	s.mux.HandleFunc("/v1/tune", s.handleTune)
	if cfg.RouterURL != "" {
		if err := s.startHeartbeat(); err != nil {
			p.drain(context.Background())
			return nil, err
		}
	}
	return s, nil
}

// Shutdown stops accepting new work and drains the machine pool:
// queued requests finish, later ones get 503 + Retry-After. Safe to
// call once; the HTTP listener should be shut down around it (see
// cmd/ipim-serve).
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	// With the draining flag up, tell the router before the pool stops:
	// the final "draining" beat pulls this worker out of the ring so new
	// keys rehash while queued work finishes.
	s.heartbeat.stopAndWait()
	// Cancel any in-flight background tuning first: it is the lowest
	// priority work and must never hold up the drain.
	if err := s.tuner.close(); err != nil {
		s.cfg.Logger.Printf("tune: store close: %v", err)
	}
	return s.pool.drain(ctx)
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ServeHTTP wraps the routes with access logging and per-route/status
// metrics.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	dur := time.Since(t0)
	route := metricsRoute(r.URL.Path)
	s.metrics.observeRequest(route, rec.status, dur)
	s.cfg.Logger.Printf("method=%s path=%s status=%d bytes=%d dur=%s remote=%s",
		r.Method, r.URL.Path, rec.status, rec.bytes, dur.Round(time.Microsecond), r.RemoteAddr)
}

// metricsRoute maps a request path onto a bounded route label set
// (unknown paths collapse into one label so cardinality stays fixed).
func metricsRoute(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/v1/workloads", "/v1/process", "/v1/stream", "/v1/simb", "/v1/tune":
		return path
	}
	return "other"
}

// statusRecorder captures the response status and size for logs and
// metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.status = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	sr.wrote = true
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach its Flusher (the streaming endpoint flushes per frame).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// handleHealthz is pure liveness: it answers 200 as long as the
// process can serve HTTP at all, draining or not, so orchestrators
// don't kill a pod that is gracefully finishing its queue. Readiness
// (should this instance receive NEW traffic?) is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 while the server is draining or
// shedding load in degraded mode — take it out of the balancer — and
// 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if retryAfter, shedding := s.degrade.active(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(w, "degraded: uncorrected-error rate above threshold", http.StatusServiceUnavailable)
		return
	}
	if n := s.recovery.backlog(); n > 0 {
		// The checkpoint journal still holds jobs interrupted before the
		// last restart. Stay out of the balancer until they are replayed
		// (re-submissions resume them) or the recovery grace expires, so
		// a router doesn't pile new work onto a worker busy replaying.
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("recovering: %d journaled job(s) awaiting resume", n), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w)
}

// workloadInfo is one entry of the /v1/workloads listing.
type workloadInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	MultiStage  bool   `json:"multi_stage"`
	Histogram   bool   `json:"histogram"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var wls []workloadInfo
	for _, wl := range ipim.Workloads() {
		wls = append(wls, workloadInfo{
			Name:        wl.Name,
			Description: wl.Description,
			MultiStage:  wl.MultiStage,
			Histogram:   wl.Build().Pipe.Histogram,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"workloads": wls,
		"configs":   ipim.OptionNames(),
	})
}

// runResult carries what a pooled run produced back to the handler.
type runResult struct {
	planes  []*ipim.Image // 1 (PGM) or 3 (PPM)
	bins    []int32       // histogram pipelines
	cycles  int64         // summed across plane runs
	issued  int64
	energyJ float64

	// Injected-fault accounting (zero without a fault plan).
	injected    int64 // DRAM flip events + link faults
	corrected   int64 // ECC-corrected DRAM events
	uncorrected int64 // detected-uncorrectable DRAM events

	// resumed reports whether any plane of the request was resumed from
	// the checkpoint journal rather than run from the start.
	resumed bool
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if retryAfter, shedding := s.degrade.active(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(w, "degraded: uncorrected-error rate above threshold", http.StatusServiceUnavailable)
		return
	}

	q := r.URL.Query()
	wlName := q.Get("workload")
	if wlName == "" {
		http.Error(w, "missing required query parameter: workload", http.StatusBadRequest)
		return
	}
	wl, err := ipim.WorkloadByName(wlName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	optName := q.Get("opts")
	if optName == "" {
		optName = "opt"
	}
	opts, err := ipim.OptionsByName(optName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	timeout, err := s.requestTimeout(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget, err := s.requestBudget(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode, err := requestMode(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget.Mode = mode
	functional := mode == ipim.FunctionalMode
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Decode the input: binary PGM (one plane) or PPM (three planes).
	var planes []*ipim.Image
	var ppm bool
	switch {
	case bytes.HasPrefix(body, []byte("P5")):
		im, err := ipim.ReadPGM(bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		planes = []*ipim.Image{im}
	case bytes.HasPrefix(body, []byte("P6")):
		rp, gp, bp, err := ipim.ReadPPM(bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		planes = []*ipim.Image{rp, gp, bp}
		ppm = true
	default:
		http.Error(w, "body must be a binary PGM (P5) or PPM (P6) image", http.StatusBadRequest)
		return
	}
	imgW, imgH := planes[0].W, planes[0].H

	// Compile (or fetch) the artifact. Compilation happens on the
	// request goroutine — it is host-side work; only simulator runs
	// occupy pooled machines.
	key := cacheKey{Workload: wl.Name, W: imgW, H: imgH, Opts: opts}
	art, sched, hit, err := s.cache.get(key, func() (*ipim.Artifact, error) {
		cfg := s.cfg.Machine
		return ipim.Compile(&cfg, wl.Build().Pipe, imgW, imgH, opts)
	})
	if err != nil {
		http.Error(w, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Hand the key to the background tuner (single-flight per key;
	// no-op when tuning is disabled or the key was already submitted).
	s.tuner.maybeEnqueue(key, wl)

	// Run on a pooled machine, retrying transient injected faults (and,
	// when the checkpoint journal is on, crashed workers — the retry
	// resumes from the last journaled barrier) with full-jitter backoff
	// under the request deadline. A tuned artifact carries its
	// schedule's DRAM policies; they are timing-only (never data),
	// applied for this run and restored before the machine goes back to
	// the pool.
	jid := func(plane int) string {
		return jobID(wl.Name, optName, mode.String(), budget.MaxCycles, plane, body)
	}
	res := &runResult{}
	run := func() error {
		*res = runResult{}
		return s.pool.submit(ctx, func(ctx context.Context, m *ipim.Machine) error {
			if sched != nil {
				m.SetDRAMPolicy(sched.Page, sched.Sched)
				defer m.SetDRAMPolicy(s.cfg.Machine.Page, s.cfg.Machine.Sched)
			}
			return s.runOn(ctx, m, art, planes, budget, res, jid)
		})
	}
	retryable := func(err error) bool {
		if errors.Is(err, ipim.ErrTransientFault) {
			return true
		}
		// A worker panic is only worth retrying when the journal can
		// hand the retry the crashed run's progress.
		return s.journal != nil && errors.Is(err, errWorkerPanic)
	}
	err = run()
	retries := 0
	for retryable(err) && retries < s.cfg.MaxRetries {
		retries++
		s.metrics.observeRetry()
		select {
		case <-time.After(s.backoff.backoff(s.cfg.RetryBackoff, retries-1)):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
		err = run()
	}
	if err != nil {
		s.failProcess(w, err)
		return
	}
	s.degrade.observe(res.uncorrected)
	s.metrics.observeRun(res.cycles, res.energyJ, res.injected, res.corrected, res.uncorrected)

	// Encode the response body first so the transfer accounting and
	// Content-Length cover the real payload.
	var buf bytes.Buffer
	contentType := ""
	switch {
	case res.bins != nil:
		contentType = "application/json"
		if err := json.NewEncoder(&buf).Encode(map[string]any{
			"workload": wl.Name, "bins": res.bins,
		}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	case ppm:
		contentType = "image/x-portable-pixmap"
		if err := ipim.WritePPM(&buf, res.planes[0], res.planes[1], res.planes[2]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	default:
		contentType = "image/x-portable-graymap"
		if err := ipim.WritePGM(&buf, res.planes[0]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	transferNS := s.meter.Record(int64(len(body)), int64(buf.Len()))

	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(buf.Len()))
	h.Set("X-Ipim-Workload", wl.Name)
	h.Set("X-Ipim-Config", optName)
	h.Set("X-Ipim-Image", fmt.Sprintf("%dx%d", imgW, imgH))
	h.Set("X-Ipim-Cache", cacheLabel(hit))
	h.Set("X-Ipim-Schedule", scheduleLabel(sched))
	h.Set("X-Ipim-Mode", mode.String())
	if !functional {
		// Functional runs carry no cycle clock, so the timing- and
		// energy-accounting headers would be zeros; omit them rather
		// than report numbers that mean nothing.
		h.Set("X-Ipim-Cycles", strconv.FormatInt(res.cycles, 10))
		h.Set("X-Ipim-Kernel-Ns", strconv.FormatInt(res.cycles, 10)) // 1 GHz: 1 cycle = 1 ns
		h.Set("X-Ipim-Energy-Pj", strconv.FormatFloat(res.energyJ*1e12, 'g', -1, 64))
	}
	h.Set("X-Ipim-Instructions", strconv.FormatInt(res.issued, 10))
	h.Set("X-Ipim-Transfer-Ns", strconv.FormatFloat(transferNS, 'f', 0, 64))
	if s.journal != nil {
		h.Set("X-Ipim-Resumed", strconv.FormatBool(res.resumed))
	}
	if s.cfg.Faults.Enabled() {
		h.Set("X-Ipim-Faults-Corrected", strconv.FormatInt(res.corrected, 10))
		h.Set("X-Ipim-Faults-Uncorrected", strconv.FormatInt(res.uncorrected, 10))
		h.Set("X-Ipim-Retries", strconv.Itoa(retries))
	}
	w.Write(buf.Bytes())
}

// runOn executes every plane of a request on one pooled machine,
// accumulating the simulated accounting into res. ctx and budget flow
// into the simulator: mid-run cancellation and cycle-budget aborts
// surface as ipim.ErrCancelled / ipim.ErrCycleBudget. jid names each
// plane's checkpoint-journal entry (ignored without a journal).
func (s *Server) runOn(ctx context.Context, m *ipim.Machine, art *ipim.Artifact, planes []*ipim.Image, budget ipim.RunOptions, res *runResult, jid func(plane int) string) error {
	nPEs, nVaults := s.cfg.Machine.TotalPEs(), s.cfg.Machine.TotalVaults()
	accumulate := func(stats *ipim.Stats) {
		res.cycles += stats.Cycles
		res.issued += stats.Issued
		res.energyJ += ipim.EnergyOf(stats, nPEs, nVaults).Total()
		res.corrected += stats.DRAM.ECCCorrected
		res.uncorrected += stats.DRAM.ECCUncorrected
		res.injected += stats.DRAM.ECCCorrected + stats.DRAM.ECCUncorrected + stats.NoC.LinkFaults
	}
	if art.Plan.Pipe.Histogram {
		_, bins, stats, err := s.planeRun(ctx, m, art, planes[0], budget, jid(0), true, res)
		if err != nil {
			return err
		}
		res.bins = bins
		accumulate(&stats)
		return nil
	}
	for i, p := range planes {
		out, _, stats, err := s.planeRun(ctx, m, art, p, budget, jid(i), false, res)
		if err != nil {
			return err
		}
		res.planes = append(res.planes, out)
		accumulate(&stats)
	}
	return nil
}

// planeRun executes one plane run (or the histogram pass), with
// crash-recovery journaling when the server has a checkpoint journal:
// if the journal holds this job's checkpoint the machine is restored
// and the interrupted run resumed from its last barrier — by the
// determinism contract, bit-identical to never having crashed — and a
// fresh run streams a checkpoint into the journal at every covered
// barrier. The journal entry is removed only when the run completes;
// every failure (panic, cancellation, budget abort, process death)
// leaves the last checkpoint for the next attempt.
func (s *Server) planeRun(ctx context.Context, m *ipim.Machine, art *ipim.Artifact, img *ipim.Image, budget ipim.RunOptions, id string, hist bool, res *runResult) (*ipim.Image, []int32, ipim.Stats, error) {
	if s.journal == nil {
		if hist {
			bins, stats, err := ipim.RunHistogramContext(ctx, m, art, img, budget)
			return nil, bins, stats, err
		}
		out, stats, err := ipim.RunContext(ctx, m, art, img, budget)
		return out, nil, stats, err
	}
	resumed := false
	if data, ok := s.journal.load(id); ok {
		switch err := m.Restore(data); {
		case err != nil:
			// Unusable entry — torn write the CRC caught, or a machine
			// reconfiguration since it was written. Discard, run fresh.
			s.cfg.Logger.Printf("checkpoint journal: discarding %s: %v", id, err)
			s.journalRemove(id)
		case m.HasResume():
			resumed = true
		default:
			// An idle checkpoint carries no interrupted run to continue.
			s.journalRemove(id)
		}
	}
	opts := budget
	opts.CheckpointEvery = s.cfg.CheckpointEvery
	writes := 0
	opts.CheckpointSink = func(data []byte) error {
		if err := s.journal.write(id, data); err != nil {
			return err
		}
		s.metrics.observeCheckpoint(len(data))
		writes++
		if n := s.cfg.ChaosCrashAfterCheckpoints; n > 0 && !resumed && writes == n {
			if _, crashed := s.chaosCrashed.LoadOrStore(id, true); !crashed {
				panic(fmt.Sprintf("chaos: injected crash after %d checkpoint(s) of job %s", n, id))
			}
		}
		return nil
	}
	var (
		out   *ipim.Image
		bins  []int32
		stats ipim.Stats
		err   error
	)
	switch {
	case resumed && hist:
		bins, stats, err = ipim.ResumeHistogram(ctx, m, art, opts)
	case resumed:
		out, stats, err = ipim.ResumeRun(ctx, m, art, opts)
	case hist:
		bins, stats, err = ipim.RunHistogramContext(ctx, m, art, img, opts)
	default:
		out, stats, err = ipim.RunContext(ctx, m, art, img, opts)
	}
	if err != nil {
		return nil, nil, stats, err
	}
	if resumed {
		res.resumed = true
		s.metrics.observeResume()
	}
	s.journalRemove(id)
	return out, bins, stats, nil
}

// journalRemove deletes a job's journal entry and, if the id was part
// of the boot-time backlog, ticks it off the readiness gate.
func (s *Server) journalRemove(id string) {
	s.journal.remove(id)
	s.recovery.done(id)
}

// handleSimb runs raw SIMB assembly (POST body) on a pooled machine:
// the program is assembled, finalized, loaded into every vault and run
// under the request's deadline and cycle budget, returning the
// simulated statistics as JSON. This is the escape hatch below the
// workload layer — and the reason the cancellation path matters: a
// hand-written program can loop forever, and the deadline/budget
// machinery is what guarantees the worker comes back.
func (s *Server) handleSimb(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if retryAfter, shedding := s.degrade.active(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(w, "degraded: uncorrected-error rate above threshold", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	timeout, err := s.requestTimeout(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget, err := s.requestBudget(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	prog, err := ipim.Assemble(string(body))
	if err != nil {
		http.Error(w, "assemble: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := prog.Finalize(); err != nil {
		http.Error(w, "finalize: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var stats ipim.Stats
	err = s.pool.submit(ctx, func(ctx context.Context, m *ipim.Machine) error {
		prev := m.Budget()
		m.SetBudget(budget)
		defer m.SetBudget(prev)
		st, err := m.RunSameContext(ctx, prog)
		if err != nil {
			return err
		}
		stats = st
		return nil
	})
	if err != nil {
		s.failProcess(w, err)
		return
	}
	energyJ := ipim.EnergyOf(&stats, s.cfg.Machine.TotalPEs(), s.cfg.Machine.TotalVaults()).Total()
	s.metrics.observeRun(stats.Cycles, energyJ,
		stats.DRAM.ECCCorrected+stats.DRAM.ECCUncorrected+stats.NoC.LinkFaults,
		stats.DRAM.ECCCorrected, stats.DRAM.ECCUncorrected)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"cycles":    stats.Cycles,
		"issued":    stats.Issued,
		"ipc":       stats.IPC(),
		"energy_pj": energyJ * 1e12,
	})
}

// requestTimeout resolves the request deadline from the timeout query
// parameter, defaulted and capped by the server configuration.
func (s *Server) requestTimeout(q url.Values) (time.Duration, error) {
	timeout := s.cfg.DefaultTimeout
	if tq := q.Get("timeout"); tq != "" {
		d, err := time.ParseDuration(tq)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad timeout %q", tq)
		}
		timeout = d
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout, nil
}

// requestBudget resolves the effective cycle budget for one request:
// the server-wide Config.MaxCycles, optionally TIGHTENED by the
// max_cycles query parameter. A client can never loosen the server
// cap.
func (s *Server) requestBudget(q url.Values) (ipim.RunOptions, error) {
	b := ipim.RunOptions{MaxCycles: s.cfg.MaxCycles}
	if mq := q.Get("max_cycles"); mq != "" {
		n, err := strconv.ParseInt(mq, 10, 64)
		if err != nil || n <= 0 {
			return b, fmt.Errorf("bad max_cycles %q (want a positive integer)", mq)
		}
		if s.cfg.MaxCycles == 0 || n < s.cfg.MaxCycles {
			b.MaxCycles = n
		}
	}
	return b, nil
}

// requestMode resolves the execution mode from the mode query
// parameter: "cycle" (the default) runs the full timing simulation;
// "functional" runs functionally only — identical pixels, several
// times faster, no cycle/energy accounting in the response.
func requestMode(q url.Values) (ipim.Mode, error) {
	switch mq := q.Get("mode"); mq {
	case "", "cycle":
		return ipim.CycleMode, nil
	case "functional":
		return ipim.FunctionalMode, nil
	default:
		return ipim.DefaultMode, fmt.Errorf("bad mode %q (want functional or cycle)", mq)
	}
}

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the caller went away, so no response will be read; distinct
// from 504 so dashboards separate server-side timeouts from client
// aborts.
const statusClientClosedRequest = 499

// failProcess maps a pool/run error onto the HTTP status contract:
// 429 queue full, 503 draining or unrecovered transient fault (all
// with Retry-After), 504 deadline or cycle-budget exhaustion, 499
// client-cancelled, 500 anything else (including recovered worker
// panics).
func (s *Server) failProcess(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, errDraining), errors.Is(err, ipim.ErrTransientFault):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ipim.ErrCycleBudget), errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, ipim.ErrCancelled), errors.Is(err, context.Canceled):
		http.Error(w, err.Error(), statusClientClosedRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func scheduleLabel(sched *autotune.Candidate) string {
	if sched != nil {
		return "tuned"
	}
	return "default"
}
