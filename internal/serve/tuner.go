package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"ipim"
	"ipim/internal/autotune"
)

// tuneJob asks the background tuner to find a better schedule for one
// artifact-cache key.
type tuneJob struct {
	key cacheKey
	wl  ipim.Workload
}

// tuner is the lazy artifact-upgrade engine: a bounded background
// queue of schedule searches over internal/autotune. Requests for an
// unknown key are served with the default schedule immediately;
// the tuner searches off the request path and, when a candidate beats
// the incumbent by the configured margin, recompiles and atomically
// swaps the cached artifact, so the NEXT request for that key runs the
// tuned schedule (X-Ipim-Schedule: tuned). Winners are recorded in a
// persistent store, which short-circuits the search after a restart.
//
// Scheduling discipline: one consumer goroutine, strictly lowest
// priority — it waits for the machine pool to go idle before starting
// a search (and the search runs on its own machines, never the
// pool's), so foreground latency is unaffected. Searches are
// single-flight per key for the server's lifetime and cancelled by
// Shutdown.
type tuner struct {
	cfg    *Config
	cache  *artifactCache
	pool   *pool
	store  *autotune.Store
	engine *autotune.Engine

	queue chan tuneJob

	mu   sync.Mutex
	seen map[cacheKey]bool // single-flight: keys ever enqueued

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stats struct {
		sync.Mutex
		queued          int64 // jobs waiting or running now
		completed       int64 // searches finished (improved + unimproved)
		improved        int64 // searches whose winner was swapped in
		failed          int64 // searches that errored
		dropped         int64 // enqueues rejected by a full queue
		lastImprovement float64
	}
}

// tuneSnapshot is the point-in-time tuner state for /metrics and
// /v1/tune.
type tuneSnapshot struct {
	Queued          int64   `json:"queued"`
	Completed       int64   `json:"completed"`
	Improved        int64   `json:"improved"`
	Failed          int64   `json:"failed"`
	Dropped         int64   `json:"dropped"`
	LastImprovement float64 `json:"last_improvement"`
}

// newTuner opens the results store and starts the consumer. Returns
// (nil, nil) when tuning is disabled (TuneWorkers == 0).
func newTuner(cfg *Config, cache *artifactCache, pool *pool) (*tuner, error) {
	if cfg.TuneWorkers <= 0 {
		return nil, nil
	}
	store, err := autotune.OpenStore(cfg.TuneDB)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &tuner{
		cfg:    cfg,
		cache:  cache,
		pool:   pool,
		store:  store,
		engine: &autotune.Engine{Workers: cfg.TuneWorkers, MaxCycles: cfg.MaxCycles},
		queue:  make(chan tuneJob, cfg.TuneQueueCap),
		seen:   map[cacheKey]bool{},
		ctx:    ctx,
		cancel: cancel,
	}
	t.wg.Add(1)
	go t.run()
	return t, nil
}

// maybeEnqueue submits a key for background tuning, at most once per
// server lifetime. A full queue drops the request (and forgets the
// key, so a later request retries). Histogram workloads are not
// tunable (no image output to verify) and are ignored.
func (t *tuner) maybeEnqueue(key cacheKey, wl ipim.Workload) {
	if t == nil || wl.Build().Pipe.Histogram {
		return
	}
	t.mu.Lock()
	if t.seen[key] {
		t.mu.Unlock()
		return
	}
	t.seen[key] = true
	t.mu.Unlock()
	select {
	case t.queue <- tuneJob{key: key, wl: wl}:
		t.stats.Lock()
		t.stats.queued++
		t.stats.Unlock()
	default:
		t.mu.Lock()
		delete(t.seen, key)
		t.mu.Unlock()
		t.stats.Lock()
		t.stats.dropped++
		t.stats.Unlock()
	}
}

// run is the consumer: one search at a time, each preceded by a wait
// for the machine pool to go idle (lowest priority vs foreground).
func (t *tuner) run() {
	defer t.wg.Done()
	for {
		select {
		case <-t.ctx.Done():
			return
		case job := <-t.queue:
			t.waitForIdlePool()
			if t.ctx.Err() != nil {
				return
			}
			err := t.tune(job)
			t.stats.Lock()
			t.stats.queued--
			if err != nil {
				t.stats.failed++
				t.cfg.Logger.Printf("tune: workload=%s image=%dx%d failed: %v",
					job.key.Workload, job.key.W, job.key.H, err)
			}
			t.stats.Unlock()
		}
	}
}

// waitForIdlePool blocks until no foreground job is queued or running
// (or the tuner is cancelled). The poll is coarse on purpose: the
// tuner's latency does not matter, the foreground's does.
func (t *tuner) waitForIdlePool() {
	for t.pool.queueDepth() > 0 {
		select {
		case <-t.ctx.Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// tune resolves one job: consult the store, search if the key is
// unknown, record the winner, and swap the cached artifact when the
// improvement clears the margin.
func (t *tuner) tune(job tuneJob) error {
	cfg := t.cfg.Machine
	storeKey := autotune.KeyFor(&cfg, job.key.Opts, job.wl.Build().Pipe, job.key.W, job.key.H)

	rec, warm := t.store.Get(storeKey)
	if !warm {
		p := autotune.PipelineProblem(cfg, func() *ipim.Pipeline { return job.wl.Build().Pipe },
			job.key.W, job.key.H)
		p.Opts = job.key.Opts
		p.Label = job.wl.Name
		strat, err := autotune.NewStrategy(t.cfg.TuneStrategy, autotune.DefaultSpace(), autotune.DefaultProbeSeed)
		if err != nil {
			return err
		}
		report, err := t.engine.Search(t.ctx, p, strat)
		if err != nil {
			return err
		}
		best := report.Best()
		rec = autotune.Record{
			Key:           storeKey,
			Label:         job.wl.Name,
			Strategy:      report.Strategy,
			Seed:          autotune.DefaultProbeSeed,
			Best:          best.Candidate,
			BestCycles:    best.Cycles,
			DefaultCycles: report.Default.Cycles,
			Evaluated:     report.Evaluated,
			UpdatedUnix:   time.Now().Unix(),
		}
		if err := t.store.Put(rec); err != nil {
			return err
		}
	}

	improvement := rec.Improvement()
	t.stats.Lock()
	t.stats.completed++
	t.stats.lastImprovement = improvement
	t.stats.Unlock()
	if improvement < t.cfg.TuneMargin {
		t.cfg.Logger.Printf("tune: workload=%s image=%dx%d improvement %.3fx below margin %.3fx, keeping default",
			job.key.Workload, job.key.W, job.key.H, improvement, t.cfg.TuneMargin)
		return nil
	}

	// Recompile with the winning schedule and swap it into the cache.
	// The candidate's DRAM policies are timing-only and applied per-run
	// (see handleProcess), so the tuned artifact's pixel output is
	// bit-identical to the default's — the search verified as much
	// against the reference.
	cand := rec.Best
	pipe := autotune.Apply(job.wl.Build().Pipe, cand)
	art, err := ipim.Compile(&cfg, pipe, job.key.W, job.key.H, job.key.Opts)
	if err != nil {
		return fmt.Errorf("tuned recompile: %w", err)
	}
	t.cache.swap(job.key, art, &cand)
	t.stats.Lock()
	t.stats.improved++
	t.stats.Unlock()
	t.cfg.Logger.Printf("tune: workload=%s image=%dx%d upgraded to %s (%.3fx)",
		job.key.Workload, job.key.W, job.key.H, cand, improvement)
	return nil
}

// snapshot returns the tuner counters for metrics and /v1/tune.
func (t *tuner) snapshot() tuneSnapshot {
	t.stats.Lock()
	defer t.stats.Unlock()
	return tuneSnapshot{
		Queued:          t.stats.queued,
		Completed:       t.stats.completed,
		Improved:        t.stats.improved,
		Failed:          t.stats.failed,
		Dropped:         t.stats.dropped,
		LastImprovement: t.stats.lastImprovement,
	}
}

// close cancels any in-flight search, stops the consumer and closes
// the results store (compacting a grown journal). Idempotent via
// context cancellation semantics.
func (t *tuner) close() error {
	if t == nil {
		return nil
	}
	t.cancel()
	t.wg.Wait()
	return t.store.Close()
}

// handleTune is GET /v1/tune: the tuner state and every stored record.
func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	resp := map[string]any{"enabled": s.tuner != nil}
	if s.tuner != nil {
		resp["status"] = s.tuner.snapshot()
		resp["margin"] = s.cfg.TuneMargin
		resp["strategy"] = s.cfg.TuneStrategy
		resp["records"] = s.tuner.store.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}
