package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// metrics is a small hand-rolled Prometheus registry: the handful of
// counters, gauges and one histogram the daemon exposes, rendered in
// the text exposition format. Stdlib-only by design (the repo takes no
// dependencies); the shapes follow the Prometheus conventions so a
// real scraper ingests them unchanged.
type metrics struct {
	mu sync.Mutex

	start time.Time

	// requests[route][status] = count
	requests map[string]map[int]int64

	// Per-route request latency histograms (seconds). Labeling by route
	// keeps probe scrapes (/metrics, /healthz) from skewing the
	// workload latency quantiles of /v1/process.
	bucketBounds []float64
	latency      map[string]*routeHist

	// Simulator accounting.
	simCycles   int64
	simEnergyPJ float64

	// Fault-injection accounting (zero without a fault plan).
	faultsInjected    int64
	faultsCorrected   int64
	faultsUncorrected int64
	retries           int64

	// Crash-recovery accounting (rendered only with a checkpoint
	// journal, i.e. when journalPending is set).
	jobsResumed int64
	ckptWrites  int64
	ckptBytes   int64

	// Streaming accounting (/v1/stream).
	streams      int64
	streamFrames int64

	// Live gauges, sampled at render time.
	queueDepth          func() int64
	cacheStats          func() cacheStats
	hostSnapshot        func() (requests, bytesIn, bytesOut, transferNS int64)
	panicCount          func() int64
	cancelledCount      func() int64
	budgetExceededCount func() int64
	busySeconds         func() float64
	degraded            func() bool
	tuneSnapshot        func() tuneSnapshot // nil when tuning is disabled
	journalPending      func() int          // nil when journaling is disabled
	recoveryBacklog     func() int          // nil when journaling is disabled
}

// routeHist is one route's latency histogram: per-bucket counts (last
// entry is the +Inf overflow) plus sum and count.
type routeHist struct {
	counts []int64
	sum    float64
	count  int64
}

// defaultBuckets spans sub-millisecond cache hits to multi-second
// full-machine simulations.
var defaultBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30}

func newMetrics() *metrics {
	return &metrics{
		start:        time.Now(),
		requests:     map[string]map[int]int64{},
		bucketBounds: defaultBuckets,
		latency:      map[string]*routeHist{},
	}
}

// observeRequest records one finished HTTP request.
func (mt *metrics) observeRequest(route string, status int, dur time.Duration) {
	sec := dur.Seconds()
	mt.mu.Lock()
	defer mt.mu.Unlock()
	byStatus, ok := mt.requests[route]
	if !ok {
		byStatus = map[int]int64{}
		mt.requests[route] = byStatus
	}
	byStatus[status]++
	h, ok := mt.latency[route]
	if !ok {
		h = &routeHist{counts: make([]int64, len(mt.bucketBounds)+1)} // +Inf
		mt.latency[route] = h
	}
	h.counts[sort.SearchFloat64s(mt.bucketBounds, sec)]++
	h.sum += sec
	h.count++
}

// observeRun records one simulated accelerator run, including its
// injected-fault tallies.
func (mt *metrics) observeRun(cycles int64, energyJ float64, injected, corrected, uncorrected int64) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.simCycles += cycles
	mt.simEnergyPJ += energyJ * 1e12
	mt.faultsInjected += injected
	mt.faultsCorrected += corrected
	mt.faultsUncorrected += uncorrected
}

// observeRetry records one transient-fault retry of a pooled run.
func (mt *metrics) observeRetry() {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.retries++
}

// observeResume records one plane run resumed from the checkpoint
// journal instead of restarted from scratch.
func (mt *metrics) observeResume() {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.jobsResumed++
}

// observeCheckpoint records one checkpoint written to the journal.
func (mt *metrics) observeCheckpoint(bytes int) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.ckptWrites++
	mt.ckptBytes += int64(bytes)
}

// observeStream records one completed stream and how many output
// frames it delivered.
func (mt *metrics) observeStream(frames int64) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.streams++
	mt.streamFrames += frames
}

// write renders the registry in Prometheus text format. Series are
// emitted in deterministic order so the output is testable.
func (mt *metrics) write(w io.Writer) {
	mt.mu.Lock()
	defer mt.mu.Unlock()

	fmt.Fprintf(w, "# HELP ipim_requests_total HTTP requests served, by route and status.\n")
	fmt.Fprintf(w, "# TYPE ipim_requests_total counter\n")
	routes := make([]string, 0, len(mt.requests))
	for r := range mt.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		statuses := make([]int, 0, len(mt.requests[r]))
		for s := range mt.requests[r] {
			statuses = append(statuses, s)
		}
		sort.Ints(statuses)
		for _, s := range statuses {
			fmt.Fprintf(w, "ipim_requests_total{route=%q,status=\"%d\"} %d\n", r, s, mt.requests[r][s])
		}
	}

	fmt.Fprintf(w, "# HELP ipim_request_seconds End-to-end request latency, by route.\n")
	fmt.Fprintf(w, "# TYPE ipim_request_seconds histogram\n")
	lroutes := make([]string, 0, len(mt.latency))
	for r := range mt.latency {
		lroutes = append(lroutes, r)
	}
	sort.Strings(lroutes)
	for _, r := range lroutes {
		h := mt.latency[r]
		var cum int64
		for i, bound := range mt.bucketBounds {
			cum += h.counts[i]
			fmt.Fprintf(w, "ipim_request_seconds_bucket{route=%q,le=%q} %d\n", r, formatBound(bound), cum)
		}
		cum += h.counts[len(mt.bucketBounds)]
		fmt.Fprintf(w, "ipim_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(w, "ipim_request_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "ipim_request_seconds_count{route=%q} %d\n", r, h.count)
	}

	if mt.queueDepth != nil {
		fmt.Fprintf(w, "# HELP ipim_queue_depth Jobs queued or running in the machine pool.\n")
		fmt.Fprintf(w, "# TYPE ipim_queue_depth gauge\n")
		fmt.Fprintf(w, "ipim_queue_depth %d\n", mt.queueDepth())
	}
	if mt.panicCount != nil {
		fmt.Fprintf(w, "# HELP ipim_worker_panics_total Recovered worker panics.\n")
		fmt.Fprintf(w, "# TYPE ipim_worker_panics_total counter\n")
		fmt.Fprintf(w, "ipim_worker_panics_total %d\n", mt.panicCount())
	}
	if mt.cancelledCount != nil {
		fmt.Fprintf(w, "# HELP ipim_jobs_cancelled_total Pooled jobs aborted by context expiry (queued or mid-run).\n")
		fmt.Fprintf(w, "# TYPE ipim_jobs_cancelled_total counter\n")
		fmt.Fprintf(w, "ipim_jobs_cancelled_total %d\n", mt.cancelledCount())
	}
	if mt.budgetExceededCount != nil {
		fmt.Fprintf(w, "# HELP ipim_cycle_budget_exceeded_total Pooled jobs aborted by the execution budget.\n")
		fmt.Fprintf(w, "# TYPE ipim_cycle_budget_exceeded_total counter\n")
		fmt.Fprintf(w, "ipim_cycle_budget_exceeded_total %d\n", mt.budgetExceededCount())
	}
	if mt.busySeconds != nil {
		fmt.Fprintf(w, "# HELP ipim_worker_busy_seconds Cumulative wall-clock time workers spent running jobs.\n")
		fmt.Fprintf(w, "# TYPE ipim_worker_busy_seconds counter\n")
		fmt.Fprintf(w, "ipim_worker_busy_seconds %g\n", mt.busySeconds())
	}
	if mt.cacheStats != nil {
		cs := mt.cacheStats()
		fmt.Fprintf(w, "# HELP ipim_artifact_cache_entries Compiled artifacts resident in the cache.\n")
		fmt.Fprintf(w, "# TYPE ipim_artifact_cache_entries gauge\n")
		fmt.Fprintf(w, "ipim_artifact_cache_entries %d\n", cs.Entries)
		fmt.Fprintf(w, "# HELP ipim_artifact_cache_hits_total Requests served from the artifact cache.\n")
		fmt.Fprintf(w, "# TYPE ipim_artifact_cache_hits_total counter\n")
		fmt.Fprintf(w, "ipim_artifact_cache_hits_total %d\n", cs.Hits)
		fmt.Fprintf(w, "# HELP ipim_artifact_cache_misses_total Requests that initiated a compile.\n")
		fmt.Fprintf(w, "# TYPE ipim_artifact_cache_misses_total counter\n")
		fmt.Fprintf(w, "ipim_artifact_cache_misses_total %d\n", cs.Misses)
		fmt.Fprintf(w, "# HELP ipim_artifact_cache_evictions_total LRU evictions.\n")
		fmt.Fprintf(w, "# TYPE ipim_artifact_cache_evictions_total counter\n")
		fmt.Fprintf(w, "ipim_artifact_cache_evictions_total %d\n", cs.Evictions)
		fmt.Fprintf(w, "# HELP ipim_artifact_cache_swaps_total Artifacts upgraded in place by the background tuner.\n")
		fmt.Fprintf(w, "# TYPE ipim_artifact_cache_swaps_total counter\n")
		fmt.Fprintf(w, "ipim_artifact_cache_swaps_total %d\n", cs.Swaps)
	}

	if mt.tuneSnapshot != nil {
		ts := mt.tuneSnapshot()
		fmt.Fprintf(w, "# HELP ipim_tune_jobs_queued Background tuning jobs waiting or running.\n")
		fmt.Fprintf(w, "# TYPE ipim_tune_jobs_queued gauge\n")
		fmt.Fprintf(w, "ipim_tune_jobs_queued %d\n", ts.Queued)
		fmt.Fprintf(w, "# HELP ipim_tune_jobs_total Background tuning jobs, by outcome.\n")
		fmt.Fprintf(w, "# TYPE ipim_tune_jobs_total counter\n")
		fmt.Fprintf(w, "ipim_tune_jobs_total{outcome=\"completed\"} %d\n", ts.Completed)
		fmt.Fprintf(w, "ipim_tune_jobs_total{outcome=\"improved\"} %d\n", ts.Improved)
		fmt.Fprintf(w, "ipim_tune_jobs_total{outcome=\"failed\"} %d\n", ts.Failed)
		fmt.Fprintf(w, "ipim_tune_jobs_total{outcome=\"dropped\"} %d\n", ts.Dropped)
		fmt.Fprintf(w, "# HELP ipim_tune_improvement_ratio Default-vs-tuned cycle ratio of the last completed search.\n")
		fmt.Fprintf(w, "# TYPE ipim_tune_improvement_ratio gauge\n")
		fmt.Fprintf(w, "ipim_tune_improvement_ratio %g\n", ts.LastImprovement)
	}

	fmt.Fprintf(w, "# HELP ipim_faults_injected_total Faults injected into simulated runs (DRAM flip events + link faults).\n")
	fmt.Fprintf(w, "# TYPE ipim_faults_injected_total counter\n")
	fmt.Fprintf(w, "ipim_faults_injected_total %d\n", mt.faultsInjected)
	fmt.Fprintf(w, "# HELP ipim_faults_corrected_total Injected DRAM read errors corrected by the ECC model.\n")
	fmt.Fprintf(w, "# TYPE ipim_faults_corrected_total counter\n")
	fmt.Fprintf(w, "ipim_faults_corrected_total %d\n", mt.faultsCorrected)
	fmt.Fprintf(w, "# HELP ipim_faults_uncorrected_total Injected DRAM read errors detected but not corrected.\n")
	fmt.Fprintf(w, "# TYPE ipim_faults_uncorrected_total counter\n")
	fmt.Fprintf(w, "ipim_faults_uncorrected_total %d\n", mt.faultsUncorrected)
	fmt.Fprintf(w, "# HELP ipim_request_retries_total Pooled runs retried after a transient injected fault.\n")
	fmt.Fprintf(w, "# TYPE ipim_request_retries_total counter\n")
	fmt.Fprintf(w, "ipim_request_retries_total %d\n", mt.retries)
	if mt.journalPending != nil {
		fmt.Fprintf(w, "# HELP ipim_jobs_resumed_total Plane runs resumed from the checkpoint journal after a crash.\n")
		fmt.Fprintf(w, "# TYPE ipim_jobs_resumed_total counter\n")
		fmt.Fprintf(w, "ipim_jobs_resumed_total %d\n", mt.jobsResumed)
		fmt.Fprintf(w, "# HELP ipim_checkpoint_writes_total Checkpoints written to the crash-recovery journal.\n")
		fmt.Fprintf(w, "# TYPE ipim_checkpoint_writes_total counter\n")
		fmt.Fprintf(w, "ipim_checkpoint_writes_total %d\n", mt.ckptWrites)
		fmt.Fprintf(w, "# HELP ipim_checkpoint_bytes Total bytes written to the crash-recovery journal.\n")
		fmt.Fprintf(w, "# TYPE ipim_checkpoint_bytes counter\n")
		fmt.Fprintf(w, "ipim_checkpoint_bytes %d\n", mt.ckptBytes)
		fmt.Fprintf(w, "# HELP ipim_checkpoint_journal_pending Journal entries awaiting a resuming request.\n")
		fmt.Fprintf(w, "# TYPE ipim_checkpoint_journal_pending gauge\n")
		fmt.Fprintf(w, "ipim_checkpoint_journal_pending %d\n", mt.journalPending())
	}
	if mt.recoveryBacklog != nil {
		fmt.Fprintf(w, "# HELP ipim_recovery_backlog Boot-time journal entries still awaiting resume (holds /readyz at 503 until drained or the grace expires).\n")
		fmt.Fprintf(w, "# TYPE ipim_recovery_backlog gauge\n")
		fmt.Fprintf(w, "ipim_recovery_backlog %d\n", mt.recoveryBacklog())
	}
	if mt.degraded != nil {
		v := 0
		if mt.degraded() {
			v = 1
		}
		fmt.Fprintf(w, "# HELP ipim_degraded Degraded mode: shedding load due to uncorrected-fault pressure.\n")
		fmt.Fprintf(w, "# TYPE ipim_degraded gauge\n")
		fmt.Fprintf(w, "ipim_degraded %d\n", v)
	}

	fmt.Fprintf(w, "# HELP ipim_streams_total Multi-frame streams completed on /v1/stream.\n")
	fmt.Fprintf(w, "# TYPE ipim_streams_total counter\n")
	fmt.Fprintf(w, "ipim_streams_total %d\n", mt.streams)
	fmt.Fprintf(w, "# HELP ipim_stream_frames_total Output frames delivered on /v1/stream.\n")
	fmt.Fprintf(w, "# TYPE ipim_stream_frames_total counter\n")
	fmt.Fprintf(w, "ipim_stream_frames_total %d\n", mt.streamFrames)

	fmt.Fprintf(w, "# HELP ipim_simulated_cycles_total Accelerator cycles simulated for served requests.\n")
	fmt.Fprintf(w, "# TYPE ipim_simulated_cycles_total counter\n")
	fmt.Fprintf(w, "ipim_simulated_cycles_total %d\n", mt.simCycles)
	fmt.Fprintf(w, "# HELP ipim_simulated_energy_picojoules_total Simulated accelerator energy for served requests.\n")
	fmt.Fprintf(w, "# TYPE ipim_simulated_energy_picojoules_total counter\n")
	fmt.Fprintf(w, "ipim_simulated_energy_picojoules_total %g\n", mt.simEnergyPJ)

	if mt.hostSnapshot != nil {
		reqs, in, out, ns := mt.hostSnapshot()
		fmt.Fprintf(w, "# HELP ipim_host_offloads_total Requests offloaded over the modeled host bus.\n")
		fmt.Fprintf(w, "# TYPE ipim_host_offloads_total counter\n")
		fmt.Fprintf(w, "ipim_host_offloads_total %d\n", reqs)
		fmt.Fprintf(w, "# HELP ipim_host_bytes_total Payload bytes over the modeled host bus, by direction.\n")
		fmt.Fprintf(w, "# TYPE ipim_host_bytes_total counter\n")
		fmt.Fprintf(w, "ipim_host_bytes_total{direction=\"in\"} %d\n", in)
		fmt.Fprintf(w, "ipim_host_bytes_total{direction=\"out\"} %d\n", out)
		fmt.Fprintf(w, "# HELP ipim_host_transfer_nanoseconds_total Simulated host bus time.\n")
		fmt.Fprintf(w, "# TYPE ipim_host_transfer_nanoseconds_total counter\n")
		fmt.Fprintf(w, "ipim_host_transfer_nanoseconds_total %d\n", ns)
	}

	fmt.Fprintf(w, "# HELP ipim_process_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE ipim_process_uptime_seconds gauge\n")
	fmt.Fprintf(w, "ipim_process_uptime_seconds %g\n", time.Since(mt.start).Seconds())
}

// formatBound renders a histogram bound the way Prometheus clients do
// (shortest exact decimal).
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}
