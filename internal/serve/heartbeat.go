package serve

// Fleet worker mode: when Config.RouterURL is set the server announces
// itself to the ipim-router and keeps a heartbeat going. The beat is a
// push of the worker's own health verdict — the same one /readyz
// serves — so the router's ring tracks readiness without probing every
// worker on every request; the router's TTL sweep (and its mark-down
// on proxy errors) is the backstop for a worker that dies between
// beats. State names are the fleet registry's vocabulary: "ready"
// joins the ring, everything else leaves it.

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// heartbeater runs the registration loop of fleet worker mode.
type heartbeater struct {
	stop chan struct{}
	done chan struct{}
}

// startHeartbeat validates the fleet flags and launches the beat loop.
func (s *Server) startHeartbeat() error {
	if s.cfg.AdvertiseAddr == "" {
		return fmt.Errorf("serve: fleet worker mode needs an advertise address (RouterURL is set, AdvertiseAddr is empty)")
	}
	for _, raw := range []string{s.cfg.RouterURL, s.cfg.AdvertiseAddr} {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("serve: fleet worker mode: %q is not an absolute URL", raw)
		}
	}
	hb := &heartbeater{stop: make(chan struct{}), done: make(chan struct{})}
	s.heartbeat = hb
	go s.heartbeatLoop(hb)
	return nil
}

// stopAndWait sends the final "draining" beat and joins the loop. Safe
// on a nil receiver (standalone mode) and safe to call twice.
func (hb *heartbeater) stopAndWait() {
	if hb == nil {
		return
	}
	select {
	case <-hb.stop:
	default:
		close(hb.stop)
	}
	<-hb.done
}

// workerStateName is the health verdict the heartbeat advertises —
// the /readyz decision tree, named.
func (s *Server) workerStateName() string {
	switch {
	case s.isDraining():
		return "draining"
	default:
		if _, shedding := s.degrade.active(); shedding {
			return "degraded"
		}
		if s.recovery.backlog() > 0 {
			return "backlog"
		}
		return "ready"
	}
}

// heartbeatLoop beats until stopped, then reports "draining" so the
// router rehashes this worker's keys before the pool drains.
func (s *Server) heartbeatLoop(hb *heartbeater) {
	defer close(hb.done)
	client := &http.Client{Timeout: 2 * s.cfg.HeartbeatInterval}
	beat := func(state string) {
		u := fmt.Sprintf("%s/fleet/register?addr=%s&state=%s",
			s.cfg.RouterURL, url.QueryEscape(s.cfg.AdvertiseAddr), url.QueryEscape(state))
		resp, err := client.Post(u, "text/plain", nil)
		if err != nil {
			s.cfg.Logger.Printf("fleet: heartbeat to %s failed: %v", s.cfg.RouterURL, err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	beat(s.workerStateName())
	tick := time.NewTicker(s.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-hb.stop:
			beat("draining")
			return
		case <-tick.C:
			beat(s.workerStateName())
		}
	}
}
