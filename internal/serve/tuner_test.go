package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ipim"
	"ipim/internal/autotune"
)

// postProcess issues one /v1/process request and returns the response
// body and the X-Ipim-Schedule header.
func postProcess(t *testing.T, ts *httptest.Server, workload string, body []byte) ([]byte, string) {
	t.Helper()
	resp, err := http.Post(processURL(ts.URL, workload, ""), "image/x-portable-graymap",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	return out, resp.Header.Get("X-Ipim-Schedule")
}

// tuneStatus fetches and decodes GET /v1/tune.
func tuneStatus(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/tune")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/tune: status %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitForTuned polls until a request for the workload is served with
// the tuned schedule, returning that response body.
func waitForTuned(t *testing.T, ts *httptest.Server, workload string, body []byte) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		out, sched := postProcess(t, ts, workload, body)
		if sched == "tuned" {
			return out
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("no request observed X-Ipim-Schedule: tuned before the deadline")
	return nil
}

// TestBackgroundTuningSoak is the PR acceptance soak: a request stream
// observes X-Ipim-Schedule: default first, then tuned once the
// background search lands — with bit-identical pixel output before and
// after the artifact swap.
func TestBackgroundTuningSoak(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.TuneWorkers = 2
		c.TuneMargin = 1.0 // swap on any non-regression: the test must always converge
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := pgmBody(t, 32, 16)

	first, sched := postProcess(t, ts, "GaussianBlur", body)
	if sched != "default" {
		t.Fatalf("first request schedule = %q, want default", sched)
	}
	tuned := waitForTuned(t, ts, "GaussianBlur", body)
	if !bytes.Equal(first, tuned) {
		t.Fatal("tuned artifact changed the pixel output")
	}

	status := tuneStatus(t, ts)
	if status["enabled"] != true {
		t.Fatalf("/v1/tune enabled = %v", status["enabled"])
	}
	st := status["status"].(map[string]any)
	if st["completed"].(float64) < 1 || st["improved"].(float64) < 1 {
		t.Fatalf("tuner status = %+v, want >=1 completed and improved", st)
	}
	if recs := status["records"].([]any); len(recs) != 1 {
		t.Fatalf("store has %d records, want 1", len(recs))
	}

	// The upgrade shows up across the observability surface too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ipim_tune_jobs_total{outcome=\"improved\"} 1",
		"ipim_artifact_cache_swaps_total 1",
		"ipim_tune_improvement_ratio",
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTuningDisabledByDefault: without TuneWorkers every request stays
// on the default schedule and /v1/tune reports disabled.
func TestTuningDisabledByDefault(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	_, sched := postProcess(t, ts, "GaussianBlur", pgmBody(t, 32, 16))
	if sched != "default" {
		t.Fatalf("schedule = %q, want default", sched)
	}
	status := tuneStatus(t, ts)
	if status["enabled"] != false {
		t.Fatalf("/v1/tune enabled = %v, want false", status["enabled"])
	}
}

// TestTuneDBPersistence: a second server opening the same journal
// reuses the recorded winner — the first request after the warm boot
// upgrades without a fresh search (evaluated count stays put).
func TestTuneDBPersistence(t *testing.T) {
	db := filepath.Join(t.TempDir(), "tune.jsonl")
	body := pgmBody(t, 32, 16)

	s1 := testServer(t, func(c *Config) {
		c.TuneWorkers = 2
		c.TuneMargin = 1.0
		c.TuneDB = db
	})
	ts1 := httptest.NewServer(s1)
	postProcess(t, ts1, "GaussianBlur", body)
	waitForTuned(t, ts1, "GaussianBlur", body)
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s1.Shutdown(ctx)
	cancel()

	s2 := testServer(t, func(c *Config) {
		c.TuneWorkers = 2
		c.TuneMargin = 1.0
		c.TuneDB = db
	})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	// The journal is loaded at boot: /v1/tune lists the record before
	// any request arrives.
	status := tuneStatus(t, ts2)
	recs, ok := status["records"].([]any)
	if !ok || len(recs) != 1 {
		t.Fatalf("warm boot exposes %d records, want 1", len(recs))
	}
	// And the first key upgrade comes straight from the store.
	waitForTuned(t, ts2, "GaussianBlur", body)
	st := tuneStatus(t, ts2)["status"].(map[string]any)
	if st["improved"].(float64) < 1 {
		t.Fatalf("warm-boot tuner status = %+v, want >=1 improved", st)
	}
}

// TestTunerSkipsHistogram: histogram workloads have no image output to
// verify, so they are never enqueued.
func TestTunerSkipsHistogram(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.TuneWorkers = 1
		c.TuneMargin = 1.0
	})
	wl, err := ipim.WorkloadByName("Histogram")
	if err != nil {
		t.Fatal(err)
	}
	s.tuner.maybeEnqueue(cacheKey{Workload: wl.Name, W: 32, H: 16, Opts: ipim.Opt}, wl)
	if n := s.tuner.snapshot().Queued; n != 0 {
		t.Fatalf("histogram workload enqueued (%d queued)", n)
	}
}

// TestTunerSingleFlight: repeated enqueues of one key admit one job.
func TestTunerSingleFlight(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.TuneWorkers = 1
		c.TuneMargin = 1.0
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := pgmBody(t, 32, 16)
	for i := 0; i < 4; i++ {
		postProcess(t, ts, "GaussianBlur", body)
	}
	waitForTuned(t, ts, "GaussianBlur", body)
	st := s.tuner.snapshot()
	if st.Completed != 1 || st.Dropped != 0 {
		t.Fatalf("tuner ran %d jobs (%d dropped), want exactly 1", st.Completed, st.Dropped)
	}
}

// TestCacheSwap covers the artifact swap paths directly: resident key,
// in-flight key (left alone), and evicted key (re-inserted).
func TestCacheSwap(t *testing.T) {
	c := newArtifactCache(2)
	key := cacheKey{Workload: "w", W: 32, H: 16, Opts: ipim.Opt}
	def := &ipim.Artifact{}
	if _, _, _, err := c.get(key, func() (*ipim.Artifact, error) { return def, nil }); err != nil {
		t.Fatal(err)
	}

	tunedArt := &ipim.Artifact{}
	cand := &autotune.Candidate{TileW: 16, TileH: 8}
	c.swap(key, tunedArt, cand)
	art, sched, hit, err := c.get(key, func() (*ipim.Artifact, error) {
		t.Fatal("swap lost the entry: recompile triggered")
		return nil, nil
	})
	if err != nil || !hit || art != tunedArt || sched != cand {
		t.Fatalf("post-swap get = (%p, %v, %v, %v), want the tuned artifact", art, sched, hit, err)
	}
	if st := c.stats(); st.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", st.Swaps)
	}

	// Swapping a never-resident (or evicted) key inserts it.
	other := cacheKey{Workload: "w2", W: 32, H: 16, Opts: ipim.Opt}
	c.swap(other, tunedArt, cand)
	if _, sched, hit, _ := c.get(other, nil); !hit || sched != cand {
		t.Fatal("swap did not insert the evicted key")
	}

	// An in-flight compile is left alone.
	inflight := cacheKey{Workload: "w3", W: 32, H: 16, Opts: ipim.Opt}
	started, unblock := make(chan struct{}), make(chan struct{})
	go c.get(inflight, func() (*ipim.Artifact, error) {
		close(started)
		<-unblock
		return def, nil
	})
	<-started
	c.swap(inflight, tunedArt, cand)
	close(unblock)
	if art, sched, _, _ := c.get(inflight, nil); art != def || sched != nil {
		t.Fatal("swap raced an in-flight compile")
	}
}
