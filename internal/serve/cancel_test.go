package serve

// End-to-end cancellation, budget and watchdog tests: hostile SIMB
// programs hit the HTTP surface and every worker must come back.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ipim"
)

// simbInfinite never reaches its sync: the canonical hostile program a
// raw-assembly client can submit.
const simbInfinite = `
seti_crf c0, =loop
loop:
calc_crf iadd c1, c1, #1
jump c0
sync 1
`

// simbFinite is a short counted loop that terminates on its own.
const simbFinite = `
seti_crf c1, #32
seti_crf c0, =loop
loop:
calc_crf isub c1, c1, #1
cjump c1, c0
sync 1
`

func mustAssemble(t *testing.T, src string) *ipim.Program {
	t.Helper()
	p, err := ipim.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

func postSimb(t *testing.T, s *Server, query, src string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	url := "/v1/simb"
	if query != "" {
		url += "?" + query
	}
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(src))
	s.ServeHTTP(rec, req)
	return rec
}

func metricsBody(t *testing.T, s *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	return rec.Body.String()
}

// TestSimbNeverTerminatingIsCancelled is the headline e2e contract: a
// never-terminating SIMB program POSTed with a 100ms deadline comes
// back as an error promptly, the (single) worker returns to service
// for the next request, and ipim_jobs_cancelled_total increments.
func TestSimbNeverTerminatingIsCancelled(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Workers = 1
		c.WatchdogInterval = 10 * time.Millisecond
	})

	t0 := time.Now()
	rec := postSimb(t, s, "timeout=100ms", simbInfinite)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// The worker must free itself via the cooperative interrupt — wait
	// a few watchdog intervals, then demand it serves a real request.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.idleWorkers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.pool.idleWorkers() != 1 {
		t.Fatal("worker never returned to service after cancellation")
	}
	rec = postSimb(t, s, "", simbFinite)
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request: %d (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), `"cycles"`) {
		t.Errorf("follow-up response missing stats: %s", rec.Body.String())
	}

	body := metricsBody(t, s)
	if v := metricValue(t, body, "ipim_jobs_cancelled_total"); v < 1 {
		t.Errorf("ipim_jobs_cancelled_total = %v, want >= 1", v)
	}
	if v := metricValue(t, body, "ipim_worker_busy_seconds"); v <= 0 {
		t.Errorf("ipim_worker_busy_seconds = %v, want > 0", v)
	}
}

// TestSimbCycleBudget504: a hostile program under a max_cycles budget
// fails 504 with the budget error and increments
// ipim_cycle_budget_exceeded_total; the worker serves the next request.
func TestSimbCycleBudget504(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1 })
	rec := postSimb(t, s, "max_cycles=2000", simbInfinite)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "budget") {
		t.Errorf("error body should name the budget: %s", rec.Body.String())
	}
	if rec = postSimb(t, s, "", simbFinite); rec.Code != http.StatusOK {
		t.Fatalf("follow-up request: %d (%s)", rec.Code, rec.Body.String())
	}
	if v := metricValue(t, metricsBody(t, s), "ipim_cycle_budget_exceeded_total"); v != 1 {
		t.Errorf("ipim_cycle_budget_exceeded_total = %v, want 1", v)
	}
}

// TestServerMaxCyclesCapsRequestBudget: the -max-cycles server cap
// clamps a client's max_cycles — asking for a huge budget on a server
// capped at 2000 cycles still aborts.
func TestServerMaxCyclesCapsRequestBudget(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1; c.MaxCycles = 2000 })
	rec := postSimb(t, s, "max_cycles=1000000000000", simbInfinite)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	// And the cap applies even with no client parameter at all.
	rec = postSimb(t, s, "", simbInfinite)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status without max_cycles = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	// Bad values are rejected up front.
	for _, bad := range []string{"max_cycles=0", "max_cycles=-5", "max_cycles=nope"} {
		if rec = postSimb(t, s, bad, simbFinite); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", bad, rec.Code)
		}
	}
}

// TestProcessMaxCyclesBudget: the budget also guards the workload path
// (/v1/process), where the program is compiler-generated but the
// budget still bounds simulated work per request.
func TestProcessMaxCyclesBudget(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1 })
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, processURL("", "Brighten", "max_cycles=10"),
		bytes.NewReader(pgmBody(t, 32, 16)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
	// Without the starvation budget the same request succeeds on the
	// same (post-abort) worker.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up process: %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestRunningJobDeadlineFreesWorker is the queued-vs-running asymmetry
// regression (pool-level): a job whose context expires while it is
// RUNNING — not just queued — must free its worker via the cooperative
// interrupt, and the abort must be counted.
func TestRunningJobDeadlineFreesWorker(t *testing.T) {
	p := newTestPool(t, 1, 4)
	prog := mustAssemble(t, simbInfinite)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := p.submit(ctx, func(ctx context.Context, m *ipim.Machine) error {
		_, err := m.RunSameContext(ctx, prog)
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit = %v, want DeadlineExceeded", err)
	}
	// submit returned at the deadline; the worker unwinds on its own
	// shortly after (interrupt hook latency, far under a second).
	deadline := time.Now().Add(10 * time.Second)
	for p.idleWorkers() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.idleWorkers() != 1 {
		t.Fatal("worker still busy after running job's context expired")
	}
	if p.cancelledCount() < 1 {
		t.Errorf("cancelledCount = %d, want >= 1", p.cancelledCount())
	}
	if err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil }); err != nil {
		t.Fatalf("pool dead after mid-run cancellation: %v", err)
	}
}

// TestPanicMidSimulationResetsMachine is the panic-isolation
// regression: a worker that panics AFTER real simulated work (clock
// advanced, DRAM warm) is Reset by the recovery path, so the same
// worker's next run is bit-identical to a factory-fresh machine — the
// strongest observable proof the reset actually rewound timing state.
func TestPanicMidSimulationResetsMachine(t *testing.T) {
	p := newTestPool(t, 1, 4)
	finite := mustAssemble(t, simbFinite)

	err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error {
		if _, err := m.RunSame(finite); err != nil {
			return err
		}
		panic("mid-simulation failure")
	})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("submit = %v, want recovered panic error", err)
	}
	if p.panicCount() != 1 {
		t.Fatalf("panicCount = %d, want 1", p.panicCount())
	}

	var got ipim.Stats
	err = p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error {
		st, err := m.RunSame(finite)
		got = st
		return err
	})
	if err != nil {
		t.Fatalf("same worker after panic: %v", err)
	}
	fresh, err := ipim.NewMachine(ipim.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	fresh.SetParallelism(1)
	want, err := fresh.RunSame(finite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("post-panic run differs from a fresh machine:\nfresh:      %+v\npost-panic: %+v", want, got)
	}
}

// TestCancellationSoak hammers the server with the adversarial mix —
// deadline cancellations, budget aborts and panics, serial and
// parallel — and then demands every worker back in service with the
// determinism contract intact for completed runs.
func TestCancellationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const workers = 2
	s := testServer(t, func(c *Config) {
		c.Workers = workers
		c.QueueCap = 16
		c.WatchdogInterval = 10 * time.Millisecond
	})

	hostile := []func(i int){
		func(i int) { postSimb(t, s, "timeout=15ms", simbInfinite) },
		func(i int) { postSimb(t, s, "max_cycles=1500", simbInfinite) },
		func(i int) {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost,
				processURL("", "Brighten", "max_cycles=5"), bytes.NewReader(pgmBody(t, 32, 16))))
		},
		func(i int) {
			s.pool.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error {
				panic(fmt.Sprintf("soak panic %d", i))
			})
		},
	}
	// Serial pass.
	for i := 0; i < 12; i++ {
		hostile[i%len(hostile)](i)
	}
	// Parallel pass: hostile requests race each other for the workers.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hostile[i%len(hostile)](i)
		}(i)
	}
	wg.Wait()

	// Every worker must return to service.
	deadline := time.Now().Add(30 * time.Second)
	for s.pool.idleWorkers() < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if idle := s.pool.idleWorkers(); idle != workers {
		t.Fatalf("only %d/%d workers returned to service after the soak", idle, workers)
	}

	// Completed runs still obey the determinism contract. Every soak
	// job aborted (cancel, budget or panic), so every machine was Reset
	// — the first post-soak run must be bit-identical to the same
	// request on a factory-fresh server. (Later runs hit warm machines,
	// whose clocks legitimately persist; only aborts rewind them.)
	fresh := testServer(t, func(c *Config) { c.Workers = 1 })
	want := httptest.NewRecorder()
	fresh.ServeHTTP(want, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if want.Code != http.StatusOK {
		t.Fatalf("fresh reference request: %d (%s)", want.Code, want.Body.String())
	}
	for i := 0; i < workers+1; i++ {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
			bytes.NewReader(pgmBody(t, 32, 16))))
		if rec.Code != http.StatusOK {
			t.Fatalf("post-soak request %d: %d (%s)", i, rec.Code, rec.Body.String())
		}
		if i == 0 {
			if got := rec.Header().Get("X-Ipim-Cycles"); got != want.Header().Get("X-Ipim-Cycles") {
				t.Errorf("post-soak cold run reported %s cycles, fresh server %s — Reset lost determinism",
					got, want.Header().Get("X-Ipim-Cycles"))
			}
			if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
				t.Error("post-soak output differs from the fresh-server output")
			}
		}
	}
}
