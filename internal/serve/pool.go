package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ipim"
)

// Errors the pool reports to the HTTP layer (mapped to 429/503 there).
var (
	// errQueueFull means the bounded dispatch queue rejected the job:
	// the client should back off and retry (HTTP 429).
	errQueueFull = errors.New("serve: dispatch queue full")
	// errDraining means the pool no longer accepts work because the
	// process is shutting down (HTTP 503).
	errDraining = errors.New("serve: pool draining")
)

// job is one unit of simulator work: run fn on a pooled machine.
type job struct {
	ctx  context.Context
	fn   func(m *ipim.Machine) error
	done chan error // buffered; the worker never blocks on it
}

// pool is a fixed set of ipim.Machine workers fed by a bounded queue.
// Each worker goroutine owns exactly one Machine, which upholds the
// machine concurrency contract (a Machine is single-run-at-a-time;
// distinct Machines run concurrently — see ipim.NewMachine). The
// bounded queue gives backpressure: submit never blocks the caller on
// a full queue, it fails fast with errQueueFull.
type pool struct {
	queue chan *job

	// mu serializes submits against close(queue): senders hold the
	// read side, drain takes the write side before closing.
	mu     sync.RWMutex
	closed bool

	workers int
	wg      sync.WaitGroup

	depth  atomic.Int64 // jobs queued or running
	panics atomic.Int64 // recovered worker panics
}

// newPool builds the machines and starts the workers. parallelism is
// each machine's per-phase simulation worker bound (0 = GOMAXPROCS,
// 1 = serial); results are identical either way, the knob only trades
// single-request latency against cross-request throughput when several
// pooled machines compete for cores.
func newPool(cfg ipim.Config, workers, queueCap, parallelism int, plan *ipim.FaultPlan) (*pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("serve: pool needs at least one worker, got %d", workers)
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &pool{queue: make(chan *job, queueCap), workers: workers}
	for i := 0; i < workers; i++ {
		m, err := ipim.NewMachine(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: build machine %d: %w", i, err)
		}
		m.SetParallelism(parallelism)
		m.SetFaultPlan(plan)
		p.wg.Add(1)
		go p.worker(m)
	}
	return p, nil
}

// submit enqueues fn and waits for its result or the context. If the
// queue is full it fails immediately with errQueueFull; if the context
// expires while the job is queued the job is skipped by the worker and
// the caller gets the context error (the machine is never occupied by
// a request nobody is waiting for).
func (p *pool) submit(ctx context.Context, fn func(m *ipim.Machine) error) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan error, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errDraining
	}
	select {
	case p.queue <- j:
		p.depth.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return errQueueFull
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		// The worker will observe the expired context and drop the
		// job without running it (or its result, if it already ran).
		return ctx.Err()
	}
}

// worker owns one machine for the life of the pool and drains the
// queue until drain closes it.
func (p *pool) worker(m *ipim.Machine) {
	defer p.wg.Done()
	for j := range p.queue {
		j.done <- p.runJob(m, j)
		p.depth.Add(-1)
	}
}

// runJob executes one job with panic isolation: a panicking workload
// is converted into an error for that request only, and the worker
// (and its machine) stays in service.
func (p *pool) runJob(m *ipim.Machine, j *job) (err error) {
	if err := j.ctx.Err(); err != nil {
		return err // expired while queued: don't occupy the machine
	}
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = fmt.Errorf("serve: worker recovered from panic: %v", r)
		}
	}()
	return j.fn(m)
}

// queueDepth returns the number of jobs queued or running.
func (p *pool) queueDepth() int64 { return p.depth.Load() }

// panicCount returns the number of recovered worker panics.
func (p *pool) panicCount() int64 { return p.panics.Load() }

// drain stops accepting work, lets queued jobs finish, and waits for
// every worker to exit or the context to expire. It is idempotent.
func (p *pool) drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
}
