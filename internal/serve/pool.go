package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"ipim"
)

// Errors the pool reports to the HTTP layer (mapped to 429/503 there).
var (
	// errQueueFull means the bounded dispatch queue rejected the job:
	// the client should back off and retry (HTTP 429).
	errQueueFull = errors.New("serve: dispatch queue full")
	// errDraining means the pool no longer accepts work because the
	// process is shutting down (HTTP 503).
	errDraining = errors.New("serve: pool draining")
	// errWorkerPanic marks a job that died in a recovered worker panic.
	// With a checkpoint journal the handler treats it like a transient
	// fault and re-enqueues the job, which resumes from the last
	// journaled barrier instead of restarting.
	errWorkerPanic = errors.New("serve: worker recovered from panic")
)

// job is one unit of simulator work: run fn on a pooled machine.
type job struct {
	ctx  context.Context
	fn   func(ctx context.Context, m *ipim.Machine) error
	done chan error // buffered; the worker never blocks on it
}

// workerState is one worker's liveness record, written by the worker
// and sampled by the watchdog and the metrics renderer.
type workerState struct {
	// busySince is the wall-clock nanosecond the worker picked up its
	// current job, or 0 when idle.
	busySince atomic.Int64
}

// pool is a fixed set of ipim.Machine workers fed by a bounded queue.
// Each worker goroutine owns exactly one Machine, which upholds the
// machine concurrency contract (a Machine is single-run-at-a-time;
// distinct Machines run concurrently — see ipim.NewMachine). The
// bounded queue gives backpressure: submit never blocks the caller on
// a full queue, it fails fast with errQueueFull.
type pool struct {
	queue chan *job

	// mu serializes submits against close(queue): senders hold the
	// read side, drain takes the write side before closing.
	mu     sync.RWMutex
	closed bool

	workers int
	state   []workerState // indexed by worker id
	wg      sync.WaitGroup

	depth          atomic.Int64 // jobs queued or running
	panics         atomic.Int64 // recovered worker panics
	cancelled      atomic.Int64 // jobs aborted by context expiry
	budgetExceeded atomic.Int64 // jobs aborted by the cycle budget
	busyNS         atomic.Int64 // cumulative busy time of finished jobs

	// Hang watchdog (see watchdog).
	interval   time.Duration
	stuckAfter time.Duration
	logger     *log.Logger
	stopWatch  chan struct{}
}

// newPool builds the machines and starts the workers plus the
// watchdog. parallelism is each machine's per-phase simulation worker
// bound (0 = GOMAXPROCS, 1 = serial); results are identical either
// way, the knob only trades single-request latency against
// cross-request throughput when several pooled machines compete for
// cores. watchdog is the stuck-worker scan period; logger receives its
// reports.
func newPool(cfg ipim.Config, workers, queueCap, parallelism int, plan *ipim.FaultPlan, watchdog time.Duration, logger *log.Logger) (*pool, error) {
	if workers < 1 {
		return nil, fmt.Errorf("serve: pool needs at least one worker, got %d", workers)
	}
	if queueCap < 0 {
		queueCap = 0
	}
	p := &pool{
		queue:     make(chan *job, queueCap),
		workers:   workers,
		state:     make([]workerState, workers),
		interval:  watchdog,
		logger:    logger,
		stopWatch: make(chan struct{}),
	}
	// A worker is "stuck" once it has been busy for many watchdog
	// periods: long enough that every sane request deadline has passed,
	// short enough that a wedged simulation is reported while the
	// operator can still correlate it with the offending request.
	p.stuckAfter = 20 * watchdog
	for i := 0; i < workers; i++ {
		m, err := ipim.NewMachine(cfg)
		if err != nil {
			return nil, fmt.Errorf("serve: build machine %d: %w", i, err)
		}
		m.SetParallelism(parallelism)
		m.SetFaultPlan(plan)
		p.wg.Add(1)
		go p.worker(i, m)
	}
	go p.watchdog()
	return p, nil
}

// submit enqueues fn and waits for its result or the context.
//
// Contract: fn receives the job's context and MUST propagate it into
// the simulator (ipim.RunContext and friends). That closes the
// queued-vs-running asymmetry: a context that expires while the job is
// queued makes the worker skip it entirely, and a context that expires
// while the job is RUNNING interrupts the simulation cooperatively —
// the worker is reclaimed within the simulator's interrupt interval,
// not after the doomed run completes. Either way submit itself returns
// as soon as the context expires; the machine is never occupied by a
// request nobody is waiting for beyond that interrupt latency. If the
// queue is full it fails immediately with errQueueFull.
func (p *pool) submit(ctx context.Context, fn func(ctx context.Context, m *ipim.Machine) error) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan error, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errDraining
	}
	select {
	case p.queue <- j:
		p.depth.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return errQueueFull
	}
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		// The worker observes the expired context: a queued job is
		// dropped without running, a running one is interrupted by the
		// simulator's cancellation hooks and the worker returns to
		// service on its own.
		return ctx.Err()
	}
}

// submitWait is submit for jobs whose fn writes to resources the
// caller owns — e.g. an HTTP response being streamed frame by frame.
// It never returns while fn may still be running: context expiry still
// interrupts the run cooperatively through fn's ctx (and a context
// that expires while the job is queued makes the worker skip it), but
// submitWait waits for the worker to hand the job back instead of
// abandoning it, so the caller can safely reclaim whatever fn was
// writing to.
func (p *pool) submitWait(ctx context.Context, fn func(ctx context.Context, m *ipim.Machine) error) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan error, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errDraining
	}
	select {
	case p.queue <- j:
		p.depth.Add(1)
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return errQueueFull
	}
	return <-j.done
}

// worker owns one machine for the life of the pool and drains the
// queue until drain closes it.
func (p *pool) worker(id int, m *ipim.Machine) {
	defer p.wg.Done()
	st := &p.state[id]
	for j := range p.queue {
		start := time.Now()
		st.busySince.Store(start.UnixNano())
		err := p.runJob(m, j)
		st.busySince.Store(0)
		p.busyNS.Add(time.Since(start).Nanoseconds())
		j.done <- err
		p.depth.Add(-1)
	}
}

// runJob executes one job with panic isolation: a panicking workload
// is converted into an error for that request only, the machine is
// Reset (a panic can leave it mid-run), and the worker stays in
// service. Cancellation and budget aborts are tallied here so the
// watchdog metrics see every abort regardless of which handler
// submitted the job.
func (p *pool) runJob(m *ipim.Machine, j *job) (err error) {
	if err := j.ctx.Err(); err != nil {
		p.cancelled.Add(1)
		return err // expired while queued: don't occupy the machine
	}
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			m.Reset()
			err = fmt.Errorf("%w: %v", errWorkerPanic, r)
			return
		}
		switch {
		case err == nil:
		case errors.Is(err, ipim.ErrCycleBudget):
			p.budgetExceeded.Add(1)
		case errors.Is(err, ipim.ErrCancelled), errors.Is(err, context.Canceled),
			errors.Is(err, context.DeadlineExceeded):
			p.cancelled.Add(1)
		}
	}()
	return j.fn(j.ctx, m)
}

// watchdog periodically scans the workers and reports any that have
// been busy on one job longer than stuckAfter. With cooperative
// cancellation threaded through every run this should never fire; if
// it does, something is wedged below the interrupt hooks (or a job was
// submitted with a non-expiring context) and the log line is the
// operator's signal.
func (p *pool) watchdog() {
	if p.interval <= 0 {
		return
	}
	tick := time.NewTicker(p.interval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopWatch:
			return
		case now := <-tick.C:
			for i := range p.state {
				since := p.state[i].busySince.Load()
				if since == 0 {
					continue
				}
				if busy := now.Sub(time.Unix(0, since)); busy > p.stuckAfter {
					p.logger.Printf("watchdog: worker=%d busy=%s exceeds stuck threshold %s",
						i, busy.Round(time.Millisecond), p.stuckAfter)
				}
			}
		}
	}
}

// queueDepth returns the number of jobs queued or running.
func (p *pool) queueDepth() int64 { return p.depth.Load() }

// panicCount returns the number of recovered worker panics.
func (p *pool) panicCount() int64 { return p.panics.Load() }

// cancelledCount returns the number of jobs aborted by context expiry
// (while queued or mid-run).
func (p *pool) cancelledCount() int64 { return p.cancelled.Load() }

// budgetExceededCount returns the number of jobs aborted by the
// execution budget.
func (p *pool) budgetExceededCount() int64 { return p.budgetExceeded.Load() }

// busySeconds returns the cumulative wall-clock time workers have
// spent running jobs, including time on jobs still in flight.
func (p *pool) busySeconds() float64 {
	ns := p.busyNS.Load()
	now := time.Now().UnixNano()
	for i := range p.state {
		if since := p.state[i].busySince.Load(); since != 0 && now > since {
			ns += now - since
		}
	}
	return float64(ns) / 1e9
}

// idleWorkers returns how many workers are not running a job right now
// (readiness signal: 0 means every machine is occupied).
func (p *pool) idleWorkers() int {
	idle := 0
	for i := range p.state {
		if p.state[i].busySince.Load() == 0 {
			idle++
		}
	}
	return idle
}

// drain stops accepting work, lets queued jobs finish, stops the
// watchdog, and waits for every worker to exit or the context to
// expire. It is idempotent.
func (p *pool) drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
		close(p.stopWatch)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain timed out: %w", ctx.Err())
	}
}
