package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ipim"
)

// TestProcessRetriesTransientFaultThenSucceeds: an ExecFailFirst plan
// makes the first run on the (single) pooled machine fail with a
// transient fault; the handler's bounded retry reruns it on the same
// machine and the request still completes 200, reporting the retry in
// the response headers and the metrics.
func TestProcessRetriesTransientFaultThenSucceeds(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Workers = 1 // the retry must land on the machine that faulted
		c.Faults = &ipim.FaultPlan{Seed: 1, ExecFailFirst: 1}
		c.MaxRetries = 2
		c.RetryBackoff = time.Millisecond
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusOK {
		t.Fatalf("process with retryable fault = %d %s, want 200", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Ipim-Retries"); got != "1" {
		t.Errorf("X-Ipim-Retries = %q, want \"1\"", got)
	}
	if got := rec.Header().Get("X-Ipim-Faults-Corrected"); got != "0" {
		t.Errorf("X-Ipim-Faults-Corrected = %q, want \"0\"", got)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, "ipim_request_retries_total 1") {
		t.Errorf("metrics missing ipim_request_retries_total 1")
	}
}

// TestProcessTransientFaultWithRetriesDisabled: with retries disabled
// an unrecovered transient fault maps to 503 + Retry-After, telling
// the client the failure is worth retrying.
func TestProcessTransientFaultWithRetriesDisabled(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Workers = 1
		c.Faults = &ipim.FaultPlan{Seed: 1, ExecFailFirst: 1}
		c.MaxRetries = -1
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unrecovered transient fault = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 on transient fault must carry Retry-After")
	}
}

// TestDegradedModeShedsLoad: with every DRAM read injecting an
// uncorrectable error, one completed request trips the degraded-mode
// threshold; the next request is shed with 503 + Retry-After and the
// metrics report the degraded gauge and the fault counters.
func TestDegradedModeShedsLoad(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Faults = &ipim.FaultPlan{Seed: 3, DRAMBitFlipRate: 1, DRAMMultiBitFraction: 1}
		c.DegradeThreshold = 0.5
		c.DegradeWindow = 1
		c.DegradeCooldown = time.Minute
	})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request = %d %s, want 200", rec.Code, rec.Body.String())
	}
	unc, err := strconv.ParseInt(rec.Header().Get("X-Ipim-Faults-Uncorrected"), 10, 64)
	if err != nil || unc <= 0 {
		t.Fatalf("X-Ipim-Faults-Uncorrected = %q, want a positive count",
			rec.Header().Get("X-Ipim-Faults-Uncorrected"))
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request in degraded mode = %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("degraded 503 Retry-After = %q, want >= 1 second", rec.Header().Get("Retry-After"))
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "ipim_degraded 1") {
		t.Error("metrics missing ipim_degraded 1 while shedding")
	}
	for _, metric := range []string{"ipim_faults_injected_total", "ipim_faults_uncorrected_total"} {
		if metricValue(t, body, metric) <= 0 {
			t.Errorf("%s not positive under a rate-1 plan", metric)
		}
	}
}

// TestDegradedModeRecovers: after the cooldown elapses the server
// accepts work again (clock injected so the test doesn't sleep).
func TestDegradedModeRecovers(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.Faults = &ipim.FaultPlan{Seed: 3, DRAMBitFlipRate: 1, DRAMMultiBitFraction: 1}
		c.DegradeThreshold = 0.5
		c.DegradeWindow = 1
		c.DegradeCooldown = time.Minute
	})
	now := time.Now()
	s.degrade.now = func() time.Time { return now }

	post := func() int {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
			bytes.NewReader(pgmBody(t, 32, 16))))
		return rec.Code
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("first request = %d, want 200", code)
	}
	if code := post(); code != http.StatusServiceUnavailable {
		t.Fatalf("tripped request = %d, want 503", code)
	}
	now = now.Add(2 * time.Minute)
	if code := post(); code != http.StatusOK {
		t.Fatalf("request after cooldown = %d, want 200", code)
	}
}

// TestMetricsHistogramPerRoute pins the route-labeled exposition: each
// route owns its histogram series and no unlabeled series remains.
func TestMetricsHistogramPerRoute(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	// First scrape observes /healthz; its own latency lands in the
	// registry after rendering, so scrape twice.
	s.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/metrics", nil))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`ipim_request_seconds_count{route="/healthz"} 1`,
		`ipim_request_seconds_count{route="/metrics"} 1`,
		`ipim_request_seconds_bucket{route="/healthz",le="0.001"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "ipim_request_seconds") && !strings.Contains(line, `route="`) {
			t.Errorf("unlabeled histogram series survived: %q", line)
		}
	}
}
