package serve

// POST /v1/stream: multi-frame (video) processing. The body is a
// back-to-back concatenation of binary PGM frames sharing one
// geometry; the response streams the processed frames back in order,
// flushed one at a time. The point of the endpoint — versus N separate
// /v1/process calls — is amortization, mirroring the steady-state
// frame-pipeline model in internal/exp/frames.go:
//
//   - one artifact compile (or cache fetch) covers the whole stream;
//   - one pooled machine is held for the stream's duration, so frames
//     after the first run against already-loaded DRAM state
//     (per-frame stats are deltas — see cube.finishRun);
//   - host-transfer accounting is recorded once for the whole body,
//     the way a real host would batch frames across the bus.
//
// A failure after the first frame has been written cannot change the
// committed status line, so the handler aborts the connection instead
// (panic(http.ErrAbortHandler)); the router turns that into a failover
// and replays the remaining frames on another worker, byte-identical
// by the determinism contract.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ipim"
	"ipim/internal/pixel"
)

// errChaosStreamAbort is the injected mid-stream failure of the
// ChaosStreamAbortAfterFrames knob.
var errChaosStreamAbort = errors.New("serve: chaos: injected stream abort")

// SetStreamChaos re-arms the streaming chaos knob at runtime: the next
// stream aborts its connection after abortAfter output frames, once.
// Test hook for the fleet failover gate; never call it in production.
func (s *Server) SetStreamChaos(abortAfter int) {
	s.chaosStreamAbort.Store(int64(abortAfter))
	s.chaosStreamClaimed.Store(false)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if retryAfter, shedding := s.degrade.active(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		http.Error(w, "degraded: uncorrected-error rate above threshold", http.StatusServiceUnavailable)
		return
	}

	q := r.URL.Query()
	wlName := q.Get("workload")
	if wlName == "" {
		http.Error(w, "missing required query parameter: workload", http.StatusBadRequest)
		return
	}
	wl, err := ipim.WorkloadByName(wlName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if wl.Build().Pipe.Histogram {
		http.Error(w, fmt.Sprintf("workload %s reduces to bins, not an image; histogram pipelines are not streamable", wl.Name), http.StatusBadRequest)
		return
	}
	optName := q.Get("opts")
	if optName == "" {
		optName = "opt"
	}
	opts, err := ipim.OptionsByName(optName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	timeout, err := s.requestTimeout(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget, err := s.requestBudget(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	mode, err := requestMode(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget.Mode = mode
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	rawFrames, imgW, imgH, err := pixel.SplitPGMFrames(body, s.cfg.StreamMaxFrames)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	imgs := make([]*ipim.Image, len(rawFrames))
	for i, f := range rawFrames {
		if imgs[i], err = ipim.ReadPGM(bytes.NewReader(f)); err != nil {
			http.Error(w, fmt.Sprintf("stream frame %d: %v", i, err), http.StatusBadRequest)
			return
		}
	}

	// Compile once for the whole stream; the artifact is the unit the
	// router shards on, so every frame of this geometry lands here.
	key := cacheKey{Workload: wl.Name, W: imgW, H: imgH, Opts: opts}
	art, sched, hit, err := s.cache.get(key, func() (*ipim.Artifact, error) {
		cfg := s.cfg.Machine
		return ipim.Compile(&cfg, wl.Build().Pipe, imgW, imgH, opts)
	})
	if err != nil {
		http.Error(w, "compile: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.tuner.maybeEnqueue(key, wl)

	// Single-shot chaos claim: the first stream to arrive with a knob
	// armed takes the injection, every other stream runs clean.
	chaosAbort, chaosStall := 0, 0
	if a, st := int(s.chaosStreamAbort.Load()), s.cfg.ChaosStreamStallAfterFrames; a > 0 || st > 0 {
		if s.chaosStreamClaimed.CompareAndSwap(false, true) {
			chaosAbort, chaosStall = a, st
		}
	}

	h := w.Header()
	h.Set("Content-Type", "application/x-ipim-frames")
	h.Set("X-Ipim-Workload", wl.Name)
	h.Set("X-Ipim-Config", optName)
	h.Set("X-Ipim-Image", fmt.Sprintf("%dx%d", imgW, imgH))
	h.Set("X-Ipim-Stream-Frames", strconv.Itoa(len(imgs)))
	h.Set("X-Ipim-Cache", cacheLabel(hit))
	h.Set("X-Ipim-Schedule", scheduleLabel(sched))
	h.Set("X-Ipim-Mode", mode.String())
	// ResponseController unwraps the metrics recorder to reach the real
	// Flusher: each frame must hit the wire when it completes, both for
	// client latency and so a mid-stream abort leaves the delivered
	// prefix whole.
	rc := http.NewResponseController(w)

	// One submitWait holds one machine for the whole stream: frame n+1
	// runs against the DRAM state frame n left behind, which is exactly
	// the steady-state amortization the frame-pipeline model measures.
	// submitWait (not submit) because the job writes w; the handler must
	// not return while the worker might still be streaming into it.
	var (
		written                          int   // output frames committed to the wire
		outBytes                         int64 // response payload for the transfer meter
		cycles                           int64 // accounting summed across frames
		issued                           int64
		energyJ                          float64
		injected, corrected, uncorrected int64
	)
	nPEs, nVaults := s.cfg.Machine.TotalPEs(), s.cfg.Machine.TotalVaults()
	err = s.pool.submitWait(ctx, func(ctx context.Context, m *ipim.Machine) error {
		if sched != nil {
			m.SetDRAMPolicy(sched.Page, sched.Sched)
			defer m.SetDRAMPolicy(s.cfg.Machine.Page, s.cfg.Machine.Sched)
		}
		for i, img := range imgs {
			out, stats, err := ipim.RunContext(ctx, m, art, img, budget)
			for attempt := 0; err != nil && errors.Is(err, ipim.ErrTransientFault) && attempt < s.cfg.MaxRetries; attempt++ {
				s.metrics.observeRetry()
				out, stats, err = ipim.RunContext(ctx, m, art, img, budget)
			}
			if err != nil {
				return fmt.Errorf("stream frame %d: %w", i, err)
			}
			cycles += stats.Cycles
			issued += stats.Issued
			energyJ += ipim.EnergyOf(&stats, nPEs, nVaults).Total()
			corrected += stats.DRAM.ECCCorrected
			uncorrected += stats.DRAM.ECCUncorrected
			injected += stats.DRAM.ECCCorrected + stats.DRAM.ECCUncorrected + stats.NoC.LinkFaults
			var buf bytes.Buffer
			if err := ipim.WritePGM(&buf, out); err != nil {
				return fmt.Errorf("stream frame %d: %w", i, err)
			}
			if _, err := w.Write(buf.Bytes()); err != nil {
				return fmt.Errorf("stream frame %d: client write: %w", i, err)
			}
			// Flush errors are non-fatal: a writer with no Flusher just
			// buffers until the handler returns.
			rc.Flush()
			written++
			outBytes += int64(buf.Len())
			switch {
			case chaosAbort > 0 && written == chaosAbort:
				return errChaosStreamAbort
			case chaosStall > 0 && written == chaosStall:
				s.cfg.Logger.Printf("chaos: stalling stream after %d frame(s); waiting for the kill", written)
				<-make(chan struct{}) // held until the harness kills the process
			}
		}
		return nil
	})
	if err != nil {
		if written > 0 {
			// The status line is committed; the only honest failure signal
			// left is tearing the connection down so the client (router)
			// knows the stream is short and can fail over.
			s.cfg.Logger.Printf("stream: aborting after %d/%d frame(s): %v", written, len(imgs), err)
			panic(http.ErrAbortHandler)
		}
		s.failProcess(w, err)
		return
	}
	s.degrade.observe(uncorrected)
	s.metrics.observeRun(cycles, energyJ, injected, corrected, uncorrected)
	s.metrics.observeStream(int64(written))
	// One meter record for the whole stream: the transfer model batches
	// the frames across the bus, which is the amortization the endpoint
	// exists to claim.
	s.meter.Record(int64(len(body)), outBytes)
}
