package serve

// Crash-recovery journal: one sealed machine checkpoint per in-flight
// job, keyed by a content hash of the request (so an identical request
// re-submitted after a crash — worker panic, watchdog kill, process
// death — finds the interrupted run's last barrier state and resumes it
// instead of starting over). Writes go through a temp file in the same
// directory plus an atomic rename, mirroring the autotune results
// store: a crash mid-write leaves either the previous checkpoint or the
// new one, never a torn file — and a torn file from a crash mid-rename
// window is rejected by the checkpoint CRC and discarded.
//
// Lifecycle: the run's CheckpointSink overwrites the job's journal
// entry at every covered barrier; the entry is removed only when the
// run completes and its response is derivable — any failure (panic,
// cancellation, budget abort, process death) keeps the last checkpoint
// on disk for the next attempt.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ckptExt is the journal entry suffix; pending() counts these.
const ckptExt = ".ckpt"

// ckptJournal is the on-disk checkpoint store. Safe for concurrent use;
// per-job writes are serialized by the fact that one job runs on one
// worker at a time, but distinct jobs share the directory.
type ckptJournal struct {
	dir string
	mu  sync.Mutex
}

// newCkptJournal ensures the journal directory exists.
func newCkptJournal(dir string) (*ckptJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	return &ckptJournal{dir: dir}, nil
}

func (j *ckptJournal) path(id string) string {
	return filepath.Join(j.dir, id+ckptExt)
}

// write atomically replaces the job's journal entry: temp file in the
// same directory, fsync, rename.
func (j *ckptJournal) write(id string, data []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	tmp, err := os.CreateTemp(j.dir, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path(id)); err != nil {
		return fmt.Errorf("serve: checkpoint journal: %w", err)
	}
	return nil
}

// load returns the job's journal entry, or false when there is none.
func (j *ckptJournal) load(id string) ([]byte, bool) {
	data, err := os.ReadFile(j.path(id))
	if err != nil {
		return nil, false
	}
	return data, true
}

// remove deletes the job's journal entry (run completed, or the entry
// proved unusable).
func (j *ckptJournal) remove(id string) {
	os.Remove(j.path(id))
}

// ids lists the job ids of every journal entry on disk — the boot-time
// backlog inventory the readiness gate tracks (see recoveryState).
func (j *ckptJournal) ids() []string {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ckptExt {
			ids = append(ids, strings.TrimSuffix(e.Name(), ckptExt))
		}
	}
	return ids
}

// pending counts journal entries awaiting a resuming request — the
// startup-scan inventory and the ipim_checkpoint_journal_pending gauge.
func (j *ckptJournal) pending() int {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ckptExt {
			n++
		}
	}
	return n
}

// recoveryState gates /readyz on the checkpoint-journal backlog the
// server BOOTED with. Only boot-time entries count: a journal entry
// written for an in-flight run must not flip readiness, or every
// journaled request would bounce the worker out of the balancer. Each
// backlog id is ticked off when its entry is removed (resumed to
// completion, or discarded as unusable), and the whole gate expires at
// the recovery-grace deadline so a backlog nobody re-submits cannot
// park the worker in not-ready forever. A nil *recoveryState (no
// journal) reports an empty backlog.
type recoveryState struct {
	mu       sync.Mutex
	ids      map[string]struct{}
	deadline time.Time
}

// newRecoveryState records the boot-time journal inventory; grace
// bounds how long the backlog may hold readiness down.
func newRecoveryState(ids []string, grace time.Duration) *recoveryState {
	rs := &recoveryState{ids: make(map[string]struct{}, len(ids)), deadline: time.Now().Add(grace)}
	for _, id := range ids {
		rs.ids[id] = struct{}{}
	}
	return rs
}

// done ticks a job off the backlog (no-op for ids journaled after
// boot, and on a nil receiver).
func (rs *recoveryState) done(id string) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	delete(rs.ids, id)
	rs.mu.Unlock()
}

// backlog returns how many boot-time journal entries still await
// resume, or 0 once the grace deadline has passed.
func (rs *recoveryState) backlog() int {
	if rs == nil {
		return 0
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.ids) == 0 || time.Now().After(rs.deadline) {
		return 0
	}
	return len(rs.ids)
}

// jobID derives the journal key for one plane run of one request: a
// content hash over everything that determines the run, so a crashed
// job is matched exactly by its re-submission and can never collide
// with a different workload, image or budget.
func jobID(workload, opts, mode string, maxCycles int64, plane int, body []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|", workload, opts, mode, maxCycles, plane)
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// jitter is the retry backoff source: full jitter (uniform in
// [0, base<<attempt), capped), which decorrelates the retry storms a
// deterministic exponential schedule produces when many requests hit
// the same transient fault window. Seedable so tests get a fixed
// sequence.
type jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// newJitter builds a backoff source; seed 0 draws one from the clock.
func newJitter(seed int64) *jitter {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &jitter{rng: rand.New(rand.NewSource(seed))}
}

// backoffCap bounds a single backoff wait regardless of attempt count.
const backoffCap = 5 * time.Second

// backoff returns the full-jitter wait for the given zero-based
// attempt: uniform in [0, min(cap, base<<attempt)).
func (j *jitter) backoff(base time.Duration, attempt int) time.Duration {
	ceil := base << uint(attempt)
	if ceil <= 0 || ceil > backoffCap {
		ceil = backoffCap
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return time.Duration(j.rng.Int63n(int64(ceil) + 1))
}
