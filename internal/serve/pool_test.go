package serve

import (
	"context"
	"errors"
	"io"
	"log"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ipim"
)

func newTestPool(t *testing.T, workers, queueCap int) *pool {
	t.Helper()
	p, err := newPool(ipim.TinyConfig(), workers, queueCap, 1, nil, 10*time.Millisecond, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		p.drain(ctx)
	})
	return p
}

// blockWorker occupies one pool worker and returns once the worker is
// inside the job, plus a release function.
func blockWorker(t *testing.T, p *pool) (release func(), done chan error) {
	t.Helper()
	started := make(chan struct{})
	gate := make(chan struct{})
	done = make(chan error, 1)
	go func() {
		done <- p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error {
			close(started)
			<-gate
			return nil
		})
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the blocking job")
	}
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}, done
}

func TestPoolQueueFull(t *testing.T) {
	p := newTestPool(t, 1, 1)
	release, done := blockWorker(t, p)
	defer release()

	// Fill the single queue slot.
	queued := make(chan error, 1)
	go func() {
		queued <- p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil })
	}()
	// Wait for the queued job to land in the channel.
	deadline := time.Now().Add(10 * time.Second)
	for p.queueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	if err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil }); !errors.Is(err, errQueueFull) {
		t.Fatalf("submit on full queue = %v, want errQueueFull", err)
	}

	release()
	if err := <-done; err != nil {
		t.Errorf("blocked job: %v", err)
	}
	if err := <-queued; err != nil {
		t.Errorf("queued job: %v", err)
	}
}

func TestPoolQueuedJobHonorsDeadline(t *testing.T) {
	p := newTestPool(t, 1, 4)
	release, _ := blockWorker(t, p)
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	ran := atomic.Bool{}
	err := p.submit(ctx, func(ctx context.Context, m *ipim.Machine) error {
		ran.Store(true)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit = %v, want DeadlineExceeded", err)
	}
	release()
	// Give the worker a moment to drain the dead job, then confirm it
	// was skipped, not executed.
	deadline := time.Now().Add(10 * time.Second)
	for p.queueDepth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ran.Load() {
		t.Error("expired job must not run")
	}
}

func TestPoolPanicIsolation(t *testing.T) {
	p := newTestPool(t, 1, 4)
	err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error {
		panic("workload went sideways")
	})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("submit = %v, want recovered panic error", err)
	}
	if p.panicCount() != 1 {
		t.Errorf("panicCount = %d, want 1", p.panicCount())
	}
	// The worker (and its machine) must still be in service.
	if err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil }); err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
}

func TestPoolDrain(t *testing.T) {
	p, err := newPool(ipim.TinyConfig(), 1, 4, 1, nil, 10*time.Millisecond, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	release, done := blockWorker(t, p)
	finished := atomic.Bool{}
	go func() {
		time.Sleep(30 * time.Millisecond)
		finished.Store(true)
		release()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !finished.Load() {
		t.Error("drain returned before the in-flight job finished")
	}
	if err := <-done; err != nil {
		t.Errorf("in-flight job during drain: %v", err)
	}
	// After drain, new work is refused.
	if err := p.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil }); !errors.Is(err, errDraining) {
		t.Fatalf("submit after drain = %v, want errDraining", err)
	}
	// Drain is idempotent.
	if err := p.drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
