package serve

import (
	"container/list"
	"sync"

	"ipim"
	"ipim/internal/autotune"
)

// cacheKey identifies one compiled artifact: the workload, the input
// geometry and the compiler configuration. The machine configuration is
// fixed per server, so it is not part of the key.
type cacheKey struct {
	Workload string
	W, H     int
	Opts     ipim.Options
}

// cacheEntry is one cache slot. ready is closed when the compile
// finishes; until then art/err must not be read. Waiters that find an
// in-flight entry block on ready instead of compiling again, which is
// the duplicate-suppression guarantee: N concurrent requests for an
// uncached key trigger exactly one Compile.
type cacheEntry struct {
	key   cacheKey
	elem  *list.Element
	ready chan struct{}
	art   *ipim.Artifact
	err   error
	// sched is the tuned schedule the artifact was compiled with, or
	// nil for the default schedule. Set only by swap, which replaces
	// the whole entry, so art and sched are always consistent.
	sched *autotune.Candidate
}

// artifactCache is an LRU cache of compiled artifacts with
// single-flight compilation. Failed compiles are not cached: the
// failing entry is removed before its waiters wake, so the next
// request retries.
type artifactCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[cacheKey]*cacheEntry

	hits, misses, evictions, swaps int64
}

func newArtifactCache(capacity int) *artifactCache {
	if capacity < 1 {
		capacity = 1
	}
	return &artifactCache{
		cap:     capacity,
		ll:      list.New(),
		entries: map[cacheKey]*cacheEntry{},
	}
}

// get returns the artifact for key, compiling it at most once per
// cache residency. hit reports whether the caller was served without
// initiating a compile (including waiting on another request's
// in-flight compile). sched is non-nil when the background tuner has
// swapped in a tuned-schedule artifact for this key.
func (c *artifactCache) get(key cacheKey, compile func() (*ipim.Artifact, error)) (art *ipim.Artifact, sched *autotune.Candidate, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.ll.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.art, e.sched, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	c.misses++
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		victim := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, victim.key)
		c.evictions++
	}
	c.mu.Unlock()

	e.art, e.err = compile()
	if e.err != nil {
		c.mu.Lock()
		// Only remove if this entry still owns the slot (it may have
		// been evicted while compiling).
		if cur, ok := c.entries[key]; ok && cur == e {
			c.ll.Remove(e.elem)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	return e.art, nil, false, e.err
}

// swap atomically replaces the cached artifact for key with a tuned
// one. The entry keeps its LRU position when key is resident; an
// evicted (or never-seen) key is re-inserted at the front. A key whose
// compile is still in flight is left alone: the tuner retries on no
// schedule anyway, and fighting an in-flight entry would publish art
// before its waiters' ready fires.
func (c *artifactCache) swap(key cacheKey, art *ipim.Artifact, sched *autotune.Candidate) {
	ne := &cacheEntry{key: key, ready: make(chan struct{}), art: art, sched: sched}
	close(ne.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		select {
		case <-old.ready:
		default:
			return // compile in flight; don't race its publication
		}
		ne.elem = old.elem
		ne.elem.Value = ne
		c.entries[key] = ne
		c.swaps++
		return
	}
	ne.elem = c.ll.PushFront(ne)
	c.entries[key] = ne
	c.swaps++
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		victim := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.entries, victim.key)
		c.evictions++
	}
}

// cacheStats is a point-in-time counter snapshot.
type cacheStats struct {
	Entries, Hits, Misses, Evictions, Swaps int64
}

func (c *artifactCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   int64(c.ll.Len()),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Swaps:     c.swaps,
	}
}
