package serve

// Crash-recovery contract: with a checkpoint journal, a request whose
// worker dies mid-run (panic injected by the chaos knob, or a whole
// pool teardown between attempts) is re-enqueued and resumes from the
// last journaled barrier — and by the determinism contract the
// response is byte-identical to a server nothing ever happened to.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ipim"
)

// chaosJob is one soak request: a workload over a distinct synthetic
// image, so every job owns a distinct journal entry.
type chaosJob struct {
	wl   string
	seed uint64
}

func chaosBody(t *testing.T, seed uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ipim.WritePGM(&buf, ipim.Synth(32, 16, seed)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postJob runs one job and returns status, the X-Ipim-Resumed header
// and the response body.
func postJob(t *testing.T, base string, j chaosJob, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(processURL(base, j.wl, ""), "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Errorf("%s/%d: %v", j.wl, j.seed, err)
		return 0, "", nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Ipim-Resumed"), out
}

// scrapeMetric fetches /metrics and extracts one un-labeled series.
func scrapeMetric(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	return int64(metricValue(t, string(text), name))
}

// TestChaosCrashRecoverySoak is the chaos soak: every fresh journaled
// run panics on its worker right after its first checkpoint write, the
// handler re-enqueues it, and the resumed response must be
// byte-identical to an undisturbed server's — across single-phase
// (Brighten, GaussianBlur) and multi-barrier (Histogram) pipelines,
// concurrently, with the journal drained to empty at the end.
func TestChaosCrashRecoverySoak(t *testing.T) {
	clean := testServer(t, nil)
	cleanTS := httptest.NewServer(clean)
	defer cleanTS.Close()

	chaotic := testServer(t, func(c *Config) {
		c.CheckpointDir = t.TempDir()
		c.ChaosCrashAfterCheckpoints = 1
		c.MaxRetries = 3
		c.RetryBackoff = time.Millisecond
		c.RetrySeed = 42
	})
	chaosTS := httptest.NewServer(chaotic)
	defer chaosTS.Close()

	var jobs []chaosJob
	for _, wl := range []string{"Brighten", "GaussianBlur", "Histogram"} {
		for seed := uint64(1); seed <= 3; seed++ {
			jobs = append(jobs, chaosJob{wl: wl, seed: seed})
		}
	}

	// Undisturbed baseline, sequentially.
	want := make([][]byte, len(jobs))
	for i, j := range jobs {
		status, _, body := postJob(t, cleanTS.URL, j, chaosBody(t, j.seed))
		if status != http.StatusOK {
			t.Fatalf("baseline %s/%d: status %d: %s", j.wl, j.seed, status, body)
		}
		want[i] = body
	}

	// The same jobs against the crashing server, concurrently.
	type reply struct {
		status  int
		resumed string
		body    []byte
	}
	replies := make([]reply, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j chaosJob) {
			defer wg.Done()
			status, resumed, body := postJob(t, chaosTS.URL, j, chaosBody(t, j.seed))
			replies[i] = reply{status, resumed, body}
		}(i, j)
	}
	wg.Wait()

	for i, j := range jobs {
		r := replies[i]
		if r.status != http.StatusOK {
			t.Fatalf("%s/%d: status %d: %s", j.wl, j.seed, r.status, r.body)
		}
		if r.resumed != "true" {
			t.Errorf("%s/%d: X-Ipim-Resumed = %q, want true (chaos crash should force a resume)", j.wl, j.seed, r.resumed)
		}
		if !bytes.Equal(r.body, want[i]) {
			t.Errorf("%s/%d: resumed response differs from the undisturbed run", j.wl, j.seed)
		}
	}
	if got := scrapeMetric(t, chaosTS.URL, "ipim_jobs_resumed_total"); got < int64(len(jobs)) {
		t.Errorf("ipim_jobs_resumed_total = %d, want >= %d", got, len(jobs))
	}
	if got := scrapeMetric(t, chaosTS.URL, "ipim_checkpoint_journal_pending"); got != 0 {
		t.Errorf("ipim_checkpoint_journal_pending = %d after all jobs completed, want 0", got)
	}
	if got := scrapeMetric(t, chaosTS.URL, "ipim_checkpoint_bytes"); got <= 0 {
		t.Errorf("ipim_checkpoint_bytes = %d, want > 0", got)
	}
}

// TestDrainRestartResumesJournal is the pool-teardown leg: a job
// crashes with retries disabled so its journal entry survives, the
// whole server drains away (the SIGTERM path), and a new server over
// the same journal directory resumes the job on re-submission —
// byte-identical to a run that never died.
func TestDrainRestartResumesJournal(t *testing.T) {
	dir := t.TempDir()
	job := chaosJob{wl: "Histogram", seed: 5}
	body := chaosBody(t, job.seed)

	clean := testServer(t, nil)
	cleanTS := httptest.NewServer(clean)
	wantStatus, _, want := postJob(t, cleanTS.URL, job, body)
	cleanTS.Close()
	if wantStatus != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", wantStatus, want)
	}

	// Server A: crash after the second checkpoint, no retries — the
	// request fails, the journal keeps the mid-run state, and the pool
	// is torn down.
	a := testServer(t, func(c *Config) {
		c.CheckpointDir = dir
		c.ChaosCrashAfterCheckpoints = 2
		c.MaxRetries = -1
	})
	aTS := httptest.NewServer(a)
	status, _, out := postJob(t, aTS.URL, job, body)
	if status != http.StatusInternalServerError {
		t.Fatalf("crashing server: status %d, want 500: %s", status, out)
	}
	if got := scrapeMetric(t, aTS.URL, "ipim_checkpoint_journal_pending"); got != 1 {
		t.Fatalf("journal pending after crash = %d, want 1", got)
	}
	aTS.Close() // testServer's cleanup drains the pool at test end; the
	// journal directory outlives it by construction.

	// Server B over the same journal: the re-submitted request resumes.
	b := testServer(t, func(c *Config) {
		c.CheckpointDir = dir
	})
	bTS := httptest.NewServer(b)
	defer bTS.Close()
	status, resumed, out := postJob(t, bTS.URL, job, body)
	if status != http.StatusOK {
		t.Fatalf("restarted server: status %d: %s", status, out)
	}
	if resumed != "true" {
		t.Errorf("restarted server: X-Ipim-Resumed = %q, want true", resumed)
	}
	if !bytes.Equal(out, want) {
		t.Error("resumed response differs from the undisturbed run")
	}
	if got := scrapeMetric(t, bTS.URL, "ipim_checkpoint_journal_pending"); got != 0 {
		t.Errorf("journal pending after resume = %d, want 0", got)
	}
}

// TestReadyzDuringRecoveryBacklog: a worker that boots over a journal
// with interrupted jobs must answer /readyz with 503 until the backlog
// is replayed — so a router never routes fresh work onto a worker busy
// resuming — while journal entries written for in-flight runs must NOT
// flip readiness, and the grace deadline releases a backlog nobody
// re-submits.
func TestReadyzDuringRecoveryBacklog(t *testing.T) {
	dir := t.TempDir()
	job := chaosJob{wl: "Brighten", seed: 11}
	body := chaosBody(t, job.seed)
	id := jobID("Brighten", "opt", ipim.CycleMode.String(), 0, 0, body)

	// Seed the journal the way a crashed process leaves it: the entry a
	// client will re-submit, plus an orphan nobody ever will.
	j, err := newCkptJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []string{id, "deadbeefdeadbeef"} {
		if err := j.write(e, []byte("boot-time entry")); err != nil {
			t.Fatal(err)
		}
	}

	s := testServer(t, func(c *Config) {
		c.CheckpointDir = dir
		c.RecoveryGrace = time.Minute
	})
	ts := httptest.NewServer(s)
	defer ts.Close()
	readyz := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with boot backlog = %d, want 503", got)
	}
	if got := scrapeMetric(t, ts.URL, "ipim_recovery_backlog"); got != 2 {
		t.Fatalf("ipim_recovery_backlog = %d, want 2", got)
	}

	// Replaying the job clears its backlog slot (here the planted entry
	// is garbage, so the run discards it and starts fresh — removal is
	// removal either way). A fresh journaled request with a DIFFERENT id
	// writes and removes its own entry mid-flight; that must not touch
	// the backlog.
	if status, _, out := postJob(t, ts.URL, job, body); status != http.StatusOK {
		t.Fatalf("replayed job: status %d: %s", status, out)
	}
	other := chaosJob{wl: "Brighten", seed: 12}
	if status, _, out := postJob(t, ts.URL, other, chaosBody(t, other.seed)); status != http.StatusOK {
		t.Fatalf("fresh job: status %d: %s", status, out)
	}
	if got := scrapeMetric(t, ts.URL, "ipim_recovery_backlog"); got != 1 {
		t.Fatalf("ipim_recovery_backlog after replay = %d, want 1 (only the orphan)", got)
	}
	if got := readyz(); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with the orphan outstanding = %d, want 503", got)
	}

	// Only the grace deadline releases the orphan.
	s.recovery.mu.Lock()
	s.recovery.deadline = time.Now().Add(-time.Second)
	s.recovery.mu.Unlock()
	if got := readyz(); got != http.StatusOK {
		t.Fatalf("/readyz after grace expiry = %d, want 200", got)
	}
	if got := scrapeMetric(t, ts.URL, "ipim_recovery_backlog"); got != 0 {
		t.Fatalf("ipim_recovery_backlog after grace expiry = %d, want 0", got)
	}
}

// TestJitterBackoffSeededAndBounded pins the retry backoff contract:
// same seed, same schedule; every wait stays within the exponential
// envelope and the global cap.
func TestJitterBackoffSeededAndBounded(t *testing.T) {
	a, b := newJitter(99), newJitter(99)
	base := 25 * time.Millisecond
	for attempt := 0; attempt < 16; attempt++ {
		da, db := a.backoff(base, attempt), b.backoff(base, attempt)
		if da != db {
			t.Fatalf("attempt %d: seeded sources diverged (%s vs %s)", attempt, da, db)
		}
		ceil := base << uint(attempt)
		if ceil <= 0 || ceil > backoffCap {
			ceil = backoffCap
		}
		if da < 0 || da > ceil {
			t.Fatalf("attempt %d: backoff %s outside [0, %s]", attempt, da, ceil)
		}
	}
}

// TestJournalDiscardsCorruptEntry: a torn/garbage journal entry (a
// crash mid-rename, a partial disk) must not poison the job — the
// server logs it away and runs fresh.
func TestJournalDiscardsCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	s := testServer(t, func(c *Config) { c.CheckpointDir = dir })
	ts := httptest.NewServer(s)
	defer ts.Close()

	job := chaosJob{wl: "Brighten", seed: 9}
	body := chaosBody(t, job.seed)
	// Plant garbage under the exact id the request will look up.
	id := jobID("Brighten", "opt", ipim.CycleMode.String(), 0, 0, body)
	if err := s.journal.write(id, []byte("not a checkpoint")); err != nil {
		t.Fatal(err)
	}
	status, resumed, out := postJob(t, ts.URL, job, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	if resumed != "false" {
		t.Errorf("X-Ipim-Resumed = %q, want false (corrupt entry must be discarded)", resumed)
	}
	if got := scrapeMetric(t, ts.URL, "ipim_checkpoint_journal_pending"); got != 0 {
		t.Errorf("journal pending = %d, want 0 (corrupt entry removed, fresh run completed)", got)
	}
}

// TestWorkerPanicErrorIsTyped pins the sentinel the recovery path
// keys on: a recovered worker panic reports errWorkerPanic (so the
// journaled retry loop can match it) while keeping "panic" in the
// message for operators.
func TestWorkerPanicErrorIsTyped(t *testing.T) {
	s := testServer(t, nil)
	err := s.pool.submit(context.Background(), func(_ context.Context, m *ipim.Machine) error {
		panic("boom")
	})
	if !errors.Is(err, errWorkerPanic) {
		t.Fatalf("submit error = %v, want errWorkerPanic", err)
	}
	if !strings.Contains(err.Error(), "panic") {
		t.Fatalf("panic error message lost the word 'panic': %v", err)
	}
	if got := s.pool.panicCount(); got != 1 {
		t.Fatalf("panicCount = %d, want 1", got)
	}
}
