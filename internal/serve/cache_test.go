package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"ipim"
)

// TestCacheSingleflight: N concurrent gets for one uncached key must
// run the compile function exactly once.
func TestCacheSingleflight(t *testing.T) {
	c := newArtifactCache(4)
	var compiles atomic.Int64
	art := &ipim.Artifact{}
	key := cacheKey{Workload: "w", W: 32, H: 16, Opts: ipim.Opt}

	const n = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, hit, err := c.get(key, func() (*ipim.Artifact, error) {
				compiles.Add(1)
				return art, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
			}
			if got != art {
				t.Error("got a different artifact")
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if compiles.Load() != 1 {
		t.Fatalf("compiled %d times, want exactly 1", compiles.Load())
	}
	if hits.Load() != n-1 {
		t.Errorf("hits = %d, want %d", hits.Load(), n-1)
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != n-1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 miss, %d hits, 1 entry", st, n-1)
	}
}

// TestCacheErrorNotCached: a failed compile must not poison the key —
// the next get retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := newArtifactCache(4)
	key := cacheKey{Workload: "w", W: 8, H: 8, Opts: ipim.Opt}
	boom := errors.New("boom")
	if _, _, _, err := c.get(key, func() (*ipim.Artifact, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("want compile error, got %v", err)
	}
	art := &ipim.Artifact{}
	got, _, hit, err := c.get(key, func() (*ipim.Artifact, error) { return art, nil })
	if err != nil || got != art || hit {
		t.Fatalf("retry after failure: got=%v hit=%v err=%v", got, hit, err)
	}
}

// TestCacheLRUEviction: the oldest entry is evicted at capacity and a
// later get for it recompiles.
func TestCacheLRUEviction(t *testing.T) {
	c := newArtifactCache(2)
	mk := func(w int) cacheKey { return cacheKey{Workload: "w", W: w, H: 8, Opts: ipim.Opt} }
	var compiles atomic.Int64
	compile := func() (*ipim.Artifact, error) {
		compiles.Add(1)
		return &ipim.Artifact{}, nil
	}
	for _, w := range []int{1, 2, 3} { // 3 keys through a cap-2 cache
		if _, _, _, err := c.get(mk(w), compile); err != nil {
			t.Fatal(err)
		}
	}
	st := c.stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries and 1 eviction", st)
	}
	// Key 1 was the LRU victim: touching it again recompiles.
	before := compiles.Load()
	if _, _, hit, err := c.get(mk(1), compile); err != nil || hit {
		t.Fatalf("evicted key: hit=%v err=%v", hit, err)
	}
	if compiles.Load() != before+1 {
		t.Error("evicted key did not recompile")
	}
	// Key 3 is still resident.
	if _, _, hit, err := c.get(mk(3), compile); err != nil || !hit {
		t.Fatalf("resident key: hit=%v err=%v", hit, err)
	}
}
