package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ipim"
)

// testServer builds a server on the tiny machine configuration.
func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Machine:  ipim.TinyConfig(),
		Workers:  2,
		QueueCap: 8,
		CacheCap: 4,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// pgmBody renders a synthetic image as a binary PGM request body.
// 32x16 divides into 8x8 tiles across the tiny machine's 8 PEs.
func pgmBody(t *testing.T, w, h int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ipim.WritePGM(&buf, ipim.Synth(w, h, 7)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func ppmBody(t *testing.T, w, h int) []byte {
	t.Helper()
	var buf bytes.Buffer
	rp, gp, bp := ipim.Synth(w, h, 1), ipim.Synth(w, h, 2), ipim.Synth(w, h, 3)
	if err := ipim.WritePPM(&buf, rp, gp, bp); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func processURL(base, workload string, extra string) string {
	u := base + "/v1/process?workload=" + workload
	if extra != "" {
		u += "&" + extra
	}
	return u
}

// TestProcessConcurrentCacheMissThenHits is the headline contract: N
// concurrent identical requests trigger exactly one compile, every
// response is 200 with identical bytes, and exactly one response is a
// cache miss.
func TestProcessConcurrentCacheMissThenHits(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := pgmBody(t, 32, 16)
	const n = 8
	type reply struct {
		status int
		cache  string
		body   []byte
		cycles string
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(processURL(ts.URL, "Brighten", ""), "image/x-portable-graymap", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			out, _ := io.ReadAll(resp.Body)
			replies[i] = reply{
				status: resp.StatusCode,
				cache:  resp.Header.Get("X-Ipim-Cache"),
				body:   out,
				cycles: resp.Header.Get("X-Ipim-Cycles"),
			}
		}(i)
	}
	wg.Wait()

	misses := 0
	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.status, r.body)
		}
		if !bytes.Equal(r.body, replies[0].body) {
			t.Errorf("request %d returned different bytes", i)
		}
		if c, err := strconv.ParseInt(r.cycles, 10, 64); err != nil || c <= 0 {
			t.Errorf("request %d: bad X-Ipim-Cycles %q", i, r.cycles)
		}
		if r.cache == "miss" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d cache misses across %d identical requests, want exactly 1", misses, n)
	}
	st := s.cache.stats()
	if st.Misses != 1 {
		t.Errorf("cache compiled %d times, want exactly 1", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("cache hits = %d, want %d", st.Hits, n-1)
	}
}

func TestProcessPPMAndAccountingHeaders(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, processURL("", "GaussianBlur", "opts=baseline1"),
		bytes.NewReader(ppmBody(t, 32, 16)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/x-portable-pixmap" {
		t.Errorf("Content-Type = %q", ct)
	}
	rp, gp, bp, err := ipim.ReadPPM(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("response is not a PPM: %v", err)
	}
	if rp.W != 32 || rp.H != 16 || gp.W != 32 || bp.W != 32 {
		t.Errorf("output dims wrong: %dx%d", rp.W, rp.H)
	}
	for _, h := range []string{"X-Ipim-Cycles", "X-Ipim-Energy-Pj", "X-Ipim-Transfer-Ns", "X-Ipim-Kernel-Ns"} {
		v, err := strconv.ParseFloat(rec.Header().Get(h), 64)
		if err != nil || v <= 0 {
			t.Errorf("header %s = %q, want a positive number", h, rec.Header().Get(h))
		}
	}
	if got := rec.Header().Get("X-Ipim-Config"); got != "baseline1" {
		t.Errorf("X-Ipim-Config = %q", got)
	}
}

func TestProcessHistogramJSON(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, processURL("", "Histogram", ""),
		bytes.NewReader(pgmBody(t, 32, 16)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Workload string  `json:"workload"`
		Bins     []int32 `json:"bins"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Workload != "Histogram" || len(out.Bins) != 256 {
		t.Fatalf("workload=%q bins=%d", out.Workload, len(out.Bins))
	}
	var total int64
	for _, b := range out.Bins {
		total += int64(b)
	}
	if total != 32*16 {
		t.Errorf("bins sum to %d, want %d", total, 32*16)
	}
}

func TestProcessBadRequests(t *testing.T) {
	s := testServer(t, func(c *Config) { c.MaxBodyBytes = 1 << 10 })
	pgm := pgmBody(t, 32, 16)
	cases := []struct {
		name   string
		method string
		url    string
		body   []byte
		want   int
	}{
		{"missing workload", http.MethodPost, "/v1/process", pgm, http.StatusBadRequest},
		{"unknown workload", http.MethodPost, "/v1/process?workload=Nope", pgm, http.StatusNotFound},
		{"unknown opts", http.MethodPost, "/v1/process?workload=Brighten&opts=nah", pgm, http.StatusBadRequest},
		{"bad timeout", http.MethodPost, "/v1/process?workload=Brighten&timeout=soon", pgm, http.StatusBadRequest},
		{"get not allowed", http.MethodGet, "/v1/process?workload=Brighten", nil, http.StatusMethodNotAllowed},
		{"not an image", http.MethodPost, "/v1/process?workload=Brighten", []byte("hello"), http.StatusBadRequest},
		{"truncated pgm", http.MethodPost, "/v1/process?workload=Brighten", pgm[:20], http.StatusBadRequest},
		{"body too large", http.MethodPost, "/v1/process?workload=Brighten",
			ppmBody(t, 32, 16), http.StatusRequestEntityTooLarge},
		{"incompilable size", http.MethodPost, "/v1/process?workload=Brighten",
			pgmBodyAt(t, 12, 8), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(tc.method, tc.url, bytes.NewReader(tc.body))
			s.ServeHTTP(rec, req)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (%s)", rec.Code, tc.want, rec.Body.String())
			}
		})
	}
}

func pgmBodyAt(t *testing.T, w, h int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ipim.WritePGM(&buf, ipim.Synth(w, h, 7)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestQueueFullReturns429: with the single worker blocked and the
// queue full, a process request is rejected with 429 + Retry-After.
func TestQueueFullReturns429(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1; c.QueueCap = 1 })
	release, _ := blockWorker(t, s.pool)
	defer release()
	// Fill the queue slot.
	go s.pool.submit(context.Background(), func(ctx context.Context, m *ipim.Machine) error { return nil })
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.queueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
}

// TestRequestTimeoutReturns504: a request whose deadline expires while
// its job waits behind a busy worker gets 504 and its job never runs.
func TestRequestTimeoutReturns504(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1; c.QueueCap = 4 })
	release, _ := blockWorker(t, s.pool)
	defer release()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, processURL("", "Brighten", "timeout=30ms"),
		bytes.NewReader(pgmBody(t, 32, 16)))
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", rec.Code, rec.Body.String())
	}
}

// TestGracefulDrain: Shutdown lets the in-flight job finish, flips
// /readyz to 503 (while /healthz stays 200: the process is alive and
// finishing its queue), and rejects new process requests with 503.
func TestGracefulDrain(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Workers = 1; c.QueueCap = 4 })
	release, done := blockWorker(t, s.pool)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Wait for drain mode to engage.
	deadline := time.Now().Add(10 * time.Second)
	for !s.isDraining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness is not readiness)", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("process during drain = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 must carry Retry-After")
	}

	release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("in-flight job failed during drain: %v", err)
	}
}

// TestMetricsContent drives one request through the server and checks
// the Prometheus exposition.
func TestMetricsContent(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, processURL("", "Brighten", ""),
		bytes.NewReader(pgmBody(t, 32, 16))))
	if rec.Code != http.StatusOK {
		t.Fatalf("process: %d %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`ipim_requests_total{route="/v1/process",status="200"} 1`,
		`ipim_request_seconds_bucket{route="/v1/process",le="+Inf"} 1`,
		`ipim_request_seconds_sum{route="/v1/process"} `,
		`ipim_request_seconds_count{route="/v1/process"} 1`,
		"ipim_faults_injected_total 0",
		"ipim_faults_corrected_total 0",
		"ipim_faults_uncorrected_total 0",
		"ipim_request_retries_total 0",
		"ipim_degraded 0",
		"ipim_queue_depth 0",
		"ipim_artifact_cache_hits_total 0",
		"ipim_artifact_cache_misses_total 1",
		"ipim_artifact_cache_entries 1",
		"ipim_worker_panics_total 0",
		"ipim_host_offloads_total 1",
		`ipim_host_bytes_total{direction="in"} ` + strconv.Itoa(len(pgmBody(t, 32, 16))),
		"# TYPE ipim_request_seconds histogram",
		"# TYPE ipim_simulated_cycles_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Simulated-work counters must be positive.
	for _, metric := range []string{"ipim_simulated_cycles_total", "ipim_simulated_energy_picojoules_total", "ipim_host_transfer_nanoseconds_total"} {
		v := metricValue(t, body, metric)
		if v <= 0 {
			t.Errorf("%s = %v, want > 0", metric, v)
		}
	}
}

// metricValue extracts an unlabeled metric's value from an exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestHealthzAndWorkloads(t *testing.T) {
	s := testServer(t, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/workloads", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("workloads: %d", rec.Code)
	}
	var out struct {
		Workloads []workloadInfo `json:"workloads"`
		Configs   []string       `json:"configs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Workloads) != len(ipim.Workloads()) {
		t.Errorf("listed %d workloads, want %d", len(out.Workloads), len(ipim.Workloads()))
	}
	if len(out.Configs) == 0 || out.Configs[0] != "opt" {
		t.Errorf("configs = %v", out.Configs)
	}
}
