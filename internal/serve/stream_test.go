package serve

// /v1/stream contract: a multi-frame body is processed on ONE pooled
// machine with one compiled artifact, the output frames come back in
// order and byte-identical to per-frame /v1/process responses, and a
// mid-stream failure tears the connection down instead of lying with a
// short 200 body.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ipim"
	"ipim/internal/pixel"
)

// streamBody concatenates n synthetic 32x16 PGM frames (seeds 1..n).
func streamBody(t *testing.T, n int) []byte {
	return streamBodyDims(t, n, 32, 16)
}

func streamBodyDims(t *testing.T, n, w, h int) []byte {
	t.Helper()
	var body []byte
	for seed := uint64(1); seed <= uint64(n); seed++ {
		var buf bytes.Buffer
		if err := ipim.WritePGM(&buf, ipim.Synth(w, h, seed)); err != nil {
			t.Fatal(err)
		}
		body = append(body, buf.Bytes()...)
	}
	return body
}

func streamURL(base, workload, extra string) string {
	u := base + "/v1/stream?workload=" + workload
	if extra != "" {
		u += "&" + extra
	}
	return u
}

// TestStreamMatchesPerFrameProcess: every output frame of a stream is
// byte-identical to processing that frame alone — the amortization is
// timing-only, never data — and the stream metrics tick.
func TestStreamMatchesPerFrameProcess(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 4
	body := streamBody(t, n)
	inFrames, _, _, err := pixel.SplitPGMFrames(body, 0)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(streamURL(ts.URL, "GaussianBlur", ""), "application/x-ipim-frames", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if got := resp.Header.Get("X-Ipim-Stream-Frames"); got != "4" {
		t.Errorf("X-Ipim-Stream-Frames = %q, want 4", got)
	}
	outFrames, _, _, err := pixel.SplitPGMFrames(out, 0)
	if err != nil {
		t.Fatalf("response does not split back into frames: %v", err)
	}
	if len(outFrames) != n {
		t.Fatalf("got %d output frames, want %d", len(outFrames), n)
	}
	for i, in := range inFrames {
		presp, err := http.Post(processURL(ts.URL, "GaussianBlur", ""), "image/x-portable-graymap", bytes.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("process frame %d: status %d: %s", i, presp.StatusCode, want)
		}
		if !bytes.Equal(outFrames[i], want) {
			t.Errorf("stream frame %d differs from its /v1/process response", i)
		}
	}
	if got := scrapeMetric(t, ts.URL, "ipim_streams_total"); got != 1 {
		t.Errorf("ipim_streams_total = %d, want 1", got)
	}
	if got := scrapeMetric(t, ts.URL, "ipim_stream_frames_total"); got != n {
		t.Errorf("ipim_stream_frames_total = %d, want %d", got, n)
	}
	// The whole stream is one artifact: a second identical stream must
	// be a cache hit.
	resp2, err := http.Post(streamURL(ts.URL, "GaussianBlur", ""), "application/x-ipim-frames", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Ipim-Cache"); got != "hit" {
		t.Errorf("second stream X-Ipim-Cache = %q, want hit", got)
	}
}

// TestStreamGeometryChange: a workload that changes the output
// geometry (Downsample halves it) still streams frame-delimited — the
// consumer re-splits on the OUTPUT geometry.
func TestStreamGeometryChange(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Post(streamURL(ts.URL, "Downsample", ""), "application/x-ipim-frames", bytes.NewReader(streamBodyDims(t, 3, 64, 32)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	frames, w, h, err := pixel.SplitPGMFrames(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 || w != 32 || h != 16 {
		t.Fatalf("output = %d frames of %dx%d, want 3 of 32x16", len(frames), w, h)
	}
}

// TestStreamRejects pins the 4xx surface of the endpoint.
func TestStreamRejects(t *testing.T) {
	s := testServer(t, func(c *Config) { c.StreamMaxFrames = 2 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name   string
		url    string
		body   []byte
		status int
		want   string
	}{
		{"histogram workload", streamURL(ts.URL, "Histogram", ""), streamBody(t, 1), http.StatusBadRequest, "not streamable"},
		{"unknown workload", streamURL(ts.URL, "Nope", ""), streamBody(t, 1), http.StatusNotFound, ""},
		{"garbage body", streamURL(ts.URL, "Brighten", ""), []byte("not frames"), http.StatusBadRequest, "magic"},
		{"over frame cap", streamURL(ts.URL, "Brighten", ""), streamBody(t, 3), http.StatusBadRequest, "exceeds 2 frames"},
		{"empty body", streamURL(ts.URL, "Brighten", ""), nil, http.StatusBadRequest, "empty stream"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(tc.url, "application/x-ipim-frames", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			msg, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, msg)
			}
			if tc.want != "" && !strings.Contains(string(msg), tc.want) {
				t.Fatalf("body %q missing %q", msg, tc.want)
			}
		})
	}
	resp, err := http.Get(streamURL(ts.URL, "Brighten", ""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}
}

// TestStreamChaosAbortTearsConnection: with the chaos knob armed the
// stream delivers exactly the configured number of frames and then the
// connection dies — the client sees a truncated body, never a clean
// short 200. This is the failure the router's failover consumes.
func TestStreamChaosAbortTearsConnection(t *testing.T) {
	s := testServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.SetStreamChaos(2)

	resp, err := http.Post(streamURL(ts.URL, "Brighten", ""), "application/x-ipim-frames", bytes.NewReader(streamBody(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatal("read completed cleanly; want a torn connection")
	}
	frames, _, _, err := pixel.SplitPGMFrames(out, 0)
	if err != nil {
		t.Fatalf("the frames delivered before the abort must be whole: %v", err)
	}
	if len(frames) != 2 {
		t.Fatalf("delivered %d frames before abort, want 2", len(frames))
	}

	// The knob is single-shot: the next stream runs clean.
	resp2, err := http.Post(streamURL(ts.URL, "Brighten", ""), "application/x-ipim-frames", bytes.NewReader(streamBody(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	out2, rerr := io.ReadAll(resp2.Body)
	if rerr != nil {
		t.Fatalf("second stream should be clean: %v", rerr)
	}
	if frames, _, _, err := pixel.SplitPGMFrames(out2, 0); err != nil || len(frames) != 4 {
		t.Fatalf("second stream = %d frames (%v), want 4", len(frames), err)
	}
}
