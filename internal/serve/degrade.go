package serve

import (
	"sync"
	"time"
)

// degradeState implements degraded-mode load shedding under fault
// pressure: every completed /v1/process run reports its
// uncorrected-ECC-error count, and when the mean over a sliding window
// of recent requests exceeds the configured threshold the server sheds
// load (503 + Retry-After) for a cooldown period. Tripping clears the
// window, so after the cooldown the first probe requests rebuild the
// estimate from scratch instead of re-tripping on stale history.
type degradeState struct {
	threshold float64
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu     sync.Mutex
	window []float64
	idx    int
	filled int
	until  time.Time
}

// newDegradeState builds the tracker; threshold <= 0 disables it.
func newDegradeState(threshold float64, window int, cooldown time.Duration) *degradeState {
	return &degradeState{
		threshold: threshold,
		cooldown:  cooldown,
		window:    make([]float64, window),
		now:       time.Now,
	}
}

// observe records the uncorrected-error count of one completed run and
// trips degraded mode when the windowed mean exceeds the threshold.
func (d *degradeState) observe(uncorrected int64) {
	if d.threshold <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.window[d.idx] = float64(uncorrected)
	d.idx = (d.idx + 1) % len(d.window)
	if d.filled < len(d.window) {
		d.filled++
	}
	var sum float64
	for _, v := range d.window[:d.filled] {
		sum += v
	}
	if sum/float64(d.filled) > d.threshold {
		d.until = d.now().Add(d.cooldown)
		d.idx, d.filled = 0, 0
	}
}

// active reports whether the server is currently shedding load and, if
// so, the whole seconds (>= 1) a client should wait before retrying.
func (d *degradeState) active() (retryAfter int, shedding bool) {
	if d.threshold <= 0 {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	left := d.until.Sub(d.now())
	if left <= 0 {
		return 0, false
	}
	return int((left + time.Second - 1) / time.Second), true
}
