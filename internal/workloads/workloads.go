// Package workloads defines the paper's Table II benchmark suite: six
// single-stage kernels covering elementwise, stencil, reduction,
// gather, shift and value-dependent patterns, and four heterogeneous
// multi-stage pipelines (bilateral grid, interpolate, local Laplacian,
// stencil chain). Every workload is expressed in the halide DSL with
// its iPIM schedule, so the same definition drives the golden
// reference, the iPIM compiler, and the GPU baseline model.
package workloads

import (
	"fmt"

	"ipim/internal/halide"
)

// Workload is one Table II benchmark.
type Workload struct {
	Name        string
	Description string
	MultiStage  bool
	// Build constructs a fresh pipeline (pipelines carry schedule
	// state, so each use gets its own instance).
	Build func() *Workload1

	// BenchW/BenchH are the input dimensions used by the
	// representative-vault benchmark harness; TestW/TestH by unit
	// tests on the tiny machine.
	BenchW, BenchH int
	TestW, TestH   int
}

// Workload1 wraps the constructed pipeline.
type Workload1 struct {
	Pipe *halide.Pipeline
}

// abs builds |e| = max(e, -e).
func abs(e halide.Expr) halide.Expr {
	return halide.Max(e, halide.Sub(halide.K(0), e))
}

// Brighten: out(x,y) = alpha * in(x,y) — pure elementwise,
// bandwidth-bound (the paper's best case, 21x over GPU).
func buildBrighten() *Workload1 {
	out := halide.NewFunc("brighten").Define(
		halide.Mul(halide.K(1.5), halide.In(0, 0))).LoadPGSM()
	return &Workload1{Pipe: halide.NewPipeline("Brighten", out)}
}

// GaussianBlur: the Table II separable 3-tap blur, x pass inlined into
// the y pass (one kernel, as Halide's default schedule produces).
func buildBlur() *Workload1 {
	blurx := halide.NewFunc("blur_x").Define(
		halide.Mul(halide.Add(halide.Add(halide.In(0, 0), halide.In(1, 0)), halide.In(2, 0)), halide.K(1.0/3)))
	out := halide.NewFunc("blur_y").Define(
		halide.Mul(halide.Add(halide.Add(blurx.At(0, 0), blurx.At(0, 1)), blurx.At(0, 2)), halide.K(1.0/3))).
		LoadPGSM()
	return &Workload1{Pipe: halide.NewPipeline("GaussianBlur", out)}
}

// Downsample: Table II's separable 2:1 reduction (d inlined).
func buildDownsample() *Workload1 {
	d := halide.NewFunc("d").Define(
		halide.Mul(halide.Add(
			halide.Add(halide.InC(halide.CScale(2, -1, 1), halide.C(0)),
				halide.Mul(halide.K(2), halide.InC(halide.CScale(2, 0, 1), halide.C(0)))),
			halide.InC(halide.CScale(2, 1, 1), halide.C(0))), halide.K(0.25)))
	out := halide.NewFunc("down").Define(
		halide.Mul(halide.Add(
			halide.Add(d.AtC(halide.C(0), halide.CScale(2, -1, 1)),
				halide.Mul(halide.K(2), d.AtC(halide.C(0), halide.CScale(2, 0, 1)))),
			d.AtC(halide.C(0), halide.CScale(2, 1, 1))), halide.K(0.25))).LoadPGSM()
	return &Workload1{Pipe: halide.NewPipeline("Downsample", out).OutScale(1, 2)}
}

// Upsample: Table II's separable 1:2 expansion (u inlined).
func buildUpsample() *Workload1 {
	u := halide.NewFunc("u").Define(
		halide.Mul(halide.Add(halide.InC(halide.CScale(1, 0, 2), halide.C(0)),
			halide.InC(halide.CScale(1, 1, 2), halide.C(0))), halide.K(0.5)))
	out := halide.NewFunc("up").Define(
		halide.Mul(halide.Add(u.AtC(halide.C(0), halide.CScale(1, 0, 2)),
			u.AtC(halide.C(0), halide.CScale(1, 1, 2))), halide.K(0.5))).LoadPGSM()
	return &Workload1{Pipe: halide.NewPipeline("Upsample", out).OutScale(2, 1)}
}

// Shift: out(x,y) = in(x-4, y-4) — pure data movement.
func buildShift() *Workload1 {
	out := halide.NewFunc("shift").Define(halide.In(-4, -4))
	return &Workload1{Pipe: halide.NewPipeline("Shift", out)}
}

// Histogram: the value-dependent reduction (256 bins), lowered through
// the built-in partial-histogram schedule.
func buildHistogram() *Workload1 {
	out := halide.NewFunc("hist").Define(halide.In(0, 0))
	p := halide.NewPipeline("Histogram", out)
	p.Histogram = true
	p.Bins = 256
	return &Workload1{Pipe: p}
}

// stencil3x3 builds a materialized 3x3 box stencil over f (or the
// input when f is nil).
func stencil3x3(name string, f *halide.Func) *halide.Func {
	at := func(dx, dy int) halide.Expr {
		if f == nil {
			return halide.In(dx, dy)
		}
		return f.At(dx, dy)
	}
	var sum halide.Expr = at(-1, -1)
	for _, d := range [][2]int{{0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
		sum = halide.Add(sum, at(d[0], d[1]))
	}
	return halide.NewFunc(name).Define(halide.Mul(sum, halide.K(1.0/9))).ComputeRoot().LoadPGSM()
}

// StencilChain: 32 chained 3x3 stencils (paper: 32 pipeline stages).
func buildStencilChain() *Workload1 {
	var prev *halide.Func
	for i := 0; i < 32; i++ {
		prev = stencil3x3(fmt.Sprintf("s%02d", i), prev)
	}
	return &Workload1{Pipe: halide.NewPipeline("StencilChain", prev).ClampStages()}
}

// downXY appends a separable 2:1 pyramid reduction (two materialized
// stages) below f.
func downXY(name string, f *halide.Func) *halide.Func {
	dx := halide.NewFunc(name + "_x").Define(
		halide.Mul(halide.Add(
			halide.Add(f.AtC(halide.CScale(2, -1, 1), halide.C(0)),
				halide.Mul(halide.K(2), f.AtC(halide.CScale(2, 0, 1), halide.C(0)))),
			f.AtC(halide.CScale(2, 1, 1), halide.C(0))), halide.K(0.25))).ComputeRoot().LoadPGSM()
	dy := halide.NewFunc(name).Define(
		halide.Mul(halide.Add(
			halide.Add(dx.AtC(halide.C(0), halide.CScale(2, -1, 1)),
				halide.Mul(halide.K(2), dx.AtC(halide.C(0), halide.CScale(2, 0, 1)))),
			dx.AtC(halide.C(0), halide.CScale(2, 1, 1))), halide.K(0.25))).ComputeRoot().LoadPGSM()
	return dy
}

// materializeUpX materializes the x half of an expansion (used to hit
// the paper's stage structure) and returns the y half as an expression.
func materializeUpX(f *halide.Func) (upx *halide.Func, full func() halide.Expr) {
	upx = halide.NewFunc(f.Name + "_ux").Define(
		halide.Mul(halide.Add(f.AtC(halide.CScale(1, 0, 2), halide.C(0)),
			f.AtC(halide.CScale(1, 1, 2), halide.C(0))), halide.K(0.5))).ComputeRoot().LoadPGSM()
	full = func() halide.Expr {
		return halide.Mul(halide.Add(upx.AtC(halide.C(0), halide.CScale(1, 0, 2)),
			upx.AtC(halide.C(0), halide.CScale(1, 1, 2))), halide.K(0.5))
	}
	return upx, full
}

// Interpolate: a pyramid interpolation in the spirit of the paper's
// 12-stage benchmark: two pyramid levels down (tile-scale pyramids;
// DESIGN.md §5), then per-level upsample+blend back to full
// resolution. 10 materialized stages.
func buildInterpolate() *Workload1 {
	base := halide.NewFunc("base").Define(halide.In(0, 0)).ComputeRoot()
	d1 := downXY("ip_d1", base) // 2 stages
	d2 := downXY("ip_d2", d1)   // 2 stages
	// Level 1 blend: d1 with upsampled d2.
	_, up2 := materializeUpX(d2) // 1 stage
	b1 := halide.NewFunc("ip_b1").Define(
		halide.Add(halide.Mul(halide.K(0.5), d1.At(0, 0)),
			halide.Mul(halide.K(0.5), up2()))).ComputeRoot().LoadPGSM() // 1 stage
	_, up1 := materializeUpX(b1) // 1 stage
	out := halide.NewFunc("interpolate").Define(
		halide.Add(halide.Mul(halide.K(0.5), base.At(0, 0)),
			halide.Mul(halide.K(0.5), up1()))).LoadPGSM() // 1 stage
	p := halide.NewPipeline("Interpolate", out).IPIMTile(16, 16).ClampStages()
	return &Workload1{Pipe: p}
}

// BilateralGrid: an edge-aware smoothing pipeline in the bilateral-grid
// family. The paper's scatter-based grid construction is replaced by a
// dense per-intensity-bin formulation (weights and weighted values per
// bin, spatially blurred, then sliced by interpolating over the bins) —
// the same four conceptual phases (construct / blur / blur / slice)
// with static access patterns; the scatter pattern itself is exercised
// by Histogram. See DESIGN.md §5.
func buildBilateralGrid() *Workload1 {
	const bins = 4
	centers := [bins]float32{0.125, 0.375, 0.625, 0.875}
	var wb, vb [bins]*halide.Func
	for b := 0; b < bins; b++ {
		// Tent weight around the bin center, evaluated per pixel.
		w := halide.Max(halide.K(0),
			halide.Sub(halide.K(1), halide.Mul(halide.K(4), abs(halide.Sub(halide.In(0, 0), halide.K(centers[b]))))))
		wf := halide.NewFunc(fmt.Sprintf("bg_w%d", b)).Define(w)
		vf := halide.NewFunc(fmt.Sprintf("bg_v%d", b)).Define(halide.Mul(w, halide.In(0, 0)))
		// Spatial blur of each bin plane (construct+blur fused per
		// plane; the blur is the materialized stage).
		wb[b] = stencil3x3(fmt.Sprintf("bg_wb%d", b), wf)
		vb[b] = stencil3x3(fmt.Sprintf("bg_vb%d", b), vf)
	}
	// Slice: interpolate the blurred planes at each pixel's intensity.
	var num, den halide.Expr = halide.K(0), halide.K(1e-6)
	for b := 0; b < bins; b++ {
		t := halide.Max(halide.K(0),
			halide.Sub(halide.K(1), halide.Mul(halide.K(4), abs(halide.Sub(halide.In(0, 0), halide.K(centers[b]))))))
		num = halide.Add(num, halide.Mul(t, vb[b].At(0, 0)))
		den = halide.Add(den, halide.Mul(t, wb[b].At(0, 0)))
	}
	out := halide.NewFunc("bilateral").Define(halide.Div(num, den)).LoadPGSM()
	return &Workload1{Pipe: halide.NewPipeline("BilateralGrid", out).ClampStages()}
}

// LocalLaplacian: a multi-scale tone-mapping/contrast pipeline (paper:
// 23 stages): K remapping curves, a Gaussian pyramid per remapped
// image plus the guide pyramid, per-level blends by guide intensity,
// and a collapse back to full resolution.
func buildLocalLaplacian() *Workload1 {
	// Guide pyramid (base + 1 level = 1 + 2 stages).
	guide := halide.NewFunc("ll_g0").Define(halide.In(0, 0)).ComputeRoot()
	g1 := downXY("ll_g1", guide) // 2

	// K=4 remapped images and their pyramids.
	const K = 4
	var r0, r1 [K]*halide.Func
	for k := 0; k < K; k++ {
		c := float32(k) / float32(K-1)
		// Remap: push values toward the curve center (detail boost).
		e := halide.Add(halide.In(0, 0),
			halide.Mul(halide.K(0.4), halide.Sub(halide.K(c), halide.In(0, 0))))
		r0[k] = halide.NewFunc(fmt.Sprintf("ll_r%d", k)).Define(e).ComputeRoot() // 4 stages
		r1[k] = downXY(fmt.Sprintf("ll_r%d_1", k), r0[k])                        // 8 stages
	}

	// Per-level blend by guide intensity: tent weights over the K
	// curves.
	blend := func(name string, g *halide.Func, planes [K]*halide.Func) *halide.Func {
		var num halide.Expr = halide.K(0)
		for k := 0; k < K; k++ {
			c := float32(k) / float32(K-1)
			w := halide.Max(halide.K(0),
				halide.Sub(halide.K(1), halide.Mul(halide.K(float32(K-1)), abs(halide.Sub(g.At(0, 0), halide.K(c))))))
			num = halide.Add(num, halide.Mul(w, planes[k].At(0, 0)))
		}
		return halide.NewFunc(name).Define(num).ComputeRoot().LoadPGSM()
	}
	b1 := blend("ll_b1", g1, r1) // 1 stage
	b0 := blend("ll_b0", guide, r0)

	// Collapse: combine levels with the upsampled coarser blend, then a
	// final contrast-restore stage against the guide.
	_, up1 := materializeUpX(b1) // 1 stage
	c0 := halide.NewFunc("ll_c0").Define(
		halide.Add(halide.Mul(halide.K(0.6), b0.At(0, 0)),
			halide.Mul(halide.K(0.4), up1()))).ComputeRoot().LoadPGSM() // 1 stage
	out := halide.NewFunc("locallaplacian").Define(
		halide.Clamp(halide.Add(c0.At(0, 0),
			halide.Mul(halide.K(0.3), halide.Sub(guide.At(0, 0), c0.At(0, 0)))), 0, 1)) // 1 stage
	p := halide.NewPipeline("LocalLaplacian", out).IPIMTile(16, 16).ClampStages()
	return &Workload1{Pipe: p}
}

// All returns the Table II suite in the paper's order.
func All() []Workload {
	return []Workload{
		{Name: "Brighten", Description: "out(x,y) = alpha * in(x,y)", Build: buildBrighten,
			BenchW: 512, BenchH: 256, TestW: 32, TestH: 16},
		{Name: "GaussianBlur", Description: "separable 3-tap blur", Build: buildBlur,
			BenchW: 512, BenchH: 256, TestW: 32, TestH: 16},
		{Name: "Downsample", Description: "separable 2:1 reduction", Build: buildDownsample,
			BenchW: 1024, BenchH: 512, TestW: 64, TestH: 32},
		{Name: "Upsample", Description: "separable 1:2 expansion", Build: buildUpsample,
			BenchW: 256, BenchH: 128, TestW: 16, TestH: 8},
		{Name: "Shift", Description: "out(x,y) = in(x-4,y-4)", Build: buildShift,
			BenchW: 512, BenchH: 256, TestW: 32, TestH: 16},
		{Name: "Histogram", Description: "256-bin value-dependent reduction", Build: buildHistogram,
			BenchW: 512, BenchH: 256, TestW: 32, TestH: 16},
		{Name: "BilateralGrid", Description: "edge-aware smoothing, 9 stages", MultiStage: true, Build: buildBilateralGrid,
			BenchW: 256, BenchH: 64, TestW: 32, TestH: 16},
		{Name: "Interpolate", Description: "pyramid interpolation, 9 stages", MultiStage: true, Build: buildInterpolate,
			BenchW: 512, BenchH: 128, TestW: 64, TestH: 32},
		{Name: "LocalLaplacian", Description: "multi-scale contrast, ~20 stages", MultiStage: true, Build: buildLocalLaplacian,
			BenchW: 512, BenchH: 128, TestW: 64, TestH: 32},
		{Name: "StencilChain", Description: "32 chained 3x3 stencils", MultiStage: true, Build: buildStencilChain,
			BenchW: 256, BenchH: 64, TestW: 32, TestH: 16},
	}
}

// ByName finds a workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}
