package workloads

import (
	"testing"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// testConfig picks the machine shape a workload's test runs on:
// halo-exchange (clamped) pipelines need a single-vault machine.
func testConfig(w *Workload1) sim.Config {
	if w.Pipe.ClampedStages {
		return sim.TestTinyOneVault()
	}
	return sim.TestTiny()
}

func TestAllWorkloadsMatchGolden(t *testing.T) {
	for _, wl := range All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			w := wl.Build()
			cfg := testConfig(w)
			img := pixel.Synth(wl.TestW, wl.TestH, 0xC0FFEE+uint64(len(wl.Name)))
			art, err := compiler.Compile(&cfg, w.Pipe, img.W, img.H, compiler.Opt)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m, err := cube.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := compiler.LoadInput(m, art, img); err != nil {
				t.Fatal(err)
			}
			stats, err := compiler.Execute(m, art)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if stats.Cycles == 0 {
				t.Fatal("no cycles simulated")
			}
			if w.Pipe.Histogram {
				got, err := compiler.ReadHistogram(m, art)
				if err != nil {
					t.Fatal(err)
				}
				want, err := w.Pipe.ReferenceHistogram(img)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("bin %d: got %d, want %d", i, got[i], want[i])
					}
				}
				return
			}
			got, err := compiler.ReadOutput(m, art)
			if err != nil {
				t.Fatal(err)
			}
			want, err := w.Pipe.Reference(img)
			if err != nil {
				t.Fatal(err)
			}
			if d := pixel.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("output differs from golden by %g", d)
			}
		})
	}
}

func TestWorkloadStageCounts(t *testing.T) {
	want := map[string]int{
		"Brighten":       1,
		"GaussianBlur":   1,
		"Downsample":     1,
		"Upsample":       1,
		"Shift":          1,
		"BilateralGrid":  9,
		"Interpolate":    9,
		"LocalLaplacian": 20,
		"StencilChain":   32,
	}
	for _, wl := range All() {
		if wl.Name == "Histogram" {
			continue
		}
		w := wl.Build()
		stages, err := w.Pipe.Stages()
		if err != nil {
			t.Fatalf("%s: %v", wl.Name, err)
		}
		if got := len(stages); got != want[wl.Name] {
			t.Errorf("%s: %d stages, want %d", wl.Name, got, want[wl.Name])
		}
		if wl.MultiStage != (len(stages) > 1) {
			t.Errorf("%s: MultiStage flag inconsistent with %d stages", wl.Name, len(stages))
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("GaussianBlur")
	if err != nil || w.Name != "GaussianBlur" {
		t.Fatalf("ByName: %v %v", w, err)
	}
	if _, err := ByName("NoSuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTableIIOrderAndCount(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("suite has %d workloads, want 10 (Table II)", len(all))
	}
	wantOrder := []string{"Brighten", "GaussianBlur", "Downsample", "Upsample", "Shift",
		"Histogram", "BilateralGrid", "Interpolate", "LocalLaplacian", "StencilChain"}
	for i, w := range all {
		if w.Name != wantOrder[i] {
			t.Errorf("position %d = %s, want %s", i, w.Name, wantOrder[i])
		}
		if w.TestW%4 != 0 || w.BenchW%4 != 0 {
			t.Errorf("%s: widths not vector-aligned", w.Name)
		}
	}
}

func TestMultiStageWorkloadsUseClampedStages(t *testing.T) {
	for _, wl := range All() {
		w := wl.Build()
		if wl.MultiStage && !w.Pipe.ClampedStages {
			t.Errorf("%s: multi-stage without ClampStages (halo recompute blowup)", wl.Name)
		}
		if !wl.MultiStage && w.Pipe.ClampedStages {
			t.Errorf("%s: single-stage with ClampStages", wl.Name)
		}
	}
}

// TestMachineShapeIndependence: the computed image must not depend on
// how many PEs/vaults the machine has — only the partition changes.
func TestMachineShapeIndependence(t *testing.T) {
	for _, name := range []string{"GaussianBlur", "Downsample"} {
		wl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		img := pixel.Synth(wl.TestW*2, wl.TestH*2, 31)
		var outputs []*pixel.Image
		for _, cfg := range []sim.Config{sim.TestTinyOneVault(), sim.TestTiny(), sim.OneVault()} {
			w := wl.Build()
			art, err := compiler.Compile(&cfg, w.Pipe, img.W, img.H, compiler.Opt)
			if err != nil {
				t.Fatalf("%s on %d PEs: %v", name, cfg.TotalPEs(), err)
			}
			m, err := cube.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := compiler.LoadInput(m, art, img); err != nil {
				t.Fatal(err)
			}
			if _, err := compiler.Execute(m, art); err != nil {
				t.Fatal(err)
			}
			out, err := compiler.ReadOutput(m, art)
			if err != nil {
				t.Fatal(err)
			}
			outputs = append(outputs, out)
		}
		for i := 1; i < len(outputs); i++ {
			if d := pixel.MaxAbsDiff(outputs[0], outputs[i]); d != 0 {
				t.Fatalf("%s: outputs differ across machine shapes by %g", name, d)
			}
		}
	}
}

func TestGoldenReferencesAreSane(t *testing.T) {
	// Brighten golden is a pure scale; blur golden preserves the mean
	// approximately; downsample/upsample goldens have the right shape.
	img := pixel.Synth(32, 16, 99)
	br := buildBrighten()
	out, err := br.Pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range img.Pix {
		if out.Pix[i] != 1.5*img.Pix[i] {
			t.Fatalf("brighten golden wrong at %d", i)
		}
	}
	down := buildDownsample()
	d, err := down.Pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 16 || d.H != 8 {
		t.Fatalf("downsample output %dx%d", d.W, d.H)
	}
	up := buildUpsample()
	u, err := up.Pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if u.W != 64 || u.H != 32 {
		t.Fatalf("upsample output %dx%d", u.W, u.H)
	}
	_ = halide.Interval{}
}
