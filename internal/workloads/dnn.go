package workloads

import (
	"fmt"

	"ipim/internal/halide"
	"ipim/internal/pixel"
)

// The DNN/GEMM workload family. Unlike the Table II image kernels,
// these operators carry compile-time weight tensors (halide.Tab) and
// reduction domains (halide.Sum), and they default to the multi-array
// stage-ahead schedule. Feature/channel dimensions are fixed by each
// operator's geometry; the image width (pixels or token columns)
// scales. The family lives in its own registry (DNN/DNNByName) so the
// paper's Table II experiments are untouched.
//
// Every workload pairs its pipeline with an independent host golden
// reference (Host) written as plain loops in the exact accumulation
// order the Sum semantics prescribe, so simulated outputs must match
// bit-for-bit.

// DNNWorkload is one member of the DNN/GEMM family.
type DNNWorkload struct {
	Name        string
	Description string
	// Build constructs a fresh pipeline (pipelines carry mutable
	// schedule state, so each use gets its own instance).
	Build func() *Workload1
	// Host computes the golden reference on the host, bit-exact to
	// the device program and the halide reference interpreter.
	Host func(in *pixel.Image) *pixel.Image
	// TestW/TestH and BenchW/BenchH mirror Workload's size fields;
	// the heights are fixed by operator geometry and must be passed
	// through unchanged.
	TestW, TestH   int
	BenchW, BenchH int
}

// dnnWeights derives a deterministic pseudo-random weight vector from
// seed: sixteenths in [-0.5, 0.5], drawn from a 17-value palette so
// the constant pool stays small however large the tensor is.
func dnnWeights(seed uint64, n int) []float32 {
	out := make([]float32, n)
	x := seed
	for i := range out {
		x = x*6364136223846793005 + 1442695040888963407
		out[i] = float32(int64((x>>33)%17)-8) / 16
	}
	return out
}

// ---------------------------------------------------------------- GEMM

// gemmK is the square weight dimension: out = W (K x K) x X (K x W).
const gemmK = 16

func gemmWeights() []float32 { return dnnWeights(0x47454D4D, gemmK*gemmK) }

// buildGEMM expresses the tiled GEMM out(x,y) = sum_k W[y][k]*X[k][x]:
// the input image holds the activation matrix X (row k = feature k,
// column x = token x), the weight matrix rides in per-k column Tabs.
func buildGEMM() *Workload1 {
	w := gemmWeights()
	e := halide.Sum(gemmK, 1, func(k, _ int) halide.Expr {
		col := make([]float32, gemmK)
		for y := range col {
			col[y] = w[y*gemmK+k]
		}
		return halide.Mul(
			halide.NewTab(col, halide.CScale(0, 0, 1), halide.C(0)),
			halide.InC(halide.C(0), halide.CScale(0, k, 1)))
	})
	out := halide.NewFunc("gemm").Define(e).LoadPGSM()
	p := halide.NewPipeline("GEMM", out).IPIMTile(8, gemmK).MultiArraySchedule(true)
	return &Workload1{Pipe: p}
}

func hostGEMM(in *pixel.Image) *pixel.Image {
	w := gemmWeights()
	out := pixel.New(in.W, in.H)
	for y := 0; y < in.H; y++ {
		for x := 0; x < in.W; x++ {
			acc := w[y*gemmK] * in.At(x, 0)
			for k := 1; k < gemmK; k++ {
				p := w[y*gemmK+k] * in.At(x, k)
				acc = acc + p
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

// -------------------------------------------------------------- conv2d

// Conv2D geometry: channels-as-planes layout. A C-channel activation
// of h rows is stored as C planes of p rows each (p = h+2 for the 3x3
// kernel's vertical halo, p = h for 1x1); the output uses the same
// layout. A one-hot Tab indexed by y/p selects the output channel, so
// the whole multi-channel operator is a single SIMB kernel.
const (
	convC    = 2             // channels (in == out)
	convH    = 4             // activation rows per channel
	convP    = convH + 2     // padded plane height
	convRows = convC * convP // image height

	conv1C    = 4 // 1x1 conv channels
	conv1P    = 4 // plane height (no padding needed)
	conv1Rows = conv1C * conv1P
)

func conv3Weights() []float32 { return dnnWeights(0x434F4E33, convC*convC*9) }
func conv1Weights() []float32 { return dnnWeights(0x434F4E31, conv1C*conv1C) }

// oneHot returns the n-value mask selecting index i.
func oneHot(n, i int) []float32 {
	m := make([]float32, n)
	m[i] = 1
	return m
}

func buildConv3x3() *Workload1 {
	w := conv3Weights()
	e := halide.Sum(1, convC, func(_, oc int) halide.Expr {
		inner := halide.Sum(9, convC, func(rx, ic int) halide.Expr {
			dy, dx := rx/3-1, rx%3-1
			wv := w[(oc*convC+ic)*9+(dy+1)*3+(dx+1)]
			return halide.Mul(halide.K(wv),
				halide.InC(halide.C(dx), halide.C((ic-oc)*convP+dy)))
		})
		return halide.Mul(
			halide.NewTab(oneHot(convC, oc), halide.CScale(0, 0, 1), halide.CScale(1, 0, convP)),
			inner)
	})
	out := halide.NewFunc("conv3").Define(e).LoadPGSM()
	p := halide.NewPipeline("Conv3x3", out).IPIMTile(4, convRows).MultiArraySchedule(true)
	return &Workload1{Pipe: p}
}

func hostConv3x3(in *pixel.Image) *pixel.Image {
	w := conv3Weights()
	// The full reduction domain for one output channel (ic major, then
	// dy, then dx), in the exact FMac accumulation order.
	sum := func(oc, x, y int) float32 {
		var acc float32
		first := true
		for ic := 0; ic < convC; ic++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					wv := w[(oc*convC+ic)*9+(dy+1)*3+(dx+1)]
					p := wv * in.At(x+dx, y+(ic-oc)*convP+dy)
					if first {
						acc, first = p, false
					} else {
						acc = acc + p
					}
				}
			}
		}
		return acc
	}
	out := pixel.New(in.W, in.H)
	for y := 0; y < in.H; y++ {
		sel := y / convP
		for x := 0; x < in.W; x++ {
			var tot float32
			for oc := 0; oc < convC; oc++ {
				var m float32
				if oc == sel {
					m = 1
				}
				p := m * sum(oc, x, y)
				if oc == 0 {
					tot = p
				} else {
					tot = tot + p
				}
			}
			out.Set(x, y, tot)
		}
	}
	return out
}

func buildConv1x1() *Workload1 {
	w := conv1Weights()
	e := halide.Sum(1, conv1C, func(_, oc int) halide.Expr {
		inner := halide.Sum(1, conv1C, func(_, ic int) halide.Expr {
			return halide.Mul(halide.K(w[oc*conv1C+ic]),
				halide.InC(halide.C(0), halide.C((ic-oc)*conv1P)))
		})
		return halide.Mul(
			halide.NewTab(oneHot(conv1C, oc), halide.CScale(0, 0, 1), halide.CScale(1, 0, conv1P)),
			inner)
	})
	out := halide.NewFunc("conv1").Define(e).LoadPGSM()
	p := halide.NewPipeline("Conv1x1", out).IPIMTile(4, conv1Rows).MultiArraySchedule(true)
	return &Workload1{Pipe: p}
}

func hostConv1x1(in *pixel.Image) *pixel.Image {
	w := conv1Weights()
	out := pixel.New(in.W, in.H)
	for y := 0; y < in.H; y++ {
		sel := y / conv1P
		for x := 0; x < in.W; x++ {
			var tot float32
			for oc := 0; oc < conv1C; oc++ {
				acc := w[oc*conv1C] * in.At(x, y+(0-oc)*conv1P)
				for ic := 1; ic < conv1C; ic++ {
					p := w[oc*conv1C+ic] * in.At(x, y+(ic-oc)*conv1P)
					acc = acc + p
				}
				var m float32
				if oc == sel {
					m = 1
				}
				p := m * acc
				if oc == 0 {
					tot = p
				} else {
					tot = tot + p
				}
			}
			out.Set(x, y, tot)
		}
	}
	return out
}

// PackConv2D lays out a dense channel-major activation image (channels
// x h rows of width w) into the padded plane format Conv3x3 consumes:
// each channel becomes h+2 rows whose first and last rows replicate
// the channel's edge rows (clamp padding), so the operator computes a
// clamped-boundary convolution.
func PackConv2D(act *pixel.Image, channels int) (*pixel.Image, error) {
	if channels <= 0 || act.H%channels != 0 {
		return nil, fmt.Errorf("workloads: %d rows not divisible into %d channels", act.H, channels)
	}
	h := act.H / channels
	out := pixel.New(act.W, channels*(h+2))
	for c := 0; c < channels; c++ {
		for r := -1; r <= h; r++ {
			src := r
			if src < 0 {
				src = 0
			}
			if src >= h {
				src = h - 1
			}
			for x := 0; x < act.W; x++ {
				out.Set(x, c*(h+2)+r+1, act.At(x, c*h+src))
			}
		}
	}
	return out, nil
}

// --------------------------------------------------- transformer block

// Fused transformer feed-forward block: h = relu(W1*x + b1) (first
// GEMM + bias + activation, one materialized stage) followed by
// out = W2*h (second GEMM). xfD is the model dimension, xfF the
// hidden dimension.
const (
	xfD = 16
	xfF = 12
)

func xfW1() []float32 { return dnnWeights(0x58463157, xfF*xfD) }
func xfB1() []float32 { return dnnWeights(0x58464231, xfF) }
func xfW2() []float32 { return dnnWeights(0x58463257, xfD*xfF) }

func buildTransformer() *Workload1 {
	w1, b1, w2 := xfW1(), xfB1(), xfW2()
	hSum := halide.Sum(xfD, 1, func(k, _ int) halide.Expr {
		col := make([]float32, xfF)
		for y := range col {
			col[y] = w1[y*xfD+k]
		}
		return halide.Mul(
			halide.NewTab(col, halide.CScale(0, 0, 1), halide.C(0)),
			halide.InC(halide.C(0), halide.CScale(0, k, 1)))
	})
	h := halide.NewFunc("xf_h").Define(
		halide.Max(halide.Add(hSum, halide.NewTab(b1, halide.CScale(0, 0, 1), halide.C(0))), halide.K(0))).
		ComputeRoot().LoadPGSM()
	oSum := halide.Sum(xfF, 1, func(k, _ int) halide.Expr {
		col := make([]float32, xfD)
		for y := range col {
			col[y] = w2[y*xfF+k]
		}
		return halide.Mul(
			halide.NewTab(col, halide.CScale(0, 0, 1), halide.C(0)),
			h.AtC(halide.C(0), halide.CScale(0, k, 1)))
	})
	out := halide.NewFunc("xf_out").Define(oSum).LoadPGSM()
	p := halide.NewPipeline("Transformer", out).IPIMTile(8, xfD).MultiArraySchedule(true)
	return &Workload1{Pipe: p}
}

func hostTransformer(in *pixel.Image) *pixel.Image {
	w1, b1, w2 := xfW1(), xfB1(), xfW2()
	out := pixel.New(in.W, in.H)
	var h [xfF]float32
	for x := 0; x < in.W; x++ {
		for y := 0; y < xfF; y++ {
			acc := w1[y*xfD] * in.At(x, 0)
			for k := 1; k < xfD; k++ {
				p := w1[y*xfD+k] * in.At(x, k)
				acc = acc + p
			}
			s := acc + b1[y]
			if s > 0 {
				h[y] = s
			} else {
				h[y] = 0
			}
		}
		for y := 0; y < xfD; y++ {
			acc := w2[y*xfF] * h[0]
			for k := 1; k < xfF; k++ {
				p := w2[y*xfF+k] * h[k]
				acc = acc + p
			}
			out.Set(x, y, acc)
		}
	}
	return out
}

// ------------------------------------------------------------ registry

// DNN returns the DNN/GEMM workload family. The heights are fixed by
// operator geometry (feature and channel counts); pass them through
// unchanged and scale only the width.
func DNN() []DNNWorkload {
	return []DNNWorkload{
		{Name: "GEMM", Description: fmt.Sprintf("%dx%d weight GEMM over token columns", gemmK, gemmK),
			Build: buildGEMM, Host: hostGEMM,
			TestW: 64, TestH: gemmK, BenchW: 1024, BenchH: gemmK},
		{Name: "Conv3x3", Description: fmt.Sprintf("3x3 conv, %d->%d channels, planes layout", convC, convC),
			Build: buildConv3x3, Host: hostConv3x3,
			TestW: 32, TestH: convRows, BenchW: 1024, BenchH: convRows},
		{Name: "Conv1x1", Description: fmt.Sprintf("1x1 conv, %d->%d channels, planes layout", conv1C, conv1C),
			Build: buildConv1x1, Host: hostConv1x1,
			TestW: 32, TestH: conv1Rows, BenchW: 1024, BenchH: conv1Rows},
		{Name: "Transformer", Description: fmt.Sprintf("fused FFN block: relu(W1*x+b1) then W2*h, d=%d f=%d", xfD, xfF),
			Build: buildTransformer, Host: hostTransformer,
			TestW: 64, TestH: xfD, BenchW: 512, BenchH: xfD},
	}
}

// DNNByName finds a DNN workload.
func DNNByName(name string) (DNNWorkload, error) {
	for _, w := range DNN() {
		if w.Name == name {
			return w, nil
		}
	}
	return DNNWorkload{}, fmt.Errorf("workloads: unknown DNN workload %q", name)
}
