package workloads

import (
	"testing"

	"ipim/internal/compiler"
	"ipim/internal/cube"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// TestDNNMatchHostGolden runs every DNN workload at test size on the
// tiny machine and pins the triple equality the family guarantees:
// device output = host golden = reference interpreter, bit for bit,
// under both schedules. (The root dnn_test.go sweeps sizes and modes;
// this is the package's own gate.)
func TestDNNMatchHostGolden(t *testing.T) {
	for _, wl := range DNN() {
		for _, multiArray := range []bool{false, true} {
			wl, multiArray := wl, multiArray
			name := wl.Name
			if multiArray {
				name += "/multi-array"
			}
			t.Run(name, func(t *testing.T) {
				cfg := sim.TestTiny()
				pipe := wl.Build().Pipe.MultiArraySchedule(multiArray)
				img := pixel.Synth(wl.TestW, wl.TestH, 0xD2D2+uint64(len(wl.Name)))
				art, err := compiler.Compile(&cfg, pipe, img.W, img.H, compiler.Opt)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				m, err := cube.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := compiler.LoadInput(m, art, img); err != nil {
					t.Fatal(err)
				}
				if _, err := compiler.Execute(m, art); err != nil {
					t.Fatalf("run: %v", err)
				}
				got, err := compiler.ReadOutput(m, art)
				if err != nil {
					t.Fatal(err)
				}
				golden := wl.Host(img)
				if d := pixel.MaxAbsDiff(got, golden); d != 0 {
					t.Errorf("device output differs from host golden by %g", d)
				}
				ref, err := pipe.Reference(img)
				if err != nil {
					t.Fatal(err)
				}
				if d := pixel.MaxAbsDiff(golden, ref); d != 0 {
					t.Errorf("host golden differs from reference interpreter by %g", d)
				}
			})
		}
	}
}

func TestDNNByName(t *testing.T) {
	wl, err := DNNByName("GEMM")
	if err != nil || wl.Name != "GEMM" {
		t.Fatalf("DNNByName(GEMM) = %v, %v", wl.Name, err)
	}
	if _, err := DNNByName("NoSuch"); err == nil {
		t.Fatal("DNNByName(NoSuch) did not fail")
	}
	if len(DNN()) != 4 {
		t.Fatalf("DNN() has %d workloads, want 4", len(DNN()))
	}
}

func TestPackConv2DPadding(t *testing.T) {
	act := pixel.Synth(8, 6, 3) // 2 channels x 3 rows
	packed, err := PackConv2D(act, 2)
	if err != nil {
		t.Fatal(err)
	}
	if packed.W != 8 || packed.H != 10 {
		t.Fatalf("packed size %dx%d, want 8x10", packed.W, packed.H)
	}
	for c := 0; c < 2; c++ {
		base := c * 5
		for x := 0; x < 8; x++ {
			if packed.At(x, base) != act.At(x, c*3) {
				t.Fatalf("channel %d top pad not replicated at x=%d", c, x)
			}
			if packed.At(x, base+4) != act.At(x, c*3+2) {
				t.Fatalf("channel %d bottom pad not replicated at x=%d", c, x)
			}
		}
	}
	if _, err := PackConv2D(act, 4); err == nil {
		t.Fatal("ragged channel split accepted")
	}
}
