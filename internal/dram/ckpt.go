package dram

// Checkpoint codec for the controller. A controller's architectural
// state at a phase barrier is exactly its canonical timing snapshot
// (CaptureTiming's equivalence proof: two controllers with equal
// canonical snapshots schedule any identical future request stream
// identically) plus the policies the snapshot is keyed under, the
// cumulative Stats, and the per-bank ECC tallies. The request queue is
// empty at barriers by construction, so no in-flight requests are
// serialized; CaptureTiming/RestoreTiming both enforce that invariant.
//
// The decode path follows the repository-wide checkpoint discipline:
// DecodeCtrlCkpt parses and validates into a CtrlImage without touching
// any controller, and ApplyCtrlCkpt applies a validated image
// infallibly, so a corrupt checkpoint can never leave a half-restored
// controller.

import (
	"fmt"

	"ipim/internal/ckpt"
)

// CtrlImage is a decoded, validated controller checkpoint, ready to be
// applied with ApplyCtrlCkpt. It is produced only by DecodeCtrlCkpt.
type CtrlImage struct {
	snap  TimingSnapshot
	stats Stats
	ecc   []BankECC
}

// EncodeCkpt appends the controller's checkpoint state to e, with all
// times rebased to base (the owning vault's clock at the barrier). The
// request queue must be empty; CaptureTiming panics otherwise.
func (c *Controller) EncodeCkpt(e *ckpt.Enc, base int64) {
	var s TimingSnapshot
	c.CaptureTiming(base, &s)
	e.U8(uint8(s.page))
	e.U8(uint8(s.sched))
	e.U32(uint32(len(s.banks)))
	for _, b := range s.banks {
		e.Int(b.openRow)
		e.I64(b.preReady)
		e.I64(b.actReady)
		e.I64(b.colReady)
	}
	e.I64s(s.actTimes)
	e.I64(s.lastAct)
	e.Bool(s.hadAct)
	e.I64s(s.lastActGroup)
	e.Bools(s.hadActGroup)
	e.Int(s.bypassed)
	e.I64(s.nextRefresh)
	e.I64(s.refUntil)

	st := c.Stats
	e.I64(st.Reads)
	e.I64(st.Writes)
	e.I64(st.Activates)
	e.I64(st.Precharges)
	e.I64(st.Refreshes)
	e.I64(st.RowHits)
	e.I64(st.RowMisses)
	e.I64(st.QueueFullStalls)
	e.I64(st.BusyCycles)
	e.I64(st.ECCCorrected)
	e.I64(st.ECCUncorrected)

	e.U32(uint32(len(c.bankECC)))
	for _, b := range c.bankECC {
		e.I64(b.Corrected)
		e.I64(b.Uncorrected)
	}
}

// DecodeCtrlCkpt parses one controller checkpoint from d and validates
// it against a controller with nBanks banks. It touches no controller
// state; errors wrap ckpt.ErrCorrupt.
func DecodeCtrlCkpt(d *ckpt.Dec, nBanks int) (*CtrlImage, error) {
	img := &CtrlImage{}
	s := &img.snap
	s.page = PagePolicy(d.U8())
	s.sched = SchedPolicy(d.U8())
	nb := int(d.U32())
	if d.Err() == nil && nb != nBanks {
		return nil, fmt.Errorf("dram: checkpoint has %d banks, controller has %d: %w", nb, nBanks, ckpt.ErrCorrupt)
	}
	for i := 0; i < nb && d.Err() == nil; i++ {
		s.banks = append(s.banks, bankSnap{
			openRow:  d.Int(),
			preReady: d.I64(),
			actReady: d.I64(),
			colReady: d.I64(),
		})
	}
	s.actTimes = d.I64s()
	s.lastAct = d.I64()
	s.hadAct = d.Bool()
	s.lastActGroup = d.I64s()
	s.hadActGroup = d.Bools()
	s.bypassed = d.Int()
	s.nextRefresh = d.I64()
	s.refUntil = d.I64()

	img.stats = Stats{
		Reads:           d.I64(),
		Writes:          d.I64(),
		Activates:       d.I64(),
		Precharges:      d.I64(),
		Refreshes:       d.I64(),
		RowHits:         d.I64(),
		RowMisses:       d.I64(),
		QueueFullStalls: d.I64(),
		BusyCycles:      d.I64(),
		ECCCorrected:    d.I64(),
		ECCUncorrected:  d.I64(),
	}

	ne := int(d.U32())
	if d.Err() == nil && ne != nBanks {
		return nil, fmt.Errorf("dram: checkpoint has ECC tallies for %d banks, controller has %d: %w", ne, nBanks, ckpt.ErrCorrupt)
	}
	for i := 0; i < ne && d.Err() == nil; i++ {
		img.ecc = append(img.ecc, BankECC{Corrected: d.I64(), Uncorrected: d.I64()})
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	groups := (nBanks + 1) / 2
	if s.page > ClosePage || s.sched > FCFS {
		return nil, fmt.Errorf("dram: checkpoint has unknown policy (page=%d sched=%d): %w", s.page, s.sched, ckpt.ErrCorrupt)
	}
	if len(s.lastActGroup) != groups || len(s.hadActGroup) != groups {
		return nil, fmt.Errorf("dram: checkpoint has %d/%d ACT groups, controller has %d: %w",
			len(s.lastActGroup), len(s.hadActGroup), groups, ckpt.ErrCorrupt)
	}
	if len(s.actTimes) > 8 {
		return nil, fmt.Errorf("dram: checkpoint carries %d ACT timestamps (max 8): %w", len(s.actTimes), ckpt.ErrCorrupt)
	}
	return img, nil
}

// ApplyCtrlCkpt rewrites the controller's state from a validated image,
// rebasing snapshot times to base (the owning vault's restored clock —
// the same value the snapshot was captured against, so the round trip
// is exact). The request queue must be empty. Never fails: all
// validation happened in DecodeCtrlCkpt.
func (c *Controller) ApplyCtrlCkpt(img *CtrlImage, base int64) {
	c.SetPolicies(img.snap.page, img.snap.sched)
	c.RestoreTiming(&img.snap, base, true)
	c.Stats = img.stats
	copy(c.bankECC, img.ecc)
}
