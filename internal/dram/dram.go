// Package dram models the DRAM banks and the lightweight in-DRAM memory
// controller that iPIM integrates into every process group (paper
// Sec. IV-E): a 16-entry memory request queue, DRAM command translation
// and issue logic respecting the bank timing constraints of Table III
// (tRCD, tCCD, tRTP, tRP, tRAS plus the power-limiting tRRDS/tRRDL/tFAW),
// an open-row register per bank, two page policies (open/close) and two
// scheduling policies (FCFS, FR-FCFS), and periodic refresh per
// tREFI/tRFC "similar to AxRAM".
//
// The model is timing-only: it decides *when* each 128-bit column access
// completes. Data movement is performed by the engine layer when the
// controller reports completion, keeping one source of truth for bytes.
package dram

import (
	"fmt"
	"math"
)

// PagePolicy selects what happens to the row buffer after an access.
type PagePolicy uint8

const (
	// OpenPage leaves the accessed row open (default, Table III).
	OpenPage PagePolicy = iota
	// ClosePage precharges immediately after every access.
	ClosePage
)

func (p PagePolicy) String() string {
	if p == OpenPage {
		return "open"
	}
	return "close"
}

// SchedPolicy selects the request scheduling discipline.
type SchedPolicy uint8

const (
	// FRFCFS prefers row-buffer hits over older misses (default).
	FRFCFS SchedPolicy = iota
	// FCFS issues strictly in arrival order.
	FCFS
)

func (s SchedPolicy) String() string {
	if s == FRFCFS {
		return "FR-FCFS"
	}
	return "FCFS"
}

// Timing holds the DRAM timing parameters in cycles (1 cycle = 1 ns at
// the paper's 1 GHz clock). Defaults mirror Table III; tCL/tCWL and the
// refresh interval are HBM2-class values the paper's table omits but any
// executable model requires (documented in DESIGN.md).
type Timing struct {
	TRCD  int // ACT -> RD/WR
	TCCD  int // column-to-column (burst occupancy)
	TRTP  int // RD -> PRE
	TRP   int // PRE -> ACT
	TRAS  int // ACT -> PRE
	TRRDS int // ACT -> ACT, different bank, same die
	TRRDL int // ACT -> ACT, same bank group
	TFAW  int // four-activate window per die
	TCL   int // RD -> data
	TCWL  int // WR -> data
	TWR   int // end of write data -> PRE
	TREFI int // refresh interval
	TRFC  int // refresh cycle time
}

// DefaultTiming returns the Table III timing set.
func DefaultTiming() Timing {
	return Timing{
		TRCD: 14, TCCD: 2, TRTP: 4, TRP: 14, TRAS: 33,
		TRRDS: 4, TRRDL: 6, TFAW: 16,
		TCL: 14, TCWL: 12, TWR: 12,
		TREFI: 3900, TRFC: 350,
	}
}

// Geometry describes one bank.
type Geometry struct {
	BankBytes int // per-bank capacity (Table III: 16 MB)
	RowBytes  int // row buffer size
}

// DefaultGeometry returns a 16 MB bank with 2 KB rows.
func DefaultGeometry() Geometry {
	return Geometry{BankBytes: 16 << 20, RowBytes: 2 << 10}
}

// RowOf maps a byte address to its row index.
func (g Geometry) RowOf(addr uint32) int { return int(addr) / g.RowBytes }

// AccessBytes is the bank I/O width per column access: 128 bits.
const AccessBytes = 16

// NoEvent is the NextEvent sentinel for an idle controller: no queued
// request, so no future time at which its state changes on its own.
const NoEvent int64 = math.MaxInt64

// Request is one 128-bit column access. The engine allocates a Request
// (vaults recycle them through a free list), enqueues it, and polls
// Done/Finish after advancing the controller. All time fields are in
// DRAM cycles (1 cycle = 1 ns at the paper's 1 GHz clock). Enqueue
// reinitializes every scheduling field, so a recycled Request needs no
// explicit reset.
type Request struct {
	Bank  int    // bank index within this controller (= PE index in PG)
	Addr  uint32 // byte address within the bank
	Write bool

	Arrive int64 // time the request entered the queue
	Done   bool
	Finish int64 // data available (read) / write recoverable

	issued bool // command sequence completed; burst scheduled
	row    int  // Addr's row index, cached at Enqueue
}

// Stats counts controller activity for the energy model and Fig. 13
// utilization. The ECC counters are fed by the fault-injection layer
// (internal/fault) via NoteECC; without a fault plan they stay zero.
type Stats struct {
	Reads, Writes   int64
	Activates       int64
	Precharges      int64
	Refreshes       int64
	RowHits         int64
	RowMisses       int64
	QueueFullStalls int64
	BusyCycles      int64 // cycles with ≥1 request in flight
	ECCCorrected    int64 // single-bit read errors corrected by SECDED
	ECCUncorrected  int64 // multi-bit read errors detected, data corrupt
}

// BankECC is one bank's ECC error tally.
type BankECC struct {
	Corrected   int64
	Uncorrected int64
}

type bankState struct {
	openRow   int   // -1 when precharged
	actAt     int64 // time of last ACT
	preReady  int64 // earliest next PRE
	actReady  int64 // earliest next ACT (bank-local: tRP after PRE)
	colReady  int64 // earliest next RD/WR (tRCD after ACT, tCCD after last col)
	lastWrEnd int64 // end of last write data (for tWR before PRE)
}

// Controller is the in-DRAM memory controller of one process group,
// serving the banks of its PEs.
type Controller struct {
	timing Timing
	geom   Geometry
	page   PagePolicy
	sched  SchedPolicy
	qCap   int

	banks    []bankState
	queue    []*Request
	actTimes []int64 // rolling ACT timestamps for the tFAW window
	// lastAct is the most recent ACT across banks (tRRDS); it is only
	// meaningful once hadAct is set. An explicit flag instead of a
	// time sentinel keeps the timing arithmetic free of values that
	// could overflow when mixed with large timing parameters.
	lastAct int64
	hadAct  bool
	// lastActGroup tracks the most recent ACT per bank group: activates
	// within the same group are spaced by the longer tRRDL (Table III).
	// Banks pair into groups of two. Valid only where hadActGroup is set.
	lastActGroup []int64
	hadActGroup  []bool

	// bankECC tallies injected ECC events per bank (totals in Stats).
	bankECC []BankECC

	nextRefresh int64
	refUntil    int64 // in-progress refresh blackout end

	// starvation bound for FR-FCFS: a miss older than this many issued
	// hits is prioritized (prevents unbounded bypassing).
	maxBypass int
	bypassed  int

	lastBusy int64 // for BusyCycles accounting

	Stats Stats
}

// NewController builds a controller for nBanks banks. qCap is the
// request queue capacity (Table III: 16).
func NewController(nBanks, qCap int, t Timing, g Geometry, page PagePolicy, sched SchedPolicy) *Controller {
	if nBanks <= 0 || qCap <= 0 {
		panic(fmt.Sprintf("dram: invalid controller shape banks=%d qcap=%d", nBanks, qCap))
	}
	c := &Controller{
		timing: t, geom: g, page: page, sched: sched, qCap: qCap,
		banks:        make([]bankState, nBanks),
		nextRefresh:  int64(t.TREFI),
		maxBypass:    16,
		lastActGroup: make([]int64, (nBanks+1)/2),
		hadActGroup:  make([]bool, (nBanks+1)/2),
		bankECC:      make([]BankECC, nBanks),
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	return c
}

// ResetTiming returns the controller to its just-built timing state —
// queue empty, all banks precharged and immediately schedulable, the
// refresh epoch rewound — while preserving the cumulative Stats and the
// per-bank ECC tallies. The run-abort path uses it so a machine whose
// clocks rewound to zero does not carry bank-readiness or refresh times
// from the abandoned timeline.
func (c *Controller) ResetTiming() {
	for i := range c.banks {
		c.banks[i] = bankState{openRow: -1}
	}
	c.queue = c.queue[:0]
	c.actTimes = c.actTimes[:0]
	c.lastAct, c.hadAct = 0, false
	for i := range c.lastActGroup {
		c.lastActGroup[i] = 0
		c.hadActGroup[i] = false
	}
	c.nextRefresh = int64(c.timing.TREFI)
	c.refUntil = 0
	c.bypassed = 0
	c.lastBusy = 0
}

// SetPolicies switches the row-buffer and scheduling policies. Only
// safe while the controller is quiescent (queue empty, between runs):
// the schedule auto-tuner and the serving daemon use it to evaluate and
// serve tuned DRAM policies on a pooled machine without rebuilding it.
// Policies steer timing only, never data, so outputs are unaffected.
func (c *Controller) SetPolicies(page PagePolicy, sched SchedPolicy) {
	c.page = page
	c.sched = sched
}

// Policies reports the current row-buffer and scheduling policies.
func (c *Controller) Policies() (PagePolicy, SchedPolicy) { return c.page, c.sched }

// QueueLen reports current queue occupancy.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Full reports whether the request queue has no free slot.
func (c *Controller) Full() bool { return len(c.queue) >= c.qCap }

// Enqueue adds a request at time now. It returns false (and counts a
// stall) when the queue is full.
func (c *Controller) Enqueue(now int64, r *Request) bool {
	if c.Full() {
		c.Stats.QueueFullStalls++
		return false
	}
	if r.Bank < 0 || r.Bank >= len(c.banks) {
		panic(fmt.Sprintf("dram: request for bank %d of %d", r.Bank, len(c.banks)))
	}
	if int(r.Addr)+AccessBytes > c.geom.BankBytes {
		panic(fmt.Sprintf("dram: address %#x beyond bank capacity %#x", r.Addr, c.geom.BankBytes))
	}
	r.Arrive = now
	r.Done = false
	r.issued = false
	r.row = c.geom.RowOf(r.Addr)
	c.queue = append(c.queue, r)
	return true
}

// NextEvent returns the earliest future time (in DRAM cycles, strictly
// after now) at which the controller can make progress, or NoEvent when
// the queue is empty. This is the fast-forward lower bound the vault's
// event loop jumps to: it accounts for PRE/ACT sequences, tFAW windows
// and the lazily applied refresh blackouts (a pending refresh is
// materialized by earliestIssue the moment a request would cross it, so
// an idle controller never needs waking just to refresh).
func (c *Controller) NextEvent(now int64) int64 {
	if len(c.queue) == 0 {
		return NoEvent
	}
	best := NoEvent
	for _, r := range c.queue {
		if t := c.earliestIssue(r, now); t < best {
			best = t
		}
	}
	if best <= now {
		return now + 1
	}
	return best
}

// AdvanceTo processes the command schedule up to and including time t,
// completing requests whose data transfers finish by then. The engine
// must call this with non-decreasing t.
func (c *Controller) AdvanceTo(t int64) {
	for {
		if len(c.queue) == 0 {
			return
		}
		r, issueAt := c.pick(t)
		if r == nil || issueAt > t {
			return
		}
		c.issue(r, issueAt)
	}
}

// pick selects the next request per the scheduling policy and the time
// its column access can issue. Returns nil when nothing can issue by t.
func (c *Controller) pick(t int64) (*Request, int64) {
	if len(c.queue) == 0 {
		return nil, 0
	}
	if c.sched == FCFS {
		r := c.queue[0]
		return r, c.earliestIssue(r, r.Arrive)
	}
	// FR-FCFS: oldest row-hit first, unless the starvation bound is hit;
	// otherwise the oldest request. The bypass counter is maintained in
	// issue() (it counts actual bypassing issues, not speculative picks).
	oldest := c.queue[0]
	if c.bypassed >= c.maxBypass {
		return oldest, c.earliestIssue(oldest, oldest.Arrive)
	}
	for _, r := range c.queue {
		if c.banks[r.Bank].openRow == r.row {
			return r, c.earliestIssue(r, r.Arrive)
		}
	}
	return oldest, c.earliestIssue(oldest, oldest.Arrive)
}

// earliestIssue computes when the request's final column command (RD/WR)
// can issue, accounting for any needed PRE/ACT and refresh blackout.
func (c *Controller) earliestIssue(r *Request, now int64) int64 {
	b := &c.banks[r.Bank]
	row := r.row
	t := now
	if t < c.refUntil {
		t = c.refUntil
	}
	// Refresh epoch boundary: if the command sequence would cross the
	// next refresh time, it waits until after refresh. (The controller
	// refreshes eagerly at epoch boundaries.)
	if t >= c.nextRefresh {
		t = c.refreshAt(t)
	}
	if b.openRow == row {
		if t < b.colReady {
			t = b.colReady
		}
		return t
	}
	// Row miss: PRE (if a row is open) then ACT then column.
	if b.openRow != -1 {
		pre := t
		if pre < b.preReady {
			pre = b.preReady
		}
		t = pre + int64(c.timing.TRP)
	}
	act := t
	if act < b.actReady {
		act = b.actReady
	}
	if c.hadAct {
		if t := c.lastAct + int64(c.timing.TRRDS); act < t {
			act = t
		}
	}
	if c.hadActGroup[r.Bank/2] {
		if g := c.lastActGroup[r.Bank/2] + int64(c.timing.TRRDL); act < g {
			act = g // same bank group: longer ACT-to-ACT spacing
		}
	}
	if faw := c.fawReady(); act < faw {
		act = faw
	}
	col := act + int64(c.timing.TRCD)
	if col < b.colReady {
		col = b.colReady
	}
	return col
}

// fawReady returns the earliest time a new ACT satisfies tFAW.
func (c *Controller) fawReady() int64 {
	if len(c.actTimes) < 4 {
		return 0
	}
	return c.actTimes[len(c.actTimes)-4] + int64(c.timing.TFAW)
}

// refreshAt performs the pending refresh(es) ending at or after time t
// and returns the time commands may resume.
func (c *Controller) refreshAt(t int64) int64 {
	for t >= c.nextRefresh {
		start := c.nextRefresh
		if start < c.refUntil {
			start = c.refUntil
		}
		// All banks precharge for refresh.
		for i := range c.banks {
			c.banks[i].openRow = -1
		}
		c.refUntil = start + int64(c.timing.TRFC)
		c.nextRefresh += int64(c.timing.TREFI)
		c.Stats.Refreshes++
	}
	return c.refUntil
}

// issue executes the command sequence for r with the final column
// command at issueAt, updating bank state, stats and the request.
func (c *Controller) issue(r *Request, issueAt int64) {
	if len(c.queue) > 0 && c.queue[0] == r {
		c.bypassed = 0
	} else {
		c.bypassed++
	}
	b := &c.banks[r.Bank]
	row := r.row
	if b.openRow == row {
		c.Stats.RowHits++
	} else {
		c.Stats.RowMisses++
		if b.openRow != -1 {
			c.Stats.Precharges++
		}
		// ACT happened tRCD before the column command.
		actAt := issueAt - int64(c.timing.TRCD)
		b.actAt = actAt
		b.preReady = actAt + int64(c.timing.TRAS)
		c.lastAct = actAt
		c.hadAct = true
		c.lastActGroup[r.Bank/2] = actAt
		c.hadActGroup[r.Bank/2] = true
		c.actTimes = append(c.actTimes, actAt)
		if len(c.actTimes) > 8 {
			c.actTimes = c.actTimes[len(c.actTimes)-8:]
		}
		c.Stats.Activates++
		b.openRow = row
	}
	b.colReady = issueAt + int64(c.timing.TCCD)
	if r.Write {
		c.Stats.Writes++
		r.Finish = issueAt + int64(c.timing.TCWL) + 1
		b.lastWrEnd = r.Finish
		wrPre := r.Finish + int64(c.timing.TWR)
		if wrPre > b.preReady {
			b.preReady = wrPre
		}
	} else {
		c.Stats.Reads++
		r.Finish = issueAt + int64(c.timing.TCL) + 1
		rdPre := issueAt + int64(c.timing.TRTP)
		if rdPre > b.preReady {
			b.preReady = rdPre
		}
	}
	if c.page == ClosePage {
		// Auto-precharge as soon as legal.
		c.Stats.Precharges++
		b.actReady = b.preReady + int64(c.timing.TRP)
		b.openRow = -1
	}
	r.Done = true
	r.issued = true
	c.Stats.BusyCycles += r.Finish - r.Arrive
	// Remove from queue.
	for i, q := range c.queue {
		if q == r {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
}

// NoteECC records one injected ECC event on a bank read: corrected
// (single-bit, data intact) or uncorrected (multi-bit, data corrupt).
// Called by the fault-injection layer; totals land in Stats and a
// per-bank tally is kept for BankECCTally.
func (c *Controller) NoteECC(bank int, corrected bool) {
	if bank < 0 || bank >= len(c.bankECC) {
		panic(fmt.Sprintf("dram: ECC event for bank %d of %d", bank, len(c.bankECC)))
	}
	if corrected {
		c.Stats.ECCCorrected++
		c.bankECC[bank].Corrected++
	} else {
		c.Stats.ECCUncorrected++
		c.bankECC[bank].Uncorrected++
	}
}

// BankECCTally returns a copy of the per-bank ECC error counters.
func (c *Controller) BankECCTally() []BankECC {
	out := make([]BankECC, len(c.bankECC))
	copy(out, c.bankECC)
	return out
}
