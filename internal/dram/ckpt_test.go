package dram

import (
	"errors"
	"math"
	"testing"

	"ipim/internal/ckpt"
)

// warmCtrl drives a controller through a handful of requests plus ECC
// traffic so every serialized field is away from its zero value, and
// returns the clock after the last completion.
func warmCtrl(t *testing.T, c *Controller) int64 {
	t.Helper()
	now := int64(0)
	for i, r := range []*Request{
		{Bank: 0, Addr: 0, Write: false},
		{Bank: 1, Addr: 4096, Write: true},
		{Bank: 0, Addr: 64, Write: false}, // row hit on bank 0
		{Bank: 3, Addr: 1 << 20, Write: false},
	} {
		if !c.Enqueue(now, r) {
			t.Fatalf("request %d: queue full", i)
		}
		for !r.Done {
			ev := c.NextEvent(now)
			if ev == math.MaxInt64 {
				t.Fatal("controller idle with pending request")
			}
			now = ev
			c.AdvanceTo(now)
		}
	}
	c.NoteECC(0, true)
	c.NoteECC(2, false)
	return now
}

func encodeCtrl(c *Controller, base int64) []byte {
	var e ckpt.Enc
	c.EncodeCkpt(&e, base)
	return e.Bytes()
}

func TestCtrlCkptRoundTrip(t *testing.T) {
	src := newTestCtrl(OpenPage, FRFCFS)
	now := warmCtrl(t, src)
	payload := encodeCtrl(src, now)

	img, err := DecodeCtrlCkpt(ckpt.NewDec(payload), 4)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Restore onto a controller built with the other policies: the
	// checkpoint carries its own and must win.
	dst := newTestCtrl(ClosePage, FCFS)
	dst.ApplyCtrlCkpt(img, now)

	if p, s := dst.Policies(); p != OpenPage || s != FRFCFS {
		t.Errorf("restored policies = (%v, %v), want (OpenPage, FRFCFS)", p, s)
	}
	if dst.Stats != src.Stats {
		t.Errorf("restored Stats = %+v, want %+v", dst.Stats, src.Stats)
	}
	tal := dst.BankECCTally()
	if tal[0].Corrected != 1 || tal[2].Uncorrected != 1 {
		t.Errorf("restored ECC tally = %+v", tal)
	}
	// Re-encoding the restored controller at the same base must be
	// byte-identical: the canonical snapshot round-trips exactly.
	if got := encodeCtrl(dst, now); string(got) != string(payload) {
		t.Error("re-encoded checkpoint differs from the original")
	}
	// And the two controllers must schedule an identical future
	// request identically (the snapshot equivalence contract).
	a := runOne(t, src, now, 0, 64, false)
	b := runOne(t, dst, now, 0, 64, false)
	if a.Finish != b.Finish {
		t.Errorf("post-restore request finished at %d on the original, %d on the restored", a.Finish, b.Finish)
	}
}

func TestCtrlCkptRejections(t *testing.T) {
	src := newTestCtrl(OpenPage, FRFCFS)
	now := warmCtrl(t, src)
	payload := encodeCtrl(src, now)

	if _, err := DecodeCtrlCkpt(ckpt.NewDec(payload), 8); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("bank-count mismatch: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeCtrlCkpt(ckpt.NewDec(payload[:10]), 4); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 0xFF // impossible page policy
	if _, err := DecodeCtrlCkpt(ckpt.NewDec(bad), 4); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Errorf("unknown policy: err = %v, want ErrCorrupt", err)
	}
}
