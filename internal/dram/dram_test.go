package dram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestCtrl(page PagePolicy, sched SchedPolicy) *Controller {
	return NewController(4, 16, DefaultTiming(), DefaultGeometry(), page, sched)
}

func runOne(t *testing.T, c *Controller, now int64, bank int, addr uint32, write bool) *Request {
	t.Helper()
	r := &Request{Bank: bank, Addr: addr, Write: write}
	if !c.Enqueue(now, r) {
		t.Fatal("queue unexpectedly full")
	}
	for !r.Done {
		ev := c.NextEvent(now)
		if ev == math.MaxInt64 {
			t.Fatal("controller idle with pending request")
		}
		now = ev
		c.AdvanceTo(now)
	}
	return r
}

func TestColdReadLatency(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	r := runOne(t, c, 0, 0, 0, false)
	tm := DefaultTiming()
	want := int64(tm.TRCD + tm.TCL + 1) // ACT at 0, RD at tRCD, data at +tCL+1
	if r.Finish != want {
		t.Fatalf("cold read finish = %d, want %d", r.Finish, want)
	}
	if c.Stats.Activates != 1 || c.Stats.RowMisses != 1 || c.Stats.Reads != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	r1 := runOne(t, c, 0, 0, 0, false)
	// Same row: hit.
	r2 := runOne(t, c, r1.Finish, 0, 16, false)
	hitLat := r2.Finish - r2.Arrive
	// Different row: miss (needs PRE + ACT).
	r3 := runOne(t, c, r2.Finish, 0, uint32(DefaultGeometry().RowBytes*4), false)
	missLat := r3.Finish - r3.Arrive
	if hitLat >= missLat {
		t.Fatalf("row hit latency %d not faster than miss %d", hitLat, missLat)
	}
	if c.Stats.RowHits != 1 {
		t.Fatalf("expected exactly 1 row hit, stats = %+v", c.Stats)
	}
}

func TestClosePageNeverHits(t *testing.T) {
	c := newTestCtrl(ClosePage, FRFCFS)
	r1 := runOne(t, c, 0, 0, 0, false)
	r2 := runOne(t, c, r1.Finish, 0, 16, false)
	_ = r2
	if c.Stats.RowHits != 0 {
		t.Fatalf("close page produced row hits: %+v", c.Stats)
	}
	if c.Stats.Precharges < 2 {
		t.Fatalf("close page did not auto-precharge: %+v", c.Stats)
	}
}

func TestStreamRespectsTCCD(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	// Warm the row.
	r := runOne(t, c, 0, 0, 0, false)
	now := r.Finish
	// Enqueue a back-to-back stream of row hits.
	const n = 8
	reqs := make([]*Request, n)
	for i := range reqs {
		reqs[i] = &Request{Bank: 0, Addr: uint32(16 + 16*i)}
		if !c.Enqueue(now, reqs[i]) {
			t.Fatal("queue full")
		}
	}
	for !reqs[n-1].Done {
		ev := c.NextEvent(now)
		if ev == math.MaxInt64 {
			t.Fatal("stalled")
		}
		now = ev
		c.AdvanceTo(now)
	}
	tm := DefaultTiming()
	for i := 1; i < n; i++ {
		gap := reqs[i].Finish - reqs[i-1].Finish
		if gap != int64(tm.TCCD) {
			t.Fatalf("request %d finish gap = %d, want tCCD=%d", i, gap, tm.TCCD)
		}
	}
}

func TestWriteLatencyAndTWRGuard(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	w := runOne(t, c, 0, 0, 0, true)
	tm := DefaultTiming()
	wantW := int64(tm.TRCD + tm.TCWL + 1)
	if w.Finish != wantW {
		t.Fatalf("cold write finish = %d, want %d", w.Finish, wantW)
	}
	// A row miss right after the write must wait at least tWR before PRE.
	r := runOne(t, c, w.Finish, 0, uint32(DefaultGeometry().RowBytes*2), false)
	minFinish := w.Finish + int64(tm.TWR+tm.TRP+tm.TRCD+tm.TCL+1)
	if r.Finish < minFinish {
		t.Fatalf("post-write miss finished at %d, violates tWR window (min %d)", r.Finish, minFinish)
	}
}

func TestQueueFullRejects(t *testing.T) {
	c := NewController(1, 2, DefaultTiming(), DefaultGeometry(), OpenPage, FRFCFS)
	a := &Request{Bank: 0, Addr: 0}
	b := &Request{Bank: 0, Addr: 16}
	d := &Request{Bank: 0, Addr: 32}
	if !c.Enqueue(0, a) || !c.Enqueue(0, b) {
		t.Fatal("first two enqueues failed")
	}
	if c.Enqueue(0, d) {
		t.Fatal("third enqueue accepted into a 2-entry queue")
	}
	if c.Stats.QueueFullStalls != 1 {
		t.Fatalf("stall count = %d", c.Stats.QueueFullStalls)
	}
	if !c.Full() {
		t.Fatal("Full() = false with full queue")
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	// Open row 0 in bank 0.
	r := runOne(t, c, 0, 0, 0, false)
	now := r.Finish
	rowBytes := uint32(DefaultGeometry().RowBytes)
	miss := &Request{Bank: 0, Addr: rowBytes * 5} // row miss, arrives first
	hit := &Request{Bank: 0, Addr: 32}            // row hit, arrives second
	c.Enqueue(now, miss)
	c.Enqueue(now, hit)
	for !miss.Done || !hit.Done {
		now = c.NextEvent(now)
		c.AdvanceTo(now)
	}
	if hit.Finish >= miss.Finish {
		t.Fatalf("FR-FCFS did not prioritize row hit: hit=%d miss=%d", hit.Finish, miss.Finish)
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	c := newTestCtrl(OpenPage, FCFS)
	r := runOne(t, c, 0, 0, 0, false)
	now := r.Finish
	rowBytes := uint32(DefaultGeometry().RowBytes)
	miss := &Request{Bank: 0, Addr: rowBytes * 5}
	hit := &Request{Bank: 0, Addr: 32}
	c.Enqueue(now, miss)
	c.Enqueue(now, hit)
	for !miss.Done || !hit.Done {
		now = c.NextEvent(now)
		c.AdvanceTo(now)
	}
	if miss.Finish >= hit.Finish {
		t.Fatalf("FCFS reordered: miss=%d hit=%d", miss.Finish, hit.Finish)
	}
}

func TestFRFCFSStarvationBound(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	r := runOne(t, c, 0, 0, 0, false)
	now := r.Finish
	rowBytes := uint32(DefaultGeometry().RowBytes)
	miss := &Request{Bank: 0, Addr: rowBytes * 7}
	c.Enqueue(now, miss)
	// Keep feeding row hits; the miss must still complete within the
	// bypass bound.
	issued := 0
	for !miss.Done {
		if c.QueueLen() < 8 {
			h := &Request{Bank: 0, Addr: uint32(16 * (issued % 64))}
			c.Enqueue(now, h)
			issued++
		}
		now = c.NextEvent(now)
		c.AdvanceTo(now)
		if issued > 200 {
			t.Fatal("miss starved beyond 200 hit injections")
		}
	}
}

func TestRefreshBlackout(t *testing.T) {
	tm := DefaultTiming()
	c := newTestCtrl(OpenPage, FRFCFS)
	// A request arriving right at the refresh epoch waits out tRFC.
	r := &Request{Bank: 0, Addr: 0}
	now := int64(tm.TREFI)
	c.Enqueue(now, r)
	for !r.Done {
		now = c.NextEvent(now)
		c.AdvanceTo(now)
	}
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refresh recorded at tREFI boundary")
	}
	minFinish := int64(tm.TREFI+tm.TRFC) + int64(tm.TRCD+tm.TCL+1)
	if r.Finish < minFinish {
		t.Fatalf("request finished at %d inside refresh blackout (min %d)", r.Finish, minFinish)
	}
}

func TestBankParallelism(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	// Four cold reads to four different banks overlap: total time far
	// below 4x the single-read latency.
	reqs := make([]*Request, 4)
	for i := range reqs {
		reqs[i] = &Request{Bank: i, Addr: 0}
		c.Enqueue(0, reqs[i])
	}
	now := int64(0)
	for !reqs[3].Done {
		now = c.NextEvent(now)
		c.AdvanceTo(now)
	}
	single := int64(DefaultTiming().TRCD + DefaultTiming().TCL + 1)
	var last int64
	for _, r := range reqs {
		if r.Finish > last {
			last = r.Finish
		}
	}
	if last >= 4*single {
		t.Fatalf("no bank-level parallelism: last finish %d vs single %d", last, single)
	}
	// But tRRDS must stagger the activates: not all four finish together.
	if reqs[3].Finish == reqs[0].Finish {
		t.Fatal("tRRDS not enforced between banks")
	}
}

func TestTRRDSpacing(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	a := &Request{Bank: 0, Addr: 0}
	b := &Request{Bank: 1, Addr: 0}
	c.Enqueue(0, a)
	c.Enqueue(0, b)
	now := int64(0)
	for !a.Done || !b.Done {
		now = c.NextEvent(now)
		c.AdvanceTo(now)
	}
	gap := b.Finish - a.Finish
	if gap < int64(DefaultTiming().TRRDS) {
		t.Fatalf("ACT spacing %d below tRRDS %d", gap, DefaultTiming().TRRDS)
	}
}

func TestTRRDLWithinBankGroup(t *testing.T) {
	// Banks 0 and 1 share a group: ACT spacing >= tRRDL (6).
	// Banks 0 and 2 are in different groups: spacing >= tRRDS (4) only.
	spacing := func(bankB int) int64 {
		c := newTestCtrl(OpenPage, FRFCFS)
		a := &Request{Bank: 0, Addr: 0}
		b := &Request{Bank: bankB, Addr: 0}
		c.Enqueue(0, a)
		c.Enqueue(0, b)
		now := int64(0)
		for !a.Done || !b.Done {
			now = c.NextEvent(now)
			c.AdvanceTo(now)
		}
		d := b.Finish - a.Finish
		if d < 0 {
			d = -d
		}
		return d
	}
	sameGroup := spacing(1)
	crossGroup := spacing(2)
	tm := DefaultTiming()
	if sameGroup < int64(tm.TRRDL) {
		t.Errorf("same-group ACT spacing %d < tRRDL %d", sameGroup, tm.TRRDL)
	}
	if crossGroup >= sameGroup {
		t.Errorf("cross-group spacing %d not tighter than same-group %d", crossGroup, sameGroup)
	}
}

func TestEnqueuePanicsOnBadRequest(t *testing.T) {
	c := newTestCtrl(OpenPage, FRFCFS)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad bank accepted")
			}
		}()
		c.Enqueue(0, &Request{Bank: 9, Addr: 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-capacity address accepted")
			}
		}()
		c.Enqueue(0, &Request{Bank: 0, Addr: uint32(DefaultGeometry().BankBytes)})
	}()
}

func TestNewControllerPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero banks accepted")
		}
	}()
	NewController(0, 16, DefaultTiming(), DefaultGeometry(), OpenPage, FRFCFS)
}

func TestPolicyStrings(t *testing.T) {
	if OpenPage.String() != "open" || ClosePage.String() != "close" {
		t.Error("page policy strings")
	}
	if FRFCFS.String() != "FR-FCFS" || FCFS.String() != "FCFS" {
		t.Error("sched policy strings")
	}
}

// policyCases enumerates all four page x scheduler combinations for the
// table-driven policy tests below.
var policyCases = []struct {
	name  string
	page  PagePolicy
	sched SchedPolicy
}{
	{"open/FR-FCFS", OpenPage, FRFCFS},
	{"open/FCFS", OpenPage, FCFS},
	{"close/FR-FCFS", ClosePage, FRFCFS},
	{"close/FCFS", ClosePage, FCFS},
}

// Regression for the lastAct/lastActGroup "no prior ACT" sentinel: the
// first ACT after construction and the first ACT after a refresh epoch
// must issue with zero extra delay under every policy combination. A
// time-sentinel regression (e.g. math.MinInt64/2 feeding tRRD sums)
// would surface here as a shifted finish time.
func TestFirstActNeverDelayed(t *testing.T) {
	tm := DefaultTiming()
	for _, tc := range policyCases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCtrl(tc.page, tc.sched)
			// First ACT after construction: exactly the cold latency.
			r := runOne(t, c, 0, 0, 0, false)
			want := int64(tm.TRCD + tm.TCL + 1)
			if r.Finish != want {
				t.Fatalf("first ACT after construction: finish=%d, want %d", r.Finish, want)
			}
			// Seed lastAct/lastActGroup, then cross a refresh epoch. The
			// refresh closes all rows, so the post-refresh request needs a
			// fresh ACT; it must issue the instant the blackout ends.
			r2 := runOne(t, c, int64(tm.TREFI), 0, uint32(DefaultGeometry().RowBytes*3), false)
			want2 := int64(tm.TREFI+tm.TRFC) + int64(tm.TRCD+tm.TCL+1)
			if r2.Finish != want2 {
				t.Fatalf("first ACT after refresh epoch: finish=%d, want %d (blackout end + cold latency)", r2.Finish, want2)
			}
			if c.Stats.Refreshes == 0 {
				t.Fatal("refresh epoch never fired; test exercised nothing")
			}
		})
	}
}

// Table-driven scheduler ordering: with an open row, FR-FCFS reorders a
// younger row hit past an older miss; FCFS must not; and under
// ClosePage there is never an open row to hit, so FR-FCFS degenerates
// to arrival order too.
func TestSchedulerReorderPolicyTable(t *testing.T) {
	rowBytes := uint32(DefaultGeometry().RowBytes)
	cases := []struct {
		name        string
		page        PagePolicy
		sched       SchedPolicy
		youngerWins bool // the younger same-row request finishes first
	}{
		{"open/FR-FCFS reorders past older miss", OpenPage, FRFCFS, true},
		{"open/FCFS keeps arrival order", OpenPage, FCFS, false},
		{"close/FR-FCFS has no hits to prefer", ClosePage, FRFCFS, false},
		{"close/FCFS keeps arrival order", ClosePage, FCFS, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCtrl(tc.page, tc.sched)
			// Touch row 0 so OpenPage leaves it open.
			warm := runOne(t, c, 0, 0, 0, false)
			now := warm.Finish
			older := &Request{Bank: 0, Addr: rowBytes * 5} // different row, arrives first
			younger := &Request{Bank: 0, Addr: 32}         // row 0, arrives second
			c.Enqueue(now, older)
			c.Enqueue(now+1, younger)
			for !older.Done || !younger.Done {
				now = c.NextEvent(now)
				c.AdvanceTo(now)
			}
			if got := younger.Finish < older.Finish; got != tc.youngerWins {
				t.Fatalf("younger-first = %v, want %v (younger=%d older=%d)",
					got, tc.youngerWins, younger.Finish, older.Finish)
			}
			if tc.page == ClosePage && c.Stats.RowHits != 0 {
				t.Fatalf("close page recorded row hits: %+v", c.Stats)
			}
		})
	}
}

// Refresh-window crossing under every policy: a stream that straddles
// the tREFI boundary must pause for exactly one tRFC blackout, complete
// every request, and keep ACT bookkeeping consistent (one ACT per miss).
func TestRefreshWindowCrossingPolicyTable(t *testing.T) {
	tm := DefaultTiming()
	rowBytes := uint32(DefaultGeometry().RowBytes)
	for _, tc := range policyCases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCtrl(tc.page, tc.sched)
			// Alternate rows in one bank, arrivals marching across the
			// refresh epoch at tREFI.
			const n = 8
			step := int64(tm.TRP + tm.TRAS) // ~ row cycle time
			start := int64(tm.TREFI) - 2*step
			reqs := make([]*Request, n)
			now := start
			for i := range reqs {
				reqs[i] = &Request{Bank: 0, Addr: rowBytes * uint32(i%2) * 4}
				for !c.Enqueue(now, reqs[i]) {
					now = c.NextEvent(now)
					c.AdvanceTo(now)
				}
				now += step
			}
			for {
				done := true
				for _, r := range reqs {
					if !r.Done {
						done = false
					}
				}
				if done {
					break
				}
				ev := c.NextEvent(now)
				if ev == math.MaxInt64 {
					t.Fatal("controller idle with pending requests across refresh")
				}
				now = ev
				c.AdvanceTo(now)
			}
			if c.Stats.Refreshes == 0 {
				t.Fatal("stream never crossed the refresh window")
			}
			if c.Stats.Activates != c.Stats.RowMisses {
				t.Fatalf("ACT bookkeeping diverged across refresh: activates=%d misses=%d",
					c.Stats.Activates, c.Stats.RowMisses)
			}
			if tc.page == ClosePage && c.Stats.RowHits != 0 {
				t.Fatalf("close page recorded row hits: %+v", c.Stats)
			}
			// Every request that issued after the blackout must finish
			// after it; none may land inside [nextRefresh, refresh end).
			blackoutStart := int64(tm.TREFI)
			blackoutEnd := blackoutStart + int64(tm.TRFC)
			for i, r := range reqs {
				if r.Finish > blackoutStart && r.Finish <= blackoutEnd {
					t.Fatalf("request %d finished at %d inside refresh blackout [%d,%d]",
						i, r.Finish, blackoutStart, blackoutEnd)
				}
			}
		})
	}
}

// Property: under random request streams, every request completes, finish
// times are strictly increasing per bank for same-row sequential access,
// and no two column bursts to the same bank overlap within tCCD.
func TestTimingInvariantsQuick(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	f := func() bool {
		c := newTestCtrl(OpenPage, FRFCFS)
		n := 20 + rnd.Intn(30)
		var reqs []*Request
		now := int64(0)
		for i := 0; i < n; i++ {
			r := &Request{
				Bank:  rnd.Intn(4),
				Addr:  uint32(rnd.Intn(1<<16)) &^ (AccessBytes - 1),
				Write: rnd.Intn(3) == 0,
			}
			for !c.Enqueue(now, r) {
				now = c.NextEvent(now)
				c.AdvanceTo(now)
			}
			reqs = append(reqs, r)
			now += int64(rnd.Intn(4))
		}
		for {
			done := true
			for _, r := range reqs {
				if !r.Done {
					done = false
					break
				}
			}
			if done {
				break
			}
			ev := c.NextEvent(now)
			if ev == math.MaxInt64 {
				t.Log("idle with pending requests")
				return false
			}
			now = ev
			c.AdvanceTo(now)
		}
		// Per-bank: no two finishes closer than tCCD.
		perBank := map[int][]int64{}
		for _, r := range reqs {
			if r.Finish <= r.Arrive {
				t.Logf("finish %d <= arrive %d", r.Finish, r.Arrive)
				return false
			}
			perBank[r.Bank] = append(perBank[r.Bank], r.Finish)
		}
		// Activate count sanity: at most one ACT per miss.
		if c.Stats.Activates != c.Stats.RowMisses {
			t.Logf("activates %d != misses %d", c.Stats.Activates, c.Stats.RowMisses)
			return false
		}
		if c.Stats.Reads+c.Stats.Writes != int64(n) {
			t.Logf("reads+writes != n")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
