package dram

// Tests for the canonical timing snapshots the vault-level block
// memoizer keys on: capture/restore round trips, the scheduling
// equivalence the canonical form promises, slice independence of
// Clone, the refresh-epoch exclusion in CoreEqual, and the Stats
// Add/Delta arithmetic.

import (
	"reflect"
	"testing"
)

func newSnapController() *Controller {
	return NewController(4, 16, DefaultTiming(), DefaultGeometry(), OpenPage, FRFCFS)
}

// drive pushes reqs through c starting at now, advancing to each
// completion, and returns the time the last one finished.
func drive(c *Controller, now int64, reqs []*Request) int64 {
	for _, r := range reqs {
		if !c.Enqueue(now, r) {
			panic("queue full")
		}
		for !r.Done {
			e := c.NextEvent(now)
			if e == NoEvent {
				panic("idle controller with pending request")
			}
			now = e
			c.AdvanceTo(now)
		}
		if r.Finish > now {
			now = r.Finish
			c.AdvanceTo(now)
		}
	}
	return now
}

// trafficA is a request mix touching three banks with row hits and
// misses.
func trafficA() []*Request {
	return []*Request{
		{Bank: 0, Addr: 0x0000},
		{Bank: 0, Addr: 0x0010},              // row hit
		{Bank: 1, Addr: 0x4000, Write: true}, // different bank
		{Bank: 2, Addr: 0x0800},
		{Bank: 0, Addr: 0x9000}, // row miss on bank 0
	}
}

func TestRelFloor(t *testing.T) {
	if got := relFloor(5, 10); got != 0 {
		t.Fatalf("relFloor(5,10) = %d", got)
	}
	if got := relFloor(10, 10); got != 0 {
		t.Fatalf("relFloor(10,10) = %d", got)
	}
	if got := relFloor(17, 10); got != 7 {
		t.Fatalf("relFloor(17,10) = %d", got)
	}
}

// TestCaptureRestoreSchedulingEquivalence is the property the memoizer
// rests on: restoring a canonical snapshot at a different base yields a
// controller that schedules an identical future request stream with
// identical relative completion times.
func TestCaptureRestoreSchedulingEquivalence(t *testing.T) {
	a := newSnapController()
	baseA := drive(a, 0, trafficA())

	var snap TimingSnapshot
	a.CaptureTiming(baseA, &snap)

	b := newSnapController()
	const baseB = 5000
	b.AdvanceTo(0)
	b.RestoreTiming(&snap, baseB, true)

	var check TimingSnapshot
	b.CaptureTiming(baseB, &check)
	if !snap.CoreEqual(&check) {
		t.Fatal("restore(capture(x)) is not capture-identical")
	}
	nrA, ruA := snap.RefreshRel()
	nrB, ruB := check.RefreshRel()
	if nrA != nrB || ruA != ruB {
		t.Fatalf("refresh epoch not restored: (%d,%d) vs (%d,%d)", nrA, ruA, nrB, ruB)
	}

	// Same future stream from both states: relative finish times match.
	followA := []*Request{
		{Bank: 0, Addr: 0x9010},
		{Bank: 3, Addr: 0x0100, Write: true},
		{Bank: 1, Addr: 0x4010},
	}
	followB := []*Request{
		{Bank: 0, Addr: 0x9010},
		{Bank: 3, Addr: 0x0100, Write: true},
		{Bank: 1, Addr: 0x4010},
	}
	drive(a, baseA, followA)
	drive(b, baseB, followB)
	for i := range followA {
		relA := followA[i].Finish - baseA
		relB := followB[i].Finish - baseB
		if relA != relB {
			t.Fatalf("request %d finished at +%d after restore, +%d in original", i, relB, relA)
		}
	}
	statsDelta := a.Stats.Delta(b.Stats)
	if statsDelta.Reads != 0 || statsDelta.Writes != 0 {
		// a also ran trafficA, so only the follow-on counters must agree;
		// reads/writes from the prefix account for the difference.
		pre := len(trafficA())
		if a.Stats.Reads+a.Stats.Writes != b.Stats.Reads+b.Stats.Writes+int64(pre) {
			t.Fatalf("follow-on access counts diverged: %+v vs %+v", a.Stats, b.Stats)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := newSnapController()
	base := drive(c, 0, trafficA())
	var scratch TimingSnapshot
	c.CaptureTiming(base, &scratch)
	clone := scratch.Clone()
	if !clone.CoreEqual(&scratch) {
		t.Fatal("clone not equal to source")
	}
	// Re-capture different state into the scratch snapshot: the clone
	// must be unaffected (its slices are private copies).
	saved := clone.Clone()
	base = drive(c, base, []*Request{{Bank: 3, Addr: 0x7000}, {Bank: 2, Addr: 0x100, Write: true}})
	c.CaptureTiming(base, &scratch)
	if !clone.CoreEqual(&saved) {
		t.Fatal("clone mutated by re-capture into its source")
	}
}

func TestCoreEqualIgnoresRefreshEpoch(t *testing.T) {
	a, b := newSnapController(), newSnapController()
	var sa, sb TimingSnapshot
	// Same (idle) scheduling state captured at different bases: only the
	// refresh epoch differs.
	a.CaptureTiming(0, &sa)
	b.CaptureTiming(100, &sb)
	if !sa.CoreEqual(&sb) {
		t.Fatal("idle snapshots at different bases must be core-equal")
	}
	nrA, _ := sa.RefreshRel()
	nrB, _ := sb.RefreshRel()
	if nrA == nrB {
		t.Fatal("refresh epochs unexpectedly aligned")
	}
}

func TestCoreEqualDetectsDifferences(t *testing.T) {
	c := newSnapController()
	base := drive(c, 0, trafficA())
	var busy, idle TimingSnapshot
	c.CaptureTiming(base, &busy)
	newSnapController().CaptureTiming(0, &idle)
	if busy.CoreEqual(&idle) {
		t.Fatal("post-traffic snapshot equals idle snapshot")
	}
	mut := busy.Clone()
	mut.bypassed++
	if busy.CoreEqual(&mut) {
		t.Fatal("bypassed difference not detected")
	}
	mut2 := busy.Clone()
	mut2.banks = mut2.banks[:len(mut2.banks)-1]
	if busy.CoreEqual(&mut2) {
		t.Fatal("bank-count difference not detected")
	}
}

// TestCaptureDeadStateNormalized pins the canonicalization rule: once
// every timing value is dead (far in the future base), a worked
// controller captures equal to a fresh one.
func TestCaptureDeadStateNormalized(t *testing.T) {
	c := newSnapController()
	base := drive(c, 0, trafficA())
	// Jump far past every timing horizon (but before the next refresh
	// matters for CoreEqual, which ignores it anyway).
	far := base + 1_000_000
	c.AdvanceTo(far)
	var worked TimingSnapshot
	c.CaptureTiming(far, &worked)

	fresh := newSnapController()
	var idle TimingSnapshot
	fresh.CaptureTiming(0, &idle)

	// Open rows persist (OpenPage), so force the comparison onto the
	// normalized timing fields by comparing bank rows explicitly.
	if len(worked.actTimes) != 0 {
		t.Fatalf("ancient ACT times survived canonicalization: %v", worked.actTimes)
	}
	if worked.hadAct {
		t.Fatal("dead lastAct still flagged")
	}
	for g, had := range worked.hadActGroup {
		if had {
			t.Fatalf("dead lastActGroup[%d] still flagged", g)
		}
	}
	for i := range worked.banks {
		b := worked.banks[i]
		if b.preReady != 0 || b.actReady != 0 || b.colReady != 0 {
			t.Fatalf("bank %d timing not floored: %+v", i, b)
		}
	}
	_ = idle
}

func TestStatsAddDelta(t *testing.T) {
	a := Stats{Reads: 10, Writes: 5, Activates: 4, Precharges: 3, Refreshes: 2,
		RowHits: 7, RowMisses: 3, QueueFullStalls: 1, BusyCycles: 99,
		ECCCorrected: 2, ECCUncorrected: 1}
	b := Stats{Reads: 1, Writes: 2, Activates: 3, Precharges: 4, Refreshes: 5,
		RowHits: 6, RowMisses: 7, QueueFullStalls: 8, BusyCycles: 9,
		ECCCorrected: 10, ECCUncorrected: 11}
	sum := a
	sum.Add(b)
	if got := sum.Delta(b); !reflect.DeepEqual(got, a) {
		t.Fatalf("(a+b)-b = %+v, want %+v", got, a)
	}
	if sum.Reads != 11 || sum.BusyCycles != 108 || sum.ECCUncorrected != 12 {
		t.Fatalf("Add missed fields: %+v", sum)
	}
	var zero Stats
	if got := a.Delta(a); !reflect.DeepEqual(got, zero) {
		t.Fatalf("a-a = %+v, want zero", got)
	}
}
