package dram

import "fmt"

// Timing snapshots for the vault-level block timing memoizer. A
// TimingSnapshot is a *canonical* image of the controller's
// scheduling-relevant state relative to a base cycle: every absolute
// time is rebased to the given base, and values that can no longer
// influence any future command (they lose every max() they can ever
// enter against times >= base) are normalized away. Two controllers
// whose canonical snapshots at their respective clocks are equal will
// schedule any identical future request stream identically, command for
// command and cycle for cycle (relative to base) — that equivalence is
// what lets the memoizer key phase timing on snapshots instead of
// re-simulating.
//
// Canonicalization rules, each justified by how the field is consumed:
//
//   - preReady/actReady/colReady enter only max() folds against times
//     derived from request arrival (>= base, since the queue is empty at
//     snapshot time and future requests arrive at or after base), so
//     values at or before base are floored to base (relative 0).
//   - actTimes feeds fawReady = actTimes[len-4] + tFAW. Entries whose
//     value+tFAW <= base can only produce a bound at or before base,
//     which every ACT candidate (>= base) already satisfies; dropping
//     them keeps index len-4 aligned between the two runs because the
//     index counts from the end. Only *leading* dead entries are
//     dropped (ACT times are not guaranteed monotonic across banks).
//   - lastAct/lastActGroup are dead once value+tRRDS (resp. tRRDL)
//     <= base, for the same max() reason; deadness clears the had*
//     flag so two controllers that differ only in ancient ACT history
//     compare equal.
//   - bypassed is live FR-FCFS starvation state and is kept verbatim.
//   - nextRefresh/refUntil are kept verbatim (relative, possibly
//     negative). They are deliberately NOT part of CoreEqual: the
//     memoizer applies a refresh-window rule of its own (see
//     internal/vault), because requiring exact refresh phase would kill
//     the hit rate for every block shorter than tREFI.
//
// Dead-by-construction fields (actAt, lastWrEnd, lastBusy are written
// but never read by the scheduler) are excluded entirely.
type TimingSnapshot struct {
	page  PagePolicy
	sched SchedPolicy

	banks        []bankSnap
	actTimes     []int64 // relative to base, leading dead entries dropped
	lastAct      int64   // relative; meaningful only when hadAct
	hadAct       bool
	lastActGroup []int64
	hadActGroup  []bool
	bypassed     int

	nextRefresh int64 // relative to base (negative = refresh backlog)
	refUntil    int64 // relative to base
}

// bankSnap is one bank's canonical timing state (times relative to the
// snapshot base, floored at 0).
type bankSnap struct {
	openRow  int
	preReady int64
	actReady int64
	colReady int64
}

// relFloor rebases t to base, flooring dead (<= base) values to 0.
func relFloor(t, base int64) int64 {
	if t <= base {
		return 0
	}
	return t - base
}

// CaptureTiming writes the controller's canonical timing state relative
// to base into dst, reusing dst's slices when they have capacity (the
// memoizer probes every phase; captures must not allocate in steady
// state). The request queue must be empty — a queued request carries
// absolute times the canonical form cannot represent — and the method
// panics otherwise, as the vault only snapshots at phase boundaries
// where it has drained every controller.
func (c *Controller) CaptureTiming(base int64, dst *TimingSnapshot) {
	if len(c.queue) != 0 {
		panic(fmt.Sprintf("dram: CaptureTiming with %d queued requests", len(c.queue)))
	}
	dst.page, dst.sched = c.page, c.sched
	dst.banks = dst.banks[:0]
	for i := range c.banks {
		b := &c.banks[i]
		dst.banks = append(dst.banks, bankSnap{
			openRow:  b.openRow,
			preReady: relFloor(b.preReady, base),
			actReady: relFloor(b.actReady, base),
			colReady: relFloor(b.colReady, base),
		})
	}
	dst.actTimes = dst.actTimes[:0]
	tfaw := int64(c.timing.TFAW)
	for _, t := range c.actTimes {
		if len(dst.actTimes) == 0 && t+tfaw <= base {
			continue // leading dead entry
		}
		dst.actTimes = append(dst.actTimes, t-base)
	}
	dst.hadAct = c.hadAct && c.lastAct+int64(c.timing.TRRDS) > base
	dst.lastAct = 0
	if dst.hadAct {
		dst.lastAct = c.lastAct - base
	}
	dst.lastActGroup = dst.lastActGroup[:0]
	dst.hadActGroup = dst.hadActGroup[:0]
	for g := range c.lastActGroup {
		had := c.hadActGroup[g] && c.lastActGroup[g]+int64(c.timing.TRRDL) > base
		rel := int64(0)
		if had {
			rel = c.lastActGroup[g] - base
		}
		dst.lastActGroup = append(dst.lastActGroup, rel)
		dst.hadActGroup = append(dst.hadActGroup, had)
	}
	dst.bypassed = c.bypassed
	dst.nextRefresh = c.nextRefresh - base
	dst.refUntil = c.refUntil - base
}

// Clone returns a deep copy of the snapshot (for storing in a memo
// block after a scratch capture).
func (s *TimingSnapshot) Clone() TimingSnapshot {
	out := *s
	out.banks = append([]bankSnap(nil), s.banks...)
	out.actTimes = append([]int64(nil), s.actTimes...)
	out.lastActGroup = append([]int64(nil), s.lastActGroup...)
	out.hadActGroup = append([]bool(nil), s.hadActGroup...)
	return out
}

// CoreEqual reports whether two canonical snapshots describe the same
// scheduling state *excluding* the refresh epoch (nextRefresh/refUntil),
// which the memoizer matches under its own windowing rule.
func (s *TimingSnapshot) CoreEqual(o *TimingSnapshot) bool {
	if s.page != o.page || s.sched != o.sched || s.bypassed != o.bypassed ||
		s.hadAct != o.hadAct || s.lastAct != o.lastAct ||
		len(s.banks) != len(o.banks) || len(s.actTimes) != len(o.actTimes) ||
		len(s.lastActGroup) != len(o.lastActGroup) {
		return false
	}
	for i := range s.banks {
		if s.banks[i] != o.banks[i] {
			return false
		}
	}
	for i := range s.actTimes {
		if s.actTimes[i] != o.actTimes[i] {
			return false
		}
	}
	for i := range s.lastActGroup {
		if s.lastActGroup[i] != o.lastActGroup[i] || s.hadActGroup[i] != o.hadActGroup[i] {
			return false
		}
	}
	return true
}

// RefreshRel returns the snapshot's refresh epoch relative to its base:
// the next refresh boundary and the end of any in-progress refresh
// blackout (values <= 0 are in the past).
func (s *TimingSnapshot) RefreshRel() (nextRefresh, refUntil int64) {
	return s.nextRefresh, s.refUntil
}

// RestoreTiming rewrites the controller's timing state from a canonical
// snapshot rebased to base. When refresh is false the controller's own
// refresh epoch (nextRefresh/refUntil) is left untouched — the
// memoizer's no-refresh-window rule guarantees the recorded block did
// not move it. The request queue must be empty (phase boundaries drain
// it); Stats and ECC tallies are not part of timing state and are
// managed by the caller.
func (c *Controller) RestoreTiming(s *TimingSnapshot, base int64, refresh bool) {
	if len(c.queue) != 0 {
		panic(fmt.Sprintf("dram: RestoreTiming with %d queued requests", len(c.queue)))
	}
	for i := range c.banks {
		sn := s.banks[i]
		c.banks[i] = bankState{
			openRow:  sn.openRow,
			preReady: sn.preReady + base,
			actReady: sn.actReady + base,
			colReady: sn.colReady + base,
		}
	}
	c.queue = c.queue[:0]
	c.actTimes = c.actTimes[:0]
	for _, t := range s.actTimes {
		c.actTimes = append(c.actTimes, t+base)
	}
	c.hadAct = s.hadAct
	c.lastAct = 0
	if s.hadAct {
		c.lastAct = s.lastAct + base
	}
	for g := range c.lastActGroup {
		c.hadActGroup[g] = s.hadActGroup[g]
		c.lastActGroup[g] = 0
		if s.hadActGroup[g] {
			c.lastActGroup[g] = s.lastActGroup[g] + base
		}
	}
	c.bypassed = s.bypassed
	if refresh {
		c.nextRefresh = s.nextRefresh + base
		c.refUntil = s.refUntil + base
	}
}

// Add accumulates o into s field for field. The memoizer uses it to
// apply a recorded block's controller-counter delta on a cache hit.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Activates += o.Activates
	s.Precharges += o.Precharges
	s.Refreshes += o.Refreshes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.QueueFullStalls += o.QueueFullStalls
	s.BusyCycles += o.BusyCycles
	s.ECCCorrected += o.ECCCorrected
	s.ECCUncorrected += o.ECCUncorrected
}

// Delta returns s - o field for field (the counters one recorded block
// contributed between two snapshots of a controller's Stats).
func (s Stats) Delta(o Stats) Stats {
	s.Reads -= o.Reads
	s.Writes -= o.Writes
	s.Activates -= o.Activates
	s.Precharges -= o.Precharges
	s.Refreshes -= o.Refreshes
	s.RowHits -= o.RowHits
	s.RowMisses -= o.RowMisses
	s.QueueFullStalls -= o.QueueFullStalls
	s.BusyCycles -= o.BusyCycles
	s.ECCCorrected -= o.ECCCorrected
	s.ECCUncorrected -= o.ECCUncorrected
	return s
}
