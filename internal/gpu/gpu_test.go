package gpu

import (
	"testing"

	"ipim/internal/workloads"
)

func profileOf(t *testing.T, name string, w, h int) Profile {
	t.Helper()
	wl, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Model(Default(), wl.Build().Pipe, w, h)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllWorkloadsProfile(t *testing.T) {
	for _, wl := range workloads.All() {
		p := profileOf(t, wl.Name, wl.BenchW, wl.BenchH)
		if p.TimeSec <= 0 || p.EnergyJ <= 0 || p.TrafficBytes <= 0 {
			t.Errorf("%s: degenerate profile %+v", wl.Name, p)
		}
		if p.DRAMUtil < 0 || p.DRAMUtil > 1 {
			t.Errorf("%s: DRAM util %v out of range", wl.Name, p.DRAMUtil)
		}
		if p.ALUUtil > 0.5 {
			t.Errorf("%s: ALU util %v implausibly high for image processing", wl.Name, p.ALUUtil)
		}
	}
}

func TestBandwidthBoundProfileMatchesFig1(t *testing.T) {
	// Paper Fig. 1: memory-bound kernels at ~57.55% DRAM utilization
	// with single-digit ALU utilization.
	p := profileOf(t, "Brighten", 512, 256)
	if p.DRAMUtil < 0.5 || p.DRAMUtil > 0.6 {
		t.Errorf("Brighten DRAM util = %v, want ~0.5755", p.DRAMUtil)
	}
	if p.ALUUtil > 0.1 {
		t.Errorf("Brighten ALU util = %v, want a few percent", p.ALUUtil)
	}
	if p.DRAMUtil < 10*p.ALUUtil {
		t.Errorf("bandwidth-bound shape lost: DRAM %v vs ALU %v", p.DRAMUtil, p.ALUUtil)
	}
}

func TestIndexCalculationDominatesALU(t *testing.T) {
	// Paper Fig. 1b: index calculation is the majority of ALU work for
	// stencil-style kernels (58.71% average).
	p := profileOf(t, "GaussianBlur", 512, 256)
	if p.IndexFrac < 0.4 {
		t.Errorf("blur index fraction = %v, want the dominant share", p.IndexFrac)
	}
}

func TestHistogramIsPathological(t *testing.T) {
	// Paper: Halide's GPU histogram schedule is poor — low memory AND
	// low ALU utilization.
	h := profileOf(t, "Histogram", 512, 256)
	b := profileOf(t, "Brighten", 512, 256)
	if h.DRAMUtil > 0.2 {
		t.Errorf("Histogram DRAM util = %v, want low (atomic-bound)", h.DRAMUtil)
	}
	// Per-pixel time must be much worse than a streaming kernel.
	if h.TimeSec/h.Pixels < 3*b.TimeSec/b.Pixels {
		t.Errorf("Histogram not pathological: %v vs %v per pixel", h.TimeSec/h.Pixels, b.TimeSec/b.Pixels)
	}
}

func TestMultiStageStaysMemoryBound(t *testing.T) {
	// Paper Sec. III: fusion does not change the memory-bound behavior.
	p := profileOf(t, "StencilChain", 256, 64)
	if p.DRAMUtil < 0.4 {
		t.Errorf("StencilChain DRAM util = %v, should remain memory-bound", p.DRAMUtil)
	}
	if p.ALUUtil > p.DRAMUtil {
		t.Errorf("StencilChain became compute-bound: %v > %v", p.ALUUtil, p.DRAMUtil)
	}
}

func TestTimeScalesWithImageSize(t *testing.T) {
	small := profileOf(t, "GaussianBlur", 256, 128)
	big := profileOf(t, "GaussianBlur", 512, 256)
	ratio := big.TimeSec / small.TimeSec
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4x pixels gave %vx time", ratio)
	}
}

func TestEnergyProportionalToTime(t *testing.T) {
	p := profileOf(t, "Shift", 512, 256)
	if p.EnergyJ != Default().BoardPowerW*p.TimeSec {
		t.Errorf("energy %v != power x time", p.EnergyJ)
	}
}

func TestProfileString(t *testing.T) {
	p := profileOf(t, "Brighten", 64, 32)
	if s := p.String(); len(s) == 0 {
		t.Error("empty String()")
	}
}
