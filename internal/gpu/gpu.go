// Package gpu is the analytical NVIDIA Tesla V100 baseline model
// standing in for the paper's nvprof/nvidia-smi measurements (see
// DESIGN.md §5). It is a roofline model driven by the same workload IR
// the iPIM compiler consumes: per materialized stage it derives the
// DRAM traffic, FP32 arithmetic and INT32 index arithmetic, and takes
// the larger of the memory time and ALU time. The effective DRAM
// utilization, the Halide-fusion traffic discount for multi-stage
// pipelines, and the value-dependent (atomic) penalty for Histogram are
// calibrated to reproduce the paper's Fig. 1 profile qualitatively:
// bandwidth-bound kernels at ~57% DRAM utilization, a few percent ALU
// utilization dominated by index calculation, and a pathological
// histogram schedule.
package gpu

import (
	"fmt"

	"ipim/internal/halide"
)

// Config describes the modeled GPU (defaults: Tesla V100 SXM2).
type Config struct {
	PeakBandwidth float64 // B/s (900 GB/s HBM2)
	MemUtil       float64 // achieved fraction of peak (Fig. 1: 57.55%)
	PeakFLOPS     float64 // FP32 ops/s
	PeakIOPS      float64 // INT32 ops/s
	BoardPowerW   float64 // average power under load

	// FusionDiscount scales multi-stage traffic for Halide's fusion
	// (the paper finds fusion barely moves the needle: util 58.8% to
	// 55.7%).
	FusionDiscount float64
	// ValueDependentUtil replaces MemUtil for value-dependent kernels
	// (Histogram's atomic-bound schedule; Fig. 1 shows both low memory
	// and low ALU utilization for it).
	ValueDependentUtil float64
	// IdxOpsPerAccess is the INT32 index arithmetic per memory access
	// (2D-to-1D coordinate translation; paper Sec. III).
	IdxOpsPerAccess float64
}

// Default returns the calibrated V100 model.
func Default() Config {
	return Config{
		PeakBandwidth:      900e9,
		MemUtil:            0.5755,
		PeakFLOPS:          14e12,
		PeakIOPS:           14e12,
		BoardPowerW:        300, // V100 SXM2 board power under load
		FusionDiscount:     0.85,
		ValueDependentUtil: 0.08,
		IdxOpsPerAccess:    2.5,
	}
}

// Profile is the modeled execution of one workload (one frame).
type Profile struct {
	Name         string
	Pixels       float64 // output pixels
	TimeSec      float64
	EnergyJ      float64
	TrafficBytes float64
	FLOPs        float64
	IntOps       float64

	// Fig. 1 metrics.
	BandwidthGBs float64 // achieved DRAM bandwidth
	DRAMUtil     float64 // fraction of peak bandwidth
	ALUUtil      float64 // ops / (peak FP32 + INT32)
	IndexFrac    float64 // index calculation share of ALU work
}

// Model evaluates the GPU baseline for a pipeline on a WxH input.
func Model(cfg Config, pipe *halide.Pipeline, imgW, imgH int) (Profile, error) {
	outW := imgW * pipe.OutNum / pipe.OutDen
	outH := imgH * pipe.OutNum / pipe.OutDen
	p := Profile{Name: pipe.Name, Pixels: float64(outW) * float64(outH)}

	if pipe.Histogram {
		// One pass over the image; value-dependent atomics gate both
		// memory and ALU pipes.
		pixels := float64(imgW) * float64(imgH)
		p.TrafficBytes = pixels * 4 * 2 // read pixels + bin traffic
		p.FLOPs = pixels * 2
		p.IntOps = pixels * (2 + cfg.IdxOpsPerAccess)
		p.TimeSec = p.TrafficBytes / (cfg.PeakBandwidth * cfg.ValueDependentUtil)
		p.finish(cfg)
		return p, nil
	}

	stages, err := pipe.Stages()
	if err != nil {
		return Profile{}, err
	}
	scales, err := pipe.StageScales()
	if err != nil {
		return Profile{}, err
	}
	isInlined := func(f *halide.Func) bool {
		return !(f.IsComputeRoot() || f == pipe.Output)
	}
	isMat := func(f *halide.Func) bool { return !isInlined(f) }
	domPixels := func(f *halide.Func) float64 {
		if f == nil {
			return float64(imgW) * float64(imgH)
		}
		s := scales[f]
		return float64(outW*s[0].Num/s[0].Den) * float64(outH*s[1].Num/s[1].Den)
	}
	var time float64
	for _, s := range stages {
		pixels := domPixels(s)
		flopsPP, accPP := halide.OpCount(s.E, isInlined)
		flops := pixels * float64(flopsPP)
		intops := pixels * float64(accPP) * cfg.IdxOpsPerAccess
		// Traffic: each distinct producer read once (caches capture
		// stencil reuse), plus the stage's own output written once.
		uses, err := halide.StageRequirements(s, halide.Interval{Lo: 0, Hi: 1}, halide.Interval{Lo: 0, Hi: 1}, isMat)
		if err != nil {
			return Profile{}, err
		}
		traffic := pixels * 4 // output write
		for _, u := range uses {
			traffic += domPixels(u.Buf) * 4
		}
		p.TrafficBytes += traffic
		p.FLOPs += flops
		p.IntOps += intops
		tMem := traffic / (cfg.PeakBandwidth * cfg.MemUtil)
		tALU := flops/cfg.PeakFLOPS + intops/cfg.PeakIOPS
		if tALU > tMem {
			time += tALU
		} else {
			time += tMem
		}
	}
	if len(stages) > 1 {
		time *= cfg.FusionDiscount
		p.TrafficBytes *= cfg.FusionDiscount
	}
	p.TimeSec = time
	p.finish(cfg)
	return p, nil
}

func (p *Profile) finish(cfg Config) {
	if p.TimeSec <= 0 {
		return
	}
	p.EnergyJ = cfg.BoardPowerW * p.TimeSec
	p.BandwidthGBs = p.TrafficBytes / p.TimeSec / 1e9
	p.DRAMUtil = p.TrafficBytes / p.TimeSec / cfg.PeakBandwidth
	p.ALUUtil = (p.FLOPs + p.IntOps) / p.TimeSec / (cfg.PeakFLOPS + cfg.PeakIOPS)
	if p.FLOPs+p.IntOps > 0 {
		p.IndexFrac = p.IntOps / (p.FLOPs + p.IntOps)
	}
}

// String renders a one-line summary.
func (p Profile) String() string {
	return fmt.Sprintf("%s: %.3g ms, %.0f GB/s (%.1f%% DRAM), ALU %.2f%%, index %.1f%%",
		p.Name, p.TimeSec*1e3, p.BandwidthGBs, p.DRAMUtil*100, p.ALUUtil*100, p.IndexFrac*100)
}
