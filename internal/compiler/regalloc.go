package compiler

import (
	"fmt"
	"sort"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Register allocation (paper Sec. V-C). Virtual registers get physical
// DataRF/AddrRF entries using one of two policies:
//
//   - min: classic minimize-register-count coloring (always pick the
//     lowest free physical register). On iPIM's in-order core without
//     renaming this creates anti/output dependencies that stall issue.
//   - max: the paper's policy — scatter values so a physical register
//     is not reused while recently-freed alternatives exist, eliminating
//     avoidable WAR/WAW hazards (implemented as least-recently-freed
//     selection).
//
// When DataRF pressure exceeds capacity, values spill to a reserved
// region of the local bank (the behavior behind the paper's Fig. 10a
// sensitivity: fewer registers ⇒ more spills + more hazards).

// spillTemps is the number of DataRF entries reserved to feed spilled
// operands through an instruction (comp reads up to 2 sources plus a
// mac accumulator).
const spillTemps = 3

type allocator struct {
	cfg  *sim.Config
	opts Options
	plan *Plan
	mod  *module

	// Linearized instruction stream (block, index) pairs.
	order []instrRef
	// Live ranges per virtual register, in linear positions.
	rangeOf map[int]*liveRange
}

type instrRef struct {
	b  *block
	ix int
}

type liveRange struct {
	vreg       int
	start, end int
	space      isa.RegSpace
}

// Allocate rewrites the module in place, replacing virtual registers
// with physical ones and inserting spill code. It returns the spill
// count for diagnostics.
func Allocate(mod *module, plan *Plan, opts Options) (int, error) {
	a := &allocator{cfg: plan.Cfg, opts: opts, plan: plan, mod: mod, rangeOf: map[int]*liveRange{}}
	a.linearize()
	a.buildRanges()
	a.extendLoopRanges()

	// ARF allocation (no spilling; generated address pressure is low).
	nARF := a.cfg.AddrRFEntries - isa.ARFFirstFree
	if err := a.assign(isa.SpaceARF, isa.ARFFirstFree, nARF, nil); err != nil {
		return 0, fmt.Errorf("compiler: AddrRF pressure: %w", err)
	}

	// DRF allocation with spilling.
	nDRF := a.cfg.DataRFEntries - spillTemps
	if nDRF < 1 {
		return 0, fmt.Errorf("compiler: DataRF too small (%d entries)", a.cfg.DataRFEntries)
	}
	spilled := map[int]int{} // vreg -> spill slot
	if err := a.assign(isa.SpaceDRF, 0, nDRF, spilled); err != nil {
		return 0, err
	}
	if len(spilled) > 0 {
		a.insertSpills(spilled)
	}
	return len(spilled), nil
}

func (a *allocator) linearize() {
	for _, b := range a.mod.blocks {
		for i := range b.ins {
			a.order = append(a.order, instrRef{b, i})
		}
	}
}

// vrefs returns the virtual register operands of an instruction,
// split into uses and defs, for one register space.
func vrefs(in *isa.Instruction, space isa.RegSpace) (uses, defs []int) {
	for _, u := range in.Uses() {
		if u.Space == space && IsVirtual(u.Index) {
			uses = append(uses, u.Index)
		}
	}
	for _, d := range in.Defs() {
		if d.Space == space && IsVirtual(d.Index) {
			defs = append(defs, d.Index)
		}
	}
	// Partial-lane loads preserve unwritten lanes: treat the def as a
	// use too so the value stays live through the lane sequence.
	if in.Op.IsSIMB() && in.VecMask != isa.VecMaskAll {
		for _, d := range defs {
			uses = append(uses, d)
		}
	}
	return uses, defs
}

func (a *allocator) buildRanges() {
	for pos, ref := range a.order {
		in := &ref.b.ins[ref.ix]
		for _, space := range []isa.RegSpace{isa.SpaceDRF, isa.SpaceARF} {
			uses, defs := vrefs(in, space)
			for _, v := range uses {
				r, ok := a.rangeOf[v]
				if !ok {
					// Use before def can only be a loop-carried base
					// register updated in place; start the range here.
					r = &liveRange{vreg: v, start: pos, space: space}
					a.rangeOf[v] = r
				}
				r.end = pos
			}
			for _, v := range defs {
				r, ok := a.rangeOf[v]
				if !ok {
					a.rangeOf[v] = &liveRange{vreg: v, start: pos, end: pos, space: space}
				} else if pos > r.end {
					r.end = pos
				}
			}
		}
	}
}

// extendLoopRanges fixes loop-carried liveness: a virtual register
// defined before a loop header and read inside the loop body is live
// across the back edge, so its range must cover the whole loop — the
// plain linear scan would otherwise free (and reuse) its physical
// register after the last *lexical* use, corrupting later iterations.
func (a *allocator) extendLoopRanges() {
	// Label id -> linear position of the label's block start.
	labelPos := map[int]int{}
	pos := 0
	for _, b := range a.mod.blocks {
		if b.labelID >= 0 {
			labelPos[b.labelID] = pos
		}
		pos += len(b.ins)
	}
	// Find back edges: a cjump/jump whose target register was set by
	// the closest preceding seti_crf with a label reference, where the
	// label sits at an earlier position.
	type loop struct{ start, end int }
	var loops []loop
	for p, ref := range a.order {
		in := &ref.b.ins[ref.ix]
		if in.Op != isa.OpCJump && in.Op != isa.OpJump {
			continue
		}
		for q := p - 1; q >= 0; q-- {
			s := &a.order[q].b.ins[a.order[q].ix]
			if s.Op == isa.OpSetiCRF && s.Dst == in.Src1 {
				if s.ImmLabel >= 0 {
					if lp, ok := labelPos[s.ImmLabel]; ok && lp <= p {
						loops = append(loops, loop{lp, p})
					}
				}
				break
			}
		}
	}
	for _, r := range a.rangeOf {
		for _, l := range loops {
			// Live into the loop and still used inside it: live for the
			// whole loop.
			if r.start < l.start && r.end >= l.start && r.end < l.end {
				r.end = l.end
			}
		}
	}
}

// assign colors all ranges of one space. When spilled is non-nil,
// pressure overflow spills the range with the furthest end; otherwise
// overflow is an error.
func (a *allocator) assign(space isa.RegSpace, firstPhys, nPhys int, spilled map[int]int) error {
	var ranges []*liveRange
	for _, r := range a.rangeOf {
		if r.space == space {
			ranges = append(ranges, r)
		}
	}
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].start != ranges[j].start {
			return ranges[i].start < ranges[j].start
		}
		return ranges[i].vreg < ranges[j].vreg
	})

	phys := map[int]int{} // vreg -> physical
	type active struct {
		r    *liveRange
		phys int
	}
	var act []active
	// Free list: min policy keeps it sorted ascending; max policy keeps
	// least-recently-freed order (FIFO).
	var free []int
	for p := 0; p < nPhys; p++ {
		free = append(free, firstPhys+p)
	}
	expire := func(pos int) {
		dst := act[:0]
		for _, x := range act {
			if x.r.end < pos {
				free = append(free, x.phys)
				continue
			}
			dst = append(dst, x)
		}
		act = dst
		if !a.opts.RegAllocMax {
			sort.Ints(free)
		}
	}
	for _, r := range ranges {
		expire(r.start)
		if len(free) == 0 {
			if spilled == nil {
				return fmt.Errorf("out of %v registers at position %d", space, r.start)
			}
			// Spill the active range with the furthest end (or the new
			// range itself if it ends last).
			victim := -1
			for i, x := range act {
				if victim < 0 || x.r.end > act[victim].r.end {
					victim = i
				}
			}
			if victim >= 0 && act[victim].r.end > r.end {
				v := act[victim]
				spilled[v.r.vreg] = len(spilled)
				delete(phys, v.r.vreg)
				free = append(free, v.phys)
				act = append(act[:victim], act[victim+1:]...)
			} else {
				spilled[r.vreg] = len(spilled)
				continue
			}
		}
		p := free[0]
		free = free[1:]
		phys[r.vreg] = p
		act = append(act, active{r, p})
	}

	// Rewrite operands.
	rewrite := func(idx int) int {
		if !IsVirtual(idx) {
			return idx
		}
		if p, ok := phys[idx]; ok {
			return p
		}
		if spilled != nil {
			if _, ok := spilled[idx]; ok {
				return idx // handled by insertSpills
			}
		}
		panic(fmt.Sprintf("compiler: vreg %d of space %v unallocated", idx, space))
	}
	for _, ref := range a.order {
		in := &ref.b.ins[ref.ix]
		a.rewriteOperands(in, space, rewrite)
	}
	return nil
}

// rewriteOperands maps every operand of one register space through fn.
func (a *allocator) rewriteOperands(in *isa.Instruction, space isa.RegSpace, fn func(int) int) {
	switch space {
	case isa.SpaceDRF:
		switch in.Op {
		case isa.OpComp:
			in.Dst, in.Src1, in.Src2 = fn(in.Dst), fn(in.Src1), fn(in.Src2)
		case isa.OpLdRF, isa.OpStRF, isa.OpRdPGSM, isa.OpWrPGSM,
			isa.OpRdVSM, isa.OpWrVSM, isa.OpReset, isa.OpMovDRF:
			in.Dst = fn(in.Dst)
		case isa.OpMovARF:
			in.Src1 = fn(in.Src1)
		}
	case isa.SpaceARF:
		switch in.Op {
		case isa.OpCalcARF:
			in.Dst, in.Src1 = fn(in.Dst), fn(in.Src1)
			if !in.HasImm {
				in.Src2 = fn(in.Src2)
			}
		case isa.OpMovARF:
			in.Dst = fn(in.Dst)
		case isa.OpMovDRF:
			in.Src1 = fn(in.Src1)
		}
		if in.Indirect && in.Op != isa.OpCalcARF {
			in.Addr = uint32(fn(int(in.Addr)))
		}
		if in.Indirect2 {
			in.Addr2 = uint32(fn(int(in.Addr2)))
		}
	}
}

// insertSpills rewrites instructions whose operands were spilled:
// loads before uses into reserved temps, stores after defs. Spill
// slots live at SpillBase + 16*slot and are addressed directly.
func (a *allocator) insertSpills(spilled map[int]int) {
	tempBase := a.cfg.DataRFEntries - spillTemps
	slotAddr := func(slot int) uint32 { return a.plan.SpillBase + uint32(16*slot) }
	spillTag := func(slot int) memTag {
		return memTag{bank: 1<<16 + slot, pgsm: -1, vsm: -1}
	}
	for _, b := range a.mod.blocks {
		var ins []isa.Instruction
		var tags []memTag
		for i := range b.ins {
			in := b.ins[i]
			tag := b.tags[i]
			nextTemp := 0
			tempOf := map[int]int{}
			mapUse := func(v int) int {
				if !IsVirtual(v) {
					return v
				}
				slot, ok := spilled[v]
				if !ok {
					return v
				}
				if t, ok := tempOf[v]; ok {
					return t
				}
				t := tempBase + nextTemp
				nextTemp++
				tempOf[v] = t
				ld := isa.New(isa.OpLdRF)
				ld.Dst = t
				ld.Addr = slotAddr(slot)
				ld.SimbMask = in.SimbMask
				ins = append(ins, ld)
				tags = append(tags, spillTag(slot))
				return t
			}
			// Reload spilled uses (including the read-modify-write
			// accumulator of mac and partial-lane loads).
			uses, _ := vrefs(&in, isa.SpaceDRF)
			for _, v := range uses {
				mapUse(v)
			}
			// Rewrite all DRF operands through the temp map; a spilled
			// pure def gets a temp too.
			var defSlot = -1
			var defTemp = -1
			a.rewriteOperands(&in, isa.SpaceDRF, func(v int) int {
				if !IsVirtual(v) {
					return v
				}
				if t, ok := tempOf[v]; ok {
					return t
				}
				slot, ok := spilled[v]
				if !ok {
					return v
				}
				t := tempBase + nextTemp
				nextTemp++
				tempOf[v] = t
				defSlot, defTemp = slot, t
				return t
			})
			// Defs that were reloaded as uses also need a writeback.
			for _, d := range in.Defs() {
				if d.Space != isa.SpaceDRF {
					continue
				}
				for v, t := range tempOf {
					if t == d.Index {
						defSlot, defTemp = spilled[v], t
					}
				}
			}
			ins = append(ins, in)
			tags = append(tags, tag)
			if defTemp >= 0 && writesDRF(&in) {
				st := isa.New(isa.OpStRF)
				st.Dst = defTemp
				st.Addr = slotAddr(defSlot)
				st.SimbMask = in.SimbMask
				ins = append(ins, st)
				tags = append(tags, spillTag(defSlot))
			}
		}
		b.ins, b.tags = ins, tags
	}
}

func writesDRF(in *isa.Instruction) bool {
	for _, d := range in.Defs() {
		if d.Space == isa.SpaceDRF {
			return true
		}
	}
	return false
}
