package compiler

import (
	"fmt"
	"math/bits"

	"ipim/internal/isa"
)

// Halo exchange (DESIGN.md §2). Under ClampedStages semantics each
// stage computes only its core tile; the halo cells its consumers need
// are then filled from neighbor tiles:
//
//   - Vertical halo rows come from the same PE's own bank: with
//     TilesX % N == 0 the tiles directly above/below a PE's tile belong
//     to the same PE at a different loop slot, so whole rows transfer
//     with local vector loads.
//   - Horizontal and corner halo cells come from neighbor PEs through
//     the VSM: during the tile loop every PE publishes its core's left
//     and right column strips to a tile-indexed VSM layout; after a
//     barrier, each PE computes the clamped source coordinates of every
//     halo cell arithmetically (pure calc_arf sequences — no per-PE
//     control flow, preserving SIMB lock-step) and gathers the cells
//     with indirect rd_vsm.
//
// Boundary semantics match the clamped-stage reference: absolute
// coordinates clamp to the producer's domain before the source tile is
// resolved.

// log2 returns log2(v) for a power of two. The exchange address
// arithmetic shifts by these exponents, so a silent floor-log2 of a
// non-power-of-two would corrupt addresses; the planner rejects such
// geometry up front (ErrNonPow2Geometry), and this panics as a last
// line of defense rather than miscompiling.
func log2(v int) int64 {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("compiler: log2 of non-power-of-two %d (planExchange must reject this geometry)", v))
	}
	return int64(bits.TrailingZeros(uint(v)))
}

// stripIndexConst is the compressed column index adjustment: a source
// column lx' maps to strip index lx' (left strip) or lx'-(coreW-2H)
// (right strip).
func stripIndexAdjust(b *BufPlan) int64 { return int64(b.CoreW - 2*b.StripH) }

// exchangeMasks are the static SIMB masks the dual-path exchange uses:
// PG-boundary PEs (first/last of each process group) must cross the
// VSM; interior PEs reach their horizontal neighbor through the PGSM.
type exchangeMasks struct {
	left, right       uint64 // peID == 0 / peID == PEsPerPG-1
	intLeft, intRight uint64 // complements within the vault
}

func (k *kern) masks() exchangeMasks {
	per := k.plan.Cfg.PEsPerPG
	n := k.plan.Cfg.PEsPerVault()
	var m exchangeMasks
	for i := 0; i < n; i++ {
		if i%per == 0 {
			m.left |= 1 << uint(i)
		}
		if i%per == per-1 {
			m.right |= 1 << uint(i)
		}
	}
	all := isa.MaskAll(n)
	m.intLeft = all &^ m.left
	m.intRight = all &^ m.right
	return m
}

// vertHaloDepth is the vertical halo depth of a buffer (corner-source
// rows of the published strips).
func vertHaloDepth(b *BufPlan) int {
	h := 0
	if -b.NeedY.Lo > h {
		h = -b.NeedY.Lo
	}
	if d := b.NeedY.Hi - (b.CoreH - 1); d > h {
		h = d
	}
	return h
}

// emitPublish appends the strip publication to the current tile-loop
// body: every core cell in the left/right StripH columns goes to this
// tile's strip slot. With ViaPGSM, strips land in the PE's PGSM
// partition; the VSM receives only what is read across PG boundaries —
// boundary PEs' full strips plus the corner-source rows of every PE.
// Without ViaPGSM everything goes to the VSM.
func (k *kern) emitPublish(sp *StagePlan) {
	b := sp.Out
	if b.StripH == 0 {
		return
	}
	vsmTag := memTag{bank: -1, pgsm: -1, vsm: k.bufTag(b)}
	pgsmTag := memTag{bank: -1, pgsm: 1<<19 + k.bufTag(b), vsm: -1}
	bankTag := memTag{bank: k.bufTag(b), pgsm: -1, vsm: -1}
	m := k.masks()
	hy := vertHaloDepth(b)
	cols := stripColumns(b)
	for _, c := range cols {
		// The side's boundary mask (who must publish this strip to the
		// VSM when the PGSM fast path is on).
		bndMask := m.left
		if c.sIdx >= b.StripH {
			bndMask = m.right
		}
		for ly := 0; ly < b.CoreH; ly++ {
			bankOff, err := b.Addr(c.lx, ly)
			if err != nil {
				panic(fmt.Sprintf("compiler: publish cell outside stored region: %v", err))
			}
			off := int64((ly*2*b.StripH + c.sIdx) * 4)
			aB := k.addA(k.baseReg[b], int64(bankOff))
			d := k.newD()
			ld := isa.New(isa.OpLdRF)
			ld.Dst = d
			ld.Addr, ld.Indirect = uint32(aB), true
			ld.VecMask = 1
			ld.SimbMask = k.simb
			k.emitTagged(ld, bankTag)
			if b.ViaPGSM {
				aP := k.addA(k.exPgsmStrip, off)
				wp := isa.New(isa.OpWrPGSM)
				wp.Dst = d
				wp.Addr, wp.Indirect = uint32(aP), true
				wp.VecMask = 1
				wp.SimbMask = k.simb
				k.emitTagged(wp, pgsmTag)
			}
			vsmMask := k.simb
			if b.ViaPGSM {
				corner := ly < hy || ly >= b.CoreH-hy
				if corner {
					vsmMask = k.simb // corner-source rows: everyone
				} else {
					vsmMask = bndMask
				}
			}
			if vsmMask == 0 {
				continue
			}
			aV := k.addA(k.exVdst, off)
			wr := isa.New(isa.OpWrVSM)
			wr.Dst = d
			wr.Addr, wr.Indirect = uint32(aV), true
			wr.VecMask = 1
			wr.SimbMask = vsmMask
			k.emitTagged(wr, vsmTag)
		}
	}
}

type stripCol struct {
	lx   int // source column within the core
	sIdx int // compressed strip index
}

func stripColumns(b *BufPlan) []stripCol {
	var cols []stripCol
	for i := 0; i < b.StripH; i++ {
		cols = append(cols, stripCol{lx: i, sIdx: i})
		cols = append(cols, stripCol{lx: b.CoreW - b.StripH + i, sIdx: b.StripH + i})
	}
	return cols
}

// emitFill appends the post-barrier halo fill: a second slot loop that
// writes every stored halo cell of the stage's output buffer.
func (k *kern) emitFill(sp *StagePlan) error {
	plan := k.plan
	b := sp.Out
	n := plan.NumPEs
	m := plan.TilesX / n
	haloTag := memTag{bank: 1<<18 + k.bufTag(b), pgsm: -1, vsm: -1}
	coreTag := memTag{bank: k.bufTag(b), pgsm: -1, vsm: -1}
	vsmTag := memTag{bank: -1, pgsm: -1, vsm: k.bufTag(b)}
	domW := plan.OutW * b.SigmaX.Num / b.SigmaX.Den
	domH := plan.OutH * b.SigmaY.Num / b.SigmaY.Den

	// Publishes must land before any PE gathers.
	k.startBlock(-1, false)
	sync := isa.New(isa.OpSync)
	sync.Phase = k.phase
	k.phase++
	k.emit(sync)

	// Fill prologue: fresh buffer base, tile-coordinate accumulators.
	k.startBlock(-1, true)
	aOut := k.liA(b.Base)
	aOne := k.liA(1)
	g := k.calcRI(isa.IMul, isa.ARFPgID, int64(plan.Cfg.PEsPerPG))
	aG := k.calcRR(isa.IAdd, g, isa.ARFPeID)
	aTxBase := k.liA(0) // (k % m) * N
	aTy := k.liA(0)     // k / m
	// PGSM fast-path cursors: left/right neighbor partitions' strip
	// regions, advanced by one strip slot per loop iteration.
	aNbL, aNbR := -1, -1
	msk := k.masks()
	if b.ViaPGSM {
		part := int64(plan.Cfg.PGSMBytes / plan.Cfg.PEsPerPG)
		l := k.calcRI(isa.IAdd, isa.ARFPeID, -1)
		k.calcRIInto(isa.IMul, l, l, part)
		k.calcRIInto(isa.IAdd, l, l, int64(b.StripPGSMBase))
		aNbL = l
		r := k.calcRI(isa.IAdd, isa.ARFPeID, 1)
		k.calcRIInto(isa.IMul, r, r, part)
		k.calcRIInto(isa.IAdd, r, r, int64(b.StripPGSMBase))
		aNbR = r
	}

	k.startBlock(-1, false)
	loop := k.mod.newLabel()
	seti := isa.New(isa.OpSetiCRF)
	seti.Dst, seti.Imm = crfLoopCount, int64(plan.TilesPerPE)
	k.emit(seti)
	setl := isa.New(isa.OpSetiCRF)
	setl.Dst, setl.ImmLabel = crfLoopTarget, loop
	k.emit(setl)

	k.startBlock(loop, true)
	// Per-slot tile coordinates (producer domain): tx = (k%m)*N + g.
	aTx := k.calcRR(isa.IAdd, aTxBase, aG)
	aOx := k.calcRI(isa.Shl, aTx, log2(b.CoreW))
	aOy := k.calcRI(isa.Shl, aTy, log2(b.CoreH))
	aKm := k.calcRI(isa.Shr, aTxBase, log2(n)) // k % m

	// Vertical halo rows (and any pad rows): own-bank vector copies.
	for ly := b.NeedY.Lo; ly <= b.NeedY.Hi; ly++ {
		if ly >= 0 && ly < b.CoreH {
			continue
		}
		aYa := k.calcRI(isa.IAdd, aOy, int64(ly))
		k.calcRIInto(isa.IMax, aYa, aYa, 0)
		k.calcRIInto(isa.IMin, aYa, aYa, int64(domH-1))
		aSy := k.calcRI(isa.Shr, aYa, log2(b.CoreH))
		aLy := k.calcRI(isa.And, aYa, int64(b.CoreH-1))
		aK2 := k.calcRI(isa.IMul, aSy, int64(m))
		k.calcRRInto(isa.IAdd, aK2, aK2, aKm)
		aRow := k.calcRI(isa.IMul, aK2, int64(b.Slot))
		aLyOff := k.calcRI(isa.IMul, aLy, int64(b.Width()*4))
		k.calcRRInto(isa.IAdd, aRow, aRow, aLyOff)
		// Static per-chunk constant: Base + (lx-loX)*4 - loY*W*4.
		for lx := 0; lx < b.CoreW; lx += 4 {
			cc := int64(b.Base) + int64((lx-b.X.Lo)*4) - int64(b.Y.Lo*b.Width()*4)
			aSrc := k.addA(aRow, cc)
			d := k.newD()
			ld := isa.New(isa.OpLdRF)
			ld.Dst = d
			ld.Addr, ld.Indirect = uint32(aSrc), true
			ld.SimbMask = k.simb
			k.emitTagged(ld, coreTag)
			off, err := b.Addr(lx, ly)
			if err != nil {
				return err
			}
			aDst := k.addA(aOut, int64(off))
			st := isa.New(isa.OpStRF)
			st.Dst = d
			st.Addr, st.Indirect = uint32(aDst), true
			st.SimbMask = k.simb
			k.emitTagged(st, haloTag)
		}
	}

	// Horizontal and corner halo cells: VSM strip gathers. The clamped
	// coordinate chains are factored per column and per row so each
	// cell costs only the final address combine + gather + store.
	// Per-column chain: strip-part byte offset aSx*SB + sIdx*4.
	type colChain struct{ aColOff int }
	cols := map[int]colChain{}
	for lx := b.NeedX.Lo; lx <= b.NeedX.Hi; lx++ {
		if lx >= 0 && lx < b.CoreW {
			continue
		}
		aXa := k.calcRI(isa.IAdd, aOx, int64(lx))
		k.calcRIInto(isa.IMax, aXa, aXa, 0)
		k.calcRIInto(isa.IMin, aXa, aXa, int64(domW-1))
		aSx := k.calcRI(isa.Shr, aXa, log2(b.CoreW))
		aLx := k.calcRI(isa.And, aXa, int64(b.CoreW-1))
		// Compressed strip index: aLx - (aLx >= H)*(coreW-2H).
		aC := k.calcRI(isa.ICmpLT, aLx, int64(b.StripH))
		aM := k.calcRR(isa.ISub, aOne, aC)
		k.calcRIInto(isa.IMul, aM, aM, stripIndexAdjust(b))
		aS := k.calcRR(isa.ISub, aLx, aM)
		aColOff := k.calcRI(isa.IMul, aSx, int64(b.StripBytes()))
		aSB := k.calcRI(isa.Shl, aS, 2)
		k.calcRRInto(isa.IAdd, aColOff, aColOff, aSB)
		cols[lx] = colChain{aColOff: aColOff}
	}
	for ly := b.NeedY.Lo; ly <= b.NeedY.Hi; ly++ {
		if len(cols) == 0 {
			break
		}
		// Per-row chain: tile-row byte offset aSy*TilesX*SB + aLy*2H*4.
		aYa := k.calcRI(isa.IAdd, aOy, int64(ly))
		k.calcRIInto(isa.IMax, aYa, aYa, 0)
		k.calcRIInto(isa.IMin, aYa, aYa, int64(domH-1))
		aSy := k.calcRI(isa.Shr, aYa, log2(b.CoreH))
		aLy := k.calcRI(isa.And, aYa, int64(b.CoreH-1))
		aRowOff := k.calcRI(isa.IMul, aSy, int64(plan.TilesX*b.StripBytes()))
		aLyB := k.calcRI(isa.IMul, aLy, int64(2*b.StripH*4))
		k.calcRRInto(isa.IAdd, aRowOff, aRowOff, aLyB)
		for lx := b.NeedX.Lo; lx <= b.NeedX.Hi; lx++ {
			cc, ok := cols[lx]
			if !ok {
				continue
			}
			off, err := b.Addr(lx, ly)
			if err != nil {
				return err
			}
			// PGSM fast path: pure-horizontal cells (unclamped row) of
			// PG-interior PEs read the neighbor's scratchpad strip.
			vsmMask := k.simb
			if b.ViaPGSM && ly >= 0 && ly < b.CoreH {
				aNb, intMask := aNbR, msk.intRight
				sIdx := lx - b.CoreW // right halo: neighbor's left strip
				if lx < 0 {
					aNb, intMask = aNbL, msk.intLeft
					sIdx = 2*b.StripH + lx // left halo: neighbor's right strip
					vsmMask = msk.left
				} else {
					vsmMask = msk.right
				}
				if intMask != 0 {
					cellOff := int64((ly*2*b.StripH + sIdx) * 4)
					aP := k.addA(aNb, cellOff)
					k.cur.ins[len(k.cur.ins)-1].SimbMask = intMask
					dp := k.newD()
					rp := isa.New(isa.OpRdPGSM)
					rp.Dst = dp
					rp.Addr, rp.Indirect = uint32(aP), true
					rp.VecMask = 1
					rp.SimbMask = intMask
					k.emitTagged(rp, memTag{bank: -1, pgsm: 1<<19 + k.bufTag(b), vsm: -1})
					aDp := k.addA(aOut, int64(off))
					k.cur.ins[len(k.cur.ins)-1].SimbMask = intMask
					sp2 := isa.New(isa.OpStRF)
					sp2.Dst = dp
					sp2.Addr, sp2.Indirect = uint32(aDp), true
					sp2.VecMask = 1
					sp2.SimbMask = intMask
					k.emitTagged(sp2, haloTag)
				}
			}
			if vsmMask != 0 {
				aAddr := k.calcRR(isa.IAdd, aRowOff, cc.aColOff)
				d := k.newD()
				rd := isa.New(isa.OpRdVSM)
				rd.Dst = d
				rd.Addr, rd.Indirect = uint32(aAddr), true
				rd.VecMask = 1
				rd.SimbMask = vsmMask
				k.emitTagged(rd, vsmTag)
				aDst := k.addA(aOut, int64(off))
				st := isa.New(isa.OpStRF)
				st.Dst = d
				st.Addr, st.Indirect = uint32(aDst), true
				st.VecMask = 1
				st.SimbMask = vsmMask
				k.emitTagged(st, haloTag)
			}
		}
	}

	// Fill-loop control: advance the slot accumulators.
	k.startBlock(-1, false)
	k.bumpA(aOut, int64(b.Slot))
	if aNbL >= 0 {
		k.bumpA(aNbL, int64(b.StripBytes()))
		k.bumpA(aNbR, int64(b.StripBytes()))
	}
	k.calcRIInto(isa.IAdd, aTxBase, aTxBase, int64(n))
	aWrap := k.calcRI(isa.ICmpEQ, aTxBase, int64(m*n))
	k.calcRRInto(isa.IAdd, aTy, aTy, aWrap)
	aKeep := k.calcRR(isa.ISub, aOne, aWrap)
	k.calcRRInto(isa.IMul, aTxBase, aTxBase, aKeep)
	dec := isa.New(isa.OpCalcCRF)
	dec.ALU, dec.Dst, dec.Src1 = isa.ISub, crfLoopCount, crfLoopCount
	dec.HasImm, dec.Imm = true, 1
	k.emit(dec)
	cj := isa.New(isa.OpCJump)
	cj.Cond, cj.Src1 = crfLoopCount, crfLoopTarget
	k.emit(cj)
	return nil
}
