package compiler

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ipim/internal/cube"
	"ipim/internal/pixel"
	"ipim/internal/sim"
	"ipim/internal/workloads"
)

func TestArtifactSaveLoadRun(t *testing.T) {
	cfg := sim.TestTiny()
	img := pixel.Synth(32, 16, 21)
	pipe := blurPipe(true)
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Prog.Ins) != len(art.Prog.Ins) {
		t.Fatalf("program length %d != %d", len(loaded.Prog.Ins), len(art.Prog.Ins))
	}
	// Run the LOADED artifact end to end and verify against the golden.
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, loaded, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, loaded); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutput(m, loaded)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if d := pixel.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("loaded artifact diverged by %g", d)
	}
}

func TestArtifactSaveLoadHistogramWithLeader(t *testing.T) {
	cfg := sim.TestTiny() // multi-vault: leader program present
	img := pixel.Synth(32, 16, 22)
	pipe := histPipe(64)
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.LeaderProg == nil {
		t.Fatal("leader program lost in serialization")
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, loaded, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, loaded); err != nil {
		t.Fatal(err)
	}
	bins, err := ReadHistogram(m, loaded)
	if err != nil {
		t.Fatal(err)
	}
	checkHist(t, bins, img)
}

func TestLoadArtifactErrors(t *testing.T) {
	if _, err := LoadArtifact(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadArtifact(strings.NewReader(`{"Magic":"wrong"}`)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadArtifact(strings.NewReader(`{"Magic":"ipim-artifact-v1"}`)); err == nil {
		t.Error("empty artifact accepted")
	}
}

// savedJSON serializes a freshly compiled artifact and returns it as a
// mutable JSON object.
func savedJSON(t *testing.T, histogram bool) []byte {
	t.Helper()
	cfg := sim.TestTiny()
	pipe := blurPipe(true)
	if histogram {
		pipe = histPipe(64)
	}
	art, err := Compile(&cfg, pipe, 32, 16, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadArtifactRejectsHostileFields corrupts a valid artifact one
// field at a time: every mutation must be rejected with an error at
// load time — never a panic or a runaway allocation — because loaded
// artifacts are the network-shippable offload format whose fields
// otherwise flow straight into allocation sizes and slice indices in
// LoadInput/ReadOutput/ReadHistogram.
func TestLoadArtifactRejectsHostileFields(t *testing.T) {
	base := savedJSON(t, false)
	histBase := savedJSON(t, true)

	mutate := func(src []byte, f func(m map[string]any)) string {
		var m map[string]any
		if err := json.Unmarshal(src, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	sub := func(m map[string]any, key string) map[string]any { return m[key].(map[string]any) }

	cases := []struct {
		name string
		doc  string
	}{
		{"zero ImgW", mutate(base, func(m map[string]any) { m["ImgW"] = 0 })},
		{"negative ImgH", mutate(base, func(m map[string]any) { m["ImgH"] = -16 })},
		{"huge OutW", mutate(base, func(m map[string]any) { m["OutW"] = 1 << 30 })},
		{"giant image area", mutate(base, func(m map[string]any) { m["ImgW"] = 1 << 20; m["ImgH"] = 1 << 20 })},
		{"zero TilesPerPE", mutate(base, func(m map[string]any) { m["TilesPerPE"] = 0 })},
		{"PE overcommit", mutate(base, func(m map[string]any) { m["NumPEs"] = 100000 })},
		{"tile distribution mismatch", mutate(base, func(m map[string]any) { m["TilesX"] = 7 })},
		{"tile grid does not cover output", mutate(base, func(m map[string]any) { m["TileW"] = 16 })},
		{"bad machine config", mutate(base, func(m map[string]any) { sub(m, "Cfg")["Cubes"] = 0 })},
		{"absurd vault count", mutate(base, func(m map[string]any) {
			sub(m, "Cfg")["Cubes"] = 1 << 10
			sub(m, "Cfg")["VaultsPerCube"] = 1 << 10
		})},
		{"missing input buffer", mutate(base, func(m map[string]any) { m["Input"] = nil })},
		{"input slot too small", mutate(base, func(m map[string]any) { sub(m, "Input")["Slot"] = 4 })},
		{"input region inverted", mutate(base, func(m map[string]any) {
			sub(sub(m, "Input"), "X")["Lo"] = 9
			sub(sub(m, "Input"), "X")["Hi"] = 1
		})},
		{"zero domain scale", mutate(base, func(m map[string]any) {
			sub(sub(m, "Input"), "SigmaX")["Den"] = 0
		})},
		{"missing output buffer", mutate(base, func(m map[string]any) { m["OutBuf"] = nil })},
		{"output region misses tile", mutate(base, func(m map[string]any) {
			sub(sub(m, "OutBuf"), "Y")["Hi"] = 2
		})},
		{"oversized constant pool", mutate(base, func(m map[string]any) {
			m["Consts"] = make([]float64, maxArtifactConsts+1)
		})},
		{"histogram zero bins", mutate(histBase, func(m map[string]any) { m["Bins"] = 0 })},
		{"histogram negative bins", mutate(histBase, func(m map[string]any) { m["Bins"] = -4 })},
		{"histogram absurd bins", mutate(histBase, func(m map[string]any) { m["Bins"] = 1 << 30 })},
		{"corrupt program bytes", mutate(base, func(m map[string]any) { m["Prog"] = "AAAA" })},
		{"corrupt leader program", mutate(histBase, func(m map[string]any) { m["LeaderProg"] = "AAAA" })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadArtifact(strings.NewReader(tc.doc)); err == nil {
				t.Error("hostile artifact accepted")
			}
		})
	}
}

// TestLoadArtifactAcceptsAllWorkloadShapes guards the validator
// against over-strictness: every Table II workload shape (elementwise,
// scaled resampling, histogram, halo-exchange multi-stage) must
// round-trip through Save/Load.
func TestLoadArtifactAcceptsAllWorkloadShapes(t *testing.T) {
	for _, name := range []string{"Brighten", "Downsample", "Upsample", "Histogram", "StencilChain", "Interpolate"} {
		t.Run(name, func(t *testing.T) {
			wl, err := workloads.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sim.TestTiny()
			if wl.MultiStage {
				cfg = sim.TestTinyOneVault() // halo exchange needs one vault
			}
			art, err := Compile(&cfg, wl.Build().Pipe, wl.TestW, wl.TestH, Opt)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveArtifact(&buf, art); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadArtifact(&buf); err != nil {
				t.Fatalf("valid %s artifact rejected: %v", name, err)
			}
		})
	}
}
