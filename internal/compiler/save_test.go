package compiler

import (
	"bytes"
	"strings"
	"testing"

	"ipim/internal/cube"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

func TestArtifactSaveLoadRun(t *testing.T) {
	cfg := sim.TestTiny()
	img := pixel.Synth(32, 16, 21)
	pipe := blurPipe(true)
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Prog.Ins) != len(art.Prog.Ins) {
		t.Fatalf("program length %d != %d", len(loaded.Prog.Ins), len(art.Prog.Ins))
	}
	// Run the LOADED artifact end to end and verify against the golden.
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, loaded, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, loaded); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutput(m, loaded)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	if d := pixel.MaxAbsDiff(got, want); d != 0 {
		t.Fatalf("loaded artifact diverged by %g", d)
	}
}

func TestArtifactSaveLoadHistogramWithLeader(t *testing.T) {
	cfg := sim.TestTiny() // multi-vault: leader program present
	img := pixel.Synth(32, 16, 22)
	pipe := histPipe(64)
	art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.LeaderProg == nil {
		t.Fatal("leader program lost in serialization")
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, loaded, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, loaded); err != nil {
		t.Fatal(err)
	}
	bins, err := ReadHistogram(m, loaded)
	if err != nil {
		t.Fatal(err)
	}
	checkHist(t, bins, img)
}

func TestLoadArtifactErrors(t *testing.T) {
	if _, err := LoadArtifact(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadArtifact(strings.NewReader(`{"Magic":"wrong"}`)); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := LoadArtifact(strings.NewReader(`{"Magic":"ipim-artifact-v1","Prog":"AAAA"}`)); err == nil {
		t.Error("corrupt program accepted")
	}
}
