package compiler

import (
	"fmt"
	"testing"

	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

func chainPipe(n int) *halide.Pipeline {
	var prev *halide.Func
	for i := 0; i < n; i++ {
		at := func(dx, dy int) halide.Expr {
			if prev == nil {
				return halide.In(dx, dy)
			}
			return prev.At(dx, dy)
		}
		var sum halide.Expr = at(-1, -1)
		for _, d := range [][2]int{{0, -1}, {1, -1}, {-1, 0}, {0, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
			sum = halide.Add(sum, at(d[0], d[1]))
		}
		prev = halide.NewFunc(fmt.Sprintf("c%d", i)).Define(halide.Mul(sum, halide.K(1.0/9))).ComputeRoot()
	}
	return halide.NewPipeline("chain", prev).ClampStages()
}

func TestExchangeTwoStageChain(t *testing.T) {
	cfg := sim.TestTinyOneVault()
	img := pixel.Synth(64, 16, 42)
	pipe := chainPipe(2)
	art, err := Compile(&cfg, pipe, img.W, img.H, Baseline1)
	if err != nil {
		t.Fatal(err)
	}
	if !art.Plan.Exchange {
		t.Fatal("exchange mode not selected")
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, art, img); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(m, art); err != nil {
		t.Fatal(err)
	}
	got, err := ReadOutput(m, art)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pipe.Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for y := 0; y < img.H; y++ {
		row := ""
		for x := 0; x < img.W; x++ {
			if got.At(x, y) != want.At(x, y) {
				row += "X"
				bad++
			} else {
				row += "."
			}
		}
		t.Logf("%2d %s", y, row)
	}
	if bad > 0 {
		t.Fatalf("%d mismatched pixels", bad)
	}
}

// TestExchangeDeepChainAllOptions runs a 4-stage clamped chain under
// every compiler configuration: exchange correctness must not depend on
// the backend optimizations.
func TestExchangeDeepChainAllOptions(t *testing.T) {
	cfg := sim.TestTinyOneVault()
	img := pixel.Synth(32, 16, 43)
	want, err := chainPipe(4).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{Baseline1, Baseline2, Baseline3, Baseline4, Opt} {
		pipe := chainPipe(4)
		art, err := Compile(&cfg, pipe, img.W, img.H, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Name(), err)
		}
		m, err := cube.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadInput(m, art, img); err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(m, art); err != nil {
			t.Fatal(err)
		}
		got, err := ReadOutput(m, art)
		if err != nil {
			t.Fatal(err)
		}
		if d := pixel.MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("%s: diverged by %g", opts.Name(), d)
		}
	}
}

// TestExchangeStripsPGSMFastPath verifies the PG-level strip fast path
// engages when the partition has room, and that forcing it off (tiny
// PGSM) falls back to the VSM with identical results.
func TestExchangeStripsPGSMFastPath(t *testing.T) {
	img := pixel.Synth(32, 16, 44)
	want, err := chainPipe(3).Reference(img)
	if err != nil {
		t.Fatal(err)
	}
	run := func(pgsmBytes int) (*Plan, *pixel.Image) {
		cfg := sim.TestTinyOneVault()
		cfg.PGSMBytes = pgsmBytes
		pipe := chainPipe(3)
		art, err := Compile(&cfg, pipe, img.W, img.H, Opt)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cube.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := LoadInput(m, art, img); err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(m, art); err != nil {
			t.Fatal(err)
		}
		out, err := ReadOutput(m, art)
		if err != nil {
			t.Fatal(err)
		}
		return art.Plan, out
	}
	bigPlan, bigOut := run(8 << 10)
	viaPGSM := false
	for _, sp := range bigPlan.Stages {
		if sp.Out.ViaPGSM {
			viaPGSM = true
		}
	}
	if !viaPGSM {
		t.Error("PGSM strip fast path never engaged with an 8KB PGSM")
	}
	smallPlan, smallOut := run(1 << 10)
	for _, sp := range smallPlan.Stages {
		if sp.Out.ViaPGSM && sp.Out.StripBytes()*smallPlan.TilesPerPE > 512 {
			t.Error("strips accepted beyond the small partition")
		}
	}
	if pixel.MaxAbsDiff(bigOut, want) != 0 || pixel.MaxAbsDiff(smallOut, want) != 0 {
		t.Fatal("fast path and fallback disagree with the reference")
	}
}
