package compiler

import (
	"testing"

	"ipim/internal/cube"
	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

func histPipe(bins int) *halide.Pipeline {
	out := halide.NewFunc("hist").Define(halide.In(0, 0))
	p := halide.NewPipeline("histogram", out)
	p.Histogram = true
	p.Bins = bins
	return p
}

func runHist(t *testing.T, cfg sim.Config, w, h int) (*Artifact, []int32, sim.Stats, *pixel.Image) {
	t.Helper()
	img := pixel.Synth(w, h, 77)
	pipe := histPipe(64)
	art, err := Compile(&cfg, pipe, w, h, Opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cube.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadInput(m, art, img); err != nil {
		t.Fatal(err)
	}
	stats, err := Execute(m, art)
	if err != nil {
		t.Fatal(err)
	}
	bins, err := ReadHistogram(m, art)
	if err != nil {
		t.Fatal(err)
	}
	return art, bins, stats, img
}

func checkHist(t *testing.T, bins []int32, img *pixel.Image) {
	t.Helper()
	want, err := histPipe(64).ReferenceHistogram(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bin %d = %d, want %d", i, bins[i], want[i])
		}
	}
}

func TestHistogramLeaderReducesAcrossVaults(t *testing.T) {
	cfg := sim.TestTiny() // 2 vaults
	art, bins, stats, img := runHist(t, cfg, 32, 16)
	if art.LeaderProg == nil {
		t.Fatal("multi-vault histogram compiled without a leader program")
	}
	checkHist(t, bins, img)
	// The leader pulled (V-1) x bins/4 remote vectors through req.
	wantReqs := int64((cfg.TotalVaults() - 1) * 64 / 4)
	if stats.RemoteReqs != wantReqs {
		t.Fatalf("remote reqs = %d, want %d", stats.RemoteReqs, wantReqs)
	}
	if stats.InstByCategory[isa.CatInterVault] != wantReqs {
		t.Fatalf("inter-vault instruction count = %d, want %d",
			stats.InstByCategory[isa.CatInterVault], wantReqs)
	}
	if stats.NoC.Packets == 0 {
		t.Fatal("no NoC traffic for the cross-vault reduction")
	}
}

func TestHistogramAcrossCubes(t *testing.T) {
	// Two cubes: the reduction crosses the SERDES links.
	cfg := sim.TestTiny()
	cfg.Cubes = 2
	cfg.BankBytes = 1 << 20
	art, bins, stats, img := runHist(t, cfg, 64, 16)
	if art.LeaderProg == nil {
		t.Fatal("no leader program")
	}
	checkHist(t, bins, img)
	if stats.SerdesBeat == 0 {
		t.Fatal("cross-cube reduction generated no SERDES traffic")
	}
}

func TestHistogramSingleVaultHasNoLeader(t *testing.T) {
	cfg := sim.TestTinyOneVault()
	art, bins, stats, img := runHist(t, cfg, 32, 16)
	if art.LeaderProg != nil {
		t.Fatal("single-vault histogram got a leader program")
	}
	checkHist(t, bins, img)
	if stats.RemoteReqs != 0 {
		t.Fatalf("single vault issued %d reqs", stats.RemoteReqs)
	}
}

func TestHistogramPlanRejectsBadBins(t *testing.T) {
	cfg := sim.TestTiny()
	for _, bins := range []int{0, -4, 6} {
		p := histPipe(bins)
		if _, err := NewPlan(&cfg, p, 32, 16); err == nil {
			t.Errorf("bins=%d accepted", bins)
		}
	}
	// Bins exceeding the PGSM partition must be rejected at lowering.
	cfg.PGSMBytes = 512 // partition 256 B < 64 bins x 4 B? 256 == 256: use more bins
	p := histPipe(256)  // 1 KB > 256 B partition
	if _, err := Compile(&cfg, p, 32, 16, Opt); err == nil {
		t.Error("histogram exceeding PGSM partition accepted")
	}
}
