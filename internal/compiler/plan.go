// Package compiler is iPIM's end-to-end compilation backend (paper
// Sec. V): it maps a halide.Pipeline with iPIM schedules onto SIMB
// programs. The flow mirrors the paper's Fig. 4:
//
//	bound inference → tile/layout plan (ipim_tile, Fig. 3a)
//	→ PGSM staging plan (load_pgsm, Fig. 3b/3c)
//	→ instruction lowering to virtual-register SIMB IR
//	→ register allocation (min | max policy)
//	→ memory order enforcement (optional dependency edges)
//	→ instruction reordering (Algorithm 1 list scheduling)
//	→ executable program + host data loader
//
// Every materialized buffer stores, per PE, halo-extended tiles sized
// by bound inference. Halos come from overlapped recompute (pure
// pipelines) or from the PGSM/VSM halo exchange (ClampedStages
// pipelines); see DESIGN.md §2 and exchange.go.
package compiler

import (
	"errors"
	"fmt"

	"ipim/internal/halide"
	"ipim/internal/sim"
)

// Typed plan-time validation errors. Callers match them with errors.Is;
// the wrapping message carries the offending geometry.
var (
	// ErrNonPow2Geometry rejects halo-exchange plans whose PE count or
	// per-stage core extents are not powers of two — the exchange
	// address arithmetic (exchange.go log2) is only defined there.
	ErrNonPow2Geometry = errors.New("power-of-two geometry required")
	// ErrTabIndex rejects pipelines whose Tab (constant-table) index
	// would vary across the vector lanes of a tile slot or depend on
	// the tile origin: the lowering splats one pool constant per
	// evaluation point, so the index must be slot-uniform and
	// tile-invariant.
	ErrTabIndex = errors.New("tab index not uniform under this schedule")
)

// Options selects the backend optimization configuration — exactly the
// grid of the paper's Fig. 12.
type Options struct {
	// RegAllocMax selects the "max" register allocation policy (scatter
	// registers to avoid false dependencies) instead of "min" (reuse as
	// few physical registers as possible).
	RegAllocMax bool
	// Reorder enables Algorithm 1 instruction reordering.
	Reorder bool
	// MemOrder enables memory order enforcement edges.
	MemOrder bool
}

// The paper's five compiler configurations (Sec. VII-E1).
var (
	Opt       = Options{RegAllocMax: true, Reorder: true, MemOrder: true}
	Baseline1 = Options{RegAllocMax: false, Reorder: false, MemOrder: false}
	Baseline2 = Options{RegAllocMax: false, Reorder: true, MemOrder: true}
	Baseline3 = Options{RegAllocMax: true, Reorder: false, MemOrder: true}
	Baseline4 = Options{RegAllocMax: true, Reorder: true, MemOrder: false}
)

// Name returns the paper's label for an options combination.
func (o Options) Name() string {
	switch o {
	case Opt:
		return "opt"
	case Baseline1:
		return "baseline1"
	case Baseline2:
		return "baseline2"
	case Baseline3:
		return "baseline3"
	case Baseline4:
		return "baseline4"
	}
	return fmt.Sprintf("custom(%v,%v,%v)", o.RegAllocMax, o.Reorder, o.MemOrder)
}

// BufPlan is the per-PE bank layout of one materialized buffer: each
// tile the PE owns occupies one fixed-size slot holding the buffer's
// halo-extended tile region.
type BufPlan struct {
	Name     string
	Producer *halide.Func `json:"-"` // nil = pipeline input
	// SigmaX/SigmaY are the buffer's per-dimension domain scales
	// relative to the pipeline output domain (pyramid levels have
	// scales < 1; separable resampling stages scale one dimension at a
	// time).
	SigmaX, SigmaY halide.Scale
	// X, Y is the stored region in tile-local producer-domain
	// coordinates. X is padded so the width is a multiple of the SIMD
	// vector length.
	X, Y halide.Interval
	// NeedX/NeedY is the pre-padding stored region (what consumers
	// actually read); padding cells beyond it are never consumed.
	NeedX, NeedY halide.Interval
	// Base/Slot locate tile k's region at Base + k*Slot in every bank.
	Base, Slot uint32

	// Exchange-mode geometry (halo exchange through the VSM; see
	// DESIGN.md §2). CoreW/CoreH is the per-tile computed core; StripH
	// is the published horizontal strip depth (0 = no horizontal halo).
	CoreW, CoreH int
	StripH       int

	// ViaPGSM enables the PG-level fast path: strips are additionally
	// published into each PE's PGSM partition (at StripPGSMBase,
	// indexed by loop slot) so the 3-of-4 horizontal neighbors that
	// share a process group exchange halos through the scratchpad
	// instead of the TSV-serialized VSM (paper Fig. 3 data sharing).
	ViaPGSM       bool
	StripPGSMBase uint32
}

// StripBytes is the per-tile published strip footprint in the VSM.
func (b *BufPlan) StripBytes() int { return 2 * b.StripH * b.CoreH * 4 }

// HasHalo reports whether the stored region extends beyond the core.
func (b *BufPlan) HasHalo() bool {
	return b.NeedX.Lo < 0 || b.NeedX.Hi >= b.CoreW || b.NeedY.Lo < 0 || b.NeedY.Hi >= b.CoreH
}

// Width returns the padded row width in elements.
func (b *BufPlan) Width() int { return b.X.Len() }

// Addr returns the in-slot byte offset of producer-local (lx, ly).
func (b *BufPlan) Addr(lx, ly int) (uint32, error) {
	if lx < b.X.Lo || lx > b.X.Hi || ly < b.Y.Lo || ly > b.Y.Hi {
		return 0, fmt.Errorf("compiler: access (%d,%d) outside stored region x%v y%v of %s",
			lx, ly, b.X, b.Y, b.Name)
	}
	return uint32(((ly-b.Y.Lo)*b.Width() + (lx - b.X.Lo)) * 4), nil
}

// UsePlan describes one stage's consumption of one buffer.
type UsePlan struct {
	Buf *BufPlan
	// X, Y is the region (producer-local) the stage reads per tile.
	X, Y halide.Interval
	// PGSM staging: when Staged, rows Y of the buffer (full padded
	// width) are copied into the PE's PGSM partition at PGSMOff before
	// the tile's compute.
	Staged  bool
	PGSMOff uint32
}

// StagePlan is one compute_root kernel.
type StagePlan struct {
	F   *halide.Func
	Out *BufPlan
	// CoreX/CoreY is the per-tile compute region: the full stored
	// region under overlapped tiling, the bare core under halo
	// exchange.
	CoreX, CoreY halide.Interval
	Uses         []UsePlan
	// Publish marks exchange-mode stages whose output halo is
	// exchanged (publish strips + fill) after the tile loop.
	Publish bool
	// PGSMWanted records that load_pgsm was requested; Staged flags on
	// uses tell whether each region actually fit the PGSM partition.
	PGSMWanted bool
	// StageAhead marks the multi-array (MASIM-style) schedule for this
	// stage: the PGSM partition is split into a ping/pong double
	// buffer of StageBytes each, and the lowering stages tile k+1's
	// operands into the idle half while tile k computes out of the
	// active half. Set by finishPlan when Pipeline.MultiArray is on
	// and the geometry allows it (overlapped mode, >1 tile per PE,
	// staged operands fitting twice in the partition).
	StageAhead bool
	// StageBytes is the per-buffer footprint of one staging half.
	StageBytes uint32
}

// ArrayPlan models one PE array of a vault explicitly: one process
// group's PEs operating in lock step against a shared PGSM. The
// multi-array schedule reasons about these arrays as independent
// staging/compute pipelines — while array A's PEs compute, its DRAM
// controllers prefetch the next tile's operands into the other PGSM
// half, and the other arrays do the same out of phase.
type ArrayPlan struct {
	// PG is the array's process-group index within its vault.
	PG int
	// PEs is the number of PEs in the array (lock-step SIMB lanes).
	PEs int
	// PGSMBytes is the per-PE PGSM partition size in bytes.
	PGSMBytes int
	// Buffers is the staging depth per partition: 2 when the
	// stage-ahead schedule double-buffers operands, 1 otherwise.
	Buffers int
}

// Plan is the complete mapping of a pipeline onto the machine.
type Plan struct {
	Cfg  *sim.Config
	Pipe *halide.Pipeline

	ImgW, ImgH int // input dimensions
	OutW, OutH int // output dimensions

	TilesX, TilesY int
	TilesPerPE     int
	NumPEs         int // machine-wide PEs participating

	Stages []*StagePlan `json:"-"`
	Input  *BufPlan
	// OutBuf is the final stage's buffer (what ReadOutput gathers);
	// nil for histogram pipelines.
	OutBuf *BufPlan
	ByFunc map[*halide.Func]*BufPlan `json:"-"`

	// Exchange marks halo-exchange mode (ClampedStages pipelines on a
	// single-vault machine); see planExchange.
	Exchange bool

	// Arrays models the per-vault PE arrays (one entry per process
	// group) the schedule runs on; every vault is identical. Buffers
	// is 2 when any stage runs the stage-ahead schedule.
	Arrays []ArrayPlan

	// SpillBase is the start of the register-spill area in each bank.
	SpillBase uint32
	// Histogram pipeline layout: per-PE partial histogram, PG-merged
	// partials (on PE0 banks), the vault total (on PE0 of PG0), and —
	// for multi-vault machines — the machine-global total assembled by
	// the leader vault through req (on vault 0's PE(0,0)).
	HistLocal, HistPG, HistFinal, HistGlobal uint32
	// ConstBase is the constant pool location (host-loaded).
	ConstBase uint32
	// Consts lists pool values; constant i lives at ConstBase + 16*i,
	// broadcast across the four lanes.
	Consts []float32
}

// padX widens an interval so its length is a multiple of the vector
// length, extending the high end.
func padX(iv halide.Interval) halide.Interval {
	for iv.Len()%4 != 0 {
		iv.Hi++
	}
	return iv
}

// NewPlan runs bound inference and lays out every buffer for the given
// machine configuration and input image size.
func NewPlan(cfg *sim.Config, pipe *halide.Pipeline, imgW, imgH int) (*Plan, error) {
	if pipe.Histogram {
		return newHistogramPlan(cfg, pipe, imgW, imgH)
	}
	stages, err := pipe.Stages()
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Cfg: cfg, Pipe: pipe,
		ImgW: imgW, ImgH: imgH,
		OutW:   imgW * pipe.OutNum / pipe.OutDen,
		OutH:   imgH * pipe.OutNum / pipe.OutDen,
		ByFunc: map[*halide.Func]*BufPlan{},
		NumPEs: cfg.TotalPEs(),
	}
	tw, th := pipe.TileW, pipe.TileH
	if tw%4 != 0 || tw <= 0 || th <= 0 {
		return nil, fmt.Errorf("compiler: ipim_tile %dx%d: width must be a positive multiple of %d", tw, th, 4)
	}
	if p.OutW%tw != 0 || p.OutH%th != 0 {
		return nil, fmt.Errorf("compiler: output %dx%d not divisible into %dx%d tiles", p.OutW, p.OutH, tw, th)
	}
	p.TilesX, p.TilesY = p.OutW/tw, p.OutH/th
	tiles := p.TilesX * p.TilesY
	if tiles%p.NumPEs != 0 {
		return nil, fmt.Errorf("compiler: %d tiles not divisible across %d PEs", tiles, p.NumPEs)
	}
	p.TilesPerPE = tiles / p.NumPEs

	isMat := func(f *halide.Func) bool {
		return f.IsComputeRoot() || f == pipe.Output
	}

	if pipe.ClampedStages {
		if err := p.planExchange(stages, isMat); err != nil {
			return nil, err
		}
	} else if err := p.planOverlapped(stages, isMat); err != nil {
		return nil, err
	}

	if err := p.finishPlan(stages, isMat); err != nil {
		return nil, err
	}
	return p, nil
}

// planOverlapped computes stored regions for overlapped tiling: every
// buffer carries the cumulative halo of the downstream pipeline and
// halo values are recomputed locally (pure function semantics).
func (p *Plan) planOverlapped(stages []*halide.Func, isMat func(*halide.Func) bool) error {
	pipe := p.Pipe
	tw, th := pipe.TileW, pipe.TileH
	// Stored regions, computed backwards from the output stage. The
	// output's stored region is the bare tile.
	one := halide.Scale{Num: 1, Den: 1}
	outBuf := &BufPlan{
		Name:     stages[len(stages)-1].Name,
		Producer: stages[len(stages)-1],
		SigmaX:   one,
		SigmaY:   one,
		X:        padX(halide.Interval{Lo: 0, Hi: tw - 1}),
		Y:        halide.Interval{Lo: 0, Hi: th - 1},
	}
	p.ByFunc[outBuf.Producer] = outBuf

	for si := len(stages) - 1; si >= 0; si-- {
		s := stages[si]
		sb, ok := p.ByFunc[s]
		if !ok {
			return fmt.Errorf("compiler: stage %q has no consumers", s.Name)
		}
		// All consumers (later stages) have contributed their unions by
		// now; lock in the vector padding before computing what this
		// stage needs to produce the padded region.
		sb.X = padX(sb.X)
		uses, err := halide.StageRequirements(s, sb.X, sb.Y, isMat)
		if err != nil {
			return err
		}
		for _, u := range uses {
			sigmaX := reduceScale(halide.Scale{Num: sb.SigmaX.Num * u.SX.Num, Den: sb.SigmaX.Den * u.SX.Den})
			sigmaY := reduceScale(halide.Scale{Num: sb.SigmaY.Num * u.SY.Num, Den: sb.SigmaY.Den * u.SY.Den})
			// Power-of-two alignment requirement (DESIGN.md): tile
			// origins scaled into the producer domain stay integral.
			if (tw*sigmaX.Num)%sigmaX.Den != 0 || (th*sigmaY.Num)%sigmaY.Den != 0 {
				return fmt.Errorf("compiler: stage %q: tile %dx%d misaligned with producer scale %v/%v", s.Name, tw, th, sigmaX, sigmaY)
			}
			if err := p.accumulateUse(u, sigmaX, sigmaY); err != nil {
				return err
			}
		}
	}
	if p.Input == nil {
		return fmt.Errorf("compiler: pipeline %q never reads its input", pipe.Name)
	}
	// Overlapped mode: compute region = full stored region; record the
	// pre-padding requirement, then pad.
	for _, b := range p.allBuffers(stages) {
		b.NeedX, b.NeedY = b.X, b.Y
		b.X = padX(b.X)
		b.CoreW, b.CoreH = b.X.Len(), b.Y.Len()
	}
	return nil
}

// accumulateUse merges one stage requirement into the target buffer's
// plan, creating it on first use.
func (p *Plan) accumulateUse(u halide.BufUse, sigmaX, sigmaY halide.Scale) error {
	if u.Buf == nil {
		if p.Input == nil {
			p.Input = &BufPlan{Name: "input", SigmaX: sigmaX, SigmaY: sigmaY, X: u.X, Y: u.Y}
			return nil
		}
		if p.Input.SigmaX != sigmaX || p.Input.SigmaY != sigmaY {
			return fmt.Errorf("compiler: input read at mixed scales")
		}
		p.Input.X = p.Input.X.Union(u.X)
		p.Input.Y = p.Input.Y.Union(u.Y)
		return nil
	}
	ub, ok := p.ByFunc[u.Buf]
	if !ok {
		p.ByFunc[u.Buf] = &BufPlan{Name: u.Buf.Name, Producer: u.Buf, SigmaX: sigmaX, SigmaY: sigmaY, X: u.X, Y: u.Y}
		return nil
	}
	if ub.SigmaX != sigmaX || ub.SigmaY != sigmaY {
		return fmt.Errorf("compiler: buffer %q read at mixed scales", u.Buf.Name)
	}
	ub.X = ub.X.Union(u.X)
	ub.Y = ub.Y.Union(u.Y)
	return nil
}

// allBuffers lists the input plus every stage buffer (input first).
func (p *Plan) allBuffers(stages []*halide.Func) []*BufPlan {
	out := []*BufPlan{p.Input}
	for _, s := range stages {
		if b := p.ByFunc[s]; b != nil {
			out = append(out, b)
		}
	}
	return out
}

// planExchange computes stored regions for halo-exchange mode
// (ClampedStages pipelines): every stage computes only its core tile;
// halos of intermediate buffers are filled from neighbor tiles through
// the VSM after a barrier (paper Sec. IV-E data sharing). Preconditions
// are validated here; see DESIGN.md §2.
func (p *Plan) planExchange(stages []*halide.Func, isMat func(*halide.Func) bool) error {
	pipe := p.Pipe
	cfg := p.Cfg
	tw, th := pipe.TileW, pipe.TileH
	n := p.NumPEs
	if cfg.TotalVaults() != 1 {
		return fmt.Errorf("compiler: halo-exchange pipelines require a single-vault machine (have %d vaults); see DESIGN.md", cfg.TotalVaults())
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("compiler: halo exchange requires a power-of-two PE count, have %d: %w", n, ErrNonPow2Geometry)
	}
	if p.TilesX%n != 0 {
		return fmt.Errorf("compiler: halo exchange requires TilesX (%d) divisible by the PE count (%d)", p.TilesX, n)
	}
	scales, err := pipe.StageScales()
	if err != nil {
		return err
	}
	// Create buffers with core geometry.
	for _, s := range stages {
		sc := scales[s]
		coreW := tw * sc[0].Num / sc[0].Den
		coreH := th * sc[1].Num / sc[1].Den
		if coreW < 4 || coreW&(coreW-1) != 0 || coreH < 1 || coreH&(coreH-1) != 0 {
			return fmt.Errorf("compiler: stage %q core %dx%d must be power-of-two (width >= 4): %w", s.Name, coreW, coreH, ErrNonPow2Geometry)
		}
		core := halide.Interval{Lo: 0, Hi: coreW - 1}
		coreY := halide.Interval{Lo: 0, Hi: coreH - 1}
		p.ByFunc[s] = &BufPlan{
			Name: s.Name, Producer: s,
			SigmaX: sc[0], SigmaY: sc[1],
			X: core, Y: coreY,
			CoreW: coreW, CoreH: coreH,
		}
	}
	// Union consumer requirements (computed over cores) into producers.
	for _, s := range stages {
		sb := p.ByFunc[s]
		uses, err := halide.StageRequirements(s,
			halide.Interval{Lo: 0, Hi: sb.CoreW - 1},
			halide.Interval{Lo: 0, Hi: sb.CoreH - 1}, isMat)
		if err != nil {
			return err
		}
		for _, u := range uses {
			sigmaX := reduceScale(halide.Scale{Num: sb.SigmaX.Num * u.SX.Num, Den: sb.SigmaX.Den * u.SX.Den})
			sigmaY := reduceScale(halide.Scale{Num: sb.SigmaY.Num * u.SY.Num, Den: sb.SigmaY.Den * u.SY.Den})
			if err := p.accumulateUse(u, sigmaX, sigmaY); err != nil {
				return err
			}
		}
	}
	if p.Input == nil {
		return fmt.Errorf("compiler: pipeline %q never reads its input", pipe.Name)
	}
	p.Input.NeedX, p.Input.NeedY = p.Input.X, p.Input.Y
	p.Input.X = padX(p.Input.X)
	p.Input.CoreW, p.Input.CoreH = p.Input.X.Len(), p.Input.Y.Len()
	for _, s := range stages {
		b := p.ByFunc[s]
		b.NeedX, b.NeedY = b.X, b.Y
		b.X = padX(b.X)
		b.StripH = 0
		if -b.NeedX.Lo > b.StripH {
			b.StripH = -b.NeedX.Lo
		}
		if h := b.NeedX.Hi - (b.CoreW - 1); h > b.StripH {
			b.StripH = h
		}
		if 2*b.StripH > b.CoreW {
			return fmt.Errorf("compiler: buffer %q horizontal halo %d exceeds half its %d-wide core", b.Name, b.StripH, b.CoreW)
		}
		if b.HasHalo() {
			tiles := p.TilesX * p.TilesY
			if need := tiles * b.StripBytes(); need > cfg.VSMBytes {
				return fmt.Errorf("compiler: buffer %q needs %d strip bytes in a %d-byte VSM", b.Name, need, cfg.VSMBytes)
			}
		}
	}
	p.Exchange = true
	return nil
}

// finishPlan assigns bank addresses and builds the stage plans.
func (p *Plan) finishPlan(stages []*halide.Func, isMat func(*halide.Func) bool) error {
	cfg := p.Cfg
	// Assign bank addresses: constant pool first, then buffers, then
	// the spill area.
	p.ConstBase = 0
	cursor := uint32(4096) // up to 256 pool constants
	alloc := func(b *BufPlan) error {
		b.Base = cursor
		b.Slot = uint32(align16(b.Width() * b.Y.Len() * 4))
		sz := b.Slot * uint32(p.TilesPerPE)
		cursor += sz
		if int(cursor) > p.Cfg.BankBytes {
			return fmt.Errorf("compiler: bank overflow: %d bytes needed for %s", cursor, b.Name)
		}
		return nil
	}
	if err := alloc(p.Input); err != nil {
		return err
	}
	for _, s := range stages {
		if err := alloc(p.ByFunc[s]); err != nil {
			return err
		}
	}
	p.SpillBase = cursor

	// Build stage plans with PGSM staging assignments.
	partition := cfg.PGSMBytes / cfg.PEsPerPG
	for _, s := range stages {
		sp := &StagePlan{F: s, Out: p.ByFunc[s], PGSMWanted: s.IsLoadPGSM()}
		if p.Exchange {
			sp.CoreX = halide.Interval{Lo: 0, Hi: sp.Out.CoreW - 1}
			sp.CoreY = halide.Interval{Lo: 0, Hi: sp.Out.CoreH - 1}
			sp.Publish = sp.Out.HasHalo()
		} else {
			sp.CoreX, sp.CoreY = sp.Out.X, sp.Out.Y
		}
		uses, err := halide.StageRequirements(s, sp.CoreX, sp.CoreY, isMat)
		if err != nil {
			return err
		}
		pgsmCursor := uint32(0)
		anyStaged := false
		for _, u := range uses {
			var ub *BufPlan
			if u.Buf == nil {
				ub = p.Input
			} else {
				ub = p.ByFunc[u.Buf]
			}
			up := UsePlan{Buf: ub, X: u.X, Y: u.Y}
			if sp.PGSMWanted {
				// Staged bytes: full padded width x used rows.
				sz := uint32(ub.Width() * u.Y.Len() * 4)
				if pgsmCursor+sz <= uint32(partition) {
					up.Staged = true
					up.PGSMOff = pgsmCursor
					pgsmCursor += sz
					anyStaged = true
				}
			}
			sp.Uses = append(sp.Uses, up)
		}
		// Multi-array stage-ahead schedule: double-buffer the staged
		// operands so tile k+1's staging overlaps tile k's compute.
		// Requires overlapped mode (exchange-mode barriers serialize
		// tiles anyway), a loop to hide latency in, and room for two
		// staging halves in the partition.
		if p.Pipe.MultiArray && !p.Exchange && p.TilesPerPE > 1 &&
			anyStaged && 2*pgsmCursor <= uint32(partition) {
			sp.StageAhead = true
			sp.StageBytes = pgsmCursor
		}
		// PG-level strip fast path: the strips of every loop slot must
		// fit the PGSM partition above this stage's staging region.
		if sp.Publish && sp.Out.StripH > 0 {
			strips := sp.Out.StripBytes() * p.TilesPerPE
			if int(pgsmCursor)+strips <= partition {
				sp.Out.ViaPGSM = true
				sp.Out.StripPGSMBase = uint32(partition - strips)
			}
		}
		p.Stages = append(p.Stages, sp)
	}
	p.OutBuf = p.Stages[len(p.Stages)-1].Out

	// Validate constant-table indices against the chosen schedule. A
	// stage whose output domain does not scale with y computes the
	// same tile-local y range in every tile, so its tabs are tile-
	// invariant even under multi-row tilings.
	for _, sp := range p.Stages {
		yFree := p.TilesY == 1 || sp.Out.SigmaY.Num == 0
		if err := p.checkTabs(sp.F.E, sp.F.Name, isMat, yFree, true, true); err != nil {
			return err
		}
	}

	// Model the per-vault PE arrays the schedule runs on.
	buffers := 1
	for _, sp := range p.Stages {
		if sp.StageAhead {
			buffers = 2
		}
	}
	p.Arrays = make([]ArrayPlan, cfg.PGsPerVault)
	for pg := range p.Arrays {
		p.Arrays[pg] = ArrayPlan{PG: pg, PEs: cfg.PEsPerPG, PGSMBytes: partition, Buffers: buffers}
	}
	return nil
}

// checkTabs walks a stage expression (recursing through inlined funcs,
// composing coordinate dependence) and rejects Tab nodes whose index
// would not be slot-uniform and tile-invariant under the plan's tiling.
// yFree reports that tile-local y equals global y for this stage;
// xDep/yDep report whether the current subtree's coordinates still vary
// with the stage's tile-local x/y.
func (p *Plan) checkTabs(e halide.Expr, stage string, isMat func(*halide.Func) bool, yFree, xDep, yDep bool) error {
	switch t := e.(type) {
	case halide.Const:
		return nil
	case halide.Access:
		if t.Func == nil || isMat(t.Func) {
			return nil
		}
		return p.checkTabs(t.Func.E, stage, isMat, yFree, xDep && t.CX.Scale != 0, yDep && t.CY.Scale != 0)
	case halide.Bin:
		if err := p.checkTabs(t.A, stage, isMat, yFree, xDep, yDep); err != nil {
			return err
		}
		return p.checkTabs(t.B, stage, isMat, yFree, xDep, yDep)
	case halide.Select:
		for _, sub := range []halide.Expr{t.Cond, t.Then, t.Else} {
			if err := p.checkTabs(sub, stage, isMat, yFree, xDep, yDep); err != nil {
				return err
			}
		}
		return nil
	case halide.Reduce:
		for _, term := range t.Terms {
			if err := p.checkTabs(term, stage, isMat, yFree, xDep, yDep); err != nil {
				return err
			}
		}
		return nil
	case halide.Tab:
		// The four SIMD lanes of a slot span consecutive x, so any
		// x-dependence breaks slot uniformity outright. Tiling along x
		// would additionally shift the index per tile.
		if xDep && t.CX.Scale != 0 {
			return fmt.Errorf("compiler: stage %q: tab index depends on x: %w", stage, ErrTabIndex)
		}
		// A y-dependent index is only global-coordinate-correct when
		// tile-local y equals global y (one tile row, or an output
		// domain that does not scale with y).
		if yDep && t.CY.Scale != 0 && !yFree {
			return fmt.Errorf("compiler: stage %q: tab index depends on y but TilesY=%d: %w", stage, p.TilesY, ErrTabIndex)
		}
		return nil
	}
	return fmt.Errorf("compiler: unknown expr node %T in stage %q", e, stage)
}

func reduceScale(s halide.Scale) halide.Scale {
	g := gcd(s.Num, s.Den)
	return halide.Scale{Num: s.Num / g, Den: s.Den / g}
}

func gcd(a, b int) int {
	if a < 0 {
		a = -a
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func align16(n int) int { return (n + 15) &^ 15 }

// TileOrigin returns the output-domain origin of tile t (row-major).
func (p *Plan) TileOrigin(t int) (ox, oy int) {
	return (t % p.TilesX) * p.Pipe.TileW, (t / p.TilesX) * p.Pipe.TileH
}

// TileOf returns the tile index owned by global PE g at slot k
// (interleaved distribution, Fig. 3a).
func (p *Plan) TileOf(g, k int) int { return k*p.NumPEs + g }

// ConstIndex interns a constant into the pool and returns its index.
func (p *Plan) ConstIndex(v float32) int {
	for i, c := range p.Consts {
		if c == v {
			return i
		}
	}
	p.Consts = append(p.Consts, v)
	if len(p.Consts) > 256 {
		panic("compiler: constant pool overflow (>256 entries)")
	}
	return len(p.Consts) - 1
}

// ConstAddr returns the bank address of pool constant i.
func (p *Plan) ConstAddr(i int) uint32 { return p.ConstBase + uint32(16*i) }
