package compiler

import (
	"container/heap"

	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Instruction reordering (paper Sec. V-C, Algorithm 1): list
// scheduling over the dependency graph of each reorderable block,
// exposing instruction-level parallelism to the in-order core. The
// memory order enforcement pass adds two extra edge kinds before
// scheduling (paper Fig. 5): deferral edges that keep consecutive DRAM
// requests from monopolizing the instruction/request queues, and
// ordering edges that preserve the program's bank access order (and
// with it the row-buffer locality of the tile layout).

// effects describes an instruction's memory behavior for alias edges.
type effects struct {
	readsBank, writesBank bool
	readsPGSM, writesPGSM bool
	readsVSM, writesVSM   bool
}

func effectsOf(in *isa.Instruction) effects {
	switch in.Op {
	case isa.OpLdRF:
		return effects{readsBank: true}
	case isa.OpStRF:
		return effects{writesBank: true}
	case isa.OpLdPGSM:
		return effects{readsBank: true, writesPGSM: true}
	case isa.OpStPGSM:
		return effects{readsPGSM: true, writesBank: true}
	case isa.OpRdPGSM:
		return effects{readsPGSM: true}
	case isa.OpWrPGSM:
		return effects{writesPGSM: true}
	case isa.OpRdVSM:
		return effects{readsVSM: true}
	case isa.OpWrVSM, isa.OpSetiVSM, isa.OpReq:
		return effects{writesVSM: true}
	}
	return effects{}
}

// depGraph is a DAG over one block's instructions. Edges carry their
// own latency: a true RAW dependency delays the consumer by the
// producer's full latency, while ordering edges (WAR/WAW, memory
// ordering) only impose issue/burst spacing.
type depGraph struct {
	n    int
	succ [][]edge
	pred []int // in-degree
	lat  []int64
}

type edge struct {
	to  int
	lat int64
}

func (g *depGraph) addEdge(i, j int, lat int64) {
	for k, s := range g.succ[i] {
		if s.to == j {
			if lat > s.lat {
				g.succ[i][k].lat = lat
			}
			return
		}
	}
	g.succ[i] = append(g.succ[i], edge{j, lat})
	g.pred[j]++
}

// orderLat is the spacing for pure ordering edges (DRAM burst length).
const orderLat = 2

// estimateLatency approximates instruction latency for scheduling
// priorities (exact service times are dynamic).
func estimateLatency(cfg *sim.Config, in *isa.Instruction) int64 {
	switch in.Op {
	case isa.OpComp:
		return int64(cfg.LatencyOf(compClass(in.ALU)))
	case isa.OpCalcARF, isa.OpCalcCRF:
		return int64(cfg.LatencyOf(compClass(in.ALU)))
	case isa.OpLdRF, isa.OpLdPGSM:
		return int64(cfg.Timing.TRCD + cfg.Timing.TCL + 1)
	case isa.OpStRF, isa.OpStPGSM:
		return int64(cfg.Timing.TCWL + 2)
	case isa.OpRdPGSM, isa.OpWrPGSM:
		return int64(cfg.TPGSM + cfg.TDataRF)
	case isa.OpRdVSM, isa.OpWrVSM:
		return int64(cfg.TTSV + cfg.TVSM + cfg.TDataRF)
	}
	return 1
}

// compClass mirrors the vault's latency classification.
func compClass(op isa.ALUOp) sim.ALUClass {
	switch op {
	case isa.FAdd, isa.FSub, isa.IAdd, isa.ISub, isa.FMin, isa.FMax,
		isa.IMin, isa.IMax, isa.FCmpLT, isa.FCmpLE, isa.ICmpLT, isa.ICmpEQ,
		isa.FAbs, isa.FFloor:
		return sim.ClassAdd
	case isa.FMul, isa.IMul, isa.FDiv:
		return sim.ClassMul
	case isa.FMac, isa.IMac:
		return sim.ClassMac
	}
	return sim.ClassLogic
}

// buildDeps constructs the dependency DAG of a block: register RAW/
// WAR/WAW edges plus memory alias edges (same tag, at least one
// writer; unknown tags are conservative).
func buildDeps(cfg *sim.Config, b *block, memOrder bool) *depGraph {
	n := len(b.ins)
	g := &depGraph{n: n, succ: make([][]edge, n), pred: make([]int, n), lat: make([]int64, n)}
	for i := 0; i < n; i++ {
		g.lat[i] = estimateLatency(cfg, &b.ins[i])
	}
	// Register edges: last writer / readers tracking.
	lastDef := map[isa.RegRef]int{}
	lastUses := map[isa.RegRef][]int{}
	for j := 0; j < n; j++ {
		in := &b.ins[j]
		for _, u := range in.Uses() {
			if w, ok := lastDef[u]; ok {
				g.addEdge(w, j, g.lat[w]) // RAW: full producer latency
			}
			lastUses[u] = append(lastUses[u], j)
		}
		for _, d := range in.Defs() {
			if w, ok := lastDef[d]; ok {
				g.addEdge(w, j, 1) // WAW: issue order only
			}
			for _, r := range lastUses[d] {
				if r != j {
					g.addEdge(r, j, 1) // WAR: issue order only
				}
			}
			lastDef[d] = j
			delete(lastUses, d)
		}
	}
	// Memory alias edges.
	alias := func(t1, t2 int) bool { return t1 == t2 || t1 < 0 || t2 < 0 }
	for j := 0; j < n; j++ {
		ej := effectsOf(&b.ins[j])
		if ej == (effects{}) {
			continue
		}
		tj := b.tags[j]
		for i := 0; i < j; i++ {
			ei := effectsOf(&b.ins[i])
			if ei == (effects{}) {
				continue
			}
			ti := b.tags[i]
			conflict :=
				(ei.writesBank && (ej.readsBank || ej.writesBank) || ej.writesBank && ei.readsBank) &&
					alias(ti.bank, tj.bank) ||
					(ei.writesPGSM && (ej.readsPGSM || ej.writesPGSM) || ej.writesPGSM && ei.readsPGSM) &&
						alias(ti.pgsm, tj.pgsm) ||
					(ei.writesVSM && (ej.readsVSM || ej.writesVSM) || ej.writesVSM && ei.readsVSM) &&
						alias(ti.vsm, tj.vsm)
			if conflict {
				g.addEdge(i, j, orderLat)
			}
		}
	}
	if memOrder {
		// Memory order enforcement: bank accesses to the same buffer
		// keep program order (the lowering emits them row-sequentially,
		// so this preserves row-buffer locality); accesses with unknown
		// tags chain conservatively with everything (paper Fig. 5).
		prevByTag := map[int]int{}
		prevUnknown := -1
		for j := 0; j < n; j++ {
			if !b.ins[j].Op.AccessesBank() {
				continue
			}
			tag := b.tags[j].bank
			if tag < 0 {
				// Unknown: order against every prior bank access.
				for _, p := range prevByTag {
					g.addEdge(p, j, orderLat)
				}
				if prevUnknown >= 0 {
					g.addEdge(prevUnknown, j, orderLat)
				}
				prevUnknown = j
				continue
			}
			if p, ok := prevByTag[tag]; ok {
				g.addEdge(p, j, orderLat)
			}
			if prevUnknown >= 0 {
				g.addEdge(prevUnknown, j, orderLat)
			}
			prevByTag[tag] = j
		}
	}
	return g
}

// readyItem is a heap entry for Algorithm 1's ready set.
type readyItem struct {
	node   int
	t      int64
	isLoad bool
}

type readyHeap []readyItem

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].node < h[j].node // stable on original order
}
func (h readyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)   { *h = append(*h, x.(readyItem)) }
func (h *readyHeap) Pop() any     { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }

// schedule runs Algorithm 1 on one block: topological list scheduling
// with T(v) timestamps; among ready nodes, a load whose T is within
// the current step is preferred, otherwise the smallest T.
func schedule(cfg *sim.Config, b *block, g *depGraph) {
	n := g.n
	T := make([]int64, n)
	loads := &readyHeap{}
	others := &readyHeap{}
	add := func(v int) {
		it := readyItem{node: v, t: T[v], isLoad: b.ins[v].Op.IsBankLoad()}
		if it.isLoad {
			heap.Push(loads, it)
		} else {
			heap.Push(others, it)
		}
	}
	for v := 0; v < n; v++ {
		if g.pred[v] == 0 {
			add(v)
		}
	}
	perm := make([]int, 0, n)
	var cur int64
	for len(perm) < n {
		var v int
		switch {
		case loads.Len() > 0 && (*loads)[0].t <= cur:
			v = heap.Pop(loads).(readyItem).node
		case others.Len() > 0 && (loads.Len() == 0 || (*others)[0].t <= (*loads)[0].t):
			v = heap.Pop(others).(readyItem).node
		case loads.Len() > 0:
			v = heap.Pop(loads).(readyItem).node
		default:
			v = heap.Pop(others).(readyItem).node
		}
		if T[v] > cur {
			cur = T[v]
		}
		perm = append(perm, v)
		cur++
		for _, e := range g.succ[v] {
			if t := T[v] + e.lat; t > T[e.to] {
				T[e.to] = t
			}
			g.pred[e.to]--
			if g.pred[e.to] == 0 {
				add(e.to)
			}
		}
	}
	// Apply the permutation.
	ins := make([]isa.Instruction, n)
	tags := make([]memTag, n)
	for pos, v := range perm {
		ins[pos] = b.ins[v]
		tags[pos] = b.tags[v]
	}
	b.ins, b.tags = ins, tags
}

// Reorder applies memory order enforcement and Algorithm 1 to every
// reorderable block per the options.
func Reorder(mod *module, cfg *sim.Config, opts Options) {
	if !opts.Reorder {
		return
	}
	for _, b := range mod.blocks {
		if !b.reorderable || len(b.ins) < 2 {
			continue
		}
		g := buildDeps(cfg, b, opts.MemOrder)
		schedule(cfg, b, g)
	}
}

// DepEdgesForTest exposes the dependency graph for property tests.
func DepEdgesForTest(cfg *sim.Config, b *block, memOrder bool) [][]int {
	g := buildDeps(cfg, b, memOrder)
	out := make([][]int, g.n)
	for i, succs := range g.succ {
		for _, e := range succs {
			out[i] = append(out[i], e.to)
		}
	}
	return out
}
