package compiler

import (
	"fmt"
	"math"

	"ipim/internal/halide"
	"ipim/internal/isa"
	"ipim/internal/sim"
)

// Histogram is the paper's value-dependent Table II benchmark. The GPU
// schedule struggles with it; on iPIM the schedule "converts it into a
// reduction of parallel reduced partial histogram results"
// (Sec. VII-B): every PE scatters into a private bank-resident
// histogram, process groups merge the four partials through the PGSM,
// PG leaders merge through the VSM, and the vault total lands in PE0
// of PG0's bank. The host sums vault totals (negligible next to the
// per-pixel scatter).

// newHistogramPlan lays out the input tiles and the histogram buffers.
func newHistogramPlan(cfg *sim.Config, pipe *halide.Pipeline, imgW, imgH int) (*Plan, error) {
	if pipe.Bins <= 0 || pipe.Bins%4 != 0 {
		return nil, fmt.Errorf("compiler: histogram bins %d must be a positive multiple of 4", pipe.Bins)
	}
	p := &Plan{
		Cfg: cfg, Pipe: pipe,
		ImgW: imgW, ImgH: imgH, OutW: imgW, OutH: imgH,
		ByFunc: map[*halide.Func]*BufPlan{},
		NumPEs: cfg.TotalPEs(),
	}
	tw, th := pipe.TileW, pipe.TileH
	if tw%4 != 0 {
		return nil, fmt.Errorf("compiler: tile width %d must be a multiple of 4", tw)
	}
	if imgW%tw != 0 || imgH%th != 0 {
		return nil, fmt.Errorf("compiler: image %dx%d not divisible into %dx%d tiles", imgW, imgH, tw, th)
	}
	p.TilesX, p.TilesY = imgW/tw, imgH/th
	tiles := p.TilesX * p.TilesY
	if tiles%p.NumPEs != 0 {
		return nil, fmt.Errorf("compiler: %d tiles not divisible across %d PEs", tiles, p.NumPEs)
	}
	p.TilesPerPE = tiles / p.NumPEs
	p.ConstBase = 0
	cursor := uint32(4096)
	one := halide.Scale{Num: 1, Den: 1}
	p.Input = &BufPlan{
		Name:   "input",
		SigmaX: one,
		SigmaY: one,
		X:      halide.Interval{Lo: 0, Hi: tw - 1},
		Y:      halide.Interval{Lo: 0, Hi: th - 1},
		Base:   cursor,
	}
	p.Input.Slot = uint32(align16(p.Input.Width() * th * 4))
	cursor += p.Input.Slot * uint32(p.TilesPerPE)
	histBytes := uint32(4 * pipe.Bins)
	p.HistLocal = cursor
	cursor += histBytes
	p.HistPG = cursor
	cursor += histBytes
	p.HistFinal = cursor
	cursor += histBytes
	p.HistGlobal = cursor
	cursor += histBytes
	p.SpillBase = cursor
	if int(cursor) > cfg.BankBytes {
		return nil, fmt.Errorf("compiler: bank overflow in histogram plan (%d bytes)", cursor)
	}
	return p, nil
}

// lowerHistogram emits the three-level partial-histogram kernel.
// When leader is set (and the machine has multiple vaults), a fourth
// level follows: vault 0's leader PE pulls every other vault's total
// through asynchronous req instructions (paper Sec. IV-D) and
// assembles the machine-global histogram.
func lowerHistogram(plan *Plan) (*module, error) {
	return lowerHistogramVariant(plan, false)
}

func lowerHistogramVariant(plan *Plan, leader bool) (*module, error) {
	mod, k, err := lowerHistogramBase(plan)
	if err != nil {
		return nil, err
	}
	if leader && plan.Cfg.TotalVaults() > 1 {
		if err := emitCrossVaultReduce(plan, k); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// emitCrossVaultReduce appends the leader-vault phase: a barrier so
// every vault's total is bank-resident, reqs for each remote total,
// then the accumulate into HistGlobal.
func emitCrossVaultReduce(plan *Plan, k *kern) error {
	cfg := plan.Cfg
	bins := plan.Pipe.Bins
	histBytes := 4 * bins
	const leaderMask uint64 = 1
	// Response staging region, above the PG-merge area.
	stageBase := uint32(cfg.PGsPerVault * histBytes)
	need := int(stageBase) + (cfg.TotalVaults()-1)*histBytes
	if need > cfg.VSMBytes {
		return fmt.Errorf("compiler: cross-vault reduce needs %d VSM bytes, have %d", need, cfg.VSMBytes)
	}

	k.startBlock(-1, false)
	sync := isa.New(isa.OpSync)
	sync.Phase = 3
	k.emit(sync)

	k.startBlock(-1, true)
	vsmTag := memTag{bank: -1, pgsm: -1, vsm: 2}
	globalTag := memTag{bank: 1<<17 + 3, pgsm: -1, vsm: -1}
	pgTag := memTag{bank: 1<<17 + 2, pgsm: -1, vsm: -1}
	ri := 0
	for c := 0; c < cfg.Cubes; c++ {
		for v := 0; v < cfg.VaultsPerCube; v++ {
			if c == 0 && v == 0 {
				continue
			}
			for j := 0; j < bins/4; j++ {
				rq := isa.New(isa.OpReq)
				rq.DstChip, rq.DstVault, rq.DstPG, rq.DstPE = c, v, 0, 0
				rq.Addr = plan.HistFinal + uint32(16*j)
				rq.Addr2 = stageBase + uint32(ri*histBytes+16*j)
				k.emitTagged(rq, vsmTag)
			}
			ri++
		}
	}
	for j := 0; j < bins/4; j++ {
		acc := k.newD()
		ld := isa.New(isa.OpLdRF)
		ld.Dst = acc
		ld.Addr = plan.HistFinal + uint32(16*j)
		ld.SimbMask = leaderMask
		k.emitTagged(ld, pgTag)
		for r := 0; r < cfg.TotalVaults()-1; r++ {
			t := k.newD()
			rd := isa.New(isa.OpRdVSM)
			rd.Dst = t
			rd.Addr = stageBase + uint32(r*histBytes+16*j)
			rd.SimbMask = leaderMask
			k.emitTagged(rd, vsmTag)
			add := isa.New(isa.OpComp)
			add.ALU, add.Dst, add.Src1, add.Src2 = isa.IAdd, acc, acc, t
			add.SimbMask = leaderMask
			k.emit(add)
		}
		st := isa.New(isa.OpStRF)
		st.Dst = acc
		st.Addr = plan.HistGlobal + uint32(16*j)
		st.SimbMask = leaderMask
		k.emitTagged(st, globalTag)
	}
	return nil
}

// lowerHistogramBase emits the per-vault three-level kernel, returning
// the kern for optional extension.
func lowerHistogramBase(plan *Plan) (*module, *kern, error) {
	k := newKern(plan)
	k.constReg = map[int]int{}
	cfg := plan.Cfg
	bins := plan.Pipe.Bins
	in := plan.Input
	pgTag := memTag{bank: 1<<17 + 1, pgsm: -1, vsm: -1}
	finalTag := memTag{bank: 1<<17 + 2, pgsm: -1, vsm: -1}
	vsmTag := memTag{bank: -1, pgsm: -1, vsm: 1}
	pgsmXTag := memTag{bank: -1, pgsm: 1, vsm: -1}

	// PE masks.
	allPE := isa.MaskAll(cfg.PEsPerVault())
	var pe0s uint64 // PE0 of every PG
	for pg := 0; pg < cfg.PGsPerVault; pg++ {
		pe0s |= 1 << uint(pg*cfg.PEsPerPG)
	}
	const leader uint64 = 1 // PE0 of PG0

	// --- Phase 1: zero the per-PE partial histograms. ---
	// Partials live in each PE's PGSM partition: the scatter's
	// read-modify-write hits 1-cycle SRAM instead of thrashing DRAM
	// rows against the pixel stream (the paper's partial-histogram
	// schedule; Sec. VII-B).
	part := int64(cfg.PGSMBytes / cfg.PEsPerPG)
	if int64(bins*4) > part {
		return nil, nil, fmt.Errorf("compiler: %d histogram bytes exceed the %d-byte PGSM partition", bins*4, part)
	}
	k.startBlock(-1, true)
	aP := k.calcRI(isa.IMul, isa.ARFPeID, part)
	zero := k.newD()
	rz := isa.New(isa.OpReset)
	rz.Dst = zero
	rz.SimbMask = allPE
	k.emit(rz)
	for j := 0; j < bins/4; j++ {
		aJ := k.addA(aP, int64(16*j))
		st := isa.New(isa.OpWrPGSM)
		st.Dst = zero
		st.Addr, st.Indirect = uint32(aJ), true
		st.SimbMask = allPE
		k.emitTagged(st, pgsmXTag)
	}

	// --- Phase 2: scatter pass over the PE's tiles. ---
	k.startBlock(-1, true)
	aIn := k.liA(in.Base)
	// Constants: bin scale (Bins-1), rounding 0.5, integer 1 (bit
	// pattern preserved through the FP32 pool).
	scaleC := k.constVec(float32(bins - 1))
	halfC := k.constVec(0.5)
	oneI := k.constVec(math.Float32frombits(1))

	k.startBlock(-1, false)
	loop := k.mod.newLabel()
	seti := isa.New(isa.OpSetiCRF)
	seti.Dst, seti.Imm = crfLoopCount, int64(plan.TilesPerPE)
	k.emit(seti)
	setl := isa.New(isa.OpSetiCRF)
	setl.Dst, setl.ImmLabel = crfLoopTarget, loop
	k.emit(setl)

	k.startBlock(loop, true)
	rowW := in.Width()
	for ly := 0; ly < plan.Pipe.TileH; ly++ {
		for lx := 0; lx < plan.Pipe.TileW; lx += 4 {
			off := (ly*rowW + lx) * 4
			aT := k.addA(aIn, int64(off))
			pix := k.newD()
			ld := isa.New(isa.OpLdRF)
			ld.Dst = pix
			ld.Addr, ld.Indirect = uint32(aT), true
			ld.SimbMask = allPE
			k.emitTagged(ld, memTag{bank: firstBufTag, pgsm: -1, vsm: -1})
			// bin = f2i(v*(bins-1) + 0.5) per lane.
			s1 := k.comp(isa.FMul, pix, scaleC)
			s2 := k.comp(isa.FAdd, s1, halfC)
			binV := k.comp(isa.F2I, s2, s2)
			for l := 0; l < 4; l++ {
				aV := k.newA()
				mv := isa.New(isa.OpMovARF)
				mv.Dst, mv.Src1, mv.Lane = aV, binV, l
				mv.SimbMask = allPE
				k.emit(mv)
				sh := isa.New(isa.OpCalcARF)
				sh.ALU, sh.Dst, sh.Src1 = isa.Shl, aV, aV
				sh.HasImm, sh.Imm = true, 2
				sh.SimbMask = allPE
				k.emit(sh)
				k.calcRRInto(isa.IAdd, aV, aV, aP)
				cnt := k.newD()
				lb := isa.New(isa.OpRdPGSM)
				lb.Dst = cnt
				lb.Addr, lb.Indirect = uint32(aV), true
				lb.VecMask = 1
				lb.SimbMask = allPE
				k.emitTagged(lb, pgsmXTag)
				addc := isa.New(isa.OpComp)
				addc.ALU, addc.Dst, addc.Src1, addc.Src2 = isa.IAdd, cnt, cnt, oneI
				addc.VecMask = 1
				addc.SimbMask = allPE
				k.emit(addc)
				sb := isa.New(isa.OpWrPGSM)
				sb.Dst = cnt
				sb.Addr, sb.Indirect = uint32(aV), true
				sb.VecMask = 1
				sb.SimbMask = allPE
				k.emitTagged(sb, pgsmXTag)
			}
		}
	}

	k.startBlock(-1, false)
	k.bumpA(aIn, int64(in.Slot))
	dec := isa.New(isa.OpCalcCRF)
	dec.ALU, dec.Dst, dec.Src1 = isa.ISub, crfLoopCount, crfLoopCount
	dec.HasImm, dec.Imm = true, 1
	k.emit(dec)
	cj := isa.New(isa.OpCJump)
	cj.Cond, cj.Src1 = crfLoopCount, crfLoopTarget
	k.emit(cj)

	// --- Phase 3: PG merge through the PGSM. ---
	k.startBlock(-1, false)
	sync1 := isa.New(isa.OpSync)
	sync1.Phase = 1
	k.emit(sync1)

	k.startBlock(-1, true)
	// PE0 of each PG accumulates the four PGSM-resident partitions.
	for j := 0; j < bins/4; j++ {
		acc := k.newD()
		first := isa.New(isa.OpRdPGSM)
		first.Dst = acc
		first.Addr = uint32(16 * j)
		first.SimbMask = pe0s
		k.emitTagged(first, pgsmXTag)
		for pe := 1; pe < cfg.PEsPerPG; pe++ {
			t := k.newD()
			rd := isa.New(isa.OpRdPGSM)
			rd.Dst = t
			rd.Addr = uint32(int64(pe)*part + int64(16*j))
			rd.SimbMask = pe0s
			k.emitTagged(rd, pgsmXTag)
			add := isa.New(isa.OpComp)
			add.ALU, add.Dst, add.Src1, add.Src2 = isa.IAdd, acc, acc, t
			add.SimbMask = pe0s
			k.emit(add)
		}
		st := isa.New(isa.OpStRF)
		st.Dst = acc
		st.Addr = plan.HistPG + uint32(16*j)
		st.SimbMask = pe0s
		k.emitTagged(st, pgTag)
	}

	// --- Phase 4: vault merge through the VSM. ---
	k.startBlock(-1, false)
	sync2 := isa.New(isa.OpSync)
	sync2.Phase = 2
	k.emit(sync2)

	k.startBlock(-1, true)
	histBytes := int64(4 * bins)
	aV := k.newA()
	vm := isa.New(isa.OpCalcARF)
	vm.ALU, vm.Dst, vm.Src1 = isa.IMul, aV, isa.ARFPgID
	vm.HasImm, vm.Imm = true, histBytes
	vm.SimbMask = pe0s
	k.emit(vm)
	for j := 0; j < bins/4; j++ {
		t := k.newD()
		ld := isa.New(isa.OpLdRF)
		ld.Dst = t
		ld.Addr = plan.HistPG + uint32(16*j)
		ld.SimbMask = pe0s
		k.emitTagged(ld, pgTag)
		aJ := k.addA(aV, int64(16*j))
		// addA emits with the kernel-wide mask; narrow it to the leaders.
		k.cur.ins[len(k.cur.ins)-1].SimbMask = pe0s
		wr := isa.New(isa.OpWrVSM)
		wr.Dst = t
		wr.Addr, wr.Indirect = uint32(aJ), true
		wr.SimbMask = pe0s
		k.emitTagged(wr, vsmTag)
	}
	for j := 0; j < bins/4; j++ {
		acc := k.newD()
		first := isa.New(isa.OpRdVSM)
		first.Dst = acc
		first.Addr = uint32(16 * j)
		first.SimbMask = leader
		k.emitTagged(first, vsmTag)
		for pg := 1; pg < cfg.PGsPerVault; pg++ {
			t := k.newD()
			rd := isa.New(isa.OpRdVSM)
			rd.Dst = t
			rd.Addr = uint32(int64(pg)*histBytes + int64(16*j))
			rd.SimbMask = leader
			k.emitTagged(rd, vsmTag)
			add := isa.New(isa.OpComp)
			add.ALU, add.Dst, add.Src1, add.Src2 = isa.IAdd, acc, acc, t
			add.SimbMask = leader
			k.emit(add)
		}
		st := isa.New(isa.OpStRF)
		st.Dst = acc
		st.Addr = plan.HistFinal + uint32(16*j)
		st.SimbMask = leader
		k.emitTagged(st, finalTag)
	}
	return k.mod, k, nil
}
