package compiler

import (
	"errors"
	"strings"
	"testing"

	"ipim/internal/halide"
	"ipim/internal/pixel"
	"ipim/internal/sim"
)

// TestExchangeRejectsNonPow2Geometry pins the plan-time power-of-two
// validation: a clamped-stage pipeline with a 12-wide tile used to
// reach the exchange address arithmetic, whose log2 silently floored
// non-powers-of-two and corrupted halo addresses. The planner must
// reject the geometry with the typed error instead.
func TestExchangeRejectsNonPow2Geometry(t *testing.T) {
	cfg := sim.TestTinyOneVault()
	pipe := chainPipe(2).IPIMTile(12, 16)
	// 4 PEs x 12-wide tiles: TilesX divides evenly, so the plan fails
	// on the core width itself, not on tile distribution.
	_, err := Compile(&cfg, pipe, 48, 16, Opt)
	if err == nil {
		t.Fatal("non-power-of-two exchange geometry accepted")
	}
	if !errors.Is(err, ErrNonPow2Geometry) {
		t.Fatalf("error %v does not wrap ErrNonPow2Geometry", err)
	}
	if !strings.Contains(err.Error(), "12") {
		t.Errorf("error %q does not name the offending extent", err)
	}
	// The same pipeline at a power-of-two width compiles and runs.
	pipe = chainPipe(2).IPIMTile(16, 16)
	if _, err := Compile(&cfg, pipe, 64, 16, Opt); err != nil {
		t.Fatalf("power-of-two geometry rejected: %v", err)
	}
}

// TestLog2PanicsOnNonPow2 pins the last-resort guard itself: the
// exchange shift arithmetic must never silently floor.
func TestLog2PanicsOnNonPow2(t *testing.T) {
	for _, v := range []int{0, -4, 3, 12, 48} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("log2(%d) did not panic", v)
				}
			}()
			log2(v)
		}()
	}
	for v, want := range map[int]int64{1: 0, 2: 1, 4: 2, 1024: 10} {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
}

// TestTabIndexValidation pins the Tab uniformity rules: a weight-table
// index that varies inside a tile (x-dependent, or y-dependent when
// tiles move vertically) cannot lower to a lane-uniform constant and
// must be rejected at plan time with the typed error.
func TestTabIndexValidation(t *testing.T) {
	vals := []float32{1, 2, 3, 4}
	build := func(cx, cy halide.Coord) *halide.Pipeline {
		e := halide.Mul(halide.NewTab(vals, cx, cy), halide.In(0, 0))
		out := halide.NewFunc("tabbed").Define(e).LoadPGSM()
		return halide.NewPipeline("TabPipe", out).IPIMTile(8, 8)
	}
	cfg := sim.TestTiny()

	// x-dependent index: rejected under any schedule.
	_, err := Compile(&cfg, build(halide.CScale(1, 0, 1), halide.C(0)), 64, 8, Opt)
	if !errors.Is(err, ErrTabIndex) {
		t.Fatalf("x-dependent tab index: error %v does not wrap ErrTabIndex", err)
	}

	// y-dependent index: fine while the tile grid never moves in y...
	pipe := build(halide.CScale(0, 0, 1), halide.CScale(1, 0, 2))
	if _, err := Compile(&cfg, pipe, 64, 8, Opt); err != nil {
		t.Fatalf("y-dependent tab index with TilesY=1 rejected: %v", err)
	}
	// ...and rejected as soon as it does (TilesY=2).
	_, err = Compile(&cfg, build(halide.CScale(0, 0, 1), halide.CScale(1, 0, 2)), 64, 16, Opt)
	if !errors.Is(err, ErrTabIndex) {
		t.Fatalf("y-dependent tab index with TilesY=2: error %v does not wrap ErrTabIndex", err)
	}

	// The accepted case really computes Vals[y/2]*in bit-exactly
	// (runPipe compares against the reference interpreter).
	runPipe(t, cfg, build(halide.CScale(0, 0, 1), halide.CScale(1, 0, 2)),
		pixel.Synth(64, 8, 5), Opt)
}
